// Reproduces paper Table VI: sensitivity to the per-cell weight W_cell of
// the weighted load model (Eq. 7). Small W_cell balances almost purely on
// particle counts; huge W_cell swamps the particle terms and degenerates to
// cell-count balancing (re-introducing particle imbalance). The paper sees
// a shallow optimum around W_cell ~ 1000 and degradation at 10000.

#include <cstdio>
#include <map>

#include "common.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Cli cli("Table VI — impact of W_cell in the weighted load model (DC+LB, "
          "Dataset 2 analogue)");
  bench::CommonFlags common(cli, "bench_tab06_wcell_sweep", "24,48,96,192,384", 40);
  const auto* w_list =
      cli.add_string("wcell", "1,10,100,1000,10000", "W_cell values");
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });
  const std::vector<int> wcells = bench::parse_rank_list(*w_list);

  const core::Dataset ds = core::make_dataset(2, opt.particle_scale);

  std::map<int, std::map<int, double>> times;
  for (const int w : wcells) {
    for (const int nranks : opt.ranks) {
      auto par = bench::make_parallel(ds, nranks,
                                      exchange::Strategy::kDistributed, true,
                                      opt);
      par.balance.cell_weight = static_cast<double>(w);
      times[w][nranks] = bench::run_case(ds, par, opt).total_time;
      std::fprintf(stderr, "  done W_cell=%d ranks=%d\n", w, nranks);
    }
  }

  Table t("Table VI — total execution time (virtual seconds) per W_cell");
  std::vector<std::string> header{"W_cell"};
  for (const int n : opt.ranks) header.push_back(std::to_string(n));
  t.header(header);
  for (const int w : wcells) {
    std::vector<std::string> row{std::to_string(w)};
    for (const int n : opt.ranks) row.push_back(Table::num(times[w][n], 1));
    t.row(row);
  }
  t.print();
  std::printf(
      "\nPaper shape check: small-to-moderate W_cell values sit within a few "
      "percent; the largest value degrades (particle weights swamped; paper "
      "Table VI: 2623s vs 2258s at 24 ranks for W_cell = 10000).\n");
  return 0;
}
