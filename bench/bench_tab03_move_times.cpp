// Reproduces paper Table III: total execution times of DSMC_Move and
// PIC_Move with and without dynamic load balance across the rank sweep.
// The paper observes LB cutting both to less than one third.

#include <cstdio>
#include <map>

#include "common.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Cli cli("Table III — DSMC_Move / PIC_Move times with vs without LB "
          "(Dataset 2 analogue, DC strategy, Tianhe-2 profile)");
  bench::CommonFlags common(cli, "bench_tab03_move_times", "24,48,96,192,384", 40);
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });

  const core::Dataset ds = core::make_dataset(2, opt.particle_scale);

  std::map<bool, std::map<int, core::RunSummary>> results;
  for (const bool lb : {true, false}) {
    for (const int nranks : opt.ranks) {
      const auto par = bench::make_parallel(
          ds, nranks, exchange::Strategy::kDistributed, lb, opt);
      results[lb][nranks] = bench::run_case(ds, par, opt).summary;
      std::fprintf(stderr, "  done LB=%d ranks=%d\n", lb, nranks);
    }
  }

  Table t("Table III — move-phase times (virtual seconds, max over ranks)");
  std::vector<std::string> header{"procedure"};
  for (const int n : opt.ranks) header.push_back(std::to_string(n));
  t.header(header);
  for (const char* phase : {core::phases::kDsmcMove, core::phases::kPicMove}) {
    for (const bool lb : {true, false}) {
      std::vector<std::string> row{std::string(phase) +
                                   (lb ? " (with LB)" : " (no LB)")};
      for (const int n : opt.ranks)
        row.push_back(Table::num(results[lb][n].phase_max(phase), 1));
      t.row(row);
    }
  }
  t.print();

  Table ratio("LB speedup of the move phases (paper: > 3x)");
  ratio.header(header);
  for (const char* phase : {core::phases::kDsmcMove, core::phases::kPicMove}) {
    std::vector<std::string> row{std::string(phase) + " no-LB/LB"};
    for (const int n : opt.ranks) {
      const double with = results[true][n].phase_max(phase);
      const double without = results[false][n].phase_max(phase);
      row.push_back(with > 0 ? Table::num(without / with, 2) + "x" : "-");
    }
    ratio.row(row);
  }
  ratio.print();
  return 0;
}
