// Reproduces paper Table IV: breakdown of the total execution time into the
// main procedures on the Tianhe-2 profile, DC strategy with load balancing.
// Paper shape: Inject dominates at small rank counts but scales near-
// perfectly; DSMC_Move, Reindex scale well; Poisson_Solve barely scales
// (communication-bound sparse solve) and becomes the bottleneck.

#include <cstdio>
#include <map>

#include "common.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Cli cli("Table IV — phase breakdown for DC + LB (Dataset 2 analogue, "
          "Tianhe-2 profile)");
  bench::CommonFlags common(cli, "bench_tab04_breakdown", "24,48,96,192,384,768,1536", 40);
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });

  const core::Dataset ds = core::make_dataset(2, opt.particle_scale);

  std::map<int, core::RunSummary> results;
  for (const int nranks : opt.ranks) {
    const auto par = bench::make_parallel(ds, nranks,
                                          exchange::Strategy::kDistributed,
                                          /*balance=*/true, opt);
    results[nranks] = bench::run_case(ds, par, opt).summary;
    std::fprintf(stderr, "  done ranks=%d\n", nranks);
  }

  const char* rows[] = {
      core::phases::kDsmcMove,     core::phases::kDsmcExchange,
      core::phases::kInject,       core::phases::kPicMove,
      core::phases::kPicExchange,  core::phases::kPoissonSolve,
      core::phases::kReindex,      core::phases::kColliReact,
      core::phases::kRebalance,
  };

  Table t("Table IV — phase times (virtual seconds, max over ranks)");
  std::vector<std::string> header{"procedure"};
  for (const int n : opt.ranks) header.push_back(std::to_string(n));
  t.header(header);
  for (const char* phase : rows) {
    std::vector<std::string> row{phase};
    for (const int n : opt.ranks)
      row.push_back(Table::num(results[n].phase_max(phase), 1));
    t.row(row);
  }
  std::vector<std::string> total_row{"TOTAL"};
  for (const int n : opt.ranks)
    total_row.push_back(Table::num(results[n].total_time, 1));
  t.row(total_row);
  t.print();

  // Parallel efficiency of selected phases vs the smallest rank count
  // (paper: DSMC_Move / Inject / Reindex stay above 67% at 1536).
  Table eff("Phase parallel efficiency vs the smallest rank count");
  eff.header(header);
  for (const char* phase :
       {core::phases::kInject, core::phases::kDsmcMove, core::phases::kReindex,
        core::phases::kPoissonSolve}) {
    std::vector<std::string> row{phase};
    const double base = results[opt.ranks.front()].phase_max(phase);
    for (const int n : opt.ranks) {
      const double cur = results[n].phase_max(phase);
      const double scale = static_cast<double>(n) / opt.ranks.front();
      row.push_back(cur > 0 ? Table::pct(base / cur / scale) : "-");
    }
    eff.row(row);
  }
  eff.print();
  std::printf(
      "\nPaper shape check: Inject/DSMC_Move/Reindex scale; Poisson_Solve is "
      "flat or grows (Table IV: 95.2s at 24 -> 126.2s at 1536 ranks).\n");
  return 0;
}
