// Wall-clock microbenchmark for the intra-rank kernels (move, collide,
// deposit) at serial vs 2 vs 4 kernel lanes, plus the pre-cache seed
// baseline (geometry caches disabled, serial) so the win from the
// precomputed face planes / barycentric inverses is measured separately
// from the win of chunking. The sorted_* lanes rerun cached-serial/kt2/kt4
// on a cell-major (cell-sorted) copy of the same population, isolating the
// traversal-locality win of the periodic cell sort (DESIGN.md §2g) from
// both. Unlike the paper-reproduction benches this one
// reports REAL milliseconds, not virtual seconds — the kernel lanes are
// invisible to the cost model by design (docs/cost_model.md).
//
// Writes BENCH_kernels.json (see scripts/bench_kernels.sh). The headline
// number is move.speedup_kt4_vs_serial: cached geometry + 4 lanes against
// the seed-equivalent recompute-serial baseline.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "dsmc/collide.hpp"
#include "obs/host_profiler.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "dsmc/mover.hpp"
#include "dsmc/particles.hpp"
#include "dsmc/species.hpp"
#include "mesh/nozzle.hpp"
#include "mesh/refine.hpp"
#include "pic/deposit.hpp"
#include "pic/fine_grid.hpp"
#include "support/cli.hpp"
#include "support/kernel_exec.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace dsmcpic;

namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

/// Times fn() `reps` times and returns the fastest run (least noisy on a
/// shared machine); fn is run once untimed as warmup.
template <class F>
double best_of(int reps, F&& fn) {
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_ms();
    fn();
    best = std::min(best, now_ms() - t0);
  }
  return best;
}

/// Seeds a reproducible population: particles scattered uniformly over the
/// cells at interior barycentric points, half H / half H+, thermal spread
/// plus an axial drift large enough that a move step crosses several cells
/// (so ray_exit_face dominates, as it does in the real solver).
dsmc::ParticleStore make_population(const mesh::TetMesh& mesh,
                                    const dsmc::SpeciesTable& table,
                                    std::int64_t n) {
  dsmc::ParticleStore store;
  store.reserve(static_cast<std::size_t>(n));
  Rng rng(0xbe9cULL);
  const double vth = std::sqrt(dsmc::constants::kBoltzmann * 300.0 /
                               table[dsmc::kSpeciesH].mass);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t cell =
        static_cast<std::int32_t>(i % mesh.num_tets());
    const auto& tet = mesh.tet(cell);
    // Random interior point: normalized positive barycentric weights.
    double w[4], sum = 0.0;
    for (double& x : w) sum += (x = 0.05 + rng.uniform());
    Vec3 pos{0, 0, 0};
    for (int k = 0; k < 4; ++k) pos = pos + mesh.node(tet[k]) * (w[k] / sum);
    dsmc::ParticleRecord p;
    p.position = pos;
    p.velocity = Vec3{rng.normal() * vth, rng.normal() * vth,
                      rng.normal() * vth + 2.0 * vth};
    p.id = i;
    p.species = (i % 2 == 0) ? dsmc::kSpeciesH : dsmc::kSpeciesHPlus;
    p.cell = cell;
    store.add(p);
  }
  return store;
}

struct KernelTimes {
  double serial_recompute = 0.0;  // seed baseline: no caches, no lanes
  double serial = 0.0;            // caches on, no lanes
  double kt2 = 0.0;
  double kt4 = 0.0;
  double sorted_serial = 0.0;  // cell-sorted population, caches on, no lanes
  double sorted_kt2 = 0.0;
  double sorted_kt4 = 0.0;
};

void emit(std::FILE* f, const char* name, const KernelTimes& t,
          bool trailing_comma) {
  std::fprintf(f,
               "    \"%s\": {\n"
               "      \"serial_recompute_ms\": %.3f,\n"
               "      \"serial_cached_ms\": %.3f,\n"
               "      \"kt2_ms\": %.3f,\n"
               "      \"kt4_ms\": %.3f,\n"
               "      \"sorted_serial_ms\": %.3f,\n"
               "      \"sorted_kt2_ms\": %.3f,\n"
               "      \"sorted_kt4_ms\": %.3f,\n"
               "      \"speedup_kt4_vs_serial\": %.3f,\n"
               "      \"speedup_cache_only\": %.3f,\n"
               "      \"speedup_sort_only\": %.3f,\n"
               "      \"speedup_kt4_vs_serial_cached\": %.3f\n"
               "    }%s\n",
               name, t.serial_recompute, t.serial, t.kt2, t.kt4,
               t.sorted_serial, t.sorted_kt2, t.sorted_kt4,
               t.serial_recompute / t.kt4, t.serial_recompute / t.serial,
               t.serial / t.sorted_serial, t.serial / t.sorted_kt4,
               trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "Intra-rank kernel microbenchmark: move / collide / deposit wall-clock "
      "at {seed recompute-serial, cached serial, 2 lanes, 4 lanes}");
  const auto* radial = cli.add_int("radial", 6, "nozzle radial divisions");
  const auto* axial = cli.add_int("axial", 14, "nozzle axial divisions");
  const auto* nparticles =
      cli.add_int("particles", 200000, "population size");
  const auto* reps = cli.add_int("reps", 5, "timed repetitions (best-of)");
  const auto* out =
      cli.add_string("out", "BENCH_kernels.json", "output JSON path");
  const auto* report = cli.add_string(
      "report", "",
      "also write a run_report.json (host-profile section carries the "
      "per-lane kernel timings)");
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;

  const int nreps = static_cast<int>(*reps);
  mesh::NozzleSpec spec;
  spec.radial_divisions = static_cast<int>(*radial);
  spec.axial_divisions = static_cast<int>(*axial);
  mesh::TetMesh coarse = mesh::make_cylinder_nozzle(spec);
  mesh::RefinedMesh refined = mesh::red_refine(coarse, nozzle_classifier(spec));
  pic::FineGrid grid(coarse, refined);

  const dsmc::SpeciesTable table = dsmc::SpeciesTable::hydrogen(2e11, 2e11);
  const dsmc::ParticleStore base =
      make_population(coarse, table, *nparticles);
  std::printf("mesh: %d coarse tets, %d fine tets; %zu particles; reps=%d\n",
              coarse.num_tets(), refined.mesh.num_tets(), base.size(), nreps);

  // dt sized so the drift crosses a few coarse cells per step: the walk
  // (ray_exit_face per crossing) dominates, as in the production move phase.
  const double vth = std::sqrt(dsmc::constants::kBoltzmann * 300.0 /
                               table[dsmc::kSpeciesH].mass);
  const double dt_move = 1.5 * (spec.length / spec.axial_divisions) /
                         (2.0 * vth);
  const double dt_collide = 4e-6;

  // The scattered population above is the collide/deposit worst case: walking
  // a cell's particle list strides the whole store. The sorted lanes time the
  // same kernels on the cell-major layout the solver's periodic sort
  // (--sort-every) maintains; within-cell order is identical, so collide
  // follows the identical trajectory and times the same workload.
  dsmc::ParticleStore sorted_base = base;
  {
    dsmc::SortScratch sort_scr;
    sorted_base.sort_by_cell(coarse.num_tets(), sort_scr);
  }

  const dsmc::Mover mover(coarse, table, dsmc::MoverConfig{});
  support::KernelExec exec2(2), exec4(4);
  struct Lane {
    const char* name;
    const support::KernelExec* exec;
    bool cache;
    const dsmc::ParticleStore* pop;
  };
  const Lane lanes[] = {{"serial_recompute", nullptr, false, &base},
                        {"serial", nullptr, true, &base},
                        {"kt2", &exec2, true, &base},
                        {"kt4", &exec4, true, &base},
                        {"sorted_serial", nullptr, true, &sorted_base},
                        {"sorted_kt2", &exec2, true, &sorted_base},
                        {"sorted_kt4", &exec4, true, &sorted_base}};
  constexpr int kNumLanes = 7;

  KernelTimes move_t, collide_t, deposit_t;
  const auto slot = [](KernelTimes& t, int i) -> double& {
    switch (i) {
      case 0: return t.serial_recompute;
      case 1: return t.serial;
      case 2: return t.kt2;
      case 3: return t.kt4;
      case 4: return t.sorted_serial;
      case 5: return t.sorted_kt2;
    }
    return t.sorted_kt4;
  };

  // --- move ---------------------------------------------------------------
  for (int i = 0; i < kNumLanes; ++i) {
    coarse.set_geometry_cache_enabled(lanes[i].cache);
    dsmc::ParticleStore store = *lanes[i].pop;
    std::vector<std::uint8_t> removed(store.size(), 0);
    std::int64_t walk = 0;
    slot(move_t, i) = best_of(nreps, [&] {
      store = *lanes[i].pop;
      std::fill(removed.begin(), removed.end(), 0);
      const dsmc::MoveStats s = mover.move_all(
          store, dt_move, /*step=*/0, removed, dsmc::MoveFilter::kAll,
          lanes[i].exec);
      walk = s.walk_steps;
    });
    std::printf("  move     %-16s %8.2f ms  (%lld face crossings)\n",
                lanes[i].name, slot(move_t, i), static_cast<long long>(walk));
  }

  // --- collide ------------------------------------------------------------
  std::vector<std::int32_t> all_cells(
      static_cast<std::size_t>(coarse.num_tets()));
  std::iota(all_cells.begin(), all_cells.end(), 0);
  for (int i = 0; i < kNumLanes; ++i) {
    coarse.set_geometry_cache_enabled(lanes[i].cache);
    dsmc::CollideScratch scratch;
    dsmc::CellIndex index;
    std::int64_t collisions = 0;
    double best = 1e300;
    for (int r = 0; r < nreps + 1; ++r) {
      // Fresh store + kernel per run (untimed): the adaptive majorants and
      // the velocity updates must follow the identical trajectory in every
      // lane config, or the configs would time different workloads.
      dsmc::ParticleStore store = *lanes[i].pop;
      dsmc::CollisionKernel kernel(coarse, table, dsmc::CollisionConfig{});
      index.rebuild(store, coarse.num_tets());
      const double t0 = now_ms();
      const dsmc::CollisionStats s = kernel.collide_cells(
          store, index, all_cells, dt_collide, /*step=*/0, lanes[i].exec,
          &scratch);
      if (r > 0) best = std::min(best, now_ms() - t0);  // r==0 is warmup
      collisions = s.collisions;
    }
    slot(collide_t, i) = best;
    std::printf("  collide  %-16s %8.2f ms  (%lld collisions)\n",
                lanes[i].name, slot(collide_t, i),
                static_cast<long long>(collisions));
  }

  // --- deposit ------------------------------------------------------------
  std::vector<std::int32_t> sorted_nodes(
      static_cast<std::size_t>(refined.mesh.num_nodes()));
  std::iota(sorted_nodes.begin(), sorted_nodes.end(), 0);
  std::vector<double> node_charge(sorted_nodes.size(), 0.0);
  const std::vector<std::uint8_t> none(base.size(), 0);
  for (int i = 0; i < kNumLanes; ++i) {
    refined.mesh.set_geometry_cache_enabled(lanes[i].cache);
    pic::DepositScratch scratch;
    std::int64_t deposited = 0;
    slot(deposit_t, i) = best_of(nreps, [&] {
      std::fill(node_charge.begin(), node_charge.end(), 0.0);
      const pic::DepositStats s =
          pic::deposit_charge(*lanes[i].pop, grid, table, sorted_nodes, none,
                              node_charge, lanes[i].exec, &scratch);
      deposited = s.deposited;
    });
    std::printf("  deposit  %-16s %8.2f ms  (%lld deposited)\n",
                lanes[i].name, slot(deposit_t, i),
                static_cast<long long>(deposited));
  }
  coarse.set_geometry_cache_enabled(true);
  refined.mesh.set_geometry_cache_enabled(true);

  // --- telemetry overhead ---------------------------------------------------
  // Times a real mini-solver step loop with and without a TelemetryHub
  // attached (sampling every step, publishing metrics.prom + metrics.json
  // at the default cadence (every 10 steps) into a scratch dir). The telemetry contract in
  // docs/observability.md §6 budgets < 2% wall-time overhead.
  double steps_plain = 1e300, steps_telemetry = 1e300;
  {
    core::Dataset ds = core::make_dataset(1, /*particle_scale=*/1.0);
    ds.config.nozzle.radial_divisions = 4;
    ds.config.nozzle.axial_divisions = 8;
    core::ParallelConfig par;
    par.nranks = 4;
    par.balance.enabled = true;
    par.balance.period = 3;
    const std::string tdir =
        (std::filesystem::temp_directory_path() / "bench_kernels_telemetry")
            .string();
    std::filesystem::create_directories(tdir);
    const int tsteps = 12;
    for (int r = 0; r < nreps + 1; ++r) {
      for (int with_hub = 0; with_hub < 2; ++with_hub) {
        obs::TelemetryConfig tc;
        tc.metrics_interval = 10;
        tc.metrics_prom_path = tdir + "/metrics.prom";
        tc.metrics_json_path = tdir + "/metrics.json";
        tc.run_label = "bench_kernels";
        obs::TelemetryHub hub(tc);
        core::CoupledSolver solver(ds.config, par);
        if (with_hub) solver.set_telemetry(&hub);
        const double t0 = now_ms();
        solver.run(tsteps);
        const double dt = now_ms() - t0;
        if (r > 0) {  // r==0 is warmup
          double& best = with_hub ? steps_telemetry : steps_plain;
          best = std::min(best, dt);
        }
      }
    }
    std::printf("  telemetry %-15s %8.2f ms\n", "steps_plain", steps_plain);
    std::printf("  telemetry %-15s %8.2f ms  (%+.2f%% overhead)\n",
                "steps_telemetry", steps_telemetry,
                100.0 * (steps_telemetry - steps_plain) / steps_plain);
  }

  std::FILE* f = std::fopen(out->c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out->c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bench_kernels\",\n"
               "  \"note\": \"wall-clock ms, best of %d reps; "
               "serial_recompute is the pre-cache seed baseline, "
               "speedups are vs that baseline\",\n"
               "  \"mesh\": {\"coarse_tets\": %d, \"fine_tets\": %d},\n"
               "  \"layout\": \"soa\",\n"
               "  \"particles\": %zu,\n"
               "  \"kernels\": {\n",
               nreps, coarse.num_tets(), refined.mesh.num_tets(),
               base.size());
  emit(f, "move", move_t, true);
  emit(f, "collide", collide_t, true);
  emit(f, "deposit", deposit_t, true);
  std::fprintf(f,
               "    \"telemetry\": {\n"
               "      \"steps_plain_ms\": %.3f,\n"
               "      \"steps_telemetry_ms\": %.3f,\n"
               "      \"overhead_pct\": %.3f\n"
               "    }\n",
               steps_plain, steps_telemetry,
               100.0 * (steps_telemetry - steps_plain) / steps_plain);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);

  if (!report->empty()) {
    obs::HostProfiler prof;
    struct { const char* kernel; KernelTimes* t; } rows[] = {
        {"move", &move_t}, {"collide", &collide_t}, {"deposit", &deposit_t}};
    for (const auto& row : rows) {
      for (int i = 0; i < kNumLanes; ++i)
        prof.record(std::string(row.kernel) + "/" + lanes[i].name,
                    slot(*row.t, i));
    }
    obs::RunReport rep;
    rep.config.bench = "bench_kernels";
    std::ostringstream cs;
    cs << "radial=" << *radial << " axial=" << *axial
       << " particles=" << *nparticles << " reps=" << nreps;
    rep.config.case_name = cs.str();
    rep.config.ranks = 1;
    rep.config.machine = "host";
    rep.config.kernel_threads = 4;
    rep.config.audit_severity = "off";
    rep.profiler = &prof;
    obs::write_run_report_file(*report, rep);
    std::printf("run report: %s\n", report->c_str());
  }

  std::printf("\nmove speedup kt4 vs serial baseline: %.2fx\n",
              move_t.serial_recompute / move_t.kt4);
  std::printf("collide sorted kt4 vs cached serial:  %.2fx\n",
              collide_t.serial / collide_t.sorted_kt4);
  std::printf("deposit sorted kt4 vs cached serial:  %.2fx  -> %s\n",
              deposit_t.serial / deposit_t.sorted_kt4, out->c_str());
  return 0;
}
