// Microbenchmarks (google-benchmark) for the communication strategies and
// the load-balancer building blocks, plus a check of the paper's Sec. IV-B3
// analytic model: centralized ~ 2N transactions / 2M records, distributed
// ~ N(N-1) transactions / M records.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "balance/hungarian.hpp"
#include "obs/run_report.hpp"
#include "exchange/exchange.hpp"
#include "par/machine.hpp"
#include "par/runtime.hpp"
#include "partition/partitioner.hpp"
#include "support/rng.hpp"

namespace {

using namespace dsmcpic;

struct ExchangeWorld {
  par::Runtime rt;
  std::vector<dsmc::ParticleStore> stores;
  std::vector<std::vector<std::uint8_t>> removed;
  std::vector<std::int32_t> owner;

  ExchangeWorld(int nranks, int particles_per_rank)
      : rt(nranks, par::Topology(par::MachineProfile::tianhe2(), nranks)),
        stores(nranks),
        removed(nranks),
        owner(nranks * 8) {
    for (std::size_t c = 0; c < owner.size(); ++c)
      owner[c] = static_cast<std::int32_t>(c % nranks);
    Rng rng(7);
    for (int r = 0; r < nranks; ++r) {
      for (int i = 0; i < particles_per_rank; ++i) {
        dsmc::ParticleRecord p;
        p.cell = static_cast<std::int32_t>(rng.uniform_index(owner.size()));
        p.id = r * 100000 + i;
        stores[r].add(p);
      }
      removed[r].assign(stores[r].size(), 0);
    }
  }
};

void BM_ExchangeCentralized(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ExchangeWorld w(nranks, 256);
    state.ResumeTiming();
    exchange::exchange_particles(w.rt, "x", exchange::Strategy::kCentralized,
                                 w.stores, w.removed, w.owner);
  }
}
BENCHMARK(BM_ExchangeCentralized)->Arg(4)->Arg(16)->Arg(64);

void BM_ExchangeDistributed(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ExchangeWorld w(nranks, 256);
    state.ResumeTiming();
    exchange::exchange_particles(w.rt, "x", exchange::Strategy::kDistributed,
                                 w.stores, w.removed, w.owner);
  }
}
BENCHMARK(BM_ExchangeDistributed)->Arg(4)->Arg(16)->Arg(64);

void BM_PartitionerKway(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  // 32x32 grid graph.
  partition::Graph g;
  const int nx = 32;
  g.xadj.assign(nx * nx + 1, 0);
  std::vector<std::vector<std::int32_t>> adj(nx * nx);
  for (int y = 0; y < nx; ++y)
    for (int x = 0; x < nx; ++x) {
      const int v = y * nx + x;
      if (x + 1 < nx) {
        adj[v].push_back(v + 1);
        adj[v + 1].push_back(v);
      }
      if (y + 1 < nx) {
        adj[v].push_back(v + nx);
        adj[v + nx].push_back(v);
      }
    }
  for (int v = 0; v < nx * nx; ++v) g.xadj[v + 1] = g.xadj[v] + adj[v].size();
  for (int v = 0; v < nx * nx; ++v)
    g.adjncy.insert(g.adjncy.end(), adj[v].begin(), adj[v].end());
  for (auto _ : state) {
    auto r = partition::part_graph_kway(g, k);
    benchmark::DoNotOptimize(r.cut);
  }
}
BENCHMARK(BM_PartitionerKway)->Arg(4)->Arg(16)->Arg(64);

void BM_HungarianMaxWeight(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<double> w(static_cast<std::size_t>(n) * n);
  for (auto& x : w) x = rng.uniform(0, 1000);
  for (auto _ : state) {
    auto r = balance::hungarian_max(w, n);
    benchmark::DoNotOptimize(r.total);
  }
}
BENCHMARK(BM_HungarianMaxWeight)->Arg(24)->Arg(96)->Arg(384)->Arg(1536);

/// Validates the Sec. IV-B3 analytic model against the implementation.
void BM_CommModelCheck(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  std::uint64_t cc_tx = 0, dc_tx = 0;
  double cc_bytes = 0, dc_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ExchangeWorld cc(nranks, 256), dc(nranks, 256);
    state.ResumeTiming();
    exchange::exchange_particles(cc.rt, "x", exchange::Strategy::kCentralized,
                                 cc.stores, cc.removed, cc.owner);
    exchange::exchange_particles(dc.rt, "x", exchange::Strategy::kDistributed,
                                 dc.stores, dc.removed, dc.owner);
    cc_tx = cc.rt.phase_stats("x").transactions;
    dc_tx = dc.rt.phase_stats("x").transactions;
    cc_bytes = cc.rt.phase_stats("x").bytes;
    dc_bytes = dc.rt.phase_stats("x").bytes;
  }
  state.counters["cc_tx"] = static_cast<double>(cc_tx);
  state.counters["cc_tx_model_2N"] = 2.0 * nranks;
  state.counters["dc_tx"] = static_cast<double>(dc_tx);
  state.counters["dc_tx_model_NN"] = static_cast<double>(nranks) * (nranks - 1);
  state.counters["bytes_ratio_cc_over_dc"] =
      dc_bytes > 0 ? cc_bytes / dc_bytes : 0.0;  // model: ~2M vs M
}
BENCHMARK(BM_CommModelCheck)->Arg(8)->Arg(32);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so this binary honours the fleet-wide
// `--report <path>` convention (one run_report.json per bench binary):
// the flag is stripped before google-benchmark sees argv, since its own
// parser rejects unknown flags.
int main(int argc, char** argv) {
  std::string report_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  args.push_back(nullptr);
  int bargc = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!report_path.empty()) {
    dsmcpic::obs::RunReport rep;
    rep.config.bench = "bench_comm_model";
    rep.config.case_name = "google-benchmark microbench suite";
    rep.config.machine = "host";
    rep.config.audit_severity = "off";
    dsmcpic::obs::write_run_report_file(report_path, rep);
    std::fprintf(stderr, "run report: %s\n", report_path.c_str());
  }
  return 0;
}
