// O(10^4)-rank scaling of the virtual runtime (DESIGN.md §2i). Three
// questions, three lane groups:
//
//  1. sweep  — does a superstep's HOST cost stay tractable as the virtual
//     rank count grows to 4096? Sweeps --ranks with the sparse neighbor
//     exchange (NC) on the Tianhe-3 profile and reports wall-clock
//     milliseconds per superstep (the driver-loop overhead the pooling +
//     O(active) dispatch work targets; virtual seconds are unaffected).
//  2. sparse — a 4096-rank NOMINAL machine running a 512-rank ACTIVE
//     ensemble (--ranks-initial semantics) must cost close to a plain
//     512-rank machine per superstep: parked ranks are skipped by
//     dispatch, so the nominal size should price in at ~zero.
//  3. elastic — on an overhead-dominated (high-imbalance) configuration,
//     --ensemble elastic should park ranks and reduce the summed busy
//     virtual seconds (node-seconds) vs the fixed dense ensemble.
//
// With --out the lanes land in a JSON consumable by
// scripts/check_bench_regression.py --require-lanes.

#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common.hpp"
#include "trace/json_writer.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

namespace {

struct TimedCase {
  bench::CaseResult result;
  double wall_ms = 0.0;
  double wall_ms_per_superstep = 0.0;
};

TimedCase run_timed(const core::Dataset& ds, const core::ParallelConfig& par,
                    const BenchOptions& opt) {
  TimedCase t;
  const auto t0 = std::chrono::steady_clock::now();
  t.result = bench::run_case(ds, par, opt);
  const auto t1 = std::chrono::steady_clock::now();
  t.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (t.result.summary.supersteps > 0)
    t.wall_ms_per_superstep =
        t.wall_ms / static_cast<double>(t.result.summary.supersteps);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "Virtual-runtime rank scaling — NC sweep to 4096 ranks, parked-rank "
      "overhead, and elastic vs fixed ensembles (Tianhe-3 profile)");
  bench::CommonFlags common(cli, "bench_scale_ranks", "512,1024,2048,4096", 3);
  const std::string* strategy_flag = cli.add_string(
      "strategy", "nc", "exchange strategy for the sweep: cc | dc | hc | nc");
  const std::int64_t* sparse_active = cli.add_int(
      "sparse-active", 512,
      "active rank count for the sparse lane (nominal = largest sweep "
      "point)");
  const std::int64_t* imb_ranks = cli.add_int(
      "imb-ranks", 256,
      "nominal rank count of the overhead-dominated elastic-vs-fixed lanes");
  const std::int64_t* imb_steps = cli.add_int(
      "imb-steps", 30, "DSMC steps of the elastic-vs-fixed lanes");
  const std::string* out =
      cli.add_string("out", "", "write the lane timings as JSON to this path");
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });
  if (opt.machine == "tianhe2") opt.machine = "tianhe3";  // paper's target

  const exchange::Strategy strategy = exchange::parse_strategy(
      [&] {
        std::string s = *strategy_flag;
        for (char& c : s) c = static_cast<char>(std::toupper(c));
        return s;
      }());

  // A 12000-cell coarse grid so even 4096 parts average ~3 cells per rank.
  core::Dataset ds = core::make_dataset(2, opt.particle_scale);
  ds.config.nozzle.radial_divisions = 10;
  ds.config.nozzle.axial_divisions = 20;

  std::printf("scale sweep: %lld coarse cells, machine=%s, strategy=%s, "
              "%d steps\n\n",
              static_cast<long long>(ds.config.nozzle.expected_tets()),
              opt.machine.c_str(), exchange::strategy_name(strategy),
              opt.steps);

  // ---- lane group 1: the rank sweep --------------------------------------
  struct SweepPoint {
    int ranks = 0;
    TimedCase t;
  };
  std::vector<SweepPoint> sweep;
  for (const int nranks : opt.ranks) {
    // The KM matching is O(n^3) and the dense handshake O(n^2): both are
    // exactly what this bench is NOT measuring, so balancing stays off.
    auto par = bench::make_parallel(ds, nranks, strategy,
                                    /*balance_enabled=*/false, opt);
    SweepPoint p;
    p.ranks = nranks;
    p.t = run_timed(ds, par, opt);
    sweep.push_back(p);
    std::fprintf(stderr, "  done ranks=%-5d wall=%.0fms (%.3f ms/superstep)\n",
                 nranks, p.t.wall_ms, p.t.wall_ms_per_superstep);
  }

  // ---- lane group 2: parked ranks must be ~free --------------------------
  const int nominal = opt.ranks.back();
  const int active = static_cast<int>(*sparse_active);
  TimedCase dense, sparse;
  {
    auto par = bench::make_parallel(ds, active, strategy, false, opt);
    dense = run_timed(ds, par, opt);
  }
  {
    BenchOptions sopt = opt;
    sopt.ranks_initial = active;  // fixed reduced ensemble
    auto par = bench::make_parallel(ds, nominal, strategy, false, sopt);
    sparse = run_timed(ds, par, opt);
  }
  const double wall_ratio =
      dense.wall_ms_per_superstep > 0.0
          ? sparse.wall_ms_per_superstep / dense.wall_ms_per_superstep
          : 0.0;
  std::printf("parked-rank overhead: %d nominal / %d active = %.3f "
              "ms/superstep vs %d dense = %.3f ms/superstep (ratio %.2fx)\n",
              nominal, active, sparse.wall_ms_per_superstep, active,
              dense.wall_ms_per_superstep, wall_ratio);

  // ---- lane group 3: elastic vs fixed when overhead dominates ------------
  // Few particles per rank on a mid-size machine: synchronization swamps
  // compute, so the elastic policy should park ranks hard.
  BenchOptions iopt = opt;
  iopt.steps = static_cast<int>(*imb_steps);
  const int inr = static_cast<int>(*imb_ranks);
  TimedCase fixed, elastic;
  {
    auto par = bench::make_parallel(ds, inr, strategy, false, iopt);
    fixed = run_timed(ds, par, iopt);
  }
  {
    BenchOptions eopt = iopt;
    eopt.ensemble = "elastic";
    eopt.ranks_min = 8;
    auto par = bench::make_parallel(ds, inr, strategy, false, eopt);
    elastic = run_timed(ds, par, eopt);
  }
  const double fixed_sum = fixed.result.summary.busy_sum_total();
  const double elastic_sum = elastic.result.summary.busy_sum_total();
  int resizes = 0;
  for (const auto& d : elastic.result.summary.ensemble_decisions)
    resizes += d.resized ? 1 : 0;
  std::printf("elastic vs fixed @ %d ranks, %d steps: summed busy %.1f s vs "
              "%.1f s (%.1f%% saved), final active %d, %d resize(s)\n",
              inr, iopt.steps, elastic_sum, fixed_sum,
              100.0 * (fixed_sum - elastic_sum) / fixed_sum,
              elastic.result.summary.active_ranks, resizes);

  Table t("rank sweep — host cost per superstep (" +
          std::string(exchange::strategy_name(strategy)) + ", balance off)");
  t.header({"ranks", "supersteps", "wall_ms", "ms/superstep", "virtual_s"});
  for (const SweepPoint& p : sweep)
    t.row({std::to_string(p.ranks),
           std::to_string(p.t.result.summary.supersteps),
           Table::num(p.t.wall_ms, 0), Table::num(p.t.wall_ms_per_superstep, 3),
           Table::num(p.t.result.total_time, 1)});
  t.print();

  if (!out->empty()) {
    std::ofstream os(*out, std::ios::binary | std::ios::trunc);
    if (!os.good()) {
      std::fprintf(stderr, "cannot open %s\n", out->c_str());
      return 1;
    }
    trace::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "dsmcpic.bench_scale_ranks.v1");
    w.kv("bench", "bench_scale_ranks");
    w.key("mesh");
    w.begin_object();
    w.kv("dataset", 2);
    w.kv("coarse_tets", ds.config.nozzle.expected_tets());
    w.kv("steps", opt.steps);
    w.kv("strategy", exchange::strategy_name(strategy));
    w.kv("machine", opt.machine);
    w.end_object();
    w.kv("particles", sweep.front().t.result.summary.final_particles);
    w.key("sweep");
    w.begin_array();
    for (const SweepPoint& p : sweep) {
      w.begin_object();
      w.kv("ranks", p.ranks);
      w.kv("supersteps", p.t.result.summary.supersteps);
      w.kv("wall_ms", p.t.wall_ms);
      w.kv("wall_ms_per_superstep", p.t.wall_ms_per_superstep);
      w.kv("total_virtual_s", p.t.result.total_time);
      w.end_object();
    }
    w.end_array();
    w.key("lanes");
    w.begin_object();
    auto lane = [&](const std::string& name, const TimedCase& c) {
      w.key(name);
      w.begin_object();
      w.kv("wall_ms", c.wall_ms);
      w.kv("wall_ms_per_superstep", c.wall_ms_per_superstep);
      w.kv("total_virtual_s", c.result.total_time);
      w.kv("summed_busy_virtual_s", c.result.summary.busy_sum_total());
      w.kv("active_final", c.result.summary.active_ranks);
      w.end_object();
    };
    lane("sweep_" + std::to_string(nominal), sweep.back().t);
    lane("dense_" + std::to_string(active), dense);
    lane("sparse_" + std::to_string(nominal) + "_active_" +
             std::to_string(active),
         sparse);
    lane("fixed_highimb", fixed);
    lane("elastic_highimb", elastic);
    w.end_object();
    w.kv("sparse_vs_dense_wall_ratio", wall_ratio);
    w.kv("elastic_saving_vs_fixed",
         fixed_sum > 0.0 ? (fixed_sum - elastic_sum) / fixed_sum : 0.0);
    w.end_object();
    w.finish();
    os << "\n";
    std::fprintf(stderr, "lanes JSON: %s\n", out->c_str());
  }
  return 0;
}
