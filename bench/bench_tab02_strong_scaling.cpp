// Reproduces paper Table II + Fig. 10: strong scalability of the four
// implementation variants — {distributed (DC), centralized (CC)} x
// {with, without dynamic load balancing} — on the Tianhe-2 profile with a
// Dataset 2 analogue. Prints total execution times (virtual seconds), the
// LB improvement percentages shown on the Fig. 10 bars, and the speedup /
// parallel-efficiency series relative to the smallest rank count.

#include <cstdio>
#include <map>

#include "common.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Cli cli(
      "Table II / Fig. 10 — strong scaling of DC/CC x LB/no-LB (Dataset 2 "
      "analogue, Tianhe-2 profile)");
  bench::CommonFlags common(cli, "bench_tab02_strong_scaling", "24,48,96,192,384,768,1536", 40);
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });

  const core::Dataset ds = core::make_dataset(2, opt.particle_scale);
  std::printf("%s analogue: %lld coarse cells, targets H=%lld H+=%lld, "
              "machine=%s, %d DSMC steps\n\n",
              ds.name.c_str(),
              static_cast<long long>(ds.config.nozzle.expected_tets()),
              static_cast<long long>(ds.target_h),
              static_cast<long long>(ds.target_hplus), opt.machine.c_str(),
              opt.steps);

  struct Variant {
    const char* name;
    exchange::Strategy strategy;
    bool lb;
  };
  const Variant variants[] = {
      {"DC+LB", exchange::Strategy::kDistributed, true},
      {"DC-Only", exchange::Strategy::kDistributed, false},
      {"CC+LB", exchange::Strategy::kCentralized, true},
      {"CC-Only", exchange::Strategy::kCentralized, false},
  };

  std::map<std::string, std::map<int, double>> times;
  for (const auto& v : variants) {
    for (const int nranks : opt.ranks) {
      const auto par = bench::make_parallel(ds, nranks, v.strategy, v.lb, opt);
      const auto r = bench::run_case(ds, par, opt);
      times[v.name][nranks] = r.total_time;
      std::fprintf(stderr, "  done %-8s ranks=%-5d t=%.1f\n", v.name, nranks,
                   r.total_time);
    }
  }

  Table t("Table II — total execution time (virtual seconds)");
  std::vector<std::string> header{"variant"};
  for (const int n : opt.ranks) header.push_back(std::to_string(n));
  t.header(header);
  for (const auto& v : variants) {
    std::vector<std::string> row{v.name};
    for (const int n : opt.ranks) row.push_back(Table::num(times[v.name][n], 1));
    t.row(row);
  }
  t.print();

  Table gain("Fig. 10 — LB improvement (percent, as on the bars)");
  gain.header(header);
  for (const char* pair : {"DC", "CC"}) {
    std::vector<std::string> row{std::string(pair) + " LB gain"};
    const auto& with = times[std::string(pair) + "+LB"];
    const auto& without = times[std::string(pair) + "-Only"];
    for (const int n : opt.ranks)
      row.push_back(Table::pct((without.at(n) - with.at(n)) / without.at(n)));
    gain.row(row);
  }
  gain.print();

  Table speed("Fig. 10 — speedup & efficiency vs the smallest rank count");
  speed.header(header);
  for (const auto& v : variants) {
    std::vector<std::string> row{std::string(v.name) + " speedup"};
    const double base = times[v.name][opt.ranks.front()];
    for (const int n : opt.ranks) row.push_back(Table::num(base / times[v.name][n], 2));
    speed.row(row);
    std::vector<std::string> eff{std::string(v.name) + " efficiency"};
    for (const int n : opt.ranks)
      eff.push_back(Table::pct(base / times[v.name][n] /
                                   (static_cast<double>(n) / opt.ranks.front()) -
                               0.0));
    speed.row(eff);
  }
  speed.print();

  std::printf(
      "\nPaper shape check: DC beats CC at every rank count on Tianhe-2; LB "
      "helps most at small rank counts (paper: ~40%% at 48 cores); max "
      "speedup ~14x at 1536 (paper Table II).\n");
  return 0;
}
