// Reproduces paper Fig. 13: sensitivity to the lii Threshold. A small
// threshold triggers rebalancing as soon as the period allows (better when
// imbalance is severe, i.e. at small rank counts); a large threshold
// tolerates more imbalance before paying the rebalance cost.
//
// On top of the paper's fixed-threshold sweep, a "lookahead+timer" lane
// runs the same cases with the timer-augmented cost model and the
// look-ahead rebalance policy (DESIGN.md §2h), which needs no threshold
// tuning at all. With --out the whole grid lands in a JSON consumable by
// scripts/check_bench_regression.py --require-lanes.

#include <cstdio>
#include <fstream>
#include <map>

#include "common.hpp"
#include "trace/json_writer.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Cli cli("Fig. 13 — impact of the lii Threshold (DC+LB, Dataset 2 "
          "analogue, Tianhe-2 profile)");
  bench::CommonFlags common(cli, "bench_fig13_threshold_sweep", "24,48,96,192,384", 40);
  const auto* th_list =
      cli.add_string("thresholds", "1.5,2.0,3.0", "threshold values");
  const auto* out = cli.add_string(
      "out", "", "write the lane timings as JSON to this path");
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });

  std::vector<double> thresholds;
  {
    std::stringstream ss(*th_list);
    std::string item;
    while (std::getline(ss, item, ',')) thresholds.push_back(std::stod(item));
  }

  const core::Dataset ds = core::make_dataset(2, opt.particle_scale);

  auto run = [&](int nranks, double th, balance::CostModelKind cm,
                 balance::PolicyKind pk) {
    auto par = bench::make_parallel(ds, nranks,
                                    exchange::Strategy::kDistributed, true,
                                    opt);
    par.balance.threshold = th;
    par.balance.cost_model.kind = cm;
    par.balance.policy.kind = pk;
    par.balance.policy.horizon = opt.horizon;
    return bench::run_case(ds, par, opt).summary;
  };

  std::map<double, std::map<int, core::RunSummary>> results;
  for (const double th : thresholds) {
    for (const int nranks : opt.ranks) {
      results[th][nranks] = run(nranks, th, balance::CostModelKind::kStatic,
                                balance::PolicyKind::kThreshold);
      std::fprintf(stderr, "  done Threshold=%.1f ranks=%d\n", th, nranks);
    }
  }
  // The adaptive lane: look-ahead policy over timer-corrected weights. The
  // threshold stays at the paper default (it is only the H = 0 fallback).
  std::map<int, core::RunSummary> look;
  for (const int nranks : opt.ranks) {
    look[nranks] = run(nranks, 2.0, balance::CostModelKind::kTimer,
                       balance::PolicyKind::kLookahead);
    std::fprintf(stderr, "  done lookahead+timer ranks=%d\n", nranks);
  }

  Table t("Fig. 13 — total execution time (virtual seconds) per Threshold");
  std::vector<std::string> header{"Threshold"};
  for (const int n : opt.ranks) header.push_back(std::to_string(n));
  t.header(header);
  for (const double th : thresholds) {
    std::vector<std::string> row{Table::num(th, 1)};
    for (const int n : opt.ranks)
      row.push_back(Table::num(results[th][n].total_time, 1));
    t.row(row);
  }
  {
    std::vector<std::string> row{"lookahead"};
    for (const int n : opt.ranks)
      row.push_back(Table::num(look[n].total_time, 1));
    t.row(row);
  }
  t.print();

  Table rb("Rebalances triggered");
  rb.header(header);
  for (const double th : thresholds) {
    std::vector<std::string> row{Table::num(th, 1)};
    for (const int n : opt.ranks)
      row.push_back(std::to_string(results[th][n].rebalance.rebalances));
    rb.row(row);
  }
  {
    std::vector<std::string> row{"lookahead"};
    for (const int n : opt.ranks)
      row.push_back(std::to_string(look[n].rebalance.rebalances));
    rb.row(row);
  }
  rb.print();

  // Headline: the adaptive lane against the paper-default Threshold = 2.0
  // (fall back to the first swept threshold if 2.0 was not swept).
  const double base_th =
      results.count(2.0) ? 2.0 : thresholds.front();
  double base_total = 0.0, look_total = 0.0;
  for (const int n : opt.ranks) {
    base_total += results[base_th][n].total_time;
    look_total += look[n].total_time;
  }
  std::printf(
      "\nLook-ahead + timer vs fixed Threshold=%.1f, summed over rank "
      "sweep: %.1f s vs %.1f s (%s)\n",
      base_th, look_total, base_total,
      Table::pct((base_total - look_total) / base_total).c_str());
  std::printf(
      "Paper shape check: smaller thresholds are slightly better at small "
      "rank counts (severe imbalance); the effect fades as ranks grow.\n");

  if (!out->empty()) {
    std::ofstream os(*out, std::ios::binary | std::ios::trunc);
    if (!os.good()) {
      std::fprintf(stderr, "cannot open %s\n", out->c_str());
      return 1;
    }
    trace::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "dsmcpic.bench_fig13.v1");
    w.kv("bench", "bench_fig13_threshold_sweep");
    w.key("mesh");
    w.begin_object();
    w.kv("dataset", 2);
    w.kv("steps", opt.steps);
    w.key("ranks");
    w.begin_array();
    for (const int n : opt.ranks) w.value(n);
    w.end_array();
    w.end_object();
    w.kv("particles", results[thresholds.front()][opt.ranks.front()]
                          .final_particles);
    w.key("lanes");
    w.begin_object();
    auto lane = [&](const std::string& name,
                    std::map<int, core::RunSummary>& by_rank) {
      w.key(name);
      w.begin_object();
      double total = 0.0;
      for (const int n : opt.ranks) {
        w.key("r" + std::to_string(n));
        w.begin_object();
        w.kv("total_virtual_s", by_rank[n].total_time);
        w.kv("rebalances", by_rank[n].rebalance.rebalances);
        w.end_object();
        total += by_rank[n].total_time;
      }
      w.kv("sum_virtual_s", total);
      w.end_object();
    };
    for (const double th : thresholds) {
      std::ostringstream name;
      name << "threshold_" << Table::num(th, 1);
      lane(name.str(), results[th]);
    }
    lane("lookahead_timer", look);
    w.end_object();
    w.kv("lookahead_timer_speedup_vs_threshold", base_total / look_total);
    w.end_object();
    w.finish();
    os << "\n";
    std::fprintf(stderr, "lanes JSON: %s\n", out->c_str());
  }
  return 0;
}
