// Reproduces paper Fig. 13: sensitivity to the lii Threshold. A small
// threshold triggers rebalancing as soon as the period allows (better when
// imbalance is severe, i.e. at small rank counts); a large threshold
// tolerates more imbalance before paying the rebalance cost.

#include <cstdio>
#include <map>

#include "common.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Cli cli("Fig. 13 — impact of the lii Threshold (DC+LB, Dataset 2 "
          "analogue, Tianhe-2 profile)");
  bench::CommonFlags common(cli, "bench_fig13_threshold_sweep", "24,48,96,192,384", 40);
  const auto* th_list =
      cli.add_string("thresholds", "1.5,2.0,3.0", "threshold values");
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions opt = common.finish();

  std::vector<double> thresholds;
  {
    std::stringstream ss(*th_list);
    std::string item;
    while (std::getline(ss, item, ',')) thresholds.push_back(std::stod(item));
  }

  const core::Dataset ds = core::make_dataset(2, opt.particle_scale);

  std::map<double, std::map<int, core::RunSummary>> results;
  for (const double th : thresholds) {
    for (const int nranks : opt.ranks) {
      auto par = bench::make_parallel(ds, nranks,
                                      exchange::Strategy::kDistributed, true,
                                      opt);
      par.balance.threshold = th;
      results[th][nranks] = bench::run_case(ds, par, opt).summary;
      std::fprintf(stderr, "  done Threshold=%.1f ranks=%d\n", th, nranks);
    }
  }

  Table t("Fig. 13 — total execution time (virtual seconds) per Threshold");
  std::vector<std::string> header{"Threshold"};
  for (const int n : opt.ranks) header.push_back(std::to_string(n));
  t.header(header);
  for (const double th : thresholds) {
    std::vector<std::string> row{Table::num(th, 1)};
    for (const int n : opt.ranks)
      row.push_back(Table::num(results[th][n].total_time, 1));
    t.row(row);
  }
  t.print();

  Table rb("Rebalances triggered");
  rb.header(header);
  for (const double th : thresholds) {
    std::vector<std::string> row{Table::num(th, 1)};
    for (const int n : opt.ranks)
      row.push_back(std::to_string(results[th][n].rebalance.rebalances));
    rb.row(row);
  }
  rb.print();
  std::printf(
      "\nPaper shape check: smaller thresholds are slightly better at small "
      "rank counts (severe imbalance); the effect fades as ranks grow.\n");
  return 0;
}
