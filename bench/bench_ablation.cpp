// Ablation studies for this library's design choices (DESIGN.md §4), beyond
// the paper's own sensitivity analysis:
//   1. Exchange strategy 3-way: the paper's CC and DC plus our hierarchical
//      node-leader extension (HC) across rank counts.
//   2. Direct k-way refinement in the partitioner: cut/imbalance with and
//      without the post-pass.
//   3. Poisson preconditioner: block-SSOR vs Jacobi vs none (iterations and
//      virtual solve time).

#include <cstdio>
#include <map>

#include "balance/rebalancer.hpp"
#include "common.hpp"
#include "linalg/dist.hpp"
#include "mesh/nozzle.hpp"
#include "partition/partitioner.hpp"
#include "pic/poisson.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

namespace {

void strategy_ablation(const BenchOptions& opt) {
  const core::Dataset ds = core::make_dataset(2, opt.particle_scale);
  std::map<std::string, std::map<int, double>> times;
  for (const auto strategy :
       {exchange::Strategy::kDistributed, exchange::Strategy::kCentralized,
        exchange::Strategy::kHierarchical}) {
    for (const int nranks : opt.ranks) {
      auto par = bench::make_parallel(ds, nranks, strategy, true, opt);
      times[exchange::strategy_name(strategy)][nranks] =
          bench::run_case(ds, par, opt).total_time;
      std::fprintf(stderr, "  strategy %s ranks=%d done\n",
                   exchange::strategy_name(strategy), nranks);
    }
  }
  Table t("Ablation 1 — exchange strategy (total virtual seconds, Tianhe-2)");
  std::vector<std::string> header{"strategy"};
  for (const int n : opt.ranks) header.push_back(std::to_string(n));
  t.header(header);
  for (const char* s : {"DC", "CC", "HC"}) {
    std::vector<std::string> row{s};
    for (const int n : opt.ranks) row.push_back(Table::num(times[s][n], 1));
    t.row(row);
  }
  t.print();
  std::printf(
      "HC = hierarchical node-leader extension: DC-like volume with "
      "N_nodes^2 instead of N^2 inter-node transactions.\n\n");
}

void repartitioner_ablation(const BenchOptions& opt) {
  // End-to-end: the paper's weighted graph decomposition vs the geometric
  // baselines of the related work (CHAOS-style octree, Morton SFC) driving
  // the same dynamic load balancer.
  const core::Dataset ds = core::make_dataset(2, opt.particle_scale);
  Table t("Ablation 1b — repartitioner inside the load balancer "
          "(total virtual seconds)");
  std::vector<std::string> header{"repartitioner"};
  for (const int n : opt.ranks) header.push_back(std::to_string(n));
  t.header(header);
  for (const auto repart : {balance::Repartitioner::kGraph,
                            balance::Repartitioner::kOctree,
                            balance::Repartitioner::kMorton}) {
    std::vector<std::string> row{balance::repartitioner_name(repart)};
    for (const int nranks : opt.ranks) {
      auto par = bench::make_parallel(ds, nranks,
                                      exchange::Strategy::kDistributed, true,
                                      opt);
      par.balance.repartitioner = repart;
      row.push_back(Table::num(bench::run_case(ds, par, opt).total_time, 1));
      std::fprintf(stderr, "  repart %s ranks=%d done\n",
                   balance::repartitioner_name(repart), nranks);
    }
    t.row(row);
  }
  t.print();
  std::printf(
      "Geometric baselines balance particle counts but ignore the dual-graph "
      "cut, so their exchanges move more particles per step.\n\n");
}

void refine_ablation() {
  mesh::NozzleSpec spec;
  spec.radial_divisions = 6;
  spec.axial_divisions = 18;
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(spec);
  partition::Graph dual;
  grid.dual_graph(dual.xadj, dual.adjncy);

  Table t("Ablation 2 — direct k-way refinement in the partitioner");
  t.header({"parts", "cut (raw)", "cut (refined)", "imb (raw)",
            "imb (refined)"});
  for (const int k : {8, 24, 96, 384}) {
    partition::PartitionOptions raw_opt;
    raw_opt.kway_refine_passes = 0;
    partition::PartitionOptions ref_opt;
    const auto raw = partition::part_graph_kway(dual, k, raw_opt);
    const auto refined = partition::part_graph_kway(dual, k, ref_opt);
    t.row({std::to_string(k), std::to_string(raw.cut),
           std::to_string(refined.cut), Table::num(raw.imbalance, 3),
           Table::num(refined.imbalance, 3)});
  }
  t.print();
  std::printf("\n");
}

void precon_ablation() {
  mesh::NozzleSpec spec;
  spec.radial_divisions = 6;
  spec.axial_divisions = 18;
  const mesh::TetMesh coarse = mesh::make_cylinder_nozzle(spec);
  const mesh::RefinedMesh fine =
      mesh::red_refine(coarse, mesh::nozzle_classifier(spec));
  const pic::PoissonSystem sys(fine.mesh, {});
  const std::vector<double> charge(sys.num_nodes(), 0.0);
  const std::vector<double> b = sys.rhs(charge);

  Table t("Ablation 3 — Poisson preconditioner (fine grid, " +
          std::to_string(sys.num_nodes()) + " nodes)");
  t.header({"ranks", "none", "jacobi", "block-ssor", "(CG iterations)"});
  for (const int nranks : {1, 8, 64}) {
    std::vector<std::int32_t> owner(sys.num_nodes());
    for (std::int32_t i = 0; i < sys.num_nodes(); ++i)
      owner[i] = (static_cast<std::int64_t>(i) * nranks) / sys.num_nodes();
    linalg::DistMatrix dm = linalg::DistMatrix::build(
        sys.matrix(), linalg::DistLayout::build(nranks, owner, sys.matrix()));
    std::vector<std::string> row{std::to_string(nranks)};
    for (const auto p : {linalg::Precon::kNone, linalg::Precon::kJacobi,
                         linalg::Precon::kBlockSsor}) {
      par::Runtime rt(nranks,
                      par::Topology(par::MachineProfile::tianhe2(), nranks));
      linalg::SolveOptions opt{.rel_tol = 1e-6, .max_iterations = 2000};
      opt.dist_precon = p;
      linalg::DistVector db = linalg::scatter_vector(dm.layout, b);
      linalg::DistVector dx(nranks);
      const auto res = linalg::dist_cg(rt, "solve", dm, db, dx, opt);
      row.push_back(std::to_string(res.iterations));
    }
    row.push_back("block precon weakens as blocks shrink");
    t.row(row);
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Design-choice ablations: exchange strategies, k-way refinement, "
          "Poisson preconditioning");
  bench::CommonFlags common(cli, "bench_ablation", "24,96,384", 30);
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });

  strategy_ablation(opt);
  repartitioner_ablation(opt);
  refine_ablation();
  precon_ablation();
  return 0;
}
