// Reproduces paper Fig. 11: on the BSCC profile with Dataset 3 (10x fewer
// simulation particles than Dataset 2), the distributed strategy's
// N(N-1)-transaction pattern becomes latency/congestion-bound at large rank
// counts, letting the centralized strategy win — the paper measures DC's
// communication cost exceeding 2x CC's at 768 processes, making the whole
// DC solver ~25% slower.

#include <cstdio>
#include <map>

#include "common.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Cli cli("Fig. 11 — DC vs CC total and exchange costs on BSCC, Dataset 3 "
          "analogue (few particles)");
  bench::CommonFlags common(cli, "bench_fig11_comm_crossover", "24,48,96,192,384,768", 40);
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });
  opt.machine = "bscc";  // the paper runs this experiment on BSCC

  const core::Dataset ds = core::make_dataset(3, opt.particle_scale);

  std::map<std::string, std::map<int, core::RunSummary>> results;
  for (const auto strategy : {exchange::Strategy::kDistributed,
                              exchange::Strategy::kCentralized}) {
    for (const int nranks : opt.ranks) {
      const auto par = bench::make_parallel(ds, nranks, strategy, true, opt);
      results[exchange::strategy_name(strategy)][nranks] =
          bench::run_case(ds, par, opt).summary;
      std::fprintf(stderr, "  done %s ranks=%d\n",
                   exchange::strategy_name(strategy), nranks);
    }
  }

  auto exchange_cost = [](const core::RunSummary& s) {
    return s.phase_max(core::phases::kDsmcExchange) +
           s.phase_max(core::phases::kPicExchange);
  };

  Table t("Fig. 11 — total times and communication costs (virtual seconds)");
  std::vector<std::string> header{"series"};
  for (const int n : opt.ranks) header.push_back(std::to_string(n));
  t.header(header);
  for (const char* s : {"DC", "CC"}) {
    std::vector<std::string> total{std::string(s) + " total"};
    std::vector<std::string> exch{std::string(s) + "_exchange"};
    for (const int n : opt.ranks) {
      total.push_back(Table::num(results[s][n].total_time, 1));
      exch.push_back(Table::num(exchange_cost(results[s][n]), 1));
    }
    t.row(total);
    t.row(exch);
  }
  t.print();

  Table ratio("DC/CC ratios (crossover when > 1)");
  ratio.header(header);
  std::vector<std::string> rt{"total DC/CC"}, re{"exchange DC/CC"};
  for (const int n : opt.ranks) {
    rt.push_back(Table::num(
        results["DC"][n].total_time / results["CC"][n].total_time, 2));
    re.push_back(Table::num(
        exchange_cost(results["DC"][n]) / exchange_cost(results["CC"][n]), 2));
  }
  ratio.row(rt);
  ratio.row(re);
  ratio.print();
  std::printf(
      "\nPaper shape check: totals are close below ~384 ranks; at 768 DC's "
      "exchange cost exceeds ~2x CC's and the DC solver is ~25%% slower.\n");
  return 0;
}
