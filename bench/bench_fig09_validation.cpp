// Reproduces paper Fig. 8/9: validation of the parallel implementation
// against the serial one on Dataset 1. Prints the H number density along
// the cylinder's central axis at four time points for both runs (Fig. 9a),
// the mean relative errors (Fig. 9b; paper: < 2.97%), and the relative
// standard deviation over repeated runs (paper: < 5%).

#include <cstdio>
#include <fstream>

#include "common.hpp"
#include "dsmc/sampling.hpp"
#include "support/stats.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

namespace {

struct ProfileSeries {
  std::vector<std::vector<double>> at_time;  // [time point][axis point]
};

ProfileSeries run_profiles(const core::Dataset& ds, int nranks,
                           const std::vector<int>& sample_steps, int npoints,
                           std::uint64_t seed) {
  core::SolverConfig cfg = ds.config;
  cfg.seed = seed;
  core::ParallelConfig par;
  par.nranks = nranks;
  par.balance.enabled = nranks > 1;
  par.balance.period = 10;
  core::CoupledSolver solver(cfg, par);
  ProfileSeries out;
  int done = 0;
  for (const int target : sample_steps) {
    solver.run(target - done);
    done = target;
    const auto density = solver.sampler().number_density(dsmc::kSpeciesH);
    out.at_time.push_back(dsmc::axis_profile(
        solver.coarse_grid(), density, cfg.nozzle.length, npoints));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("Fig. 8/9 — serial vs parallel validation on Dataset 1");
  bench::CommonFlags common(cli, "bench_fig09_validation", "4", 80);
  const auto* npoints = cli.add_int("points", 12, "axis sample points");
  const auto* repeats = cli.add_int("repeats", 3, "repeated runs for RSD");
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });

  const core::Dataset ds = core::make_dataset(1, opt.particle_scale);
  // Four evenly spaced time points, like the paper's 3/6/9/12 us.
  std::vector<int> sample_steps;
  for (int k = 1; k <= 4; ++k) sample_steps.push_back(opt.steps * k / 4);

  const auto serial = run_profiles(ds, 1, sample_steps,
                                   static_cast<int>(*npoints), opt.seed);
  const auto parallel =
      run_profiles(ds, opt.ranks.front(), sample_steps,
                   static_cast<int>(*npoints), opt.seed);

  for (std::size_t tp = 0; tp < sample_steps.size(); ++tp) {
    const double t_us =
        sample_steps[tp] * ds.config.dt_dsmc * 1e6;  // microseconds
    Table t("Fig. 9a — H number density on the central axis, t = " +
            Table::num(t_us, 2) + " us (serial vs " +
            std::to_string(opt.ranks.front()) + "-rank parallel)");
    t.header({"z/L", "serial [1/m^3]", "parallel [1/m^3]", "rel.err"});
    const auto& ps = serial.at_time[tp];
    const auto& pp = parallel.at_time[tp];
    for (std::size_t k = 0; k < ps.size(); ++k) {
      const double z = (static_cast<double>(k) + 0.5) / ps.size();
      t.row({Table::num(z, 2), Table::sci(ps[k]), Table::sci(pp[k]),
             ps[k] > 0 ? Table::num(100 * std::abs(pp[k] - ps[k]) / ps[k], 1) +
                             "%"
                       : "-"});
    }
    t.print();
    // Mean relative error over the established region (paper skips the
    // near-zero margin where the density has not converged).
    std::vector<double> a, b;
    const double floor = 0.1 * max_of(ps);
    for (std::size_t k = 0; k < ps.size(); ++k)
      if (ps[k] > floor) {
        a.push_back(pp[k]);
        b.push_back(ps[k]);
      }
    std::printf("mean relative error at t=%.2fus: %.2f%%  (paper: < 2.97%%)\n\n",
                t_us, 100.0 * mean_relative_error(a, b));
  }

  // Fig. 8 — (r, z) number-density contour maps of the serial and parallel
  // runs at the final time point, written as CSV (z_bin, r_bin, n_serial,
  // n_parallel) for external plotting.
  {
    core::SolverConfig cfg = ds.config;
    cfg.seed = opt.seed;
    core::CoupledSolver serial_solver(cfg, {.nranks = 1});
    core::ParallelConfig ppar;
    ppar.nranks = opt.ranks.front();
    ppar.balance.period = 10;
    core::CoupledSolver parallel_solver(cfg, ppar);
    serial_solver.run(opt.steps);
    parallel_solver.run(opt.steps);
    const int nr = 8, nz = 24;
    const auto ms = dsmc::rz_map(
        serial_solver.coarse_grid(),
        serial_solver.sampler().number_density(dsmc::kSpeciesH),
        cfg.nozzle.radius, cfg.nozzle.length, nr, nz);
    const auto mp = dsmc::rz_map(
        parallel_solver.coarse_grid(),
        parallel_solver.sampler().number_density(dsmc::kSpeciesH),
        cfg.nozzle.radius, cfg.nozzle.length, nr, nz);
    std::ofstream os("fig08_contours.csv");
    os << "iz,ir,n_serial,n_parallel\n";
    for (int iz = 0; iz < nz; ++iz)
      for (int ir = 0; ir < nr; ++ir)
        os << iz << "," << ir << "," << ms[iz * nr + ir] << ","
           << mp[iz * nr + ir] << "\n";
    std::printf(
        "Fig. 8 contour maps written to fig08_contours.csv (%dx%d bins)\n\n",
        nz, nr);
  }

  // Relative standard deviation across repeated parallel runs (Fig. 9b
  // caption: RSD of 5 runs < 5%).
  std::vector<double> peak_density;
  for (int rep = 0; rep < static_cast<int>(*repeats); ++rep) {
    const auto p = run_profiles(ds, opt.ranks.front(), {opt.steps},
                                static_cast<int>(*npoints),
                                opt.seed + 1000 + rep);
    peak_density.push_back(max_of(p.at_time[0]));
  }
  std::printf("relative standard deviation of %d runs (peak axis density): "
              "%.2f%%  (paper: < 5%%)\n",
              static_cast<int>(*repeats),
              100.0 * relative_stddev(peak_density));
  return 0;
}
