// Reproduces paper Table V: overhead of the dynamic load balancer with and
// without the Kuhn–Munkres remapping, for both communication strategies.
// The paper finds KM cutting the rebalance overhead by ~2x (it minimizes
// the particles migrated when adopting the new decomposition), with the
// effect fading at large rank counts where rebalancing happens rarely.

#include <cstdio>
#include <map>

#include "common.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Cli cli("Table V — load-balancing overhead with vs without the KM "
          "remapping (Dataset 2 analogue)");
  bench::CommonFlags common(cli, "bench_tab05_km_overhead", "24,48,96,192,384", 40);
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });

  const core::Dataset ds = core::make_dataset(2, opt.particle_scale);

  struct Key {
    exchange::Strategy strategy;
    bool km;
    const char* name;
  };
  const Key keys[] = {
      {exchange::Strategy::kDistributed, true, "DC with KM"},
      {exchange::Strategy::kDistributed, false, "DC without KM"},
      {exchange::Strategy::kCentralized, true, "CC with KM"},
      {exchange::Strategy::kCentralized, false, "CC without KM"},
  };

  std::map<std::string, std::map<int, core::RunSummary>> results;
  for (const auto& k : keys) {
    for (const int nranks : opt.ranks) {
      auto par = bench::make_parallel(ds, nranks, k.strategy, true, opt);
      par.balance.use_km = k.km;
      results[k.name][nranks] = bench::run_case(ds, par, opt).summary;
      std::fprintf(stderr, "  done %-14s ranks=%d\n", k.name, nranks);
    }
  }

  Table t("Table V — Rebalance overhead (virtual seconds, max over ranks)");
  std::vector<std::string> header{"variant"};
  for (const int n : opt.ranks) header.push_back(std::to_string(n));
  t.header(header);
  for (const auto& k : keys) {
    std::vector<std::string> row{k.name};
    for (const int n : opt.ranks)
      row.push_back(
          Table::num(results[k.name][n].phase_max(core::phases::kRebalance), 2));
    t.row(row);
  }
  t.print();

  Table meta("Rebalance activity (count of rebalances / cells reassigned)");
  meta.header(header);
  for (const auto& k : keys) {
    std::vector<std::string> row{k.name};
    for (const int n : opt.ranks) {
      const auto& rb = results[k.name][n].rebalance;
      row.push_back(std::to_string(rb.rebalances) + "/" +
                    std::to_string(rb.cells_reassigned));
    }
    meta.row(row);
  }
  meta.print();
  std::printf(
      "\nPaper shape check: 'without KM' roughly doubles the overhead (Table "
      "V: CC 121s vs 64.3s at 24 ranks); the gap narrows at large rank "
      "counts as rebalances become rare.\n");
  return 0;
}
