// Reproduces paper Fig. 14: impact of the MPI rank placement on Tianhe-2's
// fat-tree (32 nodes per frame, 4 frames per rack): inner-frame vs
// inner-rack vs inter-rack placements for both communication strategies,
// up to 96 processes. The paper finds inner-frame best but the differences
// small (~1-2%), showing robustness.

#include <cstdio>
#include <map>

#include "common.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Cli cli("Fig. 14 — MPI rank placement impact (Dataset 2 analogue, "
          "Tianhe-2 profile, <= 96 ranks)");
  bench::CommonFlags common(cli, "bench_fig14_placement", "24,48,96", 40);
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });

  const core::Dataset ds = core::make_dataset(2, opt.particle_scale);
  const par::Placement placements[] = {par::Placement::kInnerFrame,
                                       par::Placement::kInnerRack,
                                       par::Placement::kInterRack};

  std::map<std::string, std::map<int, double>> times;
  for (const auto strategy : {exchange::Strategy::kDistributed,
                              exchange::Strategy::kCentralized}) {
    for (const auto placement : placements) {
      const std::string key = std::string(exchange::strategy_name(strategy)) +
                              " " + par::placement_name(placement);
      for (const int nranks : opt.ranks) {
        auto par = bench::make_parallel(ds, nranks, strategy, true, opt);
        par.placement = placement;
        times[key][nranks] = bench::run_case(ds, par, opt).total_time;
        std::fprintf(stderr, "  done %-16s ranks=%d\n", key.c_str(), nranks);
      }
    }
  }

  Table t("Fig. 14 — total execution time (virtual seconds) per placement");
  std::vector<std::string> header{"strategy/placement"};
  for (const int n : opt.ranks) header.push_back(std::to_string(n));
  t.header(header);
  for (const auto& [key, by_rank] : times) {
    std::vector<std::string> row{key};
    for (const int n : opt.ranks) row.push_back(Table::num(by_rank.at(n), 1));
    t.row(row);
  }
  t.print();

  Table rel("Slowdown vs inner-frame (paper: ~1-2%)");
  rel.header(header);
  for (const char* s : {"DC", "CC"}) {
    const auto& base = times[std::string(s) + " inner-frame"];
    for (const char* p : {"inner-rack", "inter-rack"}) {
      std::vector<std::string> row{std::string(s) + " " + p};
      const auto& cur = times[std::string(s) + " " + p];
      for (const int n : opt.ranks)
        row.push_back(Table::pct((cur.at(n) - base.at(n)) / base.at(n)));
      rel.row(row);
    }
  }
  rel.print();
  return 0;
}
