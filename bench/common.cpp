#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "support/error.hpp"
#include "trace/chrome_writer.hpp"
#include "trace/critical_path.hpp"
#include "trace/recorder.hpp"

namespace dsmcpic::bench {

par::MachineProfile BenchOptions::profile() const {
  if (machine == "tianhe2") return par::MachineProfile::tianhe2();
  if (machine == "bscc") return par::MachineProfile::bscc();
  if (machine == "tianhe3") return par::MachineProfile::tianhe3();
  DSMCPIC_CHECK_MSG(false, "unknown machine '" << machine
                                               << "' (tianhe2|bscc|tianhe3)");
  return par::MachineProfile::tianhe2();
}

CommonFlags::CommonFlags(Cli& cli, const std::string& default_ranks,
                         int default_steps) {
  ranks_ = cli.add_string("ranks", default_ranks,
                          "comma-separated virtual rank counts to sweep");
  steps_ = cli.add_int("steps", default_steps, "DSMC steps per run");
  particles_ = cli.add_double(
      "particles", 1.0, "particle-target multiplier (1.0 = library default)");
  machine_ = cli.add_string("machine", "tianhe2",
                            "machine profile: tianhe2 | bscc | tianhe3");
  seed_ = cli.add_int("seed", 42, "base RNG seed");
  exec_mode_ = cli.add_string(
      "exec-mode", "seq",
      "superstep execution backend: seq | threaded (bit-identical results)");
  threads_ = cli.add_int(
      "threads", 0, "worker lanes for --exec-mode threaded (0 = all cores)");
  kernel_threads_ = cli.add_int(
      "kernel-threads", 1,
      "intra-rank kernel lanes (1 = serial; bit-identical results)");
  trace_ = cli.add_string(
      "trace", "",
      "write a Chrome/Perfetto trace JSON of each case to this path "
      "(plus .metrics.csv and a critical-path report on stderr)");
}

BenchOptions CommonFlags::finish() const {
  BenchOptions o;
  o.ranks = parse_rank_list(*ranks_);
  o.steps = static_cast<int>(*steps_);
  o.particle_scale = *particles_;
  o.machine = *machine_;
  o.seed = static_cast<std::uint64_t>(*seed_);
  o.exec_mode = par::parse_exec_mode(*exec_mode_);
  o.exec_threads = static_cast<int>(*threads_);
  o.kernel_threads = static_cast<int>(*kernel_threads_);
  o.trace_path = *trace_;
  return o;
}

bool parse_or_usage(Cli& cli, int argc, const char* const* argv) {
  try {
    if (!cli.parse(argc, argv)) return false;
    DSMCPIC_CHECK_MSG(cli.positional().empty(),
                      "unexpected argument '" << cli.positional().front()
                                              << "'\n" << cli.help_text());
    return true;
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

std::vector<int> parse_rank_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stoi(item));
    DSMCPIC_CHECK_MSG(out.back() >= 1, "rank count must be >= 1");
  }
  DSMCPIC_CHECK_MSG(!out.empty(), "empty rank list");
  return out;
}

core::ParallelConfig make_parallel(const core::Dataset& ds, int nranks,
                                   exchange::Strategy strategy,
                                   bool balance_enabled,
                                   const BenchOptions& opt) {
  core::ParallelConfig par;
  par.nranks = nranks;
  par.profile = opt.profile();
  par.strategy = strategy;
  par.balance.enabled = balance_enabled;
  // Paper defaults (Sec. VII-B): Threshold 2.0, R = pic_substeps, W_cell 1.
  // T is "automatically chosen during a pilot study" in the paper (20 on
  // their setup); our scaled run grows its population faster, and the same
  // pilot sweep (bench_fig12_T_sweep) picks T = 10.
  par.balance.threshold = 2.0;
  par.balance.period = 10;
  par.balance.weight_ratio = ds.config.pic_substeps;
  par.balance.cell_weight = 1.0;
  par.particle_scale = ds.paper_particle_scale;
  par.grid_scale = ds.paper_grid_scale;
  par.exec_mode = opt.exec_mode;
  par.exec_threads = opt.exec_threads;
  par.kernel_threads = opt.kernel_threads;
  return par;
}

std::string trace_case_path(const std::string& base, int index) {
  if (index == 0) return base;
  const std::string insert = ".case" + std::to_string(index);
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return base + insert;
  return base.substr(0, dot) + insert + base.substr(dot);
}

CaseResult run_case(const core::Dataset& ds, const core::ParallelConfig& par,
                    const BenchOptions& opt) {
  core::SolverConfig cfg = ds.config;
  cfg.seed = opt.seed;
  cfg.poisson.rel_tol = 1e-5;  // KSP-like default tolerance
  cfg.poisson.max_iterations = 200;
  core::CoupledSolver solver(cfg, par);

  std::unique_ptr<trace::TraceRecorder> rec;
  if (!opt.trace_path.empty()) {
    rec = std::make_unique<trace::TraceRecorder>(par.nranks);
    solver.runtime().set_tracer(rec.get());
  }

  solver.run(opt.steps);

  if (rec) {
    solver.runtime().set_tracer(nullptr);
    // One trace file per case: the process-wide counter disambiguates the
    // multiple run_case() calls a bench makes (sweep points, LB on/off).
    static int trace_case = 0;
    const std::string path = trace_case_path(opt.trace_path, trace_case++);
    trace::write_chrome_trace(*rec, path);
    rec->metrics().write_csv(path + ".metrics.csv");
    std::fprintf(stderr, "trace: %s (+.metrics.csv), %zu spans, %zu messages\n",
                 path.c_str(), rec->spans().size(), rec->messages().size());
    trace::CriticalPathAnalyzer cp(*rec);
    std::ostringstream report;
    cp.print(cp.analyze(), report);
    std::fputs(report.str().c_str(), stderr);
  }

  CaseResult r;
  r.summary = solver.summary();
  r.history = solver.history();
  r.total_time = r.summary.total_time;
  return r;
}

}  // namespace dsmcpic::bench
