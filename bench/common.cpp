#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>

#include "fleet/report.hpp"
#include "obs/health_auditor.hpp"
#include "obs/host_profiler.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "support/error.hpp"
#include "trace/chrome_writer.hpp"
#include "trace/critical_path.hpp"
#include "trace/recorder.hpp"

namespace dsmcpic::bench {

par::MachineProfile BenchOptions::profile() const {
  if (machine == "tianhe2") return par::MachineProfile::tianhe2();
  if (machine == "bscc") return par::MachineProfile::bscc();
  if (machine == "tianhe3") return par::MachineProfile::tianhe3();
  DSMCPIC_CHECK_MSG(false, "unknown machine '" << machine
                                               << "' (tianhe2|bscc|tianhe3)");
  return par::MachineProfile::tianhe2();
}

CommonFlags::CommonFlags(Cli& cli, std::string bench_name,
                         const std::string& default_ranks, int default_steps)
    : bench_name_(std::move(bench_name)) {
  ranks_ = cli.add_string("ranks", default_ranks,
                          "comma-separated virtual rank counts to sweep");
  steps_ = cli.add_int("steps", default_steps, "DSMC steps per run");
  particles_ = cli.add_double(
      "particles", 1.0, "particle-target multiplier (1.0 = library default)");
  machine_ = cli.add_string("machine", "tianhe2",
                            "machine profile: tianhe2 | bscc | tianhe3");
  seed_ = cli.add_int("seed", 42, "base RNG seed");
  exec_mode_ = cli.add_string(
      "exec-mode", "seq",
      "superstep execution backend: seq | threaded (bit-identical results)");
  threads_ = cli.add_int(
      "threads", 0, "worker lanes for --exec-mode threaded (0 = all cores)");
  kernel_threads_ = cli.add_int(
      "kernel-threads", 1,
      "intra-rank kernel lanes (1 = serial; bit-identical results)");
  sort_every_ = cli.add_int(
      "sort-every", 8,
      "cell-sort the particle stores every N DSMC steps "
      "(0 = never; bit-identical results)");
  trace_ = cli.add_string(
      "trace", "",
      "write a Chrome/Perfetto trace JSON of each case to this path "
      "(plus .metrics.csv and a critical-path report on stderr)");
  report_ = cli.add_string(
      "report", "",
      "write a machine-readable run_report.json of each case to this path "
      "(case N > 0 gets .caseN inserted; includes host-profiler timings)");
  audit_ = cli.add_string(
      "audit", "off",
      "per-step health audits: off | warn | abort | count "
      "(never perturbs results)");
  cost_model_ = cli.add_string(
      "cost-model", "static",
      "balancer weight model: static (pure Eq. 7) | timer | hybrid");
  policy_ = cli.add_string(
      "policy", "threshold",
      "when-to-rebalance policy: threshold | lookahead");
  horizon_ = cli.add_int(
      "horizon", 20,
      "look-ahead horizon in DSMC steps for --policy lookahead "
      "(0 falls back to the threshold trigger)");
  ensemble_ = cli.add_string(
      "ensemble", "fixed",
      "rank ensemble: fixed | elastic (resizes the active rank set "
      "within --ranks-min/--ranks-max from observed load)");
  ranks_min_ = cli.add_int(
      "ranks-min", 1, "smallest active rank count for --ensemble elastic");
  ranks_max_ = cli.add_int(
      "ranks-max", 0,
      "largest active rank count for --ensemble elastic (0 = nominal)");
  ranks_initial_ = cli.add_int(
      "ranks-initial", 0,
      "active rank count at init (0 = all; honored for --ensemble fixed "
      "too, giving a fixed reduced ensemble on a larger nominal machine)");
  metrics_dir_ = cli.add_string(
      "metrics-dir", "",
      "publish live telemetry into this directory: metrics.prom + "
      "metrics.json every --metrics-interval steps, postmortem.json on "
      "abort/fault (case N > 0 gets .caseN inserted; never perturbs "
      "results)");
  metrics_interval_ = cli.add_int(
      "metrics-interval", 10,
      "republish metrics.prom/metrics.json every K DSMC steps (>= 1)");
  flight_recorder_ = cli.add_int(
      "flight-recorder", 32,
      "flight-recorder depth: last N superstep records kept for "
      "postmortem.json (>= 1)");
}

BenchOptions CommonFlags::finish() const {
  BenchOptions o;
  o.ranks = parse_rank_list(*ranks_);
  o.steps = static_cast<int>(*steps_);
  o.particle_scale = *particles_;
  o.machine = *machine_;
  o.seed = static_cast<std::uint64_t>(*seed_);
  o.exec_mode = par::parse_exec_mode(*exec_mode_);
  o.exec_threads = static_cast<int>(*threads_);
  o.kernel_threads = static_cast<int>(*kernel_threads_);
  o.sort_every = static_cast<int>(*sort_every_);
  o.trace_path = *trace_;
  o.bench_name = bench_name_;
  o.report_path = *report_;
  o.audit = *audit_;
  if (o.audit != "off") obs::parse_audit_severity(o.audit);  // validate early
  o.cost_model = *cost_model_;
  balance::parse_cost_model(o.cost_model);  // validate early
  o.policy = *policy_;
  balance::parse_policy(o.policy);
  o.horizon = static_cast<int>(*horizon_);
  DSMCPIC_CHECK_MSG(o.horizon >= 0, "--horizon must be >= 0");
  o.ensemble = *ensemble_;
  balance::parse_ensemble(o.ensemble);  // validate early
  o.ranks_min = static_cast<int>(*ranks_min_);
  o.ranks_max = static_cast<int>(*ranks_max_);
  o.ranks_initial = static_cast<int>(*ranks_initial_);
  DSMCPIC_CHECK_MSG(o.ranks_min >= 1, "--ranks-min must be >= 1");
  DSMCPIC_CHECK_MSG(o.ranks_max >= 0, "--ranks-max must be >= 0");
  DSMCPIC_CHECK_MSG(o.ranks_initial >= 0, "--ranks-initial must be >= 0");
  o.metrics_dir = *metrics_dir_;
  o.metrics_interval = static_cast<int>(*metrics_interval_);
  o.flight_recorder = static_cast<int>(*flight_recorder_);
  DSMCPIC_CHECK_MSG(o.metrics_interval >= 1, "--metrics-interval must be >= 1");
  DSMCPIC_CHECK_MSG(o.flight_recorder >= 1, "--flight-recorder must be >= 1");
  return o;
}

FleetFlags::FleetFlags(Cli& cli) {
  slots_ = cli.add_int("fleet-slots", 4,
                       "concurrent runs (one thread-pool slot each)");
  runs_ = cli.add_int("fleet-runs", 8,
                      "total runs to execute (round-robin over scenarios)");
  scenarios_ = cli.add_string(
      "fleet-scenarios", "",
      "comma-separated scenario names (empty = the whole corpus: "
      "nozzle,reentry,twin-plume,pulsed-inlet)");
  lease_ = cli.add_int(
      "fleet-lease", 0,
      "preemption granularity: max DSMC steps per slot lease before the run "
      "is checkpointed and requeued (0 = run to completion)");
  park_ = cli.add_int(
      "fleet-park", 0,
      "park the first run at this DSMC step (checkpointed, slot freed, "
      "left resumable) to exercise the in-progress fleet summary shape; "
      "0 = off, requires --results-dir");
  results_dir_ = cli.add_string(
      "results-dir", "",
      "per-run output root (<dir>/<run_id>/run_report.json + digest.txt, "
      "plus <dir>/fleet_summary.json); required for --fleet-lease");
  out_ = cli.add_string("out", "",
                        "write fleet throughput lanes as JSON to this path");
}

FleetBenchOptions FleetFlags::finish() const {
  FleetBenchOptions o;
  o.slots = static_cast<int>(*slots_);
  o.runs = static_cast<int>(*runs_);
  o.scenarios = *scenarios_;
  o.lease = static_cast<int>(*lease_);
  o.park = static_cast<int>(*park_);
  o.results_dir = *results_dir_;
  o.out = *out_;
  DSMCPIC_CHECK_MSG(o.slots >= 1, "--fleet-slots must be >= 1");
  DSMCPIC_CHECK_MSG(o.runs >= 1, "--fleet-runs must be >= 1");
  DSMCPIC_CHECK_MSG(o.lease >= 0, "--fleet-lease must be >= 0");
  DSMCPIC_CHECK_MSG(o.lease == 0 || !o.results_dir.empty(),
                    "--fleet-lease requires --results-dir");
  DSMCPIC_CHECK_MSG(o.park >= 0, "--fleet-park must be >= 0");
  DSMCPIC_CHECK_MSG(o.park == 0 || !o.results_dir.empty(),
                    "--fleet-park requires --results-dir");
  return o;
}

bool parse_or_usage(Cli& cli, int argc, const char* const* argv) {
  try {
    if (!cli.parse(argc, argv)) return false;
    DSMCPIC_CHECK_MSG(cli.positional().empty(),
                      "unexpected argument '" << cli.positional().front()
                                              << "'\n" << cli.help_text());
    return true;
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

std::vector<int> parse_rank_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stoi(item));
    DSMCPIC_CHECK_MSG(out.back() >= 1, "rank count must be >= 1");
  }
  DSMCPIC_CHECK_MSG(!out.empty(), "empty rank list");
  return out;
}

core::ParallelConfig make_parallel(const core::Dataset& ds, int nranks,
                                   exchange::Strategy strategy,
                                   bool balance_enabled,
                                   const BenchOptions& opt) {
  core::ParallelConfig par;
  par.nranks = nranks;
  par.profile = opt.profile();
  par.strategy = strategy;
  par.balance.enabled = balance_enabled;
  // Paper defaults (Sec. VII-B): Threshold 2.0, R = pic_substeps, W_cell 1.
  // T is "automatically chosen during a pilot study" in the paper (20 on
  // their setup); our scaled run grows its population faster, and the same
  // pilot sweep (bench_fig12_T_sweep) picks T = 10.
  par.balance.threshold = 2.0;
  par.balance.period = 10;
  par.balance.weight_ratio = ds.config.pic_substeps;
  par.balance.cell_weight = 1.0;
  par.balance.cost_model.kind = balance::parse_cost_model(opt.cost_model);
  par.balance.policy.kind = balance::parse_policy(opt.policy);
  par.balance.policy.horizon = opt.horizon;
  par.balance.ensemble.kind = balance::parse_ensemble(opt.ensemble);
  par.balance.ensemble.ranks_min = opt.ranks_min;
  par.balance.ensemble.ranks_max = opt.ranks_max;
  par.balance.ensemble.initial = opt.ranks_initial;
  par.particle_scale = ds.paper_particle_scale;
  par.grid_scale = ds.paper_grid_scale;
  par.exec_mode = opt.exec_mode;
  par.exec_threads = opt.exec_threads;
  par.kernel_threads = opt.kernel_threads;
  return par;
}

std::string trace_case_path(const std::string& base, int index) {
  if (index == 0) return base;
  const std::string insert = ".case" + std::to_string(index);
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return base + insert;
  return base.substr(0, dot) + insert + base.substr(dot);
}

CaseResult run_case(const core::Dataset& ds, const core::ParallelConfig& par,
                    const BenchOptions& opt) {
  // One output file per case: the process-wide counter disambiguates the
  // multiple run_case() calls a bench makes (sweep points, LB on/off).
  // Shared by --trace and --report so their .caseN suffixes line up.
  static int case_counter = 0;
  const int case_index = case_counter++;

  core::SolverConfig cfg = ds.config;
  cfg.seed = opt.seed;
  cfg.sort_every = opt.sort_every;
  cfg.poisson.rel_tol = 1e-5;  // KSP-like default tolerance
  cfg.poisson.max_iterations = 200;

  // Observers outlive the solver (declared first), so dangling detach on
  // scope exit is impossible.
  std::unique_ptr<obs::HealthAuditor> auditor;
  if (opt.audit != "off")
    auditor = std::make_unique<obs::HealthAuditor>(
        obs::AuditConfig{obs::parse_audit_severity(opt.audit)});
  std::unique_ptr<obs::HostProfiler> prof;
  if (!opt.report_path.empty()) prof = std::make_unique<obs::HostProfiler>();

  std::unique_ptr<obs::TelemetryHub> hub;
  if (!opt.metrics_dir.empty()) {
    std::filesystem::create_directories(opt.metrics_dir);
    obs::TelemetryConfig tc;
    tc.metrics_interval = opt.metrics_interval;
    tc.flight_recorder = opt.flight_recorder;
    tc.metrics_prom_path =
        trace_case_path(opt.metrics_dir + "/metrics.prom", case_index);
    tc.metrics_json_path =
        trace_case_path(opt.metrics_dir + "/metrics.json", case_index);
    tc.postmortem_path =
        trace_case_path(opt.metrics_dir + "/postmortem.json", case_index);
    tc.run_label = opt.bench_name + "/case" + std::to_string(case_index);
    hub = std::make_unique<obs::TelemetryHub>(tc);
  }

  core::CoupledSolver solver(cfg, par);
  solver.set_auditor(auditor.get());
  solver.set_host_profiler(prof.get());
  if (hub) {
    hub->set_host_profiler(prof.get());
    solver.set_telemetry(hub.get());
  }

  std::unique_ptr<trace::TraceRecorder> rec;
  if (!opt.trace_path.empty()) {
    rec = std::make_unique<trace::TraceRecorder>(par.nranks);
    solver.runtime().set_tracer(rec.get());
  }

  solver.run(opt.steps);

  // Final snapshot so a run shorter than the interval still leaves
  // complete metrics files behind.
  if (hub) hub->publish();

  if (rec) {
    solver.runtime().set_tracer(nullptr);
    write_case_trace(*rec, trace_case_path(opt.trace_path, case_index));
  }

  CaseResult r;
  r.summary = solver.summary();
  r.history = solver.history();
  r.total_time = r.summary.total_time;

  if (auditor && auditor->report().violations() > 0)
    std::fprintf(stderr, "audit: %lld violation(s) in %lld checks\n",
                 static_cast<long long>(auditor->report().violations()),
                 static_cast<long long>(auditor->report().checks()));

  if (!opt.report_path.empty()) {
    obs::RunReport rep;
    fleet::ReportMeta meta;
    meta.bench = opt.bench_name;
    std::ostringstream cs;
    cs << "ranks=" << par.nranks << " strategy="
       << exchange::strategy_name(par.strategy) << " balance="
       << (par.balance.enabled ? "on" : "off");
    meta.case_name = cs.str();
    meta.machine = opt.machine;
    meta.seed = opt.seed;
    meta.steps = opt.steps;
    meta.audit = opt.audit;
    fleet::fill_run_report(rep, solver, r.summary, r.history, meta);
    rep.audit = auditor ? &auditor->report() : nullptr;
    rep.profiler = prof.get();
    const std::string rpath = trace_case_path(opt.report_path, case_index);
    obs::write_run_report_file(rpath, rep);
    std::fprintf(stderr, "run report: %s\n", rpath.c_str());
  }
  return r;
}

void write_case_trace(const trace::TraceRecorder& rec, const std::string& path) {
  trace::write_chrome_trace(rec, path);
  rec.metrics().write_csv(path + ".metrics.csv");
  std::fprintf(stderr, "trace: %s (+.metrics.csv), %zu spans, %zu messages\n",
               path.c_str(), rec.spans().size(), rec.messages().size());
  trace::CriticalPathAnalyzer cp(rec);
  std::ostringstream report;
  cp.print(cp.analyze(), report);
  std::fputs(report.str().c_str(), stderr);
}

}  // namespace dsmcpic::bench
