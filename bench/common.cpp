#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "obs/health_auditor.hpp"
#include "obs/host_profiler.hpp"
#include "obs/run_report.hpp"
#include "support/error.hpp"
#include "trace/chrome_writer.hpp"
#include "trace/critical_path.hpp"
#include "trace/recorder.hpp"

namespace dsmcpic::bench {

par::MachineProfile BenchOptions::profile() const {
  if (machine == "tianhe2") return par::MachineProfile::tianhe2();
  if (machine == "bscc") return par::MachineProfile::bscc();
  if (machine == "tianhe3") return par::MachineProfile::tianhe3();
  DSMCPIC_CHECK_MSG(false, "unknown machine '" << machine
                                               << "' (tianhe2|bscc|tianhe3)");
  return par::MachineProfile::tianhe2();
}

CommonFlags::CommonFlags(Cli& cli, std::string bench_name,
                         const std::string& default_ranks, int default_steps)
    : bench_name_(std::move(bench_name)) {
  ranks_ = cli.add_string("ranks", default_ranks,
                          "comma-separated virtual rank counts to sweep");
  steps_ = cli.add_int("steps", default_steps, "DSMC steps per run");
  particles_ = cli.add_double(
      "particles", 1.0, "particle-target multiplier (1.0 = library default)");
  machine_ = cli.add_string("machine", "tianhe2",
                            "machine profile: tianhe2 | bscc | tianhe3");
  seed_ = cli.add_int("seed", 42, "base RNG seed");
  exec_mode_ = cli.add_string(
      "exec-mode", "seq",
      "superstep execution backend: seq | threaded (bit-identical results)");
  threads_ = cli.add_int(
      "threads", 0, "worker lanes for --exec-mode threaded (0 = all cores)");
  kernel_threads_ = cli.add_int(
      "kernel-threads", 1,
      "intra-rank kernel lanes (1 = serial; bit-identical results)");
  sort_every_ = cli.add_int(
      "sort-every", 8,
      "cell-sort the particle stores every N DSMC steps "
      "(0 = never; bit-identical results)");
  trace_ = cli.add_string(
      "trace", "",
      "write a Chrome/Perfetto trace JSON of each case to this path "
      "(plus .metrics.csv and a critical-path report on stderr)");
  report_ = cli.add_string(
      "report", "",
      "write a machine-readable run_report.json of each case to this path "
      "(case N > 0 gets .caseN inserted; includes host-profiler timings)");
  audit_ = cli.add_string(
      "audit", "off",
      "per-step health audits: off | warn | abort | count "
      "(never perturbs results)");
  cost_model_ = cli.add_string(
      "cost-model", "static",
      "balancer weight model: static (pure Eq. 7) | timer | hybrid");
  policy_ = cli.add_string(
      "policy", "threshold",
      "when-to-rebalance policy: threshold | lookahead");
  horizon_ = cli.add_int(
      "horizon", 20,
      "look-ahead horizon in DSMC steps for --policy lookahead "
      "(0 falls back to the threshold trigger)");
  ensemble_ = cli.add_string(
      "ensemble", "fixed",
      "rank ensemble: fixed | elastic (resizes the active rank set "
      "within --ranks-min/--ranks-max from observed load)");
  ranks_min_ = cli.add_int(
      "ranks-min", 1, "smallest active rank count for --ensemble elastic");
  ranks_max_ = cli.add_int(
      "ranks-max", 0,
      "largest active rank count for --ensemble elastic (0 = nominal)");
  ranks_initial_ = cli.add_int(
      "ranks-initial", 0,
      "active rank count at init (0 = all; honored for --ensemble fixed "
      "too, giving a fixed reduced ensemble on a larger nominal machine)");
}

BenchOptions CommonFlags::finish() const {
  BenchOptions o;
  o.ranks = parse_rank_list(*ranks_);
  o.steps = static_cast<int>(*steps_);
  o.particle_scale = *particles_;
  o.machine = *machine_;
  o.seed = static_cast<std::uint64_t>(*seed_);
  o.exec_mode = par::parse_exec_mode(*exec_mode_);
  o.exec_threads = static_cast<int>(*threads_);
  o.kernel_threads = static_cast<int>(*kernel_threads_);
  o.sort_every = static_cast<int>(*sort_every_);
  o.trace_path = *trace_;
  o.bench_name = bench_name_;
  o.report_path = *report_;
  o.audit = *audit_;
  if (o.audit != "off") obs::parse_audit_severity(o.audit);  // validate early
  o.cost_model = *cost_model_;
  balance::parse_cost_model(o.cost_model);  // validate early
  o.policy = *policy_;
  balance::parse_policy(o.policy);
  o.horizon = static_cast<int>(*horizon_);
  DSMCPIC_CHECK_MSG(o.horizon >= 0, "--horizon must be >= 0");
  o.ensemble = *ensemble_;
  balance::parse_ensemble(o.ensemble);  // validate early
  o.ranks_min = static_cast<int>(*ranks_min_);
  o.ranks_max = static_cast<int>(*ranks_max_);
  o.ranks_initial = static_cast<int>(*ranks_initial_);
  DSMCPIC_CHECK_MSG(o.ranks_min >= 1, "--ranks-min must be >= 1");
  DSMCPIC_CHECK_MSG(o.ranks_max >= 0, "--ranks-max must be >= 0");
  DSMCPIC_CHECK_MSG(o.ranks_initial >= 0, "--ranks-initial must be >= 0");
  return o;
}

bool parse_or_usage(Cli& cli, int argc, const char* const* argv) {
  try {
    if (!cli.parse(argc, argv)) return false;
    DSMCPIC_CHECK_MSG(cli.positional().empty(),
                      "unexpected argument '" << cli.positional().front()
                                              << "'\n" << cli.help_text());
    return true;
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

std::vector<int> parse_rank_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stoi(item));
    DSMCPIC_CHECK_MSG(out.back() >= 1, "rank count must be >= 1");
  }
  DSMCPIC_CHECK_MSG(!out.empty(), "empty rank list");
  return out;
}

core::ParallelConfig make_parallel(const core::Dataset& ds, int nranks,
                                   exchange::Strategy strategy,
                                   bool balance_enabled,
                                   const BenchOptions& opt) {
  core::ParallelConfig par;
  par.nranks = nranks;
  par.profile = opt.profile();
  par.strategy = strategy;
  par.balance.enabled = balance_enabled;
  // Paper defaults (Sec. VII-B): Threshold 2.0, R = pic_substeps, W_cell 1.
  // T is "automatically chosen during a pilot study" in the paper (20 on
  // their setup); our scaled run grows its population faster, and the same
  // pilot sweep (bench_fig12_T_sweep) picks T = 10.
  par.balance.threshold = 2.0;
  par.balance.period = 10;
  par.balance.weight_ratio = ds.config.pic_substeps;
  par.balance.cell_weight = 1.0;
  par.balance.cost_model.kind = balance::parse_cost_model(opt.cost_model);
  par.balance.policy.kind = balance::parse_policy(opt.policy);
  par.balance.policy.horizon = opt.horizon;
  par.balance.ensemble.kind = balance::parse_ensemble(opt.ensemble);
  par.balance.ensemble.ranks_min = opt.ranks_min;
  par.balance.ensemble.ranks_max = opt.ranks_max;
  par.balance.ensemble.initial = opt.ranks_initial;
  par.particle_scale = ds.paper_particle_scale;
  par.grid_scale = ds.paper_grid_scale;
  par.exec_mode = opt.exec_mode;
  par.exec_threads = opt.exec_threads;
  par.kernel_threads = opt.kernel_threads;
  return par;
}

std::string trace_case_path(const std::string& base, int index) {
  if (index == 0) return base;
  const std::string insert = ".case" + std::to_string(index);
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return base + insert;
  return base.substr(0, dot) + insert + base.substr(dot);
}

CaseResult run_case(const core::Dataset& ds, const core::ParallelConfig& par,
                    const BenchOptions& opt) {
  // One output file per case: the process-wide counter disambiguates the
  // multiple run_case() calls a bench makes (sweep points, LB on/off).
  // Shared by --trace and --report so their .caseN suffixes line up.
  static int case_counter = 0;
  const int case_index = case_counter++;

  core::SolverConfig cfg = ds.config;
  cfg.seed = opt.seed;
  cfg.sort_every = opt.sort_every;
  cfg.poisson.rel_tol = 1e-5;  // KSP-like default tolerance
  cfg.poisson.max_iterations = 200;

  // Observers outlive the solver (declared first), so dangling detach on
  // scope exit is impossible.
  std::unique_ptr<obs::HealthAuditor> auditor;
  if (opt.audit != "off")
    auditor = std::make_unique<obs::HealthAuditor>(
        obs::AuditConfig{obs::parse_audit_severity(opt.audit)});
  std::unique_ptr<obs::HostProfiler> prof;
  if (!opt.report_path.empty()) prof = std::make_unique<obs::HostProfiler>();

  core::CoupledSolver solver(cfg, par);
  solver.set_auditor(auditor.get());
  solver.set_host_profiler(prof.get());

  std::unique_ptr<trace::TraceRecorder> rec;
  if (!opt.trace_path.empty()) {
    rec = std::make_unique<trace::TraceRecorder>(par.nranks);
    solver.runtime().set_tracer(rec.get());
  }

  solver.run(opt.steps);

  if (rec) {
    solver.runtime().set_tracer(nullptr);
    const std::string path = trace_case_path(opt.trace_path, case_index);
    trace::write_chrome_trace(*rec, path);
    rec->metrics().write_csv(path + ".metrics.csv");
    std::fprintf(stderr, "trace: %s (+.metrics.csv), %zu spans, %zu messages\n",
                 path.c_str(), rec->spans().size(), rec->messages().size());
    trace::CriticalPathAnalyzer cp(*rec);
    std::ostringstream report;
    cp.print(cp.analyze(), report);
    std::fputs(report.str().c_str(), stderr);
  }

  CaseResult r;
  r.summary = solver.summary();
  r.history = solver.history();
  r.total_time = r.summary.total_time;

  if (auditor && auditor->report().violations() > 0)
    std::fprintf(stderr, "audit: %lld violation(s) in %lld checks\n",
                 static_cast<long long>(auditor->report().violations()),
                 static_cast<long long>(auditor->report().checks()));

  if (!opt.report_path.empty()) {
    obs::RunReport rep;
    rep.config.bench = opt.bench_name;
    std::ostringstream cs;
    cs << "ranks=" << par.nranks << " strategy="
       << exchange::strategy_name(par.strategy) << " balance="
       << (par.balance.enabled ? "on" : "off");
    rep.config.case_name = cs.str();
    rep.config.ranks = par.nranks;
    rep.config.steps = opt.steps;
    rep.config.machine = opt.machine;
    rep.config.seed = opt.seed;
    rep.config.exec_mode = par::exec_mode_name(par.exec_mode);
    rep.config.exec_threads = par.exec_threads;
    rep.config.kernel_threads = par.kernel_threads;
    rep.config.sort_every = cfg.sort_every;
    rep.config.strategy = exchange::strategy_name(par.strategy);
    rep.config.balance = par.balance.enabled;
    rep.config.audit_severity = opt.audit;
    rep.config.cost_model =
        balance::cost_model_name(par.balance.cost_model.kind);
    rep.config.policy = balance::policy_name(par.balance.policy.kind);
    rep.config.horizon = par.balance.policy.horizon;
    rep.ensemble.kind = balance::ensemble_name(par.balance.ensemble.kind);
    rep.ensemble.ranks_min = solver.ensemble().config().ranks_min;
    rep.ensemble.ranks_max = solver.ensemble().config().ranks_max;
    rep.ensemble.active_initial = solver.ensemble().initial_active();
    rep.ensemble.active_final = solver.active_ranks();
    rep.ensemble.resizes = solver.ensemble().resizes();
    rep.total_virtual_time = r.summary.total_time;
    for (std::size_t i = 0; i < r.summary.phase_names.size(); ++i) {
      const par::PhaseStats& st = r.summary.phase_stats[i];
      rep.phases.push_back({r.summary.phase_names[i], st.busy_max, st.busy_min,
                            st.busy_sum, st.transactions, st.bytes});
    }
    rep.steps.final_particles = r.summary.final_particles;
    for (const core::StepDiagnostics& d : r.history) {
      rep.steps.injected += d.injected;
      rep.steps.migrated_dsmc += d.migrated_dsmc;
      rep.steps.migrated_pic += d.migrated_pic;
      rep.steps.collisions += d.collisions;
      rep.steps.ionizations += d.ionizations;
      rep.steps.recombinations += d.recombinations;
      rep.steps.rebalances += d.rebalanced ? 1 : 0;
    }
    for (const balance::PolicyDecision& d : r.summary.decisions)
      rep.rebalance_decisions.push_back({d.step, d.lii, d.imbalance_per_step,
                                         d.projected_imbalance_cost,
                                         d.rebalance_cost_estimate,
                                         d.rebalance});
    rep.audit = auditor ? &auditor->report() : nullptr;
    rep.profiler = prof.get();
    const std::string rpath = trace_case_path(opt.report_path, case_index);
    obs::write_run_report_file(rpath, rep);
    std::fprintf(stderr, "run report: %s\n", rpath.c_str());
  }
  return r;
}

}  // namespace dsmcpic::bench
