#include "common.hpp"

#include <sstream>

#include "support/error.hpp"

namespace dsmcpic::bench {

par::MachineProfile BenchOptions::profile() const {
  if (machine == "tianhe2") return par::MachineProfile::tianhe2();
  if (machine == "bscc") return par::MachineProfile::bscc();
  if (machine == "tianhe3") return par::MachineProfile::tianhe3();
  DSMCPIC_CHECK_MSG(false, "unknown machine '" << machine
                                               << "' (tianhe2|bscc|tianhe3)");
  return par::MachineProfile::tianhe2();
}

CommonFlags::CommonFlags(Cli& cli, const std::string& default_ranks,
                         int default_steps) {
  ranks_ = cli.add_string("ranks", default_ranks,
                          "comma-separated virtual rank counts to sweep");
  steps_ = cli.add_int("steps", default_steps, "DSMC steps per run");
  particles_ = cli.add_double(
      "particles", 1.0, "particle-target multiplier (1.0 = library default)");
  machine_ = cli.add_string("machine", "tianhe2",
                            "machine profile: tianhe2 | bscc | tianhe3");
  seed_ = cli.add_int("seed", 42, "base RNG seed");
  exec_mode_ = cli.add_string(
      "exec-mode", "seq",
      "superstep execution backend: seq | threaded (bit-identical results)");
  threads_ = cli.add_int(
      "threads", 0, "worker lanes for --exec-mode threaded (0 = all cores)");
  kernel_threads_ = cli.add_int(
      "kernel-threads", 1,
      "intra-rank kernel lanes (1 = serial; bit-identical results)");
}

BenchOptions CommonFlags::finish() const {
  BenchOptions o;
  o.ranks = parse_rank_list(*ranks_);
  o.steps = static_cast<int>(*steps_);
  o.particle_scale = *particles_;
  o.machine = *machine_;
  o.seed = static_cast<std::uint64_t>(*seed_);
  o.exec_mode = par::parse_exec_mode(*exec_mode_);
  o.exec_threads = static_cast<int>(*threads_);
  o.kernel_threads = static_cast<int>(*kernel_threads_);
  return o;
}

std::vector<int> parse_rank_list(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stoi(item));
    DSMCPIC_CHECK_MSG(out.back() >= 1, "rank count must be >= 1");
  }
  DSMCPIC_CHECK_MSG(!out.empty(), "empty rank list");
  return out;
}

core::ParallelConfig make_parallel(const core::Dataset& ds, int nranks,
                                   exchange::Strategy strategy,
                                   bool balance_enabled,
                                   const BenchOptions& opt) {
  core::ParallelConfig par;
  par.nranks = nranks;
  par.profile = opt.profile();
  par.strategy = strategy;
  par.balance.enabled = balance_enabled;
  // Paper defaults (Sec. VII-B): Threshold 2.0, R = pic_substeps, W_cell 1.
  // T is "automatically chosen during a pilot study" in the paper (20 on
  // their setup); our scaled run grows its population faster, and the same
  // pilot sweep (bench_fig12_T_sweep) picks T = 10.
  par.balance.threshold = 2.0;
  par.balance.period = 10;
  par.balance.weight_ratio = ds.config.pic_substeps;
  par.balance.cell_weight = 1.0;
  par.particle_scale = ds.paper_particle_scale;
  par.grid_scale = ds.paper_grid_scale;
  par.exec_mode = opt.exec_mode;
  par.exec_threads = opt.exec_threads;
  par.kernel_threads = opt.kernel_threads;
  return par;
}

CaseResult run_case(const core::Dataset& ds, const core::ParallelConfig& par,
                    const BenchOptions& opt) {
  core::SolverConfig cfg = ds.config;
  cfg.seed = opt.seed;
  cfg.poisson.rel_tol = 1e-5;  // KSP-like default tolerance
  cfg.poisson.max_iterations = 200;
  core::CoupledSolver solver(cfg, par);
  solver.run(opt.steps);
  CaseResult r;
  r.summary = solver.summary();
  r.history = solver.history();
  r.total_time = r.summary.total_time;
  return r;
}

}  // namespace dsmcpic::bench
