#pragma once
// Shared infrastructure for the paper-reproduction bench binaries: every
// bench builds a Dataset, sweeps virtual-rank counts / strategies / balancer
// settings, and prints the same rows the paper's table or figure reports.
// Times are virtual seconds from the runtime's cost model (see DESIGN.md §1).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/datasets.hpp"
#include "core/solver.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

namespace dsmcpic::trace {
class TraceRecorder;
}

namespace dsmcpic::bench {

struct BenchOptions {
  std::vector<int> ranks;       // rank sweep
  int steps = 0;                // DSMC steps per run
  double particle_scale = 1.0;  // multiplies dataset particle targets
  std::string machine = "tianhe2";
  std::uint64_t seed = 42;
  // Superstep execution backend (wall-clock only; virtual times and all
  // reported numbers are bit-identical across modes).
  par::ExecMode exec_mode = par::ExecMode::kSequential;
  int exec_threads = 0;  // <= 0: one lane per hardware thread
  // Intra-rank kernel lanes (orthogonal to exec_mode; bit-identical too).
  int kernel_threads = 1;
  // Periodic cell sort interval in DSMC steps (0 disables). Bit-identical
  // for any value — sorting only changes memory layout and wall-clock.
  int sort_every = 8;
  // When non-empty, every run_case() records a virtual-time trace and
  // writes <trace_path> (Chrome/Perfetto JSON), <trace_path>.metrics.csv,
  // and a critical-path report to stderr. Case N > 0 of a multi-case bench
  // gets ".caseN" inserted before the extension. Recording never perturbs
  // virtual clocks or physics (DESIGN.md §2e).
  std::string trace_path;
  // Bench binary name, stamped into run reports (set via CommonFlags).
  std::string bench_name;
  // When non-empty, every run_case() writes a machine-readable
  // run_report.json (DESIGN.md §2f) to this path, with the same per-case
  // ".caseN" suffix rule as trace_path. Also attaches a host wall-clock
  // profiler whose kernel stats land in the report.
  std::string report_path;
  // Health audits: "off" or an obs::AuditSeverity name (warn|abort|count).
  // Auditing never perturbs virtual clocks, physics or traces.
  std::string audit = "off";
  // Balancer weight model: static | timer | hybrid (DESIGN.md §2h).
  // "static" is the paper's pure Eq.-7 path, bit-identical to before the
  // cost model existed.
  std::string cost_model = "static";
  // When-to-rebalance policy: threshold | lookahead.
  std::string policy = "threshold";
  // Look-ahead horizon H in DSMC steps (policy=lookahead; 0 falls back to
  // the threshold trigger).
  int horizon = 20;
  // Elastic rank ensemble (DESIGN.md §2i): fixed | elastic. The rank count
  // from --ranks stays the NOMINAL machine; elastic resizes the active set
  // within [ranks-min, ranks-max], starting from ranks-initial.
  std::string ensemble = "fixed";
  int ranks_min = 1;
  int ranks_max = 0;      // 0 = nominal rank count
  int ranks_initial = 0;  // 0 = all ranks active at init (fixed dense path)
  // Live telemetry (docs/observability.md §6). When metrics_dir is
  // non-empty every run_case() attaches a TelemetryHub that publishes
  // metrics.prom/metrics.json into that directory every metrics_interval
  // steps and dumps postmortem.json on abort or fault trip (per-case files
  // get the same ".caseN" suffix rule as trace_path). Telemetry never
  // perturbs results.
  std::string metrics_dir;
  int metrics_interval = 10;  // publish cadence in DSMC steps (>= 1)
  int flight_recorder = 32;   // postmortem depth in supersteps (>= 1)

  par::MachineProfile profile() const;
};

/// Registers the common flags on `cli`; call `finish(cli)` after parse.
/// `bench_name` is the bench binary's name, echoed into run reports.
class CommonFlags {
 public:
  CommonFlags(Cli& cli, std::string bench_name,
              const std::string& default_ranks, int default_steps);
  BenchOptions finish() const;

 private:
  std::string bench_name_;
  const std::string* ranks_;
  const std::int64_t* steps_;
  const double* particles_;
  const std::string* machine_;
  const std::int64_t* seed_;
  const std::string* exec_mode_;
  const std::int64_t* threads_;
  const std::int64_t* kernel_threads_;
  const std::int64_t* sort_every_;
  const std::string* trace_;
  const std::string* report_;
  const std::string* audit_;
  const std::string* cost_model_;
  const std::string* policy_;
  const std::int64_t* horizon_;
  const std::string* ensemble_;
  const std::int64_t* ranks_min_;
  const std::int64_t* ranks_max_;
  const std::int64_t* ranks_initial_;
  const std::string* metrics_dir_;
  const std::int64_t* metrics_interval_;
  const std::int64_t* flight_recorder_;
};

/// Options of the fleet-service bench (bench_fleet). Registered here (not
/// in bench_fleet.cpp) so bench_cli_test can exercise the --fleet-* flag
/// surface — including the standard usage error on unknown --fleet-* flags
/// — without linking the bench binary.
struct FleetBenchOptions {
  int slots = 4;           // --fleet-slots
  int runs = 8;            // --fleet-runs
  std::string scenarios;   // --fleet-scenarios (csv; empty = whole corpus)
  int lease = 0;           // --fleet-lease (steps per lease; 0 = no preempt)
  int park = 0;            // --fleet-park (park run 0 at step N; 0 = off)
  std::string results_dir; // --results-dir
  std::string out;         // --out (BENCH_fleet.json lanes)
};

class FleetFlags {
 public:
  explicit FleetFlags(Cli& cli);
  FleetBenchOptions finish() const;

 private:
  const std::int64_t* slots_;
  const std::int64_t* runs_;
  const std::string* scenarios_;
  const std::int64_t* lease_;
  const std::int64_t* park_;
  const std::string* results_dir_;
  const std::string* out_;
};

/// Parses argv for a bench binary. Returns false when --help was printed.
/// On any CLI error — unknown flag, malformed value, or stray positional
/// argument — prints the error plus usage to stderr and exits with status
/// 2 instead of letting the exception escape to std::terminate.
bool parse_or_usage(Cli& cli, int argc, const char* const* argv);

/// Runs a flag finisher (CommonFlags::finish / FleetFlags::finish) and
/// converts its value-validation Errors — out-of-range ints, enum typos —
/// into the same usage exit(2) parse errors get, so `--metrics-interval 0`
/// fails a bench binary exactly like `--metric-interval 10` does.
template <class Fn>
auto finish_or_usage(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

/// Parses "24,48,96" into {24, 48, 96}.
std::vector<int> parse_rank_list(const std::string& csv);

/// Output path for case `index` of a multi-case bench: index 0 maps to
/// `base`, case N > 0 gets ".caseN" inserted before the extension.
std::string trace_case_path(const std::string& base, int index);

/// Builds the parallel config for one case with paper-magnitude cost scales.
core::ParallelConfig make_parallel(const core::Dataset& ds, int nranks,
                                   exchange::Strategy strategy,
                                   bool balance_enabled,
                                   const BenchOptions& opt);

struct CaseResult {
  core::RunSummary summary;
  std::vector<core::StepDiagnostics> history;
  double total_time = 0.0;  // virtual seconds end-to-end
};

/// Runs one solver case for opt.steps DSMC steps.
CaseResult run_case(const core::Dataset& ds, const core::ParallelConfig& par,
                    const BenchOptions& opt);

/// Finishes one recorded case: writes the Chrome trace + metrics CSV to
/// `path` and prints the critical-path report to stderr. The trace half of
/// the per-case wiring every bench shares.
void write_case_trace(const trace::TraceRecorder& rec, const std::string& path);

}  // namespace dsmcpic::bench
