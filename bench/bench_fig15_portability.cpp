// Reproduces paper Fig. 15: hardware portability — the two communication
// strategies with dynamic load balance on the x86 Tianhe-2 profile vs the
// ARMv8 Tianhe-3 prototype profile, across Datasets 2, 4 (smaller grid) and
// 5, 6 (larger grid). Paper shape: similar strong-scaling behaviour on both
// architectures, with the DC/CC gap narrowing on the larger-grid datasets.

#include <cstdio>
#include <map>

#include "common.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Cli cli("Fig. 15 — portability across Tianhe-2 (x86) and Tianhe-3 (ARM) "
          "profiles, Datasets 2/4/5/6");
  bench::CommonFlags common(cli, "bench_fig15_portability", "24,96,384", 30);
  const auto* ds_list = cli.add_string("datasets", "2,4,5,6", "dataset ids");
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions base_opt = bench::finish_or_usage([&] { return common.finish(); });
  const std::vector<int> dataset_ids = bench::parse_rank_list(*ds_list);

  for (const char* machine : {"tianhe2", "tianhe3"}) {
    for (const int id : dataset_ids) {
      BenchOptions opt = base_opt;
      opt.machine = machine;
      const core::Dataset ds = core::make_dataset(id, opt.particle_scale);

      std::map<std::string, std::map<int, double>> times;
      for (const auto strategy : {exchange::Strategy::kDistributed,
                                  exchange::Strategy::kCentralized}) {
        for (const int nranks : opt.ranks) {
          const auto par = bench::make_parallel(ds, nranks, strategy, true, opt);
          times[exchange::strategy_name(strategy)][nranks] =
              bench::run_case(ds, par, opt).total_time;
          std::fprintf(stderr, "  done %s %s %s ranks=%d\n", machine,
                       ds.name.c_str(), exchange::strategy_name(strategy),
                       nranks);
        }
      }

      Table t("Fig. 15 — " + std::string(machine) + ", " + ds.name +
              " (total virtual seconds)");
      std::vector<std::string> header{"strategy"};
      for (const int n : opt.ranks) header.push_back(std::to_string(n));
      header.push_back("DC/CC gap @max");
      t.header(header);
      for (const char* s : {"DC", "CC"}) {
        std::vector<std::string> row{s};
        for (const int n : opt.ranks) row.push_back(Table::num(times[s][n], 1));
        if (std::string(s) == "CC") {
          const int last = opt.ranks.back();
          row.push_back(Table::pct((times["CC"][last] - times["DC"][last]) /
                                   times["DC"][last]));
        } else {
          row.push_back("");
        }
        t.row(row);
      }
      t.print();
      std::printf("\n");
    }
  }
  std::printf(
      "Paper shape check: similar scaling on both architectures; the DC/CC "
      "gap is smaller on the large-grid Datasets 5/6 than on 2/4.\n");
  return 0;
}
