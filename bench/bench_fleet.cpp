// Fleet-service throughput bench (DESIGN.md §2j): N independent scenario
// runs served from one process on --fleet-slots thread-pool slots, sharing
// immutable geometry + machine profiles through the SharedAssets registry.
// Reports runs/sec, slot utilization, and shared-cache hit stats; with
// --out the lanes land in a JSON consumable by
// scripts/check_bench_regression.py --require-lanes. With --results-dir,
// every run streams its run_report.json + golden digest into its own
// subdirectory (validated by scripts/check_report.sh), and --fleet-lease
// exercises the preemption/resume path under load.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "fleet/runner.hpp"
#include "trace/json_writer.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

namespace {

std::vector<std::string> parse_scenarios(const std::string& csv,
                                         const fleet::ScenarioCorpus& corpus) {
  std::vector<std::string> names;
  if (csv.empty()) {
    for (const fleet::Scenario& sc : corpus.all()) names.push_back(sc.name);
    return names;
  }
  std::string item;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i == csv.size() || csv[i] == ',') {
      if (!item.empty()) {
        corpus.by_name(item);  // validate early, lists the corpus on error
        names.push_back(item);
        item.clear();
      }
    } else {
      item.push_back(csv[i]);
    }
  }
  DSMCPIC_CHECK_MSG(!names.empty(), "empty --fleet-scenarios list");
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "Simulation-fleet service — many concurrent solver runs in one "
      "process, shared immutable assets, checkpoint-based preempt/resume");
  bench::CommonFlags common(cli, "bench_fleet", "6", 8);
  bench::FleetFlags fleet_flags(cli);
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });
  bench::FleetBenchOptions fopt = bench::finish_or_usage([&] { return fleet_flags.finish(); });

  fleet::FleetOptions fo;
  fo.slots = fopt.slots;
  fo.results_dir = fopt.results_dir;
  fo.lease_steps = fopt.lease;
  fo.machine = opt.machine;
  fo.kernel_threads = opt.kernel_threads;
  fo.sort_every = opt.sort_every;
  // Per-run telemetry rides on the per-run dirs; --metrics-dir requests it
  // (the directory itself is the fleet results dir, so only the cadence
  // knobs carry over).
  fo.telemetry = !opt.metrics_dir.empty();
  fo.metrics_interval = opt.metrics_interval;
  fo.flight_recorder = opt.flight_recorder;
  fleet::FleetRunner runner(fo);

  const std::vector<std::string> names =
      parse_scenarios(fopt.scenarios, runner.corpus());
  for (int i = 0; i < fopt.runs; ++i) {
    fleet::FleetJob job;
    job.scenario = names[static_cast<std::size_t>(i) % names.size()];
    job.steps = opt.steps;
    job.ranks = opt.ranks.front();
    job.seed = opt.seed + static_cast<std::uint64_t>(i);
    if (i == 0) job.park_at = fopt.park;  // --fleet-park: park the first run
    runner.add(job);
  }

  std::printf("fleet: %d runs over %zu scenario(s), %d slots, lease=%d, "
              "machine=%s\n\n",
              fopt.runs, names.size(), fopt.slots, fopt.lease,
              opt.machine.c_str());

  const std::vector<fleet::FleetRunResult> results = runner.run_all();
  const fleet::FleetStats& st = runner.stats();

  Table t("fleet runs (" + std::to_string(fopt.slots) + " slots)");
  t.header({"run", "scenario", "steps", "leases", "digest", "particles",
            "virtual_s", "wall_ms"});
  for (const fleet::FleetRunResult& r : results) {
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(r.digest));
    t.row({r.run_id, r.scenario, std::to_string(r.steps_done),
           std::to_string(r.leases), digest,
           std::to_string(r.final_particles), Table::num(r.virtual_seconds, 1),
           Table::num(r.wall_ms, 0)});
  }
  t.print();

  const double hit_rate =
      st.cache.geometry_hits + st.cache.geometry_misses > 0
          ? static_cast<double>(st.cache.geometry_hits) /
                static_cast<double>(st.cache.geometry_hits +
                                    st.cache.geometry_misses)
          : 0.0;
  std::printf("\nthroughput: %.2f runs/sec, slot utilization %.1f%% "
              "(%d slots, wall %.0f ms, busy %.0f ms)\n",
              st.runs_per_sec, 100.0 * st.slot_utilization, st.slots,
              st.wall_ms, st.busy_ms);
  std::printf("shared cache: geometry %lld hit / %lld miss (%.1f%% hits), "
              "machine %lld hit / %lld miss\n",
              static_cast<long long>(st.cache.geometry_hits),
              static_cast<long long>(st.cache.geometry_misses),
              100.0 * hit_rate,
              static_cast<long long>(st.cache.machine_hits),
              static_cast<long long>(st.cache.machine_misses));

  if (!fopt.out.empty()) {
    std::ofstream os(fopt.out, std::ios::binary | std::ios::trunc);
    if (!os.good()) {
      std::fprintf(stderr, "cannot open %s\n", fopt.out.c_str());
      return 1;
    }
    trace::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "dsmcpic.bench_fleet.v1");
    w.kv("bench", "bench_fleet");
    w.key("fleet");
    w.begin_object();
    w.kv("slots", fopt.slots);
    w.kv("runs", fopt.runs);
    w.kv("steps", opt.steps);
    w.kv("ranks", opt.ranks.front());
    w.kv("lease_steps", fopt.lease);
    w.kv("machine", opt.machine);
    w.key("scenarios");
    w.begin_array();
    for (const std::string& n : names) w.value(n);
    w.end_array();
    w.end_object();
    w.key("lanes");
    w.begin_object();
    w.key("runs_per_sec");
    w.begin_object();
    w.kv("value", st.runs_per_sec);
    w.kv("runs_done", st.runs_done);
    w.kv("wall_ms", st.wall_ms);
    w.end_object();
    w.key("slot_utilization");
    w.begin_object();
    w.kv("value", st.slot_utilization);
    w.kv("busy_ms", st.busy_ms);
    w.kv("slots", st.slots);
    w.end_object();
    w.key("geometry_cache");
    w.begin_object();
    w.kv("hits", st.cache.geometry_hits);
    w.kv("misses", st.cache.geometry_misses);
    w.kv("hit_rate", hit_rate);
    w.end_object();
    w.key("machine_cache");
    w.begin_object();
    w.kv("hits", st.cache.machine_hits);
    w.kv("misses", st.cache.machine_misses);
    w.end_object();
    w.end_object();
    w.end_object();
    w.finish();
    os << "\n";
    std::fprintf(stderr, "lanes JSON: %s\n", fopt.out.c_str());
  }
  return 0;
}
