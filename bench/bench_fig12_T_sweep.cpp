// Reproduces paper Fig. 12: sensitivity of the DC+LB solver to the
// rebalancing period T. Small T rebalances often (overhead may exceed the
// benefit); large T lets imbalance build up. The paper finds T=20 slightly
// best at small rank counts and T=10 slightly best as the count grows; our
// scaled run's population grows faster, shifting the sweet spot toward the
// smaller T values (same trade-off, compressed).

#include <cstdio>
#include <map>

#include "common.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Cli cli("Fig. 12 — impact of the rebalance period T (DC+LB, Dataset 2 "
          "analogue, Tianhe-2 profile)");
  bench::CommonFlags common(cli, "bench_fig12_T_sweep", "24,48,96,192,384", 40);
  const auto* t_list = cli.add_string("T", "5,10,20", "T values to sweep");
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });
  const std::vector<int> periods = bench::parse_rank_list(*t_list);

  const core::Dataset ds = core::make_dataset(2, opt.particle_scale);

  std::map<int, std::map<int, double>> times;  // [T][ranks]
  for (const int T : periods) {
    for (const int nranks : opt.ranks) {
      auto par = bench::make_parallel(ds, nranks,
                                      exchange::Strategy::kDistributed, true,
                                      opt);
      par.balance.period = T;
      times[T][nranks] = bench::run_case(ds, par, opt).total_time;
      std::fprintf(stderr, "  done T=%d ranks=%d\n", T, nranks);
    }
  }

  Table t("Fig. 12 — total execution time (virtual seconds) per T");
  std::vector<std::string> header{"T"};
  for (const int n : opt.ranks) header.push_back(std::to_string(n));
  t.header(header);
  for (const int T : periods) {
    std::vector<std::string> row{"T = " + std::to_string(T)};
    for (const int n : opt.ranks) row.push_back(Table::num(times[T][n], 1));
    t.row(row);
  }
  t.print();
  std::printf(
      "\nPaper shape check: the T values stay within a few percent of each "
      "other, with smaller T gaining as the rank count grows.\n");
  return 0;
}
