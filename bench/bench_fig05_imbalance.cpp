// Reproduces paper Fig. 5: the percentage of particles held by each of 4
// MPI processes across 200 PIC timesteps when NO load balancing is used.
// The paper observes rank 0 (the inlet-side rank) holding 90+% of all
// particles for the whole run. Also prints the same run with the balancer
// enabled, to show the contrast that motivates Section V — in two flavors:
// the paper's fixed-threshold trigger with pure Eq.-7 weights, and the
// timer-augmented cost model with the look-ahead policy (DESIGN.md §2h).
// With --out the three lanes land in a JSON consumable by
// scripts/check_bench_regression.py --require-lanes.

#include <cstdio>
#include <fstream>

#include "common.hpp"
#include "trace/json_writer.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

namespace {

void print_distribution(const char* title,
                        const std::vector<core::StepDiagnostics>& history,
                        int pic_substeps, int nranks) {
  Table t(title);
  std::vector<std::string> header{"PIC step"};
  for (int r = 0; r < nranks; ++r) header.push_back("rank" + std::to_string(r));
  header.push_back("lii");
  t.header(header);
  for (std::size_t s = 0; s < history.size(); ++s) {
    if (s % 5 != 4 && s != 0) continue;  // sample every 5 DSMC steps
    const auto& d = history[s];
    double total = 0.0;
    for (const auto n : d.particles_per_rank) total += static_cast<double>(n);
    std::vector<std::string> row{
        std::to_string((d.dsmc_step + 1) * pic_substeps)};
    for (const auto n : d.particles_per_rank)
      row.push_back(total > 0 ? Table::num(100.0 * n / total, 1) + "%" : "0%");
    row.push_back(Table::num(d.lii, 1));
    t.row(row);
  }
  t.print();
}

int count_rebalances(const std::vector<core::StepDiagnostics>& history) {
  int n = 0;
  for (const auto& d : history) n += d.rebalanced ? 1 : 0;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "Fig. 5 — per-rank particle share over 200 PIC steps without load "
      "balance (4 ranks, Dataset 2 analogue)");
  bench::CommonFlags common(cli, "bench_fig05_imbalance", "4", 100);
  const auto* out = cli.add_string(
      "out", "", "write the lane timings as JSON to this path");
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions opt = bench::finish_or_usage([&] { return common.finish(); });
  const int nranks = opt.ranks.front();

  const core::Dataset ds = core::make_dataset(2, opt.particle_scale);

  auto run = [&](bool lb, balance::CostModelKind cm, balance::PolicyKind pk) {
    auto par = bench::make_parallel(ds, nranks, exchange::Strategy::kDistributed,
                                    lb, opt);
    // At 4 ranks the (evenly sharded) Inject phase flattens the lii metric
    // below the production threshold even though 90+% of the *particles*
    // sit on one rank; the contrast panel lowers the trigger so the
    // balancer acts on the particle imbalance this figure is about.
    par.balance.threshold = 1.05;
    par.balance.period = 5;
    par.balance.cost_model.kind = cm;
    par.balance.policy.kind = pk;
    par.balance.policy.horizon = opt.horizon;
    return bench::run_case(ds, par, opt);
  };

  const auto without = run(false, balance::CostModelKind::kStatic,
                           balance::PolicyKind::kThreshold);
  print_distribution("Fig. 5 — particle share per rank, NO load balance",
                     without.history, ds.config.pic_substeps, nranks);
  std::printf(
      "\nPaper shape: the inlet-side rank holds ~90+%% of the particles for "
      "the whole run.\n\n");

  const auto with = run(true, balance::CostModelKind::kStatic,
                        balance::PolicyKind::kThreshold);
  print_distribution("Contrast — same run WITH the dynamic load balancer",
                     with.history, ds.config.pic_substeps, nranks);
  std::printf("\nTotal virtual time: no-LB %.1f s vs LB %.1f s (%s)\n",
              without.total_time, with.total_time,
              Table::pct((without.total_time - with.total_time) /
                         without.total_time)
                  .c_str());

  const auto look = run(true, balance::CostModelKind::kTimer,
                        balance::PolicyKind::kLookahead);
  std::printf(
      "Timer cost model + look-ahead (H=%d): %.1f s, %d rebalance(s) vs "
      "threshold's %d (%s vs threshold lane)\n",
      opt.horizon, look.total_time, count_rebalances(look.history),
      count_rebalances(with.history),
      Table::pct((with.total_time - look.total_time) / with.total_time)
          .c_str());

  if (!out->empty()) {
    std::ofstream os(*out, std::ios::binary | std::ios::trunc);
    if (!os.good()) {
      std::fprintf(stderr, "cannot open %s\n", out->c_str());
      return 1;
    }
    trace::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "dsmcpic.bench_fig05.v1");
    w.kv("bench", "bench_fig05_imbalance");
    w.key("mesh");
    w.begin_object();
    w.kv("dataset", 2);
    w.kv("ranks", nranks);
    w.kv("steps", opt.steps);
    w.end_object();
    w.kv("particles", without.summary.final_particles);
    w.key("lanes");
    w.begin_object();
    auto lane = [&](const char* name, const bench::CaseResult& r) {
      w.key(name);
      w.begin_object();
      w.kv("total_virtual_s", r.total_time);
      w.kv("rebalances", count_rebalances(r.history));
      w.end_object();
    };
    lane("no_lb", without);
    lane("threshold_static", with);
    lane("lookahead_timer", look);
    w.end_object();
    w.kv("lookahead_timer_speedup_vs_threshold",
         with.total_time / look.total_time);
    w.end_object();
    w.finish();
    os << "\n";
    std::fprintf(stderr, "lanes JSON: %s\n", out->c_str());
  }
  return 0;
}
