// Reproduces paper Fig. 5: the percentage of particles held by each of 4
// MPI processes across 200 PIC timesteps when NO load balancing is used.
// The paper observes rank 0 (the inlet-side rank) holding 90+% of all
// particles for the whole run. Also prints the same run with the balancer
// enabled, to show the contrast that motivates Section V.

#include <cstdio>

#include "common.hpp"

using namespace dsmcpic;
using bench::BenchOptions;

namespace {

void print_distribution(const char* title,
                        const std::vector<core::StepDiagnostics>& history,
                        int pic_substeps, int nranks) {
  Table t(title);
  std::vector<std::string> header{"PIC step"};
  for (int r = 0; r < nranks; ++r) header.push_back("rank" + std::to_string(r));
  header.push_back("lii");
  t.header(header);
  for (std::size_t s = 0; s < history.size(); ++s) {
    if (s % 5 != 4 && s != 0) continue;  // sample every 5 DSMC steps
    const auto& d = history[s];
    double total = 0.0;
    for (const auto n : d.particles_per_rank) total += static_cast<double>(n);
    std::vector<std::string> row{
        std::to_string((d.dsmc_step + 1) * pic_substeps)};
    for (const auto n : d.particles_per_rank)
      row.push_back(total > 0 ? Table::num(100.0 * n / total, 1) + "%" : "0%");
    row.push_back(Table::num(d.lii, 1));
    t.row(row);
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(
      "Fig. 5 — per-rank particle share over 200 PIC steps without load "
      "balance (4 ranks, Dataset 2 analogue)");
  bench::CommonFlags common(cli, "bench_fig05_imbalance", "4", 100);
  if (!bench::parse_or_usage(cli, argc, argv)) return 0;
  const BenchOptions opt = common.finish();
  const int nranks = opt.ranks.front();

  const core::Dataset ds = core::make_dataset(2, opt.particle_scale);

  auto run = [&](bool lb) {
    auto par = bench::make_parallel(ds, nranks, exchange::Strategy::kDistributed,
                                    lb, opt);
    // At 4 ranks the (evenly sharded) Inject phase flattens the lii metric
    // below the production threshold even though 90+% of the *particles*
    // sit on one rank; the contrast panel lowers the trigger so the
    // balancer acts on the particle imbalance this figure is about.
    par.balance.threshold = 1.05;
    par.balance.period = 5;
    return bench::run_case(ds, par, opt);
  };

  const auto without = run(false);
  print_distribution("Fig. 5 — particle share per rank, NO load balance",
                     without.history, ds.config.pic_substeps, nranks);
  std::printf(
      "\nPaper shape: the inlet-side rank holds ~90+%% of the particles for "
      "the whole run.\n\n");

  const auto with = run(true);
  print_distribution("Contrast — same run WITH the dynamic load balancer",
                     with.history, ds.config.pic_substeps, nranks);
  std::printf("\nTotal virtual time: no-LB %.1f s vs LB %.1f s (%s)\n",
              without.total_time, with.total_time,
              Table::pct((without.total_time - with.total_time) /
                         without.total_time)
                  .c_str());
  return 0;
}
