#include <gtest/gtest.h>

#include <cmath>

#include "core/datasets.hpp"
#include "core/solver.hpp"
#include "support/stats.hpp"

namespace dsmcpic::core {
namespace {

/// Small, fast configuration for integration tests.
SolverConfig tiny_config() {
  Dataset d = make_dataset(1, /*particle_scale=*/0.25);
  d.config.nozzle.radial_divisions = 3;
  d.config.nozzle.axial_divisions = 6;
  return d.config;
}

ParallelConfig tiny_parallel(int nranks, bool balance = true) {
  ParallelConfig p;
  p.nranks = nranks;
  p.balance.enabled = balance;
  p.balance.period = 4;
  return p;
}

TEST(Datasets, TableOneRatiosHold) {
  const Dataset d1 = make_dataset(1);
  const Dataset d2 = make_dataset(2);
  const Dataset d3 = make_dataset(3);
  const Dataset d4 = make_dataset(4);
  const Dataset d5 = make_dataset(5);
  // D3 = D2 with 10x fewer particles; D4 half of D2; D5 bigger grid.
  EXPECT_NEAR(static_cast<double>(d2.target_h) / d3.target_h, 10.0, 0.1);
  EXPECT_NEAR(static_cast<double>(d2.target_h) / d4.target_h, 2.0, 0.05);
  EXPECT_GT(d5.config.nozzle.expected_tets(), d2.config.nozzle.expected_tets());
  EXPECT_GT(d2.config.nozzle.expected_tets(), d1.config.nozzle.expected_tets());
  // Scaling factors: fewer target particles => larger fnum.
  EXPECT_GT(d3.config.fnum_h, d2.config.fnum_h);
  EXPECT_THROW(make_dataset(0), Error);
  EXPECT_THROW(make_dataset(7), Error);
}

TEST(Datasets, TargetParticleKnobWorks) {
  SolverConfig c = make_dataset(2).config;
  const double fnum_before = c.fnum_h;
  c.set_target_particles(make_dataset(2).target_h / 10, 100);
  EXPECT_NEAR(c.fnum_h / fnum_before, 10.0, 0.5);
}

TEST(Solver, SerialRunsAndFillsDomain) {
  CoupledSolver solver(tiny_config(), tiny_parallel(1));
  solver.run(10);
  EXPECT_GT(solver.total_particles(), 100);
  const auto& h = solver.history();
  ASSERT_EQ(h.size(), 10u);
  // Population grows during fill-in.
  EXPECT_GT(h.back().total_h, h.front().total_h);
  EXPECT_GT(h.back().total_hplus, 0);
  // Poisson actually iterates (PETSc-style zero initial guess).
  EXPECT_GT(h.back().poisson_iterations, 3);
}

TEST(Solver, ParticleBookkeepingIsConsistent) {
  CoupledSolver solver(tiny_config(), tiny_parallel(3));
  std::int64_t injected = 0;
  for (int s = 0; s < 8; ++s) injected += solver.step().injected;
  // Everything present is something that was injected (ionization may add
  // a few ions, removal subtracts).
  EXPECT_LE(solver.total_particles(), injected * 2);
  EXPECT_GT(solver.total_particles(), 0);
  // Per-rank counts sum to the total.
  const auto per_rank = solver.particles_per_rank();
  std::int64_t sum = 0;
  for (auto n : per_rank) sum += n;
  EXPECT_EQ(sum, solver.total_particles());
}

TEST(Solver, AllParticlesLiveOnOwningRank) {
  CoupledSolver solver(tiny_config(), tiny_parallel(4));
  solver.run(6);
  // After every step ends with exchanges done, each rank's particles sit in
  // cells that rank owns. Verified via the sampler-visible state: re-run a
  // step and check diagnostics instead (owner map is accessible).
  const auto owner = solver.owner();
  EXPECT_EQ(static_cast<std::int32_t>(owner.size()),
            solver.coarse_grid().num_tets());
  for (const auto o : owner) {
    EXPECT_GE(o, 0);
    EXPECT_LT(o, 4);
  }
}

TEST(Solver, DeterministicForFixedSeed) {
  auto run = [] {
    CoupledSolver solver(tiny_config(), tiny_parallel(2));
    solver.run(5);
    return std::tuple(solver.total_particles(),
                      solver.history().back().total_hplus,
                      solver.runtime().total_time());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_DOUBLE_EQ(std::get<2>(a), std::get<2>(b));
}

TEST(Solver, RebalancingTriggersAndReducesImbalance) {
  SolverConfig cfg = tiny_config();
  ParallelConfig par = tiny_parallel(4, /*balance=*/true);
  par.balance.period = 3;
  // The evenly-sharded Inject phase flattens lii at tiny rank counts;
  // trigger on small imbalances so the rebalance machinery is exercised.
  par.balance.threshold = 1.02;
  CoupledSolver solver(cfg, par);
  solver.run(12);
  EXPECT_GE(solver.rebalance_stats().rebalances, 1);
  EXPECT_GT(solver.rebalance_stats().cells_reassigned, 0);
  // After rebalancing, particles spread beyond the inlet ranks.
  const auto per_rank = solver.particles_per_rank();
  const double total = static_cast<double>(solver.total_particles());
  const std::int64_t mx = *std::max_element(per_rank.begin(), per_rank.end());
  EXPECT_LT(static_cast<double>(mx), 0.8 * total);
}

TEST(Solver, NoBalanceKeepsInletRankOverloaded) {
  // The paper's Fig. 5: without LB the inlet-adjacent rank holds the bulk of
  // the particles during early fill-in.
  CoupledSolver solver(tiny_config(), tiny_parallel(4, /*balance=*/false));
  solver.run(6);
  EXPECT_EQ(solver.rebalance_stats().rebalances, 0);
  const auto per_rank = solver.particles_per_rank();
  const std::int64_t mx = *std::max_element(per_rank.begin(), per_rank.end());
  EXPECT_GT(static_cast<double>(mx),
            0.5 * static_cast<double>(solver.total_particles()));
}

TEST(Solver, BalancedRunIsFasterInVirtualTime) {
  SolverConfig cfg = tiny_config();
  // Paper-scale compute weights: load imbalance must dominate the (fixed)
  // rebalancing overhead, as in the evaluation runs.
  ParallelConfig with_lb = tiny_parallel(4, true);
  with_lb.balance.period = 3;
  with_lb.balance.threshold = 1.02;
  with_lb.particle_scale = 200.0;
  ParallelConfig without_lb = tiny_parallel(4, false);
  without_lb.particle_scale = 200.0;
  CoupledSolver a(cfg, with_lb), b(cfg, without_lb);
  a.run(15);
  b.run(15);
  EXPECT_LT(a.runtime().total_time(), b.runtime().total_time());
}

TEST(Solver, SerialAndParallelDensitiesAgree) {
  // The paper's validation (Fig. 9): serial vs parallel axis density,
  // statistically consistent (same injection streams, different wall/RNG
  // interleavings).
  SolverConfig cfg = make_dataset(1).config;  // full D1 statistics
  cfg.nozzle.radial_divisions = 3;
  cfg.nozzle.axial_divisions = 6;
  CoupledSolver serial(cfg, tiny_parallel(1));
  CoupledSolver parallel(cfg, tiny_parallel(4));
  const int steps = 30;  // past the ~25-step transit: plume established
  serial.run(steps);
  parallel.run(steps);
  const auto ds = serial.sampler().number_density(dsmc::kSpeciesH);
  const auto dp = parallel.sampler().number_density(dsmc::kSpeciesH);
  const auto ps = dsmc::axis_profile(serial.coarse_grid(), ds,
                                     cfg.nozzle.length, 10);
  const auto pp = dsmc::axis_profile(parallel.coarse_grid(), dp,
                                     cfg.nozzle.length, 10);
  // Compare where the density is established (skip the noisy near-zero
  // front, as the paper does: "errors become larger when the number density
  // is close to 0").
  const double floor = 0.3 * dsmcpic::max_of(ps);
  double err_sum = 0.0;
  int counted = 0;
  for (int k = 0; k < 10; ++k) {
    if (ps[k] <= floor) continue;
    err_sum += std::abs(pp[k] - ps[k]) / ps[k];
    ++counted;
  }
  ASSERT_GT(counted, 2);
  EXPECT_LT(err_sum / counted, 0.30);
  // Integral quantity: total particle population within 10%.
  const double ns = static_cast<double>(serial.total_particles());
  const double np = static_cast<double>(parallel.total_particles());
  EXPECT_NEAR(np / ns, 1.0, 0.10);
}

TEST(Solver, PhaseBreakdownCoversWorkflow) {
  CoupledSolver solver(tiny_config(), tiny_parallel(2));
  solver.run(4);
  const RunSummary s = solver.summary();
  for (const char* phase :
       {phases::kInject, phases::kDsmcMove, phases::kDsmcExchange,
        phases::kReindex, phases::kPicMove, phases::kPicExchange,
        phases::kPoissonSolve}) {
    EXPECT_GT(s.phase_max(phase), 0.0) << phase;
  }
  EXPECT_GT(s.total_time, 0.0);
  EXPECT_EQ(s.final_particles, solver.total_particles());
}

TEST(Solver, StrategiesProduceSamePhysics) {
  SolverConfig cfg = tiny_config();
  ParallelConfig dc = tiny_parallel(3);
  dc.strategy = exchange::Strategy::kDistributed;
  ParallelConfig cc = tiny_parallel(3);
  cc.strategy = exchange::Strategy::kCentralized;
  CoupledSolver a(cfg, dc), b(cfg, cc);
  a.run(6);
  b.run(6);
  // The communication strategy must not change the simulation content.
  EXPECT_EQ(a.total_particles(), b.total_particles());
  EXPECT_EQ(a.history().back().total_hplus, b.history().back().total_hplus);
}

TEST(Solver, PotentialFieldIsPhysical) {
  SolverConfig cfg = tiny_config();
  cfg.poisson_bcs.phi_inlet = 50.0;
  CoupledSolver solver(cfg, tiny_parallel(2));
  solver.run(3);
  const auto& phi = solver.potential();
  double mx = -1e300, mn = 1e300;
  for (double v : phi) {
    mx = std::max(mx, v);
    mn = std::min(mn, v);
  }
  EXPECT_LE(mx, 50.0 + 1.0);  // near the max principle bound
  EXPECT_GE(mn, -1.0);
}

TEST(Solver, MagneticFieldRunWorks) {
  SolverConfig cfg = tiny_config();
  cfg.magnetic_field = {0.0, 0.0, 0.05};  // constant axial B
  CoupledSolver solver(cfg, tiny_parallel(2));
  solver.run(4);
  EXPECT_GT(solver.total_particles(), 0);
}

}  // namespace
}  // namespace dsmcpic::core
