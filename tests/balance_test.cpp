#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "balance/hungarian.hpp"
#include "balance/rebalancer.hpp"
#include "par/machine.hpp"
#include "par/runtime.hpp"
#include "support/rng.hpp"

namespace dsmcpic::balance {
namespace {

/// Brute-force max-weight assignment for cross-checking (n <= 8).
double brute_force_max(const std::vector<double>& w, int n) {
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = -std::numeric_limits<double>::infinity();
  do {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += w[i * n + perm[i]];
    best = std::max(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Hungarian, TrivialCases) {
  const std::vector<double> one{5.0};
  const AssignmentResult r1 = hungarian_max(one, 1);
  EXPECT_EQ(r1.row_to_col[0], 0);
  EXPECT_DOUBLE_EQ(r1.total, 5.0);

  // Identity is optimal on a diagonal-dominant matrix.
  const std::vector<double> diag{10, 1, 1,  //
                                 1, 10, 1,  //
                                 1, 1, 10};
  const AssignmentResult r3 = hungarian_max(diag, 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(r3.row_to_col[i], i);
  EXPECT_DOUBLE_EQ(r3.total, 30.0);
}

TEST(Hungarian, KnownMinInstance) {
  // Classic 3x3: optimal min cost = 5 (0->1, 1->0, 2->2).
  const std::vector<double> cost{4, 1, 3,  //
                                 2, 0, 5,  //
                                 3, 2, 2};
  const AssignmentResult r = hungarian_min(cost, 3);
  EXPECT_DOUBLE_EQ(r.total, 5.0);
}

TEST(Hungarian, AssignmentIsAPermutation) {
  Rng rng(17);
  const int n = 12;
  std::vector<double> w(n * n);
  for (auto& x : w) x = rng.uniform(0, 100);
  const AssignmentResult r = hungarian_max(w, n);
  std::vector<char> used(n, 0);
  for (int i = 0; i < n; ++i) {
    ASSERT_GE(r.row_to_col[i], 0);
    ASSERT_LT(r.row_to_col[i], n);
    EXPECT_FALSE(used[r.row_to_col[i]]);
    used[r.row_to_col[i]] = 1;
  }
  EXPECT_GT(r.operations, 0);
}

class HungarianRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandomTest, MatchesBruteForce) {
  const int n = GetParam();
  Rng rng(1000 + n);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> w(n * n);
    for (auto& x : w) x = std::floor(rng.uniform(0, 50));
    const AssignmentResult r = hungarian_max(w, n);
    EXPECT_DOUBLE_EQ(r.total, brute_force_max(w, n)) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HungarianRandomTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

TEST(Hungarian, LargeInstanceRunsFast) {
  Rng rng(3);
  const int n = 256;
  std::vector<double> w(static_cast<std::size_t>(n) * n);
  for (auto& x : w) x = rng.uniform(0, 1000);
  const AssignmentResult r = hungarian_max(w, n);
  // Sanity: at least as good as the identity assignment.
  double identity = 0.0;
  for (int i = 0; i < n; ++i) identity += w[static_cast<std::size_t>(i) * n + i];
  EXPECT_GE(r.total, identity);
}

TEST(Lii, FormulaMatchesEq6) {
  // total{4, 10}, migration{1, 2}, poisson{1, 2}:
  // lii = (10-2-2)/(4-1-1) = 3.
  const std::vector<double> total{4, 10}, pm{1, 2}, poi{1, 2};
  EXPECT_DOUBLE_EQ(load_imbalance_indicator(total, pm, poi), 3.0);
}

TEST(Lii, PerfectBalanceIsOne) {
  const std::vector<double> total{5, 5, 5}, pm{1, 1, 1}, poi{2, 2, 2};
  EXPECT_DOUBLE_EQ(load_imbalance_indicator(total, pm, poi), 1.0);
}

TEST(Lii, IdleRankYieldsInfinity) {
  const std::vector<double> total{10, 1}, pm{0, 1}, poi{0, 0};
  EXPECT_TRUE(std::isinf(load_imbalance_indicator(total, pm, poi)));
}

TEST(KmRemap, IdenticalPartitionKeepsLabels) {
  // New partition == old owners: KM must relabel parts to the identity.
  const std::vector<std::int32_t> old_owner{0, 0, 1, 1, 2, 2};
  const std::vector<std::int32_t> new_part{1, 1, 2, 2, 0, 0};
  const std::vector<double> keep{10, 10, 20, 20, 30, 30};
  const auto owner = km_remap(old_owner, new_part, keep, 3);
  EXPECT_EQ(owner, old_owner);  // zero particles migrate
}

TEST(KmRemap, MinimizesMigrationVsIdentityLabels) {
  // 4 cells, 2 ranks. New partition groups {0,1} and {2,3} but labels them
  // opposite to the old owners; KM must flip the labels (Fig. 6 scenario).
  const std::vector<std::int32_t> old_owner{0, 0, 1, 1};
  const std::vector<std::int32_t> new_part{1, 1, 0, 0};
  const std::vector<double> keep{100, 100, 100, 100};
  const auto owner = km_remap(old_owner, new_part, keep, 2);
  EXPECT_EQ(owner, old_owner);
  // Identity labeling would have migrated all 400 particles.
}

TEST(KmRemap, PartialOverlapPicksBestMatch) {
  // Rank 0 held heavy cells 0,1; the new partition puts 0,1,2 in part 1.
  const std::vector<std::int32_t> old_owner{0, 0, 1, 1, 1};
  const std::vector<std::int32_t> new_part{1, 1, 1, 0, 0};
  const std::vector<double> keep{50, 50, 1, 1, 1};
  const auto owner = km_remap(old_owner, new_part, keep, 2);
  // Part 1 (holding the heavy cells) must take label 0.
  EXPECT_EQ(owner[0], 0);
  EXPECT_EQ(owner[1], 0);
  EXPECT_EQ(owner[3], 1);
}

TEST(Redecompose, BalancesSkewedParticleLoad) {
  // Path graph of 32 cells; all particles piled into the first 4 cells
  // (the paper's Fig. 5 situation). Initial owner: block partition.
  const int ncells = 32, nranks = 4;
  partition::Graph dual;
  dual.xadj.assign(ncells + 1, 0);
  for (int c = 0; c < ncells; ++c)
    dual.xadj[c + 1] = dual.xadj[c] + (c == 0 || c == ncells - 1 ? 1 : 2);
  dual.adjncy.resize(dual.xadj[ncells]);
  for (int c = 0; c < ncells; ++c) {
    std::int64_t pos = dual.xadj[c];
    if (c > 0) dual.adjncy[pos++] = c - 1;
    if (c < ncells - 1) dual.adjncy[pos++] = c + 1;
  }
  std::vector<std::int64_t> neutrals(ncells, 0), charged(ncells, 0);
  for (int c = 0; c < 4; ++c) neutrals[c] = 1000;
  std::vector<std::int32_t> owner(ncells);
  for (int c = 0; c < ncells; ++c) owner[c] = c / (ncells / nranks);

  par::Runtime rt(nranks,
                  par::Topology(par::MachineProfile::tianhe2(), nranks));
  RebalanceConfig cfg;
  RebalanceStats stats;
  std::vector<Vec3> centroids(ncells);
  for (int c = 0; c < ncells; ++c) centroids[c] = {static_cast<double>(c), 0, 0};
  const auto new_owner = redecompose(rt, "rebalance", dual, centroids, neutrals,
                                     charged, owner, cfg, stats);

  // The four heavy cells must now be spread across ranks.
  std::vector<std::int64_t> load(nranks, 0);
  for (int c = 0; c < ncells; ++c) load[new_owner[c]] += neutrals[c];
  const std::int64_t mx = *std::max_element(load.begin(), load.end());
  EXPECT_LE(mx, 2000);  // was 4000 on one rank before
  EXPECT_EQ(stats.rebalances, 1);
  EXPECT_GT(stats.cells_reassigned, 0);
  EXPECT_GT(rt.phase_stats("rebalance").busy_max, 0.0);
}

TEST(Redecompose, WeightRatioPrioritizesChargedCells) {
  // Two heavy cells: one with 100 neutrals, one with 100 charged. With
  // R = 10 the charged cell weighs ~10x more; the partitioner must not put
  // both on the same rank when splitting two ways.
  const int ncells = 16, nranks = 2;
  partition::Graph dual;
  dual.xadj.assign(ncells + 1, 0);
  for (int c = 0; c < ncells; ++c)
    dual.xadj[c + 1] = dual.xadj[c] + (c == 0 || c == ncells - 1 ? 1 : 2);
  dual.adjncy.resize(dual.xadj[ncells]);
  for (int c = 0; c < ncells; ++c) {
    std::int64_t pos = dual.xadj[c];
    if (c > 0) dual.adjncy[pos++] = c - 1;
    if (c < ncells - 1) dual.adjncy[pos++] = c + 1;
  }
  std::vector<std::int64_t> neutrals(ncells, 1), charged(ncells, 0);
  charged[3] = 100;
  charged[12] = 100;
  std::vector<std::int32_t> owner(ncells, 0);
  for (int c = ncells / 2; c < ncells; ++c) owner[c] = 1;

  par::Runtime rt(nranks,
                  par::Topology(par::MachineProfile::tianhe2(), nranks));
  RebalanceConfig cfg;
  cfg.weight_ratio = 10.0;
  RebalanceStats stats;
  std::vector<Vec3> centroids(ncells);
  for (int c = 0; c < ncells; ++c) centroids[c] = {static_cast<double>(c), 0, 0};
  const auto new_owner = redecompose(rt, "rb", dual, centroids, neutrals,
                                     charged, owner, cfg, stats);
  EXPECT_NE(new_owner[3], new_owner[12]);
}

}  // namespace
}  // namespace dsmcpic::balance
