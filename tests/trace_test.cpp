// Tests for the tracing & metrics subsystem (DESIGN.md §2e): JSON escaping,
// critical-path analysis on a hand-built DAG, byte-identical trace exports
// across execution backends, the recording-never-perturbs guarantee, and
// the fig05-style acceptance runs (straggler attribution, wait shrinking
// after a rebalance).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/datasets.hpp"
#include "core/solver.hpp"
#include "trace/chrome_writer.hpp"
#include "trace/critical_path.hpp"
#include "trace/recorder.hpp"

namespace dsmcpic {
namespace {

// ---------------------------------------------------------------------------
// JSON emission primitives

TEST(ChromeWriter, EscapeJson) {
  EXPECT_EQ(trace::escape_json("plain"), "plain");
  EXPECT_EQ(trace::escape_json("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(trace::escape_json("tab\there"), "tab\\there");
  EXPECT_EQ(trace::escape_json("nl\nret\r"), "nl\\nret\\r");
  EXPECT_EQ(trace::escape_json(std::string_view("\x01\x1f", 2)),
            "\\u0001\\u001f");
}

TEST(ChromeWriter, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0, -2.5, 0.1, 1e-300, 3.141592653589793}) {
    const std::string s = trace::format_double(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
  // Non-finite values would corrupt the JSON; they degrade to 0.
  EXPECT_EQ(trace::format_double(std::numeric_limits<double>::infinity()), "0");
}

// ---------------------------------------------------------------------------
// Critical path on a hand-built 3-rank DAG
//
//   rank0: A[0,10] ----\                       /-- D cost [15,16]
//   rank1: preB[0,2]    sync B (max 10, +1) -- C[11,15] -- sync D (max 15, +1)
//   rank2: (idle) -----/
//
// The bounding chain is A(rank0) -> B's collective cost -> C(rank1) ->
// D's collective cost; every wait is off-chain.

struct Dag {
  trace::TraceRecorder rec{3};
  int pa, pb, pc, pd;

  Dag() {
    pa = rec.intern_phase("A");
    pb = rec.intern_phase("B");
    pc = rec.intern_phase("C");
    pd = rec.intern_phase("D");
    const int move = rec.intern_key("move");
    rec.add_span({0, pa, trace::SpanKind::kCompute, 0.0, 10.0, 0,
                  {{move, 123.0}}});
    rec.add_span({1, pb, trace::SpanKind::kCompute, 0.0, 2.0, 0, {}});
    rec.add_sync({pb, 1, 10.0, 11.0, 0, {10.0, 2.0, 0.0}});
    rec.add_span({1, pc, trace::SpanKind::kCompute, 11.0, 15.0, 2, {}});
    rec.add_sync({pd, 3, 15.0, 16.0, 1, {11.0, 15.0, 11.0}});
  }
};

TEST(CriticalPath, HandBuiltDagChainAndAttribution) {
  Dag d;
  trace::CriticalPathAnalyzer cp(d.rec);
  const trace::CriticalPathResult r = cp.analyze();

  EXPECT_DOUBLE_EQ(r.end_time, 16.0);
  ASSERT_EQ(r.chain.size(), 4u);

  EXPECT_EQ(r.chain[0].rank, 0);
  EXPECT_EQ(r.chain[0].phase, d.pa);
  EXPECT_EQ(r.chain[0].kind, trace::SpanKind::kCompute);
  EXPECT_DOUBLE_EQ(r.chain[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(r.chain[0].t1, 10.0);

  EXPECT_EQ(r.chain[1].rank, 1);
  EXPECT_EQ(r.chain[1].phase, d.pb);
  EXPECT_EQ(r.chain[1].kind, trace::SpanKind::kSync);

  EXPECT_EQ(r.chain[2].rank, 1);
  EXPECT_EQ(r.chain[2].phase, d.pc);
  EXPECT_DOUBLE_EQ(r.chain[2].duration(), 4.0);

  EXPECT_EQ(r.chain[3].rank, 0);
  EXPECT_EQ(r.chain[3].phase, d.pd);
  EXPECT_EQ(r.chain[3].kind, trace::SpanKind::kSync);

  EXPECT_DOUBLE_EQ(r.path_compute, 14.0);
  EXPECT_DOUBLE_EQ(r.path_comm, 2.0);
  EXPECT_DOUBLE_EQ(r.untracked, 0.0);
  EXPECT_DOUBLE_EQ(r.compute_by_rank_phase.at({0, d.pa}), 10.0);
  EXPECT_DOUBLE_EQ(r.compute_by_rank_phase.at({1, d.pc}), 4.0);

  ASSERT_EQ(r.path_by_rank.size(), 3u);
  EXPECT_DOUBLE_EQ(r.path_by_rank[0], 11.0);
  EXPECT_DOUBLE_EQ(r.path_by_rank[1], 5.0);
  EXPECT_DOUBLE_EQ(r.path_by_rank[2], 0.0);

  // Waits: B makes rank1 wait 8 and rank2 wait 10; D makes ranks 0 and 2
  // wait 4 each. None of it is on the chain.
  EXPECT_DOUBLE_EQ(r.wait_by_rank[0], 4.0);
  EXPECT_DOUBLE_EQ(r.wait_by_rank[1], 8.0);
  EXPECT_DOUBLE_EQ(r.wait_by_rank[2], 14.0);
  EXPECT_DOUBLE_EQ(r.total_wait, 26.0);
  EXPECT_DOUBLE_EQ(r.wait_by_phase[d.pb], 18.0);
  EXPECT_DOUBLE_EQ(r.wait_by_phase[d.pd], 8.0);

  std::ostringstream report;
  cp.print(r, report);
  EXPECT_NE(report.str().find("dominant compute on the path: rank 0 in A"),
            std::string::npos)
      << report.str();
}

TEST(CriticalPath, WaitInWindowSplitsBySyncTime) {
  Dag d;
  trace::CriticalPathAnalyzer cp(d.rec);
  const std::vector<double> before = cp.wait_in_window(0.0, 12.0);
  EXPECT_DOUBLE_EQ(before[0], 0.0);
  EXPECT_DOUBLE_EQ(before[1], 8.0);
  EXPECT_DOUBLE_EQ(before[2], 10.0);
  const std::vector<double> after = cp.wait_in_window(12.0, 20.0);
  EXPECT_DOUBLE_EQ(after[0], 4.0);
  EXPECT_DOUBLE_EQ(after[1], 0.0);
  EXPECT_DOUBLE_EQ(after[2], 4.0);
}

// ---------------------------------------------------------------------------
// End-to-end recording on the coupled solver

core::SolverConfig tiny_config() {
  core::Dataset d = core::make_dataset(1, /*particle_scale=*/0.25);
  d.config.nozzle.radial_divisions = 3;
  d.config.nozzle.axial_divisions = 6;
  return d.config;
}

core::ParallelConfig tiny_parallel(par::ExecMode mode, int threads,
                                   int kernel_threads, bool balance) {
  core::ParallelConfig par;
  par.nranks = 6;
  par.strategy = exchange::Strategy::kDistributed;
  par.balance.enabled = balance;
  par.balance.period = 4;
  par.exec_mode = mode;
  par.exec_threads = threads;
  par.kernel_threads = kernel_threads;
  return par;
}

struct TracedRun {
  std::string json;
  std::string csv;
  std::vector<double> clocks;
  double total_time = 0.0;
  std::vector<double> potential;
  std::vector<std::int64_t> particles_per_rank;
  std::vector<core::StepDiagnostics> history;
};

TracedRun run_traced(par::ExecMode mode, int threads, int kernel_threads,
                     bool attach_tracer = true, bool balance = true,
                     int steps = 8) {
  core::CoupledSolver solver(tiny_config(),
                             tiny_parallel(mode, threads, kernel_threads,
                                           balance));
  trace::TraceRecorder rec(6);
  if (attach_tracer) solver.runtime().set_tracer(&rec);
  solver.run(steps);

  TracedRun r;
  if (attach_tracer) {
    std::ostringstream json, csv;
    trace::write_chrome_trace(rec, json);
    rec.metrics().write_csv(csv);
    r.json = json.str();
    r.csv = csv.str();
  }
  for (int i = 0; i < solver.runtime().size(); ++i)
    r.clocks.push_back(solver.runtime().clock(i));
  r.total_time = solver.runtime().total_time();
  r.potential = solver.potential();
  r.particles_per_rank = solver.particles_per_rank();
  r.history = solver.history();
  return r;
}

// Identical trace BYTES — not merely equivalent events — for every
// execution backend: recording happens on the driver thread only.
TEST(TraceDeterminism, IdenticalBytesAcrossExecModes) {
  const TracedRun seq = run_traced(par::ExecMode::kSequential, 0, 1);
  const TracedRun thr = run_traced(par::ExecMode::kThreaded, 4, 1);
  const TracedRun kt4 = run_traced(par::ExecMode::kSequential, 0, 4);

  ASSERT_FALSE(seq.json.empty());
  EXPECT_EQ(seq.json, thr.json);
  EXPECT_EQ(seq.json, kt4.json);
  EXPECT_EQ(seq.csv, thr.csv);
  EXPECT_EQ(seq.csv, kt4.csv);
}

// Attaching a recorder must not move a single clock tick or particle.
TEST(TraceDeterminism, RecordingDoesNotPerturbTheRun) {
  const TracedRun with = run_traced(par::ExecMode::kSequential, 0, 1,
                                    /*attach_tracer=*/true);
  const TracedRun without = run_traced(par::ExecMode::kSequential, 0, 1,
                                       /*attach_tracer=*/false);
  EXPECT_EQ(with.clocks, without.clocks);
  EXPECT_EQ(with.total_time, without.total_time);
  EXPECT_EQ(with.potential, without.potential);
  EXPECT_EQ(with.particles_per_rank, without.particles_per_rank);
  ASSERT_EQ(with.history.size(), without.history.size());
  for (std::size_t i = 0; i < with.history.size(); ++i) {
    EXPECT_EQ(with.history[i].total_h, without.history[i].total_h);
    EXPECT_EQ(with.history[i].lii, without.history[i].lii);
    EXPECT_EQ(with.history[i].rebalanced, without.history[i].rebalanced);
  }
}

// The export has one named lane per rank plus spans, flows, and counters.
TEST(TraceExport, ContainsLanesFlowsAndCounters) {
  const TracedRun r = run_traced(par::ExecMode::kSequential, 0, 1);
  for (int rank = 0; rank < 6; ++rank) {
    const std::string lane = "\"rank " + std::to_string(rank) + "\"";
    EXPECT_NE(r.json.find(lane), std::string::npos) << lane;
  }
  EXPECT_NE(r.json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(r.json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(r.json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(r.json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_EQ(r.csv.substr(0, r.csv.find('\n')),
            "step,counter,rank,value,virtual_time");
  EXPECT_NE(r.csv.find("particles_owned"), std::string::npos);
  EXPECT_NE(r.csv.find("lii"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fig. 5-style acceptance: on an imbalanced run the analyzer pins the
// dominant path compute on the overloaded rank's particle phases, and with
// the balancer on, per-step wait shrinks after the rebalance point.

// Dataset 2 is the paper's Fig. 5 scenario: the inlet-side rank ends up
// holding nearly all particles. 4 ranks, axial decomposition.
core::SolverConfig imbalanced_config() {
  core::Dataset d = core::make_dataset(2, /*particle_scale=*/0.25);
  d.config.nozzle.radial_divisions = 3;
  d.config.nozzle.axial_divisions = 6;
  return d.config;
}

core::ParallelConfig imbalanced_parallel(bool balance) {
  core::ParallelConfig par;
  par.nranks = 4;
  par.strategy = exchange::Strategy::kDistributed;
  par.balance.enabled = balance;
  par.balance.period = 4;
  // The scaled-down run's lii stays near 1.05 in 10 steps; lower the paper's
  // 2.0 trigger so a rebalance actually happens inside the test budget.
  par.balance.threshold = 1.02;
  return par;
}

TEST(CriticalPath, ImbalancedRunBlamesTheOverloadedRank) {
  core::CoupledSolver solver(imbalanced_config(), imbalanced_parallel(false));
  trace::TraceRecorder rec(4);
  solver.runtime().set_tracer(&rec);
  solver.run(10);

  const std::vector<std::int64_t> parts = solver.particles_per_rank();
  const int overloaded = static_cast<int>(
      std::max_element(parts.begin(), parts.end()) - parts.begin());
  ASSERT_GT(parts[overloaded], 0);

  trace::CriticalPathAnalyzer cp(rec);
  const trace::CriticalPathResult r = cp.analyze();
  ASSERT_FALSE(r.compute_by_rank_phase.empty());
  const auto top = std::max_element(
      r.compute_by_rank_phase.begin(), r.compute_by_rank_phase.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  EXPECT_EQ(top->first.first, overloaded);

  // The overloaded rank's DSMC_Move spans sit on the path, and dominate
  // every other rank's share of that phase.
  const int move = [&] {
    const auto& names = rec.phase_names();
    for (std::size_t i = 0; i < names.size(); ++i)
      if (names[i] == "DSMC_Move") return static_cast<int>(i);
    return -1;
  }();
  ASSERT_GE(move, 0);
  const auto it = r.compute_by_rank_phase.find({overloaded, move});
  ASSERT_NE(it, r.compute_by_rank_phase.end());
  EXPECT_GT(it->second, 0.0);
  for (int rank = 0; rank < 4; ++rank) {
    if (rank == overloaded) continue;
    const auto other = r.compute_by_rank_phase.find({rank, move});
    if (other != r.compute_by_rank_phase.end())
      EXPECT_LT(other->second, it->second) << "rank " << rank;
  }

  // Virtual time is bounded by the chain: compute + comm + untracked on
  // the path reconstructs end-to-end time exactly.
  EXPECT_NEAR(r.path_compute + r.path_comm + r.untracked, r.end_time,
              1e-6 * r.end_time);
}

// The rebalance takes the overloaded rank off the hook: before it, most
// wait time across the machine is blamed on the overloaded rank (it is the
// argmax_rank the other ranks idle for at nearly every sync); afterwards
// that blame share collapses. Absolute wait keeps growing with the particle
// population, so blame share — not raw wait — is the clean signal.
TEST(CriticalPath, RebalanceShiftsWaitBlameOffTheOverloadedRank) {
  core::CoupledSolver solver(imbalanced_config(), imbalanced_parallel(true));
  trace::TraceRecorder rec(4);
  solver.runtime().set_tracer(&rec);
  solver.run(10);

  // The solver marks every accepted rebalance with an instant.
  double t_reb = -1.0;
  for (const trace::Instant& i : rec.instants())
    if (i.name.rfind("rebalance", 0) == 0) {
      t_reb = i.t;
      break;
    }
  ASSERT_GE(t_reb, 0.0) << "no rebalance happened in 10 steps";
  ASSERT_GT(rec.end_time(), t_reb);

  // "Overloaded" means before the rebalance moved its particles away, so
  // read it from the step diagnostics preceding the rebalanced step.
  const std::vector<core::StepDiagnostics>& hist0 = solver.history();
  const auto first_reb = std::find_if(hist0.begin(), hist0.end(),
                                      [](const core::StepDiagnostics& d) {
                                        return d.rebalanced;
                                      });
  ASSERT_NE(first_reb, hist0.end());
  ASSERT_NE(first_reb, hist0.begin());
  const std::vector<std::int64_t>& parts = (first_reb - 1)->particles_per_rank;
  const int overloaded = static_cast<int>(
      std::max_element(parts.begin(), parts.end()) - parts.begin());

  double before_all = 0.0, before_blamed = 0.0;
  double after_all = 0.0, after_blamed = 0.0;
  for (const trace::SyncRec& s : rec.syncs()) {
    double w = 0.0;
    for (int r = 0; r < 4; ++r) w += s.t_max - s.arrive[r];
    if (w <= 0.0) continue;
    const bool blamed = s.argmax_rank == overloaded;
    if (s.t_max < t_reb) {
      before_all += w;
      if (blamed) before_blamed += w;
    } else {
      after_all += w;
      if (blamed) after_blamed += w;
    }
  }
  ASSERT_GT(before_all, 0.0);
  ASSERT_GT(after_all, 0.0);
  const double before_share = before_blamed / before_all;
  const double after_share = after_blamed / after_all;
  EXPECT_GT(before_share, 0.5);
  EXPECT_LT(after_share, 0.5 * before_share);

  // Same story through wait_in_window: pre-rebalance the overloaded rank
  // is the one NOT waiting — every other rank out-waits it.
  trace::CriticalPathAnalyzer cp(rec);
  const std::vector<double> before = cp.wait_in_window(0.0, t_reb);
  for (int r = 0; r < 4; ++r)
    if (r != overloaded) EXPECT_GT(before[r], before[overloaded]) << r;

  // And the recorded lii counter drops at the step after the rebalance.
  ASSERT_NE(first_reb + 1, hist0.end());
  EXPECT_LT((first_reb + 1)->lii, first_reb->lii);
}

}  // namespace
}  // namespace dsmcpic
