// Tests for the geometric decomposition baselines (octree / Morton).

#include <gtest/gtest.h>

#include <set>

#include "balance/rebalancer.hpp"
#include "mesh/nozzle.hpp"
#include "partition/geometric.hpp"
#include "partition/graph.hpp"
#include "support/rng.hpp"

namespace dsmcpic::partition {
namespace {

TEST(Morton, CodeOrderingFollowsSpace) {
  const Vec3 lo{0, 0, 0}, hi{1, 1, 1};
  // Origin has the smallest code; the far corner the largest.
  const auto c000 = morton_code({0.01, 0.01, 0.01}, lo, hi);
  const auto c111 = morton_code({0.99, 0.99, 0.99}, lo, hi);
  EXPECT_LT(c000, c111);
  // Interleaving: z is the most significant axis bit.
  EXPECT_GT(morton_code({0.0, 0.0, 0.9}, lo, hi),
            morton_code({0.9, 0.9, 0.0}, lo, hi));
}

TEST(Morton, PartitionBalancesWeights) {
  Rng rng(3);
  std::vector<Vec3> pts(4000);
  std::vector<double> w(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    pts[i] = {rng.uniform(), rng.uniform(), rng.uniform()};
    w[i] = 1.0 + rng.uniform_index(3);
  }
  const auto r = morton_partition(pts, w, 16);
  EXPECT_LE(r.imbalance, 1.05);
  std::set<std::int32_t> used(r.part.begin(), r.part.end());
  EXPECT_EQ(used.size(), 16u);
}

TEST(Morton, SlicesAreSpatiallyCoherent) {
  // Points on a line: slices must be contiguous intervals.
  std::vector<Vec3> pts(100);
  std::vector<double> w(100, 1.0);
  for (int i = 0; i < 100; ++i) pts[i] = {i * 0.01, 0.0, 0.0};
  const auto r = morton_partition(pts, w, 4);
  for (int i = 1; i < 100; ++i)
    EXPECT_GE(r.part[i], r.part[i - 1]);  // monotone along the line
}

TEST(Octree, PartitionBalancesSkewedWeights) {
  // Everything piled into one corner (the Fig. 5 situation): the octree
  // must still split the pile across ranks.
  Rng rng(9);
  std::vector<Vec3> pts(2000);
  std::vector<double> w(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const bool dense = i < 1600;
    pts[i] = dense ? Vec3{0.1 * rng.uniform(), 0.1 * rng.uniform(),
                          0.1 * rng.uniform()}
                   : Vec3{rng.uniform(), rng.uniform(), rng.uniform()};
    w[i] = dense ? 50.0 : 1.0;
  }
  const auto r = octree_partition(pts, w, 8);
  EXPECT_LE(r.imbalance, 1.25);
  std::set<std::int32_t> used(r.part.begin(), r.part.end());
  EXPECT_EQ(used.size(), 8u);
}

TEST(Octree, DeterministicAndComplete) {
  std::vector<Vec3> pts;
  std::vector<double> w;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    w.push_back(1.0);
  }
  const auto a = octree_partition(pts, w, 5);
  const auto b = octree_partition(pts, w, 5);
  EXPECT_EQ(a.part, b.part);
  ASSERT_EQ(a.part.size(), pts.size());
  for (const auto p : a.part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 5);
  }
}

TEST(GeometricVsGraph, GraphCutIsLowerOnTheNozzle) {
  // The point of the paper's graph-based decomposition: lower edge cut
  // (communication) than particle-count-only geometric baselines.
  mesh::NozzleSpec spec;
  spec.radial_divisions = 6;
  spec.axial_divisions = 18;
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(spec);
  Graph dual;
  grid.dual_graph(dual.xadj, dual.adjncy);
  std::vector<double> w(grid.num_tets(), 1.0);

  const auto graph = part_graph_kway(dual, 16);
  const auto octree = octree_partition(grid.centroids(), w, 16);
  const auto morton = morton_partition(grid.centroids(), w, 16);

  const auto cut_oct = edge_cut(dual, octree.part);
  const auto cut_mor = edge_cut(dual, morton.part);
  EXPECT_LT(graph.cut, cut_oct);
  EXPECT_LT(graph.cut, cut_mor);
}

TEST(Redecompose, GeometricRepartitionersBalanceToo) {
  const int ncells = 64, nranks = 4;
  Graph dual;
  dual.xadj.assign(ncells + 1, 0);
  for (int c = 0; c < ncells; ++c)
    dual.xadj[c + 1] = dual.xadj[c] + (c == 0 || c == ncells - 1 ? 1 : 2);
  dual.adjncy.resize(dual.xadj[ncells]);
  for (int c = 0; c < ncells; ++c) {
    std::int64_t pos = dual.xadj[c];
    if (c > 0) dual.adjncy[pos++] = c - 1;
    if (c < ncells - 1) dual.adjncy[pos++] = c + 1;
  }
  std::vector<std::int64_t> neutrals(ncells, 1), charged(ncells, 0);
  for (int c = 0; c < 8; ++c) neutrals[c] = 500;
  std::vector<std::int32_t> owner(ncells);
  for (int c = 0; c < ncells; ++c) owner[c] = c / (ncells / nranks);
  std::vector<Vec3> centroids(ncells);
  for (int c = 0; c < ncells; ++c)
    centroids[c] = {0.0, 0.0, static_cast<double>(c)};

  for (const auto repart : {balance::Repartitioner::kOctree,
                            balance::Repartitioner::kMorton}) {
    par::Runtime rt(nranks,
                    par::Topology(par::MachineProfile::tianhe2(), nranks));
    balance::RebalanceConfig cfg;
    cfg.repartitioner = repart;
    balance::RebalanceStats stats;
    const auto new_owner = balance::redecompose(
        rt, "rb", dual, centroids, neutrals, charged, owner, cfg, stats);
    std::vector<std::int64_t> load(nranks, 0);
    for (int c = 0; c < ncells; ++c) load[new_owner[c]] += neutrals[c];
    const auto mx = *std::max_element(load.begin(), load.end());
    EXPECT_LE(mx, 1800) << balance::repartitioner_name(repart);
  }
}

}  // namespace
}  // namespace dsmcpic::partition
