#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/kernel_exec.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/vec3.hpp"

namespace dsmcpic {
namespace {

TEST(Error, CheckThrowsWithContext) {
  EXPECT_NO_THROW(DSMCPIC_CHECK(1 + 1 == 2));
  try {
    DSMCPIC_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("support_test.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123, 7), b(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(123, 0), b(123, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(42);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng r(7);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[r.uniform_index(10)];
  for (int h : hits) EXPECT_GT(h, 800);  // ~1000 each
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(99);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, DeriveStreamSeedDiffers) {
  EXPECT_NE(derive_stream_seed(1, 0), derive_stream_seed(1, 1));
  EXPECT_NE(derive_stream_seed(1, 0), derive_stream_seed(2, 0));
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_EQ(cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).norm(), 5.0);
  EXPECT_NEAR(Vec3(3, 4, 0).normalized().norm(), 1.0, 1e-15);
}

TEST(Vec3, TripleProductIsSignedVolume) {
  EXPECT_DOUBLE_EQ(triple({1, 0, 0}, {0, 1, 0}, {0, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(triple({0, 1, 0}, {1, 0, 0}, {0, 0, 1}), -1.0);
}

TEST(Cli, ParsesTypesAndDefaults) {
  Cli cli("test");
  const auto* s = cli.add_string("name", "def", "a string");
  const auto* i = cli.add_int("count", 3, "an int");
  const auto* d = cli.add_double("ratio", 0.5, "a double");
  const auto* f = cli.add_flag("verbose", false, "a flag");
  const char* argv[] = {"prog", "--name", "abc", "--count=7", "--verbose",
                        "pos1"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(*s, "abc");
  EXPECT_EQ(*i, 7);
  EXPECT_DOUBLE_EQ(*d, 0.5);
  EXPECT_TRUE(*f);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, RejectsUnknownAndMalformed) {
  Cli cli("test");
  cli.add_int("n", 1, "");
  const char* bad1[] = {"prog", "--unknown", "3"};
  EXPECT_THROW(cli.parse(3, bad1), Error);
  Cli cli2("test");
  cli2.add_int("n", 1, "");
  const char* bad2[] = {"prog", "--n", "xyz"};
  EXPECT_THROW(cli2.parse(3, bad2), Error);
}

// Mistyped single-dash flags used to fall through as positionals and were
// silently ignored; they must error now. "-h" and negative numbers keep
// their meaning.
TEST(Cli, SingleDashTokensAreErrorsNotPositionals) {
  Cli cli("test");
  cli.add_int("steps", 1, "");
  const char* bad[] = {"prog", "-steps", "3"};
  EXPECT_THROW(cli.parse(3, bad), Error);

  Cli cli2("test");
  cli2.add_int("steps", 1, "");
  const char* neg[] = {"prog", "-3", "-.5", "-"};
  ASSERT_TRUE(cli2.parse(4, neg));
  ASSERT_EQ(cli2.positional().size(), 3u);
  EXPECT_EQ(cli2.positional()[0], "-3");
  EXPECT_EQ(cli2.positional()[1], "-.5");
  EXPECT_EQ(cli2.positional()[2], "-");

  Cli cli3("test");
  const char* help[] = {"prog", "-h"};
  EXPECT_FALSE(cli3.parse(2, help));
}

TEST(Table, AlignsColumns) {
  Table t("demo");
  t.header({"a", "bbbb"});
  t.row({"xxxx", "y"});
  const std::string s = t.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("xxxx"), std::string::npos);
  EXPECT_EQ(Table::num(1.2345, 2), "1.23");
  EXPECT_EQ(Table::pct(0.373), "+37.3%");
}

TEST(Stats, BasicMoments) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_NEAR(stddev(v), std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(relative_stddev(v), std::sqrt(2.5) / 3.0, 1e-12);
}

TEST(Stats, MeanRelativeErrorSkipsNearZeroReference) {
  const std::vector<double> a{1.1, 2.2, 5.0};
  const std::vector<double> b{1.0, 2.0, 0.0};
  EXPECT_NEAR(mean_relative_error(a, b), 0.1, 1e-12);  // third pair skipped
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  support::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  for (const int n : {0, 1, 3, 17, 256}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](int i) { hits[i].fetch_add(1); });
    for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossCalls) {
  support::ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round)
    pool.parallel_for(10, [&](int i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 50 * 45);
}

TEST(ThreadPool, PropagatesFirstException) {
  support::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   8,
                   [](int i) {
                     if (i == 5) throw Error("boom");
                   }),
               Error);
  // The pool must stay usable after an exception.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  support::ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

// Two-level dispatch rule 1: a nested parallel_for on the SAME pool runs
// inline instead of deadlocking on the batch mutex.
TEST(ThreadPool, NestedCallRunsInline) {
  support::ThreadPool pool(3);
  std::atomic<int> inner{0};
  pool.parallel_for(6, [&](int) {
    pool.parallel_for(5, [&](int) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 30);
}

// Two-level dispatch rule 2: concurrent external callers serialize their
// batches — here superstep-style bodies on one pool all fan out onto a
// second, shared kernel pool.
TEST(ThreadPool, ConcurrentExternalBatchesSerialize) {
  support::ThreadPool ranks(4);
  support::ThreadPool kernels(2);
  std::atomic<long> total{0};
  ranks.parallel_for(8, [&](int) {
    kernels.parallel_for(10, [&](int i) { total.fetch_add(i); });
  });
  EXPECT_EQ(total.load(), 8 * 45);
}

TEST(KernelExec, SerialExecutorRunsOneChunkInline) {
  support::KernelExec exec(1);
  EXPECT_TRUE(exec.serial());
  EXPECT_EQ(exec.num_chunks(1000), 1);
  int calls = 0;
  std::int64_t begin = -1, end = -1;
  exec.for_chunks(17, [&](int c, std::int64_t b, std::int64_t e) {
    ++calls;
    EXPECT_EQ(c, 0);
    begin = b;
    end = e;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(begin, 0);
  EXPECT_EQ(end, 17);
}

TEST(KernelExec, ChunksExactlyCoverTheRange) {
  support::KernelExec exec(4);
  EXPECT_FALSE(exec.serial());
  for (const std::int64_t n : {2LL, 7LL, 64LL, 1000LL}) {
    const int nc = exec.num_chunks(n);
    EXPECT_GE(nc, 2);
    EXPECT_LE(nc, 64);
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    exec.for_chunks(n, [&](int c, std::int64_t b, std::int64_t e) {
      EXPECT_EQ(b, support::KernelExec::chunk_begin(n, nc, c));
      EXPECT_EQ(e, support::KernelExec::chunk_begin(n, nc, c + 1));
      for (std::int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
  }
}

}  // namespace
}  // namespace dsmcpic
