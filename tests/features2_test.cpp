// Additional coverage: serialization helpers, the rz contour map, Boris
// E x B drift, Poisson RHS consistency, NIC serialization model, runtime
// edge cases.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "dsmc/sampling.hpp"
#include "dsmc/species.hpp"
#include "mesh/nozzle.hpp"
#include "mesh/refine.hpp"
#include "par/runtime.hpp"
#include "pic/boris.hpp"
#include "pic/poisson.hpp"
#include "support/serialize.hpp"

namespace dsmcpic {
namespace {

TEST(Serialize, PodAndVectorRoundTrip) {
  std::stringstream ss;
  io::write_pod<double>(ss, 3.25);
  io::write_pod<std::int32_t>(ss, -7);
  io::write_vec<std::int64_t>(ss, {1, 2, 3});
  io::write_vec<double>(ss, {});
  io::write_string(ss, "hello world");
  EXPECT_DOUBLE_EQ(io::read_pod<double>(ss), 3.25);
  EXPECT_EQ(io::read_pod<std::int32_t>(ss), -7);
  EXPECT_EQ(io::read_vec<std::int64_t>(ss), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_TRUE(io::read_vec<double>(ss).empty());
  EXPECT_EQ(io::read_string(ss), "hello world");
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream ss;
  io::write_vec<double>(ss, {1, 2, 3});
  std::stringstream cut(ss.str().substr(0, 12));  // chop mid-payload
  EXPECT_THROW(io::read_vec<double>(cut), Error);
}

TEST(RzMap, RecoverConstantAndGradientFields) {
  mesh::NozzleSpec spec;
  spec.radial_divisions = 5;
  spec.axial_divisions = 10;
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(spec);

  // Constant field -> every non-empty bin equals the constant.
  std::vector<double> constant(grid.num_tets(), 4.5);
  const auto cmap = dsmc::rz_map(grid, constant, spec.radius, spec.length, 4, 6);
  int nonempty = 0;
  for (const double v : cmap)
    if (v != 0.0) {
      EXPECT_NEAR(v, 4.5, 1e-12);
      ++nonempty;
    }
  EXPECT_GT(nonempty, 12);

  // Linear-in-z field -> bin means increase along z at fixed r.
  std::vector<double> linear(grid.num_tets());
  for (std::int32_t t = 0; t < grid.num_tets(); ++t)
    linear[t] = grid.centroid(t).z;
  const int nr = 3, nz = 5;
  const auto lmap = dsmc::rz_map(grid, linear, spec.radius, spec.length, nr, nz);
  for (int iz = 1; iz < nz; ++iz)
    EXPECT_GT(lmap[iz * nr + 0], lmap[(iz - 1) * nr + 0]);
}

TEST(Boris, ExBDriftMatchesTheory) {
  // Crossed fields: drift velocity = E x B / |B|^2.
  const Vec3 e{0, 1000, 0};
  const Vec3 b{0, 0, 0.2};
  const double qm = dsmc::constants::kElementaryCharge /
                    dsmc::constants::kHydrogenMass;
  const Vec3 expected_drift = cross(e, b) / b.norm2();  // (5000, 0, 0)
  // Average velocity over many gyro-periods ~ drift.
  Vec3 v{0, 0, 0};
  Vec3 sum{};
  const double dt = 1e-9;
  const int steps = 200000;
  for (int i = 0; i < steps; ++i) {
    v = pic::boris_push(v, e, b, qm, dt);
    sum += v;
  }
  const Vec3 mean = sum / steps;
  EXPECT_NEAR(mean.x, expected_drift.x, 0.05 * std::abs(expected_drift.x));
  EXPECT_NEAR(mean.z, 0.0, 1.0);
}

TEST(Poisson, RhsAtMatchesRhsVector) {
  mesh::NozzleSpec spec;
  spec.radial_divisions = 3;
  spec.axial_divisions = 5;
  const mesh::TetMesh coarse = mesh::make_cylinder_nozzle(spec);
  const mesh::RefinedMesh fine =
      mesh::red_refine(coarse, mesh::nozzle_classifier(spec));
  const pic::PoissonSystem sys(fine.mesh, {.phi_inlet = 9.0});
  std::vector<double> charge(sys.num_nodes());
  for (std::int32_t n = 0; n < sys.num_nodes(); ++n)
    charge[n] = 1e-15 * (n % 7);
  const auto b = sys.rhs(charge);
  for (std::int32_t n = 0; n < sys.num_nodes(); ++n)
    ASSERT_DOUBLE_EQ(b[n], sys.rhs_at(n, charge[n]));
}

TEST(NicModel, InterNodeMessagesPaySerialization) {
  par::MachineProfile prof = par::MachineProfile::tianhe2();
  prof.cores_per_node = 2;
  prof.nic_overhead = 1e-3;  // exaggerated for visibility
  par::Runtime rt(4, par::Topology(prof, 4));
  // One intra-node message (0 -> 1): no NIC cost.
  rt.superstep("intra", [](par::Comm& c) {
    if (c.rank() == 0) c.send(1, 0, {});
  });
  // One inter-node message (0 -> 2): both nodes pay ~1 ms.
  rt.superstep("inter", [](par::Comm& c) {
    if (c.rank() == 0) c.send(2, 0, {});
  });
  EXPECT_LT(rt.phase_stats("intra").busy_max, 1e-4);
  EXPECT_GT(rt.phase_stats("inter").busy_max, 1e-3);
}

TEST(NicModel, HintDrivesAllPairsCost) {
  par::MachineProfile prof = par::MachineProfile::tianhe2();
  prof.cores_per_node = 2;
  par::Runtime rt(8, par::Topology(prof, 8));
  rt.hint_round_transactions(8 * 7);
  rt.superstep("dc", [](par::Comm&) {});  // no real messages
  // NIC serialization still charged from the hint.
  EXPECT_GT(rt.phase_stats("dc").busy_max, 0.0);
}

TEST(Runtime, ExscanRejectsWrongSize) {
  par::Runtime rt(3, par::Topology(par::MachineProfile::tianhe2(), 3));
  const std::vector<std::int64_t> wrong{1, 2};
  EXPECT_THROW(rt.exscan_sum("x", wrong), Error);
}

TEST(Runtime, SaveLoadRoundTrip) {
  par::Runtime a(3, par::Topology(par::MachineProfile::tianhe2(), 3));
  a.superstep("w", [](par::Comm& c) {
    c.charge(par::WorkKind::kMove, 1e6 * (c.rank() + 1));
  });
  a.barrier("sync");
  std::stringstream ss;
  a.save(ss);
  par::Runtime b(3, par::Topology(par::MachineProfile::tianhe2(), 3));
  b.load(ss);
  EXPECT_DOUBLE_EQ(b.total_time(), a.total_time());
  EXPECT_DOUBLE_EQ(b.phase_stats("w").busy_max, a.phase_stats("w").busy_max);
  EXPECT_EQ(b.phases(), a.phases());
}

}  // namespace
}  // namespace dsmcpic
