#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/dist.hpp"
#include "linalg/krylov.hpp"
#include "par/machine.hpp"
#include "par/runtime.hpp"
#include "support/rng.hpp"

namespace dsmcpic::linalg {
namespace {

/// 1D Poisson (tridiagonal [-1, 2, -1]) — SPD, diagonally dominant.
CsrMatrix laplace_1d(std::int32_t n) {
  std::vector<Triplet> t;
  for (std::int32_t i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  return CsrMatrix::from_triplets(n, n, t);
}

TEST(Csr, FromTripletsMergesDuplicates) {
  const std::vector<Triplet> t{{0, 0, 1.0}, {0, 0, 2.0}, {1, 0, 5.0},
                               {0, 1, -1.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(2, 2, t);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
}

TEST(Csr, MatvecMatchesDense) {
  const CsrMatrix m = laplace_1d(5);
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y(5);
  m.matvec(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2 * 1 - 2);
  EXPECT_DOUBLE_EQ(y[2], -2 + 6 - 4);
  EXPECT_DOUBLE_EQ(y[4], -4 + 10);
  std::vector<double> y2(5, 1.0);
  m.matvec_add(x, y2);
  EXPECT_DOUBLE_EQ(y2[0], y[0] + 1.0);
}

TEST(Csr, DiagonalAndDominance) {
  const CsrMatrix m = laplace_1d(4);
  const auto d = m.diagonal();
  for (double v : d) EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_TRUE(m.diagonally_dominant());
  const std::vector<Triplet> t{{0, 0, 1.0}, {0, 1, 5.0}, {1, 0, 5.0},
                               {1, 1, 1.0}};
  EXPECT_FALSE(CsrMatrix::from_triplets(2, 2, t).diagonally_dominant());
}

TEST(Krylov, CgSolvesLaplace) {
  const std::int32_t n = 64;
  const CsrMatrix a = laplace_1d(n);
  std::vector<double> x_true(n), b(n), x(n, 0.0);
  Rng rng(3);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  a.matvec(x_true, b);
  const SolveResult r = cg(a, b, x, {.rel_tol = 1e-10, .max_iterations = 500});
  EXPECT_TRUE(r.converged);
  for (std::int32_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

TEST(Krylov, CgWarmStartConvergesInstantly) {
  const CsrMatrix a = laplace_1d(32);
  std::vector<double> b(32, 1.0), x(32, 0.0);
  SolveOptions opt{.rel_tol = 1e-10, .max_iterations = 500};
  const SolveResult first = cg(a, b, x, opt);
  ASSERT_TRUE(first.converged);
  std::vector<double> x2 = x;  // warm start from the solution
  const SolveResult second = cg(a, b, x2, opt);
  EXPECT_TRUE(second.converged);
  EXPECT_EQ(second.iterations, 0);
}

TEST(Krylov, BicgstabSolvesNonsymmetric) {
  // Upwind-ish convection-diffusion: nonsymmetric but well conditioned.
  const std::int32_t n = 50;
  std::vector<Triplet> t;
  for (std::int32_t i = 0; i < n; ++i) {
    t.push_back({i, i, 3.0});
    if (i > 0) t.push_back({i, i - 1, -2.0});
    if (i + 1 < n) t.push_back({i, i + 1, -0.5});
  }
  const CsrMatrix a = CsrMatrix::from_triplets(n, n, t);
  std::vector<double> x_true(n), b(n), x(n, 0.0);
  Rng rng(9);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  a.matvec(x_true, b);
  const SolveResult r =
      bicgstab(a, b, x, {.rel_tol = 1e-10, .max_iterations = 500});
  EXPECT_TRUE(r.converged);
  for (std::int32_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(Krylov, GmresSolvesNonsymmetric) {
  const std::int32_t n = 40;
  std::vector<Triplet> t;
  for (std::int32_t i = 0; i < n; ++i) {
    t.push_back({i, i, 4.0});
    if (i > 0) t.push_back({i, i - 1, -2.5});
    if (i + 1 < n) t.push_back({i, i + 1, -0.7});
  }
  const CsrMatrix a = CsrMatrix::from_triplets(n, n, t);
  std::vector<double> x_true(n), b(n), x(n, 0.0);
  Rng rng(21);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  a.matvec(x_true, b);
  const SolveResult r =
      gmres(a, b, x, {.rel_tol = 1e-10, .max_iterations = 400});
  EXPECT_TRUE(r.converged);
  for (std::int32_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(Krylov, SolversAgree) {
  const std::int32_t n = 48;
  const CsrMatrix a = laplace_1d(n);
  std::vector<double> b(n);
  Rng rng(4);
  for (auto& v : b) v = rng.uniform(-1, 1);
  std::vector<double> x1(n, 0.0), x2(n, 0.0), x3(n, 0.0);
  const SolveOptions opt{.rel_tol = 1e-11, .max_iterations = 1000};
  ASSERT_TRUE(cg(a, b, x1, opt).converged);
  ASSERT_TRUE(bicgstab(a, b, x2, opt).converged);
  ASSERT_TRUE(gmres(a, b, x3, opt).converged);
  for (std::int32_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x1[i], x2[i], 1e-7);
    EXPECT_NEAR(x1[i], x3[i], 1e-7);
  }
}

// ---- distributed ------------------------------------------------------------

/// Round-robin row ownership (worst-case halo, exercises the plans).
std::vector<std::int32_t> round_robin_owner(std::int32_t n, int nranks) {
  std::vector<std::int32_t> o(n);
  for (std::int32_t i = 0; i < n; ++i) o[i] = i % nranks;
  return o;
}

TEST(Dist, LayoutPlansAreConsistent) {
  const CsrMatrix a = laplace_1d(20);
  const auto owner = round_robin_owner(20, 3);
  const DistLayout l = DistLayout::build(3, owner, a);
  // Every row owned exactly once.
  std::size_t total_owned = 0;
  for (int r = 0; r < 3; ++r) total_owned += l.owned[r].size();
  EXPECT_EQ(total_owned, 20u);
  // Send plans mirror recv plans.
  for (int r = 0; r < 3; ++r) {
    for (const auto& rp : l.recv_plan[r]) {
      const auto& peer_sends = l.send_plan[rp.peer];
      bool found = false;
      for (const auto& sp : peer_sends) {
        if (sp.peer != r) continue;
        found = true;
        ASSERT_EQ(sp.idx.size(), rp.idx.size());
        // Same global ids in the same order on both sides.
        for (std::size_t i = 0; i < sp.idx.size(); ++i) {
          EXPECT_EQ(l.owned[rp.peer][sp.idx[i]], l.halo[r][rp.idx[i]]);
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(Dist, ScatterGatherRoundTrip) {
  const CsrMatrix a = laplace_1d(17);
  const auto owner = round_robin_owner(17, 4);
  const DistLayout l = DistLayout::build(4, owner, a);
  std::vector<double> v(17);
  for (int i = 0; i < 17; ++i) v[i] = i * 1.5;
  const DistVector d = scatter_vector(l, v);
  EXPECT_EQ(gather_vector(l, d), v);
}

TEST(Dist, HaloExchangeFillsGhosts) {
  const std::int32_t n = 12;
  const CsrMatrix a = laplace_1d(n);
  const auto owner = round_robin_owner(n, 3);
  DistLayout l = DistLayout::build(3, owner, a);
  par::Runtime rt(3, par::Topology(par::MachineProfile::tianhe2(), 3));
  std::vector<std::vector<double>> local(3);
  for (int r = 0; r < 3; ++r) {
    local[r].assign(l.local_size(r), -1.0);
    for (std::size_t i = 0; i < l.owned[r].size(); ++i)
      local[r][i] = static_cast<double>(l.owned[r][i]);  // value = global id
  }
  halo_exchange(rt, "halo", l, local);
  for (int r = 0; r < 3; ++r)
    for (std::size_t h = 0; h < l.halo[r].size(); ++h)
      EXPECT_DOUBLE_EQ(local[r][l.owned[r].size() + h],
                       static_cast<double>(l.halo[r][h]));
}

/// Distributed CG must match the serial solution for any rank count.
class DistCgTest : public ::testing::TestWithParam<int> {};

TEST_P(DistCgTest, MatchesSerialCg) {
  const int nranks = GetParam();
  const std::int32_t n = 60;
  const CsrMatrix a = laplace_1d(n);
  std::vector<double> b(n);
  Rng rng(13);
  for (auto& v : b) v = rng.uniform(-1, 1);

  std::vector<double> x_serial(n, 0.0);
  const SolveOptions opt{.rel_tol = 1e-10, .max_iterations = 500};
  ASSERT_TRUE(cg(a, b, x_serial, opt).converged);

  const auto owner = round_robin_owner(n, nranks);
  DistMatrix dm = DistMatrix::build(a, DistLayout::build(nranks, owner, a));
  par::Runtime rt(nranks,
                  par::Topology(par::MachineProfile::tianhe2(), nranks));
  DistVector db = scatter_vector(dm.layout, b);
  DistVector dx(nranks);
  const SolveResult r = dist_cg(rt, "solve", dm, db, dx, opt);
  EXPECT_TRUE(r.converged);
  const auto x = gather_vector(dm.layout, dx);
  for (std::int32_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_serial[i], 1e-7);
  // The solve must have charged communication/compute time.
  EXPECT_GT(rt.phase_stats("solve").busy_max, 0.0);
  if (nranks > 1) EXPECT_GT(rt.phase_stats("solve").transactions, 0u);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistCgTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

class DistBicgstabTest : public ::testing::TestWithParam<int> {};

TEST_P(DistBicgstabTest, SolvesNonsymmetricSystem) {
  const int nranks = GetParam();
  const std::int32_t n = 50;
  std::vector<Triplet> t;
  for (std::int32_t i = 0; i < n; ++i) {
    t.push_back({i, i, 3.0});
    if (i > 0) t.push_back({i, i - 1, -2.0});
    if (i + 1 < n) t.push_back({i, i + 1, -0.5});
  }
  const CsrMatrix a = CsrMatrix::from_triplets(n, n, t);
  std::vector<double> x_true(n), b(n);
  Rng rng(31);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  a.matvec(x_true, b);

  const auto owner = round_robin_owner(n, nranks);
  DistMatrix dm = DistMatrix::build(a, DistLayout::build(nranks, owner, a));
  par::Runtime rt(nranks,
                  par::Topology(par::MachineProfile::tianhe2(), nranks));
  DistVector db = scatter_vector(dm.layout, b);
  DistVector dx(nranks);
  const SolveResult r = dist_bicgstab(
      rt, "solve", dm, db, dx, {.rel_tol = 1e-10, .max_iterations = 500});
  EXPECT_TRUE(r.converged);
  const auto x = gather_vector(dm.layout, dx);
  for (std::int32_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistBicgstabTest,
                         ::testing::Values(1, 2, 4, 7));

TEST(Dist, PreconditionersAgreeOnSolution) {
  const std::int32_t n = 40;
  const CsrMatrix a = laplace_1d(n);
  std::vector<double> b(n);
  Rng rng(23);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto owner = round_robin_owner(n, 3);
  DistMatrix dm = DistMatrix::build(a, DistLayout::build(3, owner, a));

  std::vector<std::vector<double>> solutions;
  std::vector<int> iterations;
  for (const Precon p :
       {Precon::kNone, Precon::kJacobi, Precon::kBlockSsor}) {
    par::Runtime rt(3, par::Topology(par::MachineProfile::tianhe2(), 3));
    SolveOptions opt{.rel_tol = 1e-11, .max_iterations = 500};
    opt.dist_precon = p;
    DistVector db = scatter_vector(dm.layout, b);
    DistVector dx(3);
    const SolveResult r = dist_cg(rt, "s", dm, db, dx, opt);
    ASSERT_TRUE(r.converged);
    solutions.push_back(gather_vector(dm.layout, dx));
    iterations.push_back(r.iterations);
  }
  for (std::int32_t i = 0; i < n; ++i) {
    EXPECT_NEAR(solutions[0][i], solutions[1][i], 1e-7);
    EXPECT_NEAR(solutions[0][i], solutions[2][i], 1e-7);
  }
  // Block SSOR must not be weaker than plain CG.
  EXPECT_LE(iterations[2], iterations[0]);
}

TEST(Dist, SsorBeatsJacobiOnOneRank) {
  // On a single rank the block covers the whole matrix: SSOR-CG should
  // converge in clearly fewer iterations than Jacobi-CG.
  const std::int32_t n = 200;
  const CsrMatrix a = laplace_1d(n);
  std::vector<double> b(n, 1.0);
  const std::vector<std::int32_t> owner(n, 0);
  DistMatrix dm = DistMatrix::build(a, DistLayout::build(1, owner, a));
  auto solve = [&](Precon p) {
    par::Runtime rt(1, par::Topology(par::MachineProfile::tianhe2(), 1));
    SolveOptions opt{.rel_tol = 1e-9, .max_iterations = 2000};
    opt.dist_precon = p;
    DistVector db = scatter_vector(dm.layout, b);
    DistVector dx(1);
    const SolveResult r = dist_cg(rt, "s", dm, db, dx, opt);
    EXPECT_TRUE(r.converged);
    return r.iterations;
  };
  // (On 1-D Laplace the gain is modest; on the 3-D FEM system the solver
  // uses in production it is ~2x, see the solver integration tests.)
  EXPECT_LT(solve(Precon::kBlockSsor), solve(Precon::kJacobi));
}

}  // namespace
}  // namespace dsmcpic::linalg
