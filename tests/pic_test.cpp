#include <gtest/gtest.h>

#include <cmath>

#include "dsmc/species.hpp"
#include "linalg/krylov.hpp"
#include "mesh/nozzle.hpp"
#include "mesh/refine.hpp"
#include "par/runtime.hpp"
#include "pic/boris.hpp"
#include "pic/deposit.hpp"
#include "pic/field.hpp"
#include "pic/fine_grid.hpp"
#include "pic/node_exchange.hpp"
#include "pic/poisson.hpp"
#include "support/kernel_exec.hpp"
#include "support/rng.hpp"

namespace dsmcpic::pic {
namespace {

struct Meshes {
  mesh::TetMesh coarse;
  mesh::RefinedMesh refined;
  mesh::NozzleSpec spec;
};

Meshes make_meshes(int n = 3, int nz = 6) {
  Meshes m;
  m.spec.radius = 0.01;
  m.spec.length = 0.05;
  m.spec.radial_divisions = n;
  m.spec.axial_divisions = nz;
  m.coarse = mesh::make_cylinder_nozzle(m.spec);
  m.refined = mesh::red_refine(m.coarse, mesh::nozzle_classifier(m.spec));
  return m;
}

TEST(FineGrid, LocateFindsNestedChild) {
  const Meshes m = make_meshes();
  const FineGrid fg(m.coarse, m.refined);
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const auto t = static_cast<std::int32_t>(
        rng.uniform_index(static_cast<std::uint64_t>(m.coarse.num_tets())));
    const Vec3 p = m.coarse.centroid(t) * 0.3 +
                   m.coarse.node(m.coarse.tet(t)[0]) * 0.7;
    const std::int32_t fc = fg.locate(t, p);
    ASSERT_GE(fc, 0);
    EXPECT_EQ(fg.parent_of(fc), t);
    EXPECT_TRUE(m.refined.mesh.contains(fc, p, 1e-9));
  }
}

TEST(FineGrid, BasisGradientsReproduceLinearFunction) {
  const Meshes m = make_meshes();
  const FineGrid fg(m.coarse, m.refined);
  // f(x) = 2x - 3y + 5z: sum_i f(node_i) grad(lambda_i) must equal grad f.
  const Vec3 grad_f{2, -3, 5};
  for (std::int32_t fc = 0; fc < 40; ++fc) {
    const auto g = fg.basis_gradients(fc);
    Vec3 acc;
    Vec3 sum_g;
    for (int k = 0; k < 4; ++k) {
      const Vec3& p = m.refined.mesh.node(m.refined.mesh.tet(fc)[k]);
      acc += g[k] * (2 * p.x - 3 * p.y + 5 * p.z);
      sum_g += g[k];
    }
    EXPECT_NEAR((acc - grad_f).norm(), 0.0, 1e-6);
    EXPECT_NEAR(sum_g.norm(), 0.0, 1e-7);  // partition of unity
  }
}

TEST(Poisson, MatrixIsSymmetricSpd) {
  const Meshes m = make_meshes();
  const PoissonSystem sys(m.refined.mesh, {});
  const linalg::CsrMatrix& k = sys.matrix();
  // Positive diagonal everywhere (Dirichlet rows are identity).
  for (double d : k.diagonal()) EXPECT_GT(d, 0.0);
  // Spot-check symmetry.
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto r = static_cast<std::int32_t>(
        rng.uniform_index(static_cast<std::uint64_t>(k.rows())));
    const auto c = static_cast<std::int32_t>(
        rng.uniform_index(static_cast<std::uint64_t>(k.cols())));
    EXPECT_NEAR(k.at(r, c), k.at(c, r), 1e-12 * (std::abs(k.at(r, c)) + 1));
  }
  // SPD spot-check: x^T K x > 0 for random nonzero x.
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(k.rows()), y(k.rows());
    for (auto& v : x) v = rng.uniform(-1, 1);
    k.matvec(x, y);
    double xkx = 0.0;
    for (std::int32_t i = 0; i < k.rows(); ++i) xkx += x[i] * y[i];
    EXPECT_GT(xkx, 0.0);
  }
}

TEST(Poisson, LaplaceSolutionObeysMaxPrinciple) {
  const Meshes m = make_meshes();
  PoissonBCs bcs;
  bcs.phi_inlet = 100.0;
  bcs.phi_outlet = 0.0;
  const PoissonSystem sys(m.refined.mesh, bcs);
  const std::vector<double> charge(sys.num_nodes(), 0.0);
  const std::vector<double> b = sys.rhs(charge);
  std::vector<double> phi(sys.num_nodes(), 0.0);
  const auto res = linalg::cg(sys.matrix(), b, phi,
                              {.rel_tol = 1e-10, .max_iterations = 2000});
  ASSERT_TRUE(res.converged);
  for (std::int32_t n = 0; n < sys.num_nodes(); ++n) {
    EXPECT_GE(phi[n], -1e-6);
    EXPECT_LE(phi[n], 100.0 + 1e-6);
    if (sys.is_dirichlet()[n])
      EXPECT_NEAR(phi[n], sys.dirichlet_value()[n], 1e-6);
  }
  // The potential decays along the axis away from the inlet.
  const FineGrid fg(m.coarse, m.refined);
  auto phi_at = [&](double z) {
    const std::int32_t cc = m.coarse.locate({0, 0, z}, 0);
    const std::int32_t fc = fg.locate(cc, {0, 0, z});
    const auto w = m.refined.mesh.barycentric(fc, {0, 0, z});
    double v = 0.0;
    for (int k = 0; k < 4; ++k) v += w[k] * phi[m.refined.mesh.tet(fc)[k]];
    return v;
  };
  EXPECT_GT(phi_at(0.005), phi_at(0.025));
  EXPECT_GT(phi_at(0.025), phi_at(0.045));
}

TEST(Poisson, PointChargeRaisesLocalPotential) {
  const Meshes m = make_meshes();
  PoissonBCs bcs;
  bcs.phi_inlet = 0.0;
  bcs.phi_outlet = 0.0;
  const PoissonSystem sys(m.refined.mesh, bcs);
  std::vector<double> charge(sys.num_nodes(), 0.0);
  // Positive charge at an interior node.
  std::int32_t interior = -1;
  for (std::int32_t n = 0; n < sys.num_nodes(); ++n)
    if (!sys.is_dirichlet()[n] && sys.lumped_volume()[n] > 0) {
      interior = n;
      break;
    }
  ASSERT_GE(interior, 0);
  charge[interior] = 1e-12;  // coulombs
  const std::vector<double> b = sys.rhs(charge);
  std::vector<double> phi(sys.num_nodes(), 0.0);
  ASSERT_TRUE(linalg::cg(sys.matrix(), b, phi,
                         {.rel_tol = 1e-10, .max_iterations = 2000})
                  .converged);
  EXPECT_GT(phi[interior], 0.0);
  double mx = 0.0;
  std::int32_t argmax = -1;
  for (std::int32_t n = 0; n < sys.num_nodes(); ++n)
    if (phi[n] > mx) {
      mx = phi[n];
      argmax = n;
    }
  EXPECT_EQ(argmax, interior);  // peak at the charge
}

TEST(Deposit, TotalChargeConserved) {
  const Meshes m = make_meshes();
  const FineGrid fg(m.coarse, m.refined);
  dsmc::SpeciesTable table = dsmc::SpeciesTable::hydrogen(1e12, 500.0);
  dsmc::ParticleStore store;
  Rng rng(9);
  int placed = 0;
  for (int i = 0; i < 100; ++i) {
    const double r = 0.7 * m.spec.radius * std::sqrt(rng.uniform());
    const double th = 2 * M_PI * rng.uniform();
    const Vec3 p{r * std::cos(th), r * std::sin(th),
                 m.spec.length * (0.1 + 0.8 * rng.uniform())};
    const std::int32_t cc = m.coarse.locate(p, 0);
    if (cc < 0) continue;
    dsmc::ParticleRecord rec;
    rec.position = p;
    rec.cell = cc;
    rec.species = (i % 2) ? dsmc::kSpeciesHPlus : dsmc::kSpeciesH;
    store.add(rec);
    if (i % 2) ++placed;
  }
  ASSERT_GT(placed, 20);
  // Single-rank node set = all nodes.
  std::vector<std::int32_t> all_nodes(m.refined.mesh.num_nodes());
  for (std::int32_t n = 0; n < m.refined.mesh.num_nodes(); ++n)
    all_nodes[n] = n;
  std::vector<double> node_charge(all_nodes.size(), 0.0);
  const DepositStats st =
      deposit_charge(store, fg, table, all_nodes, {}, node_charge);
  EXPECT_EQ(st.deposited, placed);
  EXPECT_EQ(st.lost, 0);
  double total = 0.0;
  for (double q : node_charge) total += q;
  const double expected =
      placed * dsmc::constants::kElementaryCharge * 500.0;
  EXPECT_NEAR(total, expected, 1e-9 * expected);
}

// The blocked parallel deposit (DESIGN.md §2g): above the candidate-count
// cutoff the kernel scatters into fixed per-block buffers and reduces them
// in ascending block order — the node charges must be bit-identical to the
// serial single-pass scatter, for any lane count. This is the only test
// that drives the blocked path with real kernel lanes (the solver-level
// determinism suite stays below the cutoff), so it is also the TSan probe
// for the deposit's phase-A/phase-B threading.
TEST(Deposit, BlockedParallelMatchesSerialBitwise) {
  const Meshes m = make_meshes();
  const FineGrid fg(m.coarse, m.refined);
  dsmc::SpeciesTable table = dsmc::SpeciesTable::hydrogen(1e12, 500.0);
  dsmc::ParticleStore store;
  Rng rng(31);
  // Well above kDepositBlockCutoff (4096) so the blocked path engages.
  while (store.size() < 6000) {
    const double r = 0.7 * m.spec.radius * std::sqrt(rng.uniform());
    const double th = 2 * M_PI * rng.uniform();
    const Vec3 p{r * std::cos(th), r * std::sin(th),
                 m.spec.length * (0.1 + 0.8 * rng.uniform())};
    const std::int32_t cc = m.coarse.locate(p, 0);
    if (cc < 0) continue;
    dsmc::ParticleRecord rec;
    rec.position = p;
    rec.cell = cc;
    rec.id = static_cast<std::int64_t>(store.size());
    rec.species = (store.size() % 4) ? dsmc::kSpeciesHPlus : dsmc::kSpeciesH;
    store.add(rec);
  }
  std::vector<std::int32_t> all_nodes(m.refined.mesh.num_nodes());
  for (std::int32_t n = 0; n < m.refined.mesh.num_nodes(); ++n)
    all_nodes[n] = n;

  std::vector<double> serial(all_nodes.size(), 0.0);
  const DepositStats st0 =
      deposit_charge(store, fg, table, all_nodes, {}, serial);
  EXPECT_GT(st0.deposited, 4096);

  for (const int lanes : {2, 4}) {
    const support::KernelExec exec(lanes);
    DepositScratch scratch;
    std::vector<double> parallel(all_nodes.size(), 0.0);
    const DepositStats st = deposit_charge(store, fg, table, all_nodes, {},
                                           parallel, &exec, &scratch);
    EXPECT_EQ(st.deposited, st0.deposited);
    EXPECT_EQ(st.lost, st0.lost);
    EXPECT_EQ(parallel, serial) << "lanes=" << lanes;
  }
}

TEST(Field, LinearPotentialGivesConstantField) {
  const Meshes m = make_meshes();
  const FineGrid fg(m.coarse, m.refined);
  // phi = 7z  ->  E = (0, 0, -7).
  std::vector<double> phi(m.refined.mesh.num_nodes());
  for (std::int32_t n = 0; n < m.refined.mesh.num_nodes(); ++n)
    phi[n] = 7.0 * m.refined.mesh.node(n).z;
  for (std::int32_t fc = 0; fc < 50; ++fc) {
    const Vec3 e = efield_in_cell_global(fg, fc, phi);
    EXPECT_NEAR(e.x, 0.0, 1e-8);
    EXPECT_NEAR(e.y, 0.0, 1e-8);
    EXPECT_NEAR(e.z, -7.0, 1e-6);
  }
}

TEST(Boris, ElectrostaticPushMatchesAnalytic) {
  const Vec3 v0{100, 0, 0};
  const Vec3 e{0, 0, 1000};
  const double qm = dsmc::constants::kElementaryCharge /
                    dsmc::constants::kHydrogenMass;
  const double dt = 1e-8;
  const Vec3 v1 = boris_push(v0, e, {}, qm, dt);
  EXPECT_NEAR(v1.x, 100.0, 1e-9);
  EXPECT_NEAR(v1.z, qm * 1000 * dt, 1e-9 * qm * 1000 * dt);
}

TEST(Boris, MagneticRotationPreservesSpeed) {
  const Vec3 v0{1e4, 0, 0};
  const Vec3 b{0, 0, 0.1};
  const double qm = dsmc::constants::kElementaryCharge /
                    dsmc::constants::kHydrogenMass;
  Vec3 v = v0;
  for (int i = 0; i < 100; ++i) v = boris_push(v, {}, b, qm, 1e-9);
  EXPECT_NEAR(v.norm(), v0.norm(), 1e-9 * v0.norm());
  // It must actually rotate.
  EXPECT_GT(std::abs(v.y), 1.0);
}

TEST(NodeExchange, OwnersAndSetsCoverEverything) {
  const Meshes m = make_meshes();
  const FineGrid fg(m.coarse, m.refined);
  const int nranks = 3;
  std::vector<std::int32_t> owner(m.coarse.num_tets());
  for (std::int32_t c = 0; c < m.coarse.num_tets(); ++c)
    owner[c] = c % nranks;
  const NodeExchange nx(fg, owner, nranks);
  // Every node has a valid owner and appears in the owner's set.
  for (std::int32_t n = 0; n < m.refined.mesh.num_nodes(); ++n) {
    const int o = nx.node_owner()[n];
    ASSERT_GE(o, 0);
    ASSERT_LT(o, nranks);
    EXPECT_GE(nx.local_index(o, n), 0);
  }
}

TEST(NodeExchange, ReduceThenBroadcastSumsShares) {
  const Meshes m = make_meshes();
  const FineGrid fg(m.coarse, m.refined);
  const int nranks = 4;
  std::vector<std::int32_t> owner(m.coarse.num_tets());
  for (std::int32_t c = 0; c < m.coarse.num_tets(); ++c)
    owner[c] = c % nranks;
  const NodeExchange nx(fg, owner, nranks);
  par::Runtime rt(nranks,
                  par::Topology(par::MachineProfile::tianhe2(), nranks));

  // Every rank contributes 1.0 to each of its nodes; after reduce+broadcast
  // each node's value must equal the number of ranks touching it.
  auto values = nx.make_values();
  for (int r = 0; r < nranks; ++r)
    std::fill(values[r].begin(), values[r].end(), 1.0);
  nx.reduce_to_owners(rt, "reduce", values);
  nx.broadcast_from_owners(rt, "bcast", values);

  std::vector<int> touching(m.refined.mesh.num_nodes(), 0);
  for (int r = 0; r < nranks; ++r)
    for (const std::int32_t n : nx.rank_nodes(r)) ++touching[n];
  for (int r = 0; r < nranks; ++r) {
    const auto& nodes = nx.rank_nodes(r);
    for (std::size_t i = 0; i < nodes.size(); ++i)
      EXPECT_DOUBLE_EQ(values[r][i], static_cast<double>(touching[nodes[i]]))
          << "rank " << r << " node " << nodes[i];
  }
}

}  // namespace
}  // namespace dsmcpic::pic
