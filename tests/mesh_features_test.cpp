// Tests for the mesh quality metrics and mesh I/O (native + VTK).

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "mesh/io.hpp"
#include "mesh/nozzle.hpp"
#include "mesh/quality.hpp"
#include "mesh/refine.hpp"
#include "support/error.hpp"

namespace dsmcpic::mesh {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

NozzleSpec small_spec() {
  NozzleSpec s;
  s.radial_divisions = 4;
  s.axial_divisions = 8;
  return s;
}

TEST(Quality, RegularTetIsPerfect) {
  // Regular tetrahedron: radius ratio 1, dihedral ~70.53 deg, edge ratio 1.
  const double s = 1.0 / std::sqrt(2.0);
  TetMesh m({{1, 0, -s}, {-1, 0, -s}, {0, 1, s}, {0, -1, s}},
            {{{0, 1, 2, 3}}});
  const TetQuality q = tet_quality(m, 0);
  EXPECT_NEAR(q.radius_ratio, 1.0, 1e-9);
  EXPECT_NEAR(q.min_dihedral_deg, 70.5288, 1e-3);
  EXPECT_NEAR(q.max_dihedral_deg, 70.5288, 1e-3);
  EXPECT_NEAR(q.edge_ratio, 1.0, 1e-12);
}

TEST(Quality, SliverIsDetected) {
  // Nearly flat tet: tiny radius ratio.
  TetMesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0.5, 0.5, 1e-3}},
            {{{0, 1, 2, 3}}});
  const TetQuality q = tet_quality(m, 0);
  EXPECT_LT(q.radius_ratio, 0.05);
  EXPECT_LT(q.min_dihedral_deg, 10.0);
}

TEST(Quality, NozzleMeshIsUsable) {
  const TetMesh m = make_cylinder_nozzle(small_spec());
  const QualityReport r = assess_quality(m);
  EXPECT_EQ(r.num_tets, m.num_tets());
  // Kuhn tets squeezed by the elliptical disc mapping are not beautiful,
  // but must stay usable (no true slivers below 0.05 radius ratio).
  EXPECT_GT(r.min_radius_ratio, 0.08);
  EXPECT_GT(r.min_dihedral_deg, 8.0);
  EXPECT_LT(r.max_edge_ratio, 6.0);
  EXPECT_EQ(r.slivers, 0);
  EXPECT_GT(r.min_volume, 0.0);
  // Refinement: corner children are similar to the parent; the octahedron
  // split can halve the worst radius ratio but no further.
  const RefinedMesh fine = red_refine(m);
  const QualityReport rf = assess_quality(fine.mesh);
  EXPECT_GT(rf.min_radius_ratio, 0.4 * r.min_radius_ratio);
  EXPECT_LT(rf.slivers, fine.mesh.num_tets() / 100);  // < 1% borderline
}

TEST(MeshIo, NativeRoundTripPreservesEverything) {
  const NozzleSpec spec = small_spec();
  const TetMesh m = make_cylinder_nozzle(spec);
  const std::string path = temp_path("dsmcpic_mesh.bin");
  write_native(m, path);
  const TetMesh r = read_native(path);
  ASSERT_EQ(r.num_nodes(), m.num_nodes());
  ASSERT_EQ(r.num_tets(), m.num_tets());
  for (std::int32_t n = 0; n < m.num_nodes(); ++n)
    ASSERT_EQ(r.node(n), m.node(n));
  for (std::int32_t t = 0; t < m.num_tets(); ++t) {
    ASSERT_EQ(r.tet(t), m.tet(t));
    for (int f = 0; f < 4; ++f) {
      ASSERT_EQ(r.neighbor(t, f), m.neighbor(t, f));
      ASSERT_EQ(r.face_kind(t, f), m.face_kind(t, f));
    }
  }
  for (const auto k :
       {BoundaryKind::kInlet, BoundaryKind::kOutlet, BoundaryKind::kWall})
    EXPECT_EQ(r.boundary_faces(k).size(), m.boundary_faces(k).size());
  std::filesystem::remove(path);
}

TEST(MeshIo, VtkRoundTripPreservesGeometry) {
  const TetMesh m = make_cylinder_nozzle(small_spec());
  const std::string path = temp_path("dsmcpic_mesh.vtk");
  m.write_vtk(path);
  const TetMesh r = read_vtk(path);
  ASSERT_EQ(r.num_nodes(), m.num_nodes());
  ASSERT_EQ(r.num_tets(), m.num_tets());
  EXPECT_NEAR(r.total_volume(), m.total_volume(), 1e-9 * m.total_volume());
  std::filesystem::remove(path);
}

TEST(MeshIo, RejectsGarbage) {
  const std::string path = temp_path("dsmcpic_not_a_mesh.bin");
  {
    std::ofstream os(path);
    os << "garbage";
  }
  EXPECT_THROW(read_native(path), dsmcpic::Error);
  EXPECT_THROW(read_vtk(path), dsmcpic::Error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dsmcpic::mesh
