// Golden regression digests: an FNV-1a 64-bit hash over every step
// diagnostic and the final virtual clocks, compared against checked-in
// values for a few representative configs. Any unintended change to the
// physics, the cost model, the RNG streams, or the superstep routing
// order shows up here as a digest mismatch — the failure message prints
// the new digest so an INTENDED change can be re-goldened deliberately.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "core/datasets.hpp"
#include "core/solver.hpp"
#include "obs/health_auditor.hpp"
#include "obs/host_profiler.hpp"
#include "obs/telemetry.hpp"
#include "trace/recorder.hpp"

namespace dsmcpic::core {
namespace {

class Fnv1a {
 public:
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 1099511628211ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

SolverConfig tiny_config() {
  Dataset d = make_dataset(1, /*particle_scale=*/0.25);
  d.config.nozzle.radial_divisions = 3;
  d.config.nozzle.axial_divisions = 6;
  return d.config;
}

std::uint64_t run_digest(exchange::Strategy strategy, bool balance_enabled,
                         int kernel_threads = 1, bool traced = false,
                         bool audited = false, int sort_every = 0,
                         balance::CostModelKind cost_model =
                             balance::CostModelKind::kStatic,
                         balance::PolicyKind policy =
                             balance::PolicyKind::kThreshold,
                         bool telemetry = false) {
  ParallelConfig par;
  par.nranks = 6;
  par.strategy = strategy;
  par.balance.enabled = balance_enabled;
  par.balance.period = 3;
  par.balance.cost_model.kind = cost_model;
  par.balance.policy.kind = policy;
  par.kernel_threads = kernel_threads;
  obs::HealthAuditor auditor({obs::AuditSeverity::kAbort});
  obs::HostProfiler prof;
  SolverConfig cfg = tiny_config();
  cfg.sort_every = sort_every;
  CoupledSolver solver(cfg, par);
  trace::TraceRecorder rec(par.nranks);
  if (traced) solver.runtime().set_tracer(&rec);
  if (audited) {
    solver.set_auditor(&auditor);
    solver.set_host_profiler(&prof);
  }
  // Telemetry samples every step and keeps a flight recorder, but writes
  // nothing (empty paths) — the digest must not notice it exists.
  obs::TelemetryConfig tc;
  tc.metrics_interval = 1;
  obs::TelemetryHub hub(tc);
  if (telemetry) {
    hub.set_host_profiler(&prof);
    solver.set_telemetry(&hub);
  }
  solver.run(8);
  if (audited) {
    EXPECT_EQ(auditor.report().violations(), 0);
  }

  Fnv1a d;
  for (const StepDiagnostics& s : solver.history()) {
    d.i64(s.dsmc_step);
    for (const std::int64_t p : s.particles_per_rank) d.i64(p);
    d.i64(s.total_h);
    d.i64(s.total_hplus);
    d.i64(s.injected);
    d.i64(s.migrated_dsmc);
    d.i64(s.migrated_pic);
    d.i64(s.collisions);
    d.i64(s.ionizations);
    d.i64(s.recombinations);
    d.i64(s.poisson_iterations);
    d.f64(s.lii);
    d.i64(s.rebalanced ? 1 : 0);
  }
  for (int r = 0; r < solver.runtime().size(); ++r)
    d.f64(solver.runtime().clock(r));
  d.f64(solver.runtime().total_time());
  return d.value();
}

// Golden values harvested from the seed behavior of this repo. If a change
// is SUPPOSED to alter results (new physics, cost-model retune), rerun the
// test, verify the new numbers are intended, and update these constants in
// the same commit that explains why.
constexpr std::uint64_t kGoldenDcBalanced = 0xef94e5e11bc00cc4ULL;
constexpr std::uint64_t kGoldenDcUnbalanced = 0xf2d8975ddd0bec20ULL;
constexpr std::uint64_t kGoldenCcUnbalanced = 0x590b94314ef0aa30ULL;

TEST(Golden, DistributedWithRebalance) {
  const std::uint64_t got =
      run_digest(exchange::Strategy::kDistributed, /*balance=*/true);
  EXPECT_EQ(got, kGoldenDcBalanced)
      << "new digest: 0x" << std::hex << got << "ULL";
}

TEST(Golden, DistributedNoRebalance) {
  const std::uint64_t got =
      run_digest(exchange::Strategy::kDistributed, /*balance=*/false);
  EXPECT_EQ(got, kGoldenDcUnbalanced)
      << "new digest: 0x" << std::hex << got << "ULL";
}

TEST(Golden, CentralizedNoRebalance) {
  const std::uint64_t got =
      run_digest(exchange::Strategy::kCentralized, /*balance=*/false);
  EXPECT_EQ(got, kGoldenCcUnbalanced)
      << "new digest: 0x" << std::hex << got << "ULL";
}

// Intra-rank kernel parallelism must hit the SAME golden value as the
// serial-kernel run — the knob is required to be invisible in every digest
// input (diagnostics and virtual clocks alike).
TEST(Golden, KernelThreadsFourMatchesSerialGolden) {
  const std::uint64_t got = run_digest(exchange::Strategy::kDistributed,
                                       /*balance=*/true, /*kernel_threads=*/4);
  EXPECT_EQ(got, kGoldenDcBalanced)
      << "new digest: 0x" << std::hex << got << "ULL";
}

// Tracing (DESIGN.md §2e) claims pure observation: a trace-enabled run
// must hit the SAME golden value as the untraced run.
TEST(Golden, TraceEnabledMatchesSerialGolden) {
  const std::uint64_t got =
      run_digest(exchange::Strategy::kDistributed, /*balance=*/true,
                 /*kernel_threads=*/1, /*traced=*/true);
  EXPECT_EQ(got, kGoldenDcBalanced)
      << "new digest: 0x" << std::hex << got << "ULL";
}

// Health audits + host profiling (DESIGN.md §2f) make the same claim:
// attaching both, at abort severity, must neither flag a violation nor
// move the digest off the golden value.
TEST(Golden, AuditsEnabledMatchSerialGolden) {
  const std::uint64_t got =
      run_digest(exchange::Strategy::kDistributed, /*balance=*/true,
                 /*kernel_threads=*/1, /*traced=*/false, /*audited=*/true);
  EXPECT_EQ(got, kGoldenDcBalanced)
      << "new digest: 0x" << std::hex << got << "ULL";
}

// The telemetry hub (docs/observability.md §6) makes the same
// zero-perturbation claim as audits and traces: sampling every step into
// the series + flight recorder, with the host profiler attached, must not
// move the digest off the golden value.
TEST(Golden, TelemetryEnabledMatchesSerialGolden) {
  const std::uint64_t got =
      run_digest(exchange::Strategy::kDistributed, /*balance=*/true,
                 /*kernel_threads=*/1, /*traced=*/false, /*audited=*/true,
                 /*sort_every=*/0, balance::CostModelKind::kStatic,
                 balance::PolicyKind::kThreshold, /*telemetry=*/true);
  EXPECT_EQ(got, kGoldenDcBalanced)
      << "new digest: 0x" << std::hex << got << "ULL";
}

// The periodic cell sort (DESIGN.md §2g) is pure memory-layout work: a run
// that sorts every step must hit the SAME golden value as the never-sorted
// run. This is the strongest form of the sort's determinism contract —
// stable permutation + cell-major canonical reindex + order-canonical
// deposit leave every digest input untouched.
TEST(Golden, SortEveryStepMatchesUnsortedGolden) {
  const std::uint64_t got =
      run_digest(exchange::Strategy::kDistributed, /*balance=*/true,
                 /*kernel_threads=*/1, /*traced=*/false, /*audited=*/false,
                 /*sort_every=*/1);
  EXPECT_EQ(got, kGoldenDcBalanced)
      << "new digest: 0x" << std::hex << got << "ULL";
}

// An odd sort period composed with kernel threads — both knobs at once must
// still be invisible (sorting changes the store order the kernels chunk
// over, so this exercises chunk-boundary independence on sorted layouts).
TEST(Golden, SortEverySevenWithKernelThreadsMatchesGolden) {
  const std::uint64_t got =
      run_digest(exchange::Strategy::kDistributed, /*balance=*/true,
                 /*kernel_threads=*/4, /*traced=*/false, /*audited=*/false,
                 /*sort_every=*/7);
  EXPECT_EQ(got, kGoldenDcBalanced)
      << "new digest: 0x" << std::hex << got << "ULL";
}

// Same claim on the centralized-exchange golden (different communication
// shape feeding the stores between sorts).
TEST(Golden, SortedCentralizedMatchesUnsortedGolden) {
  const std::uint64_t got =
      run_digest(exchange::Strategy::kCentralized, /*balance=*/false,
                 /*kernel_threads=*/1, /*traced=*/false, /*audited=*/false,
                 /*sort_every=*/2);
  EXPECT_EQ(got, kGoldenCcUnbalanced)
      << "new digest: 0x" << std::hex << got << "ULL";
}

// ---- Timer cost model + look-ahead policy (DESIGN.md §2h) ------------------

// The timer-augmented run has its own golden: measured corrections feed the
// partition weights, so its trajectory legitimately differs from the static
// one — but it must still be one fixed, reproducible trajectory.
constexpr std::uint64_t kGoldenDcTimerLookahead = 0x95971dad00b61899ULL;

// Keeping --cost-model static (the default) must NOT move the original
// goldens — the static path bypasses the cost model entirely. That claim is
// pinned by the unchanged kGoldenDcBalanced constants above; this test pins
// the explicit-static spelling to the same value.
TEST(GoldenCostModel, ExplicitStaticMatchesOriginalGolden) {
  const std::uint64_t got =
      run_digest(exchange::Strategy::kDistributed, /*balance=*/true,
                 /*kernel_threads=*/1, /*traced=*/false, /*audited=*/false,
                 /*sort_every=*/0, balance::CostModelKind::kStatic,
                 balance::PolicyKind::kThreshold);
  EXPECT_EQ(got, kGoldenDcBalanced)
      << "new digest: 0x" << std::hex << got << "ULL";
}

TEST(GoldenCostModel, TimerLookaheadIsReproducible) {
  const std::uint64_t got =
      run_digest(exchange::Strategy::kDistributed, /*balance=*/true,
                 /*kernel_threads=*/1, /*traced=*/false, /*audited=*/false,
                 /*sort_every=*/0, balance::CostModelKind::kTimer,
                 balance::PolicyKind::kLookahead);
  EXPECT_EQ(got, kGoldenDcTimerLookahead)
      << "new digest: 0x" << std::hex << got << "ULL";
}

// The determinism contract across execution knobs, in golden form: kernel
// chunking and the periodic sort must be invisible to the timer-fed
// trajectory too (the corrections are pure virtual-time functions).
TEST(GoldenCostModel, TimerKernelThreadsMatchesTimerGolden) {
  const std::uint64_t got =
      run_digest(exchange::Strategy::kDistributed, /*balance=*/true,
                 /*kernel_threads=*/4, /*traced=*/false, /*audited=*/false,
                 /*sort_every=*/0, balance::CostModelKind::kTimer,
                 balance::PolicyKind::kLookahead);
  EXPECT_EQ(got, kGoldenDcTimerLookahead)
      << "new digest: 0x" << std::hex << got << "ULL";
}

TEST(GoldenCostModel, TimerSortedMatchesTimerGolden) {
  const std::uint64_t got =
      run_digest(exchange::Strategy::kDistributed, /*balance=*/true,
                 /*kernel_threads=*/2, /*traced=*/false, /*audited=*/false,
                 /*sort_every=*/2, balance::CostModelKind::kTimer,
                 balance::PolicyKind::kLookahead);
  EXPECT_EQ(got, kGoldenDcTimerLookahead)
      << "new digest: 0x" << std::hex << got << "ULL";
}

}  // namespace
}  // namespace dsmcpic::core
