// The fleet-service acceptance suite (DESIGN.md §2j).
//
// Fleet.* proves the three load-bearing properties of the runner:
//   (a) a 4-slot fleet of 8 runs produces per-run digests bit-identical to
//       the same runs executed serially (run_scenario_digest),
//   (b) preempt/resume round-trips bit-identically through checkpoint v4 —
//       a run parked mid-flight and resumed in a FRESH FleetRunner lands on
//       the same golden digest AND the same run_report.json bytes as an
//       uninterrupted run,
//   (c) results are independent of slot count, lease length, and completion
//       order.
// GoldenCorpus.* pins the canonical digest of every corpus scenario; the
// "nozzle" value is the original golden_test kGoldenDcBalanced constant,
// proving the fleet path hashes the exact same byte stream.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dsmc/injector.hpp"
#include "fleet/runner.hpp"
#include "mesh/nozzle.hpp"
#include "support/error.hpp"

namespace dsmcpic::fleet {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / name;
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Scenario corpus

TEST(Fleet, CorpusHasNozzlePlusThreeScenarios) {
  ScenarioCorpus corpus;
  ASSERT_EQ(corpus.all().size(), 4u);
  for (const char* name : {"nozzle", "reentry", "twin-plume", "pulsed-inlet"}) {
    const Scenario* sc = corpus.find(name);
    ASSERT_NE(sc, nullptr) << name;
    EXPECT_EQ(sc->name, name);
    EXPECT_FALSE(sc->description.empty());
    EXPECT_EQ(sc->default_ranks, 6);
    EXPECT_EQ(sc->default_steps, 8);
  }
  EXPECT_EQ(corpus.find("bogus"), nullptr);
}

TEST(Fleet, ByNameThrowsListingTheCorpus) {
  ScenarioCorpus corpus;
  try {
    corpus.by_name("bogus");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
    EXPECT_NE(msg.find("nozzle"), std::string::npos) << msg;
  }
}

// The twin-plume scenario really produces two disjoint inlet discs: inlet
// faces on both the +x and -x half of the z=0 plane, and none astride the
// axis (the single-nozzle case is one centered disc).
TEST(Fleet, TwinPlumeHasTwoInletClusters) {
  ScenarioCorpus corpus;
  const mesh::NozzleSpec& spec = corpus.by_name("twin-plume").config.nozzle;
  ASSERT_EQ(spec.inlet_count, 2);
  const mesh::TetMesh m = mesh::make_cylinder_nozzle(spec);
  int pos = 0, neg = 0;
  for (const mesh::BoundaryFace& bf :
       m.boundary_faces(mesh::BoundaryKind::kInlet)) {
    const auto fn = m.face_nodes(bf.tet, bf.face);
    double cx = 0.0;
    for (const std::int32_t n : fn) cx += m.nodes()[n].x;
    (cx > 0.0 ? pos : neg)++;
  }
  EXPECT_GT(pos, 0);
  EXPECT_GT(neg, 0);

  // Single-inlet spec of the same lattice keeps one centered cluster.
  mesh::NozzleSpec single = spec;
  single.inlet_count = 1;
  const mesh::TetMesh m1 = mesh::make_cylinder_nozzle(single);
  EXPECT_FALSE(m1.boundary_faces(mesh::BoundaryKind::kInlet).empty());
}

TEST(Fleet, PulsedInletModulation) {
  ScenarioCorpus corpus;
  const core::SolverConfig& cfg = corpus.by_name("pulsed-inlet").config;
  ASSERT_GT(cfg.inject_pulse_amplitude, 0.0);
  ASSERT_GT(cfg.inject_pulse_period, 0);

  dsmc::InjectionSpec spec;
  spec.pulse_amplitude = cfg.inject_pulse_amplitude;
  spec.pulse_period = cfg.inject_pulse_period;
  EXPECT_DOUBLE_EQ(spec.inflow_modulation(0), 1.0);  // sin(0) = 0
  // Modulation actually varies over a period and never goes negative.
  double lo = 10.0, hi = -10.0;
  for (int s = 0; s < spec.pulse_period; ++s) {
    const double m = spec.inflow_modulation(s);
    EXPECT_GE(m, 0.0);
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  EXPECT_LT(lo, 1.0);
  EXPECT_GT(hi, 1.0);

  // Disabled pulse is the identity at every step (golden safety).
  dsmc::InjectionSpec off;
  for (int s = 0; s < 16; ++s) EXPECT_EQ(off.inflow_modulation(s), 1.0);
}

// ---------------------------------------------------------------------------
// Shared assets

TEST(Fleet, SharedAssetsCacheIdentityAndStats) {
  SharedAssets assets;
  ScenarioCorpus corpus;
  const auto a = assets.geometry(corpus.by_name("nozzle").config.nozzle);
  const auto b = assets.geometry(corpus.by_name("nozzle").config.nozzle);
  EXPECT_EQ(a.get(), b.get());  // same immutable object, not a rebuild
  const auto c = assets.geometry(corpus.by_name("reentry").config.nozzle);
  EXPECT_NE(a.get(), c.get());
  SharedAssets::Stats st = assets.stats();
  EXPECT_EQ(st.geometry_hits, 1);
  EXPECT_EQ(st.geometry_misses, 2);

  (void)assets.machine("tianhe2");
  (void)assets.machine("tianhe2");
  st = assets.stats();
  EXPECT_EQ(st.machine_hits, 1);
  EXPECT_EQ(st.machine_misses, 1);
  EXPECT_THROW(assets.machine("cray"), Error);
}

// ---------------------------------------------------------------------------
// (a) fleet == serial

TEST(Fleet, FourSlotFleetMatchesSerialDigests) {
  FleetOptions fo;
  fo.slots = 4;
  FleetRunner runner(fo);
  std::vector<FleetJob> jobs;
  for (int i = 0; i < 8; ++i) {
    FleetJob j;
    j.scenario = runner.corpus().all()[static_cast<std::size_t>(i) % 4].name;
    j.seed = 42 + static_cast<std::uint64_t>(i / 4);  // two seeds/scenario
    jobs.push_back(j);
    const std::string id = runner.add(j);
    EXPECT_EQ(id.substr(0, 3), "run");
    EXPECT_NE(id.find(j.scenario), std::string::npos);
  }
  const std::vector<FleetRunResult> results = runner.run_all();
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Scenario& sc = runner.corpus().by_name(jobs[i].scenario);
    const std::uint64_t serial = run_scenario_digest(
        sc, sc.default_steps, sc.default_ranks, jobs[i].seed);
    EXPECT_EQ(results[i].digest, serial) << results[i].run_id;
    EXPECT_EQ(results[i].state, RunState::kDone);
    EXPECT_EQ(results[i].steps_done, sc.default_steps);
    EXPECT_EQ(results[i].leases, 1);
    EXPECT_GT(results[i].final_particles, 0);
  }
  const FleetStats& st = runner.stats();
  EXPECT_EQ(st.runs_total, 8);
  EXPECT_EQ(st.runs_done, 8);
  EXPECT_EQ(st.runs_parked, 0);
  // 8 runs over 4 scenarios through one registry — but pulsed-inlet shares
  // the nozzle's NozzleSpec (the pulse lives in SolverConfig, not the
  // geometry), so only 3 unique meshes get built: 3 misses, 5 hits.
  EXPECT_EQ(st.cache.geometry_misses, 3);
  EXPECT_EQ(st.cache.geometry_hits, 5);
  EXPECT_GT(st.slot_utilization, 0.0);
}

// ---------------------------------------------------------------------------
// (c) slot-count / lease-length / completion-order independence

TEST(Fleet, DigestsIndependentOfSlotsAndLeases) {
  const auto run_fleet = [](int slots, int lease, const std::string& dir) {
    FleetOptions fo;
    fo.slots = slots;
    fo.lease_steps = lease;
    fo.results_dir = dir;
    FleetRunner runner(fo);
    for (int i = 0; i < 6; ++i) {
      FleetJob j;
      j.scenario =
          runner.corpus().all()[static_cast<std::size_t>(i) % 3].name;
      j.seed = 50 + static_cast<std::uint64_t>(i);
      runner.add(j);
    }
    return runner.run_all();
  };
  const auto serial = run_fleet(1, 0, "");
  const auto wide = run_fleet(3, 0, "");
  const auto sliced = run_fleet(2, 3, temp_dir("fleet_test_lease"));
  ASSERT_EQ(serial.size(), 6u);
  ASSERT_EQ(wide.size(), 6u);
  ASSERT_EQ(sliced.size(), 6u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].run_id, wide[i].run_id);
    EXPECT_EQ(serial[i].digest, wide[i].digest) << serial[i].run_id;
    EXPECT_EQ(serial[i].digest, sliced[i].digest) << serial[i].run_id;
    EXPECT_EQ(serial[i].leases, 1);
    // 8 default steps in 3-step leases: 3 + 3 + 2.
    EXPECT_EQ(sliced[i].leases, 3);
    EXPECT_EQ(sliced[i].state, RunState::kDone);
  }
}

// ---------------------------------------------------------------------------
// (b) preempt/resume through checkpoint v4

TEST(Fleet, PreemptResumeBitIdenticalThroughCheckpointV4) {
  const std::string base = temp_dir("fleet_test_preempt");

  // Uninterrupted reference run.
  std::uint64_t ref_digest = 0;
  std::string ref_dir;
  {
    FleetOptions fo;
    fo.slots = 1;
    fo.results_dir = base + "/ref";
    FleetRunner runner(fo);
    FleetJob j;
    j.scenario = "reentry";
    j.seed = 7;
    ref_dir = fo.results_dir + "/" + runner.add(j);
    const auto r = runner.run_all();
    ASSERT_EQ(r[0].state, RunState::kDone);
    ref_digest = r[0].digest;
  }

  // Park the same job at step 3 — slot freed, run left on disk.
  std::string parked_dir;
  {
    FleetOptions fo;
    fo.slots = 2;
    fo.results_dir = base + "/parked";
    FleetRunner runner(fo);
    FleetJob j;
    j.scenario = "reentry";
    j.seed = 7;
    j.park_at = 3;
    parked_dir = fo.results_dir + "/" + runner.add(j);
    const auto r = runner.run_all();
    ASSERT_EQ(r[0].state, RunState::kParked);
    EXPECT_EQ(r[0].steps_done, 3);
    EXPECT_EQ(runner.stats().runs_parked, 1);
    EXPECT_TRUE(fs::exists(parked_dir + "/checkpoint.bin"));
    EXPECT_TRUE(fs::exists(parked_dir + "/lease.bin"));
    EXPECT_FALSE(fs::exists(parked_dir + "/run_report.json"));
  }

  // A FRESH runner (fresh SharedAssets, fresh process state) resumes it.
  {
    FleetOptions fo;
    fo.slots = 2;
    fo.results_dir = base + "/other";
    FleetRunner runner(fo);
    const std::string id = runner.add_resume(parked_dir);
    EXPECT_EQ(id, "run000-reentry");
    const auto r = runner.run_all();
    ASSERT_EQ(r[0].state, RunState::kDone);
    EXPECT_EQ(r[0].digest, ref_digest);
    EXPECT_EQ(r[0].steps_done, 8);
    EXPECT_EQ(r[0].leases, 2);
  }

  // Physics outputs are bit-identical files, and the park-time sidecars are
  // cleaned up on completion.
  EXPECT_EQ(slurp(parked_dir + "/run_report.json"),
            slurp(ref_dir + "/run_report.json"));
  EXPECT_EQ(slurp(parked_dir + "/digest.txt"), slurp(ref_dir + "/digest.txt"));
  EXPECT_FALSE(fs::exists(parked_dir + "/checkpoint.bin"));
  EXPECT_FALSE(fs::exists(parked_dir + "/lease.bin"));
}

// ---------------------------------------------------------------------------
// GoldenCorpus: one pinned canonical digest per scenario (canonical_parallel,
// default steps/ranks, seed 42). On an intentional physics change, update
// the constant from the failure message — same protocol as golden_test.

std::uint64_t canonical_digest(const std::string& name) {
  ScenarioCorpus corpus;
  const Scenario& sc = corpus.by_name(name);
  return run_scenario_digest(sc, sc.default_steps, sc.default_ranks, 42);
}

testing::AssertionResult digest_matches(std::uint64_t got,
                                        std::uint64_t want) {
  if (got == want) return testing::AssertionSuccess();
  char buf[80];
  std::snprintf(buf, sizeof buf,
                "digest mismatch: got 0x%016llx, want 0x%016llx",
                static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(want));
  return testing::AssertionFailure() << buf;
}

// == golden_test's kGoldenDcBalanced: the corpus' canonical nozzle run IS
// the original golden case, hashed through the fleet's streaming digest.
constexpr std::uint64_t kGoldenNozzle = 0xef94e5e11bc00cc4ULL;
constexpr std::uint64_t kGoldenReentry = 0x0a23d41eecefb929ULL;
constexpr std::uint64_t kGoldenTwinPlume = 0xe5deac962a12bc51ULL;
constexpr std::uint64_t kGoldenPulsedInlet = 0x65d9dfa0dfda9f5eULL;

TEST(GoldenCorpus, Nozzle) {
  EXPECT_TRUE(digest_matches(canonical_digest("nozzle"), kGoldenNozzle));
}

TEST(GoldenCorpus, Reentry) {
  EXPECT_TRUE(digest_matches(canonical_digest("reentry"), kGoldenReentry));
}

TEST(GoldenCorpus, TwinPlume) {
  EXPECT_TRUE(
      digest_matches(canonical_digest("twin-plume"), kGoldenTwinPlume));
}

TEST(GoldenCorpus, PulsedInlet) {
  EXPECT_TRUE(
      digest_matches(canonical_digest("pulsed-inlet"), kGoldenPulsedInlet));
}

}  // namespace
}  // namespace dsmcpic::fleet
