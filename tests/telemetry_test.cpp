// Tests for the live telemetry bus (docs/observability.md §6): the
// deterministic 2:1 series downsampling, the flight recorder's postmortem
// dumps (byte-identical across execution knobs, triggered by fault trips,
// auditor aborts and fleet parks), the atomic Prometheus/JSON exposition,
// and — the load-bearing claim — that attaching a TelemetryHub perturbs
// neither solver digests nor run_report.json bytes.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/datasets.hpp"
#include "core/solver.hpp"
#include "fleet/report.hpp"
#include "fleet/runner.hpp"
#include "obs/health_auditor.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "support/error.hpp"

namespace dsmcpic::core {
namespace {

// ---- TelemetrySeries --------------------------------------------------------

TEST(TelemetrySeries, DownsamplesTwoToOneDeterministically) {
  obs::TelemetrySeries s(8);
  for (int step = 0; step < 100; ++step)
    s.push(step, static_cast<double>(step));
  // stride doubles at every fill: 1 -> 2 -> 4 -> 8 -> 16. The retained set
  // is a pure function of (capacity, steps pushed).
  EXPECT_EQ(s.stride(), 16);
  std::vector<std::int64_t> steps;
  for (const obs::TelemetrySeries::Point& p : s.points()) {
    steps.push_back(p.step);
    EXPECT_EQ(p.value, static_cast<double>(p.step));
  }
  EXPECT_EQ(steps, (std::vector<std::int64_t>{0, 16, 32, 48, 64, 80, 96}));
}

TEST(TelemetrySeries, NeverExceedsCapacity) {
  obs::TelemetrySeries s(4);
  for (int step = 0; step < 1000; ++step) s.push(step, 1.0);
  EXPECT_LT(s.points().size(), 4u);
  EXPECT_GE(s.points().size(), 2u);
}

TEST(TelemetryHub, RejectsNonPositiveKnobs) {
  obs::TelemetryConfig bad_interval;
  bad_interval.metrics_interval = 0;
  EXPECT_THROW(obs::TelemetryHub{bad_interval}, Error);
  obs::TelemetryConfig bad_recorder;
  bad_recorder.flight_recorder = 0;
  EXPECT_THROW(obs::TelemetryHub{bad_recorder}, Error);
  obs::TelemetryConfig bad_capacity;
  bad_capacity.series_capacity = 1;
  EXPECT_THROW(obs::TelemetryHub{bad_capacity}, Error);
}

// ---- end-to-end helpers -----------------------------------------------------

SolverConfig tiny_config() {
  Dataset d = make_dataset(1, /*particle_scale=*/0.25);
  d.config.nozzle.radial_divisions = 3;
  d.config.nozzle.axial_divisions = 6;
  return d.config;
}

struct Knobs {
  par::ExecMode mode = par::ExecMode::kSequential;
  int exec_threads = 0;
  int kernel_threads = 1;
  int sort_every = 8;
};

std::uint64_t history_digest(const CoupledSolver& solver) {
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const StepDiagnostics& s : solver.history()) {
    mix(static_cast<std::uint64_t>(s.dsmc_step));
    for (const std::int64_t p : s.particles_per_rank)
      mix(static_cast<std::uint64_t>(p));
    mix(static_cast<std::uint64_t>(s.injected));
    mix(static_cast<std::uint64_t>(s.migrated_dsmc));
    mix(static_cast<std::uint64_t>(s.collisions));
    mix(static_cast<std::uint64_t>(s.poisson_iterations));
    mix(std::bit_cast<std::uint64_t>(s.lii));
    mix(s.rebalanced ? 1u : 0u);
  }
  for (int r = 0; r < solver.runtime().size(); ++r)
    mix(std::bit_cast<std::uint64_t>(solver.runtime().clock(r)));
  mix(std::bit_cast<std::uint64_t>(solver.runtime().total_time()));
  return h;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Runs the tiny scenario with a fault injected and a telemetry hub whose
/// postmortem lands in `dir`; returns the postmortem bytes.
std::string faulted_postmortem(FaultInjection fault, const Knobs& k,
                               const std::string& dir) {
  std::filesystem::create_directories(dir);
  SolverConfig cfg = tiny_config();
  cfg.fault = fault;
  cfg.sort_every = k.sort_every;
  ParallelConfig par;
  par.nranks = 6;
  par.balance.enabled = true;
  par.balance.period = 3;
  // Aggressive trigger so kSkewRebalanceCost (which only fires on an
  // actual rebalance) trips within the step budget.
  par.balance.threshold = 1.01;
  par.exec_mode = k.mode;
  par.exec_threads = k.exec_threads;
  par.kernel_threads = k.kernel_threads;
  obs::TelemetryConfig tc;
  tc.metrics_interval = 4;
  tc.flight_recorder = 4;
  tc.postmortem_path = dir + "/postmortem.json";
  tc.run_label = "telemetry_test";
  obs::TelemetryHub hub(tc);
  CoupledSolver solver(cfg, par);
  solver.set_telemetry(&hub);
  solver.run(14);
  EXPECT_TRUE(hub.postmortem_written())
      << "fault never tripped a postmortem";
  return slurp(tc.postmortem_path);
}

// ---- zero perturbation ------------------------------------------------------

TEST(TelemetryPerturbation, DigestsAndReportBytesAreIdenticalWithHub) {
  const auto run = [](bool with_hub, std::string* report_bytes) {
    SolverConfig cfg = tiny_config();
    ParallelConfig par;
    par.nranks = 6;
    par.balance.enabled = true;
    par.balance.period = 3;
    obs::TelemetryConfig tc;
    tc.metrics_interval = 1;
    tc.flight_recorder = 8;
    obs::TelemetryHub hub(tc);
    CoupledSolver solver(cfg, par);
    if (with_hub) solver.set_telemetry(&hub);
    solver.run(8);
    if (with_hub) {
      EXPECT_EQ(hub.samples_seen(), 8);
      EXPECT_EQ(hub.flight().size(), 8u);
    }
    // No host profiler attached: the report is then a pure function of the
    // deterministic run and must be BYTE-identical with the hub attached.
    obs::RunReport rep;
    fleet::ReportMeta meta;
    meta.bench = "telemetry_test";
    meta.case_name = "tiny";
    meta.seed = cfg.seed;
    meta.steps = 8;
    fleet::fill_run_report(rep, solver, solver.summary(), solver.history(),
                           meta);
    std::ostringstream os;
    obs::write_run_report(os, rep);
    *report_bytes = os.str();
    return history_digest(solver);
  };
  std::string plain_report, hub_report;
  const std::uint64_t plain = run(false, &plain_report);
  const std::uint64_t with_hub = run(true, &hub_report);
  EXPECT_EQ(with_hub, plain);
  EXPECT_EQ(hub_report, plain_report);
}

// ---- postmortem byte-identity across execution knobs ------------------------

class PostmortemFaults : public ::testing::TestWithParam<FaultInjection> {};

TEST_P(PostmortemFaults, BytesIdenticalAcrossExecKnobs) {
  const FaultInjection fault = GetParam();
  const std::string base = ::testing::TempDir() + "telemetry_pm_" +
                           std::to_string(static_cast<int>(fault));
  const std::string a = faulted_postmortem(
      fault, Knobs{par::ExecMode::kSequential, 0, 1, 8}, base + "_a");
  const std::string b = faulted_postmortem(
      fault, Knobs{par::ExecMode::kThreaded, 4, 4, 3}, base + "_b");
  const std::string c = faulted_postmortem(
      fault, Knobs{par::ExecMode::kSequential, 0, 2, 0}, base + "_c");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "postmortem depends on exec mode / kernel threads";
  EXPECT_EQ(a, c) << "postmortem depends on sort_every";
  EXPECT_NE(a.find(obs::kPostmortemSchema), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllFaults, PostmortemFaults,
                         ::testing::Values(FaultInjection::kDropParticle,
                                           FaultInjection::kSkewDeposit,
                                           FaultInjection::kSkewRebalanceCost));

TEST(Postmortem, AuditorAbortDumpsFlightRecorder) {
  const std::string dir = ::testing::TempDir() + "telemetry_abort";
  std::filesystem::create_directories(dir);
  SolverConfig cfg = tiny_config();
  cfg.fault = FaultInjection::kDropParticle;
  ParallelConfig par;
  par.nranks = 6;
  par.balance.enabled = true;
  par.balance.period = 3;
  obs::HealthAuditor auditor({obs::AuditSeverity::kAbort});
  obs::TelemetryConfig tc;
  tc.postmortem_path = dir + "/postmortem.json";
  obs::TelemetryHub hub(tc);
  CoupledSolver solver(cfg, par);
  solver.set_auditor(&auditor);
  solver.set_telemetry(&hub);
  EXPECT_THROW(solver.run(6), Error);
  EXPECT_TRUE(hub.postmortem_written());
  const std::string bytes = slurp(tc.postmortem_path);
  EXPECT_NE(bytes.find("\"reason\": \"abort\""), std::string::npos) << bytes;
}

TEST(Postmortem, FirstTriggerWins) {
  const std::string dir = ::testing::TempDir() + "telemetry_first";
  std::filesystem::create_directories(dir);
  obs::TelemetryConfig tc;
  tc.postmortem_path = dir + "/postmortem.json";
  obs::TelemetryHub hub(tc);
  hub.dump_postmortem("abort");
  hub.dump_postmortem("park");  // must NOT overwrite the abort dump
  const std::string bytes = slurp(tc.postmortem_path);
  EXPECT_NE(bytes.find("\"reason\": \"abort\""), std::string::npos);
  EXPECT_EQ(bytes.find("\"reason\": \"park\""), std::string::npos);
}

// ---- exposition -------------------------------------------------------------

TEST(Exposition, PublishesPromAndJsonAtomically) {
  const std::string dir = ::testing::TempDir() + "telemetry_expo";
  std::filesystem::create_directories(dir);
  SolverConfig cfg = tiny_config();
  ParallelConfig par;
  par.nranks = 6;
  par.balance.enabled = true;
  par.balance.period = 3;
  obs::TelemetryConfig tc;
  tc.metrics_interval = 3;
  tc.metrics_prom_path = dir + "/metrics.prom";
  tc.metrics_json_path = dir + "/metrics.json";
  tc.run_label = "expo/\"case0\"";  // exercises label escaping
  obs::TelemetryHub hub(tc);
  CoupledSolver solver(cfg, par);
  solver.set_telemetry(&hub);
  solver.run(7);
  EXPECT_GE(hub.publishes(), 2);  // steps 3 and 6 crossed the interval
  // No .tmp staging file may survive a publish.
  EXPECT_FALSE(std::filesystem::exists(dir + "/metrics.prom.tmp"));
  const std::string prom = slurp(tc.metrics_prom_path);
  EXPECT_NE(prom.find("# HELP dsmcpic_particles "), std::string::npos);
  EXPECT_NE(prom.find("# TYPE dsmcpic_particles gauge"), std::string::npos);
  EXPECT_NE(prom.find("run=\"expo/\\\"case0\\\"\""), std::string::npos)
      << prom.substr(0, 400);
  const std::string json = slurp(tc.metrics_json_path);
  EXPECT_NE(json.find(obs::kMetricsSchema), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
}

// ---- fleet integration ------------------------------------------------------

TEST(FleetTelemetry, ParkedRunLeavesPostmortemAndFleetMetrics) {
  const std::string dir = ::testing::TempDir() + "telemetry_fleet";
  std::filesystem::remove_all(dir);
  fleet::FleetOptions fo;
  fo.slots = 2;
  fo.results_dir = dir;
  fo.lease_steps = 2;
  fo.telemetry = true;
  fo.metrics_interval = 1;
  fleet::FleetRunner runner(fo);
  fleet::FleetJob a;
  a.scenario = "nozzle";
  a.steps = 4;
  a.park_at = 2;
  fleet::FleetJob b;
  b.scenario = "nozzle";
  b.steps = 4;
  b.seed = 43;
  runner.add(a);
  runner.add(b);
  const std::vector<fleet::FleetRunResult> results = runner.run_all();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].state, fleet::RunState::kParked);
  EXPECT_EQ(results[1].state, fleet::RunState::kDone);

  const std::string pm = slurp(dir + "/run000-nozzle/postmortem.json");
  EXPECT_NE(pm.find("\"reason\": \"park\""), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(dir + "/run000-nozzle/metrics.prom"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/run001-nozzle/metrics.json"));

  const std::string fleet_prom = slurp(dir + "/fleet_metrics.prom");
  EXPECT_NE(fleet_prom.find("dsmcpic_fleet_runs_parked 1"),
            std::string::npos);
  EXPECT_NE(fleet_prom.find("run=\"run001-nozzle\""), std::string::npos);
  const std::string summary = slurp(dir + "/fleet_summary.json");
  EXPECT_NE(summary.find("\"pending\": 0"), std::string::npos);
  EXPECT_NE(summary.find("\"parked\": 1"), std::string::npos);
}

}  // namespace
}  // namespace dsmcpic::core
