// Broader edge-case coverage across modules (kept behaviour-neutral: these
// tests pin down existing semantics rather than introduce new ones).

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "balance/hungarian.hpp"
#include "core/solver.hpp"
#include "dsmc/maxwell.hpp"
#include "dsmc/mover.hpp"
#include "dsmc/sampling.hpp"
#include "linalg/dist.hpp"
#include "linalg/krylov.hpp"
#include "mesh/nozzle.hpp"
#include "partition/partitioner.hpp"
#include "support/rng.hpp"

namespace dsmcpic {
namespace {

TEST(PartitionEdgeWeights, HeavyEdgesAreNotCut) {
  // Path of 6 with one very heavy edge in the middle-left: the 2-way cut
  // must avoid it even though cutting there would balance node counts.
  partition::Graph g;
  const int nv = 6;
  g.xadj = {0, 1, 3, 5, 7, 9, 10};
  g.adjncy = {1, 0, 2, 1, 3, 2, 4, 3, 5, 4};
  g.ewgt = {100, 100, 1, 1, 1, 1, 1, 1, 1, 1};  // edge 0-1 heavy
  g.validate();
  const auto r = partition::part_graph_kway(g, 2, {.imbalance_tol = 1.4});
  EXPECT_EQ(r.part[0], r.part[1]);  // heavy edge kept internal
  EXPECT_LE(r.cut, 1);
}

TEST(Hungarian, MinAndMaxAreConsistent) {
  Rng rng(5);
  const int n = 9;
  std::vector<double> w(n * n), neg(n * n);
  for (int i = 0; i < n * n; ++i) {
    w[i] = std::floor(rng.uniform(0, 100));
    neg[i] = -w[i];
  }
  const auto mx = balance::hungarian_max(w, n);
  const auto mn = balance::hungarian_min(neg, n);
  EXPECT_DOUBLE_EQ(mx.total, -mn.total);
  EXPECT_EQ(mx.row_to_col, mn.row_to_col);
}

TEST(Krylov, GmresRestartsOnLongRecurrences) {
  // Force several restart cycles with a small restart length.
  const std::int32_t n = 60;
  std::vector<linalg::Triplet> t;
  for (std::int32_t i = 0; i < n; ++i) {
    t.push_back({i, i, 4.0});
    if (i > 0) t.push_back({i, i - 1, -1.5});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  const auto a = linalg::CsrMatrix::from_triplets(n, n, t);
  std::vector<double> x_true(n), b(n), x(n, 0.0);
  Rng rng(8);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  a.matvec(x_true, b);
  linalg::SolveOptions opt{.rel_tol = 1e-10, .max_iterations = 2000};
  opt.gmres_restart = 5;
  const auto r = linalg::gmres(a, b, x, opt);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 5);  // needed more than one cycle
  for (std::int32_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(DistLayout, ContiguousOwnershipHasThinHalo) {
  // Block ownership on a tridiagonal matrix: halos are exactly the two
  // boundary rows per interior rank.
  const std::int32_t n = 30;
  std::vector<linalg::Triplet> t;
  for (std::int32_t i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  const auto a = linalg::CsrMatrix::from_triplets(n, n, t);
  std::vector<std::int32_t> owner(n);
  for (std::int32_t i = 0; i < n; ++i) owner[i] = i / 10;  // 3 blocks
  const auto l = linalg::DistLayout::build(3, owner, a);
  EXPECT_EQ(l.halo[0].size(), 1u);  // row 10
  EXPECT_EQ(l.halo[1].size(), 2u);  // rows 9 and 20
  EXPECT_EQ(l.halo[2].size(), 1u);  // row 19
}

TEST(Mover, HugeVelocityParticleExitsCleanly) {
  const mesh::NozzleSpec spec{.radial_divisions = 4, .axial_divisions = 8};
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(spec);
  const dsmc::SpeciesTable table = dsmc::SpeciesTable::hydrogen(1e8, 100.0);
  const dsmc::Mover mover(grid, table, {});
  Vec3 pos{0, 0, 0.01};
  Vec3 vel{0, 0, 1e8};  // crosses the whole nozzle many times over in dt
  std::int32_t cell = grid.locate(pos, 0);
  dsmc::MoveStats st;
  EXPECT_FALSE(mover.move_one(pos, vel, cell, dsmc::kSpeciesH, 1, 1e-6, 0, st));
  EXPECT_EQ(st.exited, 1);
}

TEST(Mover, ZeroVelocityParticleStaysPut) {
  const mesh::NozzleSpec spec{.radial_divisions = 4, .axial_divisions = 8};
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(spec);
  const dsmc::SpeciesTable table = dsmc::SpeciesTable::hydrogen(1e8, 100.0);
  const dsmc::Mover mover(grid, table, {});
  Vec3 pos{0.001, 0.002, 0.02};
  const Vec3 pos0 = pos;
  Vec3 vel{};
  std::int32_t cell = grid.locate(pos, 0);
  const std::int32_t cell0 = cell;
  dsmc::MoveStats st;
  EXPECT_TRUE(mover.move_one(pos, vel, cell, dsmc::kSpeciesH, 1, 1e-6, 0, st));
  EXPECT_EQ(pos, pos0);
  EXPECT_EQ(cell, cell0);
}

TEST(Sampler, MergeCombinesRankLocalSamplers) {
  const mesh::NozzleSpec spec{.radial_divisions = 4, .axial_divisions = 8};
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(spec);
  const dsmc::SpeciesTable table = dsmc::SpeciesTable::hydrogen(1e10, 100.0);
  const std::int32_t cell = grid.locate({0, 0, 0.02}, 0);

  dsmc::CellSampler a(grid, table), b(grid, table), combined(grid, table);
  dsmc::ParticleStore s1, s2, all;
  for (int i = 0; i < 10; ++i) {
    dsmc::ParticleRecord p;
    p.cell = cell;
    p.species = dsmc::kSpeciesH;
    (i < 6 ? s1 : s2).add(p);
    all.add(p);
  }
  // Split sampling (one snapshot spread over two stores) vs direct.
  a.begin_snapshot();
  a.accumulate(s1);
  a.accumulate(s2);
  combined.sample(all);
  const auto da = a.number_density(dsmc::kSpeciesH);
  const auto dc = combined.number_density(dsmc::kSpeciesH);
  EXPECT_DOUBLE_EQ(da[cell], dc[cell]);

  // merge(): accumulators add, sample count maxes.
  b.sample(all);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.number_density(dsmc::kSpeciesH)[cell], 2.0 * dc[cell]);
}

TEST(Sampler, TemperatureOfDriftingEnsembleIsThermal) {
  // A drifting Maxwellian's translational temperature must subtract the
  // mean velocity (peculiar-velocity variance only).
  const mesh::NozzleSpec spec{.radial_divisions = 4, .axial_divisions = 8};
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(spec);
  const dsmc::SpeciesTable table = dsmc::SpeciesTable::hydrogen(1e10, 100.0);
  const std::int32_t cell = grid.locate({0, 0, 0.02}, 0);
  dsmc::CellSampler sampler(grid, table);
  dsmc::ParticleStore store;
  Rng rng(17);
  const double T = 450.0;
  for (int i = 0; i < 20000; ++i) {
    dsmc::ParticleRecord p;
    p.cell = cell;
    p.species = dsmc::kSpeciesH;
    p.velocity = dsmc::sample_maxwellian(rng, T, table[0].mass) +
                 Vec3{0, 0, 1e4};  // strong drift
    store.add(p);
  }
  sampler.sample(store);
  EXPECT_NEAR(sampler.temperature(dsmc::kSpeciesH)[cell], T, 0.05 * T);
  EXPECT_NEAR(sampler.mean_velocity(dsmc::kSpeciesH)[cell].z, 1e4, 100.0);
}

TEST(RunSummary, UnknownPhaseIsZero) {
  core::RunSummary s;
  s.phase_names = {"A"};
  s.phase_stats.resize(1);
  s.phase_stats[0].busy_max = 3.0;
  EXPECT_DOUBLE_EQ(s.phase_max("A"), 3.0);
  EXPECT_DOUBLE_EQ(s.phase_max("B"), 0.0);
}

TEST(Csr, AtOutOfRangeRowThrows) {
  const auto a = linalg::CsrMatrix::from_triplets(2, 2, {{{0, 0, 1.0}}});
  EXPECT_THROW(a.at(-1, 0), Error);
  EXPECT_THROW(a.at(2, 0), Error);
}

}  // namespace
}  // namespace dsmcpic
