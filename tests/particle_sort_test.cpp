// Unit tests for the SoA ParticleStore reordering primitives that the
// periodic cell sort (DESIGN.md §2g) is built on: apply_gather permutation
// semantics, sort_by_cell correctness + STABILITY (the determinism
// contract), remove_flagged stability, and a checkpoint round-trip of the
// component-vector layout. The end-to-end invariance claims live in
// determinism_test.cpp (SortDeterminism) and golden_test.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "dsmc/particles.hpp"
#include "support/rng.hpp"

namespace dsmcpic::dsmc {
namespace {

/// A store whose particle i is fully identified by its id: every field is a
/// distinct function of i, so any mix-up between arrays or slots shows.
ParticleStore make_store(std::size_t n, std::int32_t num_cells,
                         std::uint64_t seed = 17) {
  ParticleStore store;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    ParticleRecord p;
    const double d = static_cast<double>(i);
    p.position = {d + 0.125, d + 0.25, d + 0.375};
    p.velocity = {-d - 0.5, -d - 0.625, -d - 0.75};
    p.id = static_cast<std::int64_t>(i);
    p.species = static_cast<std::int32_t>(i % 2);
    p.cell = static_cast<std::int32_t>(rng.next_u64() %
                                       static_cast<std::uint64_t>(num_cells));
    store.add(p);
  }
  return store;
}

void expect_same_particle(const ParticleStore& got, std::size_t slot,
                          const ParticleRecord& want) {
  EXPECT_EQ(got.ids()[slot], want.id);
  EXPECT_EQ(got.species()[slot], want.species);
  EXPECT_EQ(got.cells()[slot], want.cell);
  EXPECT_EQ(got.position(slot), want.position);
  EXPECT_EQ(got.velocity(slot), want.velocity);
}

TEST(ParticleSort, ApplyGatherPermutesEveryArray) {
  const std::size_t n = 37;
  ParticleStore store = make_store(n, 5);
  const ParticleStore orig = store;

  // Reverse permutation plus flags that tag odd OLD slots.
  std::vector<std::int32_t> gather(n);
  for (std::size_t k = 0; k < n; ++k)
    gather[k] = static_cast<std::int32_t>(n - 1 - k);
  std::vector<std::uint8_t> flags(n, 0);
  for (std::size_t i = 1; i < n; i += 2) flags[i] = 1;

  SortScratch scratch;
  store.apply_gather(gather, scratch, flags);

  ASSERT_EQ(store.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    expect_same_particle(store, k, orig.record(n - 1 - k));
    EXPECT_EQ(flags[k], (n - 1 - k) % 2 == 1 ? 1 : 0) << "slot " << k;
  }
}

TEST(ParticleSort, SortByCellGroupsCellsAscending) {
  const std::int32_t num_cells = 7;
  ParticleStore store = make_store(113, num_cells);
  SortScratch scratch;
  store.sort_by_cell(num_cells, scratch);

  ASSERT_EQ(store.size(), 113u);
  const auto cells = store.cells();
  for (std::size_t i = 1; i < store.size(); ++i)
    EXPECT_LE(cells[i - 1], cells[i]) << "slot " << i;
}

// Stability keeps the layout predictable: within one cell, particles keep
// the relative order they had before the sort. (Traversal ORDER semantics
// are owned by CellIndex, which canonicalizes per-cell lists by id — see
// CellIndexSortsEachCellById below — but a stable layout permutation means
// a freshly reindexed, sorted store is exactly id-ascending in memory.)
TEST(ParticleSort, SortByCellIsStableWithinCells) {
  const std::int32_t num_cells = 6;
  ParticleStore store = make_store(211, num_cells);
  const ParticleStore orig = store;
  SortScratch scratch;
  store.sort_by_cell(num_cells, scratch);

  // Expected per-cell id sequences in original store order.
  std::vector<std::vector<std::int64_t>> want(num_cells);
  for (std::size_t i = 0; i < orig.size(); ++i)
    want[orig.cells()[i]].push_back(orig.ids()[i]);

  std::vector<std::vector<std::int64_t>> got(num_cells);
  for (std::size_t i = 0; i < store.size(); ++i)
    got[store.cells()[i]].push_back(store.ids()[i]);
  for (std::int32_t c = 0; c < num_cells; ++c)
    EXPECT_EQ(got[c], want[c]) << "cell " << c;
}

TEST(ParticleSort, SortIsIdempotentAndPreservesMultiset) {
  const std::int32_t num_cells = 9;
  ParticleStore store = make_store(64, num_cells);
  const ParticleStore orig = store;
  SortScratch scratch;
  store.sort_by_cell(num_cells, scratch);
  const ParticleStore once = store;
  store.sort_by_cell(num_cells, scratch);

  // Second sort is the identity on an already-sorted store.
  ASSERT_EQ(store.size(), once.size());
  for (std::size_t i = 0; i < store.size(); ++i)
    expect_same_particle(store, i, once.record(i));

  // Same particles as before sorting, found via id.
  std::vector<std::size_t> slot_of(orig.size());
  for (std::size_t i = 0; i < store.size(); ++i)
    slot_of[static_cast<std::size_t>(store.ids()[i])] = i;
  for (std::size_t i = 0; i < orig.size(); ++i)
    expect_same_particle(store, slot_of[i], orig.record(i));
}

TEST(ParticleSort, SortCarriesRemovalFlags) {
  const std::int32_t num_cells = 4;
  ParticleStore store = make_store(50, num_cells);
  std::vector<std::uint8_t> flags(store.size(), 0);
  // Flag the particles with id divisible by 5.
  for (std::size_t i = 0; i < store.size(); ++i)
    if (store.ids()[i] % 5 == 0) flags[i] = 1;

  SortScratch scratch;
  store.sort_by_cell(num_cells, scratch, flags);
  for (std::size_t i = 0; i < store.size(); ++i)
    EXPECT_EQ(flags[i], store.ids()[i] % 5 == 0 ? 1 : 0) << "slot " << i;
}

TEST(ParticleSort, EmptyStoreAndSingleCellAreNoOps) {
  SortScratch scratch;
  ParticleStore empty;
  empty.sort_by_cell(3, scratch);
  EXPECT_TRUE(empty.empty());

  ParticleStore one_cell = make_store(20, 1);
  const ParticleStore orig = one_cell;
  one_cell.sort_by_cell(1, scratch);
  ASSERT_EQ(one_cell.size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i)
    expect_same_particle(one_cell, i, orig.record(i));
}

// remove_flagged must preserve survivor order — the sort's invariance proof
// leans on every compaction in the pipeline being stable.
TEST(ParticleSort, RemoveFlaggedIsStable) {
  ParticleStore store = make_store(40, 3);
  const ParticleStore orig = store;
  std::vector<std::uint8_t> flags(store.size(), 0);
  for (std::size_t i = 0; i < store.size(); i += 3) flags[i] = 1;

  const std::size_t removed = store.remove_flagged(flags);
  EXPECT_EQ(removed, 14u);  // ceil(40 / 3)
  ASSERT_EQ(store.size(), orig.size() - removed);

  std::size_t k = 0;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    if (i % 3 == 0) continue;
    expect_same_particle(store, k, orig.record(i));
    ++k;
  }
}

TEST(ParticleSort, CheckpointRoundTripsSortedSoALayout) {
  const std::int32_t num_cells = 8;
  ParticleStore store = make_store(77, num_cells);
  SortScratch scratch;
  store.sort_by_cell(num_cells, scratch);

  std::stringstream ss;
  store.save(ss);
  ParticleStore loaded;
  loaded.load(ss);

  ASSERT_EQ(loaded.size(), store.size());
  for (std::size_t i = 0; i < store.size(); ++i)
    expect_same_particle(loaded, i, store.record(i));
}

// The canonical per-cell traversal order is ascending particle id, NOT
// store slot: slots are memory-layout history (a particle changing cell
// intra-rank keeps its slot), ids are layout-independent. Build a store
// whose slot order disagrees with id order and check the index ignores it.
TEST(ParticleSort, CellIndexSortsEachCellById) {
  const std::int32_t num_cells = 4;
  ParticleStore store;
  Rng rng(29);
  const std::size_t n = 60;
  for (std::size_t i = 0; i < n; ++i) {
    ParticleRecord p;
    const double d = static_cast<double>(i);
    p.position = {d, d, d};
    p.velocity = {-d, -d, -d};
    p.id = static_cast<std::int64_t>(n - 1 - i);  // descending in slot order
    p.species = 0;
    p.cell = static_cast<std::int32_t>(rng.next_u64() %
                                       static_cast<std::uint64_t>(num_cells));
    store.add(p);
  }

  const CellIndex index(store, num_cells);
  std::size_t seen = 0;
  for (std::int32_t c = 0; c < num_cells; ++c) {
    const auto parts = index.particles_in(c);
    for (std::size_t k = 0; k < parts.size(); ++k) {
      EXPECT_EQ(store.cells()[parts[k]], c);
      if (k > 0)
        EXPECT_LT(store.ids()[parts[k - 1]], store.ids()[parts[k]])
            << "cell " << c << " item " << k;
    }
    seen += parts.size();
  }
  EXPECT_EQ(seen, n);
}

TEST(ParticleSort, CellIndexSpansAreContiguousAfterSort) {
  const std::int32_t num_cells = 5;
  ParticleStore store = make_store(90, num_cells);
  SortScratch scratch;
  store.sort_by_cell(num_cells, scratch);

  const CellIndex index(store, num_cells);
  std::int32_t next = 0;
  for (std::int32_t c = 0; c < num_cells; ++c) {
    const auto parts = index.particles_in(c);
    for (const std::int32_t p : parts) EXPECT_EQ(p, next++);
  }
  EXPECT_EQ(next, static_cast<std::int32_t>(store.size()));
}

}  // namespace
}  // namespace dsmcpic::dsmc
