// Tests for the observability subsystem (DESIGN.md §2f): the JsonWriter
// underneath run reports, the host wall-clock profiler, the health
// auditor's unit-level invariant checks, and — most importantly — the
// end-to-end claims: a fault-injected solver run flags EXACTLY the
// invariant the fault breaks, and attaching auditor + profiler perturbs
// nothing (bit-identical diagnostics and virtual clocks, audits on or
// off, across exec modes and kernel-thread counts).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/datasets.hpp"
#include "core/solver.hpp"
#include "obs/health_auditor.hpp"
#include "obs/host_profiler.hpp"
#include "obs/run_report.hpp"
#include "support/error.hpp"
#include "support/log.hpp"
#include "trace/json_writer.hpp"

namespace dsmcpic::core {
namespace {

// ---- JsonWriter -------------------------------------------------------------

TEST(JsonWriter, NestedDocumentHasExpectedBytes) {
  std::ostringstream os;
  {
    trace::JsonWriter w(os);
    w.begin_object();
    w.kv("name", "run");
    w.kv("steps", 8);
    w.key("phases");
    w.begin_array();
    w.begin_object();
    w.kv("phase", "Inject");
    w.kv("busy", 1.5);
    w.end_object();
    w.value(std::int64_t{7});
    w.end_array();
    w.key("empty");
    w.begin_object();
    w.end_object();
    w.kv("ok", true);
    w.end_object();
  }
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"name\": \"run\",\n"
            "  \"steps\": 8,\n"
            "  \"phases\": [\n"
            "    {\n"
            "      \"phase\": \"Inject\",\n"
            "      \"busy\": 1.5\n"
            "    },\n"
            "    7\n"
            "  ],\n"
            "  \"empty\": {},\n"
            "  \"ok\": true\n"
            "}\n");
}

TEST(JsonWriter, EscapesStringsAndControlChars) {
  std::ostringstream os;
  {
    trace::JsonWriter w(os);
    w.begin_object();
    w.kv("k", "a\"b\\c\n\t");
    w.kv("ctl", std::string_view("\x01", 1));
    w.end_object();
  }
  EXPECT_NE(os.str().find("\"a\\\"b\\\\c\\n\\t\""), std::string::npos);
  EXPECT_NE(os.str().find("\"\\u0001\""), std::string::npos);
}

TEST(JsonWriter, IdenticalInputsProduceIdenticalBytes) {
  const auto build = [] {
    std::ostringstream os;
    trace::JsonWriter w(os);
    w.begin_object();
    w.kv("pi", 3.14159);
    w.kv("n", std::uint64_t{42});
    w.end_object();
    return os.str();
  };
  EXPECT_EQ(build(), build());
}

TEST(JsonWriter, DestructorClosesOpenScopesAndDanglingKey) {
  std::ostringstream os;
  {
    trace::JsonWriter w(os);
    w.begin_object();
    w.key("outer");
    w.begin_array();
    w.value(std::int64_t{1});
    w.end_array();
    w.key("dangling");
    // destructor: null for the dangling key, then closes the object
  }
  EXPECT_EQ(os.str(),
            "{\n"
            "  \"outer\": [\n"
            "    1\n"
            "  ],\n"
            "  \"dangling\": null\n"
            "}\n");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream os;
  trace::JsonWriter w(os);
  w.begin_object();
  EXPECT_THROW(w.value(std::int64_t{1}), Error);  // object value without key
  EXPECT_THROW(w.end_array(), Error);             // not in an array
}

// ---- HostProfiler -----------------------------------------------------------

TEST(HostProfiler, AggregatesWithNearestRankPercentiles) {
  obs::HostProfiler prof;
  for (const double ms : {1.0, 2.0, 3.0, 4.0}) prof.record("move", ms);
  const auto stats = prof.stats();
  ASSERT_EQ(stats.count("move"), 1u);
  const auto& s = stats.at("move");
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.total_ms, 10.0);
  EXPECT_DOUBLE_EQ(s.min_ms, 1.0);
  EXPECT_DOUBLE_EQ(s.p50_ms, 2.0);  // nearest rank: ceil(0.5 * 4) - 1
  EXPECT_DOUBLE_EQ(s.p95_ms, 4.0);  // ceil(0.95 * 4) - 1
  EXPECT_DOUBLE_EQ(s.max_ms, 4.0);
  EXPECT_EQ(prof.sample_count(), 4);
  prof.reset();
  EXPECT_EQ(prof.sample_count(), 0);
}

TEST(HostProfiler, ScopesBuildHierarchicalNames) {
  obs::HostProfiler prof;
  {
    const obs::HostProfiler::Scope outer(&prof, "rebalance");
    const obs::HostProfiler::Scope inner(&prof, "exchange");
  }
  {
    const obs::HostProfiler::Scope top(&prof, "exchange");
  }
  const auto stats = prof.stats();
  EXPECT_EQ(stats.count("rebalance"), 1u);
  EXPECT_EQ(stats.count("rebalance/exchange"), 1u);
  EXPECT_EQ(stats.count("exchange"), 1u);
  EXPECT_EQ(prof.sample_count(), 3);
}

TEST(HostProfiler, NullProfilerScopeIsANoOp) {
  const obs::HostProfiler::Scope scope(nullptr, "anything");  // must not crash
}

TEST(HostProfiler, ConcurrentScopesStayPerThread) {
  obs::HostProfiler prof;
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&prof] {
      for (int i = 0; i < kIters; ++i) {
        const obs::HostProfiler::Scope outer(&prof, "outer");
        const obs::HostProfiler::Scope inner(&prof, "inner");
      }
    });
  for (auto& th : threads) th.join();
  const auto stats = prof.stats();
  // If the nesting stack were shared across threads, some samples would
  // land under mixed paths like "outer/outer/inner".
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats.at("outer").count, kThreads * kIters);
  EXPECT_EQ(stats.at("outer/inner").count, kThreads * kIters);
}

// ---- HealthAuditor: unit level ----------------------------------------------

TEST(HealthAuditor, SeverityAndInvariantNamesRoundTrip) {
  EXPECT_EQ(obs::parse_audit_severity("warn"), obs::AuditSeverity::kWarnOnly);
  EXPECT_EQ(obs::parse_audit_severity("abort"), obs::AuditSeverity::kAbort);
  EXPECT_EQ(obs::parse_audit_severity("count"), obs::AuditSeverity::kCountOnly);
  EXPECT_THROW(obs::parse_audit_severity("loud"), Error);
  EXPECT_STREQ(obs::invariant_name(obs::Invariant::kParticleBooks),
               "particle_books");
  EXPECT_STREQ(obs::invariant_name(obs::Invariant::kMailboxDrained),
               "mailbox_drained");
}

TEST(HealthAuditor, CleanStepLedgerBalances) {
  obs::HealthAuditor a({obs::AuditSeverity::kAbort});
  a.begin_step(0, 100);
  a.on_injected(5);
  a.on_spawned(2);
  a.on_flagged(3);
  a.check_exchange("dsmc", 107, 3, 104);
  a.end_step(104, 0);
  EXPECT_GT(a.report().checks(), 0);
  EXPECT_EQ(a.report().violations(), 0);
}

TEST(HealthAuditor, CountSeverityTalliesFirstViolation) {
  obs::HealthAuditor a({obs::AuditSeverity::kCountOnly});
  a.begin_step(3, 10);
  a.check_exchange("dsmc", 10, 1, 10);  // dropped 1 but count unchanged
  const obs::AuditReport& r = a.report();
  EXPECT_EQ(r.by_invariant[static_cast<int>(
                               obs::Invariant::kExchangeConservation)]
                .violations,
            1);
  EXPECT_EQ(r.first_violation_step, 3);
  EXPECT_NE(r.first_violation.find("exchange_conservation"),
            std::string::npos);
}

TEST(HealthAuditor, AbortSeverityThrows) {
  obs::HealthAuditor a({obs::AuditSeverity::kAbort});
  a.begin_step(0, 10);
  EXPECT_THROW(a.check_charge(1.0, 2.0), Error);
}

TEST(HealthAuditor, WarnSeverityLogsThroughAuditComponent) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  obs::HealthAuditor a({obs::AuditSeverity::kWarnOnly});
  a.begin_step(0, 10);
  testing::internal::CaptureStderr();
  a.end_step(10, /*undelivered_messages=*/2);  // no throw
  const std::string err = testing::internal::GetCapturedStderr();
  set_log_level(saved);
  EXPECT_NE(err.find("[audit]"), std::string::npos) << err;
  EXPECT_NE(err.find("mailbox_drained"), std::string::npos) << err;
  EXPECT_EQ(a.report().violations(), 1);
}

TEST(HealthAuditor, ChargeBalanceUsesRelativeTolerance) {
  obs::AuditConfig cfg;
  cfg.severity = obs::AuditSeverity::kCountOnly;
  cfg.charge_rel_tol = 1e-9;
  obs::HealthAuditor a(cfg);
  a.begin_step(0, 0);
  a.check_charge(1e-12, 1e-12 * (1.0 + 1e-10));  // within tol
  a.check_charge(1.0, 1.0 + 1e-6);               // out of tol
  a.check_charge(0.0, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(a.report()
                .by_invariant[static_cast<int>(obs::Invariant::kChargeBalance)]
                .violations,
            2);
}

TEST(HealthAuditor, PoissonResidualBounds) {
  obs::HealthAuditor a({obs::AuditSeverity::kCountOnly});
  a.begin_step(0, 0);
  a.check_poisson(10, 1e-9, /*rel_tol=*/1e-8, /*converged=*/true);   // ok
  a.check_poisson(50, 1e-4, /*rel_tol=*/1e-8, /*converged=*/false);  // ok
  a.check_poisson(50, 1e-2, /*rel_tol=*/1e-8, /*converged=*/false);  // > bound
  EXPECT_EQ(a.report()
                .by_invariant[static_cast<int>(
                    obs::Invariant::kPoissonResidual)]
                .violations,
            1);
}

TEST(HealthAuditor, OwnershipPartitionMustBeExact) {
  obs::HealthAuditor a({obs::AuditSeverity::kCountOnly});
  a.begin_step(0, 0);
  const std::vector<std::int32_t> owner = {0, 1, 0, 1};
  a.check_ownership(owner, 2, {{0, 2}, {1, 3}});      // exact
  a.check_ownership(owner, 2, {{0}, {1, 3}});         // cell 2 unlisted
  a.check_ownership(owner, 2, {{0, 2, 3}, {1, 3}});   // cell 3 listed twice
  EXPECT_EQ(a.report()
                .by_invariant[static_cast<int>(obs::Invariant::kOwnership)]
                .violations,
            2);
}

// ---- end-to-end: fault injection & zero perturbation ------------------------

SolverConfig tiny_config() {
  Dataset d = make_dataset(1, /*particle_scale=*/0.25);
  d.config.nozzle.radial_divisions = 3;
  d.config.nozzle.axial_divisions = 6;
  return d.config;
}

struct RunOutcome {
  std::uint64_t digest = 0;
  obs::AuditReport audit;
  std::int64_t profile_samples = 0;
};

std::uint64_t history_digest(const CoupledSolver& solver) {
  // FNV-1a over every diagnostic field and the final virtual clocks —
  // any perturbation of the deterministic state shows up here.
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  for (const StepDiagnostics& s : solver.history()) {
    mix(static_cast<std::uint64_t>(s.dsmc_step));
    for (const std::int64_t p : s.particles_per_rank)
      mix(static_cast<std::uint64_t>(p));
    mix(static_cast<std::uint64_t>(s.total_h));
    mix(static_cast<std::uint64_t>(s.total_hplus));
    mix(static_cast<std::uint64_t>(s.injected));
    mix(static_cast<std::uint64_t>(s.migrated_dsmc));
    mix(static_cast<std::uint64_t>(s.migrated_pic));
    mix(static_cast<std::uint64_t>(s.collisions));
    mix(static_cast<std::uint64_t>(s.ionizations));
    mix(static_cast<std::uint64_t>(s.recombinations));
    mix(static_cast<std::uint64_t>(s.exited_dsmc));
    mix(static_cast<std::uint64_t>(s.exited_pic));
    mix(static_cast<std::uint64_t>(s.pic_lost));
    mix(static_cast<std::uint64_t>(s.poisson_iterations));
    mix(std::bit_cast<std::uint64_t>(s.lii));
    mix(s.rebalanced ? 1u : 0u);
  }
  for (int r = 0; r < solver.runtime().size(); ++r)
    mix(std::bit_cast<std::uint64_t>(solver.runtime().clock(r)));
  mix(std::bit_cast<std::uint64_t>(solver.runtime().total_time()));
  return h;
}

RunOutcome run_solver(bool audited, obs::AuditSeverity severity,
                      FaultInjection fault = FaultInjection::kNone,
                      par::ExecMode mode = par::ExecMode::kSequential,
                      int exec_threads = 0, int kernel_threads = 1,
                      int steps = 6, double threshold = 0.0) {
  SolverConfig cfg = tiny_config();
  cfg.fault = fault;
  ParallelConfig par;
  par.nranks = 6;
  par.balance.enabled = true;
  par.balance.period = 3;
  if (threshold > 0.0) par.balance.threshold = threshold;
  par.exec_mode = mode;
  par.exec_threads = exec_threads;
  par.kernel_threads = kernel_threads;
  obs::HealthAuditor auditor({severity});
  obs::HostProfiler prof;
  CoupledSolver solver(cfg, par);
  if (audited) {
    solver.set_auditor(&auditor);
    solver.set_host_profiler(&prof);
  }
  solver.run(steps);
  RunOutcome out;
  out.digest = history_digest(solver);
  out.audit = auditor.report();
  out.profile_samples = prof.sample_count();
  return out;
}

std::int64_t violations_of(const obs::AuditReport& r, obs::Invariant inv) {
  return r.by_invariant[static_cast<int>(inv)].violations;
}

TEST(AuditFaults, DropParticleFlagsExactlyParticleBooks) {
  const RunOutcome out = run_solver(/*audited=*/true,
                                    obs::AuditSeverity::kCountOnly,
                                    FaultInjection::kDropParticle);
  EXPECT_GT(violations_of(out.audit, obs::Invariant::kParticleBooks), 0);
  for (const obs::Invariant inv :
       {obs::Invariant::kExchangeConservation, obs::Invariant::kChargeBalance,
        obs::Invariant::kPoissonResidual, obs::Invariant::kOwnership,
        obs::Invariant::kMailboxDrained, obs::Invariant::kRebalanceCost})
    EXPECT_EQ(violations_of(out.audit, inv), 0)
        << obs::invariant_name(inv) << " flagged by the wrong fault";
  EXPECT_NE(out.audit.first_violation.find("particle_books"),
            std::string::npos)
      << out.audit.first_violation;
}

TEST(AuditFaults, SkewDepositFlagsExactlyChargeBalance) {
  const RunOutcome out = run_solver(/*audited=*/true,
                                    obs::AuditSeverity::kCountOnly,
                                    FaultInjection::kSkewDeposit);
  EXPECT_GT(violations_of(out.audit, obs::Invariant::kChargeBalance), 0);
  for (const obs::Invariant inv :
       {obs::Invariant::kParticleBooks, obs::Invariant::kExchangeConservation,
        obs::Invariant::kPoissonResidual, obs::Invariant::kOwnership,
        obs::Invariant::kMailboxDrained, obs::Invariant::kRebalanceCost})
    EXPECT_EQ(violations_of(out.audit, inv), 0)
        << obs::invariant_name(inv) << " flagged by the wrong fault";
}

TEST(AuditFaults, SkewRebalanceCostFlagsExactlyRebalanceCost) {
  // The fault inflates the policy's cost estimate x1000 at the audit hook
  // only — the run itself is untouched (verified by the digest below). A
  // low threshold and a longer run guarantee at least two rebalances, so at
  // least one check happens with a learned estimate.
  const RunOutcome out = run_solver(/*audited=*/true,
                                    obs::AuditSeverity::kCountOnly,
                                    FaultInjection::kSkewRebalanceCost,
                                    par::ExecMode::kSequential,
                                    /*exec_threads=*/0, /*kernel_threads=*/1,
                                    /*steps=*/14, /*threshold=*/1.01);
  EXPECT_GT(violations_of(out.audit, obs::Invariant::kRebalanceCost), 0);
  for (const obs::Invariant inv :
       {obs::Invariant::kParticleBooks, obs::Invariant::kExchangeConservation,
        obs::Invariant::kChargeBalance, obs::Invariant::kPoissonResidual,
        obs::Invariant::kOwnership, obs::Invariant::kMailboxDrained})
    EXPECT_EQ(violations_of(out.audit, inv), 0)
        << obs::invariant_name(inv) << " flagged by the wrong fault";
  EXPECT_NE(out.audit.first_violation.find("rebalance_cost"),
            std::string::npos)
      << out.audit.first_violation;

  // Audit-only fault: the simulation trajectory must be identical to the
  // unfaulted run under the same knobs.
  const RunOutcome clean = run_solver(/*audited=*/false,
                                      obs::AuditSeverity::kCountOnly,
                                      FaultInjection::kNone,
                                      par::ExecMode::kSequential,
                                      /*exec_threads=*/0, /*kernel_threads=*/1,
                                      /*steps=*/14, /*threshold=*/1.01);
  EXPECT_EQ(out.digest, clean.digest);
}

TEST(AuditFaults, CleanRunPassesRebalanceCostInvariant) {
  // Same aggressive-rebalance config without the fault: the policy's
  // estimate must track the measured cost within the audit factor.
  const RunOutcome out = run_solver(/*audited=*/true,
                                    obs::AuditSeverity::kCountOnly,
                                    FaultInjection::kNone,
                                    par::ExecMode::kSequential,
                                    /*exec_threads=*/0, /*kernel_threads=*/1,
                                    /*steps=*/14, /*threshold=*/1.01);
  EXPECT_EQ(violations_of(out.audit, obs::Invariant::kRebalanceCost), 0);
  EXPECT_GT(out.audit.by_invariant[static_cast<int>(
                obs::Invariant::kRebalanceCost)]
                .checks,
            0)
      << "the rebalance-cost invariant was never exercised";
}

TEST(AuditFaults, AbortSeverityStopsTheRun) {
  EXPECT_THROW(run_solver(/*audited=*/true, obs::AuditSeverity::kAbort,
                          FaultInjection::kDropParticle),
               Error);
}

TEST(AuditPerturbation, AuditsAndProfilerAreInvisibleInDigests) {
  const RunOutcome plain =
      run_solver(/*audited=*/false, obs::AuditSeverity::kAbort);
  const RunOutcome audited =
      run_solver(/*audited=*/true, obs::AuditSeverity::kAbort);
  EXPECT_EQ(audited.digest, plain.digest);
  EXPECT_EQ(audited.audit.violations(), 0);
  EXPECT_GT(audited.audit.checks(), 0);
  EXPECT_GT(audited.profile_samples, 0);
}

TEST(AuditPerturbation, HoldsUnderThreadedExecAndKernelThreads) {
  const RunOutcome plain =
      run_solver(/*audited=*/false, obs::AuditSeverity::kAbort);
  const RunOutcome audited =
      run_solver(/*audited=*/true, obs::AuditSeverity::kAbort,
                 FaultInjection::kNone, par::ExecMode::kThreaded,
                 /*exec_threads=*/4, /*kernel_threads=*/2);
  EXPECT_EQ(audited.digest, plain.digest);
  EXPECT_EQ(audited.audit.violations(), 0);
  EXPECT_GT(audited.profile_samples, 0);
}

// ---- RunReport --------------------------------------------------------------

obs::RunReport sample_report(const obs::AuditReport* audit,
                             const obs::HostProfiler* prof) {
  obs::RunReport rep;
  rep.config.bench = "bench_under_test";
  rep.config.case_name = "ranks=4 strategy=dc balance=on";
  rep.config.ranks = 4;
  rep.config.steps = 8;
  rep.config.machine = "tianhe2";
  rep.config.seed = 42;
  rep.config.exec_mode = "sequential";
  rep.config.kernel_threads = 1;
  rep.config.strategy = "dc";
  rep.config.balance = true;
  rep.config.audit_severity = audit ? "warn" : "off";
  rep.total_virtual_time = 12.5;
  rep.phases.push_back({"Inject", 1.0, 0.5, 3.0, 24, 4096.0});
  rep.steps.final_particles = 1000;
  rep.steps.injected = 1200;
  rep.audit = audit;
  rep.profiler = prof;
  return rep;
}

TEST(RunReport, SerializesSchemaAuditAndProfileSections) {
  obs::HealthAuditor auditor({obs::AuditSeverity::kCountOnly});
  auditor.begin_step(0, 10);
  auditor.end_step(10, 0);
  obs::HostProfiler prof;
  prof.record("move", 1.25);
  std::ostringstream os;
  obs::write_run_report(os, sample_report(&auditor.report(), &prof));
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"schema\": \"dsmcpic.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"bench\": \"bench_under_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"phase\": \"Inject\""), std::string::npos);
  EXPECT_NE(doc.find("\"particle_books\""), std::string::npos);
  EXPECT_NE(doc.find("\"move\""), std::string::npos);
  // Both optional sections enabled.
  EXPECT_EQ(doc.find("\"enabled\": false"), std::string::npos);
}

TEST(RunReport, DetachedSectionsRenderDisabledAndBytesAreDeterministic) {
  const auto build = [] {
    std::ostringstream os;
    obs::write_run_report(os, sample_report(nullptr, nullptr));
    return os.str();
  };
  const std::string doc = build();
  EXPECT_NE(doc.find("\"enabled\": false"), std::string::npos);
  EXPECT_EQ(doc, build());
}

TEST(RunReport, FileWriterWritesParseableDocument) {
  const std::string path = testing::TempDir() + "obs_run_report_test.json";
  obs::write_run_report_file(path, sample_report(nullptr, nullptr));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find(obs::kRunReportSchema), std::string::npos);
}

}  // namespace
}  // namespace dsmcpic::core
