// CLI behaviour of the bench binaries (bench/common): unknown flags and
// stray positionals must exit with usage instead of being silently
// ignored, and the common flags (including --trace) must land in
// BenchOptions.

#include <gtest/gtest.h>

#include "common.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"

namespace dsmcpic {
namespace {

TEST(BenchCli, UnknownFlagExitsWithUsage) {
  Cli cli("bench under test");
  bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
  const char* argv[] = {"prog", "--bogus", "7"};
  EXPECT_EXIT(bench::parse_or_usage(cli, 3, argv),
              testing::ExitedWithCode(2), "unknown flag --bogus");
}

TEST(BenchCli, MistypedSingleDashFlagExits) {
  Cli cli("bench under test");
  bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
  const char* argv[] = {"prog", "-steps", "3"};
  EXPECT_EXIT(bench::parse_or_usage(cli, 3, argv),
              testing::ExitedWithCode(2), "unknown flag -steps");
}

TEST(BenchCli, StrayPositionalExits) {
  Cli cli("bench under test");
  bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
  const char* argv[] = {"prog", "--steps", "3", "leftover"};
  EXPECT_EXIT(bench::parse_or_usage(cli, 4, argv),
              testing::ExitedWithCode(2), "unexpected argument 'leftover'");
}

TEST(BenchCli, HelpReturnsFalse) {
  Cli cli("bench under test");
  bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(bench::parse_or_usage(cli, 2, argv));
}

TEST(BenchCli, CommonFlagsReachBenchOptions) {
  Cli cli("bench under test");
  bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
  const char* argv[] = {"prog",           "--ranks",  "2,8",
                        "--steps",        "5",        "--trace",
                        "/tmp/out.json",  "--exec-mode", "threaded",
                        "--kernel-threads", "4",
                        "--report", "/tmp/report.json",
                        "--audit", "warn"};
  ASSERT_TRUE(bench::parse_or_usage(cli, 15, argv));
  const bench::BenchOptions o = flags.finish();
  EXPECT_EQ(o.ranks, (std::vector<int>{2, 8}));
  EXPECT_EQ(o.steps, 5);
  EXPECT_EQ(o.trace_path, "/tmp/out.json");
  EXPECT_EQ(o.exec_mode, par::ExecMode::kThreaded);
  EXPECT_EQ(o.kernel_threads, 4);
  EXPECT_EQ(o.bench_name, "bench_under_test");
  EXPECT_EQ(o.report_path, "/tmp/report.json");
  EXPECT_EQ(o.audit, "warn");
}

TEST(BenchCli, AuditDefaultsOffAndRejectsTypos) {
  {
    Cli cli("bench under test");
    bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
    const char* argv[] = {"prog"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 1, argv));
    EXPECT_EQ(flags.finish().audit, "off");
    EXPECT_TRUE(flags.finish().report_path.empty());
  }
  {
    Cli cli("bench under test");
    bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
    const char* argv[] = {"prog", "--audit", "wrn"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 3, argv));
    EXPECT_THROW(flags.finish(), Error);
  }
}

TEST(BenchCli, CostModelAndPolicyFlagsReachBenchOptions) {
  Cli cli("bench under test");
  bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
  const char* argv[] = {"prog",      "--cost-model", "timer",
                        "--policy",  "lookahead",    "--horizon", "7"};
  ASSERT_TRUE(bench::parse_or_usage(cli, 7, argv));
  const bench::BenchOptions o = flags.finish();
  EXPECT_EQ(o.cost_model, "timer");
  EXPECT_EQ(o.policy, "lookahead");
  EXPECT_EQ(o.horizon, 7);
}

TEST(BenchCli, CostModelDefaultsStaticAndRejectsTypos) {
  {
    Cli cli("bench under test");
    bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
    const char* argv[] = {"prog"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 1, argv));
    const bench::BenchOptions o = flags.finish();
    EXPECT_EQ(o.cost_model, "static");
    EXPECT_EQ(o.policy, "threshold");
  }
  {
    Cli cli("bench under test");
    bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
    const char* argv[] = {"prog", "--cost-model", "wallclock"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 3, argv));
    EXPECT_THROW(flags.finish(), Error);
  }
  {
    Cli cli("bench under test");
    bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
    const char* argv[] = {"prog", "--horizon", "-1"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 3, argv));
    EXPECT_THROW(flags.finish(), Error);
  }
}

TEST(BenchCli, FleetFlagsReachFleetBenchOptions) {
  Cli cli("bench under test");
  bench::CommonFlags flags(cli, "bench_fleet", "6", 8);
  bench::FleetFlags fleet(cli);
  const char* argv[] = {"prog",
                        "--fleet-slots",     "3",
                        "--fleet-runs",      "5",
                        "--fleet-scenarios", "nozzle,reentry",
                        "--fleet-lease",     "2",
                        "--results-dir",     "/tmp/fleet_out",
                        "--out",             "/tmp/BENCH_fleet.json"};
  ASSERT_TRUE(bench::parse_or_usage(cli, 13, argv));
  const bench::FleetBenchOptions o = fleet.finish();
  EXPECT_EQ(o.slots, 3);
  EXPECT_EQ(o.runs, 5);
  EXPECT_EQ(o.scenarios, "nozzle,reentry");
  EXPECT_EQ(o.lease, 2);
  EXPECT_EQ(o.results_dir, "/tmp/fleet_out");
  EXPECT_EQ(o.out, "/tmp/BENCH_fleet.json");
}

TEST(BenchCli, UnknownFleetFlagExitsWithUsage) {
  Cli cli("bench under test");
  bench::CommonFlags flags(cli, "bench_fleet", "6", 8);
  bench::FleetFlags fleet(cli);
  const char* argv[] = {"prog", "--fleet-slot", "3"};
  EXPECT_EXIT(bench::parse_or_usage(cli, 3, argv),
              testing::ExitedWithCode(2), "unknown flag --fleet-slot");
}

TEST(BenchCli, FleetFlagDefaultsAndValidation) {
  {
    Cli cli("bench under test");
    bench::FleetFlags fleet(cli);
    const char* argv[] = {"prog"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 1, argv));
    const bench::FleetBenchOptions o = fleet.finish();
    EXPECT_EQ(o.slots, 4);
    EXPECT_EQ(o.runs, 8);
    EXPECT_TRUE(o.scenarios.empty());
    EXPECT_EQ(o.lease, 0);
  }
  {
    Cli cli("bench under test");
    bench::FleetFlags fleet(cli);
    const char* argv[] = {"prog", "--fleet-slots", "0"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 3, argv));
    EXPECT_THROW(fleet.finish(), Error);
  }
  {
    // Preemption needs a checkpoint on disk: lease without results dir.
    Cli cli("bench under test");
    bench::FleetFlags fleet(cli);
    const char* argv[] = {"prog", "--fleet-lease", "2"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 3, argv));
    EXPECT_THROW(fleet.finish(), Error);
  }
}

TEST(BenchCli, MetricsFlagsReachBenchOptions) {
  Cli cli("bench under test");
  bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
  const char* argv[] = {"prog", "--metrics-dir",      "/tmp/metrics",
                        "--metrics-interval", "5",    "--flight-recorder",
                        "17"};
  ASSERT_TRUE(bench::parse_or_usage(cli, 7, argv));
  const bench::BenchOptions o = flags.finish();
  EXPECT_EQ(o.metrics_dir, "/tmp/metrics");
  EXPECT_EQ(o.metrics_interval, 5);
  EXPECT_EQ(o.flight_recorder, 17);
}

TEST(BenchCli, MetricsFlagsDefaultAndRejectNonPositive) {
  {
    Cli cli("bench under test");
    bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
    const char* argv[] = {"prog"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 1, argv));
    const bench::BenchOptions o = flags.finish();
    EXPECT_TRUE(o.metrics_dir.empty());
    EXPECT_EQ(o.metrics_interval, 10);
    EXPECT_EQ(o.flight_recorder, 32);
  }
  {
    Cli cli("bench under test");
    bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
    const char* argv[] = {"prog", "--metrics-interval", "0"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 3, argv));
    EXPECT_THROW(flags.finish(), Error);
  }
  {
    Cli cli("bench under test");
    bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
    const char* argv[] = {"prog", "--flight-recorder", "-3"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 3, argv));
    EXPECT_THROW(flags.finish(), Error);
  }
}

TEST(BenchCli, MistypedMetricsFlagExitsWithUsage) {
  Cli cli("bench under test");
  bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
  const char* argv[] = {"prog", "--metric-interval", "5"};
  EXPECT_EXIT(bench::parse_or_usage(cli, 3, argv),
              testing::ExitedWithCode(2), "unknown flag --metric-interval");
}

// The bench mains run finish() through finish_or_usage, so a value that
// parses but fails validation exits 2 with the message — it must never
// escape to std::terminate.
TEST(BenchCli, FinishOrUsageExitsTwoOnValidationError) {
  Cli cli("bench under test");
  bench::CommonFlags flags(cli, "bench_under_test", "4", 3);
  const char* argv[] = {"prog", "--metrics-interval", "0"};
  ASSERT_TRUE(bench::parse_or_usage(cli, 3, argv));
  EXPECT_EXIT(bench::finish_or_usage([&] { return flags.finish(); }),
              testing::ExitedWithCode(2), "--metrics-interval must be >= 1");
}

TEST(BenchCli, FleetParkFlagReachesOptionsAndValidates) {
  {
    Cli cli("bench under test");
    bench::FleetFlags fleet(cli);
    const char* argv[] = {"prog", "--fleet-park", "3", "--results-dir",
                          "/tmp/fleet_out"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 5, argv));
    EXPECT_EQ(fleet.finish().park, 3);
  }
  {
    // Parking checkpoints to disk, so it needs a results dir too.
    Cli cli("bench under test");
    bench::FleetFlags fleet(cli);
    const char* argv[] = {"prog", "--fleet-park", "3"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 3, argv));
    EXPECT_THROW(fleet.finish(), Error);
  }
  {
    Cli cli("bench under test");
    bench::FleetFlags fleet(cli);
    const char* argv[] = {"prog", "--fleet-park", "-1"};
    ASSERT_TRUE(bench::parse_or_usage(cli, 3, argv));
    EXPECT_THROW(fleet.finish(), Error);
  }
}

TEST(BenchCli, TraceCasePathInsertsBeforeExtension) {
  EXPECT_EQ(bench::trace_case_path("out.json", 0), "out.json");
  EXPECT_EQ(bench::trace_case_path("out.json", 1), "out.case1.json");
  EXPECT_EQ(bench::trace_case_path("dir.v2/out", 2), "dir.v2/out.case2");
  EXPECT_EQ(bench::trace_case_path("noext", 3), "noext.case3");
}

}  // namespace
}  // namespace dsmcpic
