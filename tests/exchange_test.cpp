#include <gtest/gtest.h>

#include <map>
#include <set>

#include "exchange/exchange.hpp"
#include "par/machine.hpp"
#include "par/runtime.hpp"
#include "support/rng.hpp"

namespace dsmcpic::exchange {
namespace {

using dsmc::ParticleRecord;
using dsmc::ParticleStore;

struct World {
  par::Runtime rt;
  std::vector<ParticleStore> stores;
  std::vector<std::vector<std::uint8_t>> removed;
  std::vector<std::int32_t> owner;  // cell -> rank

  explicit World(int nranks, int ncells)
      : rt(nranks, par::Topology(par::MachineProfile::tianhe2(), nranks)),
        stores(nranks),
        removed(nranks),
        owner(ncells) {
    for (int c = 0; c < ncells; ++c) owner[c] = c % nranks;
  }

  void scatter_random_particles(int per_rank, std::uint64_t seed) {
    Rng rng(seed);
    std::int64_t id = 0;
    for (int r = 0; r < rt.size(); ++r) {
      for (int i = 0; i < per_rank; ++i) {
        ParticleRecord p;
        p.cell = static_cast<std::int32_t>(rng.uniform_index(owner.size()));
        p.id = id++;
        p.species = static_cast<std::int32_t>(rng.uniform_index(2));
        p.position = {rng.uniform(), rng.uniform(), rng.uniform()};
        p.velocity = {rng.normal(), rng.normal(), rng.normal()};
        stores[r].add(p);
      }
      removed[r].assign(stores[r].size(), 0);
    }
  }

  std::int64_t total() const {
    std::int64_t n = 0;
    for (const auto& s : stores) n += static_cast<std::int64_t>(s.size());
    return n;
  }
};

class ExchangeTest
    : public ::testing::TestWithParam<std::tuple<Strategy, int>> {};

TEST_P(ExchangeTest, ParticlesLandOnOwningRanks) {
  const auto [strategy, nranks] = GetParam();
  World w(nranks, 4 * nranks);
  w.scatter_random_particles(50, 123);
  const std::int64_t before = w.total();

  const ExchangeStats st = exchange_particles(w.rt, "exc", strategy, w.stores,
                                              w.removed, w.owner);
  EXPECT_EQ(w.total(), before);  // conservation
  EXPECT_EQ(st.migrated + st.kept, before);
  for (int r = 0; r < nranks; ++r) {
    ASSERT_EQ(w.removed[r].size(), w.stores[r].size());
    for (std::size_t i = 0; i < w.stores[r].size(); ++i) {
      EXPECT_EQ(w.owner[w.stores[r].cells()[i]], r);
      EXPECT_EQ(w.removed[r][i], 0);
    }
  }
}

TEST_P(ExchangeTest, RecordsSurviveIntact) {
  const auto [strategy, nranks] = GetParam();
  World w(nranks, 3 * nranks);
  w.scatter_random_particles(30, 99);
  // Snapshot every particle by id.
  std::map<std::int64_t, ParticleRecord> snapshot;
  for (const auto& s : w.stores)
    for (std::size_t i = 0; i < s.size(); ++i)
      snapshot[s.ids()[i]] = s.record(i);

  exchange_particles(w.rt, "exc", strategy, w.stores, w.removed, w.owner);

  std::set<std::int64_t> seen;
  for (const auto& s : w.stores) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      const ParticleRecord got = s.record(i);
      ASSERT_TRUE(snapshot.count(got.id));
      EXPECT_TRUE(seen.insert(got.id).second) << "duplicate id " << got.id;
      const ParticleRecord& want = snapshot[got.id];
      EXPECT_EQ(got.position, want.position);
      EXPECT_EQ(got.velocity, want.velocity);
      EXPECT_EQ(got.species, want.species);
      EXPECT_EQ(got.cell, want.cell);
    }
  }
  EXPECT_EQ(seen.size(), snapshot.size());
}

TEST_P(ExchangeTest, RemovedParticlesAreDropped) {
  const auto [strategy, nranks] = GetParam();
  World w(nranks, 2 * nranks);
  w.scatter_random_particles(20, 7);
  const std::int64_t before = w.total();
  // Flag every third particle as removed (left the domain).
  std::int64_t flagged = 0;
  for (int r = 0; r < nranks; ++r)
    for (std::size_t i = 0; i < w.removed[r].size(); i += 3) {
      w.removed[r][i] = 1;
      ++flagged;
    }
  exchange_particles(w.rt, "exc", strategy, w.stores, w.removed, w.owner);
  EXPECT_EQ(w.total(), before - flagged);
}

TEST_P(ExchangeTest, NoopWhenEverythingIsLocal) {
  const auto [strategy, nranks] = GetParam();
  World w(nranks, nranks);
  // Each rank gets particles only in its own cells.
  for (int r = 0; r < nranks; ++r) {
    for (int i = 0; i < 10; ++i) {
      ParticleRecord p;
      p.cell = r;  // owner[r] == r by construction
      p.id = r * 100 + i;
      w.stores[r].add(p);
    }
    w.removed[r].assign(w.stores[r].size(), 0);
  }
  const ExchangeStats st = exchange_particles(w.rt, "exc", strategy, w.stores,
                                              w.removed, w.owner);
  EXPECT_EQ(st.migrated, 0);
  for (int r = 0; r < nranks; ++r) EXPECT_EQ(w.stores[r].size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndRanks, ExchangeTest,
    ::testing::Combine(::testing::Values(Strategy::kCentralized,
                                         Strategy::kDistributed,
                                         Strategy::kHierarchical),
                       ::testing::Values(1, 2, 3, 5, 8, 16)));

TEST(ExchangeHierarchical, MultiNodeFunnelWorks) {
  // Force several nodes by shrinking cores_per_node so leader routing and
  // the inter-node round are actually exercised.
  par::MachineProfile prof = par::MachineProfile::tianhe2();
  prof.cores_per_node = 4;
  const int nranks = 12;  // 3 nodes of 4 ranks
  par::Runtime rt(nranks, par::Topology(prof, nranks));
  std::vector<ParticleStore> stores(nranks);
  std::vector<std::vector<std::uint8_t>> removed(nranks);
  std::vector<std::int32_t> owner(nranks * 3);
  for (std::size_t c = 0; c < owner.size(); ++c)
    owner[c] = static_cast<std::int32_t>(c % nranks);
  Rng rng(3);
  std::int64_t id = 0, total = 0;
  for (int r = 0; r < nranks; ++r) {
    for (int i = 0; i < 40; ++i) {
      ParticleRecord p;
      p.cell = static_cast<std::int32_t>(rng.uniform_index(owner.size()));
      p.id = id++;
      stores[r].add(p);
      ++total;
    }
    removed[r].assign(stores[r].size(), 0);
  }
  const ExchangeStats st = exchange_particles(
      rt, "hc", Strategy::kHierarchical, stores, removed, owner);
  std::int64_t after = 0;
  for (int r = 0; r < nranks; ++r) {
    after += static_cast<std::int64_t>(stores[r].size());
    for (std::size_t i = 0; i < stores[r].size(); ++i)
      EXPECT_EQ(owner[stores[r].cells()[i]], r);
  }
  EXPECT_EQ(after, total);
  EXPECT_EQ(st.migrated + st.kept, total);
}

TEST(ExchangeHierarchical, FewerInterNodeTransactionsThanDistributed) {
  par::MachineProfile prof = par::MachineProfile::tianhe2();
  prof.cores_per_node = 4;
  const int nranks = 16;  // 4 nodes
  auto run = [&](Strategy s) {
    par::Runtime rt(nranks, par::Topology(prof, nranks));
    std::vector<ParticleStore> stores(nranks);
    std::vector<std::vector<std::uint8_t>> removed(nranks);
    std::vector<std::int32_t> owner(nranks * 2);
    for (std::size_t c = 0; c < owner.size(); ++c)
      owner[c] = static_cast<std::int32_t>(c % nranks);
    Rng rng(9);
    for (int r = 0; r < nranks; ++r) {
      for (int i = 0; i < 100; ++i) {
        ParticleRecord p;
        p.cell = static_cast<std::int32_t>(rng.uniform_index(owner.size()));
        p.id = r * 1000 + i;
        stores[r].add(p);
      }
      removed[r].assign(stores[r].size(), 0);
    }
    exchange_particles(rt, "x", s, stores, removed, owner);
    return rt;
  };
  const auto dc = run(Strategy::kDistributed);
  const auto hc = run(Strategy::kHierarchical);
  // HC's dense leader round is N_nodes^2 instead of N^2; with full pairwise
  // traffic DC ships ~N(N-1) messages while HC ships far fewer.
  EXPECT_LT(hc.phase_stats("x").transactions,
            dc.phase_stats("x").transactions);
}

TEST(ExchangeCosts, CentralizedSerializesAtRoot) {
  const int nranks = 8;
  World w(nranks, nranks * 4);
  w.scatter_random_particles(200, 5);
  exchange_particles(w.rt, "cc", Strategy::kCentralized, w.stores, w.removed,
                     w.owner);
  // Root (rank 0) must be the busiest in the exchange phase.
  const auto busy = w.rt.phase_busy("cc");
  for (int r = 1; r < nranks; ++r) EXPECT_GE(busy[0], busy[r]);
}

TEST(ExchangeCosts, TransactionCountsMatchTheory) {
  // Centralized: ~2N messages (gather + scatter). Distributed: only
  // non-empty pairs ship data but all pairs pay latency.
  const int nranks = 6;
  World cc(nranks, nranks * 4), dc(nranks, nranks * 4);
  cc.scatter_random_particles(100, 11);
  dc.scatter_random_particles(100, 11);
  exchange_particles(cc.rt, "x", Strategy::kCentralized, cc.stores, cc.removed,
                     cc.owner);
  exchange_particles(dc.rt, "x", Strategy::kDistributed, dc.stores, dc.removed,
                     dc.owner);
  const auto cc_tx = cc.rt.phase_stats("x").transactions;
  const auto dc_tx = dc.rt.phase_stats("x").transactions;
  EXPECT_LE(cc_tx, static_cast<std::uint64_t>(2 * nranks));
  EXPECT_GT(cc_tx, 0u);
  EXPECT_LE(dc_tx, static_cast<std::uint64_t>(nranks * (nranks - 1)));
  // Data volume: CC moves migrated records twice (to root, then out), minus
  // the root's own share which never crosses the wire — ratio ~ 2 - 2/N.
  const double cc_bytes = cc.rt.phase_stats("x").bytes;
  const double dc_bytes = dc.rt.phase_stats("x").bytes;
  EXPECT_GT(cc_bytes, 1.4 * dc_bytes);
  EXPECT_LT(cc_bytes, 2.1 * dc_bytes);
}

TEST(ExchangeCosts, DistributedLatencyGrowsWithRanks) {
  // With almost no particles, DC cost is dominated by the N(N-1) handshake
  // latency and must grow superlinearly with N, while CC stays ~2N.
  auto run = [](Strategy s, int nranks) {
    World w(nranks, nranks);
    // One particle total, already local.
    ParticleRecord p;
    p.cell = 0;
    w.stores[0].add(p);
    w.removed[0].assign(1, 0);
    exchange_particles(w.rt, "x", s, w.stores, w.removed, w.owner);
    return w.rt.phase_stats("x").busy_max;
  };
  const double dc16 = run(Strategy::kDistributed, 16);
  const double dc64 = run(Strategy::kDistributed, 64);
  const double cc16 = run(Strategy::kCentralized, 16);
  const double cc64 = run(Strategy::kCentralized, 64);
  EXPECT_GT(dc64, 3.0 * dc16);  // ~linear-per-rank growth in N
  EXPECT_GT(dc64, cc64 * 3.0);  // DC much worse than CC when empty at scale
  EXPECT_GE(cc16, 0.0);
}

}  // namespace
}  // namespace dsmcpic::exchange
