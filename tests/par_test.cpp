#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "par/machine.hpp"
#include "par/runtime.hpp"

namespace dsmcpic::par {
namespace {

Runtime make_runtime(int n, double pscale = 1.0, double gscale = 1.0,
                     Placement placement = Placement::kInnerFrame) {
  return Runtime(n, Topology(MachineProfile::tianhe2(), n, placement), pscale,
                 gscale);
}

TEST(Topology, NodeMappingDense) {
  const Topology t(MachineProfile::tianhe2(), 96);  // 24 cores/node
  EXPECT_EQ(t.nodes_in_use(), 4);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(23), 0);
  EXPECT_EQ(t.node_of(24), 1);
  EXPECT_EQ(t.node_of(95), 3);
}

TEST(Topology, AlphaTiersOrdered) {
  const MachineProfile p = MachineProfile::tianhe2();
  // 24 cores/node, 32 nodes/frame, 4 frames/rack.
  const int n = 24 * 32 * 4 * 2;  // spans two racks
  const Topology t(p, n);
  const double intra = t.alpha(0, 1);            // same node
  const double frame = t.alpha(0, 24);           // same frame, other node
  const double rack = t.alpha(0, 24 * 32);       // other frame, same rack
  const double inter = t.alpha(0, 24 * 32 * 4);  // other rack
  EXPECT_EQ(intra, p.alpha_intra_node);
  EXPECT_EQ(frame, p.alpha_inner_frame);
  EXPECT_EQ(rack, p.alpha_inner_rack);
  EXPECT_EQ(inter, p.alpha_inter_rack);
  EXPECT_LT(intra, frame);
  EXPECT_LT(frame, rack);
  EXPECT_LT(rack, inter);
}

TEST(Topology, PlacementChangesDistance) {
  const MachineProfile p = MachineProfile::tianhe2();
  const int n = 96;  // 4 nodes
  const Topology dense(p, n, Placement::kInnerFrame);
  const Topology spread(p, n, Placement::kInterRack);
  // Ranks on different nodes: dense keeps them in one frame, inter-rack
  // placement puts every node in its own rack.
  EXPECT_EQ(dense.alpha(0, 95), p.alpha_inner_frame);
  EXPECT_EQ(spread.alpha(0, 95), p.alpha_inter_rack);
  // Same node is intra-node under every placement.
  EXPECT_EQ(spread.alpha(0, 1), p.alpha_intra_node);
}

TEST(Topology, InnerRackSpreadsAcrossFrames) {
  const MachineProfile p = MachineProfile::tianhe2();
  const Topology t(p, 24 * 8, Placement::kInnerRack);
  // Slots 0 and 1 land in different frames of the same rack.
  EXPECT_NE(t.frame_of(0), t.frame_of(24));
  EXPECT_EQ(t.rack_of(0), t.rack_of(24));
}

TEST(Runtime, MessageDeliveryNextSuperstep) {
  Runtime rt = make_runtime(3);
  rt.superstep("send", [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<int> payload{1, 2, 3};
      c.send_pod<int>(2, 5, payload);
    }
    EXPECT_TRUE(c.inbox().empty());
  });
  int delivered = 0;
  rt.superstep("recv", [&](Comm& c) {
    for (const auto& m : c.inbox()) {
      EXPECT_EQ(c.rank(), 2);
      EXPECT_EQ(m.src, 0);
      EXPECT_EQ(m.tag, 5);
      const auto v = m.decode<int>();
      ASSERT_EQ(v.size(), 3u);
      EXPECT_EQ(v[2], 3);
      ++delivered;
    }
  });
  EXPECT_EQ(delivered, 1);
}

TEST(Runtime, InboxClearedAfterSuperstep) {
  Runtime rt = make_runtime(2);
  rt.superstep("a", [](Comm& c) {
    if (c.rank() == 0) c.send(1, 0, {});
  });
  rt.superstep("b", [](Comm& c) {
    if (c.rank() == 1) EXPECT_EQ(c.inbox().size(), 1u);
  });
  rt.superstep("c", [](Comm& c) { EXPECT_TRUE(c.inbox().empty()); });
}

TEST(Runtime, ChargeAdvancesClockAndBusy) {
  Runtime rt = make_runtime(2);
  rt.superstep("work", [](Comm& c) {
    if (c.rank() == 0) c.charge(WorkKind::kMove, 1000.0);
  });
  const double cost =
      1000.0 *
      MachineProfile::tianhe2().costs[static_cast<int>(WorkKind::kMove)];
  EXPECT_DOUBLE_EQ(rt.clock(0), cost);
  EXPECT_DOUBLE_EQ(rt.clock(1), 0.0);
  EXPECT_DOUBLE_EQ(rt.phase_stats("work").busy_max, cost);
  EXPECT_DOUBLE_EQ(rt.phase_stats("work").busy_min, 0.0);
}

TEST(Runtime, CostClassScalesApply) {
  Runtime rt = make_runtime(1, /*pscale=*/100.0, /*gscale=*/3.0);
  rt.superstep("p", [](Comm& c) { c.charge(WorkKind::kMove, 1.0); });
  rt.superstep("g", [](Comm& c) { c.charge(WorkKind::kSpmvFlop, 1.0); });
  const auto& costs = MachineProfile::tianhe2().costs;
  EXPECT_DOUBLE_EQ(rt.phase_stats("p").busy_max,
                   100.0 * costs[static_cast<int>(WorkKind::kMove)]);
  EXPECT_DOUBLE_EQ(rt.phase_stats("g").busy_max,
                   3.0 * costs[static_cast<int>(WorkKind::kSpmvFlop)]);
}

TEST(Runtime, BarrierAlignsClocks) {
  Runtime rt = make_runtime(3);
  rt.superstep("w", [](Comm& c) {
    c.charge(WorkKind::kGeneric, 1e6 * (c.rank() + 1));
  });
  EXPECT_LT(rt.clock(0), rt.clock(2));
  rt.barrier("sync");
  EXPECT_DOUBLE_EQ(rt.clock(0), rt.clock(2));
  EXPECT_GE(rt.clock(0), 3e-3);  // at least the largest pre-barrier clock
}

TEST(Runtime, AllreduceSumAndExtremes) {
  Runtime rt = make_runtime(4);
  const std::vector<double> vals{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(rt.allreduce_sum("x", vals), 10.0);
  EXPECT_DOUBLE_EQ(rt.allreduce_max("x", vals), 4.0);
  EXPECT_DOUBLE_EQ(rt.allreduce_min("x", vals), 1.0);
}

TEST(Runtime, AllreduceSumVecElementwise) {
  Runtime rt = make_runtime(3);
  const std::vector<std::vector<double>> per_rank{{1, 10}, {2, 20}, {3, 30}};
  const auto sum = rt.allreduce_sum_vec("x", per_rank);
  ASSERT_EQ(sum.size(), 2u);
  EXPECT_DOUBLE_EQ(sum[0], 6.0);
  EXPECT_DOUBLE_EQ(sum[1], 60.0);
}

TEST(Runtime, ExscanSum) {
  Runtime rt = make_runtime(4);
  const std::vector<std::int64_t> vals{5, 3, 2, 7};
  const auto off = rt.exscan_sum("x", vals);
  EXPECT_EQ(off, (std::vector<std::int64_t>{0, 5, 8, 10}));
}

TEST(Runtime, MessageCostChargedToBothEndpoints) {
  Runtime rt = make_runtime(2);
  std::vector<std::byte> payload(1000);
  rt.superstep("comm", [&](Comm& c) {
    if (c.rank() == 0) c.send(1, 0, payload);
  });
  const MachineProfile p = MachineProfile::tianhe2();
  // Both ranks are on one node: alpha intra; small congestion for 1 message.
  const double expected_min = p.alpha_intra_node + 1000.0 * p.beta;
  EXPECT_GE(rt.clock(0), expected_min);
  EXPECT_GE(rt.clock(1), expected_min);
  EXPECT_EQ(rt.phase_stats("comm").transactions, 1u);
  EXPECT_DOUBLE_EQ(rt.phase_stats("comm").bytes, 1000.0);
}

TEST(Runtime, CongestionHintRaisesCost) {
  Runtime rt1 = make_runtime(2);
  Runtime rt2 = make_runtime(2);
  std::vector<std::byte> payload(8);
  rt1.superstep("c", [&](Comm& c) {
    if (c.rank() == 0) c.send(1, 0, payload);
  });
  rt2.hint_round_transactions(1000000);
  rt2.superstep("c", [&](Comm& c) {
    if (c.rank() == 0) c.send(1, 0, payload);
  });
  EXPECT_GT(rt2.clock(0), rt1.clock(0) * 10.0);
}

TEST(Runtime, GatherSerializesAtRoot) {
  Runtime rt = make_runtime(8);
  rt.charge_gather("g", 0, 1000.0);
  // Root pays ~7 transfers, everyone else one.
  EXPECT_GT(rt.clock(0), 5.0 * rt.clock(1));
}

TEST(Runtime, BusyTotalsAcrossPhases) {
  Runtime rt = make_runtime(2);
  rt.superstep("a", [](Comm& c) {
    if (c.rank() == 0) c.charge(WorkKind::kGeneric, 1e6);
  });
  rt.superstep("b", [](Comm& c) {
    if (c.rank() == 1) c.charge(WorkKind::kGeneric, 1e6);
  });
  const std::vector<std::string> both{"a", "b"};
  const auto tot = rt.busy_totals(both);
  EXPECT_DOUBLE_EQ(tot[0], tot[1]);
  EXPECT_GT(tot[0], 0.0);
  const auto all = rt.busy_all();
  EXPECT_DOUBLE_EQ(all[0], tot[0]);
}

TEST(Runtime, DeterministicAcrossRuns) {
  auto run = [] {
    Runtime rt = make_runtime(4);
    for (int s = 0; s < 5; ++s) {
      rt.superstep("w", [s](Comm& c) {
        c.charge(WorkKind::kMove, 100.0 * (c.rank() + s));
        const std::vector<double> x{1.0};
        if (c.rank() > 0) c.send_pod<double>(c.rank() - 1, 0, x);
      });
    }
    rt.barrier("end");
    return rt.total_time();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Runtime, SendOwnedAndViewRoundTrip) {
  Runtime rt = make_runtime(2);
  rt.superstep("a", [](Comm& c) {
    if (c.rank() != 0) return;
    std::vector<double> vals{1.5, -2.5, 3.25};
    c.send_pod_vec(1, 9, vals, CostClass::kGrid);
  });
  rt.superstep("b", [](Comm& c) {
    if (c.rank() != 1) return;
    ASSERT_EQ(c.inbox().size(), 1u);
    const auto v = c.inbox()[0].view<double>();
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[0], 1.5);
    EXPECT_DOUBLE_EQ(v[1], -2.5);
    EXPECT_DOUBLE_EQ(v[2], 3.25);
  });
}

TEST(Runtime, GridScaleAppliesToGridPayloads) {
  // Same payload, particle- vs grid-class: byte costs differ by the scale
  // ratio (latency term subtracted out by comparing against a baseline).
  auto comm_cost = [](CostClass cls, double pscale, double gscale) {
    Runtime rt(2, Topology(MachineProfile::tianhe2(), 2), pscale, gscale);
    std::vector<std::byte> payload(100000);
    rt.superstep("x", [&](Comm& c) {
      if (c.rank() == 0) c.send(1, 0, payload, cls);
    });
    return rt.phase_stats("x").bytes;
  };
  EXPECT_DOUBLE_EQ(comm_cost(CostClass::kParticle, 7.0, 3.0), 700000.0);
  EXPECT_DOUBLE_EQ(comm_cost(CostClass::kGrid, 7.0, 3.0), 300000.0);
}

TEST(Runtime, PhaseStatsForUnknownPhaseAreZero) {
  Runtime rt = make_runtime(2);
  const PhaseStats s = rt.phase_stats("never-used");
  EXPECT_EQ(s.busy_max, 0.0);
  EXPECT_EQ(s.transactions, 0u);
}

TEST(Runtime, ChargeRankOutsideSuperstep) {
  Runtime rt = make_runtime(3);
  rt.charge_rank("p", 1, WorkKind::kPartitionEdge, 1e6);
  EXPECT_GT(rt.clock(1), 0.0);
  EXPECT_EQ(rt.clock(0), 0.0);
  EXPECT_GT(rt.phase_stats("p").busy_max, 0.0);
}

// The routing contract after per-rank staging: every inbox receives its
// messages sorted by source rank, ties broken by the order the source sent
// them ("src-major, send-order"). This is what the sequential 0..N-1
// schedule always produced; the per-sender staging buffers preserve it
// under threaded execution by merging buffers in rank order.
TEST(Runtime, InboxOrderingIsSrcMajorSendOrder) {
  for (const ExecMode mode : {ExecMode::kSequential, ExecMode::kThreaded}) {
    Runtime rt(4, Topology(MachineProfile::tianhe2(), 4), 1.0, 1.0,
               ExecOptions{mode, 3});
    rt.superstep("send", [](Comm& c) {
      // Every rank sends two tagged messages to rank 0, second one first to
      // a different destination so buffers interleave destinations too.
      c.send(0, /*tag=*/c.rank() * 10 + 0, {});
      c.send(1, /*tag=*/c.rank() * 10 + 5, {});
      c.send(0, /*tag=*/c.rank() * 10 + 1, {});
    });
    rt.superstep("recv", [&](Comm& c) {
      if (c.rank() == 0) {
        ASSERT_EQ(c.inbox().size(), 8u);
        for (int src = 0; src < 4; ++src) {
          EXPECT_EQ(c.inbox()[2 * src].src, src);
          EXPECT_EQ(c.inbox()[2 * src].tag, src * 10 + 0);
          EXPECT_EQ(c.inbox()[2 * src + 1].src, src);
          EXPECT_EQ(c.inbox()[2 * src + 1].tag, src * 10 + 1);
        }
      }
      if (c.rank() == 1) {
        ASSERT_EQ(c.inbox().size(), 4u);
        for (int src = 0; src < 4; ++src) {
          EXPECT_EQ(c.inbox()[src].src, src);
          EXPECT_EQ(c.inbox()[src].tag, src * 10 + 5);
        }
      }
    });
  }
}

// Threaded dispatch must be invisible in every accounted number: same
// clocks (bitwise), same phase stats, same message costs.
TEST(Runtime, ThreadedSuperstepsMatchSequentialBitwise) {
  auto run = [](ExecMode mode) {
    Runtime rt(8, Topology(MachineProfile::tianhe2(), 8), 3.0, 2.0,
               ExecOptions{mode, 4});
    for (int s = 0; s < 6; ++s) {
      rt.superstep("work", [s](Comm& c) {
        c.charge(WorkKind::kMove, 137.0 * (c.rank() + 1) + s);
        const std::vector<double> x{1.0 + c.rank(), 2.0};
        c.send_pod<double>((c.rank() + 1 + s) % c.size(), s, x);
        if (c.rank() % 2 == 0)
          c.send_pod<double>((c.rank() + 3) % c.size(), 100 + s, x,
                             CostClass::kGrid);
      });
      rt.superstep("drain", [](Comm& c) {
        double acc = 0.0;
        for (const auto& m : c.inbox())
          for (const double v : m.view<double>()) acc += v;
        c.charge(WorkKind::kVecFlop, acc);
      });
    }
    rt.barrier("end");
    return rt;
  };
  const Runtime a = run(ExecMode::kSequential);
  const Runtime b = run(ExecMode::kThreaded);
  for (int r = 0; r < a.size(); ++r) EXPECT_EQ(a.clock(r), b.clock(r));
  ASSERT_EQ(a.phases(), b.phases());
  for (const auto& p : a.phases()) {
    const PhaseStats sa = a.phase_stats(p);
    const PhaseStats sb = b.phase_stats(p);
    EXPECT_EQ(sa.busy_max, sb.busy_max) << p;
    EXPECT_EQ(sa.busy_min, sb.busy_min) << p;
    EXPECT_EQ(sa.busy_sum, sb.busy_sum) << p;
    EXPECT_EQ(sa.transactions, sb.transactions) << p;
    EXPECT_EQ(sa.bytes, sb.bytes) << p;
    EXPECT_EQ(a.phase_busy(p), b.phase_busy(p)) << p;
  }
}

TEST(Runtime, ThreadedExposesLaneCount) {
  Runtime seq = make_runtime(4);
  EXPECT_EQ(seq.exec_mode(), ExecMode::kSequential);
  EXPECT_EQ(seq.exec_threads(), 1);
  Runtime thr(4, Topology(MachineProfile::tianhe2(), 4), 1.0, 1.0,
              ExecOptions{ExecMode::kThreaded, 3});
  EXPECT_EQ(thr.exec_mode(), ExecMode::kThreaded);
  EXPECT_EQ(thr.exec_threads(), 3);
}

TEST(Runtime, HintInsideSuperstepBodyThrows) {
  Runtime rt = make_runtime(2);
  EXPECT_THROW(
      rt.superstep("bad", [&](Comm& c) {
        if (c.rank() == 0) rt.hint_round_transactions(7);
      }),
      Error);
}

TEST(Runtime, PayloadPoolStopsAllocatingInSteadyState) {
  // A fixed communication pattern repeated over supersteps: after the first
  // two rounds (messages recycle to the sender's pool one superstep after
  // delivery), acquires keep growing but misses — fresh allocations — stop.
  Runtime rt = make_runtime(4);
  auto round = [&] {
    rt.superstep("ring", [](Comm& c) {
      std::vector<double> vals(16, static_cast<double>(c.rank()));
      c.send_pod_vec((c.rank() + 1) % c.size(), 0, vals,
                     CostClass::kParticle);
    });
  };
  for (int i = 0; i < 3; ++i) round();
  const PoolStats warm = rt.pool_stats();
  EXPECT_GT(warm.acquires, 0u);
  for (int i = 0; i < 5; ++i) round();
  const PoolStats steady = rt.pool_stats();
  EXPECT_EQ(steady.misses, warm.misses) << "steady-state supersteps allocated";
  EXPECT_GT(steady.acquires, warm.acquires);
  EXPECT_GT(steady.recycles, warm.recycles);
}

TEST(Runtime, AcquiredPayloadsAreZeroFilled) {
  // A recycled buffer must come back all-zero, exactly like a fresh one —
  // otherwise a sender that skips bytes would leak the previous message.
  Runtime rt = make_runtime(2);
  rt.superstep("dirty", [](Comm& c) {
    if (c.rank() != 0) return;
    auto p = c.acquire_payload(64);
    std::fill(p.begin(), p.end(), std::byte{0xFF});
    c.send_owned(1, 0, std::move(p), CostClass::kParticle);
  });
  rt.superstep("deliver", [](Comm& c) {
    if (c.rank() == 1) ASSERT_EQ(c.inbox().size(), 1u);
  });
  // The dirty buffer recycled to rank 0's pool; a smaller acquire must
  // best-fit it and still hand back zeroes.
  rt.superstep("reuse", [](Comm& c) {
    if (c.rank() != 0) return;
    auto p = c.acquire_payload(32);
    for (const std::byte b : p) EXPECT_EQ(b, std::byte{0});
    c.send_owned(1, 0, std::move(p), CostClass::kParticle);
  });
  const PoolStats st = rt.pool_stats();
  EXPECT_EQ(st.recycles, 1u);
}

TEST(Runtime, ActiveRankShrinkFreezesParkedClocks) {
  Runtime rt = make_runtime(4);
  rt.superstep("warm", [](Comm& c) { c.charge(WorkKind::kGeneric, 100.0); });
  rt.barrier("warm");
  const double frozen = rt.clock(3);
  rt.set_active_ranks(2);
  EXPECT_EQ(rt.active_ranks(), 2);
  std::vector<int> ran(4, 0);
  rt.superstep("shrunk", [&](Comm& c) {
    ran[static_cast<std::size_t>(c.rank())] = 1;
    c.charge(WorkKind::kGeneric, 50.0);
  });
  EXPECT_EQ(ran, (std::vector<int>{1, 1, 0, 0}));
  EXPECT_EQ(rt.clock(3), frozen) << "parked clocks must not advance";
  EXPECT_GT(rt.clock(0), frozen);
}

TEST(Runtime, ActiveRankGrowJoinsAtFrontier) {
  Runtime rt = make_runtime(4);
  rt.set_active_ranks(2);
  rt.superstep("half", [](Comm& c) { c.charge(WorkKind::kGeneric, 1000.0); });
  rt.barrier("half");
  const double frontier = rt.clock(0);
  rt.set_active_ranks(4);
  // Reactivated ranks cannot time-travel: they rejoin at the active
  // frontier, never behind it.
  EXPECT_GE(rt.clock(2), frontier);
  EXPECT_GE(rt.clock(3), frontier);
  std::vector<int> ran(4, 0);
  rt.superstep("full", [&](Comm& c) {
    ran[static_cast<std::size_t>(c.rank())] = 1;
  });
  EXPECT_EQ(ran, (std::vector<int>{1, 1, 1, 1}));
}

TEST(Runtime, SetActiveRanksValidation) {
  Runtime rt = make_runtime(4);
  EXPECT_THROW(rt.set_active_ranks(0), Error);
  EXPECT_THROW(rt.set_active_ranks(5), Error);
  rt.superstep("fly", [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> v{1.0};
      c.send_pod_vec(1, 0, v, CostClass::kParticle);
    }
  });
  // Messages in flight: resizing would strand them.
  EXPECT_THROW(rt.set_active_ranks(2), Error);
  rt.superstep("drain", [](Comm&) {});
  rt.set_active_ranks(2);
  EXPECT_EQ(rt.active_ranks(), 2);
}

TEST(Runtime, SendToParkedRankThrows) {
  Runtime rt = make_runtime(4);
  rt.set_active_ranks(2);
  EXPECT_THROW(rt.superstep("bad",
                            [](Comm& c) {
                              if (c.rank() != 0) return;
                              std::vector<double> v{1.0};
                              c.send_pod_vec(3, 0, v, CostClass::kParticle);
                            }),
               Error);
}

TEST(Runtime, HintAllPairsMatchesExplicitDenseHint) {
  // The runtime-owned all-pairs hint must charge exactly what the dense
  // exchange's explicit N(N-1) hint charges — and track the active set.
  auto phase_time = [](int nranks, int active, bool explicit_hint) {
    Runtime rt(6, Topology(MachineProfile::tianhe2(), 6), 1.0, 1.0);
    if (active < nranks) rt.set_active_ranks(active);
    if (explicit_hint)
      rt.hint_round_transactions(static_cast<std::uint64_t>(active) *
                                 static_cast<std::uint64_t>(active - 1));
    else
      rt.hint_round_transactions_all_pairs();
    std::vector<std::byte> payload(4096);
    rt.superstep("x", [&](Comm& c) {
      if (c.rank() == 0) c.send(1, 0, payload, CostClass::kParticle);
    });
    rt.barrier("x");
    return rt.total_time();
  };
  EXPECT_EQ(phase_time(6, 6, true), phase_time(6, 6, false));
  EXPECT_EQ(phase_time(6, 4, true), phase_time(6, 4, false));
  // Fewer active pairs -> less congestion -> strictly cheaper round.
  EXPECT_LT(phase_time(6, 4, false), phase_time(6, 6, false));
}

TEST(Runtime, SuperstepCounterCounts) {
  Runtime rt = make_runtime(2);
  EXPECT_EQ(rt.supersteps(), 0u);
  rt.superstep("a", [](Comm&) {});
  rt.superstep("b", [](Comm&) {});
  EXPECT_EQ(rt.supersteps(), 2u);
}

TEST(ExecMode, ParseAndName) {
  EXPECT_EQ(parse_exec_mode("seq"), ExecMode::kSequential);
  EXPECT_EQ(parse_exec_mode("sequential"), ExecMode::kSequential);
  EXPECT_EQ(parse_exec_mode("threaded"), ExecMode::kThreaded);
  EXPECT_THROW(parse_exec_mode("gpu"), Error);
  EXPECT_STREQ(exec_mode_name(ExecMode::kThreaded), "threaded");
  EXPECT_STREQ(exec_mode_name(ExecMode::kSequential), "seq");
}

TEST(MachineProfiles, ThreePlatformsDiffer) {
  const auto t2 = MachineProfile::tianhe2();
  const auto bs = MachineProfile::bscc();
  const auto t3 = MachineProfile::tianhe3();
  EXPECT_EQ(t2.cores_per_node, 24);
  EXPECT_EQ(bs.cores_per_node, 96);
  EXPECT_EQ(t3.cores_per_node, 64);
  // ARM cores are slower per-core, BSCC faster than Tianhe-2.
  const int mv = static_cast<int>(WorkKind::kMove);
  EXPECT_GT(t3.costs[mv], t2.costs[mv]);
  EXPECT_LT(bs.costs[mv], t2.costs[mv]);
  // Bandwidth ordering: Tianhe-3 200Gbps > Tianhe-2 160 > BSCC 100.
  EXPECT_LT(t3.beta, t2.beta);
  EXPECT_LT(t2.beta, bs.beta);
}

}  // namespace
}  // namespace dsmcpic::par
