#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "mesh/nozzle.hpp"
#include "partition/graph.hpp"
#include "partition/partitioner.hpp"
#include "support/rng.hpp"

namespace dsmcpic::partition {
namespace {

/// 2D grid graph (nx x ny), unit weights.
Graph grid_graph(int nx, int ny) {
  Graph g;
  const int nv = nx * ny;
  auto id = [nx](int x, int y) { return y * nx + x; };
  std::vector<std::vector<std::int32_t>> adj(nv);
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x) {
      if (x + 1 < nx) {
        adj[id(x, y)].push_back(id(x + 1, y));
        adj[id(x + 1, y)].push_back(id(x, y));
      }
      if (y + 1 < ny) {
        adj[id(x, y)].push_back(id(x, y + 1));
        adj[id(x, y + 1)].push_back(id(x, y));
      }
    }
  g.xadj.assign(nv + 1, 0);
  for (int v = 0; v < nv; ++v) g.xadj[v + 1] = g.xadj[v] + adj[v].size();
  for (int v = 0; v < nv; ++v)
    for (auto u : adj[v]) g.adjncy.push_back(u);
  return g;
}

TEST(Graph, ValidateAcceptsGrid) {
  const Graph g = grid_graph(5, 4);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(g.num_edges(), 2 * (4 * 4 + 5 * 3));
}

TEST(Graph, ValidateRejectsAsymmetry) {
  Graph g;
  g.xadj = {0, 1, 1};
  g.adjncy = {1};  // 0 -> 1 but not 1 -> 0
  EXPECT_THROW(g.validate(), Error);
}

TEST(Graph, EdgeCutAndImbalance) {
  const Graph g = grid_graph(4, 1);  // path of 4
  const std::vector<std::int32_t> part{0, 0, 1, 1};
  EXPECT_EQ(edge_cut(g, part), 1);
  EXPECT_DOUBLE_EQ(imbalance(g, part, 2), 1.0);
  const std::vector<std::int32_t> bad{0, 0, 0, 1};
  EXPECT_DOUBLE_EQ(imbalance(g, bad, 2), 1.5);
}

TEST(Partitioner, BisectsGridEvenly) {
  const Graph g = grid_graph(16, 16);
  const PartitionResult r = part_graph_kway(g, 2);
  EXPECT_LE(r.imbalance, 1.06);
  // Ideal bisection of a 16x16 grid cuts 16 edges; allow some slack.
  EXPECT_LE(r.cut, 28);
  EXPECT_EQ(edge_cut(g, r.part), r.cut);
}

TEST(Partitioner, SinglePartIsTrivial) {
  const Graph g = grid_graph(4, 4);
  const PartitionResult r = part_graph_kway(g, 1);
  EXPECT_EQ(r.cut, 0);
  for (auto p : r.part) EXPECT_EQ(p, 0);
}

TEST(Partitioner, RespectsVertexWeights) {
  // Path graph with one very heavy vertex: it should sit alone-ish.
  Graph g = grid_graph(10, 1);
  g.vwgt.assign(10, 1);
  g.vwgt[0] = 9;  // total 18, ideal 9 per side
  const PartitionResult r = part_graph_kway(g, 2);
  EXPECT_LE(r.imbalance, 1.13);
  // The heavy vertex's side holds few other vertices.
  int heavy_side = r.part[0];
  int same = 0;
  for (int v = 0; v < 10; ++v)
    if (r.part[v] == heavy_side) ++same;
  EXPECT_LE(same, 3);
}

TEST(Partitioner, MoreVerticesThanPartsDegenerate) {
  const Graph g = grid_graph(3, 1);
  const PartitionResult r = part_graph_kway(g, 3);
  std::set<std::int32_t> used(r.part.begin(), r.part.end());
  EXPECT_EQ(used.size(), 3u);
}

TEST(Partitioner, DeterministicForFixedSeed) {
  const Graph g = grid_graph(12, 12);
  PartitionOptions opt;
  opt.seed = 77;
  const auto a = part_graph_kway(g, 4, opt);
  const auto b = part_graph_kway(g, 4, opt);
  EXPECT_EQ(a.part, b.part);
}

TEST(Partitioner, NozzleDualGraph) {
  mesh::NozzleSpec s;
  s.radial_divisions = 4;
  s.axial_divisions = 8;
  const mesh::TetMesh m = mesh::make_cylinder_nozzle(s);
  Graph g;
  m.dual_graph(g.xadj, g.adjncy);
  g.validate();
  const PartitionResult r = part_graph_kway(g, 8);
  EXPECT_LE(r.imbalance, 1.10);
  // Cut should be far below total edges (spatial locality).
  EXPECT_LT(r.cut, g.num_edges() / 2 / 4);
}

TEST(KwayRefine, ReducesCutWithoutBreakingBalance) {
  const Graph g = grid_graph(20, 20);
  PartitionOptions opt;
  opt.kway_refine_passes = 0;  // raw recursive bisection
  PartitionResult raw = part_graph_kway(g, 6, opt);
  std::vector<std::int32_t> part = raw.part;
  const std::int64_t gain = kway_refine(g, part, 6, 1.08, 4);
  EXPECT_GE(gain, 0);
  EXPECT_EQ(edge_cut(g, part), raw.cut - gain);
  EXPECT_LE(imbalance(g, part, 6), 1.10);
}

TEST(KwayRefine, FixesObviouslyBadAssignment) {
  // Path graph with an alternating partition: refinement must consolidate.
  const Graph g = grid_graph(16, 1);
  std::vector<std::int32_t> part(16);
  for (int v = 0; v < 16; ++v) part[v] = v % 2;
  const std::int64_t before = edge_cut(g, part);
  kway_refine(g, part, 2, 1.2, 8);
  EXPECT_LT(edge_cut(g, part), before);
  EXPECT_LE(imbalance(g, part, 2), 1.25);
}

TEST(KwayRefine, DefaultOptionsIncludeRefinement) {
  const Graph g = grid_graph(24, 24);
  PartitionOptions with;
  PartitionOptions without;
  without.kway_refine_passes = 0;
  const auto a = part_graph_kway(g, 8, with);
  const auto b = part_graph_kway(g, 8, without);
  EXPECT_LE(a.cut, b.cut);  // refinement can only help (or tie)
}

/// Parameterized sweep: balance holds across part counts and weight skews.
class KwayTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(KwayTest, BalancedAndComplete) {
  const auto [k, skewed] = GetParam();
  Graph g = grid_graph(20, 20);
  if (skewed) {
    // Exponential-ish weight gradient across the grid (mimics the particle
    // pile-up near the inlet that drives the paper's Fig. 5 imbalance).
    g.vwgt.resize(400);
    Rng rng(11);
    for (int v = 0; v < 400; ++v)
      g.vwgt[v] = 1 + (v % 20 == 0 ? 50 : 0) + static_cast<std::int64_t>(
                                                   rng.uniform_index(5));
  }
  const PartitionResult r = part_graph_kway(g, k);
  ASSERT_EQ(static_cast<int>(r.part.size()), 400);
  std::vector<std::int64_t> weight(k, 0);
  for (int v = 0; v < 400; ++v) {
    ASSERT_GE(r.part[v], 0);
    ASSERT_LT(r.part[v], k);
    weight[r.part[v]] += g.vertex_weight(v);
  }
  // Every part non-empty and max within ~20% of ideal (recursive bisection
  // compounds tolerance across levels).
  for (int p = 0; p < k; ++p) EXPECT_GT(weight[p], 0) << "part " << p;
  EXPECT_LE(r.imbalance, 1.25);
}

INSTANTIATE_TEST_SUITE_P(
    PartCounts, KwayTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 7, 8, 16, 24),
                       ::testing::Bool()));

}  // namespace
}  // namespace dsmcpic::partition
