// Equivalence of the precomputed geometry caches (face planes + barycentric
// inverses, built at mesh construction) against the recomputing reference
// implementations, on the nozzle mesh and its red-refined child. The cached
// ray_exit_face / face_normal store exactly the values the recomputing path
// derives, so those comparisons are bitwise; the cached barycentric is a
// matrix-vector product instead of four volume ratios, so it agrees to
// rounding only.

#include <gtest/gtest.h>

#include <cstdint>

#include "mesh/nozzle.hpp"
#include "mesh/refine.hpp"
#include "support/rng.hpp"

namespace dsmcpic::mesh {
namespace {

NozzleSpec small_spec() {
  NozzleSpec s;
  s.radial_divisions = 4;
  s.axial_divisions = 6;
  return s;
}

Vec3 random_point_near(Rng& rng, const TetMesh& m, std::int32_t t) {
  // Random point in the tet's neighborhood: barycentric-ish combination of
  // its nodes with weights in [-0.2, 1.2) (deliberately not confined to the
  // interior so negative coordinates and misses are exercised too).
  const auto& tt = m.tet(t);
  Vec3 p{0, 0, 0};
  for (int k = 0; k < 4; ++k)
    p += m.node(tt[k]) * (rng.uniform() * 1.4 - 0.2);
  return p;
}

void expect_cache_matches_recompute(const TetMesh& m) {
  Rng rng(0x5eedULL);
  ASSERT_TRUE(m.geometry_cache_enabled());
  for (std::int32_t t = 0; t < m.num_tets(); ++t) {
    // Face planes: bitwise identical unit normals.
    for (int f = 0; f < 4; ++f) {
      const Vec3 cached = m.face_normal(t, f);
      const Vec3 ref = m.face_normal_recompute(t, f);
      EXPECT_EQ(cached.x, ref.x);
      EXPECT_EQ(cached.y, ref.y);
      EXPECT_EQ(cached.z, ref.z);
    }

    // Ray exits: bitwise identical face choice and exit distance.
    const Vec3 origin = m.centroid(t);
    for (int trial = 0; trial < 4; ++trial) {
      const Vec3 dir{rng.uniform() * 2.0 - 1.0, rng.uniform() * 2.0 - 1.0,
                     rng.uniform() * 2.0 - 1.0};
      double t_cached = 0.0, t_ref = 0.0;
      const int f_cached = m.ray_exit_face(t, origin, dir, &t_cached);
      const int f_ref = m.ray_exit_face_recompute(t, origin, dir, &t_ref);
      EXPECT_EQ(f_cached, f_ref) << "tet " << t;
      EXPECT_EQ(t_cached, t_ref) << "tet " << t;
    }

    // Barycentric coordinates: same up to rounding, partition of unity.
    for (int trial = 0; trial < 4; ++trial) {
      const Vec3 p = random_point_near(rng, m, t);
      const auto lc = m.barycentric(t, p);
      const auto lr = m.barycentric_recompute(t, p);
      double sum = 0.0;
      for (int k = 0; k < 4; ++k) {
        EXPECT_NEAR(lc[k], lr[k], 1e-9) << "tet " << t;
        sum += lc[k];
      }
      EXPECT_NEAR(sum, 1.0, 1e-12);
    }
  }
}

TEST(GeometryCache, NozzleMeshMatchesRecompute) {
  expect_cache_matches_recompute(make_cylinder_nozzle(small_spec()));
}

TEST(GeometryCache, RefinedMeshMatchesRecompute) {
  const NozzleSpec s = small_spec();
  const TetMesh coarse = make_cylinder_nozzle(s);
  const RefinedMesh fine = red_refine(coarse, nozzle_classifier(s));
  expect_cache_matches_recompute(fine.mesh);
}

// locate must find the same containing tet whether it walks with the cached
// barycentric or the recomputing one (centroids are deep inside their tets,
// far from any rounding-sensitive boundary).
TEST(GeometryCache, LocateAgreesWithCacheDisabled) {
  TetMesh m = make_cylinder_nozzle(small_spec());
  for (std::int32_t t = 0; t < m.num_tets(); ++t) {
    const Vec3 p = m.centroid(t);
    m.set_geometry_cache_enabled(true);
    const std::int32_t with_cache = m.locate(p, /*hint=*/0);
    m.set_geometry_cache_enabled(false);
    const std::int32_t without = m.locate(p, /*hint=*/0);
    m.set_geometry_cache_enabled(true);
    EXPECT_EQ(with_cache, t);
    EXPECT_EQ(without, t);
  }
}

}  // namespace
}  // namespace dsmcpic::mesh
