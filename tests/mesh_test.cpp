#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "mesh/nozzle.hpp"
#include "mesh/refine.hpp"
#include "mesh/tetmesh.hpp"
#include "support/rng.hpp"

namespace dsmcpic::mesh {
namespace {

NozzleSpec small_spec() {
  NozzleSpec s;
  s.radius = 0.01;
  s.length = 0.05;
  s.inlet_radius_frac = 0.4;
  s.radial_divisions = 4;
  s.axial_divisions = 8;
  return s;
}

TEST(TetMesh, SingleTetBasics) {
  TetMesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
            {{{0, 1, 2, 3}}});
  EXPECT_EQ(m.num_tets(), 1);
  EXPECT_NEAR(m.volume(0), 1.0 / 6.0, 1e-15);
  EXPECT_EQ(m.neighbor(0, 0), -1);
  // Barycentric coordinates at a vertex / centroid.
  const auto lv = m.barycentric(0, {0, 0, 0});
  EXPECT_NEAR(lv[0], 1.0, 1e-12);
  const auto lc = m.barycentric(0, m.centroid(0));
  for (const double l : lc) EXPECT_NEAR(l, 0.25, 1e-12);
  EXPECT_TRUE(m.contains(0, {0.1, 0.1, 0.1}));
  EXPECT_FALSE(m.contains(0, {1.0, 1.0, 1.0}));
}

TEST(TetMesh, NegativeOrientationIsFixed) {
  // Swapped vertices give negative volume; constructor must repair it.
  TetMesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
            {{{1, 0, 2, 3}}});
  EXPECT_GT(m.volume(0), 0.0);
}

TEST(TetMesh, FaceNormalsPointOutward) {
  TetMesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
            {{{0, 1, 2, 3}}});
  for (int f = 0; f < 4; ++f) {
    const Vec3 n = m.face_normal(0, f);
    const Vec3 to_center = m.centroid(0) - m.face_centroid(0, f);
    EXPECT_LT(dot(n, to_center), 0.0) << "face " << f;
    EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  }
}

TEST(TetMesh, TwoTetAdjacency) {
  // Two tets sharing face {1,2,3}.
  TetMesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}},
            {{{0, 1, 2, 3}}, {{4, 1, 2, 3}}});
  int shared = 0;
  for (int f = 0; f < 4; ++f) {
    if (m.neighbor(0, f) == 1) ++shared;
    if (m.neighbor(1, f) >= 0) EXPECT_EQ(m.neighbor(1, f), 0);
  }
  EXPECT_EQ(shared, 1);
}

TEST(Nozzle, VolumeApproximatesCylinder) {
  const NozzleSpec s = small_spec();
  const TetMesh m = make_cylinder_nozzle(s);
  EXPECT_EQ(m.num_tets(), s.expected_tets());
  const double exact = M_PI * s.radius * s.radius * s.length;
  // The mapped-lattice disk slightly under-covers the circle.
  EXPECT_NEAR(m.total_volume(), exact, 0.06 * exact);
  EXPECT_GT(m.total_volume(), 0.85 * exact);
}

TEST(Nozzle, AdjacencyIsSymmetric) {
  const TetMesh m = make_cylinder_nozzle(small_spec());
  for (std::int32_t t = 0; t < m.num_tets(); ++t) {
    for (int f = 0; f < 4; ++f) {
      const std::int32_t nb = m.neighbor(t, f);
      if (nb < 0) continue;
      bool back = false;
      for (int g = 0; g < 4; ++g) back |= (m.neighbor(nb, g) == t);
      ASSERT_TRUE(back) << "tet " << t << " face " << f;
    }
  }
}

TEST(Nozzle, BoundaryClassification) {
  const NozzleSpec s = small_spec();
  const TetMesh m = make_cylinder_nozzle(s);
  const auto& inlet = m.boundary_faces(BoundaryKind::kInlet);
  const auto& outlet = m.boundary_faces(BoundaryKind::kOutlet);
  const auto& wall = m.boundary_faces(BoundaryKind::kWall);
  EXPECT_FALSE(inlet.empty());
  EXPECT_FALSE(outlet.empty());
  EXPECT_FALSE(wall.empty());
  // Inlet faces sit at z=0 within the inlet radius.
  for (const auto& bf : inlet) {
    const Vec3 c = m.face_centroid(bf.tet, bf.face);
    EXPECT_LT(c.z, 1e-9);
    EXPECT_LE(std::hypot(c.x, c.y), s.inlet_radius() + 1e-12);
  }
  for (const auto& bf : outlet)
    EXPECT_NEAR(m.face_centroid(bf.tet, bf.face).z, s.length, 1e-9);
  // Inlet + outlet disc areas are each ~ the full / partial circle area.
  double inlet_area = 0.0, outlet_area = 0.0;
  for (const auto& bf : inlet) inlet_area += m.face_area(bf.tet, bf.face);
  for (const auto& bf : outlet) outlet_area += m.face_area(bf.tet, bf.face);
  EXPECT_NEAR(outlet_area, M_PI * s.radius * s.radius,
              0.08 * M_PI * s.radius * s.radius);
  EXPECT_LT(inlet_area, outlet_area);
}

TEST(Nozzle, LocateFindsRandomInteriorPoints) {
  const NozzleSpec s = small_spec();
  const TetMesh m = make_cylinder_nozzle(s);
  Rng rng(5);
  int found = 0;
  for (int i = 0; i < 200; ++i) {
    const double r = 0.8 * s.radius * std::sqrt(rng.uniform());
    const double th = 2 * M_PI * rng.uniform();
    const Vec3 p{r * std::cos(th), r * std::sin(th),
                 s.length * (0.05 + 0.9 * rng.uniform())};
    const std::int32_t cell = m.locate(p, 0);
    ASSERT_GE(cell, 0) << "point " << p;
    EXPECT_TRUE(m.contains(cell, p, 1e-9));
    ++found;
  }
  EXPECT_EQ(found, 200);
  // Points outside the cylinder are not located.
  EXPECT_EQ(m.locate({2 * s.radius, 0, s.length / 2}, 0), -1);
  EXPECT_EQ(m.locate({0, 0, -s.length}, 0), -1);
}

TEST(Nozzle, LocateMatchesBruteForce) {
  const TetMesh m = make_cylinder_nozzle(small_spec());
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const Vec3 p{0.004 * (rng.uniform() - 0.5), 0.004 * (rng.uniform() - 0.5),
                 0.05 * rng.uniform()};
    const std::int32_t walk = m.locate(p, m.num_tets() / 2);
    const std::int32_t brute = m.locate_brute(p);
    if (brute >= 0) {
      ASSERT_GE(walk, 0);
      EXPECT_TRUE(m.contains(walk, p, 1e-9));
    } else {
      EXPECT_EQ(walk, -1);
    }
  }
}

TEST(TetMesh, RayExitFace) {
  TetMesh m({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
            {{{0, 1, 2, 3}}});
  // Ray from centroid towards +x must exit through the face opposite the
  // origin-side; the exit distance must be positive and finite.
  double t_exit = 0.0;
  const int f = m.ray_exit_face(0, m.centroid(0), {1, 0, 0}, &t_exit);
  ASSERT_GE(f, 0);
  EXPECT_GT(t_exit, 0.0);
  const Vec3 hit = m.centroid(0) + Vec3{1, 0, 0} * t_exit;
  // Exit point lies on the diagonal face x+y+z=1 or on y=0/z=0 planes.
  EXPECT_TRUE(m.contains(0, hit, 1e-9));
}

TEST(TetMesh, DualGraphMatchesAdjacency) {
  const TetMesh m = make_cylinder_nozzle(small_spec());
  std::vector<std::int64_t> xadj;
  std::vector<std::int32_t> adjncy;
  m.dual_graph(xadj, adjncy);
  ASSERT_EQ(static_cast<std::int32_t>(xadj.size()), m.num_tets() + 1);
  for (std::int32_t t = 0; t < m.num_tets(); ++t) {
    std::set<std::int32_t> expect;
    for (int f = 0; f < 4; ++f)
      if (m.neighbor(t, f) >= 0) expect.insert(m.neighbor(t, f));
    std::set<std::int32_t> got(adjncy.begin() + xadj[t],
                               adjncy.begin() + xadj[t + 1]);
    EXPECT_EQ(got, expect);
  }
}

TEST(Refine, EightChildrenTileParent) {
  const NozzleSpec s = small_spec();
  const TetMesh coarse = make_cylinder_nozzle(s);
  const RefinedMesh fine = red_refine(coarse, nozzle_classifier(s));
  ASSERT_EQ(fine.mesh.num_tets(), coarse.num_tets() * 8);
  for (std::int32_t t = 0; t < coarse.num_tets(); ++t) {
    double child_vol = 0.0;
    for (int k = 0; k < 8; ++k) {
      ASSERT_EQ(fine.parent[t * 8 + k], t);
      child_vol += fine.mesh.volume(t * 8 + k);
    }
    ASSERT_NEAR(child_vol, coarse.volume(t), 1e-12 * coarse.volume(t) + 1e-30);
  }
  EXPECT_NEAR(fine.mesh.total_volume(), coarse.total_volume(),
              1e-9 * coarse.total_volume());
}

TEST(Refine, ChildrenContainParentPoints) {
  const NozzleSpec s = small_spec();
  const TetMesh coarse = make_cylinder_nozzle(s);
  const RefinedMesh fine = red_refine(coarse, nozzle_classifier(s));
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const auto t = static_cast<std::int32_t>(
        rng.uniform_index(static_cast<std::uint64_t>(coarse.num_tets())));
    // Random point inside tet t via barycentric sampling.
    double w[4] = {rng.uniform_pos(), rng.uniform_pos(), rng.uniform_pos(),
                   rng.uniform_pos()};
    const double sum = w[0] + w[1] + w[2] + w[3];
    Vec3 p;
    for (int k = 0; k < 4; ++k) p += coarse.node(coarse.tet(t)[k]) * (w[k] / sum);
    // One of the 8 children must contain it.
    bool found = false;
    for (int k = 0; k < 8 && !found; ++k)
      found = fine.mesh.contains(t * 8 + k, p, 1e-9);
    EXPECT_TRUE(found) << "trial " << trial;
  }
}

TEST(Refine, BoundaryKindsAreInherited) {
  const NozzleSpec s = small_spec();
  const TetMesh coarse = make_cylinder_nozzle(s);
  const RefinedMesh fine = red_refine(coarse, nozzle_classifier(s));
  auto kind_area = [](const TetMesh& m, BoundaryKind k) {
    double a = 0.0;
    for (const auto& bf : m.boundary_faces(k)) a += m.face_area(bf.tet, bf.face);
    return a;
  };
  // Total boundary area and the outlet disc are preserved exactly (each
  // coarse boundary face splits into 4 coplanar fine faces).
  double coarse_total = 0.0, fine_total = 0.0;
  for (const BoundaryKind k :
       {BoundaryKind::kInlet, BoundaryKind::kOutlet, BoundaryKind::kWall}) {
    coarse_total += kind_area(coarse, k);
    fine_total += kind_area(fine.mesh, k);
  }
  EXPECT_NEAR(fine_total, coarse_total, 1e-9 * coarse_total);
  EXPECT_NEAR(kind_area(fine.mesh, BoundaryKind::kOutlet),
              kind_area(coarse, BoundaryKind::kOutlet),
              1e-9 * kind_area(coarse, BoundaryKind::kOutlet));
  // The inlet/wall split on the z=0 disc is re-resolved geometrically at the
  // finer resolution (centroid-in-radius test per face), so the fine inlet
  // area approximates the true disc area pi*r_inlet^2 at least as well as
  // the coarse one.
  const double exact_inlet = M_PI * s.inlet_radius() * s.inlet_radius();
  const double ci = kind_area(coarse, BoundaryKind::kInlet);
  const double fi = kind_area(fine.mesh, BoundaryKind::kInlet);
  EXPECT_LE(std::abs(fi - exact_inlet), std::abs(ci - exact_inlet) + 1e-12);
  EXPECT_NEAR(fi, exact_inlet, 0.35 * exact_inlet);
}

TEST(Refine, NodeCountMatchesEdgeMidpoints) {
  const TetMesh coarse = make_cylinder_nozzle(small_spec());
  const RefinedMesh fine = red_refine(coarse);
  // fine nodes = coarse nodes + unique coarse edges.
  std::set<std::pair<std::int32_t, std::int32_t>> edges;
  for (std::int32_t t = 0; t < coarse.num_tets(); ++t) {
    const auto& v = coarse.tet(t);
    for (int i = 0; i < 4; ++i)
      for (int j = i + 1; j < 4; ++j)
        edges.emplace(std::min(v[i], v[j]), std::max(v[i], v[j]));
  }
  EXPECT_EQ(fine.mesh.num_nodes(),
            coarse.num_nodes() + static_cast<std::int32_t>(edges.size()));
}

/// Property sweep: cylinder mesh invariants across resolutions.
class NozzleResolutionTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(NozzleResolutionTest, VolumeAndEulerInvariants) {
  const auto [n, nz] = GetParam();
  NozzleSpec s = small_spec();
  s.radial_divisions = n;
  s.axial_divisions = nz;
  const TetMesh m = make_cylinder_nozzle(s);
  EXPECT_EQ(m.num_tets(), 6 * n * n * nz);
  EXPECT_EQ(m.num_nodes(), (n + 1) * (n + 1) * (nz + 1));
  const double exact = M_PI * s.radius * s.radius * s.length;
  EXPECT_GT(m.total_volume(), 0.8 * exact);
  EXPECT_LT(m.total_volume(), exact);
  // Every boundary face classified.
  std::size_t boundary = 0;
  for (std::int32_t t = 0; t < m.num_tets(); ++t)
    for (int f = 0; f < 4; ++f)
      if (m.neighbor(t, f) < 0) {
        ++boundary;
        EXPECT_NE(m.face_kind(t, f), BoundaryKind::kNone);
      }
  EXPECT_EQ(boundary, m.boundary_faces(BoundaryKind::kInlet).size() +
                          m.boundary_faces(BoundaryKind::kOutlet).size() +
                          m.boundary_faces(BoundaryKind::kWall).size());
}

INSTANTIATE_TEST_SUITE_P(Resolutions, NozzleResolutionTest,
                         ::testing::Values(std::pair{2, 2}, std::pair{3, 5},
                                           std::pair{4, 8}, std::pair{6, 10},
                                           std::pair{8, 4}));

}  // namespace
}  // namespace dsmcpic::mesh
