// Unit battery for the timer-augmented cost model and the when-to-rebalance
// policies (DESIGN.md §2h). These tests pin the decision layer in isolation
// from the solver: EWMA convergence of the per-rank corrections, recovery of
// per-cell weights from synthetic timings, the hybrid blend's bounds, the
// threshold/look-ahead equivalences, and the checkpoint roundtrips.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "balance/cost_model.hpp"
#include "balance/policy.hpp"
#include "support/error.hpp"

namespace dsmcpic::balance {
namespace {

// ---- CostModel --------------------------------------------------------------

TEST(CostModel, ParseAndNameRoundtrip) {
  EXPECT_EQ(parse_cost_model("static"), CostModelKind::kStatic);
  EXPECT_EQ(parse_cost_model("timer"), CostModelKind::kTimer);
  EXPECT_EQ(parse_cost_model("hybrid"), CostModelKind::kHybrid);
  EXPECT_STREQ(cost_model_name(CostModelKind::kTimer), "timer");
  EXPECT_THROW(parse_cost_model("wallclock"), Error);
}

TEST(CostModel, StaticKindIgnoresObservations) {
  CostModelConfig cfg;
  cfg.kind = CostModelKind::kStatic;
  CostModel m(cfg, 2);
  const std::vector<double> measured{10.0, 1.0}, predicted{1.0, 1.0};
  for (int i = 0; i < 50; ++i) m.observe_step(measured, predicted);
  EXPECT_EQ(m.observations(), 0);
  EXPECT_DOUBLE_EQ(m.rank_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(m.rank_scale(1), 1.0);
}

TEST(CostModel, StaticCellWeightsAreExactlyEq7) {
  // The default-compatible path must reproduce wlm = N + R*C + W_cell
  // bit-for-bit — this is what keeps the pre-cost-model golden digests.
  CostModel m(CostModelConfig{}, 2);
  const std::vector<std::int32_t> owner{0, 0, 1, 1};
  const std::vector<std::int64_t> neutrals{10, 0, 3, 7};
  const std::vector<std::int64_t> charged{0, 4, 1, 0};
  const auto w = m.cell_weights(owner, neutrals, charged,
                                /*weight_ratio=*/2.5, /*cell_weight=*/0.5);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 10 + 2.5 * 0 + 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0 + 2.5 * 4 + 0.5);
  EXPECT_DOUBLE_EQ(w[2], 3 + 2.5 * 1 + 0.5);
  EXPECT_DOUBLE_EQ(w[3], 7 + 2.5 * 0 + 0.5);
}

TEST(CostModel, EwmaConvergesToMeasuredOverPredictedRatio) {
  // Rank 0 consistently costs 1.5x its predicted share, rank 1 0.5x
  // (measured {3,1} vs predicted {1,1}: means are 2 and 1, so the
  // normalized ratios are 1.5 and 0.5). The EWMA must converge there.
  CostModelConfig cfg;
  cfg.kind = CostModelKind::kTimer;
  CostModel m(cfg, 2);
  const std::vector<double> measured{3.0, 1.0}, predicted{1.0, 1.0};
  for (int i = 0; i < 60; ++i) m.observe_step(measured, predicted);
  EXPECT_EQ(m.observations(), 60);
  EXPECT_NEAR(m.rank_scale(0), 1.5, 1e-9);
  EXPECT_NEAR(m.rank_scale(1), 0.5, 1e-9);
}

TEST(CostModel, RecoversPerCellWeightsFromSyntheticTimings) {
  // 2 ranks x 2 cells, equal static loads per rank. Feed timings where
  // rank 0's particles do double the work; the timer weights must come
  // back with rank-0 cells 2x the weight of rank-1 cells (the ratio of the
  // mean-normalized corrections (4/3)/(2/3)), preserving the static
  // weights' within-rank shape.
  CostModelConfig cfg;
  cfg.kind = CostModelKind::kTimer;
  CostModel m(cfg, 2);
  const std::vector<double> measured{2.0, 1.0}, predicted{1.0, 1.0};
  for (int i = 0; i < 60; ++i) m.observe_step(measured, predicted);

  const std::vector<std::int32_t> owner{0, 0, 1, 1};
  const std::vector<std::int64_t> neutrals{100, 50, 100, 50};
  const std::vector<std::int64_t> charged(4, 0);
  const auto w = m.cell_weights(owner, neutrals, charged, 1.0, 0.0);
  EXPECT_NEAR(w[0] / w[2], (2.0 / 1.5) / (2.0 / 3.0), 1e-6);
  // Within a rank the static shape survives: cell 0 has 2x cell 1's load.
  EXPECT_NEAR(w[0] / w[1], 2.0, 1e-9);
  EXPECT_NEAR(w[2] / w[3], 2.0, 1e-9);
}

TEST(CostModel, CorrectionClampedToConfiguredBounds) {
  CostModelConfig cfg;
  cfg.kind = CostModelKind::kTimer;
  cfg.min_scale = 0.25;
  cfg.max_scale = 4.0;
  CostModel m(cfg, 2);
  // Opposing skews give raw corrections of 100x and 0.01x; both must clamp.
  const std::vector<double> measured{100.0, 1.0}, predicted{1.0, 100.0};
  for (int i = 0; i < 200; ++i) m.observe_step(measured, predicted);
  EXPECT_NEAR(m.rank_scale(0), 4.0, 1e-9);
  EXPECT_NEAR(m.rank_scale(1), 0.25, 1e-9);
}

TEST(CostModel, HybridBlendsBetweenStaticAndTimer) {
  // With scale s learned, hybrid weight multiplier is (1-b) + b*s: b=0
  // reproduces static, b=1 reproduces timer, 0<b<1 sits strictly between.
  const std::vector<double> measured{3.0, 1.0}, predicted{1.0, 1.0};
  const std::vector<std::int32_t> owner{0, 1};
  const std::vector<std::int64_t> neutrals{10, 10}, charged{0, 0};

  auto weights_for = [&](CostModelKind kind, double blend) {
    CostModelConfig cfg;
    cfg.kind = kind;
    cfg.hybrid_blend = blend;
    CostModel m(cfg, 2);
    for (int i = 0; i < 60; ++i) m.observe_step(measured, predicted);
    return m.cell_weights(owner, neutrals, charged, 1.0, 0.0);
  };

  const auto wt = weights_for(CostModelKind::kTimer, 0.5);
  const auto wh0 = weights_for(CostModelKind::kHybrid, 0.0);
  const auto wh1 = weights_for(CostModelKind::kHybrid, 1.0);
  const auto wh = weights_for(CostModelKind::kHybrid, 0.5);
  EXPECT_DOUBLE_EQ(wh0[0], 10.0);  // blend 0 == static
  EXPECT_DOUBLE_EQ(wh1[0], wt[0]);  // blend 1 == timer
  EXPECT_GT(wh[0], 10.0);
  EXPECT_LT(wh[0], wt[0]);
  EXPECT_NEAR(wh[0], 0.5 * 10.0 + 0.5 * wt[0], 1e-9);
}

TEST(CostModel, DegenerateWindowsAreSkipped) {
  CostModelConfig cfg;
  cfg.kind = CostModelKind::kTimer;
  CostModel m(cfg, 2);
  const std::vector<double> zeros{0.0, 0.0}, ones{1.0, 1.0};
  m.observe_step(zeros, ones);  // no measured signal
  m.observe_step(ones, zeros);  // no predicted signal
  EXPECT_EQ(m.observations(), 0);
  EXPECT_DOUBLE_EQ(m.rank_scale(0), 1.0);
}

TEST(CostModel, SaveLoadRoundtripPreservesScales) {
  CostModelConfig cfg;
  cfg.kind = CostModelKind::kTimer;
  CostModel m(cfg, 3);
  const std::vector<double> measured{3.0, 2.0, 1.0}, predicted{1.0, 1.0, 1.0};
  for (int i = 0; i < 7; ++i) m.observe_step(measured, predicted);

  std::stringstream ss;
  m.save(ss);
  CostModel restored(cfg, 3);
  restored.load(ss);
  EXPECT_EQ(restored.observations(), m.observations());
  for (int r = 0; r < 3; ++r)
    EXPECT_DOUBLE_EQ(restored.rank_scale(r), m.rank_scale(r));

  std::stringstream ss2;
  m.save(ss2);
  CostModel wrong(cfg, 2);  // rank-count mismatch must be rejected
  EXPECT_THROW(wrong.load(ss2), Error);
}

// ---- RebalancePolicy --------------------------------------------------------

TEST(RebalancePolicy, ParseAndNameRoundtrip) {
  EXPECT_EQ(parse_policy("threshold"), PolicyKind::kThreshold);
  EXPECT_EQ(parse_policy("lookahead"), PolicyKind::kLookahead);
  EXPECT_STREQ(policy_name(PolicyKind::kLookahead), "lookahead");
  EXPECT_THROW(parse_policy("oracle"), Error);
}

TEST(RebalancePolicy, ThresholdTriggersExactlyOnLii) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kThreshold;
  cfg.threshold = 2.0;
  RebalancePolicy p(cfg);
  EXPECT_FALSE(p.decide(0, 1.9).rebalance);
  EXPECT_FALSE(p.decide(1, 2.0).rebalance);  // strict inequality
  EXPECT_TRUE(p.decide(2, 2.1).rebalance);
  ASSERT_EQ(p.decisions().size(), 3u);
  EXPECT_EQ(p.decisions()[2].step, 2);
  EXPECT_DOUBLE_EQ(p.decisions()[2].lii, 2.1);
}

TEST(RebalancePolicy, HorizonZeroDegeneratesToThreshold) {
  // With nothing to project over, the look-ahead must make the identical
  // decision sequence as the fixed-threshold baseline.
  PolicyConfig la;
  la.kind = PolicyKind::kLookahead;
  la.horizon = 0;
  la.threshold = 1.5;
  PolicyConfig th = la;
  th.kind = PolicyKind::kThreshold;
  RebalancePolicy pa(la), pt(th);

  const std::vector<double> costs{9.0, 1.0};
  const double liis[] = {1.0, 1.4, 1.6, 3.0, 1.5, 1.51};
  for (int i = 0; i < 6; ++i) {
    pa.observe_step(costs);
    pt.observe_step(costs);
    EXPECT_EQ(pa.decide(i, liis[i]).rebalance, pt.decide(i, liis[i]).rebalance)
        << "diverged at step " << i;
  }
}

TEST(RebalancePolicy, LookaheadNeedsAnObservationFirst) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kLookahead;
  cfg.horizon = 10;
  RebalancePolicy p(cfg);
  // No observe_step yet: nothing to project, must not fire even on huge lii.
  EXPECT_FALSE(p.decide(0, 100.0).rebalance);
}

TEST(RebalancePolicy, DominatingMigrationCostMeansNeverRebalance) {
  // Branch B so expensive that no projected imbalance can beat it: the
  // policy must sit still through sustained heavy imbalance.
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kLookahead;
  cfg.horizon = 10;
  cfg.initial_rebalance_cost = 1e12;
  RebalancePolicy p(cfg);
  const std::vector<double> skewed{100.0, 0.0};
  for (int i = 0; i < 40; ++i) {
    p.observe_step(skewed);
    EXPECT_FALSE(p.decide(i, 50.0).rebalance) << "fired at step " << i;
  }
}

TEST(RebalancePolicy, StepFunctionShiftRebalancesExactlyOnce) {
  // A step-function load shift: balanced, then persistently skewed. The
  // look-ahead must fire once, and — after the feedback that the fresh
  // partition is balanced again — never again.
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kLookahead;
  cfg.horizon = 10;
  RebalancePolicy p(cfg);
  const std::vector<double> balanced{5.0, 5.0};
  const std::vector<double> skewed{9.0, 1.0};

  int fires = 0;
  for (int i = 0; i < 5; ++i) {  // balanced prelude
    p.observe_step(balanced);
    fires += p.decide(i, 1.0).rebalance ? 1 : 0;
  }
  EXPECT_EQ(fires, 0);

  for (int i = 5; i < 30; ++i) {  // the shift
    p.observe_step(skewed);
    if (p.decide(i, 9.0).rebalance) {
      ++fires;
      p.observe_rebalance(2.0);  // cheap rebalance, and it worked:
      // every later step arrives balanced.
      for (int j = i + 1; j < 30; ++j) {
        p.observe_step(balanced);
        fires += p.decide(j, 1.0).rebalance ? 1 : 0;
      }
      break;
    }
  }
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(p.rebalances_observed(), 1);
}

TEST(RebalancePolicy, ResidualImbalanceRaisesTheBar) {
  // If a rebalance is observed to leave the same imbalance it found
  // (residual == level), branch A projects zero recoverable cost and the
  // policy must stop proposing rebalances for that steady state.
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kLookahead;
  cfg.horizon = 10;
  RebalancePolicy p(cfg);
  const std::vector<double> skewed{9.0, 1.0};  // imb = 4 per step

  for (int i = 0; i < 10; ++i) p.observe_step(skewed);
  EXPECT_TRUE(p.decide(10, 9.0).rebalance);  // worth trying once
  p.observe_rebalance(1.0);
  for (int i = 11; i < 40; ++i) {  // ...but the rebalance bought nothing
    p.observe_step(skewed);
    EXPECT_FALSE(p.decide(i, 9.0).rebalance) << "refired at step " << i;
  }
  EXPECT_NEAR(p.residual_imbalance(), 4.0, 1e-9);
}

TEST(RebalancePolicy, GrowingTrendProjectsMoreThanFlat) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kLookahead;
  cfg.horizon = 10;
  RebalancePolicy flat_p(cfg), grow_p(cfg);
  for (int i = 0; i < 20; ++i) {
    flat_p.observe_step(std::vector<double>{6.0, 2.0});  // imb = 2, flat
    const double hi = 4.0 + 0.5 * i;                     // imb grows
    grow_p.observe_step(std::vector<double>{hi, 4.0 - 0.5 * i < 0.0
                                                    ? 0.0
                                                    : 4.0 - 0.5 * i});
  }
  const PolicyDecision df = flat_p.decide(20, 3.0);
  const PolicyDecision dg = grow_p.decide(20, 3.0);
  EXPECT_GT(dg.projected_imbalance_cost, df.projected_imbalance_cost);
}

TEST(RebalancePolicy, CostEstimateIsEwmaOfMeasurements) {
  PolicyConfig cfg;
  cfg.ewma_alpha = 0.5;
  cfg.initial_rebalance_cost = 7.0;
  RebalancePolicy p(cfg);
  EXPECT_DOUBLE_EQ(p.rebalance_cost_estimate(), 7.0);  // prior
  p.observe_rebalance(10.0);
  EXPECT_DOUBLE_EQ(p.rebalance_cost_estimate(), 10.0);  // first sample direct
  p.observe_rebalance(20.0);
  EXPECT_DOUBLE_EQ(p.rebalance_cost_estimate(), 15.0);  // 0.5*10 + 0.5*20
  EXPECT_EQ(p.rebalances_observed(), 2);
}

TEST(RebalancePolicy, ObserveRebalanceResetsImbalanceLearning) {
  RebalancePolicy p(PolicyConfig{});
  const std::vector<double> skewed{9.0, 1.0};
  for (int i = 0; i < 10; ++i) p.observe_step(skewed);
  EXPECT_GT(p.imbalance_per_step(), 0.0);
  p.observe_rebalance(1.0);
  EXPECT_DOUBLE_EQ(p.imbalance_per_step(), 0.0);
}

TEST(RebalancePolicy, SaveLoadRoundtripPreservesDecisions) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kLookahead;
  cfg.horizon = 5;
  RebalancePolicy p(cfg);
  const std::vector<double> costs{4.0, 2.0, 0.0};
  for (int i = 0; i < 8; ++i) {
    p.observe_step(costs);
    p.decide(i, 1.0 + 0.25 * i);
  }
  p.observe_rebalance(3.0);

  std::stringstream ss;
  p.save(ss);
  RebalancePolicy q(cfg);
  q.load(ss);
  EXPECT_DOUBLE_EQ(q.rebalance_cost_estimate(), p.rebalance_cost_estimate());
  EXPECT_DOUBLE_EQ(q.imbalance_per_step(), p.imbalance_per_step());
  EXPECT_DOUBLE_EQ(q.residual_imbalance(), p.residual_imbalance());
  EXPECT_EQ(q.rebalances_observed(), p.rebalances_observed());
  ASSERT_EQ(q.decisions().size(), p.decisions().size());
  for (std::size_t i = 0; i < p.decisions().size(); ++i) {
    EXPECT_EQ(q.decisions()[i].step, p.decisions()[i].step);
    EXPECT_DOUBLE_EQ(q.decisions()[i].lii, p.decisions()[i].lii);
    EXPECT_DOUBLE_EQ(q.decisions()[i].projected_imbalance_cost,
                     p.decisions()[i].projected_imbalance_cost);
    EXPECT_EQ(q.decisions()[i].rebalance, p.decisions()[i].rebalance);
  }
  // Continuing both must stay in lockstep (state is complete).
  p.observe_step(costs);
  q.observe_step(costs);
  EXPECT_EQ(p.decide(9, 2.5).rebalance, q.decide(9, 2.5).rebalance);
}

TEST(RebalancePolicy, ConfigValidationRejectsBadValues) {
  PolicyConfig bad;
  bad.horizon = -1;
  EXPECT_THROW(RebalancePolicy{bad}, Error);
  bad = PolicyConfig{};
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(RebalancePolicy{bad}, Error);
  bad = PolicyConfig{};
  bad.cost_margin = 0.0;
  EXPECT_THROW(RebalancePolicy{bad}, Error);
  bad = PolicyConfig{};
  bad.initial_rebalance_cost = -1.0;
  EXPECT_THROW(RebalancePolicy{bad}, Error);
}

}  // namespace
}  // namespace dsmcpic::balance
