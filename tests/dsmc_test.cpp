#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>

#include "dsmc/chemistry.hpp"
#include "dsmc/collide.hpp"
#include "dsmc/injector.hpp"
#include "dsmc/maxwell.hpp"
#include "dsmc/mover.hpp"
#include "dsmc/particles.hpp"
#include "dsmc/sampling.hpp"
#include "dsmc/species.hpp"
#include "mesh/nozzle.hpp"

namespace dsmcpic::dsmc {
namespace {

mesh::NozzleSpec test_spec() {
  mesh::NozzleSpec s;
  s.radius = 0.01;
  s.length = 0.05;
  s.inlet_radius_frac = 0.4;
  s.radial_divisions = 4;
  s.axial_divisions = 10;
  return s;
}

TEST(ParticleStore, AddRecordRoundTrip) {
  ParticleStore s;
  ParticleRecord p;
  p.position = {1, 2, 3};
  p.velocity = {-1, 0, 5};
  p.id = 42;
  p.species = kSpeciesHPlus;
  p.cell = 7;
  s.add(p);
  ASSERT_EQ(s.size(), 1u);
  const ParticleRecord q = s.record(0);
  EXPECT_EQ(q.position, p.position);
  EXPECT_EQ(q.velocity, p.velocity);
  EXPECT_EQ(q.id, 42);
  EXPECT_EQ(q.species, kSpeciesHPlus);
  EXPECT_EQ(q.cell, 7);
}

TEST(ParticleStore, RemoveSwapAndFlagged) {
  ParticleStore s;
  for (int i = 0; i < 5; ++i) {
    ParticleRecord p;
    p.id = i;
    s.add(p);
  }
  s.remove_swap(1);  // last (id 4) swaps into slot 1
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.ids()[1], 4);

  std::vector<std::uint8_t> flags{1, 0, 1, 0};
  EXPECT_EQ(s.remove_flagged(flags), 2u);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.ids()[0], 4);  // stable order of survivors
  EXPECT_EQ(s.ids()[1], 3);
}

TEST(ParticleStore, CountSpecies) {
  ParticleStore s;
  for (int i = 0; i < 6; ++i) {
    ParticleRecord p;
    p.species = (i % 3 == 0) ? kSpeciesHPlus : kSpeciesH;
    s.add(p);
  }
  EXPECT_EQ(s.count_species(kSpeciesH), 4);
  EXPECT_EQ(s.count_species(kSpeciesHPlus), 2);
}

TEST(CellIndex, GroupsByCell) {
  ParticleStore s;
  const int cells[] = {2, 0, 2, 1, 2};
  for (int c : cells) {
    ParticleRecord p;
    p.cell = c;
    s.add(p);
  }
  const CellIndex idx(s, 3);
  EXPECT_EQ(idx.particles_in(0).size(), 1u);
  EXPECT_EQ(idx.particles_in(1).size(), 1u);
  EXPECT_EQ(idx.particles_in(2).size(), 3u);
  for (const auto i : idx.particles_in(2)) EXPECT_EQ(s.cells()[i], 2);
}

TEST(Maxwell, ThermalSpeedAndFluxLimits) {
  const double m = constants::kHydrogenMass;
  const double vth = thermal_speed(300.0, m);
  EXPECT_NEAR(vth, std::sqrt(2 * constants::kBoltzmann * 300 / m), 1e-9);
  // Zero drift: flux = n vth / (2 sqrt(pi)).
  EXPECT_NEAR(maxwellian_flux_factor(0.0, 300.0, m),
              vth / (2 * std::sqrt(M_PI)), 1e-9);
  // Strong drift: flux -> drift.
  EXPECT_NEAR(maxwellian_flux_factor(50 * vth, 300.0, m), 50 * vth,
              0.01 * 50 * vth);
}

TEST(Maxwell, SampledMomentsMatch) {
  Rng rng(31);
  const double m = constants::kHydrogenMass;
  const double T = 500.0;
  double sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum2 += sample_maxwellian(rng, T, m).norm2();
  // <v^2> = 3 kT / m.
  EXPECT_NEAR(sum2 / n, 3 * constants::kBoltzmann * T / m,
              0.02 * 3 * constants::kBoltzmann * T / m);
}

TEST(Maxwell, InflowSpeedsArePositiveAndFluxWeighted) {
  Rng rng(8);
  const double m = constants::kHydrogenMass;
  const double drift = 1e4, T = 300.0;
  double mean_v = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = sample_inflow_normal_speed(rng, drift, T, m);
    ASSERT_GT(v, 0.0);
    mean_v += v;
  }
  mean_v /= n;
  // With s = drift/vth ~ 4.5 the mean inflow speed ~ drift (slightly above).
  EXPECT_GT(mean_v, drift);
  EXPECT_LT(mean_v, drift * 1.2);
}

TEST(Maxwell, DiffuseReflectionPointsInward) {
  Rng rng(12);
  const Vec3 n_in{0, 0, 1};
  for (int i = 0; i < 1000; ++i) {
    const Vec3 v =
        sample_diffuse_reflection(rng, n_in, 300.0, constants::kHydrogenMass);
    ASSERT_GT(dot(v, n_in), 0.0);
  }
}

TEST(Injector, CountMatchesExpectation) {
  const mesh::NozzleSpec spec = test_spec();
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(spec);
  const SpeciesTable table = SpeciesTable::hydrogen(1e9, 100.0);
  InjectionSpec is;
  is.species = kSpeciesH;
  is.number_density = 1e19;
  is.temperature = 300.0;
  is.drift_speed = 1e4;
  MaxwellianInjector inj(grid, mesh::BoundaryKind::kInlet, is, 7);

  const double dt = 2e-7;
  const double expected = inj.expected_per_step(table, dt);
  ASSERT_GT(expected, 10.0);

  const std::vector<std::int32_t> owner(grid.num_tets(), 0);
  ParticleStore store;
  const int steps = 20;
  std::int64_t total = 0;
  for (int s = 0; s < steps; ++s)
    total += inj.inject(store, table, dt, s, owner, 0);
  EXPECT_NEAR(static_cast<double>(total), expected * steps,
              0.05 * expected * steps + 2 * steps);
}

TEST(Injector, ParticlesStartInsideTheirCellMovingInward) {
  const mesh::NozzleSpec spec = test_spec();
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(spec);
  const SpeciesTable table = SpeciesTable::hydrogen(1e8, 100.0);
  InjectionSpec is;
  is.number_density = 1e19;
  is.drift_speed = 1e4;
  MaxwellianInjector inj(grid, mesh::BoundaryKind::kInlet, is, 7);
  const std::vector<std::int32_t> owner(grid.num_tets(), 0);
  ParticleStore store;
  inj.inject(store, table, 2e-7, 0, owner, 0);
  ASSERT_GT(store.size(), 0u);
  for (std::size_t i = 0; i < store.size(); ++i) {
    const auto cell = store.cells()[i];
    EXPECT_TRUE(grid.contains(cell, store.position(i), 1e-6));
    EXPECT_GT(store.velocity(i).z, 0.0);  // inward = +z at the inlet
  }
}

TEST(Injector, OwnershipFiltersFaces) {
  const mesh::NozzleSpec spec = test_spec();
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(spec);
  const SpeciesTable table = SpeciesTable::hydrogen(1e8, 100.0);
  InjectionSpec is;
  is.number_density = 1e19;
  MaxwellianInjector inj(grid, mesh::BoundaryKind::kInlet, is, 7);
  // No cells owned by rank 5: nothing injected.
  const std::vector<std::int32_t> owner(grid.num_tets(), 0);
  ParticleStore store;
  EXPECT_EQ(inj.inject(store, table, 2e-7, 0, owner, 5), 0);
  EXPECT_EQ(store.size(), 0u);
}

TEST(Injector, ShardsPartitionTheStream) {
  // The sharded injection must generate the exact same particle set no
  // matter how many shards it is split into (this is what makes serial and
  // parallel runs inject identical streams).
  const mesh::NozzleSpec spec = test_spec();
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(spec);
  const SpeciesTable table = SpeciesTable::hydrogen(1e8, 100.0);
  InjectionSpec is;
  is.number_density = 1e19;
  is.drift_speed = 1e4;

  auto collect = [&](int nshards) {
    MaxwellianInjector inj(grid, mesh::BoundaryKind::kInlet, is, 7);
    std::map<std::int64_t, ParticleRecord> by_id;
    for (int step = 0; step < 3; ++step) {
      inj.begin_step(table, 2e-7, step);
      for (int s = 0; s < nshards; ++s) {
        ParticleStore store;
        inj.inject_shard(store, table, s, nshards);
        for (std::size_t i = 0; i < store.size(); ++i) {
          const ParticleRecord p = store.record(i);
          EXPECT_TRUE(by_id.emplace(p.id, p).second) << "duplicate id";
        }
      }
    }
    return by_id;
  };

  const auto one = collect(1);
  const auto four = collect(4);
  const auto seven = collect(7);
  ASSERT_GT(one.size(), 50u);
  ASSERT_EQ(one.size(), four.size());
  ASSERT_EQ(one.size(), seven.size());
  for (const auto& [id, p] : one) {
    const auto it = four.find(id);
    ASSERT_NE(it, four.end());
    EXPECT_EQ(it->second.position, p.position);
    EXPECT_EQ(it->second.velocity, p.velocity);
    EXPECT_EQ(it->second.cell, p.cell);
  }
}

TEST(Injector, ShardRequiresBeginStep) {
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(test_spec());
  const SpeciesTable table = SpeciesTable::hydrogen(1e8, 100.0);
  MaxwellianInjector inj(grid, mesh::BoundaryKind::kInlet, {}, 7);
  ParticleStore store;
  EXPECT_THROW(inj.inject_shard(store, table, 0, 2), Error);
}

TEST(Mover, StraightFlightStaysInDomain) {
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(test_spec());
  const SpeciesTable table = SpeciesTable::hydrogen(1e8, 100.0);
  const Mover mover(grid, table, {});
  Vec3 pos{0, 0, 0.005};
  Vec3 vel{0, 0, 1e4};
  std::int32_t cell = grid.locate(pos, 0);
  ASSERT_GE(cell, 0);
  MoveStats st;
  // Move 1e-6 s: travels 1 cm along the axis, no wall contact.
  ASSERT_TRUE(mover.move_one(pos, vel, cell, kSpeciesH, 1, 1e-6, 0, st));
  EXPECT_NEAR(pos.z, 0.015, 1e-9);
  EXPECT_NEAR(pos.x, 0.0, 1e-12);
  EXPECT_TRUE(grid.contains(cell, pos, 1e-9));
  EXPECT_GT(st.walk_steps, 0);
}

TEST(Mover, ExitsThroughOutlet) {
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(test_spec());
  const SpeciesTable table = SpeciesTable::hydrogen(1e8, 100.0);
  const Mover mover(grid, table, {});
  Vec3 pos{0, 0, 0.045};
  Vec3 vel{0, 0, 1e4};
  std::int32_t cell = grid.locate(pos, 0);
  MoveStats st;
  EXPECT_FALSE(mover.move_one(pos, vel, cell, kSpeciesH, 1, 1e-6, 0, st));
  EXPECT_EQ(st.exited, 1);
}

TEST(Mover, SpecularReflectionConservesEnergy) {
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(test_spec());
  const SpeciesTable table = SpeciesTable::hydrogen(1e8, 100.0);
  MoverConfig cfg;
  cfg.wall_model = WallModel::kSpecular;
  const Mover mover(grid, table, cfg);
  Vec3 pos{0, 0, 0.025};
  Vec3 vel{2e4, 0, 100.0};  // mostly radial: will hit the lateral wall
  const double e0 = vel.norm2();
  std::int32_t cell = grid.locate(pos, 0);
  MoveStats st;
  ASSERT_TRUE(mover.move_one(pos, vel, cell, kSpeciesH, 1, 2e-6, 0, st));
  EXPECT_GT(st.wall_hits, 0);
  EXPECT_NEAR(vel.norm2(), e0, 1e-6 * e0);
  EXPECT_TRUE(grid.contains(cell, pos, 1e-6));
}

TEST(Mover, DiffuseWallThermalizes) {
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(test_spec());
  const SpeciesTable table = SpeciesTable::hydrogen(1e8, 100.0);
  MoverConfig cfg;
  cfg.wall_temperature = 300.0;
  const Mover mover(grid, table, cfg);
  // Many fast radial particles; after a diffuse wall hit their speed should
  // drop to thermal scale (vth ~ 2225 m/s at 300 K).
  double mean_speed = 0.0;
  int reflected = 0;
  for (int i = 0; i < 200; ++i) {
    Vec3 pos{0, 0, 0.025};
    Vec3 vel{3e4, 0, 0};
    std::int32_t cell = grid.locate(pos, 0);
    MoveStats st;
    if (mover.move_one(pos, vel, cell, kSpeciesH, i, 1e-6, 0, st) &&
        st.wall_hits > 0) {
      mean_speed += vel.norm();
      ++reflected;
    }
  }
  ASSERT_GT(reflected, 100);
  mean_speed /= reflected;
  EXPECT_LT(mean_speed, 8000.0);  // far below the 3e4 injection speed
  EXPECT_GT(mean_speed, 1000.0);
}

TEST(Collide, MomentumAndEnergyConservedPerCell) {
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(test_spec());
  // Big fnum + big diameter so collisions certainly happen.
  SpeciesTable table = SpeciesTable::hydrogen(1e14, 1e14);
  ParticleStore store;
  Rng rng(77);
  const std::int32_t cell = grid.locate({0, 0, 0.025}, 0);
  ASSERT_GE(cell, 0);
  for (int i = 0; i < 200; ++i) {
    ParticleRecord p;
    p.position = grid.centroid(cell);
    p.velocity = sample_maxwellian(rng, 100000.0, constants::kHydrogenMass);
    p.species = kSpeciesH;
    p.cell = cell;
    p.id = i;
    store.add(p);
  }
  Vec3 mom0;
  double e0 = 0.0;
  for (std::size_t i = 0; i < store.size(); ++i) {
    mom0 += store.velocity(i);
    e0 += store.velocity(i).norm2();
  }
  CollisionKernel kernel(grid, table, {}, nullptr);
  const CellIndex index(store, grid.num_tets());
  const std::vector<std::int32_t> my_cells{cell};
  const CollisionStats st =
      kernel.collide_cells(store, index, my_cells, 1e-5, 0);
  EXPECT_GT(st.candidates, 0);
  EXPECT_GT(st.collisions, 0);
  Vec3 mom1;
  double e1 = 0.0;
  for (std::size_t i = 0; i < store.size(); ++i) {
    mom1 += store.velocity(i);
    e1 += store.velocity(i).norm2();
  }
  EXPECT_NEAR((mom1 - mom0).norm(), 0.0, 1e-6 * mom0.norm() + 1e-3);
  EXPECT_NEAR(e1, e0, 1e-9 * e0);
}

TEST(Collide, VhsCrossSectionDecreasesWithSpeed) {
  const SpeciesTable table = SpeciesTable::hydrogen(1, 1);
  const double s1 = vhs_cross_section(table[0], table[0], 1e3);
  const double s2 = vhs_cross_section(table[0], table[0], 1e4);
  EXPECT_GT(s1, s2);
  EXPECT_GT(s2, 0.0);
}

// The per-pair constant cache must reproduce the free function exactly:
// the precomputed groupings (pi d^2, 2 kB T_ref, Gamma term) are the same
// subexpressions, so EXPECT_EQ (bitwise for doubles) is the contract.
TEST(Collide, VhsPairCacheMatchesFreeFunctionBitwise) {
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(test_spec());
  const SpeciesTable table = SpeciesTable::hydrogen(1e12, 6000.0);
  CollisionKernel kernel(grid, table, CollisionConfig{});
  for (std::int32_t si = 0; si < table.size(); ++si) {
    for (std::int32_t sj = 0; sj < table.size(); ++sj) {
      for (const double c_r : {1e2, 1.7e3, 1e4, 3.33e5, 0.0}) {
        EXPECT_EQ(kernel.vhs_sigma(si, sj, c_r),
                  vhs_cross_section(table[si], table[sj], c_r))
            << "pair (" << si << "," << sj << ") c_r=" << c_r;
      }
    }
  }
}

TEST(CellIndex, RebuildMatchesFreshBuildAndReusesStorage) {
  ParticleStore store;
  Rng rng(0xce11ULL);
  const std::int32_t num_cells = 13;
  for (int i = 0; i < 200; ++i) {
    ParticleRecord p;
    p.id = i;
    p.cell = static_cast<std::int32_t>(rng.uniform_index(num_cells));
    store.add(p);
  }
  CellIndex reused;
  reused.rebuild(store, num_cells);
  {
    const CellIndex fresh(store, num_cells);
    for (std::int32_t c = 0; c < num_cells; ++c) {
      const auto a = fresh.particles_in(c);
      const auto b = reused.particles_in(c);
      ASSERT_EQ(a.size(), b.size()) << "cell " << c;
      for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
    }
  }
  // Mutate the population and rebuild in place: still equal to scratch.
  for (int i = 0; i < 57; ++i) {
    ParticleRecord p;
    p.id = 1000 + i;
    p.cell = static_cast<std::int32_t>(rng.uniform_index(num_cells));
    store.add(p);
  }
  reused.rebuild(store, num_cells);
  const CellIndex fresh(store, num_cells);
  EXPECT_EQ(reused.num_cells(), num_cells);
  for (std::int32_t c = 0; c < num_cells; ++c) {
    const auto a = fresh.particles_in(c);
    const auto b = reused.particles_in(c);
    ASSERT_EQ(a.size(), b.size()) << "cell " << c;
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST(Chemistry, IonizationSpawnsIonAboveThreshold) {
  const SpeciesTable table = SpeciesTable::hydrogen(1e12, 6000.0);
  ChemistryConfig cfg;
  cfg.ionization_threshold = 1e-21;
  cfg.ionization_probability = 1.0;
  Chemistry chem(table, cfg);
  ParticleStore store;
  for (int i = 0; i < 2; ++i) {
    ParticleRecord p;
    p.species = kSpeciesH;
    p.cell = 0;
    p.id = i;
    p.velocity = {0, 0, (i == 0) ? 1e4 : -1e4};
    store.add(p);
  }
  Rng rng(5);
  ChemistryStats stats;
  std::vector<ParticleRecord> spawned;
  EXPECT_TRUE(chem.try_ionization(rng, store, 0, 1, 1e-20, stats, spawned));
  EXPECT_EQ(stats.ionizations, 1);
  ASSERT_EQ(spawned.size(), 1u);
  store.add(spawned[0]);
  ASSERT_EQ(store.size(), 3u);
  EXPECT_EQ(store.species()[2], kSpeciesHPlus);
  // Below threshold: nothing happens.
  spawned.clear();
  EXPECT_FALSE(chem.try_ionization(rng, store, 0, 1, 1e-22, stats, spawned));
  EXPECT_TRUE(spawned.empty());
}

TEST(Chemistry, RecombinationRemovesIons) {
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(test_spec());
  const SpeciesTable table = SpeciesTable::hydrogen(1e12, 1e10);
  ChemistryConfig cfg;
  cfg.recombination_rate = 1.0;  // enormous: every ion recombines
  Chemistry chem(table, cfg);
  ParticleStore store;
  const std::int32_t cell = grid.locate({0, 0, 0.02}, 0);
  for (int i = 0; i < 50; ++i) {
    ParticleRecord p;
    p.species = kSpeciesHPlus;
    p.cell = cell;
    p.id = i;
    store.add(p);
  }
  std::vector<std::uint8_t> removed(store.size(), 0);
  const CellIndex index(store, grid.num_tets());
  const std::vector<std::int32_t> my_cells{cell};
  const ChemistryStats st =
      chem.recombine(store, index, my_cells, grid, 1e-3, 0, removed);
  EXPECT_EQ(st.recombinations, 50);
  // Every ion either removed or converted to H (weight lottery at 1%).
  for (std::size_t i = 0; i < store.size(); ++i)
    EXPECT_TRUE(removed[i] || store.species()[i] == kSpeciesH);
}

TEST(Chemistry, ChargeExchangeSwapsIonVelocity) {
  const SpeciesTable table = SpeciesTable::hydrogen(1e12, 6000.0);
  ChemistryConfig cfg;
  cfg.cex_probability = 1.0;
  Chemistry chem(table, cfg);
  ParticleStore store;
  ParticleRecord ion;
  ion.species = kSpeciesHPlus;
  ion.velocity = {3e4, 0, 0};  // fast ion
  store.add(ion);
  ParticleRecord neutral;
  neutral.species = kSpeciesH;
  neutral.velocity = {0, 0, 2e3};  // slow neutral
  store.add(neutral);
  Rng rng(4);
  ChemistryStats stats;
  // Argument order must not matter.
  EXPECT_TRUE(chem.try_charge_exchange(rng, store, 1, 0, stats));
  EXPECT_EQ(stats.charge_exchanges, 1);
  // The ion super-particle adopted the (slow) neutral velocity.
  EXPECT_EQ(store.velocity(0), Vec3(0, 0, 2e3));
  // Species identities unchanged (weight-consistent CEX).
  EXPECT_EQ(store.species()[0], kSpeciesHPlus);
  EXPECT_EQ(store.species()[1], kSpeciesH);
}

TEST(Chemistry, ChargeExchangeNeedsMixedPair) {
  const SpeciesTable table = SpeciesTable::hydrogen(1e12, 6000.0);
  ChemistryConfig cfg;
  cfg.cex_probability = 1.0;
  Chemistry chem(table, cfg);
  ParticleStore store;
  for (int i = 0; i < 2; ++i) {
    ParticleRecord p;
    p.species = kSpeciesH;
    store.add(p);
  }
  Rng rng(4);
  ChemistryStats stats;
  EXPECT_FALSE(chem.try_charge_exchange(rng, store, 0, 1, stats));
  EXPECT_EQ(stats.charge_exchanges, 0);
}

TEST(Sampler, DensityMatchesPlacedParticles) {
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(test_spec());
  const SpeciesTable table = SpeciesTable::hydrogen(1e10, 100.0);
  CellSampler sampler(grid, table);
  ParticleStore store;
  const std::int32_t cell = grid.locate({0, 0, 0.02}, 0);
  for (int i = 0; i < 30; ++i) {
    ParticleRecord p;
    p.species = kSpeciesH;
    p.cell = cell;
    store.add(p);
  }
  sampler.sample(store);
  sampler.sample(store);  // two identical snapshots
  const auto density = sampler.number_density(kSpeciesH);
  EXPECT_NEAR(density[cell], 30.0 * 1e10 / grid.volume(cell),
              1e-6 * density[cell]);
  // Other cells empty.
  EXPECT_DOUBLE_EQ(density[(cell + 1) % grid.num_tets()], 0.0);
}

TEST(Sampler, AxisProfileReadsCells) {
  const mesh::NozzleSpec spec = test_spec();
  const mesh::TetMesh grid = mesh::make_cylinder_nozzle(spec);
  std::vector<double> field(grid.num_tets());
  for (std::int32_t t = 0; t < grid.num_tets(); ++t)
    field[t] = grid.centroid(t).z;  // field = z coordinate
  const auto prof = axis_profile(grid, field, spec.length, 10);
  ASSERT_EQ(prof.size(), 10u);
  for (int k = 1; k < 10; ++k) EXPECT_GT(prof[k], prof[k - 1] - 0.006);
  EXPECT_LT(prof[0], prof[9]);
}

}  // namespace
}  // namespace dsmcpic::dsmc
