// Tests for the solver's production features: checkpoint/restart, the
// balance auto-tuner, the phase timeline, and the hierarchical exchange
// strategy driving a full simulation.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/autotune.hpp"
#include "core/datasets.hpp"
#include "core/solver.hpp"
#include "core/timeline.hpp"

namespace dsmcpic::core {
namespace {

SolverConfig tiny_config() {
  Dataset d = make_dataset(1, /*particle_scale=*/0.25);
  d.config.nozzle.radial_divisions = 3;
  d.config.nozzle.axial_divisions = 6;
  return d.config;
}

ParallelConfig tiny_parallel(int nranks) {
  ParallelConfig p;
  p.nranks = nranks;
  p.balance.period = 4;
  return p;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Checkpoint, RestartReproducesUninterruptedRun) {
  const SolverConfig cfg = tiny_config();
  const ParallelConfig par = tiny_parallel(3);

  // Reference: uninterrupted 12-step run.
  CoupledSolver reference(cfg, par);
  reference.run(12);

  // Checkpointed: 7 steps, save, restore into a FRESH solver, 5 more steps.
  const std::string path = temp_path("dsmcpic_ckpt_test.bin");
  {
    CoupledSolver first(cfg, par);
    first.run(7);
    first.save_checkpoint(path);
  }
  CoupledSolver second(cfg, par);
  second.restore_checkpoint(path);
  EXPECT_EQ(second.current_step(), 7);
  second.run(5);

  EXPECT_EQ(second.total_particles(), reference.total_particles());
  EXPECT_EQ(second.particles_per_rank(), reference.particles_per_rank());
  EXPECT_DOUBLE_EQ(second.runtime().total_time(),
                   reference.runtime().total_time());
  // Sampled fields continue identically too.
  const auto da = reference.sampler().number_density(dsmc::kSpeciesH);
  const auto db = second.sampler().number_density(dsmc::kSpeciesH);
  for (std::size_t c = 0; c < da.size(); ++c) ASSERT_DOUBLE_EQ(da[c], db[c]);
  std::filesystem::remove(path);
}

// ExecMode is deliberately NOT part of the checkpoint fingerprint: a run
// saved under threaded execution restores into a sequential solver (and
// vice versa) and still reproduces the uninterrupted run exactly, because
// threading is bit-invisible (DESIGN.md §2c).
TEST(Checkpoint, ThreadedAndSequentialCheckpointsInterchange) {
  const SolverConfig cfg = tiny_config();
  ParallelConfig seq_par = tiny_parallel(4);
  ParallelConfig thr_par = seq_par;
  thr_par.exec_mode = par::ExecMode::kThreaded;
  thr_par.exec_threads = 3;

  // Reference: uninterrupted 10-step sequential run.
  CoupledSolver reference(cfg, seq_par);
  reference.run(10);

  const std::string path = temp_path("dsmcpic_ckpt_exec_mode.bin");

  // Threaded save -> sequential restore.
  {
    CoupledSolver threaded(cfg, thr_par);
    threaded.run(6);
    threaded.save_checkpoint(path);
  }
  {
    CoupledSolver restored(cfg, seq_par);
    restored.restore_checkpoint(path);
    restored.run(4);
    EXPECT_EQ(restored.particles_per_rank(), reference.particles_per_rank());
    EXPECT_EQ(restored.runtime().total_time(),
              reference.runtime().total_time());
    EXPECT_EQ(restored.potential(), reference.potential());
  }

  // Sequential save -> threaded restore.
  {
    CoupledSolver plain(cfg, seq_par);
    plain.run(6);
    plain.save_checkpoint(path);
  }
  {
    CoupledSolver restored(cfg, thr_par);
    restored.restore_checkpoint(path);
    restored.run(4);
    EXPECT_EQ(restored.particles_per_rank(), reference.particles_per_rank());
    EXPECT_EQ(restored.runtime().total_time(),
              reference.runtime().total_time());
    EXPECT_EQ(restored.potential(), reference.potential());
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsMismatchedConfiguration) {
  const SolverConfig cfg = tiny_config();
  const std::string path = temp_path("dsmcpic_ckpt_mismatch.bin");
  {
    CoupledSolver solver(cfg, tiny_parallel(2));
    solver.run(2);
    solver.save_checkpoint(path);
  }
  CoupledSolver other(cfg, tiny_parallel(3));  // different rank count
  EXPECT_THROW(other.restore_checkpoint(path), Error);
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsGarbageFile) {
  const std::string path = temp_path("dsmcpic_ckpt_garbage.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not a checkpoint";
  }
  CoupledSolver solver(tiny_config(), tiny_parallel(2));
  EXPECT_THROW(solver.restore_checkpoint(path), Error);
  std::filesystem::remove(path);
}

TEST(Autotune, PicksAValidCombination) {
  AutotuneOptions opt;
  opt.periods = {4, 8};
  opt.thresholds = {1.5, 3.0};
  opt.pilot_steps = 8;
  const AutotuneResult r =
      autotune_balance(tiny_config(), tiny_parallel(4), opt);
  ASSERT_EQ(r.trials.size(), 4u);
  // Trials sorted ascending by time; best matches front.
  for (std::size_t i = 1; i < r.trials.size(); ++i)
    EXPECT_GE(r.trials[i].total_time, r.trials[i - 1].total_time);
  EXPECT_EQ(r.best_period, r.trials.front().period);
  EXPECT_EQ(r.best_threshold, r.trials.front().threshold);
  EXPECT_TRUE(r.best_period == 4 || r.best_period == 8);
}

TEST(Timeline, RecordsPerStepPhaseTimes) {
  CoupledSolver solver(tiny_config(), tiny_parallel(2));
  PhaseTimeline timeline(solver);
  for (int s = 0; s < 5; ++s) {
    solver.step();
    timeline.record_step();
  }
  ASSERT_EQ(timeline.num_steps(), 5u);
  // Every step runs the core phases.
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_GT(timeline.at(s, phases::kInject), 0.0);
    EXPECT_GT(timeline.at(s, phases::kPoissonSolve), 0.0);
  }
  // Sum of per-step deltas ~ cumulative phase max.
  double sum = 0.0;
  for (std::size_t s = 0; s < 5; ++s) sum += timeline.at(s, phases::kInject);
  EXPECT_NEAR(sum, solver.summary().phase_max(phases::kInject), 1e-9);

  const std::string csv = temp_path("dsmcpic_timeline.csv");
  const std::string json = temp_path("dsmcpic_timeline.json");
  timeline.write_csv(csv);
  timeline.write_chrome_trace(json);
  EXPECT_GT(std::filesystem::file_size(csv), 100u);
  EXPECT_GT(std::filesystem::file_size(json), 100u);
  std::filesystem::remove(csv);
  std::filesystem::remove(json);
}

TEST(HierarchicalStrategy, DrivesAFullSimulation) {
  SolverConfig cfg = tiny_config();
  ParallelConfig hc = tiny_parallel(4);
  hc.strategy = exchange::Strategy::kHierarchical;
  ParallelConfig dc = tiny_parallel(4);
  dc.strategy = exchange::Strategy::kDistributed;
  CoupledSolver a(cfg, hc), b(cfg, dc);
  a.run(6);
  b.run(6);
  // Identical physics regardless of the strategy.
  EXPECT_EQ(a.total_particles(), b.total_particles());
  EXPECT_EQ(a.history().back().total_hplus, b.history().back().total_hplus);
}

}  // namespace
}  // namespace dsmcpic::core
