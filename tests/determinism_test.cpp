// Determinism harness for the threaded execution backend (DESIGN.md §2c):
// kThreaded must be bit-identical to kSequential in every observable —
// virtual clocks, per-phase PhaseStats, particle counts per rank, step
// diagnostics, and the final potential. EXPECT_EQ on doubles throughout is
// deliberate: the guarantee is bitwise, not approximate.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/datasets.hpp"
#include "core/solver.hpp"

namespace dsmcpic::core {
namespace {

SolverConfig tiny_config() {
  Dataset d = make_dataset(1, /*particle_scale=*/0.25);
  d.config.nozzle.radial_divisions = 3;
  d.config.nozzle.axial_divisions = 6;
  return d.config;
}

struct RunResult {
  std::vector<double> clocks;
  std::vector<std::string> phase_names;
  std::vector<par::PhaseStats> phase_stats;
  std::vector<std::int64_t> particles_per_rank;
  std::vector<double> potential;
  std::vector<StepDiagnostics> history;
  std::vector<balance::PolicyDecision> decisions;
  double total_time = 0.0;
};

RunResult run_solver(par::ExecMode mode, int nranks, int threads,
                     exchange::Strategy strategy, bool balance_enabled,
                     int steps, int kernel_threads = 1, int sort_every = 0,
                     balance::CostModelKind cost_model =
                         balance::CostModelKind::kStatic,
                     balance::PolicyKind policy =
                         balance::PolicyKind::kThreshold) {
  ParallelConfig par;
  par.nranks = nranks;
  par.strategy = strategy;
  par.balance.enabled = balance_enabled;
  par.balance.period = 4;
  par.balance.cost_model.kind = cost_model;
  par.balance.policy.kind = policy;
  par.exec_mode = mode;
  par.exec_threads = threads;
  par.kernel_threads = kernel_threads;
  SolverConfig cfg = tiny_config();
  cfg.sort_every = sort_every;
  CoupledSolver solver(cfg, par);
  solver.run(steps);

  RunResult r;
  for (int i = 0; i < solver.runtime().size(); ++i)
    r.clocks.push_back(solver.runtime().clock(i));
  const RunSummary summary = solver.summary();
  r.phase_names = summary.phase_names;
  r.phase_stats = summary.phase_stats;
  r.particles_per_rank = solver.particles_per_rank();
  r.potential = solver.potential();
  r.history = solver.history();
  r.decisions = summary.decisions;
  r.total_time = solver.runtime().total_time();
  return r;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.clocks, b.clocks);
  EXPECT_EQ(a.total_time, b.total_time);

  // The when-to-rebalance decision sequence is part of the contract: every
  // recorded decision, including the cost projections it was based on,
  // must be bitwise identical.
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    const balance::PolicyDecision& da = a.decisions[i];
    const balance::PolicyDecision& db = b.decisions[i];
    EXPECT_EQ(da.step, db.step);
    EXPECT_EQ(da.lii, db.lii) << "decision " << i;
    EXPECT_EQ(da.imbalance_per_step, db.imbalance_per_step) << "decision " << i;
    EXPECT_EQ(da.projected_imbalance_cost, db.projected_imbalance_cost)
        << "decision " << i;
    EXPECT_EQ(da.rebalance_cost_estimate, db.rebalance_cost_estimate)
        << "decision " << i;
    EXPECT_EQ(da.rebalance, db.rebalance) << "decision " << i;
  }

  ASSERT_EQ(a.phase_names, b.phase_names);
  ASSERT_EQ(a.phase_stats.size(), b.phase_stats.size());
  for (std::size_t i = 0; i < a.phase_stats.size(); ++i) {
    const par::PhaseStats& sa = a.phase_stats[i];
    const par::PhaseStats& sb = b.phase_stats[i];
    EXPECT_EQ(sa.busy_max, sb.busy_max) << a.phase_names[i];
    EXPECT_EQ(sa.busy_min, sb.busy_min) << a.phase_names[i];
    EXPECT_EQ(sa.busy_sum, sb.busy_sum) << a.phase_names[i];
    EXPECT_EQ(sa.transactions, sb.transactions) << a.phase_names[i];
    EXPECT_EQ(sa.bytes, sb.bytes) << a.phase_names[i];
  }

  EXPECT_EQ(a.particles_per_rank, b.particles_per_rank);
  EXPECT_EQ(a.potential, b.potential);

  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const StepDiagnostics& da = a.history[i];
    const StepDiagnostics& db = b.history[i];
    EXPECT_EQ(da.dsmc_step, db.dsmc_step);
    EXPECT_EQ(da.particles_per_rank, db.particles_per_rank);
    EXPECT_EQ(da.total_h, db.total_h) << "step " << i;
    EXPECT_EQ(da.total_hplus, db.total_hplus) << "step " << i;
    EXPECT_EQ(da.injected, db.injected) << "step " << i;
    EXPECT_EQ(da.migrated_dsmc, db.migrated_dsmc) << "step " << i;
    EXPECT_EQ(da.migrated_pic, db.migrated_pic) << "step " << i;
    EXPECT_EQ(da.collisions, db.collisions) << "step " << i;
    EXPECT_EQ(da.ionizations, db.ionizations) << "step " << i;
    EXPECT_EQ(da.recombinations, db.recombinations) << "step " << i;
    EXPECT_EQ(da.poisson_iterations, db.poisson_iterations) << "step " << i;
    EXPECT_EQ(da.lii, db.lii) << "step " << i;
    EXPECT_EQ(da.rebalanced, db.rebalanced) << "step " << i;
  }
}

// The acceptance criterion of the execution backend: 10 steps at 8 ranks,
// 4 worker lanes, rebalancing on — threaded must match sequential exactly.
TEST(Determinism, ThreadedMatchesSequentialBitwise) {
  const RunResult seq =
      run_solver(par::ExecMode::kSequential, 8, 0,
                 exchange::Strategy::kDistributed, /*balance=*/true, 10);
  const RunResult thr =
      run_solver(par::ExecMode::kThreaded, 8, 4,
                 exchange::Strategy::kDistributed, /*balance=*/true, 10);
  expect_identical(seq, thr);
}

// Two threaded runs with the same seed must also agree with each other
// (schedule independence, not just seq/threaded agreement).
TEST(Determinism, TwoThreadedRunsAgree) {
  const RunResult a =
      run_solver(par::ExecMode::kThreaded, 8, 4,
                 exchange::Strategy::kDistributed, /*balance=*/true, 10);
  const RunResult b =
      run_solver(par::ExecMode::kThreaded, 8, 4,
                 exchange::Strategy::kDistributed, /*balance=*/true, 10);
  expect_identical(a, b);
}

// The guarantee holds for the centralized exchange too (root-driven
// superstep bodies exercise a different communication shape), and is
// independent of the lane count.
TEST(Determinism, CentralizedExchangeAndOddLaneCount) {
  const RunResult seq =
      run_solver(par::ExecMode::kSequential, 6, 0,
                 exchange::Strategy::kCentralized, /*balance=*/false, 6);
  const RunResult thr3 =
      run_solver(par::ExecMode::kThreaded, 6, 3,
                 exchange::Strategy::kCentralized, /*balance=*/false, 6);
  const RunResult thr2 =
      run_solver(par::ExecMode::kThreaded, 6, 2,
                 exchange::Strategy::kCentralized, /*balance=*/false, 6);
  expect_identical(seq, thr3);
  expect_identical(thr3, thr2);
}

// Intra-rank kernel parallelism (DESIGN.md §2d): chunking move/collide/
// react/deposit over a kernel pool must be bit-identical to serial kernels
// in every observable, field for field.
TEST(KernelThreads, FourLanesMatchSerialBitwise) {
  const RunResult serial =
      run_solver(par::ExecMode::kSequential, 8, 0,
                 exchange::Strategy::kDistributed, /*balance=*/true, 10,
                 /*kernel_threads=*/1);
  const RunResult kt4 =
      run_solver(par::ExecMode::kSequential, 8, 0,
                 exchange::Strategy::kDistributed, /*balance=*/true, 10,
                 /*kernel_threads=*/4);
  expect_identical(serial, kt4);
}

// Both levels at once: threaded superstep dispatch on top of kernel chunking
// (rank bodies share one kernel pool; its batches serialize internally).
TEST(KernelThreads, ComposesWithThreadedExecMode) {
  const RunResult serial =
      run_solver(par::ExecMode::kSequential, 8, 0,
                 exchange::Strategy::kDistributed, /*balance=*/true, 10);
  const RunResult both =
      run_solver(par::ExecMode::kThreaded, 8, 4,
                 exchange::Strategy::kDistributed, /*balance=*/true, 10,
                 /*kernel_threads=*/2);
  expect_identical(serial, both);
}

// Lane-count independence: the chunk boundaries differ between 2 and 4
// lanes, so agreement shows the kernels are invariant under chunking, not
// merely schedule-lucky.
TEST(KernelThreads, LaneCountIndependence) {
  const RunResult kt2 =
      run_solver(par::ExecMode::kSequential, 6, 0,
                 exchange::Strategy::kCentralized, /*balance=*/false, 6,
                 /*kernel_threads=*/2);
  const RunResult kt4 =
      run_solver(par::ExecMode::kSequential, 6, 0,
                 exchange::Strategy::kCentralized, /*balance=*/false, 6,
                 /*kernel_threads=*/4);
  expect_identical(kt2, kt4);
}

// The periodic cell sort (DESIGN.md §2g) must be invisible in every
// observable: sorting every step, every 7 steps, or never yields
// field-identical runs. This exercises the whole invariance chain — stable
// sort, stable compactions, cell-major reindex ids, order-canonical
// deposit — over multiple exchanges and rebalances.
TEST(SortDeterminism, SortIntervalInvariance) {
  const RunResult never =
      run_solver(par::ExecMode::kSequential, 8, 0,
                 exchange::Strategy::kDistributed, /*balance=*/true, 10,
                 /*kernel_threads=*/1, /*sort_every=*/0);
  const RunResult every =
      run_solver(par::ExecMode::kSequential, 8, 0,
                 exchange::Strategy::kDistributed, /*balance=*/true, 10,
                 /*kernel_threads=*/1, /*sort_every=*/1);
  const RunResult seven =
      run_solver(par::ExecMode::kSequential, 8, 0,
                 exchange::Strategy::kDistributed, /*balance=*/true, 10,
                 /*kernel_threads=*/1, /*sort_every=*/7);
  expect_identical(never, every);
  expect_identical(every, seven);
}

// Sorting composed with both parallelism levels: a threaded-exec,
// kernel-chunked, sorted run must match the serial never-sorted run.
TEST(SortDeterminism, SortComposesWithBothParallelismLevels) {
  const RunResult plain =
      run_solver(par::ExecMode::kSequential, 8, 0,
                 exchange::Strategy::kDistributed, /*balance=*/true, 10);
  const RunResult sorted_parallel =
      run_solver(par::ExecMode::kThreaded, 8, 4,
                 exchange::Strategy::kDistributed, /*balance=*/true, 10,
                 /*kernel_threads=*/4, /*sort_every=*/3);
  expect_identical(plain, sorted_parallel);
}

// Kernel-lane independence on sorted layouts: the cell-major order changes
// which particles each chunk sees, so 2-vs-4-lane agreement on a sorted
// store is a distinct claim from the unsorted LaneCountIndependence above.
TEST(SortDeterminism, SortedLaneCountIndependence) {
  const RunResult kt2 =
      run_solver(par::ExecMode::kSequential, 6, 0,
                 exchange::Strategy::kCentralized, /*balance=*/false, 6,
                 /*kernel_threads=*/2, /*sort_every=*/1);
  const RunResult kt4 =
      run_solver(par::ExecMode::kSequential, 6, 0,
                 exchange::Strategy::kCentralized, /*balance=*/false, 6,
                 /*kernel_threads=*/4, /*sort_every=*/1);
  expect_identical(kt2, kt4);
}

// ---- Timer cost model + look-ahead policy (DESIGN.md §2h) ------------------
// The cost model feeds measured virtual time back into the partition
// weights, so any nondeterminism anywhere in the accounting would be
// amplified into diverging decompositions. These runs must stay bitwise
// identical — including the recorded decision sequences — across exec
// modes, kernel lane counts, and sort intervals.

TEST(CostModelDeterminism, TimerThreadedMatchesSequentialBitwise) {
  const RunResult seq = run_solver(
      par::ExecMode::kSequential, 8, 0, exchange::Strategy::kDistributed,
      /*balance=*/true, 10, /*kernel_threads=*/1, /*sort_every=*/0,
      balance::CostModelKind::kTimer, balance::PolicyKind::kLookahead);
  const RunResult thr = run_solver(
      par::ExecMode::kThreaded, 8, 4, exchange::Strategy::kDistributed,
      /*balance=*/true, 10, /*kernel_threads=*/1, /*sort_every=*/0,
      balance::CostModelKind::kTimer, balance::PolicyKind::kLookahead);
  expect_identical(seq, thr);
  EXPECT_FALSE(seq.decisions.empty());
}

TEST(CostModelDeterminism, TimerKernelLaneAndSortInvariance) {
  const RunResult plain = run_solver(
      par::ExecMode::kSequential, 8, 0, exchange::Strategy::kDistributed,
      /*balance=*/true, 10, /*kernel_threads=*/1, /*sort_every=*/0,
      balance::CostModelKind::kTimer, balance::PolicyKind::kLookahead);
  const RunResult kt4_sorted = run_solver(
      par::ExecMode::kSequential, 8, 0, exchange::Strategy::kDistributed,
      /*balance=*/true, 10, /*kernel_threads=*/4, /*sort_every=*/3,
      balance::CostModelKind::kTimer, balance::PolicyKind::kLookahead);
  expect_identical(plain, kt4_sorted);
}

TEST(CostModelDeterminism, HybridComposedParallelismInvariance) {
  const RunResult plain = run_solver(
      par::ExecMode::kSequential, 6, 0, exchange::Strategy::kDistributed,
      /*balance=*/true, 8, /*kernel_threads=*/1, /*sort_every=*/0,
      balance::CostModelKind::kHybrid, balance::PolicyKind::kLookahead);
  const RunResult both = run_solver(
      par::ExecMode::kThreaded, 6, 3, exchange::Strategy::kDistributed,
      /*balance=*/true, 8, /*kernel_threads=*/2, /*sort_every=*/1,
      balance::CostModelKind::kHybrid, balance::PolicyKind::kLookahead);
  expect_identical(plain, both);
}

TEST(CostModelDeterminism, TimerRunsAreRepeatable) {
  // Two identical invocations: the decision sequence (and everything else)
  // must reproduce exactly — the policy consumes only virtual-time signals.
  const RunResult a = run_solver(
      par::ExecMode::kThreaded, 8, 4, exchange::Strategy::kDistributed,
      /*balance=*/true, 10, /*kernel_threads=*/2, /*sort_every=*/0,
      balance::CostModelKind::kTimer, balance::PolicyKind::kLookahead);
  const RunResult b = run_solver(
      par::ExecMode::kThreaded, 8, 4, exchange::Strategy::kDistributed,
      /*balance=*/true, 10, /*kernel_threads=*/2, /*sort_every=*/0,
      balance::CostModelKind::kTimer, balance::PolicyKind::kLookahead);
  expect_identical(a, b);
}

}  // namespace
}  // namespace dsmcpic::core
