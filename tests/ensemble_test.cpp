// Elastic rank ensembles (DESIGN.md §2i): the EnsemblePolicy unit battery
// plus solver-level grow/shrink/park behavior, exec-mode bit-identity of an
// elastic run, NC-vs-DC physics equivalence, and the v4 checkpoint
// round-trip of ensemble state.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "balance/ensemble.hpp"
#include "core/datasets.hpp"
#include "core/solver.hpp"
#include "support/error.hpp"

namespace dsmcpic {
namespace {

using balance::EnsembleConfig;
using balance::EnsembleDecision;
using balance::EnsembleKind;
using balance::EnsemblePolicy;

TEST(Ensemble, ParseAndName) {
  EXPECT_EQ(balance::parse_ensemble("fixed"), EnsembleKind::kFixed);
  EXPECT_EQ(balance::parse_ensemble("elastic"), EnsembleKind::kElastic);
  EXPECT_STREQ(balance::ensemble_name(EnsembleKind::kFixed), "fixed");
  EXPECT_STREQ(balance::ensemble_name(EnsembleKind::kElastic), "elastic");
  EXPECT_THROW(balance::parse_ensemble("adaptive"), Error);
}

TEST(Ensemble, InitialActiveResolution) {
  EnsembleConfig cfg;
  EXPECT_EQ(EnsemblePolicy(cfg, 16).initial_active(), 16);  // 0 = all
  cfg.initial = 4;
  EXPECT_EQ(EnsemblePolicy(cfg, 16).initial_active(), 4);
  cfg.initial = 0;
  cfg.ranks_max = 8;
  EXPECT_EQ(EnsemblePolicy(cfg, 16).initial_active(), 8);  // clamped to max
  cfg.ranks_max = 64;  // clamped down to nominal
  EXPECT_EQ(EnsemblePolicy(cfg, 16).config().ranks_max, 16);
  cfg.ranks_max = 0;
  cfg.initial = 32;  // outside [min, nominal]
  EXPECT_THROW(EnsemblePolicy(cfg, 16), Error);
  cfg.initial = 0;
  cfg.ranks_min = 12;
  cfg.ranks_max = 4;
  EXPECT_THROW(EnsemblePolicy(cfg, 16), Error);  // min > max
}

TEST(Ensemble, FixedNeverResizes) {
  EnsembleConfig cfg;  // kFixed
  EnsemblePolicy p(cfg, 16);
  std::vector<double> comp(16, 1.0);
  for (int s = 0; s < 10; ++s) {
    p.observe_step(comp, 1000.0);  // overhead swamps compute
    EXPECT_EQ(p.decide(s, 16), 16);
  }
  EXPECT_EQ(p.resizes(), 0);
  ASSERT_EQ(p.decisions().size(), 10u);
  for (const EnsembleDecision& d : p.decisions()) EXPECT_FALSE(d.resized);
}

TEST(Ensemble, OverheadDominatedShrinksAtMostHalving) {
  EnsembleConfig cfg;
  cfg.kind = EnsembleKind::kElastic;
  cfg.ranks_min = 2;
  EnsemblePolicy p(cfg, 64);
  // compute sum 1, overhead 99: n* = sqrt(1 * 64 / 99) < 1 -> clamp chain
  // cur/2 then ranks_min.
  std::vector<double> comp(64, 1.0 / 64.0);
  p.observe_step(comp, 100.0);
  EXPECT_EQ(p.decide(0, 64), 32);  // at most halves per decision
  EXPECT_EQ(p.decide(1, 32), 16);
  EXPECT_EQ(p.decide(2, 4), 2);    // floor at ranks_min
  EXPECT_EQ(p.resizes(), 3);
}

TEST(Ensemble, ComputeDominatedGrowsAtMostDoubling) {
  EnsembleConfig cfg;
  cfg.kind = EnsembleKind::kElastic;
  EnsemblePolicy p(cfg, 64);
  // compute 1e6, overhead 1 at 4 active: n* = sqrt(1e6 * 4) = 2000 -> 2x cap
  // then ranks_max.
  std::vector<double> comp(4, 250000.0);
  p.observe_step(comp, 1000001.0);
  EXPECT_EQ(p.decide(0, 4), 8);
  EXPECT_EQ(p.decide(1, 40), 64);  // 80 capped by ranks_max = nominal
}

TEST(Ensemble, HysteresisDeadbandHolds) {
  EnsembleConfig cfg;
  cfg.kind = EnsembleKind::kElastic;
  cfg.hysteresis = 0.25;
  EnsemblePolicy p(cfg, 64);
  // n* = sqrt(C * cur / ovh) with C/ovh tuned so n* ~ 18 from cur = 16:
  // |18 - 16| = 2 <= 0.25 * 16 = 4 -> stay put.
  std::vector<double> comp(16, 1.0);  // C = 16
  p.observe_step(comp, 16.0 + 16.0 * 16.0 / (18.0 * 18.0));
  EXPECT_EQ(p.decide(0, 16), 16);
  EXPECT_EQ(p.resizes(), 0);
}

TEST(Ensemble, NoObservationNoMove) {
  EnsembleConfig cfg;
  cfg.kind = EnsembleKind::kElastic;
  EnsemblePolicy p(cfg, 16);
  EXPECT_EQ(p.decide(0, 16), 16);  // nothing observed yet
}

TEST(Ensemble, EwmaBlendsObservations) {
  EnsembleConfig cfg;
  cfg.kind = EnsembleKind::kElastic;
  cfg.ewma_alpha = 0.5;
  EnsemblePolicy p(cfg, 8);
  std::vector<double> comp(8, 1.0);  // C = 8 each step
  p.observe_step(comp, 10.0);        // ovh 2
  p.observe_step(comp, 14.0);        // ovh 6 -> EWMA 4
  p.decide(0, 8);
  const EnsembleDecision& d = p.decisions().back();
  EXPECT_DOUBLE_EQ(d.compute_ewma, 8.0);
  EXPECT_DOUBLE_EQ(d.overhead_ewma, 4.0);
}

TEST(Ensemble, SaveLoadRoundTrip) {
  EnsembleConfig cfg;
  cfg.kind = EnsembleKind::kElastic;
  cfg.ranks_min = 2;
  EnsemblePolicy p(cfg, 32);
  std::vector<double> comp(32, 0.5);
  p.observe_step(comp, 400.0);
  p.decide(3, 32);
  std::stringstream ss;
  p.save(ss);
  EnsemblePolicy q(cfg, 32);
  q.load(ss);
  EXPECT_EQ(q.resizes(), p.resizes());
  ASSERT_EQ(q.decisions().size(), p.decisions().size());
  EXPECT_EQ(q.decisions().back().step, 3);
  EXPECT_DOUBLE_EQ(q.decisions().back().compute_ewma,
                   p.decisions().back().compute_ewma);
  // Identical future decisions: the EWMAs survived bitwise.
  EnsemblePolicy p2 = p, q2 = q;
  EXPECT_EQ(p2.decide(4, 16), q2.decide(4, 16));
}

// ---- solver-level behavior -----------------------------------------------

core::SolverConfig tiny_config() {
  core::Dataset d = core::make_dataset(1, /*particle_scale=*/0.25);
  d.config.nozzle.radial_divisions = 3;
  d.config.nozzle.axial_divisions = 6;
  return d.config;
}

core::ParallelConfig make_par(int nranks, EnsembleKind kind, int initial = 0,
                              int ranks_min = 1,
                              exchange::Strategy strategy =
                                  exchange::Strategy::kDistributed,
                              par::ExecMode mode = par::ExecMode::kSequential,
                              int threads = 0) {
  core::ParallelConfig par;
  par.nranks = nranks;
  par.strategy = strategy;
  par.balance.enabled = false;  // isolate the ensemble from the rebalancer
  par.balance.period = 3;
  par.balance.ensemble.kind = kind;
  par.balance.ensemble.initial = initial;
  par.balance.ensemble.ranks_min = ranks_min;
  par.exec_mode = mode;
  par.exec_threads = threads;
  return par;
}

TEST(EnsembleSolver, FixedReducedEnsembleParksRanks) {
  // 8 nominal ranks, 3 active: parked ranks own nothing, hold no particles,
  // and their clocks never move.
  core::CoupledSolver solver(tiny_config(), make_par(8, EnsembleKind::kFixed,
                                                     /*initial=*/3));
  EXPECT_EQ(solver.active_ranks(), 3);
  EXPECT_EQ(solver.runtime().active_ranks(), 3);
  solver.run(3);
  const auto per_rank = solver.particles_per_rank();
  std::int64_t active_particles = 0;
  for (int r = 0; r < 3; ++r) active_particles += per_rank[r];
  EXPECT_GT(active_particles, 0);
  for (int r = 3; r < 8; ++r) {
    EXPECT_EQ(per_rank[r], 0) << "parked rank " << r << " holds particles";
    EXPECT_EQ(solver.runtime().clock(r), 0.0)
        << "parked rank " << r << " clock moved";
  }
  for (const std::int32_t o : solver.owner()) EXPECT_LT(o, 3);
}

TEST(EnsembleSolver, ElasticShrinksOverheadDominatedRun) {
  // The tiny workload on 12 ranks is overhead-dominated, so the elastic
  // policy must park ranks within a few periods — and every particle must
  // survive the migrations onto the surviving ranks.
  core::CoupledSolver solver(tiny_config(),
                             make_par(12, EnsembleKind::kElastic,
                                      /*initial=*/0, /*ranks_min=*/2));
  solver.run(10);
  EXPECT_LT(solver.active_ranks(), 12) << "elastic never shrank";
  EXPECT_GE(solver.active_ranks(), 2);
  EXPECT_EQ(solver.runtime().active_ranks(), solver.active_ranks());
  EXPECT_GT(solver.ensemble().resizes(), 0);
  const auto per_rank = solver.particles_per_rank();
  for (int r = solver.active_ranks(); r < 12; ++r)
    EXPECT_EQ(per_rank[r], 0) << "parked rank " << r << " holds particles";
  EXPECT_GT(solver.total_particles(), 0);
}

TEST(EnsembleSolver, ElasticRunIsBitIdenticalAcrossExecModes) {
  auto run = [](par::ExecMode mode, int threads) {
    core::CoupledSolver solver(
        tiny_config(),
        make_par(12, EnsembleKind::kElastic, 0, 2,
                 exchange::Strategy::kDistributed, mode, threads));
    solver.run(8);
    struct Out {
      std::vector<double> clocks;
      std::vector<std::int64_t> per_rank;
      std::vector<double> potential;
      int active = 0;
      int resizes = 0;
      double total = 0.0;
    } o;
    for (int r = 0; r < solver.runtime().size(); ++r)
      o.clocks.push_back(solver.runtime().clock(r));
    o.per_rank = solver.particles_per_rank();
    o.potential = solver.potential();
    o.active = solver.active_ranks();
    o.resizes = solver.ensemble().resizes();
    o.total = solver.runtime().total_time();
    return o;
  };
  const auto seq = run(par::ExecMode::kSequential, 0);
  const auto thr = run(par::ExecMode::kThreaded, 4);
  EXPECT_EQ(seq.clocks, thr.clocks);
  EXPECT_EQ(seq.per_rank, thr.per_rank);
  EXPECT_EQ(seq.potential, thr.potential);
  EXPECT_EQ(seq.active, thr.active);
  EXPECT_EQ(seq.resizes, thr.resizes);
  EXPECT_EQ(seq.total, thr.total);
}

TEST(EnsembleSolver, NeighborStrategyMatchesDistributedPhysics) {
  // NC ships the same payloads as DC over sparse handshakes: the physics
  // (particle counts, potential) must match bitwise; only virtual time may
  // differ.
  auto run = [](exchange::Strategy s) {
    core::CoupledSolver solver(
        tiny_config(), make_par(6, EnsembleKind::kFixed, 0, 1, s));
    solver.run(5);
    return std::tuple(solver.particles_per_rank(), solver.potential(),
                      solver.total_particles());
  };
  const auto dc = run(exchange::Strategy::kDistributed);
  const auto nc = run(exchange::Strategy::kNeighbor);
  EXPECT_EQ(std::get<0>(dc), std::get<0>(nc));
  EXPECT_EQ(std::get<1>(dc), std::get<1>(nc));
  EXPECT_EQ(std::get<2>(dc), std::get<2>(nc));
}

TEST(EnsembleSolver, SteadyStateSuperstepsReusePooledPayloads) {
  // ISSUE acceptance: steady-state supersteps allocate no payload memory.
  // Warm the pools over early steps, then require the miss counter to stay
  // flat while acquires keep climbing. The population still grows slightly,
  // so warm long enough for capacities to plateau.
  core::CoupledSolver solver(tiny_config(),
                             make_par(6, EnsembleKind::kFixed));
  solver.run(6);
  const par::PoolStats warm = solver.runtime().pool_stats();
  solver.run(2);
  const par::PoolStats steady = solver.runtime().pool_stats();
  EXPECT_GT(steady.acquires, warm.acquires);
  EXPECT_GT(steady.recycles, warm.recycles);
  // Allow the few genuinely-new capacities a growing population needs, but
  // the overwhelming majority of acquires must be pool hits.
  const std::uint64_t new_acquires = steady.acquires - warm.acquires;
  const std::uint64_t new_misses = steady.misses - warm.misses;
  EXPECT_LT(new_misses, new_acquires / 10)
      << new_misses << " misses in " << new_acquires << " steady acquires";
}

TEST(EnsembleSolver, CheckpointV4RoundTripsEnsembleState) {
  const std::string path = "ensemble_ckpt_test.bin";
  const auto par = make_par(12, EnsembleKind::kElastic, 0, 2);
  core::CoupledSolver a(tiny_config(), par);
  a.run(7);  // past at least one resize boundary
  ASSERT_LT(a.active_ranks(), 12);
  a.save_checkpoint(path);

  core::CoupledSolver b(tiny_config(), par);
  EXPECT_EQ(b.active_ranks(), 12);  // fresh solver starts dense
  b.restore_checkpoint(path);
  EXPECT_EQ(b.active_ranks(), a.active_ranks());
  EXPECT_EQ(b.runtime().active_ranks(), a.runtime().active_ranks());
  EXPECT_EQ(b.ensemble().resizes(), a.ensemble().resizes());

  // Continuing must reproduce the uninterrupted run bitwise.
  a.run(4);
  b.run(4);
  EXPECT_EQ(a.active_ranks(), b.active_ranks());
  EXPECT_EQ(a.particles_per_rank(), b.particles_per_rank());
  EXPECT_EQ(a.potential(), b.potential());
  for (int r = 0; r < a.runtime().size(); ++r)
    EXPECT_EQ(a.runtime().clock(r), b.runtime().clock(r)) << "rank " << r;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dsmcpic
