// Long-run integration invariants: the solver is stepped for an extended
// transient with rebalancing active and every step's state is audited.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/datasets.hpp"
#include "core/solver.hpp"

namespace dsmcpic::core {
namespace {

TEST(LongRun, InvariantsHoldForSixtyStepsWithRebalancing) {
  Dataset d = make_dataset(1, /*particle_scale=*/0.25);
  d.config.nozzle.radial_divisions = 3;
  d.config.nozzle.axial_divisions = 6;
  ParallelConfig par;
  par.nranks = 6;
  par.balance.period = 5;
  par.balance.threshold = 1.05;
  CoupledSolver solver(d.config, par);

  std::int64_t prev_total = 0;
  double prev_time = 0.0;
  int rebalances_seen = 0;
  for (int s = 0; s < 60; ++s) {
    const StepDiagnostics diag = solver.step();

    // Per-rank counts sum to the global total.
    std::int64_t sum = 0;
    for (const auto n : diag.particles_per_rank) sum += n;
    ASSERT_EQ(sum, diag.total_h + diag.total_hplus) << "step " << s;

    // Population evolves plausibly: never negative growth beyond removal
    // of the whole previous population, never more than injected + spawned.
    ASSERT_GE(sum, 0);
    ASSERT_LE(sum, prev_total + diag.injected + diag.ionizations + 10)
        << "step " << s;
    prev_total = sum;

    // Virtual time strictly increases.
    const double now = solver.runtime().total_time();
    ASSERT_GT(now, prev_time) << "step " << s;
    prev_time = now;

    if (diag.rebalanced) ++rebalances_seen;

    // Ownership map stays a valid assignment.
    const auto owner = solver.owner();
    for (const auto o : owner) ASSERT_TRUE(o >= 0 && o < par.nranks);
  }
  EXPECT_GE(rebalances_seen, 2);
  EXPECT_GT(solver.total_particles(), 1000);

  // The sampler saw every step.
  EXPECT_EQ(solver.sampler().num_samples(), 60);

  // Density is non-negative everywhere and positive near the inlet.
  const auto density = solver.sampler().number_density(dsmc::kSpeciesH);
  for (const double v : density) ASSERT_GE(v, 0.0);
  const auto prof = dsmc::axis_profile(solver.coarse_grid(), density,
                                       d.config.nozzle.length, 8);
  EXPECT_GT(prof[0], 0.0);
}

TEST(LongRun, OwnershipChurnKeepsEveryParticleOnItsOwner) {
  // Alternate the repartitioner every rebalance epoch to maximize ownership
  // churn, then verify all particles still live on their owning rank (via
  // the per-rank counts + the exchange invariants being exercised without
  // throwing).
  Dataset d = make_dataset(1, /*particle_scale=*/0.25);
  d.config.nozzle.radial_divisions = 3;
  d.config.nozzle.axial_divisions = 6;
  for (const auto repart : {balance::Repartitioner::kGraph,
                            balance::Repartitioner::kOctree,
                            balance::Repartitioner::kMorton}) {
    ParallelConfig par;
    par.nranks = 5;
    par.balance.period = 4;
    par.balance.threshold = 1.02;
    par.balance.repartitioner = repart;
    CoupledSolver solver(d.config, par);
    solver.run(20);
    EXPECT_GE(solver.rebalance_stats().rebalances, 1)
        << balance::repartitioner_name(repart);
    std::int64_t sum = 0;
    for (const auto n : solver.particles_per_rank()) sum += n;
    EXPECT_EQ(sum, solver.total_particles());
  }
}

TEST(LongRun, HierarchicalStrategySurvivesRebalancing) {
  Dataset d = make_dataset(1, /*particle_scale=*/0.25);
  d.config.nozzle.radial_divisions = 3;
  d.config.nozzle.axial_divisions = 6;
  ParallelConfig par;
  par.nranks = 6;
  par.strategy = exchange::Strategy::kHierarchical;
  par.balance.period = 4;
  par.balance.threshold = 1.02;
  CoupledSolver solver(d.config, par);
  solver.run(24);
  EXPECT_GE(solver.rebalance_stats().rebalances, 1);
  EXPECT_GT(solver.total_particles(), 500);
}

}  // namespace
}  // namespace dsmcpic::core
