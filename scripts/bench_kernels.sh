#!/usr/bin/env bash
# Runs the intra-rank kernel microbenchmark (move / collide / deposit at
# serial vs 2 vs 4 kernel lanes, plus the pre-cache recompute baseline) and
# leaves BENCH_kernels.json at the repo root.
#
#   scripts/bench_kernels.sh [build-dir] [extra bench_kernels flags...]
#
# The committed BENCH_kernels.json doubles as the perf-regression baseline.
# To gate a change, write the fresh run somewhere else and compare:
#
#   build/bench/bench_kernels --out /tmp/fresh.json
#   scripts/check_bench_regression.py /tmp/fresh.json        # exit 1 on >15% slowdown
#   scripts/check_bench_regression.py /tmp/fresh.json --tolerance 0.25
#
# Re-run this script (which overwrites BENCH_kernels.json in place) only
# when intentionally refreshing the baseline on the reference machine.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
shift || true

cmake -B "$BUILD" -S . -G Ninja -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" --target bench_kernels -j

"$BUILD"/bench/bench_kernels --out BENCH_kernels.json "$@"
echo "wrote $(pwd)/BENCH_kernels.json"
