#!/usr/bin/env python3
"""Perf-regression gate over the kernel microbenchmark.

Compares a freshly generated bench_kernels JSON (scripts/bench_kernels.sh)
against the committed baseline BENCH_kernels.json and fails — non-zero
exit — when any kernel timing regressed by more than the tolerance
(default 15%, i.e. fresh > baseline * 1.15). Speedups and small noise
pass silently; the gate only fires on slowdowns.

    scripts/check_bench_regression.py FRESH.json [--baseline BENCH_kernels.json]
                                      [--tolerance 0.15]

The two files must describe the same workload (mesh sizes and particle
count); comparing different workloads is meaningless, so a mismatch exits
with status 2 rather than pretending to pass or fail.

Timing fields (any numeric "*_ms" key) are discovered from the files, and
only fields present in BOTH are compared: kernels or timing lanes that
exist only in the fresh run are newly added — the gate warns and moves
on, so growing the bench never requires a lockstep baseline update. A
kernel or lane present only in the BASELINE, however, vanished from the
bench and still exits 2.

Lane-presence mode: --require-lanes NAMES (comma-separated) checks that
the FRESH file contains every named lane and exits without comparing
against a baseline. A dotted name like "move.parallel_ms" requires that
timing field under fresh["kernels"]; a bare name like "lookahead_timer"
requires an entry in fresh["kernels"] or fresh["lanes"] (the schema the
bench_fig05/fig13 --out files use). CI uses this to fail fast when a
bench silently stops emitting a lane it is supposed to gate on.

    scripts/check_bench_regression.py BENCH_fig05.json \\
        --require-lanes no_lb,threshold_static,lookahead_timer

Exit codes: 0 no regression, 1 regression detected, 2 bad input /
workload mismatch / required lane missing.
"""

import argparse
import json
import sys


def require_lanes(fresh, names):
    """Exits 2 unless every named lane/timing exists in the fresh run."""
    kernels = fresh.get("kernels", {})
    lanes = fresh.get("lanes", {})
    missing = []
    for name in names:
        if name in kernels or name in lanes:
            continue  # bare lane names win, even ones containing dots
        if "." in name:
            kernel, field = name.split(".", 1)
            if isinstance(kernels.get(kernel, {}).get(field), (int, float)):
                continue
        missing.append(name)
    if missing:
        print(f"error: required lane(s) missing from fresh run: "
              f"{', '.join(missing)}", file=sys.stderr)
        sys.exit(2)
    print(f"all {len(names)} required lane(s) present.")


def timing_fields(kernel_obj):
    """Numeric '*_ms' keys of one kernel's entry (speedups etc. excluded)."""
    return {k for k, v in kernel_obj.items()
            if k.endswith("_ms") and isinstance(v, (int, float))}


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def check_same_workload(baseline, fresh):
    mismatches = []
    for key in ("mesh", "particles"):
        if baseline.get(key) != fresh.get(key):
            mismatches.append(
                f"  {key}: baseline {baseline.get(key)} vs fresh {fresh.get(key)}")
    if mismatches:
        print("error: baseline and fresh runs describe different workloads — "
              "timings are not comparable:", file=sys.stderr)
        print("\n".join(mismatches), file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(
        description="fail when kernel timings regressed vs the baseline")
    ap.add_argument("fresh", help="freshly generated bench_kernels JSON")
    ap.add_argument("--baseline", default="BENCH_kernels.json",
                    help="committed baseline (default: BENCH_kernels.json)")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative slowdown per timing "
                         "(default: 0.15 = 15%%)")
    ap.add_argument("--require-lanes", metavar="NAMES",
                    help="comma-separated lane names that must exist in "
                         "FRESH; checks presence only (no baseline "
                         "comparison) and exits 2 when any is missing")
    args = ap.parse_args()

    fresh = load(args.fresh)
    if args.require_lanes:
        names = [n.strip() for n in args.require_lanes.split(",") if n.strip()]
        if not names:
            print("error: --require-lanes got an empty lane list",
                  file=sys.stderr)
            sys.exit(2)
        require_lanes(fresh, names)
        return

    baseline = load(args.baseline)
    check_same_workload(baseline, fresh)

    base_kernels = baseline.get("kernels", {})
    fresh_kernels = fresh.get("kernels", {})
    missing = sorted(set(base_kernels) - set(fresh_kernels))
    if missing:
        print(f"error: fresh run is missing kernels {missing}", file=sys.stderr)
        sys.exit(2)
    for kernel in sorted(set(fresh_kernels) - set(base_kernels)):
        print(f"warning: kernel '{kernel}' is new (not in baseline); "
              "skipped — refresh the baseline to start gating it",
              file=sys.stderr)

    regressions = []
    print(f"{'kernel':<10}{'timing':<22}{'baseline':>10}{'fresh':>10}{'ratio':>8}")
    for kernel in sorted(base_kernels):
        base_fields = timing_fields(base_kernels[kernel])
        fresh_fields = timing_fields(fresh_kernels[kernel])
        vanished = sorted(base_fields - fresh_fields)
        if vanished:
            print(f"error: fresh {kernel} is missing timing lanes {vanished}",
                  file=sys.stderr)
            sys.exit(2)
        for field in sorted(fresh_fields - base_fields):
            print(f"warning: {kernel}.{field} is new (not in baseline); "
                  "skipped — refresh the baseline to start gating it",
                  file=sys.stderr)
        for field in sorted(base_fields & fresh_fields):
            base = base_kernels[kernel][field]
            new = fresh_kernels[kernel][field]
            if base <= 0:
                print(f"warning: baseline {kernel}.{field} is {base}; skipped",
                      file=sys.stderr)
                continue
            ratio = new / base
            flag = ""
            if ratio > 1.0 + args.tolerance:
                regressions.append((kernel, field, base, new, ratio))
                flag = "  <-- REGRESSION"
            print(f"{kernel:<10}{field:<22}{base:>10.3f}{new:>10.3f}"
                  f"{ratio:>8.2f}{flag}")

    if regressions:
        print(f"\n{len(regressions)} timing(s) regressed beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for kernel, field, base, new, ratio in regressions:
            print(f"  {kernel}.{field}: {base:.3f} ms -> {new:.3f} ms "
                  f"({ratio:.2f}x)", file=sys.stderr)
        sys.exit(1)
    print("\nno kernel regression beyond "
          f"{args.tolerance:.0%} vs {args.baseline}.")


if __name__ == "__main__":
    main()
