#!/usr/bin/env python3
"""Plot helper for the bench outputs.

Parses the aligned tables printed by the bench binaries (bench_output.txt or
a single bench's stdout) and renders per-table PNG line charts with
matplotlib when available, or gnuplot-ready .dat files otherwise.

Usage:
    python3 scripts/plot_bench.py bench_output.txt -o plots/
"""
import argparse
import os
import re
import sys


def parse_tables(text):
    """Yields (title, header, rows) for every '== title ==' table."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        m = re.match(r"== (.*) ==$", lines[i])
        if not m:
            i += 1
            continue
        title = m.group(1)
        if i + 2 >= len(lines):
            break
        header = lines[i + 1].split()
        rows = []
        j = i + 3  # skip the dashed rule
        while j < len(lines) and lines[j].strip() and not lines[j].startswith("=="):
            rows.append(lines[j].rstrip())
            j += 1
        yield title, header, rows
        i = j


def numeric_cells(row, ncols):
    """Splits an aligned row into a label and float-able cells."""
    parts = row.split()
    label_len = len(parts) - (ncols - 1)
    label = " ".join(parts[:max(1, label_len)])
    vals = []
    for cell in parts[max(1, label_len):]:
        cell = cell.rstrip("%x")
        try:
            vals.append(float(cell.replace("+", "")))
        except ValueError:
            vals.append(None)
    return label, vals


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("input")
    ap.add_argument("-o", "--outdir", default="plots")
    args = ap.parse_args()
    text = open(args.input).read()
    os.makedirs(args.outdir, exist_ok=True)

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
        have_mpl = True
    except ImportError:
        have_mpl = False
        print("matplotlib not found: writing gnuplot .dat files instead")

    for idx, (title, header, rows) in enumerate(parse_tables(text)):
        xs = []
        for h in header[1:]:
            try:
                xs.append(float(h))
            except ValueError:
                xs = None
                break
        if not xs or not rows:
            continue
        slug = re.sub(r"[^a-z0-9]+", "_", title.lower())[:60].strip("_")
        series = []
        for row in rows:
            label, vals = numeric_cells(row, len(header))
            if any(v is not None for v in vals):
                series.append((label, vals))
        if not series:
            continue
        if have_mpl:
            plt.figure(figsize=(6, 4))
            for label, vals in series:
                ys = [v for v in vals[: len(xs)]]
                plt.plot(xs[: len(ys)], ys, marker="o", label=label)
            plt.xscale("log", base=2)
            plt.xlabel(header[0] if header else "x")
            plt.ylabel("virtual seconds")
            plt.title(title, fontsize=9)
            plt.legend(fontsize=7)
            plt.tight_layout()
            path = os.path.join(args.outdir, f"{idx:02d}_{slug}.png")
            plt.savefig(path, dpi=120)
            plt.close()
            print("wrote", path)
        else:
            path = os.path.join(args.outdir, f"{idx:02d}_{slug}.dat")
            with open(path, "w") as f:
                f.write("# " + title + "\n# x " +
                        " ".join(l for l, _ in series) + "\n")
                for k, x in enumerate(xs):
                    cells = [str(x)]
                    for _, vals in series:
                        cells.append(str(vals[k]) if k < len(vals) and
                                     vals[k] is not None else "nan")
                    f.write(" ".join(cells) + "\n")
            print("wrote", path)


if __name__ == "__main__":
    sys.exit(main())
