#!/usr/bin/env bash
# Builds the runtime + determinism tests under ThreadSanitizer and runs
# them. The threaded superstep backend claims "bit-identical by
# construction, no locks in rank bodies", and the intra-rank kernel lanes
# (DESIGN.md §2d) claim the same for chunked move/collide/react/deposit —
# this is the check that both constructions are actually race-free, not
# just deterministic by luck.
#
#   scripts/run_tsan.sh [build-dir]
#
# Pass -DDSMCPIC_SANITIZE=address instead to the cmake line below for an
# ASan sweep; the CMake option accepts 'thread' or 'address'.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build-tsan}"

cmake -B "$BUILD" -S . -G Ninja \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDSMCPIC_SANITIZE=thread
cmake --build "$BUILD" --target par_test support_test determinism_test trace_test obs_test pic_test balance_policy_test ensemble_test fleet_test telemetry_test -j

# halt_on_error so a race fails the script, not just prints a report.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

"$BUILD"/tests/support_test --gtest_filter='ThreadPool.*:KernelExec.*'
"$BUILD"/tests/par_test
# The blocked parallel deposit (DESIGN.md §2g) above the candidate cutoff:
# per-block scatter buffers + ascending-block reduction on real kernel
# lanes. The solver-level suites stay below the cutoff, so this unit test
# is the only TSan coverage of the deposit's phase-A/phase-B threading.
"$BUILD"/tests/pic_test --gtest_filter='Deposit.*'
# Intra-rank kernel chunking first (real threads inside move/collide/
# react/deposit), then the sorted-traversal suite (periodic cell sort
# composed with threaded exec + kernel lanes, DESIGN.md §2g), then the
# full harness including both levels at once.
"$BUILD"/tests/determinism_test --gtest_filter='KernelThreads.*'
"$BUILD"/tests/determinism_test --gtest_filter='SortDeterminism.*'
# The timer cost model feeds measured virtual time back into the partition
# weights (DESIGN.md §2h); its threaded/kernel-lane runs re-read the busy
# counters on the driver thread between supersteps, so a racy accounting
# path would surface in this filter before the full harness runs.
"$BUILD"/tests/determinism_test --gtest_filter='CostModelDeterminism.*'
"$BUILD"/tests/determinism_test
# Tracing claims driver-thread-only recording (DESIGN.md §2e); the
# determinism suite runs trace-enabled solves over the threaded backend,
# so a racy recorder hook would be flagged here.
"$BUILD"/tests/trace_test
# The health auditor and host profiler claim zero perturbation of the
# deterministic state (DESIGN.md §2f); the audit-enabled determinism suite
# runs audited+profiled solves over the threaded backend with kernel
# threads, so a racy profiler scope or auditor hook would be flagged here.
"$BUILD"/tests/obs_test
# The cost-model / rebalance-policy unit battery is single-threaded logic,
# but TSan instrumentation still exercises its allocation and EWMA paths
# the same way the solver-level suites consume them.
"$BUILD"/tests/balance_policy_test
# Elastic rank ensembles (DESIGN.md §2i): resizing the active prefix
# mid-run reroutes ownership through exchange + redecompose while the
# threaded backend is live, and the pooled payload free-lists are touched
# from rank bodies. The exec-mode bit-identity test runs the threaded
# backend through a resize, so a racy pool or active-set handoff would be
# flagged here.
"$BUILD"/tests/ensemble_test
# The fleet service (DESIGN.md §2j) runs whole solvers concurrently on the
# slot pool while they read the same immutable CaseGeometry through
# SharedAssets, and preempt/resume moves solver state across slots through
# checkpoint v4. The fleet suite runs 4-slot fleets, lease slicing, and the
# park/resume round trip, so a racy registry, result aggregation, or shared
# mesh access would be flagged here.
"$BUILD"/tests/fleet_test
# The telemetry bus (docs/observability.md §6) samples the solver from the
# driver thread, but the FLEET aggregator republishes fleet_summary.json +
# fleet_metrics.prom from whichever slot finished a lease, serialized by
# publish_mu_ — and per-run hubs write exposition files from concurrent
# slots. The fleet-telemetry test plus the threaded postmortem runs would
# flag a racy snapshot or a torn publish here.
"$BUILD"/tests/telemetry_test

echo "TSan sweep clean."
