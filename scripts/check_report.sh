#!/usr/bin/env bash
# Shape-checks the machine-readable run reports end-to-end: runs a
# report-enabled bench with audits on, validates that every emitted
# run_report.json parses, matches the dsmcpic.run_report.v1 schema
# (config echo, virtual-time phases, step totals, audit tallies, host
# profile) and that a healthy run reports zero audit violations. Catches
# writer regressions the unit tests on JsonWriter would miss. Also
# validates a fleet results directory (DESIGN.md §2j): every per-run
# subdirectory must hold a parsing run_report.json + digest.txt, and
# fleet_summary.json must index exactly those runs.
#
#   scripts/check_report.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

cmake --build "$BUILD" --target bench_fig05_imbalance bench_kernels bench_fleet -j

"$BUILD"/bench/bench_fig05_imbalance \
  --ranks 4 --steps 3 --audit warn --report "$OUT/report.json" >/dev/null

# bench_fig05 runs two cases (LB off / LB on) -> report.json + report.case1.json
for f in "$OUT"/report.json "$OUT"/report.case1.json; do
  [ -f "$f" ] || { echo "FAIL: $f was not written" >&2; exit 1; }
  python3 - "$f" <<'EOF'
import json, sys
path = sys.argv[1]
r = json.load(open(path))
assert r["schema"] == "dsmcpic.run_report.v1", r["schema"]
assert r["bench"] == "bench_fig05_imbalance"
for key in ("ranks", "steps", "machine", "seed", "exec_mode",
            "exec_threads", "kernel_threads", "strategy", "balance", "audit"):
    assert key in r["config"], f"{path}: config.{key} missing"
assert r["virtual_time"]["total_seconds"] > 0
phases = {p["phase"] for p in r["virtual_time"]["phases"]}
for want in ("Inject", "DSMC_Move", "DSMC_Exchange", "Poisson_Solve"):
    assert want in phases, f"{path}: phase {want} missing from {sorted(phases)}"
assert r["steps"]["final_particles"] > 0
assert r["steps"]["injected"] > 0
audit = r["audit"]
assert audit["enabled"] is True
assert audit["checks"] > 0, "audits on but no checks ran"
assert audit["violations"] == 0, \
    f"{path}: healthy run reported violations: {audit}"
for inv in ("particle_books", "exchange_conservation", "charge_balance",
            "poisson_residual", "ownership", "mailbox_drained"):
    assert audit["by_invariant"][inv]["checks"] > 0, f"audit {inv} never ran"
prof = r["host_profile"]
assert prof["enabled"] is True and prof["sample_count"] > 0
for kernel in ("move", "deposit", "field_solve", "exchange"):
    stats = prof["kernels"][kernel]
    assert stats["count"] > 0 and stats["total_ms"] >= 0
    assert stats["min_ms"] <= stats["p50_ms"] <= stats["p95_ms"] <= stats["max_ms"]
print(f"{path}: ok ({audit['checks']} audit checks, "
      f"{prof['sample_count']} profile samples)")
EOF
done

# bench_kernels emits a report too (host-profile only).
"$BUILD"/bench/bench_kernels --particles 20000 --reps 1 \
  --out "$OUT/kernels.json" --report "$OUT/kernels_report.json" >/dev/null
python3 - "$OUT/kernels_report.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "dsmcpic.run_report.v1"
assert r["bench"] == "bench_kernels"
assert r["audit"]["enabled"] is False
kernels = r["host_profile"]["kernels"]
for want in ("move/serial", "move/kt4", "collide/kt2", "deposit/serial_recompute"):
    assert want in kernels, f"{want} missing from {sorted(kernels)}"
print(f"{sys.argv[1]}: ok ({len(kernels)} kernel lanes)")
EOF

# The fleet service streams per-run reports into a results directory:
# <dir>/<run_id>/run_report.json + digest.txt, indexed by
# <dir>/fleet_summary.json. Run a small 2-scenario fleet with lease-based
# preemption and validate the whole directory shape.
"$BUILD"/bench/bench_fleet \
  --fleet-runs 4 --fleet-slots 2 --fleet-lease 3 --steps 6 \
  --fleet-scenarios nozzle,pulsed-inlet \
  --results-dir "$OUT/fleet" >/dev/null
python3 - "$OUT/fleet" <<'EOF'
import json, os, sys
root = sys.argv[1]
summary = json.load(open(os.path.join(root, "fleet_summary.json")))
assert summary["schema"] == "dsmcpic.fleet_summary.v1", summary["schema"]
runs = summary["runs"]
assert len(runs) == 4, f"expected 4 runs, got {len(runs)}"
totals = summary["totals"]
# The summary is republished after every lease, so its shape must be valid
# both mid-flight and at the end; totals always partition the runs.
assert totals["done"] + totals["parked"] + totals["pending"] == totals["runs"]
assert totals["done"] == 4
assert totals["parked"] == 0 and totals["pending"] == 0
assert summary["slot_stats"]["runs_per_sec"] > 0
cache = summary["shared_cache"]
assert cache["geometry_hits"] + cache["geometry_misses"] > 0
subdirs = sorted(d for d in os.listdir(root)
                 if os.path.isdir(os.path.join(root, d)))
assert subdirs == sorted(r["run_id"] for r in runs), \
    f"summary runs {sorted(r['run_id'] for r in runs)} != subdirs {subdirs}"
for r in runs:
    run_dir = os.path.join(root, r["run_id"])
    assert r["state"] == "done", r
    # 6 steps in 3-step leases.
    assert r["leases"] == 2, r
    rep = json.load(open(os.path.join(run_dir, "run_report.json")))
    assert rep["schema"] == "dsmcpic.run_report.v1"
    assert rep["bench"] == "fleet"
    assert r["run_id"] in rep["case"]
    assert rep["steps"]["final_particles"] == r["final_particles"]
    assert rep["virtual_time"]["total_seconds"] > 0
    digest_line = open(os.path.join(run_dir, "digest.txt")).read().split()
    assert digest_line[0] == r["digest"], (digest_line, r["digest"])
    assert digest_line[1] == r["scenario"]
    # Completed runs must not leave resumable sidecars behind.
    for stale in ("checkpoint.bin", "lease.bin"):
        assert not os.path.exists(os.path.join(run_dir, stale)), stale
print(f"{root}: ok ({len(runs)} fleet runs, "
      f"{cache['geometry_hits']} geometry cache hits)")
EOF

# An INTERRUPTED fleet must still leave a valid summary: park one run and
# check the in-progress shape (digest only for done runs, parked runs keep
# their sidecars + postmortem). Telemetry rides along: per-run metrics and
# the fleet-level fleet_metrics.prom aggregate must pass the exposition
# lint.
"$BUILD"/bench/bench_fleet \
  --fleet-runs 3 --fleet-slots 2 --fleet-lease 3 --steps 6 --fleet-park 3 \
  --fleet-scenarios nozzle \
  --results-dir "$OUT/fleet_parked" --metrics-dir "$OUT/fleet_parked" >/dev/null
python3 - "$OUT/fleet_parked" <<'EOF'
import json, os, sys
root = sys.argv[1]
summary = json.load(open(os.path.join(root, "fleet_summary.json")))
totals = summary["totals"]
assert totals["done"] + totals["parked"] + totals["pending"] == totals["runs"]
assert totals["parked"] == 1 and totals["done"] == 2, totals
for r in summary["runs"]:
    run_dir = os.path.join(root, r["run_id"])
    if r["state"] == "done":
        assert r["digest"], r
        assert os.path.exists(os.path.join(run_dir, "run_report.json"))
    else:
        # In-progress/parked runs have no digest yet, but stay resumable.
        assert r["state"] in ("parked", "pending"), r
        assert r["digest"] == "", r
        assert os.path.exists(os.path.join(run_dir, "checkpoint.bin"))
        assert os.path.exists(os.path.join(run_dir, "lease.bin"))
    # Telemetry is on for every run in this fleet.
    assert os.path.exists(os.path.join(run_dir, "metrics.prom")), run_dir
parked = [r for r in summary["runs"] if r["state"] == "parked"]
assert len(parked) == 1 and parked[0]["steps_done"] == 3, parked
pm = json.load(open(os.path.join(root, parked[0]["run_id"],
                                 "postmortem.json")))
assert pm["schema"] == "dsmcpic.postmortem.v1", pm["schema"]
assert pm["reason"] == "park", pm["reason"]
print(f"{root}: ok (parked fleet summary valid, postmortem present)")
EOF
python3 scripts/check_metrics.py \
  "$OUT/fleet_parked/fleet_metrics.prom" \
  "$OUT"/fleet_parked/run*/metrics.prom \
  "$OUT"/fleet_parked/run*/metrics.json \
  --require dsmcpic_fleet_runs dsmcpic_fleet_runs_parked \
            dsmcpic_fleet_run_steps_done

echo "run report check clean."
