#!/usr/bin/env python3
"""Exposition lint for the live telemetry bus (docs/observability.md §6).

Validates the files the TelemetryHub and the fleet aggregator publish:

  *.prom  — Prometheus text exposition. Every metric must carry a
            "# HELP" and a "# TYPE" line BEFORE its first sample, the
            TYPE must be counter or gauge, metric names must match
            [a-zA-Z_:][a-zA-Z0-9_:]*, labels must be properly quoted
            key="value" pairs, and every sample value must parse as a
            float. Duplicate (name, labels) samples are rejected —
            a scraper would silently drop one.

  *.json  — telemetry JSON snapshot. Must parse, carry the
            dsmcpic.metrics.v1 schema, and hold gauges/counters objects
            plus a series array of {name, stride, capacity, points}.

    scripts/check_metrics.py FILE [FILE ...] [--require NAME [NAME ...]]

--require NAMES additionally demands that every named metric appears in
at least one of the given .prom files (fleet CI uses this to fail fast
when an exposition silently loses a family).

Exit codes: 0 all files valid, 1 validation violation, 2 bad input
(missing file, unreadable JSON, unknown extension) — the same semantics
as check_bench_regression.py.
"""

import argparse
import json
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABELS_RE = re.compile(
    r"^\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\}$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")


def check_prom(path, text, errors):
    helped, typed, seen_samples = set(), set(), set()
    families = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        where = f"{path}:{lineno}"
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.match(parts[2]):
                errors.append(f"{where}: malformed HELP line: {line!r}")
                continue
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not NAME_RE.match(parts[2]):
                errors.append(f"{where}: malformed TYPE line: {line!r}")
                continue
            if parts[3] not in ("counter", "gauge"):
                errors.append(f"{where}: TYPE must be counter or gauge, "
                              f"got {parts[3]!r}")
            if parts[2] in typed:
                errors.append(f"{where}: duplicate TYPE for {parts[2]}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{where}: unparseable sample line: {line!r}")
            continue
        name, labels, value = m.group(1), m.group(2), m.group(3)
        families.add(name)
        if name not in helped:
            errors.append(f"{where}: sample for {name} before its # HELP")
        if name not in typed:
            errors.append(f"{where}: sample for {name} before its # TYPE")
        if labels and not LABELS_RE.match(labels):
            errors.append(f"{where}: malformed labels {labels!r}")
        try:
            float(value)
        except ValueError:
            errors.append(f"{where}: non-numeric sample value {value!r}")
        key = (name, labels or "")
        if key in seen_samples:
            errors.append(f"{where}: duplicate sample {name}{labels or ''}")
        seen_samples.add(key)
    for name in sorted(helped - families):
        errors.append(f"{path}: HELP for {name} but no samples")
    return families


def check_json(path, text, errors):
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        print(f"error: {path}: invalid JSON: {e}", file=sys.stderr)
        sys.exit(2)
    schema = doc.get("schema")
    if schema != "dsmcpic.metrics.v1":
        errors.append(f"{path}: schema is {schema!r}, "
                      f"expected 'dsmcpic.metrics.v1'")
        return
    for section in ("gauges", "counters"):
        if not isinstance(doc.get(section), dict):
            errors.append(f"{path}: missing {section} object")
    series = doc.get("series")
    if not isinstance(series, list):
        errors.append(f"{path}: missing series array")
        return
    for i, s in enumerate(series):
        ctx = f"{path}: series[{i}]"
        for field in ("name", "stride", "capacity", "points"):
            if field not in s:
                errors.append(f"{ctx}: missing {field!r}")
        points = s.get("points", [])
        if len(points) > s.get("capacity", 0):
            errors.append(f"{ctx}: {len(points)} points exceed capacity "
                          f"{s.get('capacity')}")
        steps = [p.get("step") for p in points]
        if steps != sorted(steps):
            errors.append(f"{ctx}: point steps not increasing")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help=".prom and/or .json files")
    ap.add_argument("--require", nargs="+", default=[], metavar="NAME",
                    help="metric families that must appear in the .prom "
                         "files")
    args = ap.parse_args()

    errors, families = [], set()
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            sys.exit(2)
        if path.endswith(".prom"):
            families |= check_prom(path, text, errors)
        elif path.endswith(".json"):
            check_json(path, text, errors)
        else:
            print(f"error: {path}: expected a .prom or .json file",
                  file=sys.stderr)
            sys.exit(2)

    missing = [n for n in args.require if n not in families]
    if missing:
        print(f"error: required metric(s) missing: {', '.join(missing)}",
              file=sys.stderr)
        sys.exit(2)

    if errors:
        for e in errors:
            print(f"VIOLATION: {e}", file=sys.stderr)
        print(f"{len(errors)} violation(s) across {len(args.files)} file(s)",
              file=sys.stderr)
        sys.exit(1)
    print(f"ok: {len(args.files)} exposition file(s) valid"
          + (f", {len(families)} metric families" if families else ""))


if __name__ == "__main__":
    main()
