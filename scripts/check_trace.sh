#!/usr/bin/env bash
# Smoke-checks the tracing pipeline end-to-end: runs a trace-enabled
# imbalanced bench, validates that the emitted Chrome/Perfetto JSON
# actually parses, and asserts the trace has one named lane per virtual
# rank plus spans and flow arrows. Catches exporter regressions (broken
# escaping, truncated documents) that unit tests on the writer would miss.
#
#   scripts/check_trace.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
RANKS=4
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

cmake --build "$BUILD" --target bench_fig05_imbalance -j

"$BUILD"/bench/bench_fig05_imbalance \
  --ranks "$RANKS" --steps 3 --trace "$OUT/trace.json" >/dev/null

# bench_fig05 runs two cases (LB off / LB on) -> trace.json + trace.case1.json
for f in "$OUT"/trace.json "$OUT"/trace.case1.json; do
  [ -f "$f" ] || { echo "FAIL: $f was not written" >&2; exit 1; }
  python3 -m json.tool "$f" > /dev/null \
    || { echo "FAIL: $f is not valid JSON" >&2; exit 1; }
  [ -f "$f.metrics.csv" ] || { echo "FAIL: $f.metrics.csv missing" >&2; exit 1; }

  python3 - "$f" "$RANKS" <<'EOF'
import json, sys
path, nranks = sys.argv[1], int(sys.argv[2])
events = json.load(open(path))["traceEvents"]
lanes = {e["tid"] for e in events
         if e.get("ph") == "M" and e.get("name") == "thread_name"}
missing = [r for r in range(nranks) if r not in lanes]
assert not missing, f"{path}: no lane metadata for ranks {missing}"
by_ph = {}
for e in events:
    by_ph[e.get("ph")] = by_ph.get(e.get("ph"), 0) + 1
assert by_ph.get("X", 0) > 0, f"{path}: no spans"
assert by_ph.get("s", 0) > 0 and by_ph.get("s") == by_ph.get("f"), \
    f"{path}: unmatched flow arrows {by_ph}"
for r in range(nranks):
    assert any(e.get("ph") == "X" and e.get("tid") == r for e in events), \
        f"{path}: rank {r} lane has no spans"
print(f"{path}: {len(events)} events, lanes={sorted(lanes)}, "
      f"spans={by_ph.get('X')}, flows={by_ph.get('s')}")
EOF
done

echo "trace check clean."
