#pragma once
// Machine profiles for the three HPC platforms the paper evaluates on, plus
// the topology-aware communication model.
//
// The paper (Sec. VI-A) describes:
//   * Tianhe-2   — 2×12-core Xeon E5-2692v2 @2.2GHz/node, in-house fat-tree
//                  network, 160 Gbps point-to-point; 32 nodes per frame,
//                  4 frames per rack (Sec. VII-D2).
//   * BSCC       — 2×48-core Xeon Platinum 9242 @2.3GHz/node, InfiniBand,
//                  100 Gbps point-to-point.
//   * Tianhe-3   — 64-core Phytium 2000+ (ARMv8) @2.2GHz/node, in-house
//                  network, 200 Gbps point-to-point.
//
// Communication follows a Hockney α–β model where the per-transaction
// latency α depends on the network distance between the two endpoint nodes
// (intra-node < inner-frame < inner-rack < inter-rack) and a congestion term
// models switch pressure when a communication round carries many concurrent
// transactions (this is what makes the distributed all-to-all strategy
// degrade at large rank counts, reproducing Fig. 11).

#include <cstdint>
#include <string>
#include <vector>

#include "par/work.hpp"

namespace dsmcpic::par {

/// The paper's three MPI rank placement strategies (Sec. VII-D2, Fig. 14).
enum class Placement {
  kInnerFrame,  // pack ranks densely into nodes of the same frame
  kInnerRack,   // spread nodes round-robin across the frames of one rack
  kInterRack,   // spread nodes round-robin across racks
};

const char* placement_name(Placement p);

/// Hardware description + cost coefficients for one platform.
struct MachineProfile {
  std::string name;

  // Node organization (used for rank→node mapping and distance tiers).
  int cores_per_node = 24;
  int nodes_per_frame = 32;
  int frames_per_rack = 4;

  // Hockney model: per-transaction latency by distance tier (seconds) and
  // inverse bandwidth (seconds per byte).
  double alpha_intra_node = 5e-7;
  double alpha_inner_frame = 1.5e-6;
  double alpha_inner_rack = 2.5e-6;
  double alpha_inter_rack = 4.0e-6;
  double beta = 5e-11;

  // Congestion: effective α is multiplied by
  //   1 + congestion * (transactions_in_round / nodes_in_use)
  // so rounds with many concurrent transactions per node pay extra latency.
  double congestion = 5e-5;

  // Collective model: tree collectives cost ~ stages * alpha_tree + bytes*beta.
  double alpha_tree = 2.0e-6;

  // NIC serialization: every inter-node message occupies its endpoints'
  // shared NIC for `nic_overhead` seconds (blocking rendezvous software
  // cost); under heavy incast the per-message cost inflates by
  // (1 + count_per_nic * nic_contention). This is what throttles the
  // distributed strategy's N(N-1) pattern at scale (paper Fig. 11: DC's
  // exchange cost jumping past 2x CC's at 768 BSCC ranks).
  double nic_overhead = 1.5e-6;
  double nic_contention = 2e-5;

  // Compute cost per work unit (virtual seconds).
  WorkCosts costs{};

  static MachineProfile tianhe2();
  static MachineProfile bscc();
  static MachineProfile tianhe3();
};

/// Maps virtual ranks onto nodes/frames/racks for one placement strategy and
/// answers distance-dependent α queries.
class Topology {
 public:
  Topology(MachineProfile profile, int nranks,
           Placement placement = Placement::kInnerFrame);

  const MachineProfile& profile() const { return profile_; }
  Placement placement() const { return placement_; }
  int nranks() const { return nranks_; }

  /// Number of physical nodes occupied by the rank set.
  int nodes_in_use() const { return nodes_in_use_; }

  /// Physical node index hosting `rank` (placement-dependent).
  int node_of(int rank) const;
  int frame_of(int rank) const;
  int rack_of(int rank) const;

  /// Point-to-point latency between two ranks (no congestion applied).
  double alpha(int src, int dst) const;

  /// Cost (seconds) of a point-to-point message, without congestion.
  double p2p_cost(int src, int dst, double bytes) const;

 private:
  int node_of_uncached(int rank) const;

  MachineProfile profile_;
  int nranks_;
  Placement placement_;
  int nodes_in_use_;
  // Cached per-rank location (alpha() is on the message hot path).
  std::vector<std::int32_t> node_, frame_, rack_;
};

}  // namespace dsmcpic::par
