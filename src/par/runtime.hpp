#pragma once
// Virtual-rank BSP runtime: the MPI + cluster substitute.
//
// The paper's solver is an MPI program on up to 1536 cores. This container
// has one core and no MPI, so the runtime executes N *virtual ranks* as
// cooperative tasks inside supersteps:
//
//   runtime.superstep("DSMC_Move", [&](Comm& c) { ...rank-local work... });
//
// Rank-local work is real (actual particles, actual matrices); what is
// virtual is *time*. Each rank has a virtual clock advanced by
//   * compute charges  — work units × machine-profile coefficients,
//   * message costs    — topology-aware Hockney α–β with a congestion term,
//   * collective costs — log-tree model,
// and synchronizing operations align clocks to the maximum (the wait time
// the paper's load-imbalance indicator is built from). Everything is
// deterministic: two runs with the same seed produce identical virtual
// times, which is what lets the bench harness regenerate the paper's tables.
//
// Message semantics: messages sent during superstep S are delivered to the
// destination inbox at the start of superstep S+1 (BSP). Collectives are
// driver-level calls between supersteps operating on per-rank values.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "par/machine.hpp"
#include "par/work.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace dsmcpic::trace {
class TraceRecorder;
enum class SpanKind : std::uint8_t;
}

namespace dsmcpic::par {

/// How superstep bodies are executed. Both modes produce bit-identical
/// results (clocks, phase stats, message ordering, physics) — kThreaded
/// only changes wall-clock time, never virtual time. See DESIGN.md §2c.
/// Orthogonal to ParallelConfig::kernel_threads (DESIGN.md §2d): rank
/// bodies may additionally chunk their own kernels over a shared kernel
/// pool; virtual clocks are computed from counted work either way, so
/// neither level of real threading moves them.
enum class ExecMode { kSequential, kThreaded };

struct ExecOptions {
  ExecMode mode = ExecMode::kSequential;
  /// Worker lanes for kThreaded; <= 0 means one per hardware thread.
  int threads = 0;
};

/// Parses "seq" / "sequential" / "threaded" (throws on anything else).
ExecMode parse_exec_mode(const std::string& name);
const char* exec_mode_name(ExecMode mode);

struct Message {
  int src = -1;
  int dst = -1;
  int tag = 0;
  double byte_scale = 1.0;  // cost-model multiplier for the payload bytes
  std::vector<std::byte> payload;

  /// Reinterprets the payload as an array of trivially copyable T.
  template <typename T>
  std::vector<T> decode() const {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto s = view<T>();
    return std::vector<T>(s.begin(), s.end());
  }

  /// Zero-copy view of the payload as elements of T (valid while the
  /// message is alive — i.e. within the receiving superstep body).
  template <typename T>
  std::span<const T> view() const {
    static_assert(std::is_trivially_copyable_v<T>);
    DSMCPIC_CHECK_MSG(payload.size() % sizeof(T) == 0,
                      "payload size " << payload.size()
                                      << " not a multiple of element size "
                                      << sizeof(T));
    return {reinterpret_cast<const T*>(payload.data()),
            payload.size() / sizeof(T)};
  }
};

class Runtime;

/// Per-rank handle passed to superstep bodies.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Charges `units` of compute work of the given kind to this rank's clock
  /// (scaled by the runtime's particle/grid scale per the kind's CostClass).
  void charge(WorkKind kind, double units);

  /// Sends raw bytes to `dst`; delivered at the start of the next superstep.
  /// `cls` selects the byte-cost scaling: particle payloads (migration) vs
  /// grid payloads (halo/field data).
  void send(int dst, int tag, std::span<const std::byte> payload,
            CostClass cls = CostClass::kParticle);

  /// Move-sends an owned byte buffer (no copy; hot paths).
  void send_owned(int dst, int tag, std::vector<std::byte>&& payload,
                  CostClass cls = CostClass::kParticle);

  /// Builds a byte buffer from trivially copyable elements and move-sends it.
  /// The buffer comes from this rank's payload pool (zero steady-state
  /// allocations once the pool is warm).
  template <typename T>
  void send_pod_vec(int dst, int tag, const std::vector<T>& elems,
                    CostClass cls = CostClass::kParticle) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = acquire_payload(elems.size() * sizeof(T));
    if (!bytes.empty())
      std::memcpy(bytes.data(), elems.data(), bytes.size());
    send_owned(dst, tag, std::move(bytes), cls);
  }

  /// Charges raw communication seconds to this rank (used for zero-payload
  /// handshake transactions that carry no data but still cost latency, e.g.
  /// the distributed strategy's empty send/recv pairs).
  void charge_comm_seconds(double seconds);

  /// Returns a payload buffer of exactly `nbytes` (zero-filled) from this
  /// rank's buffer pool; pass it to send_owned and it returns to the pool
  /// after delivery. Rank-private, so concurrent bodies never contend.
  std::vector<std::byte> acquire_payload(std::size_t nbytes);

  /// Point-to-point latency to a peer under the current topology (no
  /// congestion term).
  double alpha_to(int peer) const;

  /// Sends an array of trivially copyable elements.
  template <typename T>
  void send_pod(int dst, int tag, std::span<const T> elems,
                CostClass cls = CostClass::kParticle) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::span<const std::byte> bytes{
        reinterpret_cast<const std::byte*>(elems.data()),
        elems.size() * sizeof(T)};
    send(dst, tag, bytes, cls);
  }

  /// Messages delivered to this rank for the current superstep.
  const std::vector<Message>& inbox() const;

 private:
  friend class Runtime;
  Comm(Runtime* rt, int rank) : rt_(rt), rank_(rank) {}
  Runtime* rt_;
  int rank_;
};

/// Cumulative per-phase statistics (virtual seconds / counts).
struct PhaseStats {
  double busy_max = 0.0;   // max over ranks of busy time in this phase
  double busy_min = 0.0;   // min over ranks
  double busy_sum = 0.0;   // sum over ranks
  std::uint64_t transactions = 0;  // point-to-point messages routed
  double bytes = 0.0;              // scaled payload bytes routed
};

/// Cumulative payload-pool accounting (summed over ranks). In steady state
/// `misses` stops growing: every acquire is served from the free list, so
/// supersteps allocate no payload memory (asserted by par_test).
struct PoolStats {
  std::uint64_t acquires = 0;  // pooled buffers handed out
  std::uint64_t misses = 0;    // acquires that had to allocate fresh
  std::uint64_t recycles = 0;  // delivered payloads returned to a pool
};

class Runtime {
 public:
  /// The scales map a scaled-down run back onto paper-sized virtual
  /// workloads (see DESIGN.md §1): `particle_scale` multiplies
  /// particle-proportional charges and payload bytes, `grid_scale`
  /// grid-proportional ones (solver flops, assembly, field halos).
  Runtime(int nranks, Topology topology, double particle_scale = 1.0,
          double grid_scale = 1.0, ExecOptions exec = {});

  int size() const { return nranks_; }

  // ---- active-rank set (elastic ensembles, DESIGN.md §2i) ---------------
  //
  // The active set is a contiguous prefix [0, active). Parked ranks are
  // skipped by superstep dispatch and every collective — all per-superstep
  // work is O(active), not O(nranks) — and their clocks are frozen, so they
  // contribute zero virtual time. When active == size() (the default and
  // the `--ensemble fixed` path) every loop below visits exactly the ranks
  // it always did, bit-for-bit.

  /// Ranks currently participating in supersteps and collectives.
  int active_ranks() const { return active_; }
  /// Physical nodes spanned by the active prefix (rank/ppn node indexing,
  /// the same mapping the NIC serialization model uses).
  int active_nodes() const {
    return (active_ + topo_.profile().cores_per_node - 1) /
           topo_.profile().cores_per_node;
  }
  /// Resizes the active prefix. Driver-only, between supersteps, with no
  /// messages in flight. Growing joins the reactivated ranks' clocks to the
  /// current active frontier (a rank cannot resume in the past); shrinking
  /// freezes the parked ranks' clocks where they stand.
  void set_active_ranks(int n);

  ExecMode exec_mode() const { return exec_.mode; }
  /// Worker lanes actually used by kThreaded dispatch (1 for kSequential).
  int exec_threads() const;
  const Topology& topology() const { return topo_; }
  double scale_of(CostClass cls) const {
    switch (cls) {
      case CostClass::kParticle: return particle_scale_;
      case CostClass::kGrid: return grid_scale_;
      case CostClass::kNone: return 1.0;
    }
    return 1.0;
  }

  // ---- supersteps -------------------------------------------------------

  /// Runs `fn` once per rank, then routes all messages sent during the
  /// step; message delivery costs are charged under `phase`. Under
  /// kSequential, bodies run in rank order 0..N-1 on the calling thread;
  /// under kThreaded they run concurrently on the pool. Bodies may only
  /// write rank-indexed state (their store, their clock, their staging
  /// buffer), which makes the two modes bit-identical: every rank's sends
  /// land in a private per-rank buffer, and routing merges the buffers in
  /// (src rank, send order) — exactly the sequential schedule's order.
  void superstep(const std::string& phase, const std::function<void(Comm&)>& fn);

  /// Overrides the transaction count used for the congestion term of the
  /// NEXT routing round (one-shot). The distributed exchange performs
  /// N(N-1) logical transactions even when most payloads are empty; the
  /// implementation only ships non-empty ones, so it hints the true count.
  /// Driver-owned: must be called between supersteps (never from a body),
  /// so the hint is consumed exactly once, by the next routing round.
  void hint_round_transactions(std::uint64_t n) {
    DSMCPIC_CHECK_MSG(!in_superstep_,
                      "hint_round_transactions inside a superstep body");
    congestion_hint_ = n;
  }

  /// Hints the dense all-pairs transaction count N(N-1) over the ACTIVE
  /// rank set for the next routing round. Sparse exchanges (neighbor lists)
  /// that stand in for a logically dense round must use this instead of
  /// computing the count themselves — the runtime owns the active-rank
  /// count, so the congestion model stays honest under elastic ensembles.
  void hint_round_transactions_all_pairs() {
    hint_round_transactions(static_cast<std::uint64_t>(active_) *
                            static_cast<std::uint64_t>(active_ - 1));
  }

  /// Supersteps executed so far (the denominator of the benches'
  /// wall-clock-per-superstep lanes).
  std::uint64_t supersteps() const { return supersteps_; }

  /// Aggregate payload-pool counters (summed over ranks).
  PoolStats pool_stats() const;

  // ---- synchronizing collectives (driver level) -------------------------

  /// Aligns all clocks to the maximum plus a tree-barrier cost.
  void barrier(const std::string& phase);

  /// Sum-allreduce of one double per rank; synchronizing.
  double allreduce_sum(const std::string& phase, std::span<const double> vals);
  double allreduce_max(const std::string& phase, std::span<const double> vals);
  double allreduce_min(const std::string& phase, std::span<const double> vals);

  /// Element-wise sum-allreduce of per-rank vectors (all of equal length);
  /// cost modelled as a ring allreduce of `len * 8` bytes. Returns the sum.
  std::vector<double> allreduce_sum_vec(
      const std::string& phase,
      const std::vector<std::vector<double>>& per_rank);

  /// Exclusive prefix sum over one value per rank (Reindex numbering).
  std::vector<std::int64_t> exscan_sum(const std::string& phase,
                                       std::span<const std::int64_t> vals);

  /// Allgather of one double per rank.
  std::vector<double> allgather(const std::string& phase,
                                std::span<const double> vals);

  /// Charges the cost of broadcasting `bytes` from `root` to all ranks.
  void charge_bcast(const std::string& phase, int root, double bytes);

  /// Charges the cost of gathering `bytes_per_rank` to `root` (root pays the
  /// serialized receive cost, others one send).
  void charge_gather(const std::string& phase, int root, double bytes_per_rank);

  /// Charges compute on a single rank outside a superstep (e.g. the root
  /// re-running the partitioner during Rebalance); synchronizing afterwards
  /// is the caller's choice.
  void charge_rank(const std::string& phase, int rank, WorkKind kind,
                   double units);

  // ---- accounting -------------------------------------------------------

  /// Virtual clock of one rank / end-to-end virtual time (max clock).
  double clock(int rank) const { return clocks_.at(rank); }
  double total_time() const;

  /// Cumulative stats for one phase (zeros if never used).
  PhaseStats phase_stats(const std::string& phase) const;
  /// Per-rank cumulative busy time in one phase.
  std::vector<double> phase_busy(const std::string& phase) const;
  /// Per-rank busy time summed over the given phases.
  std::vector<double> busy_totals(std::span<const std::string> phases) const;
  /// Per-rank busy summed over ALL phases.
  std::vector<double> busy_all() const;
  /// Names of all phases seen so far, in first-use order.
  std::vector<std::string> phases() const;

  /// Messages sitting in the BSP pipeline right now: staged sends of an
  /// in-flight superstep plus pending deliveries for the next one. Between
  /// whole solver steps every mailbox must be drained (an exchange protocol
  /// that ends with an unread message leaked particles) — the health
  /// auditor's mailbox invariant checks exactly this. Read-only.
  std::size_t undelivered_messages() const;

  /// Binary checkpoint of the accounting state (clocks, per-phase busy
  /// matrices). Message queues must be empty (between supersteps).
  void save(std::ostream& os) const;
  void load(std::istream& is);

  // ---- tracing (DESIGN.md §2e) ------------------------------------------
  /// Attaches a trace recorder; nullptr detaches. Recording is pure
  /// observation — it never moves a clock or touches physics state — and
  /// all hooks run on the driver thread, so traces are bit-identical
  /// across ExecMode / kernel-thread settings. The recorder must be sized
  /// for this runtime's rank count and must outlive the attachment. Not
  /// part of the checkpoint state.
  void set_tracer(trace::TraceRecorder* rec);
  trace::TraceRecorder* tracer() const { return tracer_; }

 private:
  friend class Comm;

  int phase_id(const std::string& phase);
  void charge_busy(int rank, int phase, double seconds);
  void sync_clocks(double extra_cost_per_rank, int phase);
  void route_messages(int phase);
  /// Interns runtime phase `pid` into the attached recorder (cached).
  int trace_phase(int pid);
  /// Emits one span per rank for clock movement since `pre` (tracer only).
  void trace_spans_since(const std::vector<double>& pre, int pid,
                         trace::SpanKind kind, std::uint32_t seq,
                         bool with_work);
  /// Charges the per-node NIC serialization of this routing round (see
  /// MachineProfile::nic_overhead).
  void apply_nic_serialization(int phase, std::uint64_t hint);
  double tree_stages() const;
  std::size_t staged_count() const;
  /// Pops the best-fit buffer (smallest capacity >= nbytes) from `rank`'s
  /// pool, or allocates fresh on a miss. Zero-filled to exactly nbytes.
  std::vector<std::byte> pool_acquire(int rank, std::size_t nbytes);
  /// Returns a delivered payload to `rank`'s pool (capacity-sorted insert).
  void pool_recycle(int rank, std::vector<std::byte>&& buf);

  int nranks_;
  int active_;  // active prefix [0, active_); == nranks_ unless elastic
  Topology topo_;
  double particle_scale_;
  double grid_scale_;
  ExecOptions exec_;
  std::unique_ptr<support::ThreadPool> pool_;  // non-null iff kThreaded

  std::vector<double> clocks_;

  // busy_[phase][rank]; phase registry keeps first-use order.
  std::map<std::string, int> phase_ids_;
  std::vector<std::string> phase_names_;
  std::vector<std::vector<double>> busy_;
  std::vector<std::uint64_t> phase_transactions_;
  std::vector<double> phase_bytes_;

  std::vector<std::vector<Message>> pending_;  // delivery at next superstep
  std::vector<std::vector<Message>> inbox_;    // current superstep
  // Per-SENDER staging for the current superstep: rank r's body appends
  // only to staged_[r], so concurrent bodies never share a buffer. Routing
  // walks staged_[0..N-1] in order, which reproduces the sequential
  // schedule's global send order bit-for-bit.
  std::vector<std::vector<Message>> staged_;
  // Per-rank payload free lists, sorted ascending by capacity. A rank's
  // body acquires only from its own pool (no locks, deterministic reuse
  // order); delivered payloads are recycled back to their SENDER's pool on
  // the driver thread at the end of the receiving superstep, so a
  // steady-state communication pattern cycles the same buffers forever.
  struct PayloadPool {
    std::vector<std::vector<std::byte>> free;
    std::uint64_t acquires = 0, misses = 0, recycles = 0;
  };
  std::vector<PayloadPool> pools_;
  std::vector<double> nic_load_;  // per-node scratch (apply_nic_serialization)
  std::uint64_t supersteps_ = 0;
  bool in_superstep_ = false;
  int current_phase_for_comm_ = -1;
  std::uint64_t congestion_hint_ = 0;  // one-shot; 0 = use staged count

  // Tracing state (inert when tracer_ == nullptr; the hot paths pay one
  // branch). Scratch buffers are reused so steady-state recording does not
  // allocate per superstep.
  trace::TraceRecorder* tracer_ = nullptr;
  std::vector<double> trace_pre_, trace_mid_;       // clock snapshots
  std::vector<std::array<double, kNumWorkKinds>> trace_work_;  // per rank
  std::vector<int> trace_phase_ids_;  // runtime pid -> recorder phase id
  std::array<int, kNumWorkKinds> trace_work_keys_{};
  bool trace_work_keys_ready_ = false;
  std::uint32_t trace_seq_ = 0;  // seq of the superstep in flight
};

}  // namespace dsmcpic::par
