#include "par/machine.hpp"

#include "support/error.hpp"

namespace dsmcpic::par {

const char* placement_name(Placement p) {
  switch (p) {
    case Placement::kInnerFrame: return "inner-frame";
    case Placement::kInnerRack: return "inner-rack";
    case Placement::kInterRack: return "inter-rack";
  }
  return "?";
}

namespace {

/// Baseline per-unit compute costs, calibrated so the phase breakdown on the
/// Tianhe-2 profile reproduces the ordering of paper Table IV
/// (Inject >> DSMC_Move > Poisson_Solve > PIC_Move > Reindex at 24 ranks).
WorkCosts baseline_costs() {
  WorkCosts c{};
  // Injection is expensive per particle (sampling, allocation, indexing);
  // the coefficient is calibrated so Inject dominates the balanced runs as
  // in paper Table IV (1622 s vs DSMC_Move 283 s at 24 ranks).
  c[static_cast<int>(WorkKind::kInject)] = 5.0e-5;
  c[static_cast<int>(WorkKind::kMove)] = 1.3e-7;
  c[static_cast<int>(WorkKind::kWalkStep)] = 6.0e-8;
  c[static_cast<int>(WorkKind::kCollide)] = 1.0e-7;
  c[static_cast<int>(WorkKind::kReact)] = 2.0e-7;
  c[static_cast<int>(WorkKind::kReindex)] = 1.4e-8;
  c[static_cast<int>(WorkKind::kDeposit)] = 6.0e-8;
  c[static_cast<int>(WorkKind::kFieldGather)] = 5.0e-8;
  c[static_cast<int>(WorkKind::kBorisPush)] = 6.0e-8;
  c[static_cast<int>(WorkKind::kSpmvFlop)] = 7.0e-10;
  c[static_cast<int>(WorkKind::kVecFlop)] = 5.0e-10;
  c[static_cast<int>(WorkKind::kAssemble)] = 1.5e-7;
  c[static_cast<int>(WorkKind::kScan)] = 1.2e-8;
  // Root-side classify/unpack/repack rate for the centralized exchange.
  c[static_cast<int>(WorkKind::kClassify)] = 4.0e-8;
  c[static_cast<int>(WorkKind::kPackByte)] = 2.0e-10;
  c[static_cast<int>(WorkKind::kPartitionEdge)] = 1.0e-7;
  c[static_cast<int>(WorkKind::kMatchingOp)] = 1.0e-9;
  c[static_cast<int>(WorkKind::kGeneric)] = 1.0e-9;
  return c;
}

WorkCosts scaled_costs(double factor) {
  WorkCosts c = baseline_costs();
  for (auto& v : c) v *= factor;
  return c;
}

}  // namespace

MachineProfile MachineProfile::tianhe2() {
  MachineProfile p;
  p.name = "tianhe2";
  p.cores_per_node = 24;  // 2 × 12-core E5-2692v2
  p.nodes_per_frame = 32;
  p.frames_per_rack = 4;
  p.alpha_intra_node = 5e-7;
  p.alpha_inner_frame = 1.5e-6;
  p.alpha_inner_rack = 2.5e-6;
  p.alpha_inter_rack = 4.0e-6;
  p.beta = 5e-11;  // 160 Gbps point-to-point
  p.congestion = 5e-5;
  p.alpha_tree = 2.0e-6;
  p.nic_contention = 3e-5;
  p.costs = baseline_costs();
  return p;
}

MachineProfile MachineProfile::bscc() {
  MachineProfile p;
  p.name = "bscc";
  p.cores_per_node = 96;  // 2 × 48-core Platinum 9242
  p.nodes_per_frame = 16;
  p.frames_per_rack = 4;
  p.alpha_intra_node = 4e-7;
  p.alpha_inner_frame = 1.8e-6;
  p.alpha_inner_rack = 2.8e-6;
  p.alpha_inter_rack = 4.5e-6;
  p.beta = 8e-11;  // 100 Gbps InfiniBand
  p.congestion = 8e-5;
  p.alpha_tree = 2.2e-6;
  p.nic_overhead = 2.0e-6;  // 96 ranks share each node's HCA
  p.nic_contention = 8e-5;   // severe incast: 96 ranks funnel into one port
  p.costs = scaled_costs(0.8);  // newer, faster cores
  return p;
}

MachineProfile MachineProfile::tianhe3() {
  MachineProfile p;
  p.name = "tianhe3";
  p.cores_per_node = 64;  // Phytium 2000+
  p.nodes_per_frame = 32;
  p.frames_per_rack = 4;
  p.alpha_intra_node = 6e-7;
  p.alpha_inner_frame = 1.4e-6;
  p.alpha_inner_rack = 2.3e-6;
  p.alpha_inter_rack = 3.6e-6;
  p.beta = 4e-11;  // 200 Gbps point-to-point
  p.congestion = 5e-5;
  p.alpha_tree = 1.8e-6;
  p.costs = scaled_costs(1.6);  // weaker ARM cores per-core
  return p;
}

Topology::Topology(MachineProfile profile, int nranks, Placement placement)
    : profile_(std::move(profile)), nranks_(nranks), placement_(placement) {
  DSMCPIC_CHECK_MSG(nranks >= 1, "topology needs at least one rank");
  DSMCPIC_CHECK(profile_.cores_per_node >= 1);
  nodes_in_use_ =
      (nranks_ + profile_.cores_per_node - 1) / profile_.cores_per_node;
  node_.resize(nranks);
  frame_.resize(nranks);
  rack_.resize(nranks);
  for (int r = 0; r < nranks; ++r) {
    node_[r] = node_of_uncached(r);
    frame_[r] = node_[r] / profile_.nodes_per_frame;
    rack_[r] = frame_[r] / profile_.frames_per_rack;
  }
}

int Topology::node_of(int rank) const { return node_[rank]; }

int Topology::node_of_uncached(int rank) const {
  DSMCPIC_CHECK_MSG(rank >= 0 && rank < nranks_, "rank out of range");
  // "Slot" = dense node index in fill order; the placement strategy decides
  // which physical node each slot corresponds to.
  const int slot = rank / profile_.cores_per_node;
  const int npf = profile_.nodes_per_frame;
  const int npr = npf * profile_.frames_per_rack;
  switch (placement_) {
    case Placement::kInnerFrame:
      // Dense: consecutive slots share a frame as long as possible.
      return slot;
    case Placement::kInnerRack: {
      // Round-robin the slots across the frames of each rack, so consecutive
      // nodes land in different frames of the same rack.
      const int rack = slot / npr;
      const int within = slot % npr;
      const int frame = within % profile_.frames_per_rack;
      const int pos = within / profile_.frames_per_rack;
      return rack * npr + frame * npf + pos;
    }
    case Placement::kInterRack: {
      // Round-robin across racks: consecutive nodes land in different racks.
      // Assume enough racks to spread every node (worst-case distance).
      return slot * npr;  // each slot in its own rack
    }
  }
  return slot;
}

int Topology::frame_of(int rank) const { return frame_[rank]; }

int Topology::rack_of(int rank) const { return rack_[rank]; }

double Topology::alpha(int src, int dst) const {
  if (node_[src] == node_[dst]) return profile_.alpha_intra_node;
  if (frame_[src] == frame_[dst]) return profile_.alpha_inner_frame;
  if (rack_[src] == rack_[dst]) return profile_.alpha_inner_rack;
  return profile_.alpha_inter_rack;
}

double Topology::p2p_cost(int src, int dst, double bytes) const {
  return alpha(src, dst) + bytes * profile_.beta;
}

}  // namespace dsmcpic::par
