#include "par/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/serialize.hpp"
#include "trace/recorder.hpp"

namespace dsmcpic::par {

// ---- Comm -----------------------------------------------------------------

int Comm::size() const { return rt_->size(); }

void Comm::charge(WorkKind kind, double units) {
  DSMCPIC_CHECK_MSG(rt_->in_superstep_, "charge() outside a superstep");
  const double cost =
      units * rt_->topo_.profile().costs[static_cast<int>(kind)] *
      rt_->scale_of(cost_class(kind));
  rt_->clocks_[rank_] += cost;
  rt_->charge_busy(rank_, rt_->current_phase_for_comm_, cost);
  // Rank-private slot: safe under concurrent bodies, read after the join.
  if (rt_->tracer_)
    rt_->trace_work_[rank_][static_cast<int>(kind)] += units;
}

void Comm::send(int dst, int tag, std::span<const std::byte> payload,
                CostClass cls) {
  // Copy into a pooled buffer instead of a fresh allocation: the buffer
  // returns to this rank's pool after delivery, so steady-state traffic
  // recycles the same memory superstep after superstep.
  auto buf = acquire_payload(payload.size());
  if (!payload.empty())
    std::memcpy(buf.data(), payload.data(), payload.size());
  send_owned(dst, tag, std::move(buf), cls);
}

std::vector<std::byte> Comm::acquire_payload(std::size_t nbytes) {
  DSMCPIC_CHECK_MSG(rt_->in_superstep_,
                    "acquire_payload outside a superstep");
  return rt_->pool_acquire(rank_, nbytes);
}

void Comm::send_owned(int dst, int tag, std::vector<std::byte>&& payload,
                      CostClass cls) {
  DSMCPIC_CHECK_MSG(rt_->in_superstep_, "send() outside a superstep");
  DSMCPIC_CHECK_MSG(dst >= 0 && dst < rt_->active_,
                    "bad destination rank " << dst << " (active set is [0, "
                                            << rt_->active_ << "))");
  Message m;
  m.src = rank_;
  m.dst = dst;
  m.tag = tag;
  m.byte_scale = rt_->scale_of(cls);
  m.payload = std::move(payload);
  // Sender-private buffer: safe under concurrent superstep bodies.
  rt_->staged_[rank_].push_back(std::move(m));
}

const std::vector<Message>& Comm::inbox() const {
  return rt_->inbox_[rank_];
}

void Comm::charge_comm_seconds(double seconds) {
  DSMCPIC_CHECK_MSG(rt_->in_superstep_, "charge_comm_seconds outside superstep");
  rt_->clocks_[rank_] += seconds;
  rt_->charge_busy(rank_, rt_->current_phase_for_comm_, seconds);
}

double Comm::alpha_to(int peer) const {
  return rt_->topo_.alpha(rank_, peer);
}

// ---- Runtime ----------------------------------------------------------------

Runtime::Runtime(int nranks, Topology topology, double particle_scale,
                 double grid_scale, ExecOptions exec)
    : nranks_(nranks),
      active_(nranks),
      topo_(std::move(topology)),
      particle_scale_(particle_scale),
      grid_scale_(grid_scale),
      exec_(exec),
      clocks_(nranks, 0.0),
      pending_(nranks),
      inbox_(nranks),
      staged_(nranks),
      pools_(nranks) {
  DSMCPIC_CHECK_MSG(nranks >= 1, "runtime needs at least one rank");
  DSMCPIC_CHECK_MSG(topo_.nranks() == nranks,
                    "topology sized for " << topo_.nranks() << " ranks, not "
                                          << nranks);
  DSMCPIC_CHECK(particle_scale > 0.0 && grid_scale > 0.0);
  if (exec_.mode == ExecMode::kThreaded && nranks > 1)
    pool_ = std::make_unique<support::ThreadPool>(exec_.threads);
}

int Runtime::exec_threads() const { return pool_ ? pool_->num_threads() : 1; }

ExecMode parse_exec_mode(const std::string& name) {
  if (name == "seq" || name == "sequential") return ExecMode::kSequential;
  if (name == "threaded") return ExecMode::kThreaded;
  DSMCPIC_CHECK_MSG(false,
                    "unknown exec mode '" << name << "' (seq | threaded)");
  return ExecMode::kSequential;
}

const char* exec_mode_name(ExecMode mode) {
  return mode == ExecMode::kThreaded ? "threaded" : "seq";
}

void Runtime::set_tracer(trace::TraceRecorder* rec) {
  if (rec) {
    DSMCPIC_CHECK_MSG(rec->nranks() == nranks_,
                      "trace recorder sized for " << rec->nranks()
                                                  << " ranks, not " << nranks_);
  }
  tracer_ = rec;
  trace_phase_ids_.assign(phase_names_.size(), -1);
  trace_work_keys_ready_ = false;
  trace_work_.assign(rec ? nranks_ : 0, {});
}

int Runtime::trace_phase(int pid) {
  if (static_cast<std::size_t>(pid) >= trace_phase_ids_.size())
    trace_phase_ids_.resize(phase_names_.size(), -1);
  int& id = trace_phase_ids_[pid];
  if (id < 0) id = tracer_->intern_phase(phase_names_[pid]);
  return id;
}

void Runtime::trace_spans_since(const std::vector<double>& pre, int pid,
                                trace::SpanKind kind, std::uint32_t seq,
                                bool with_work) {
  if (with_work && !trace_work_keys_ready_) {
    for (std::size_t k = 0; k < kNumWorkKinds; ++k)
      trace_work_keys_[k] =
          tracer_->intern_key(work_kind_name(static_cast<WorkKind>(k)));
    trace_work_keys_ready_ = true;
  }
  const int tp = trace_phase(pid);
  for (int r = 0; r < active_; ++r) {
    if (!(clocks_[r] > pre[r])) continue;
    trace::Span s;
    s.rank = r;
    s.phase = tp;
    s.kind = kind;
    s.t0 = pre[r];
    s.t1 = clocks_[r];
    s.seq = seq;
    if (with_work) {
      for (std::size_t k = 0; k < kNumWorkKinds; ++k)
        if (trace_work_[r][k] > 0.0)
          s.work.push_back(
              trace::WorkItem{trace_work_keys_[k], trace_work_[r][k]});
    }
    tracer_->add_span(std::move(s));
  }
}

int Runtime::phase_id(const std::string& phase) {
  auto [it, inserted] = phase_ids_.try_emplace(
      phase, static_cast<int>(phase_names_.size()));
  if (inserted) {
    phase_names_.push_back(phase);
    busy_.emplace_back(nranks_, 0.0);
    phase_transactions_.push_back(0);
    phase_bytes_.push_back(0.0);
  }
  return it->second;
}

void Runtime::charge_busy(int rank, int phase, double seconds) {
  busy_[phase][rank] += seconds;
}

double Runtime::tree_stages() const {
  return std::ceil(std::log2(std::max(2, active_)));
}

void Runtime::set_active_ranks(int n) {
  DSMCPIC_CHECK_MSG(!in_superstep_,
                    "set_active_ranks inside a superstep body");
  DSMCPIC_CHECK_MSG(undelivered_messages() == 0,
                    "set_active_ranks with messages in flight");
  DSMCPIC_CHECK_MSG(n >= 1 && n <= nranks_,
                    "active rank count " << n << " out of [1, " << nranks_
                                         << "]");
  if (n > active_) {
    // Reactivated ranks resume at the active frontier: a parked rank cannot
    // rejoin in the past (its frozen clock may predate work the active set
    // already did), and joining to the max keeps virtual time monotone.
    double frontier = 0.0;
    for (int r = 0; r < active_; ++r)
      frontier = std::max(frontier, clocks_[r]);
    for (int r = active_; r < n; ++r)
      clocks_[r] = std::max(clocks_[r], frontier);
  }
  active_ = n;
}

std::vector<std::byte> Runtime::pool_acquire(int rank, std::size_t nbytes) {
  PayloadPool& p = pools_[rank];
  ++p.acquires;
  // Best fit: smallest free buffer whose capacity covers the request. The
  // free list is sorted ascending by capacity, so this is a lower_bound and
  // the reuse order is deterministic.
  auto it = std::lower_bound(p.free.begin(), p.free.end(), nbytes,
                             [](const std::vector<std::byte>& b,
                                std::size_t n) { return b.capacity() < n; });
  if (it == p.free.end()) {
    ++p.misses;
    return std::vector<std::byte>(nbytes);  // zero-filled, like the hit path
  }
  std::vector<std::byte> buf = std::move(*it);
  p.free.erase(it);
  buf.clear();
  buf.resize(nbytes);  // value-initializes (zeros) without reallocating
  return buf;
}

void Runtime::pool_recycle(int rank, std::vector<std::byte>&& buf) {
  if (buf.capacity() == 0) return;  // nothing worth keeping
  PayloadPool& p = pools_[rank];
  ++p.recycles;
  buf.clear();
  const std::size_t cap = buf.capacity();
  auto it = std::lower_bound(p.free.begin(), p.free.end(), cap,
                             [](const std::vector<std::byte>& b,
                                std::size_t n) { return b.capacity() < n; });
  p.free.insert(it, std::move(buf));
}

PoolStats Runtime::pool_stats() const {
  PoolStats s;
  for (const PayloadPool& p : pools_) {
    s.acquires += p.acquires;
    s.misses += p.misses;
    s.recycles += p.recycles;
  }
  return s;
}

void Runtime::superstep(const std::string& phase,
                        const std::function<void(Comm&)>& fn) {
  // The phase id is registered here, on the driver thread, before any body
  // runs: Comm::charge on worker threads only ever *reads* the id, so the
  // phase registry map is never mutated concurrently.
  const int pid = phase_id(phase);
  // Deliver messages produced in the previous superstep. swap (not move +
  // clear) so pending_ keeps its vector capacity — steady-state supersteps
  // reuse the same Message arrays without reallocating. Only the active
  // prefix can hold messages (send_owned rejects parked destinations).
  for (int r = 0; r < active_; ++r) std::swap(inbox_[r], pending_[r]);

  if (tracer_) {
    trace_seq_ = tracer_->next_seq();
    trace_pre_ = clocks_;
    for (auto& w : trace_work_) w.fill(0.0);
  }

  in_superstep_ = true;
  current_phase_for_comm_ = pid;
  for (int r = 0; r < active_; ++r) staged_[r].clear();
  if (pool_) {
    // Each rank writes only its own slots (clock, busy row entry, staging
    // buffer, its caller-side state), so the dynamic schedule cannot change
    // any result. parallel_for's join orders all writes before the merge.
    // Parked ranks are not dispatched at all: O(active) per superstep.
    pool_->parallel_for(active_, [&](int r) {
      Comm c(this, r);
      fn(c);
    });
  } else {
    for (int r = 0; r < active_; ++r) {
      Comm c(this, r);
      fn(c);
    }
  }
  in_superstep_ = false;
  if (tracer_) {
    trace_spans_since(trace_pre_, pid, trace::SpanKind::kCompute, trace_seq_,
                      /*with_work=*/true);
    trace_mid_ = clocks_;
  }
  route_messages(pid);
  if (tracer_)
    trace_spans_since(trace_mid_, pid, trace::SpanKind::kComm, trace_seq_,
                      /*with_work=*/false);
  // Consumed inboxes: recycle each payload back to its SENDER's pool (the
  // rank that will size a like payload next step), in deterministic
  // dst-major, src-major order, on the driver thread.
  for (int r = 0; r < active_; ++r) {
    for (Message& m : inbox_[r]) pool_recycle(m.src, std::move(m.payload));
    inbox_[r].clear();
  }
  ++supersteps_;
}

std::size_t Runtime::staged_count() const {
  std::size_t n = 0;
  // Parked ranks never run a body, so only the active prefix can stage.
  for (int r = 0; r < active_; ++r) n += staged_[r].size();
  return n;
}

std::size_t Runtime::undelivered_messages() const {
  std::size_t n = staged_count();
  for (const auto& p : pending_) n += p.size();
  return n;
}

void Runtime::route_messages(int phase) {
  const std::uint64_t hint = congestion_hint_;
  congestion_hint_ = 0;  // one-shot
  apply_nic_serialization(phase, hint);
  const std::size_t staged = staged_count();
  if (staged == 0) return;
  const MachineProfile& prof = topo_.profile();
  // Congestion: extra latency when a routing round carries many concurrent
  // transactions per node (switch/NIC pressure); this is what separates the
  // distributed N(N-1)-transaction strategy from the centralized 2N one at
  // scale (paper Sec. IV-B3, Fig. 11).
  const double round_transactions =
      hint ? static_cast<double>(hint) : static_cast<double>(staged);
  const double per_node = round_transactions / std::max(1, active_nodes());
  const double congestion_mult = 1.0 + prof.congestion * per_node;

  // Merge the per-sender buffers in (src rank, send order): each inbox
  // receives its messages sorted by source rank, ties broken by the order
  // the source sent them. This is a documented guarantee (par_test
  // InboxOrderingIsSrcMajorSendOrder) and matches what the sequential
  // 0..N-1 execution produced before per-rank staging existed. Only the
  // active prefix can have staged sends.
  for (int src = 0; src < active_; ++src) {
    auto& buf = staged_[src];
    for (Message& m : buf) {
      const double bytes = static_cast<double>(m.payload.size()) * m.byte_scale;
      const double cost =
          topo_.alpha(m.src, m.dst) * congestion_mult + bytes * prof.beta;
      const double send_begin = clocks_[m.src];
      const double recv_begin = clocks_[m.dst];
      // Rendezvous: both endpoints are busy for the transfer.
      clocks_[m.src] += cost;
      charge_busy(m.src, phase, cost);
      clocks_[m.dst] += cost;
      charge_busy(m.dst, phase, cost);
      phase_transactions_[phase] += 1;
      phase_bytes_[phase] += bytes;
      if (tracer_) {
        trace::MessageRec rec;
        rec.src = m.src;
        rec.dst = m.dst;
        rec.tag = m.tag;
        rec.bytes = m.payload.size();
        rec.scaled_bytes = bytes;
        rec.send_begin = send_begin;
        rec.send_end = clocks_[m.src];
        rec.recv_begin = recv_begin;
        rec.recv_end = clocks_[m.dst];
        rec.phase = trace_phase(phase);
        rec.seq = trace_seq_;
        tracer_->add_message(std::move(rec));
      }
      pending_[m.dst].push_back(std::move(m));
    }
    buf.clear();
  }
}

void Runtime::apply_nic_serialization(int phase, std::uint64_t hint) {
  const MachineProfile& prof = topo_.profile();
  if (prof.nic_overhead <= 0.0) return;
  const int ppn = prof.cores_per_node;
  const int nodes = active_nodes();
  if (nodes <= 1 && hint == 0) return;  // single node: no inter-node traffic

  // Per-node inter-node message load. Ranks on one physical node share a
  // NIC, which processes messages serially (and slower under incast).
  // Member scratch: sized once, zeroed per round, no steady-state allocation.
  nic_load_.assign(static_cast<std::size_t>(nodes), 0.0);
  if (hint) {
    // Logical all-pairs round (distributed exchange): assume the hinted
    // transactions are spread uniformly over ordered rank pairs; only the
    // inter-node share hits the NICs. Parked ranks send nothing, so the
    // pair population is the active prefix.
    const double inter_share =
        active_ > 1
            ? std::max(0.0, 1.0 - static_cast<double>(ppn - 1) / (active_ - 1))
            : 0.0;
    const double per_node = static_cast<double>(hint) * inter_share / nodes;
    std::fill(nic_load_.begin(), nic_load_.end(), per_node);
  } else {
    for (int src = 0; src < active_; ++src) {
      for (const Message& m : staged_[src]) {
        const int ns = m.src / ppn;
        const int nd = m.dst / ppn;
        if (ns == nd) continue;
        nic_load_[ns] += 1.0;
        nic_load_[nd] += 1.0;
      }
    }
  }

  for (int node = 0; node < nodes; ++node) {
    if (nic_load_[node] <= 0.0) continue;
    const double t = nic_load_[node] * prof.nic_overhead *
                     (1.0 + nic_load_[node] * prof.nic_contention);
    const int lo = node * ppn;
    const int hi = std::min(active_, lo + ppn);
    for (int r = lo; r < hi; ++r) {
      clocks_[r] += t;
      charge_busy(r, phase, t);
    }
  }
}

void Runtime::sync_clocks(double extra_cost_per_rank, int phase) {
  // Parked ranks neither arrive at nor leave the barrier: their clocks stay
  // frozen and contribute nothing to the maximum.
  double mx = 0.0;
  int argmax = 0;
  for (int r = 0; r < active_; ++r) {
    if (clocks_[r] > mx) {
      mx = clocks_[r];
      argmax = r;
    }
  }
  if (tracer_) {
    trace::SyncRec s;
    s.phase = trace_phase(phase);
    s.seq = tracer_->next_seq();
    s.t_max = mx;
    s.t_end = mx + extra_cost_per_rank;
    s.argmax_rank = argmax;
    s.arrive = clocks_;
    tracer_->add_sync(std::move(s));
  }
  for (int r = 0; r < active_; ++r) {
    clocks_[r] = mx + extra_cost_per_rank;
    charge_busy(r, phase, extra_cost_per_rank);
  }
}

void Runtime::barrier(const std::string& phase) {
  const int pid = phase_id(phase);
  sync_clocks(tree_stages() * topo_.profile().alpha_tree, pid);
}

double Runtime::allreduce_sum(const std::string& phase,
                              std::span<const double> vals) {
  DSMCPIC_CHECK(static_cast<int>(vals.size()) == active_);
  const int pid = phase_id(phase);
  const double cost =
      2.0 * tree_stages() * topo_.profile().alpha_tree +
      8.0 * topo_.profile().beta * tree_stages();
  sync_clocks(cost, pid);
  double s = 0.0;
  for (double v : vals) s += v;
  return s;
}

double Runtime::allreduce_max(const std::string& phase,
                              std::span<const double> vals) {
  DSMCPIC_CHECK(static_cast<int>(vals.size()) == active_);
  const int pid = phase_id(phase);
  sync_clocks(2.0 * tree_stages() * topo_.profile().alpha_tree, pid);
  double m = -std::numeric_limits<double>::infinity();
  for (double v : vals) m = std::max(m, v);
  return m;
}

double Runtime::allreduce_min(const std::string& phase,
                              std::span<const double> vals) {
  DSMCPIC_CHECK(static_cast<int>(vals.size()) == active_);
  const int pid = phase_id(phase);
  sync_clocks(2.0 * tree_stages() * topo_.profile().alpha_tree, pid);
  double m = std::numeric_limits<double>::infinity();
  for (double v : vals) m = std::min(m, v);
  return m;
}

std::vector<double> Runtime::allreduce_sum_vec(
    const std::string& phase, const std::vector<std::vector<double>>& per_rank) {
  DSMCPIC_CHECK(static_cast<int>(per_rank.size()) == active_);
  const std::size_t len = per_rank.empty() ? 0 : per_rank[0].size();
  for (const auto& v : per_rank) DSMCPIC_CHECK(v.size() == len);
  const int pid = phase_id(phase);
  // Ring allreduce: 2(N-1)/N * bytes through each rank + latency terms.
  const double bytes = static_cast<double>(len) * 8.0;
  const double cost = 2.0 * tree_stages() * topo_.profile().alpha_tree +
                      2.0 * bytes * topo_.profile().beta;
  sync_clocks(cost, pid);
  std::vector<double> out(len, 0.0);
  for (const auto& v : per_rank)
    for (std::size_t i = 0; i < len; ++i) out[i] += v[i];
  return out;
}

std::vector<std::int64_t> Runtime::exscan_sum(
    const std::string& phase, std::span<const std::int64_t> vals) {
  DSMCPIC_CHECK(static_cast<int>(vals.size()) == active_);
  const int pid = phase_id(phase);
  sync_clocks(tree_stages() * topo_.profile().alpha_tree, pid);
  std::vector<std::int64_t> out(active_, 0);
  std::int64_t acc = 0;
  for (int r = 0; r < active_; ++r) {
    out[r] = acc;
    acc += vals[r];
  }
  return out;
}

std::vector<double> Runtime::allgather(const std::string& phase,
                                       std::span<const double> vals) {
  DSMCPIC_CHECK(static_cast<int>(vals.size()) == active_);
  const int pid = phase_id(phase);
  const double cost = tree_stages() * topo_.profile().alpha_tree +
                      8.0 * active_ * topo_.profile().beta;
  sync_clocks(cost, pid);
  return std::vector<double>(vals.begin(), vals.end());
}

void Runtime::charge_bcast(const std::string& phase, int root, double bytes) {
  DSMCPIC_CHECK(root >= 0 && root < active_);
  const int pid = phase_id(phase);
  const double cost = tree_stages() * (topo_.profile().alpha_tree +
                                       bytes * topo_.profile().beta);
  sync_clocks(cost, pid);
}

void Runtime::charge_gather(const std::string& phase, int root,
                            double bytes_per_rank) {
  DSMCPIC_CHECK(root >= 0 && root < active_);
  const int pid = phase_id(phase);
  const MachineProfile& prof = topo_.profile();
  std::uint32_t seq = 0;
  if (tracer_) {
    seq = tracer_->next_seq();
    trace_pre_ = clocks_;
  }
  // Root receives N-1 serialized messages; every other active rank pays one
  // send (parked ranks have nothing to contribute).
  double root_cost = 0.0;
  for (int r = 0; r < active_; ++r) {
    if (r == root) continue;
    const double c = topo_.alpha(r, root) + bytes_per_rank * prof.beta;
    clocks_[r] += c;
    charge_busy(r, pid, c);
    root_cost += c;
  }
  clocks_[root] += root_cost;
  charge_busy(root, pid, root_cost);
  if (tracer_)
    trace_spans_since(trace_pre_, pid, trace::SpanKind::kComm, seq,
                      /*with_work=*/false);
}

void Runtime::charge_rank(const std::string& phase, int rank, WorkKind kind,
                          double units) {
  DSMCPIC_CHECK(rank >= 0 && rank < active_);
  const int pid = phase_id(phase);
  const double cost = units * topo_.profile().costs[static_cast<int>(kind)] *
                      scale_of(cost_class(kind));
  const double pre = clocks_[rank];
  clocks_[rank] += cost;
  charge_busy(rank, pid, cost);
  if (tracer_ && clocks_[rank] > pre) {
    trace::Span s;
    s.rank = rank;
    s.phase = trace_phase(pid);
    s.kind = trace::SpanKind::kCompute;
    s.t0 = pre;
    s.t1 = clocks_[rank];
    s.seq = tracer_->next_seq();
    s.work.push_back(trace::WorkItem{
        tracer_->intern_key(work_kind_name(kind)), units});
    tracer_->add_span(std::move(s));
  }
}

double Runtime::total_time() const {
  double mx = 0.0;
  for (double c : clocks_) mx = std::max(mx, c);
  return mx;
}

PhaseStats Runtime::phase_stats(const std::string& phase) const {
  PhaseStats s;
  auto it = phase_ids_.find(phase);
  if (it == phase_ids_.end()) return s;
  const auto& row = busy_[it->second];
  s.busy_max = *std::max_element(row.begin(), row.end());
  s.busy_min = *std::min_element(row.begin(), row.end());
  for (double v : row) s.busy_sum += v;
  s.transactions = phase_transactions_[it->second];
  s.bytes = phase_bytes_[it->second];
  return s;
}

std::vector<double> Runtime::phase_busy(const std::string& phase) const {
  auto it = phase_ids_.find(phase);
  if (it == phase_ids_.end()) return std::vector<double>(nranks_, 0.0);
  return busy_[it->second];
}

std::vector<double> Runtime::busy_totals(
    std::span<const std::string> phases) const {
  std::vector<double> out(nranks_, 0.0);
  for (const auto& p : phases) {
    auto it = phase_ids_.find(p);
    if (it == phase_ids_.end()) continue;
    const auto& row = busy_[it->second];
    for (int r = 0; r < nranks_; ++r) out[r] += row[r];
  }
  return out;
}

std::vector<double> Runtime::busy_all() const {
  std::vector<double> out(nranks_, 0.0);
  for (const auto& row : busy_)
    for (int r = 0; r < nranks_; ++r) out[r] += row[r];
  return out;
}

std::vector<std::string> Runtime::phases() const { return phase_names_; }

void Runtime::save(std::ostream& os) const {
  DSMCPIC_CHECK_MSG(staged_count() == 0, "cannot checkpoint mid-superstep");
  for (const auto& p : pending_)
    DSMCPIC_CHECK_MSG(p.empty(), "cannot checkpoint with undelivered messages");
  io::write_pod<std::int32_t>(os, active_);
  io::write_pod<std::uint64_t>(os, supersteps_);
  io::write_vec(os, clocks_);
  io::write_pod<std::uint64_t>(os, phase_names_.size());
  for (std::size_t i = 0; i < phase_names_.size(); ++i) {
    io::write_string(os, phase_names_[i]);
    io::write_vec(os, busy_[i]);
    io::write_pod(os, phase_transactions_[i]);
    io::write_pod(os, phase_bytes_[i]);
  }
}

void Runtime::load(std::istream& is) {
  const auto active = io::read_pod<std::int32_t>(is);
  DSMCPIC_CHECK_MSG(active >= 1 && active <= nranks_,
                    "checkpoint active-rank count " << active
                                                    << " out of range");
  active_ = active;  // restored verbatim; clocks below carry the frontier
  supersteps_ = io::read_pod<std::uint64_t>(is);
  clocks_ = io::read_vec<double>(is);
  DSMCPIC_CHECK_MSG(static_cast<int>(clocks_.size()) == nranks_,
                    "checkpoint rank count mismatch");
  const auto np = io::read_pod<std::uint64_t>(is);
  phase_ids_.clear();
  phase_names_.clear();
  busy_.clear();
  phase_transactions_.clear();
  phase_bytes_.clear();
  for (std::uint64_t i = 0; i < np; ++i) {
    const std::string name = io::read_string(is);
    phase_ids_.emplace(name, static_cast<int>(i));
    phase_names_.push_back(name);
    busy_.push_back(io::read_vec<double>(is));
    phase_transactions_.push_back(io::read_pod<std::uint64_t>(is));
    phase_bytes_.push_back(io::read_pod<double>(is));
  }
  // Phase ids were renumbered; drop any cached recorder mapping.
  trace_phase_ids_.assign(phase_names_.size(), -1);
}

}  // namespace dsmcpic::par
