#pragma once
// Work-kind taxonomy for deterministic compute-cost accounting.
//
// The virtual runtime does not measure wall-clock time (which would be
// non-deterministic and meaningless on a single-core container); instead
// every solver phase *charges* work units of a given kind, and the machine
// profile converts units to virtual seconds. The kinds below correspond to
// the inner loops of the coupled DSMC/PIC solver.

#include <array>
#include <cstddef>

namespace dsmcpic::par {

enum class WorkKind : int {
  kInject = 0,     // per injected particle (sampling + insertion)
  kMove,           // per particle free-flight step incl. tet-walk face test
  kWalkStep,       // per tetrahedron crossed during the walk
  kCollide,        // per NTC candidate pair examined
  kReact,          // per chemical reaction performed
  kReindex,        // per particle compacted / renumbered
  kDeposit,        // per particle charge scatter (4 nodes)
  kFieldGather,    // per particle E-field gather
  kBorisPush,      // per particle velocity/position update
  kSpmvFlop,       // per floating-point op in sparse matvec
  kVecFlop,        // per flop in dense vector ops (dot/axpy)
  kAssemble,       // per finite element assembled into the stiffness matrix
  kScan,           // per particle scanned when extracting migrants
  kClassify,       // per particle classified/packed for migration (root)
  kPackByte,       // per byte serialized into a message payload
  kPartitionEdge,  // per graph edge visited during (re)partitioning
  kMatchingOp,     // per inner operation of the Kuhn–Munkres matching
  kGeneric,        // anything else (bookkeeping)
  kNumWorkKinds,
};

inline constexpr std::size_t kNumWorkKinds =
    static_cast<std::size_t>(WorkKind::kNumWorkKinds);

/// Per-unit costs in virtual seconds, indexed by WorkKind.
using WorkCosts = std::array<double, kNumWorkKinds>;

/// What a unit of work (or a payload byte) is proportional to. The bench
/// harness runs scaled-down problems; to report paper-magnitude virtual
/// times, particle-proportional work is multiplied by the particle scale
/// (paper particles / our particles) and grid-proportional work by the grid
/// scale (paper cells / our cells). The two differ by orders of magnitude.
enum class CostClass { kParticle, kGrid, kNone };

constexpr CostClass cost_class(WorkKind k) {
  switch (k) {
    case WorkKind::kInject:
    case WorkKind::kMove:
    case WorkKind::kWalkStep:
    case WorkKind::kCollide:
    case WorkKind::kReact:
    case WorkKind::kReindex:
    case WorkKind::kDeposit:
    case WorkKind::kFieldGather:
    case WorkKind::kBorisPush:
    case WorkKind::kScan:
    case WorkKind::kClassify:
    case WorkKind::kPackByte:
      return CostClass::kParticle;
    case WorkKind::kSpmvFlop:
    case WorkKind::kVecFlop:
    case WorkKind::kAssemble:
    case WorkKind::kPartitionEdge:
    case WorkKind::kGeneric:
      return CostClass::kGrid;
    case WorkKind::kMatchingOp:
    case WorkKind::kNumWorkKinds:
      return CostClass::kNone;
  }
  return CostClass::kNone;
}

constexpr const char* work_kind_name(WorkKind k) {
  switch (k) {
    case WorkKind::kInject: return "inject";
    case WorkKind::kMove: return "move";
    case WorkKind::kWalkStep: return "walk_step";
    case WorkKind::kCollide: return "collide";
    case WorkKind::kReact: return "react";
    case WorkKind::kReindex: return "reindex";
    case WorkKind::kDeposit: return "deposit";
    case WorkKind::kFieldGather: return "field_gather";
    case WorkKind::kBorisPush: return "boris_push";
    case WorkKind::kSpmvFlop: return "spmv_flop";
    case WorkKind::kVecFlop: return "vec_flop";
    case WorkKind::kAssemble: return "assemble";
    case WorkKind::kScan: return "scan";
    case WorkKind::kClassify: return "classify";
    case WorkKind::kPackByte: return "pack_byte";
    case WorkKind::kPartitionEdge: return "partition_edge";
    case WorkKind::kMatchingOp: return "matching_op";
    case WorkKind::kGeneric: return "generic";
    case WorkKind::kNumWorkKinds: break;
  }
  return "?";
}

}  // namespace dsmcpic::par
