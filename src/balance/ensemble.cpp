#include "balance/ensemble.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/serialize.hpp"

namespace dsmcpic::balance {

const char* ensemble_name(EnsembleKind k) {
  switch (k) {
    case EnsembleKind::kFixed: return "fixed";
    case EnsembleKind::kElastic: return "elastic";
  }
  return "?";
}

EnsembleKind parse_ensemble(const std::string& name) {
  if (name == "fixed") return EnsembleKind::kFixed;
  if (name == "elastic") return EnsembleKind::kElastic;
  throw Error("unknown ensemble kind '" + name + "' (expected fixed|elastic)");
}

EnsemblePolicy::EnsemblePolicy(EnsembleConfig cfg, int nominal_ranks)
    : cfg_(cfg), nominal_(nominal_ranks) {
  DSMCPIC_CHECK_MSG(nominal_ >= 1, "ensemble needs at least one nominal rank");
  DSMCPIC_CHECK_MSG(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0,
                    "ensemble ewma_alpha must be in (0, 1]");
  DSMCPIC_CHECK_MSG(cfg_.hysteresis >= 0.0, "hysteresis must be >= 0");
  cfg_.ranks_min = std::max(1, cfg_.ranks_min);
  cfg_.ranks_max = cfg_.ranks_max <= 0 ? nominal_
                                       : std::min(cfg_.ranks_max, nominal_);
  DSMCPIC_CHECK_MSG(cfg_.ranks_min <= cfg_.ranks_max,
                    "ranks_min " << cfg_.ranks_min << " > ranks_max "
                                 << cfg_.ranks_max);
  if (cfg_.initial > 0)
    DSMCPIC_CHECK_MSG(
        cfg_.initial >= cfg_.ranks_min && cfg_.initial <= cfg_.ranks_max,
        "initial active count " << cfg_.initial << " outside ["
                                << cfg_.ranks_min << ", " << cfg_.ranks_max
                                << "]");
}

int EnsemblePolicy::initial_active() const {
  if (cfg_.initial > 0) return cfg_.initial;
  return std::clamp(nominal_, cfg_.ranks_min, cfg_.ranks_max);
}

void EnsemblePolicy::observe_step(std::span<const double> rank_compute,
                                  double step_total) {
  double comp = 0.0;
  for (const double c : rank_compute) comp += c;
  const double ovh = std::max(0.0, step_total - comp);
  if (!has_observation_) {
    compute_ewma_ = comp;
    overhead_ewma_ = ovh;
    has_observation_ = true;
  } else {
    compute_ewma_ =
        (1.0 - cfg_.ewma_alpha) * compute_ewma_ + cfg_.ewma_alpha * comp;
    overhead_ewma_ =
        (1.0 - cfg_.ewma_alpha) * overhead_ewma_ + cfg_.ewma_alpha * ovh;
  }
}

int EnsemblePolicy::decide(int step, int current_active) {
  EnsembleDecision d;
  d.step = step;
  d.compute_ewma = compute_ewma_;
  d.overhead_ewma = overhead_ewma_;
  d.target = current_active;

  if (cfg_.kind == EnsembleKind::kElastic && has_observation_ &&
      compute_ewma_ > 0.0 && overhead_ewma_ > 0.0) {
    // T(n) = C/n + (ovh/n_cur) * n is minimized at sqrt(C * n_cur / ovh).
    const double n_star =
        std::sqrt(compute_ewma_ * static_cast<double>(current_active) /
                  overhead_ewma_);
    // At most double or halve per decision: redecompose quality degrades
    // when ownership churns wholesale, and the EWMA re-learns the new
    // operating point before the next boundary anyway.
    int target = static_cast<int>(std::llround(n_star));
    target = std::clamp(target, current_active / 2, current_active * 2);
    target = std::clamp(target, cfg_.ranks_min, cfg_.ranks_max);
    // Deadband: ignore moves the noise floor can explain.
    if (std::abs(target - current_active) >
        cfg_.hysteresis * static_cast<double>(current_active))
      d.target = target;
  }

  d.resized = d.target != current_active;
  if (d.resized) ++resizes_;
  decisions_.push_back(d);
  return d.target;
}

void EnsemblePolicy::save(std::ostream& os) const {
  io::write_pod(os, compute_ewma_);
  io::write_pod(os, overhead_ewma_);
  io::write_pod(os, has_observation_);
  io::write_pod(os, resizes_);
  io::write_vec(os, decisions_);
}

void EnsemblePolicy::load(std::istream& is) {
  compute_ewma_ = io::read_pod<double>(is);
  overhead_ewma_ = io::read_pod<double>(is);
  has_observation_ = io::read_pod<bool>(is);
  resizes_ = io::read_pod<int>(is);
  decisions_ = io::read_vec<EnsembleDecision>(is);
}

}  // namespace dsmcpic::balance
