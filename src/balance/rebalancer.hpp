#pragma once
// The dynamic load balancer (paper Sec. V, Algorithm 1).
//
//  * Load imbalance indicator lii (Eq. 6): the ratio of the busiest rank's
//    pure compute time to the idlest rank's, with particle-migration and
//    Poisson-solve times subtracted (those are the synchronization-dominated
//    phases and are largely constant).
//  * Weighted load model (Eq. 7): wlm_i = N_i + R*C_i + W_cell per coarse
//    cell — N_i neutrals, C_i charged, R the PIC:DSMC timestep ratio,
//    W_cell the per-cell (grid computation) weight.
//  * Re-decomposition via the multilevel partitioner, then Kuhn–Munkres
//    remapping of new parts onto old owners, maximizing kept particles and
//    thus minimizing migration (Sec. V-C).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "balance/cost_model.hpp"
#include "balance/ensemble.hpp"
#include "balance/hungarian.hpp"
#include "balance/policy.hpp"
#include "partition/geometric.hpp"
#include "par/runtime.hpp"
#include "partition/graph.hpp"
#include "partition/partitioner.hpp"

namespace dsmcpic::balance {

/// Which decomposition algorithm the rebalancer uses. kGraph is the
/// paper's approach (weighted METIS-style dual-graph partitioning);
/// kOctree and kMorton are the geometric baselines from the related work
/// (CHAOS-style particle-count balancing), for comparison benches.
enum class Repartitioner { kGraph, kOctree, kMorton };

const char* repartitioner_name(Repartitioner r);

struct RebalanceConfig {
  bool enabled = true;
  Repartitioner repartitioner = Repartitioner::kGraph;
  int period = 20;          // T: steps between lii checks (paper: T = 20)
  double threshold = 2.0;   // lii trigger (paper: 2.0)
  double weight_ratio = 2.0;  // R: PIC timesteps per DSMC timestep
  double cell_weight = 1.0;   // W_cell (paper Table VI sweeps 1..10000)
  bool use_km = true;         // KM remap ablation (paper Table V)
  partition::PartitionOptions partition_options;
  /// Timer-augmented weight model (DESIGN.md §2h). kStatic reproduces the
  /// pure Eq.-7 path bit-for-bit.
  CostModelConfig cost_model;
  /// When-to-rebalance policy. `policy.threshold` is kept in sync with
  /// `threshold` above by the solver, so the paper's knob stays the single
  /// source of truth for the baseline trigger.
  PolicyConfig policy;
  /// Elastic rank ensemble (DESIGN.md §2i): how many of the nominal ranks
  /// are active. kFixed with initial == 0 reproduces the dense runtime
  /// bit-for-bit.
  EnsembleConfig ensemble;
};

struct RebalanceStats {
  int checks = 0;
  int rebalances = 0;
  double last_lii = 0.0;
  std::int64_t cells_reassigned = 0;       // cells whose owner changed
  std::int64_t matching_operations = 0;    // KM inner ops (work accounting)
};

/// Computes lii from per-rank accumulated times over the evaluation window
/// (Eq. 6). `total`, `migration`, `poisson` are per-rank seconds; the
/// migration and Poisson components of the extreme ranks are subtracted.
double load_imbalance_indicator(std::span<const double> total,
                                std::span<const double> migration,
                                std::span<const double> poisson);

/// Remaps a fresh partition onto the previous owners: builds the
/// (rank x part) shared-weight matrix from `keep_weight` per cell (e.g.
/// particle counts) and solves maximum-weight matching; returns the
/// relabeled owner array. `ops_out` reports KM work for cost accounting.
std::vector<std::int32_t> km_remap(std::span<const std::int32_t> old_owner,
                                   std::span<const std::int32_t> new_part,
                                   std::span<const double> keep_weight,
                                   int nranks, std::int64_t* ops_out = nullptr);

/// Runs the re-decomposition half of Algorithm 1 (lines 6-12): computes the
/// weighted load model, partitions the dual graph on the root, optionally
/// KM-remaps, and charges/broadcasts everything on `rt` under `phase`.
/// Returns the new owner array. When `cell_weights` is non-empty it
/// replaces the internally computed Eq.-7 weights (the timer/hybrid cost
/// model's output, see CostModel::cell_weights); empty keeps the static
/// path bit-identical to the pre-cost-model rebalancer.
///
/// `nparts` is the part count of the NEW decomposition: 0 (the default)
/// partitions for the runtime's current active rank set; the elastic
/// ensemble passes its target count when resizing. A resize that shrinks
/// the part count below an existing owner label skips the KM remap (the
/// matching is non-square — old owners cannot all keep a part).
std::vector<std::int32_t> redecompose(
    par::Runtime& rt, const std::string& phase, const partition::Graph& dual,
    std::span<const Vec3> cell_centroids,
    std::span<const std::int64_t> neutral_counts,
    std::span<const std::int64_t> charged_counts,
    std::span<const std::int32_t> current_owner, const RebalanceConfig& cfg,
    RebalanceStats& stats, std::span<const double> cell_weights = {},
    int nparts = 0);

}  // namespace dsmcpic::balance
