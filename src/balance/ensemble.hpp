#pragma once
// Elastic rank ensembles (DESIGN.md §2i).
//
// Pigeon's dynamic balancer resizes the processor count per ensemble from
// observed load (calc_new_nprocs): when the work per processor is small the
// synchronization overhead dominates and fewer, fuller processors finish a
// step sooner; when work grows the ensemble expands again. Ported to the
// virtual runtime: the solver keeps a NOMINAL rank set (the machine it was
// given) but runs on an ACTIVE prefix the policy resizes between rebalance
// boundaries, with parked ranks skipped by superstep dispatch at zero
// virtual cost (par::Runtime::set_active_ranks).
//
// The model: one step on n active ranks costs roughly
//
//   T(n) = C/n + v * n
//
// where C is the total compute the step must do (perfectly divisible in the
// best case) and v is the per-rank share of synchronization/communication
// overhead (barriers, collectives, handshakes — all grow with the
// participant count). Both are observed, not assumed: C from the sum of
// per-rank compute cost, v from (step total time sum - compute sum) / n.
// T is minimized at n* = sqrt(C * n_cur / overhead_cur) — the policy moves
// toward n*, clamped to [ranks_min, ranks_max], at most doubling or halving
// per decision, with a hysteresis deadband so noise never thrashes the
// decomposition. All inputs are virtual time: decision sequences are
// deterministic and reproducible across exec modes.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace dsmcpic::balance {

enum class EnsembleKind { kFixed, kElastic };

const char* ensemble_name(EnsembleKind k);
/// Parses "fixed" / "elastic" (throws on anything else).
EnsembleKind parse_ensemble(const std::string& name);

struct EnsembleConfig {
  EnsembleKind kind = EnsembleKind::kFixed;
  /// Smallest active count the policy may choose (clamped to >= 1).
  int ranks_min = 1;
  /// Largest active count; 0 means the nominal rank count.
  int ranks_max = 0;
  /// Active count at init; 0 means start with every rank active. Honored
  /// for kFixed too (a fixed reduced ensemble on a larger nominal machine —
  /// how the bench measures O(active) dispatch).
  int initial = 0;
  /// EWMA weight of the newest compute/overhead sample.
  double ewma_alpha = 0.3;
  /// Resize deadband: move only when |n* - n| > hysteresis * n.
  double hysteresis = 0.25;
};

/// One resize decision, recorded for run_report.json and the tests.
struct EnsembleDecision {
  int step = 0;
  double compute_ewma = 0.0;   // C: summed per-step compute (EWMA)
  double overhead_ewma = 0.0;  // step time sum - compute sum (EWMA)
  int target = 0;              // chosen active count (== current if no move)
  bool resized = false;
};

class EnsemblePolicy {
 public:
  EnsemblePolicy() : EnsemblePolicy(EnsembleConfig{}, 1) {}
  EnsemblePolicy(EnsembleConfig cfg, int nominal_ranks);

  const EnsembleConfig& config() const { return cfg_; }
  /// Active count to start the run with (cfg.initial resolved & clamped).
  int initial_active() const;

  /// Per-step observation: each ACTIVE rank's compute cost this step plus
  /// the summed total step time over active ranks (compute + comm + wait).
  void observe_step(std::span<const double> rank_compute, double step_total);

  /// The periodic resize decision (call at rebalance-period boundaries
  /// only, between supersteps). Returns the target active count — equal to
  /// `current_active` when the policy stays put. Appends to decisions().
  int decide(int step, int current_active);

  const std::vector<EnsembleDecision>& decisions() const { return decisions_; }
  int resizes() const { return resizes_; }

  // Checkpoint support (state must survive restart bit-for-bit).
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  EnsembleConfig cfg_;
  int nominal_ = 1;
  double compute_ewma_ = 0.0;
  double overhead_ewma_ = 0.0;
  bool has_observation_ = false;
  int resizes_ = 0;
  std::vector<EnsembleDecision> decisions_;
};

}  // namespace dsmcpic::balance
