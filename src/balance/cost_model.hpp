#pragma once
// Timer-augmented cost model for the rebalancer (DESIGN.md §2h).
//
// The paper's weighted load model (Eq. 7) predicts per-cell cost purely
// from particle counts: wlm_i = N_i + R*C_i + W_cell. That is a *static*
// model — it assumes every particle costs the same everywhere. In reality
// (and in our virtual-time cost model) particles in different regions do
// different amounts of work: inlet-side particles cross more faces per
// move, dense cells run more NTC candidates per particle, and so on.
// Following McDoniel & Bientinesi's timer-augmented cost function, the
// CostModel closes the loop from observability into the balancer: it
// watches the measured per-rank, per-phase *virtual-time* cost of each
// DSMC step, regresses it down to a per-rank correction factor against
// the static model's prediction (EWMA-smoothed over recent supersteps),
// and scales each cell's static weight by its owner's correction when the
// rebalancer asks for fresh partition weights.
//
// Determinism contract: every input is a deterministic function of the
// simulation (virtual-time busy counters and particle counts — never wall
// clock), so the produced weights, and therefore the rebalancer's
// decisions and the golden digests, are bit-identical run-to-run and
// across --exec-mode / --kernel-threads / --sort-every.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace dsmcpic::balance {

/// Which weight model feeds the repartitioner.
///  * kStatic — the paper's Eq. 7, untouched (default-compatible path).
///  * kTimer  — Eq. 7 scaled by the measured per-rank correction.
///  * kHybrid — Eq. 7 scaled by a blend of 1 and the measured correction.
enum class CostModelKind { kStatic, kTimer, kHybrid };

const char* cost_model_name(CostModelKind k);
/// Parses "static" / "timer" / "hybrid" (throws on anything else).
CostModelKind parse_cost_model(const std::string& name);

struct CostModelConfig {
  CostModelKind kind = CostModelKind::kStatic;
  /// EWMA weight of the newest per-rank correction sample. Tuned on the
  /// fig05/fig13 lanes: smaller values lag the (fast-moving) population,
  /// larger ones chase one-window noise.
  double ewma_alpha = 0.4;
  /// Timer share in kHybrid: 0 reproduces kStatic, 1 reproduces kTimer.
  double hybrid_blend = 0.5;
  /// Correction factors are clamped to [min_scale, max_scale] before
  /// smoothing, so one noisy window cannot blow up the partition weights.
  double min_scale = 0.25;
  double max_scale = 4.0;
};

/// Per-rank correction factors learned from measured phase timings.
class CostModel {
 public:
  CostModel() = default;
  CostModel(CostModelConfig cfg, int nranks);

  const CostModelConfig& config() const { return cfg_; }
  int nranks() const { return static_cast<int>(scale_.size()); }
  int observations() const { return observations_; }

  /// One step's signals: `measured[r]` is rank r's virtual-time cost over
  /// the particle phases this step, `predicted[r]` the static model's
  /// per-rank load (the sum of Eq.-7 weights over r's cells). Both are
  /// normalized internally, so units cancel; the correction is
  ///   scale_r <- EWMA( (measured_r / mean measured) / (predicted_r / mean
  ///   predicted) ).
  /// A no-op for kStatic and for degenerate windows (zero totals).
  void observe_step(std::span<const double> measured,
                    std::span<const double> predicted);

  /// Measured/static correction for one rank (1.0 until observed).
  double rank_scale(int r) const { return scale_.at(static_cast<std::size_t>(r)); }

  /// Per-cell partition weights: the static Eq.-7 weight per cell, scaled
  /// per `kind` by the owner rank's correction. The kStatic path returns
  /// exactly the Eq.-7 values (bit-identical to the pre-cost-model
  /// rebalancer).
  std::vector<double> cell_weights(std::span<const std::int32_t> owner,
                                   std::span<const std::int64_t> neutral_counts,
                                   std::span<const std::int64_t> charged_counts,
                                   double weight_ratio,
                                   double cell_weight) const;

  // Checkpoint support (state must survive restart bit-for-bit).
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  CostModelConfig cfg_;
  std::vector<double> scale_;  // per-rank EWMA correction, starts at 1
  int observations_ = 0;
};

}  // namespace dsmcpic::balance
