#include "balance/rebalancer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace dsmcpic::balance {

double load_imbalance_indicator(std::span<const double> total,
                                std::span<const double> migration,
                                std::span<const double> poisson) {
  DSMCPIC_CHECK(!total.empty());
  DSMCPIC_CHECK(total.size() == migration.size());
  DSMCPIC_CHECK(total.size() == poisson.size());
  std::size_t amax = 0, amin = 0;
  for (std::size_t r = 1; r < total.size(); ++r) {
    if (total[r] > total[amax]) amax = r;
    if (total[r] < total[amin]) amin = r;
  }
  const double num = total[amax] - migration[amax] - poisson[amax];
  const double den = total[amin] - migration[amin] - poisson[amin];
  if (den <= 0.0) {
    // The idlest rank did essentially no compute: maximal imbalance.
    return num > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
  }
  return num / den;
}

std::vector<std::int32_t> km_remap(std::span<const std::int32_t> old_owner,
                                   std::span<const std::int32_t> new_part,
                                   std::span<const double> keep_weight,
                                   int nranks, std::int64_t* ops_out) {
  DSMCPIC_CHECK(old_owner.size() == new_part.size());
  DSMCPIC_CHECK(old_owner.size() == keep_weight.size());

  // overlap[r][p]: weight that stays put if new part p keeps rank label r.
  std::vector<double> overlap(static_cast<std::size_t>(nranks) * nranks, 0.0);
  for (std::size_t c = 0; c < old_owner.size(); ++c) {
    DSMCPIC_CHECK(old_owner[c] >= 0 && old_owner[c] < nranks);
    DSMCPIC_CHECK(new_part[c] >= 0 && new_part[c] < nranks);
    overlap[static_cast<std::size_t>(old_owner[c]) * nranks + new_part[c]] +=
        keep_weight[c] + 1e-9;  // epsilon keeps empty cells slightly sticky
  }

  const AssignmentResult match = hungarian_max(overlap, nranks);
  if (ops_out) *ops_out = match.operations;

  // match.row_to_col[r] = part assigned to rank r; invert to part -> rank.
  std::vector<int> part_to_rank(nranks, -1);
  for (int r = 0; r < nranks; ++r) part_to_rank[match.row_to_col[r]] = r;

  std::vector<std::int32_t> owner(old_owner.size());
  for (std::size_t c = 0; c < owner.size(); ++c)
    owner[c] = part_to_rank[new_part[c]];
  return owner;
}

const char* repartitioner_name(Repartitioner r) {
  switch (r) {
    case Repartitioner::kGraph: return "graph";
    case Repartitioner::kOctree: return "octree";
    case Repartitioner::kMorton: return "morton";
  }
  return "?";
}

std::vector<std::int32_t> redecompose(
    par::Runtime& rt, const std::string& phase, const partition::Graph& dual,
    std::span<const Vec3> cell_centroids,
    std::span<const std::int64_t> neutral_counts,
    std::span<const std::int64_t> charged_counts,
    std::span<const std::int32_t> current_owner, const RebalanceConfig& cfg,
    RebalanceStats& stats, std::span<const double> cell_weights, int nparts) {
  const auto ncells = static_cast<std::int32_t>(current_owner.size());
  DSMCPIC_CHECK(dual.num_vertices() == ncells);
  DSMCPIC_CHECK(static_cast<std::int32_t>(neutral_counts.size()) == ncells);
  DSMCPIC_CHECK(static_cast<std::int32_t>(charged_counts.size()) == ncells);
  DSMCPIC_CHECK_MSG(cell_weights.empty() ||
                        static_cast<std::int32_t>(cell_weights.size()) == ncells,
                    "cell_weights must cover every coarse cell");
  const int nranks = nparts > 0 ? nparts : rt.active_ranks();
  const int root = 0;

  // Gather per-cell counts to the root (each rank contributes its cells).
  rt.charge_gather(phase, root,
                   16.0 * static_cast<double>(ncells) / std::max(1, nranks));

  // Weighted load model, Eq. (7): wlm_i = N_i + R*C_i + W_cell — or the
  // timer-augmented weights when the caller supplies them. The partitioner
  // takes integer weights; scale to preserve fractional R.
  partition::Graph weighted = dual;
  weighted.vwgt.resize(static_cast<std::size_t>(ncells));
  for (std::int32_t c = 0; c < ncells; ++c) {
    const double w =
        cell_weights.empty()
            ? static_cast<double>(neutral_counts[c]) +
                  cfg.weight_ratio * static_cast<double>(charged_counts[c]) +
                  cfg.cell_weight
            : cell_weights[c];
    weighted.vwgt[c] = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(w * 16.0)));
  }
  rt.charge_rank(phase, root, par::WorkKind::kGeneric,
                 static_cast<double>(ncells));

  // Re-decomposition on the root: the paper's weighted graph partitioner,
  // or one of the geometric baselines (octree/Morton) for ablations.
  std::vector<std::int32_t> new_part;
  switch (cfg.repartitioner) {
    case Repartitioner::kGraph: {
      new_part =
          partition::part_graph_kway(weighted, nranks, cfg.partition_options)
              .part;
      rt.charge_rank(
          phase, root, par::WorkKind::kPartitionEdge,
          static_cast<double>(dual.num_edges()) *
              std::ceil(std::log2(std::max(2, nranks))));
      break;
    }
    case Repartitioner::kOctree:
    case Repartitioner::kMorton: {
      DSMCPIC_CHECK_MSG(static_cast<std::int32_t>(cell_centroids.size()) ==
                            ncells,
                        "geometric repartitioner needs cell centroids");
      std::vector<double> w(static_cast<std::size_t>(ncells));
      for (std::int32_t c = 0; c < ncells; ++c)
        w[c] = static_cast<double>(weighted.vwgt[c]);
      const partition::GeometricResult gr =
          cfg.repartitioner == Repartitioner::kOctree
              ? partition::octree_partition(cell_centroids, w, nranks)
              : partition::morton_partition(cell_centroids, w, nranks);
      new_part = gr.part;
      // Sort-dominated cost: ~n log n.
      rt.charge_rank(phase, root, par::WorkKind::kPartitionEdge,
                     static_cast<double>(ncells) *
                         std::ceil(std::log2(std::max(2, ncells))) / 4.0);
      break;
    }
  }

  // Remap new parts onto old owners. Skipped when the target part count
  // dropped below an existing owner label (elastic shrink): the matching
  // would be non-square, and a shrink moves cells wholesale anyway.
  std::int32_t max_owner = -1;
  for (const std::int32_t o : current_owner)
    max_owner = std::max(max_owner, o);
  std::vector<std::int32_t> new_owner;
  if (cfg.use_km && max_owner < nranks) {
    std::vector<double> keep(static_cast<std::size_t>(ncells));
    for (std::int32_t c = 0; c < ncells; ++c)
      keep[c] = static_cast<double>(weighted.vwgt[c]);
    std::int64_t ops = 0;
    new_owner = km_remap(current_owner, new_part, keep, nranks, &ops);
    stats.matching_operations += ops;
    rt.charge_rank(phase, root, par::WorkKind::kMatchingOp,
                   static_cast<double>(ops));
  } else {
    // Ablation: identity labeling (the "random remapping" of Fig. 6b —
    // parts keep the partitioner's arbitrary numbering).
    new_owner = std::move(new_part);
  }

  // Broadcast the new mapping to every rank.
  rt.charge_bcast(phase, root, 4.0 * static_cast<double>(ncells));

  for (std::int32_t c = 0; c < ncells; ++c)
    if (new_owner[c] != current_owner[c]) ++stats.cells_reassigned;
  ++stats.rebalances;
  return new_owner;
}

}  // namespace dsmcpic::balance
