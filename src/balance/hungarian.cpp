#include "balance/hungarian.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace dsmcpic::balance {

AssignmentResult hungarian_min(std::span<const double> cost, int n) {
  DSMCPIC_CHECK(n >= 1);
  DSMCPIC_CHECK(static_cast<std::int64_t>(cost.size()) ==
                static_cast<std::int64_t>(n) * n);
  const double kInf = std::numeric_limits<double>::infinity();

  // Potentials formulation over a (n+1)-sized index space; p[j] is the row
  // matched to column j (0 = dummy). 1-based internally, classic e-maxx form.
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0), way(n + 1, 0);
  std::int64_t ops = 0;

  auto c = [&](int i, int j) {  // 1-based accessor
    return cost[static_cast<std::size_t>(i - 1) * n + (j - 1)];
  };

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        ++ops;
        const double cur = c(i0, j) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path.
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult res;
  res.row_to_col.assign(n, -1);
  for (int j = 1; j <= n; ++j)
    if (p[j] >= 1) res.row_to_col[p[j] - 1] = j - 1;
  for (int i = 0; i < n; ++i) {
    DSMCPIC_CHECK(res.row_to_col[i] >= 0);
    res.total += cost[static_cast<std::size_t>(i) * n + res.row_to_col[i]];
  }
  res.operations = ops;
  return res;
}

AssignmentResult hungarian_max(std::span<const double> weight, int n) {
  std::vector<double> neg(weight.size());
  for (std::size_t i = 0; i < weight.size(); ++i) neg[i] = -weight[i];
  AssignmentResult res = hungarian_min(neg, n);
  res.total = -res.total;
  return res;
}

}  // namespace dsmcpic::balance
