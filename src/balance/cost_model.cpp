#include "balance/cost_model.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/serialize.hpp"

namespace dsmcpic::balance {

const char* cost_model_name(CostModelKind k) {
  switch (k) {
    case CostModelKind::kStatic: return "static";
    case CostModelKind::kTimer: return "timer";
    case CostModelKind::kHybrid: return "hybrid";
  }
  return "?";
}

CostModelKind parse_cost_model(const std::string& name) {
  if (name == "static") return CostModelKind::kStatic;
  if (name == "timer") return CostModelKind::kTimer;
  if (name == "hybrid") return CostModelKind::kHybrid;
  throw Error("unknown cost model '" + name +
              "' (expected static|timer|hybrid)");
}

CostModel::CostModel(CostModelConfig cfg, int nranks) : cfg_(cfg) {
  DSMCPIC_CHECK_MSG(nranks >= 1, "cost model needs at least one rank");
  DSMCPIC_CHECK_MSG(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0,
                    "ewma_alpha must be in (0, 1]");
  DSMCPIC_CHECK_MSG(cfg_.hybrid_blend >= 0.0 && cfg_.hybrid_blend <= 1.0,
                    "hybrid_blend must be in [0, 1]");
  DSMCPIC_CHECK_MSG(cfg_.min_scale > 0.0 && cfg_.min_scale <= 1.0 &&
                        cfg_.max_scale >= 1.0,
                    "scale clamp must bracket 1");
  scale_.assign(static_cast<std::size_t>(nranks), 1.0);
}

void CostModel::observe_step(std::span<const double> measured,
                             std::span<const double> predicted) {
  if (cfg_.kind == CostModelKind::kStatic) return;
  DSMCPIC_CHECK(measured.size() == scale_.size());
  DSMCPIC_CHECK(predicted.size() == scale_.size());
  double sum_m = 0.0, sum_p = 0.0;
  for (const double m : measured) sum_m += m;
  for (const double p : predicted) sum_p += p;
  // Degenerate window (nothing ran or the static model predicts zero
  // everywhere): keep the previous corrections.
  if (!(sum_m > 0.0) || !(sum_p > 0.0)) return;
  const double n = static_cast<double>(scale_.size());
  for (std::size_t r = 0; r < scale_.size(); ++r) {
    if (!(predicted[r] > 0.0) || !(measured[r] >= 0.0)) continue;
    // Relative speed of rank r vs the static model's expectation. Both
    // shares are dimensionless, so virtual seconds regress cleanly onto
    // particle-count weights.
    const double measured_share = measured[r] / (sum_m / n);
    const double predicted_share = predicted[r] / (sum_p / n);
    const double ratio = std::clamp(measured_share / predicted_share,
                                    cfg_.min_scale, cfg_.max_scale);
    scale_[r] = (1.0 - cfg_.ewma_alpha) * scale_[r] + cfg_.ewma_alpha * ratio;
  }
  ++observations_;
}

std::vector<double> CostModel::cell_weights(
    std::span<const std::int32_t> owner,
    std::span<const std::int64_t> neutral_counts,
    std::span<const std::int64_t> charged_counts, double weight_ratio,
    double cell_weight) const {
  DSMCPIC_CHECK(owner.size() == neutral_counts.size());
  DSMCPIC_CHECK(owner.size() == charged_counts.size());
  std::vector<double> w(owner.size());
  for (std::size_t c = 0; c < owner.size(); ++c) {
    // Eq. (7), exactly as the static rebalancer computes it.
    double wc = static_cast<double>(neutral_counts[c]) +
                weight_ratio * static_cast<double>(charged_counts[c]) +
                cell_weight;
    switch (cfg_.kind) {
      case CostModelKind::kStatic:
        break;
      case CostModelKind::kTimer:
        wc *= rank_scale(owner[c]);
        break;
      case CostModelKind::kHybrid:
        wc *= (1.0 - cfg_.hybrid_blend) +
              cfg_.hybrid_blend * rank_scale(owner[c]);
        break;
    }
    w[c] = wc;
  }
  return w;
}

void CostModel::save(std::ostream& os) const {
  io::write_vec(os, scale_);
  io::write_pod(os, observations_);
}

void CostModel::load(std::istream& is) {
  std::vector<double> scale = io::read_vec<double>(is);
  DSMCPIC_CHECK_MSG(scale.size() == scale_.size(),
                    "cost-model checkpoint rank-count mismatch");
  scale_ = std::move(scale);
  observations_ = io::read_pod<int>(is);
}

}  // namespace dsmcpic::balance
