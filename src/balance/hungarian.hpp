#pragma once
// Kuhn–Munkres (Hungarian) algorithm for the assignment problem, used to
// remap re-decomposed grid parts onto ranks with maximum overlap — i.e.
// minimum particle migration (paper Sec. V-C, Fig. 6). O(n^3) potentials
// formulation (Jonker–Volgenant style), fast enough for n = 1536 ranks.

#include <cstdint>
#include <span>
#include <vector>

namespace dsmcpic::balance {

struct AssignmentResult {
  std::vector<int> row_to_col;  // size n; row i assigned to column row_to_col[i]
  double total = 0.0;           // total weight/cost of the assignment
  std::int64_t operations = 0;  // inner-loop operations (work accounting)
};

/// Minimum-cost perfect assignment on an n x n row-major cost matrix.
AssignmentResult hungarian_min(std::span<const double> cost, int n);

/// Maximum-weight perfect assignment (the grid-remapping objective).
AssignmentResult hungarian_max(std::span<const double> weight, int n);

}  // namespace dsmcpic::balance
