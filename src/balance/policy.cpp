#include "balance/policy.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/serialize.hpp"

namespace dsmcpic::balance {

const char* policy_name(PolicyKind k) {
  switch (k) {
    case PolicyKind::kThreshold: return "threshold";
    case PolicyKind::kLookahead: return "lookahead";
  }
  return "?";
}

PolicyKind parse_policy(const std::string& name) {
  if (name == "threshold") return PolicyKind::kThreshold;
  if (name == "lookahead") return PolicyKind::kLookahead;
  throw Error("unknown rebalance policy '" + name +
              "' (expected threshold|lookahead)");
}

RebalancePolicy::RebalancePolicy(PolicyConfig cfg) : cfg_(cfg) {
  DSMCPIC_CHECK_MSG(cfg_.horizon >= 0, "policy horizon must be >= 0");
  DSMCPIC_CHECK_MSG(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0,
                    "ewma_alpha must be in (0, 1]");
  DSMCPIC_CHECK_MSG(cfg_.initial_rebalance_cost >= 0.0,
                    "initial rebalance cost must be >= 0");
  DSMCPIC_CHECK_MSG(cfg_.cost_margin > 0.0, "cost margin must be > 0");
  DSMCPIC_CHECK_MSG(cfg_.nranks >= 0, "policy nranks must be >= 0");
  DSMCPIC_CHECK_MSG(cfg_.residual_margin >= 0.0,
                    "residual margin must be >= 0");
}

void RebalancePolicy::observe_step(std::span<const double> rank_step_cost) {
  DSMCPIC_CHECK(!rank_step_cost.empty());
  double mx = rank_step_cost[0], sum = 0.0;
  for (const double c : rank_step_cost) {
    mx = std::max(mx, c);
    sum += c;
  }
  // Virtual seconds the step loses to imbalance: the slowest rank's cost
  // over the mean. Balanced -> 0.
  const double imb =
      std::max(0.0, mx - sum / static_cast<double>(rank_step_cost.size()));
  if (awaiting_residual_) {
    // First step on the fresh partition: this is the imbalance a rebalance
    // buys, i.e. what branch A can never recover below.
    residual_ = residual_samples_ == 0
                    ? imb
                    : (1.0 - cfg_.ewma_alpha) * residual_ +
                          cfg_.ewma_alpha * imb;
    ++residual_samples_;
    awaiting_residual_ = false;
  }
  if (!has_observation_) {
    imb_level_ = imb;
    imb_trend_ = 0.0;
    has_observation_ = true;
  } else {
    imb_trend_ = (1.0 - cfg_.ewma_alpha) * imb_trend_ +
                 cfg_.ewma_alpha * (imb - prev_imb_);
    imb_level_ =
        (1.0 - cfg_.ewma_alpha) * imb_level_ + cfg_.ewma_alpha * imb;
  }
  prev_imb_ = imb;
}

void RebalancePolicy::observe_rebalance(double measured_cost) {
  DSMCPIC_CHECK_MSG(measured_cost >= 0.0, "rebalance cost must be >= 0");
  cost_estimate_ = rebalances_observed_ == 0
                       ? measured_cost
                       : (1.0 - cfg_.ewma_alpha) * cost_estimate_ +
                             cfg_.ewma_alpha * measured_cost;
  ++rebalances_observed_;
  // The decomposition just changed: yesterday's imbalance level and trend
  // describe a partition that no longer exists. Re-learn from scratch.
  imb_level_ = 0.0;
  imb_trend_ = 0.0;
  prev_imb_ = 0.0;
  has_observation_ = false;
  awaiting_residual_ = true;
}

double RebalancePolicy::rebalance_cost_estimate() const {
  return rebalances_observed_ == 0 ? cfg_.initial_rebalance_cost
                                   : cost_estimate_;
}

PolicyDecision RebalancePolicy::decide(int step, double lii) {
  PolicyDecision d;
  d.step = step;
  d.lii = lii;
  d.imbalance_per_step = imb_level_;
  d.rebalance_cost_estimate = rebalance_cost_estimate();

  // Branch A: the *recoverable* cost of staying imbalanced for the next
  // `horizon` steps — the EWMA level extrapolated along its trend, less
  // the learned post-rebalance residual (a rebalance cannot do better
  // than a fresh partition does), clamped at zero per step. The residual
  // gets a rank-count margin: with many ranks each owns few cells, the
  // single-step residual sample is optimistic, and an unwidened branch A
  // over-buys rebalances (PolicyConfig::nranks). 1.0x at <= 64 ranks.
  const double rank_margin =
      cfg_.nranks > 64
          ? 1.0 + cfg_.residual_margin *
                      std::log2(static_cast<double>(cfg_.nranks) / 64.0)
          : 1.0;
  const double residual = residual_ * rank_margin;
  double projected = 0.0;
  for (int k = 1; k <= cfg_.horizon; ++k)
    projected += std::max(
        0.0, imb_level_ + static_cast<double>(k) * imb_trend_ - residual);
  d.projected_imbalance_cost = projected;

  if (cfg_.kind == PolicyKind::kThreshold || cfg_.horizon == 0) {
    // The paper's fixed trigger; also the H = 0 degenerate case of the
    // look-ahead (nothing to project over).
    d.rebalance = lii > cfg_.threshold;
  } else {
    d.rebalance = has_observation_ && projected > 0.0 &&
                  projected > cfg_.cost_margin * d.rebalance_cost_estimate;
  }
  decisions_.push_back(d);
  return d;
}

void RebalancePolicy::save(std::ostream& os) const {
  io::write_pod(os, imb_level_);
  io::write_pod(os, imb_trend_);
  io::write_pod(os, prev_imb_);
  io::write_pod(os, has_observation_);
  io::write_pod(os, residual_);
  io::write_pod(os, awaiting_residual_);
  io::write_pod(os, residual_samples_);
  io::write_pod(os, cost_estimate_);
  io::write_pod(os, rebalances_observed_);
  io::write_vec(os, decisions_);
}

void RebalancePolicy::load(std::istream& is) {
  imb_level_ = io::read_pod<double>(is);
  imb_trend_ = io::read_pod<double>(is);
  prev_imb_ = io::read_pod<double>(is);
  has_observation_ = io::read_pod<bool>(is);
  residual_ = io::read_pod<double>(is);
  awaiting_residual_ = io::read_pod<bool>(is);
  residual_samples_ = io::read_pod<int>(is);
  cost_estimate_ = io::read_pod<double>(is);
  rebalances_observed_ = io::read_pod<int>(is);
  decisions_ = io::read_vec<PolicyDecision>(is);
}

}  // namespace dsmcpic::balance
