#pragma once
// When-to-rebalance policies (DESIGN.md §2h).
//
// The paper triggers Algorithm 1 whenever the load-imbalance indicator
// exceeds a fixed Threshold at a fixed period T — cheap, but blind to what
// a rebalance *costs* (repartition + KM + particle migration) and to where
// the imbalance is *heading*. Following ljmpi's framing of load-balancing
// schedules as a shortest-path search over rebalance/no-rebalance
// sequences, the look-ahead policy makes each periodic check a rolling
// two-branch shortest-path decision:
//
//   branch A (keep going):   sum over the horizon H of the projected
//                            *recoverable* per-step imbalance cost (EWMA
//                            level + trend extrapolation of max-mean rank
//                            cost, less the learned post-rebalance
//                            residual — a rebalance cannot remove the
//                            imbalance a fresh partition still has);
//   branch B (rebalance):    the learned cost of a rebalance event
//                            (EWMA of measured repartition + migration
//                            virtual time), after which imbalance drops
//                            back to the residual.
//
// Rebalance iff branch A is the longer path. The fixed-threshold trigger
// remains available as the baseline (and as the H = 0 degenerate case:
// with no look-ahead there is no projection to weigh, so the policy falls
// back to the threshold comparison).
//
// Every input is virtual time (never wall clock), so decision sequences
// are deterministic and reproducible run-to-run and across exec modes.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace dsmcpic::balance {

enum class PolicyKind { kThreshold, kLookahead };

const char* policy_name(PolicyKind k);
/// Parses "threshold" / "lookahead" (throws on anything else).
PolicyKind parse_policy(const std::string& name);

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kThreshold;
  /// lii trigger for kThreshold (and the H = 0 fallback).
  double threshold = 2.0;
  /// Look-ahead horizon in DSMC steps for kLookahead.
  int horizon = 20;
  /// EWMA weight of the newest imbalance-cost / rebalance-cost sample.
  double ewma_alpha = 0.3;
  /// Rebalance-cost estimate used before the first measured rebalance.
  double initial_rebalance_cost = 0.0;
  /// Safety margin: rebalance iff projected > margin * cost estimate.
  double cost_margin = 1.0;
  /// Rank count the policy serves (0 = unknown). At high rank counts the
  /// per-rank cell share is small, so the sampled post-rebalance residual
  /// is noisy and optimistic — branch A over-estimates what a rebalance
  /// recovers and the lookahead lane starts losing (observed at >= 96
  /// ranks in the fig13 sweep). decide() widens the residual by
  /// `residual_margin * log2(nranks / 64)` (clamped at zero) to compensate;
  /// the multiplier is exactly 1.0 for nranks <= 64, so small-rank decision
  /// sequences — including the golden configs — are untouched.
  int nranks = 0;
  /// Per-octave weight of the rank-count residual margin above 64 ranks.
  double residual_margin = 0.25;
};

/// One periodic decision, recorded for run_report.json and the benches.
struct PolicyDecision {
  int step = 0;
  double lii = 0.0;
  /// EWMA of the per-step imbalance cost (max - mean rank compute time).
  double imbalance_per_step = 0.0;
  /// Branch A: projected cumulative imbalance cost over the horizon.
  double projected_imbalance_cost = 0.0;
  /// Branch B: the learned cost of a rebalance event.
  double rebalance_cost_estimate = 0.0;
  bool rebalance = false;
};

class RebalancePolicy {
 public:
  RebalancePolicy() : RebalancePolicy(PolicyConfig{}) {}
  explicit RebalancePolicy(PolicyConfig cfg);

  const PolicyConfig& config() const { return cfg_; }

  /// Per-step observation: each rank's imbalance-relevant virtual-time
  /// cost for this step (total busy minus migration and Poisson, the same
  /// signal Eq. 6 is built from). Updates the imbalance level and trend.
  void observe_step(std::span<const double> rank_step_cost);

  /// Feedback after a rebalance actually ran: its measured virtual-time
  /// cost (repartition + KM + migration + rebuild). Updates the cost
  /// estimate and resets the imbalance level/trend — the load landscape
  /// changed discontinuously, so the policy re-learns it.
  void observe_rebalance(double measured_cost);

  /// The periodic decision (call at period boundaries only). Appends to
  /// decisions() and returns the verdict.
  PolicyDecision decide(int step, double lii);

  const std::vector<PolicyDecision>& decisions() const { return decisions_; }
  /// Rebalance-cost estimate branch B currently uses.
  double rebalance_cost_estimate() const;
  /// EWMA of the per-step imbalance cost (0 until observed).
  double imbalance_per_step() const { return imb_level_; }
  /// Learned residual imbalance of a fresh partition (0 until a rebalance
  /// has been observed and the following step sampled).
  double residual_imbalance() const { return residual_; }
  /// Number of measured rebalance events fed back so far.
  int rebalances_observed() const { return rebalances_observed_; }

  // Checkpoint support (state must survive restart bit-for-bit).
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  PolicyConfig cfg_;
  double imb_level_ = 0.0;  // EWMA of per-step (max - mean) cost
  double imb_trend_ = 0.0;  // EWMA of its per-step delta
  double prev_imb_ = 0.0;
  bool has_observation_ = false;
  double residual_ = 0.0;        // EWMA of post-rebalance imbalance
  bool awaiting_residual_ = false;  // sample the next observe_step
  int residual_samples_ = 0;
  double cost_estimate_ = 0.0;  // EWMA of measured rebalance costs
  int rebalances_observed_ = 0;
  std::vector<PolicyDecision> decisions_;
};

}  // namespace dsmcpic::balance
