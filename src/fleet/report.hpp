#pragma once
// One shared run_report.json assembler. The per-bench wiring that used to
// live inline in bench/common.cpp run_case() — config echo, ensemble
// summary, virtual-time phases, step totals, rebalance decisions — is the
// same wiring every fleet run needs, so it lives here once and both the
// bench harness and the FleetRunner call it.

#include <cstdint>
#include <span>
#include <string>

#include "core/solver.hpp"
#include "obs/run_report.hpp"

namespace dsmcpic::fleet {

/// Identity strings a report caller supplies (everything else is read off
/// the solver and its summary).
struct ReportMeta {
  std::string bench;           // emitting binary, e.g. "bench_fig05" / "fleet"
  std::string case_name;       // human-readable case id within the bench
  std::string machine = "tianhe2";
  std::uint64_t seed = 42;
  int steps = 0;               // DSMC steps of the WHOLE run
  std::string audit = "off";   // audit severity echo ("off" = no auditor)
};

/// Fills `rep` from a finished solver: config echo, ensemble section,
/// virtual-time totals + phases, step totals, and every rebalance decision.
/// Step totals are ADDED onto whatever rep.steps already holds — zeros for
/// a plain bench case; the carried pre-park totals for a fleet run resumed
/// from a checkpoint (whose history covers only the final lease) —
/// final_particles is overwritten. The audit/profiler pointers are left
/// untouched for the caller to attach.
void fill_run_report(obs::RunReport& rep, const core::CoupledSolver& solver,
                     const core::RunSummary& summary,
                     std::span<const core::StepDiagnostics> history,
                     const ReportMeta& meta);

/// Adds `history`'s per-step physics totals onto `steps` (final_particles
/// untouched). The fleet runner uses this to carry totals across leases.
void add_step_totals(obs::RunReportSteps& steps,
                     std::span<const core::StepDiagnostics> history);

}  // namespace dsmcpic::fleet
