#include "fleet/report.hpp"

#include "balance/rebalancer.hpp"
#include "exchange/exchange.hpp"
#include "par/runtime.hpp"

namespace dsmcpic::fleet {

void fill_run_report(obs::RunReport& rep, const core::CoupledSolver& solver,
                     const core::RunSummary& summary,
                     std::span<const core::StepDiagnostics> history,
                     const ReportMeta& meta) {
  const core::ParallelConfig& par = solver.parallel_config();
  rep.config.bench = meta.bench;
  rep.config.case_name = meta.case_name;
  rep.config.ranks = par.nranks;
  rep.config.steps = meta.steps;
  rep.config.machine = meta.machine;
  rep.config.seed = meta.seed;
  rep.config.exec_mode = par::exec_mode_name(par.exec_mode);
  rep.config.exec_threads = par.exec_threads;
  rep.config.kernel_threads = par.kernel_threads;
  rep.config.sort_every = solver.config().sort_every;
  rep.config.strategy = exchange::strategy_name(par.strategy);
  rep.config.balance = par.balance.enabled;
  rep.config.audit_severity = meta.audit;
  rep.config.cost_model = balance::cost_model_name(par.balance.cost_model.kind);
  rep.config.policy = balance::policy_name(par.balance.policy.kind);
  rep.config.horizon = par.balance.policy.horizon;
  rep.ensemble.kind = balance::ensemble_name(par.balance.ensemble.kind);
  rep.ensemble.ranks_min = solver.ensemble().config().ranks_min;
  rep.ensemble.ranks_max = solver.ensemble().config().ranks_max;
  rep.ensemble.active_initial = solver.ensemble().initial_active();
  rep.ensemble.active_final = solver.active_ranks();
  rep.ensemble.resizes = solver.ensemble().resizes();
  rep.total_virtual_time = summary.total_time;
  for (std::size_t i = 0; i < summary.phase_names.size(); ++i) {
    const par::PhaseStats& st = summary.phase_stats[i];
    rep.phases.push_back({summary.phase_names[i], st.busy_max, st.busy_min,
                          st.busy_sum, st.transactions, st.bytes});
  }
  rep.steps.final_particles = summary.final_particles;
  add_step_totals(rep.steps, history);
  for (const balance::PolicyDecision& d : summary.decisions)
    rep.rebalance_decisions.push_back({d.step, d.lii, d.imbalance_per_step,
                                       d.projected_imbalance_cost,
                                       d.rebalance_cost_estimate, d.rebalance});
}

void add_step_totals(obs::RunReportSteps& steps,
                     std::span<const core::StepDiagnostics> history) {
  for (const core::StepDiagnostics& d : history) {
    steps.injected += d.injected;
    steps.migrated_dsmc += d.migrated_dsmc;
    steps.migrated_pic += d.migrated_pic;
    steps.collisions += d.collisions;
    steps.ionizations += d.ionizations;
    steps.recombinations += d.recombinations;
    steps.rebalances += d.rebalanced ? 1 : 0;
  }
}

}  // namespace dsmcpic::fleet
