#include "fleet/shared_assets.hpp"

#include <cstdio>

#include "support/error.hpp"

namespace dsmcpic::fleet {

std::string SharedAssets::geometry_key(const mesh::NozzleSpec& spec) {
  // Every field of the spec, rendered exactly: two specs compare equal iff
  // their keys do.
  char buf[160];
  std::snprintf(buf, sizeof buf, "%.17g|%.17g|%.17g|%d|%d|%d", spec.radius,
                spec.length, spec.inlet_radius_frac, spec.radial_divisions,
                spec.axial_divisions, spec.inlet_count);
  return buf;
}

std::shared_ptr<const core::CaseGeometry> SharedAssets::geometry(
    const mesh::NozzleSpec& spec) {
  const std::string key = geometry_key(spec);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = geometry_.find(key);
  if (it != geometry_.end()) {
    ++stats_.geometry_hits;
    return it->second;
  }
  ++stats_.geometry_misses;
  auto geom = core::CaseGeometry::build(spec);
  geometry_.emplace(key, geom);
  return geom;
}

par::MachineProfile SharedAssets::machine(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = machines_.find(name);
  if (it != machines_.end()) {
    ++stats_.machine_hits;
    return it->second;
  }
  ++stats_.machine_misses;
  par::MachineProfile profile;
  if (name == "tianhe2") {
    profile = par::MachineProfile::tianhe2();
  } else if (name == "bscc") {
    profile = par::MachineProfile::bscc();
  } else if (name == "tianhe3") {
    profile = par::MachineProfile::tianhe3();
  } else {
    DSMCPIC_CHECK_MSG(false, "unknown machine '" << name
                                                 << "' (tianhe2|bscc|tianhe3)");
  }
  machines_.emplace(name, profile);
  return profile;
}

SharedAssets::Stats SharedAssets::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dsmcpic::fleet
