#include "fleet/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "fleet/report.hpp"
#include "obs/telemetry.hpp"
#include "support/error.hpp"
#include "support/serialize.hpp"
#include "support/thread_pool.hpp"
#include "trace/chrome_writer.hpp"
#include "trace/json_writer.hpp"

namespace dsmcpic::fleet {

namespace {

constexpr const char* kLeaseSchema = "dsmcpic.fleet.lease.v1";
constexpr const char* kSummarySchema = "dsmcpic.fleet_summary.v1";

std::string hex_digest(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

const char* state_name(RunState s) {
  switch (s) {
    case RunState::kPending: return "pending";
    case RunState::kParked: return "parked";
    case RunState::kDone: return "done";
  }
  return "?";
}

}  // namespace

struct FleetRunner::JobState {
  FleetJob job;
  const Scenario* scenario = nullptr;
  std::string run_id;
  std::string dir;  // per-run output dir ("" = memory-only run)
  int steps_total = 0;
  int ranks = 0;
  RunState state = RunState::kPending;
  bool has_checkpoint = false;

  int steps_done = 0;
  int leases = 0;
  RunDigest digest;                // streaming golden digest
  obs::RunReportSteps carried;     // step totals of completed leases
  double wall_ms = 0.0;

  // Valid once state == kDone.
  std::uint64_t final_digest = 0;
  std::int64_t final_particles = 0;
  double virtual_seconds = 0.0;
};

FleetRunner::FleetRunner(FleetOptions opt, std::shared_ptr<SharedAssets> assets)
    : opts_(std::move(opt)),
      assets_(assets ? std::move(assets) : std::make_shared<SharedAssets>()) {
  DSMCPIC_CHECK_MSG(opts_.slots >= 1, "fleet needs at least one slot");
  DSMCPIC_CHECK_MSG(opts_.lease_steps >= 0, "lease steps must be >= 0");
  DSMCPIC_CHECK_MSG(opts_.lease_steps == 0 || !opts_.results_dir.empty(),
                    "preemption (lease steps) requires a results dir for "
                    "checkpoints");
  if (!opts_.results_dir.empty())
    std::filesystem::create_directories(opts_.results_dir);
}

FleetRunner::~FleetRunner() = default;

std::string FleetRunner::add(const FleetJob& job) {
  const Scenario& sc = corpus_.by_name(job.scenario);
  DSMCPIC_CHECK_MSG(job.park_at == 0 || !opts_.results_dir.empty(),
                    "park_at requires a results dir for checkpoints");
  auto js = std::make_unique<JobState>();
  js->job = job;
  js->scenario = &sc;
  js->steps_total = job.steps > 0 ? job.steps : sc.default_steps;
  js->ranks = job.ranks > 0 ? job.ranks : sc.default_ranks;
  char buf[64];
  std::snprintf(buf, sizeof buf, "run%03d-%s",
                static_cast<int>(jobs_.size()), sc.name.c_str());
  js->run_id = buf;
  if (!opts_.results_dir.empty()) {
    js->dir = opts_.results_dir + "/" + js->run_id;
    std::filesystem::create_directories(js->dir);
  }
  jobs_.push_back(std::move(js));
  return jobs_.back()->run_id;
}

std::string FleetRunner::add_resume(const std::string& run_dir) {
  std::string dir = run_dir;
  while (!dir.empty() && dir.back() == '/') dir.pop_back();
  std::ifstream is(dir + "/lease.bin", std::ios::binary);
  DSMCPIC_CHECK_MSG(is.good(), "cannot open " << dir << "/lease.bin");
  const std::string schema = io::read_string(is);
  DSMCPIC_CHECK_MSG(schema == kLeaseSchema,
                    "unexpected lease schema '" << schema << "'");
  auto js = std::make_unique<JobState>();
  js->run_id = io::read_string(is);
  js->job.scenario = io::read_string(is);
  js->job.seed = io::read_pod<std::uint64_t>(is);
  js->ranks = static_cast<int>(io::read_pod<std::int64_t>(is));
  js->steps_total = static_cast<int>(io::read_pod<std::int64_t>(is));
  js->steps_done = static_cast<int>(io::read_pod<std::int64_t>(is));
  js->leases = static_cast<int>(io::read_pod<std::int64_t>(is));
  js->digest.set_state(io::read_pod<std::uint64_t>(is));
  js->carried.injected = io::read_pod<std::int64_t>(is);
  js->carried.migrated_dsmc = io::read_pod<std::int64_t>(is);
  js->carried.migrated_pic = io::read_pod<std::int64_t>(is);
  js->carried.collisions = io::read_pod<std::int64_t>(is);
  js->carried.ionizations = io::read_pod<std::int64_t>(is);
  js->carried.recombinations = io::read_pod<std::int64_t>(is);
  js->carried.rebalances = io::read_pod<std::int64_t>(is);
  DSMCPIC_CHECK_MSG(is.good(), "truncated " << dir << "/lease.bin");
  js->scenario = &corpus_.by_name(js->job.scenario);
  js->dir = dir;
  js->has_checkpoint = true;
  // The park already happened; the resumed run goes to completion.
  js->job.park_at = 0;
  jobs_.push_back(std::move(js));
  return jobs_.back()->run_id;
}

void FleetRunner::write_sidecar(const JobState& js) const {
  std::ofstream os(js.dir + "/lease.bin",
                   std::ios::binary | std::ios::trunc);
  DSMCPIC_CHECK_MSG(os.good(), "cannot write " << js.dir << "/lease.bin");
  io::write_string(os, kLeaseSchema);
  io::write_string(os, js.run_id);
  io::write_string(os, js.job.scenario);
  io::write_pod(os, js.job.seed);
  io::write_pod(os, static_cast<std::int64_t>(js.ranks));
  io::write_pod(os, static_cast<std::int64_t>(js.steps_total));
  io::write_pod(os, static_cast<std::int64_t>(js.steps_done));
  io::write_pod(os, static_cast<std::int64_t>(js.leases));
  io::write_pod(os, js.digest.value());
  io::write_pod(os, js.carried.injected);
  io::write_pod(os, js.carried.migrated_dsmc);
  io::write_pod(os, js.carried.migrated_pic);
  io::write_pod(os, js.carried.collisions);
  io::write_pod(os, js.carried.ionizations);
  io::write_pod(os, js.carried.recombinations);
  io::write_pod(os, js.carried.rebalances);
  DSMCPIC_CHECK_MSG(os.good(), "write failed: " << js.dir << "/lease.bin");
}

void FleetRunner::run_lease(JobState& js) {
  const auto t0 = std::chrono::steady_clock::now();

  core::SolverConfig cfg = js.scenario->config;
  cfg.seed = js.job.seed;
  cfg.sort_every = opts_.sort_every;
  core::ParallelConfig par = canonical_parallel(js.ranks);
  par.profile = assets_->machine(opts_.machine);
  par.kernel_threads = opts_.kernel_threads;
  // The hub outlives the solver (the solver holds a raw pointer to it).
  std::unique_ptr<obs::TelemetryHub> hub;
  if (opts_.telemetry && !js.dir.empty()) {
    obs::TelemetryConfig tc;
    tc.metrics_interval = opts_.metrics_interval;
    tc.flight_recorder = opts_.flight_recorder;
    tc.metrics_prom_path = js.dir + "/metrics.prom";
    tc.metrics_json_path = js.dir + "/metrics.json";
    tc.postmortem_path = js.dir + "/postmortem.json";
    tc.run_label = js.run_id;
    hub = std::make_unique<obs::TelemetryHub>(tc);
  }
  core::CoupledSolver solver(cfg, par,
                             assets_->geometry(js.scenario->config.nozzle));
  if (hub) solver.set_telemetry(hub.get());
  if (js.has_checkpoint) solver.restore_checkpoint(js.dir + "/checkpoint.bin");

  int limit = js.steps_total;
  if (js.job.park_at > js.steps_done && js.job.park_at < limit)
    limit = js.job.park_at;
  if (opts_.lease_steps > 0)
    limit = std::min(limit, js.steps_done + opts_.lease_steps);

  while (js.steps_done < limit) {
    solver.step();
    ++js.steps_done;
  }
  // history() covers exactly this lease (restore clears it), so the
  // streaming digest continues where the parked half stopped.
  for (const core::StepDiagnostics& d : solver.history()) js.digest.absorb(d);
  ++js.leases;

  if (js.steps_done >= js.steps_total) {
    finish_run(js, solver);
    js.state = RunState::kDone;
  } else {
    DSMCPIC_CHECK_MSG(!js.dir.empty(),
                      "preempting a run requires a results dir");
    add_step_totals(js.carried, solver.history());
    solver.save_checkpoint(js.dir + "/checkpoint.bin");
    write_sidecar(js);
    js.has_checkpoint = true;
    js.state = (js.job.park_at > 0 && js.steps_done == js.job.park_at)
                   ? RunState::kParked
                   : RunState::kPending;
  }
  if (hub) {
    // A park is the fleet's planned "crash": leave the black box behind so
    // the operator can inspect what the run was doing at the park point.
    if (js.state == RunState::kParked) hub->dump_postmortem("park");
    hub->publish();  // final snapshot for this lease
  }
  js.wall_ms += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
}

void FleetRunner::finish_run(JobState& js, core::CoupledSolver& solver) {
  js.digest.absorb_final(solver.runtime());
  js.final_digest = js.digest.value();
  const core::RunSummary summary = solver.summary();
  js.virtual_seconds = summary.total_time;
  js.final_particles = summary.final_particles;
  if (js.dir.empty()) return;

  obs::RunReport rep;
  rep.steps = js.carried;  // totals of the leases before this one
  ReportMeta meta;
  meta.bench = "fleet";
  meta.case_name = js.run_id + " scenario=" + js.scenario->name;
  meta.machine = opts_.machine;
  meta.seed = js.job.seed;
  meta.steps = js.steps_total;
  fill_run_report(rep, solver, summary, solver.history(), meta);
  obs::write_run_report_file(js.dir + "/run_report.json", rep);

  std::ofstream os(js.dir + "/digest.txt", std::ios::binary | std::ios::trunc);
  DSMCPIC_CHECK_MSG(os.good(), "cannot write " << js.dir << "/digest.txt");
  os << hex_digest(js.final_digest) << " " << js.scenario->name
     << " steps=" << js.steps_total << "\n";

  // A completed run must not look resumable: drop the park-time sidecars.
  std::error_code ec;
  std::filesystem::remove(js.dir + "/checkpoint.bin", ec);
  std::filesystem::remove(js.dir + "/lease.bin", ec);
}

FleetRunResult FleetRunner::make_result(const JobState& js) {
  FleetRunResult r;
  r.run_id = js.run_id;
  r.scenario = js.scenario->name;
  r.state = js.state;
  r.steps_done = js.steps_done;
  r.steps_total = js.steps_total;
  r.leases = js.leases;
  r.digest = js.final_digest;
  r.final_particles = js.final_particles;
  r.virtual_seconds = js.virtual_seconds;
  r.wall_ms = js.wall_ms;
  return r;
}

void FleetRunner::publish_progress(std::size_t idx) {
  if (opts_.results_dir.empty()) return;
  std::lock_guard<std::mutex> lock(publish_mu_);
  progress_[idx] = make_result(*jobs_[idx]);
  write_fleet_summary(progress_);
  write_fleet_metrics(progress_);
}

std::vector<FleetRunResult> FleetRunner::run_all() {
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<std::size_t> queue;
  for (std::size_t i = 0; i < jobs_.size(); ++i)
    if (jobs_[i]->state == RunState::kPending) queue.push_back(i);

  // Seed the live progress snapshot (resumed jobs already carry steps).
  progress_.clear();
  progress_.reserve(jobs_.size());
  for (const auto& js : jobs_) progress_.push_back(make_result(*js));

  support::ThreadPool pool(opts_.slots);
  while (!queue.empty()) {
    std::vector<std::size_t> requeue;
    std::mutex mu;
    pool.parallel_for(static_cast<int>(queue.size()), [&](int i) {
      const std::size_t idx = queue[static_cast<std::size_t>(i)];
      JobState& js = *jobs_[idx];
      run_lease(js);
      // Republish the fleet files after EVERY lease, not only at the end:
      // killing the process mid-fleet leaves a valid partial summary.
      publish_progress(idx);
      if (js.state == RunState::kPending) {
        std::lock_guard<std::mutex> lock(mu);
        requeue.push_back(idx);
      }
    });
    // Deterministic round order no matter which slot finished first.
    std::sort(requeue.begin(), requeue.end());
    queue = std::move(requeue);
  }

  stats_ = FleetStats{};
  stats_.slots = opts_.slots;
  stats_.runs_total = static_cast<std::int64_t>(jobs_.size());
  stats_.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

  std::vector<FleetRunResult> results;
  results.reserve(jobs_.size());
  for (const auto& js : jobs_) {
    results.push_back(make_result(*js));
    stats_.busy_ms += js->wall_ms;
    stats_.runs_done += js->state == RunState::kDone ? 1 : 0;
    stats_.runs_parked += js->state == RunState::kParked ? 1 : 0;
  }
  if (stats_.wall_ms > 0.0) {
    stats_.slot_utilization =
        stats_.busy_ms / (static_cast<double>(opts_.slots) * stats_.wall_ms);
    stats_.runs_per_sec =
        static_cast<double>(stats_.runs_done) / (stats_.wall_ms / 1000.0);
  }
  stats_.cache = assets_->stats();

  if (!opts_.results_dir.empty()) {
    // Final publication with the end-to-end slot stats filled in. The lock
    // is free by now (all leases drained), taken only for form.
    std::lock_guard<std::mutex> lock(publish_mu_);
    progress_ = results;
    write_fleet_summary(results);
    write_fleet_metrics(results);
  }
  return results;
}

void FleetRunner::write_fleet_summary(
    const std::vector<FleetRunResult>& results) const {
  // Totals come from the per-run snapshot, not stats_ — mid-fleet
  // publications happen before stats_ exists. "pending" counts both
  // untouched runs and preempted runs awaiting their next lease.
  std::int64_t done = 0, parked = 0;
  for (const FleetRunResult& r : results) {
    done += r.state == RunState::kDone ? 1 : 0;
    parked += r.state == RunState::kParked ? 1 : 0;
  }
  std::ostringstream os;
  trace::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", kSummarySchema);
  w.kv("slots", opts_.slots);
  w.kv("lease_steps", opts_.lease_steps);
  w.kv("machine", opts_.machine);
  w.key("runs");
  w.begin_array();
  for (const FleetRunResult& r : results) {
    w.begin_object();
    w.kv("run_id", r.run_id);
    w.kv("scenario", r.scenario);
    w.kv("state", state_name(r.state));
    w.kv("steps_done", r.steps_done);
    w.kv("steps_total", r.steps_total);
    w.kv("leases", r.leases);
    w.kv("digest", r.state == RunState::kDone ? hex_digest(r.digest) : "");
    w.kv("final_particles", r.final_particles);
    w.kv("virtual_seconds", r.virtual_seconds);
    w.kv("wall_ms", r.wall_ms);
    w.end_object();
  }
  w.end_array();
  w.key("totals");
  w.begin_object();
  w.kv("runs", static_cast<std::int64_t>(results.size()));
  w.kv("done", done);
  w.kv("parked", parked);
  w.kv("pending",
       static_cast<std::int64_t>(results.size()) - done - parked);
  w.end_object();
  w.key("slot_stats");
  w.begin_object();
  w.kv("wall_ms", stats_.wall_ms);
  w.kv("busy_ms", stats_.busy_ms);
  w.kv("slot_utilization", stats_.slot_utilization);
  w.kv("runs_per_sec", stats_.runs_per_sec);
  w.end_object();
  w.key("shared_cache");
  w.begin_object();
  w.kv("geometry_hits", stats_.cache.geometry_hits);
  w.kv("geometry_misses", stats_.cache.geometry_misses);
  w.kv("machine_hits", stats_.cache.machine_hits);
  w.kv("machine_misses", stats_.cache.machine_misses);
  w.end_object();
  w.end_object();
  w.finish();
  os << "\n";
  obs::atomic_write_file(opts_.results_dir + "/fleet_summary.json", os.str());
}

void FleetRunner::write_fleet_metrics(
    const std::vector<FleetRunResult>& results) const {
  std::int64_t done = 0, parked = 0;
  for (const FleetRunResult& r : results) {
    done += r.state == RunState::kDone ? 1 : 0;
    parked += r.state == RunState::kParked ? 1 : 0;
  }
  std::ostringstream os;
  auto gauge = [&os](const char* name, const char* help) {
    os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " gauge\n";
  };
  gauge("dsmcpic_fleet_slots", "Configured concurrent solver slots.");
  os << "dsmcpic_fleet_slots " << opts_.slots << "\n";
  gauge("dsmcpic_fleet_runs", "Queued runs in this fleet.");
  os << "dsmcpic_fleet_runs " << results.size() << "\n";
  gauge("dsmcpic_fleet_runs_done", "Runs completed so far.");
  os << "dsmcpic_fleet_runs_done " << done << "\n";
  gauge("dsmcpic_fleet_runs_parked", "Runs parked at their park point.");
  os << "dsmcpic_fleet_runs_parked " << parked << "\n";
  gauge("dsmcpic_fleet_runs_pending", "Runs waiting for their next lease.");
  os << "dsmcpic_fleet_runs_pending "
     << static_cast<std::int64_t>(results.size()) - done - parked << "\n";

  auto labels = [](const FleetRunResult& r) {
    std::ostringstream ls;
    ls << "{run=\"" << r.run_id << "\",scenario=\"" << r.scenario
       << "\",state=\"" << state_name(r.state) << "\"}";
    return ls.str();
  };
  gauge("dsmcpic_fleet_run_steps_done", "DSMC steps completed per run.");
  for (const FleetRunResult& r : results)
    os << "dsmcpic_fleet_run_steps_done" << labels(r) << " " << r.steps_done
       << "\n";
  gauge("dsmcpic_fleet_run_steps_total", "DSMC step budget per run.");
  for (const FleetRunResult& r : results)
    os << "dsmcpic_fleet_run_steps_total" << labels(r) << " " << r.steps_total
       << "\n";
  gauge("dsmcpic_fleet_run_leases", "Leases consumed per run.");
  for (const FleetRunResult& r : results)
    os << "dsmcpic_fleet_run_leases" << labels(r) << " " << r.leases << "\n";
  gauge("dsmcpic_fleet_run_particles",
        "Final particle count per completed run.");
  for (const FleetRunResult& r : results)
    os << "dsmcpic_fleet_run_particles" << labels(r) << " "
       << r.final_particles << "\n";
  gauge("dsmcpic_fleet_run_virtual_seconds",
        "End-to-end virtual time per completed run.");
  for (const FleetRunResult& r : results)
    os << "dsmcpic_fleet_run_virtual_seconds" << labels(r) << " "
       << trace::format_double(r.virtual_seconds) << "\n";
  obs::atomic_write_file(opts_.results_dir + "/fleet_metrics.prom", os.str());
}

}  // namespace dsmcpic::fleet
