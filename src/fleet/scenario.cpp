#include "fleet/scenario.hpp"

#include <bit>
#include <sstream>

#include "core/datasets.hpp"
#include "support/error.hpp"

namespace dsmcpic::fleet {

namespace {

/// The golden-test tiny nozzle: Dataset 1 at quarter particle scale on a
/// 324-tet coarse grid. Small enough that a whole fleet of runs stays
/// test-suite fast, big enough that balancing decisions actually trigger.
core::SolverConfig tiny_nozzle() {
  core::Dataset d = core::make_dataset(1, /*particle_scale=*/0.25);
  d.config.nozzle.radial_divisions = 3;
  d.config.nozzle.axial_divisions = 6;
  return d.config;
}

}  // namespace

ScenarioCorpus::ScenarioCorpus() {
  {
    Scenario sc;
    sc.name = "nozzle";
    sc.description =
        "the paper's cylindrical nozzle plume (golden-test tiny config)";
    sc.config = tiny_nozzle();
    scenarios_.push_back(sc);
  }
  {
    // Hypersonic-reentry-style inflow (Binder et al.): the inlet disc spans
    // almost the whole z = 0 face and the timestep is shrunk ~10x, so the
    // transit takes hundreds of steps and the population piles up in the
    // first axial layers — the persistent inlet-side imbalance that makes
    // naive uniform decompositions fall over.
    Scenario sc;
    sc.name = "reentry";
    sc.description =
        "hypersonic-reentry-style slow-fill inflow: wide inlet, 10x finer "
        "dt, extreme inlet-side load imbalance";
    sc.config = tiny_nozzle();
    sc.config.nozzle.axial_divisions = 8;
    sc.config.nozzle.inlet_radius_frac = 0.85;
    sc.config.drift_speed = 7.5e3;  // reentry-scale speed
    sc.config.dt_dsmc = 2.5e-8;     // ~270-step transit: slow-fill regime
    sc.config.set_target_particles(6000, 1200);
    scenarios_.push_back(sc);
  }
  {
    // Twin-nozzle plume interaction: two off-axis inlet discs whose plumes
    // expand into each other downstream. The DSMC load forms two moving
    // lobes instead of one axial column, so partitions tuned for a single
    // plume mispredict both.
    Scenario sc;
    sc.name = "twin-plume";
    sc.description =
        "two off-axis inlet discs (NozzleSpec::inlet_count = 2), "
        "interacting plumes downstream";
    sc.config = tiny_nozzle();
    sc.config.nozzle.radial_divisions = 4;
    sc.config.nozzle.inlet_radius_frac = 0.3;
    sc.config.nozzle.inlet_count = 2;
    sc.config.set_target_particles(5000, 1000);
    scenarios_.push_back(sc);
  }
  {
    // Pulsed injection (Ortwein et al.'s shifting hybrid cost ratios): the
    // inflow breathes with amplitude 0.9 over a 4-step period, so per-rank
    // particle load — and with it the DSMC/PIC cost split — never settles.
    Scenario sc;
    sc.name = "pulsed-inlet";
    sc.description =
        "time-varying injection: inflow scaled by 1 + 0.9 sin(2 pi step/4)";
    sc.config = tiny_nozzle();
    sc.config.inject_pulse_amplitude = 0.9;
    sc.config.inject_pulse_period = 4;
    scenarios_.push_back(sc);
  }
}

const Scenario* ScenarioCorpus::find(const std::string& name) const {
  for (const Scenario& sc : scenarios_)
    if (sc.name == name) return &sc;
  return nullptr;
}

const Scenario& ScenarioCorpus::by_name(const std::string& name) const {
  if (const Scenario* sc = find(name)) return *sc;
  std::ostringstream known;
  for (const Scenario& sc : scenarios_) known << " " << sc.name;
  DSMCPIC_CHECK_MSG(false, "unknown scenario '" << name << "' (corpus:"
                                                << known.str() << ")");
  return scenarios_.front();
}

core::ParallelConfig canonical_parallel(int nranks) {
  core::ParallelConfig par;
  par.nranks = nranks;
  par.strategy = exchange::Strategy::kDistributed;
  par.balance.enabled = true;
  par.balance.period = 3;
  return par;
}

void RunDigest::bytes(const void* p, std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h_ ^= b[i];
    h_ *= 1099511628211ULL;
  }
}

void RunDigest::i64(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  bytes(&u, sizeof u);
}

void RunDigest::f64(double v) {
  const auto u = std::bit_cast<std::uint64_t>(v);
  bytes(&u, sizeof u);
}

void RunDigest::absorb(const core::StepDiagnostics& s) {
  i64(s.dsmc_step);
  for (const std::int64_t p : s.particles_per_rank) i64(p);
  i64(s.total_h);
  i64(s.total_hplus);
  i64(s.injected);
  i64(s.migrated_dsmc);
  i64(s.migrated_pic);
  i64(s.collisions);
  i64(s.ionizations);
  i64(s.recombinations);
  i64(s.poisson_iterations);
  f64(s.lii);
  i64(s.rebalanced ? 1 : 0);
}

void RunDigest::absorb_final(const par::Runtime& rt) {
  for (int r = 0; r < rt.size(); ++r) f64(rt.clock(r));
  f64(rt.total_time());
}

std::uint64_t run_scenario_digest(
    const Scenario& sc, int steps, int nranks, std::uint64_t seed,
    std::shared_ptr<const core::CaseGeometry> geom) {
  core::SolverConfig cfg = sc.config;
  cfg.seed = seed;
  core::CoupledSolver solver(cfg, canonical_parallel(nranks), std::move(geom));
  solver.run(steps);
  RunDigest d;
  for (const core::StepDiagnostics& s : solver.history()) d.absorb(s);
  d.absorb_final(solver.runtime());
  return d.value();
}

}  // namespace dsmcpic::fleet
