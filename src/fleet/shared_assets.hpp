#pragma once
// Process-wide immutable asset registry for the fleet service.
//
// Every run of a scenario needs the same coarse/refined meshes (with their
// FacePlane/BaryCache tables — by far the most expensive per-case setup)
// and a machine profile. SharedAssets builds each exactly once, keyed by
// the full NozzleSpec / profile name, and hands the same shared_ptr to
// every concurrent slot. All published objects are immutable after
// construction, so sharing them across slots needs no synchronization
// beyond the registry's own mutex.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/case_geometry.hpp"
#include "par/machine.hpp"

namespace dsmcpic::fleet {

class SharedAssets {
 public:
  struct Stats {
    std::int64_t geometry_hits = 0;
    std::int64_t geometry_misses = 0;
    std::int64_t machine_hits = 0;
    std::int64_t machine_misses = 0;
  };

  /// The shared CaseGeometry for `spec`, built on first use. Safe to call
  /// from any slot; a miss builds under the registry lock, so concurrent
  /// first requests for the same spec build it once.
  std::shared_ptr<const core::CaseGeometry> geometry(
      const mesh::NozzleSpec& spec);

  /// Machine profile by bench name: tianhe2 | bscc | tianhe3. Throws on an
  /// unknown name.
  par::MachineProfile machine(const std::string& name);

  Stats stats() const;

 private:
  static std::string geometry_key(const mesh::NozzleSpec& spec);

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const core::CaseGeometry>> geometry_;
  std::map<std::string, par::MachineProfile> machines_;
  Stats stats_;
};

}  // namespace dsmcpic::fleet
