#pragma once
// FleetRunner — the simulation-fleet service (DESIGN.md §2j): N independent
// solver runs served concurrently from one process.
//
// Execution model: `slots` lanes on one support::ThreadPool, one run per
// slot. The runner schedules in rounds — every queued job gets a lease, a
// lease steps its solver up to `lease_steps` DSMC steps (or to its park
// point, or to completion), then either finishes the run or checkpoints it
// (checkpoint v4) and requeues it in deterministic job order. Because every
// run is a self-contained deterministic solver and the digest/report bytes
// never depend on wall-clock, results are bit-identical for ANY slot count,
// lease length, or completion order.
//
// Preemption protocol: a lease that stops early writes
//   <run_dir>/checkpoint.bin   — full solver state at the step boundary
//   <run_dir>/lease.bin        — fleet-side carry: digest state (one u64 of
//                                streaming FNV), cumulative step totals,
//                                job identity
// and frees its slot. park_at > 0 parks the run there for good (this
// runner will not requeue it); a fresh FleetRunner — possibly another
// process — picks it up with add_resume(run_dir) and produces the same
// final digest and run_report.json bytes as an uninterrupted run.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/scenario.hpp"
#include "fleet/shared_assets.hpp"
#include "obs/run_report.hpp"

namespace dsmcpic::fleet {

struct FleetJob {
  std::string scenario;    // corpus name (ScenarioCorpus::by_name)
  int steps = 0;           // 0 = scenario default
  int ranks = 0;           // 0 = scenario default
  std::uint64_t seed = 42;
  /// Preempt the run for good at this DSMC step (> 0): checkpointed, slot
  /// freed, left parked for add_resume(). 0 = run to completion.
  int park_at = 0;
};

struct FleetOptions {
  int slots = 4;
  /// Per-run output root: <results_dir>/<run_id>/ gets run_report.json +
  /// digest.txt on completion (plus checkpoint.bin/lease.bin while parked),
  /// and <results_dir>/fleet_summary.json indexes the fleet. Empty keeps
  /// results in memory only — then leases and park_at are unavailable
  /// (preemption needs a checkpoint on disk).
  std::string results_dir;
  /// Preemption granularity: max DSMC steps per lease (0 = to completion).
  int lease_steps = 0;
  std::string machine = "tianhe2";
  int kernel_threads = 1;
  int sort_every = 8;  // digest-invariant, see SolverConfig::sort_every
  /// Live telemetry (docs/observability.md §6). With a results dir, every
  /// lease runs under a TelemetryHub publishing <run_dir>/metrics.prom +
  /// metrics.json every `metrics_interval` steps; a parked run dumps
  /// <run_dir>/postmortem.json. Telemetry never perturbs digests/reports.
  bool telemetry = false;
  int metrics_interval = 10;
  int flight_recorder = 32;
};

enum class RunState { kPending, kParked, kDone };

struct FleetRunResult {
  std::string run_id;
  std::string scenario;
  RunState state = RunState::kPending;
  int steps_done = 0;
  int steps_total = 0;
  int leases = 0;
  std::uint64_t digest = 0;  // golden digest; valid when state == kDone
  std::int64_t final_particles = 0;
  double virtual_seconds = 0.0;  // end-to-end virtual time
  double wall_ms = 0.0;          // host time across this runner's leases
};

struct FleetStats {
  int slots = 0;
  std::int64_t runs_total = 0;
  std::int64_t runs_done = 0;
  std::int64_t runs_parked = 0;
  double wall_ms = 0.0;  // run_all() end to end
  double busy_ms = 0.0;  // summed lease time across slots
  double slot_utilization = 0.0;  // busy / (slots * wall)
  double runs_per_sec = 0.0;      // completed runs per wall second
  SharedAssets::Stats cache;
};

class FleetRunner {
 public:
  /// `assets` may be shared across runners; nullptr creates a private
  /// registry.
  explicit FleetRunner(FleetOptions opt,
                       std::shared_ptr<SharedAssets> assets = nullptr);
  ~FleetRunner();

  const ScenarioCorpus& corpus() const { return corpus_; }
  SharedAssets& assets() { return *assets_; }

  /// Queues a job; returns its deterministic run id ("run000-<scenario>",
  /// numbered in add order). Creates <results_dir>/<run_id>/ eagerly.
  std::string add(const FleetJob& job);

  /// Queues a run parked by a previous FleetRunner: reads <run_dir>/
  /// lease.bin + checkpoint.bin and continues it to completion. Outputs
  /// keep landing in `run_dir` (the fleet summary of THIS runner indexes it
  /// under its original run id).
  std::string add_resume(const std::string& run_dir);

  /// Runs every queued job to completion (or its park point) on the slot
  /// pool. Returns per-run results in add order regardless of completion
  /// order, and writes <results_dir>/fleet_summary.json when a results dir
  /// is configured. The summary (plus <results_dir>/fleet_metrics.prom,
  /// the fleet-level Prometheus exposition with per-run labels and live
  /// slot/progress gauges) is republished ATOMICALLY after every lease, so
  /// an interrupted fleet always leaves a valid partial summary behind —
  /// not only after all runs complete. Call once.
  std::vector<FleetRunResult> run_all();

  /// Scheduling/throughput counters of the last run_all().
  const FleetStats& stats() const { return stats_; }

 private:
  struct JobState;

  void run_lease(JobState& js);
  void finish_run(JobState& js, core::CoupledSolver& solver);
  void write_sidecar(const JobState& js) const;
  static FleetRunResult make_result(const JobState& js);
  /// Renders + atomically publishes fleet_summary.json and
  /// fleet_metrics.prom for the given per-run snapshot.
  void write_fleet_summary(const std::vector<FleetRunResult>& results) const;
  void write_fleet_metrics(const std::vector<FleetRunResult>& results) const;
  /// Copies job `idx`'s state into the shared progress snapshot and
  /// republishes both fleet files. Thread-safe (one lock for snapshot +
  /// write, so concurrent leases serialize their publications).
  void publish_progress(std::size_t idx);

  FleetOptions opts_;
  std::shared_ptr<SharedAssets> assets_;
  ScenarioCorpus corpus_;
  std::vector<std::unique_ptr<JobState>> jobs_;
  FleetStats stats_;
  mutable std::mutex publish_mu_;
  std::vector<FleetRunResult> progress_;  // guarded by publish_mu_
};

}  // namespace dsmcpic::fleet
