#pragma once
// Scenario corpus for the simulation-fleet service (DESIGN.md §2j).
//
// A Scenario is a declarative SolverConfig builder with a name and a golden
// digest: the corpus turns the golden-regression suite from one nozzle case
// into a battery of genuinely different load shapes — the high-imbalance
// inflow and shifting DSMC/PIC cost ratios the load-balancing literature
// stresses (Binder et al., Ortwein et al.; see PAPERS.md) — and gives the
// fleet runner its unit of work.
//
// The canonical run of a scenario (canonical_parallel + default steps +
// default seed) is pinned by GoldenCorpus.* in tests/fleet_test.cpp; the
// digest byte stream is EXACTLY the one tests/golden_test.cpp hashes, so
// the "nozzle" scenario reproduces the original kGoldenDcBalanced value.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/case_geometry.hpp"
#include "core/config.hpp"
#include "core/solver.hpp"

namespace dsmcpic::fleet {

struct Scenario {
  std::string name;
  std::string description;
  core::SolverConfig config;
  int default_ranks = 6;
  int default_steps = 8;
};

/// The built-in scenarios. Beyond the paper's nozzle: a hypersonic-reentry
/// style slow-fill inflow (extreme inlet-side imbalance), a twin-nozzle
/// plume-interaction case (two inlet discs, NozzleSpec::inlet_count), and a
/// pulsed-injection profile whose particle load breathes over time
/// (SolverConfig::inject_pulse_*).
class ScenarioCorpus {
 public:
  ScenarioCorpus();

  const std::vector<Scenario>& all() const { return scenarios_; }
  const Scenario* find(const std::string& name) const;
  /// Throws dsmcpic::Error (listing valid names) when `name` is unknown.
  const Scenario& by_name(const std::string& name) const;

 private:
  std::vector<Scenario> scenarios_;
};

/// The corpus' canonical parallel configuration — identical knobs to the
/// golden-test harness (6-rank distributed exchange, balancing on with
/// period 3, everything else default), so the nozzle scenario's canonical
/// digest IS the original golden value.
core::ParallelConfig canonical_parallel(int nranks);

/// Streaming form of the golden-test FNV-1a digest: absorb() per step in
/// order, then absorb_final() once after the last step. The intermediate
/// state is a single u64, which is what the fleet runner carries across
/// preempt/resume leases (the resumed half of a run continues hashing from
/// the parked half's state and lands on the uninterrupted value).
class RunDigest {
 public:
  void absorb(const core::StepDiagnostics& s);
  void absorb_final(const par::Runtime& rt);

  std::uint64_t value() const { return h_; }
  void set_state(std::uint64_t h) { h_ = h; }

 private:
  void bytes(const void* p, std::size_t n);
  void i64(std::int64_t v);
  void f64(double v);

  std::uint64_t h_ = 14695981039346656037ULL;
};

/// Runs a scenario start-to-finish inline (no fleet) under the canonical
/// parallel config and returns its digest — the serial reference every
/// fleet execution of the same job must match bit-for-bit. `geom` may share
/// a pre-built CaseGeometry; nullptr builds privately.
std::uint64_t run_scenario_digest(
    const Scenario& sc, int steps, int nranks, std::uint64_t seed,
    std::shared_ptr<const core::CaseGeometry> geom = nullptr);

}  // namespace dsmcpic::fleet
