#pragma once
// Multilevel k-way graph partitioner — the METIS_PartGraphKway substitute.
//
// Algorithm (the same family as METIS):
//   1. Coarsen by heavy-edge matching until the graph is small.
//   2. Initial bisection by greedy graph growing (several random seeds).
//   3. Uncoarsen, running Fiduccia–Mattheyses boundary refinement with
//      rollback at every level.
//   4. k-way is obtained by recursive bisection with weight-proportional
//      targets (handles non-power-of-two k).
//
// Vertex weights are the paper's weighted load model wlm_i (Eq. 7); edge
// weights default to 1 (dual-graph faces).

#include <cstdint>
#include <vector>

#include "partition/graph.hpp"

namespace dsmcpic::partition {

struct PartitionOptions {
  /// Allowed max-part weight as a multiple of the ideal part weight.
  double imbalance_tol = 1.05;
  /// Stop coarsening when the graph has at most this many vertices.
  std::int32_t coarsen_to = 80;
  /// Maximum FM refinement passes per level.
  int refine_passes = 10;
  /// Random restarts for the initial bisection.
  int initial_tries = 8;
  /// Greedy k-way boundary refinement passes applied to the final
  /// partition (0 disables; recursive bisection alone cannot move vertices
  /// between non-sibling parts, this pass can).
  int kway_refine_passes = 2;
  std::uint64_t seed = 0x5eedULL;
};

struct PartitionResult {
  std::vector<std::int32_t> part;  // vertex -> part in [0, nparts)
  std::int64_t cut = 0;            // edge cut achieved
  double imbalance = 1.0;          // max part weight / ideal
};

/// Partitions `g` into `nparts` parts minimizing edge cut subject to the
/// balance tolerance. Deterministic for a fixed seed.
PartitionResult part_graph_kway(const Graph& g, int nparts,
                                const PartitionOptions& options = {});

/// Greedy direct k-way refinement: repeatedly moves boundary vertices to
/// the adjacent part with the highest cut gain, subject to the balance
/// tolerance. Mutates `part` in place; returns the total cut reduction.
std::int64_t kway_refine(const Graph& g, std::vector<std::int32_t>& part,
                         int nparts, double imbalance_tol, int passes);

}  // namespace dsmcpic::partition
