#pragma once
// Geometric decomposition baselines from the coupled-DSMC/PIC literature,
// for comparison against the paper's graph-based approach:
//
//  * Octree partitioning (CHAOS, paper ref. [23]): recursively split the
//    bounding box into octants until each leaf's weight is small, then
//    assign leaves to ranks in octant order. Balances particle counts but
//    ignores the dual-graph cut (communication volume).
//  * Morton space-filling-curve partitioning: order cells by their
//    centroid's Morton code and slice the curve into weight-balanced
//    chunks. The classic cheap decomposition with decent locality.
//
// Both take the same inputs as the weighted graph partitioner (cell
// centroids + weights) so the ablation bench can swap them in directly.

#include <cstdint>
#include <span>
#include <vector>

#include "support/vec3.hpp"

namespace dsmcpic::partition {

struct GeometricResult {
  std::vector<std::int32_t> part;  // cell -> part
  double imbalance = 1.0;          // max part weight / ideal
};

/// Morton-order decomposition: cells sorted by 3-D Morton code of their
/// centroids, then the curve is cut into `nparts` weight-balanced slices.
GeometricResult morton_partition(std::span<const Vec3> centroids,
                                 std::span<const double> weights, int nparts);

struct OctreeOptions {
  /// Split a node while its weight exceeds total/(nparts * resolution).
  double resolution = 8.0;
  int max_depth = 12;
};

/// Octree decomposition in the style of CHAOS: leaves are visited in octant
/// (Morton) order and greedily packed into ranks by weight.
GeometricResult octree_partition(std::span<const Vec3> centroids,
                                 std::span<const double> weights, int nparts,
                                 const OctreeOptions& options = {});

/// 63-bit Morton code of a point inside the given bounding box (21 bits per
/// axis). Exposed for tests.
std::uint64_t morton_code(const Vec3& p, const Vec3& lo, const Vec3& hi);

}  // namespace dsmcpic::partition
