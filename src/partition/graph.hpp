#pragma once
// CSR graph with vertex and edge weights — the same input format as
// METIS_PartGraphKway (xadj/adjncy/vwgt), which is what the paper feeds the
// coarse-grid dual graph and the weighted load model into (Sec. IV-A, V-B).

#include <cstdint>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace dsmcpic::partition {

struct Graph {
  std::vector<std::int64_t> xadj;     // size nv+1
  std::vector<std::int32_t> adjncy;   // size xadj[nv]
  std::vector<std::int64_t> vwgt;     // vertex weights (size nv; empty = all 1)
  std::vector<std::int64_t> ewgt;     // edge weights (parallel to adjncy; empty = all 1)

  std::int32_t num_vertices() const {
    return xadj.empty() ? 0 : static_cast<std::int32_t>(xadj.size() - 1);
  }
  std::int64_t num_edges() const {  // directed edge slots (2x undirected)
    return xadj.empty() ? 0 : xadj.back();
  }

  std::int64_t vertex_weight(std::int32_t v) const {
    return vwgt.empty() ? 1 : vwgt[v];
  }
  std::int64_t edge_weight(std::int64_t e) const {
    return ewgt.empty() ? 1 : ewgt[e];
  }

  std::span<const std::int32_t> neighbors(std::int32_t v) const {
    return {adjncy.data() + xadj[v],
            static_cast<std::size_t>(xadj[v + 1] - xadj[v])};
  }

  std::int64_t total_vertex_weight() const {
    if (vwgt.empty()) return num_vertices();
    std::int64_t s = 0;
    for (auto w : vwgt) s += w;
    return s;
  }

  /// Structural sanity: symmetric adjacency, no self-loops, sizes coherent.
  /// Throws dsmcpic::Error on violation; used by tests and debug paths.
  void validate() const;
};

/// Edge cut of a partition (sum of weights of edges crossing parts).
std::int64_t edge_cut(const Graph& g, std::span<const std::int32_t> part);

/// Load imbalance: max part weight / ideal part weight (>= 1).
double imbalance(const Graph& g, std::span<const std::int32_t> part, int nparts);

}  // namespace dsmcpic::partition
