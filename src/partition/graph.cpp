#include "partition/graph.hpp"

#include <algorithm>

namespace dsmcpic::partition {

void Graph::validate() const {
  const std::int32_t nv = num_vertices();
  DSMCPIC_CHECK(xadj.empty() || xadj[0] == 0);
  for (std::int32_t v = 0; v < nv; ++v)
    DSMCPIC_CHECK_MSG(xadj[v] <= xadj[v + 1], "xadj not monotone at " << v);
  DSMCPIC_CHECK(static_cast<std::int64_t>(adjncy.size()) == num_edges());
  DSMCPIC_CHECK(vwgt.empty() || static_cast<std::int32_t>(vwgt.size()) == nv);
  DSMCPIC_CHECK(ewgt.empty() || ewgt.size() == adjncy.size());
  for (std::int32_t v = 0; v < nv; ++v) {
    for (std::int64_t e = xadj[v]; e < xadj[v + 1]; ++e) {
      const std::int32_t u = adjncy[static_cast<std::size_t>(e)];
      DSMCPIC_CHECK_MSG(u >= 0 && u < nv, "neighbor out of range");
      DSMCPIC_CHECK_MSG(u != v, "self loop at vertex " << v);
      // Symmetry: u must list v with the same weight.
      bool found = false;
      for (std::int64_t e2 = xadj[u]; e2 < xadj[u + 1]; ++e2) {
        if (adjncy[static_cast<std::size_t>(e2)] == v &&
            edge_weight(e2) == edge_weight(e)) {
          found = true;
          break;
        }
      }
      DSMCPIC_CHECK_MSG(found, "asymmetric edge " << v << " -> " << u);
    }
  }
}

std::int64_t edge_cut(const Graph& g, std::span<const std::int32_t> part) {
  DSMCPIC_CHECK(static_cast<std::int32_t>(part.size()) == g.num_vertices());
  std::int64_t cut = 0;
  for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
    for (std::int64_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const std::int32_t u = g.adjncy[static_cast<std::size_t>(e)];
      if (part[v] != part[u]) cut += g.edge_weight(e);
    }
  }
  return cut / 2;  // each undirected edge counted twice
}

double imbalance(const Graph& g, std::span<const std::int32_t> part, int nparts) {
  DSMCPIC_CHECK(static_cast<std::int32_t>(part.size()) == g.num_vertices());
  DSMCPIC_CHECK(nparts >= 1);
  std::vector<std::int64_t> weight(nparts, 0);
  for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
    DSMCPIC_CHECK(part[v] >= 0 && part[v] < nparts);
    weight[part[v]] += g.vertex_weight(v);
  }
  const double ideal =
      static_cast<double>(g.total_vertex_weight()) / nparts;
  const std::int64_t mx = *std::max_element(weight.begin(), weight.end());
  return ideal > 0.0 ? static_cast<double>(mx) / ideal : 1.0;
}

}  // namespace dsmcpic::partition
