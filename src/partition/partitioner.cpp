#include "partition/partitioner.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "support/rng.hpp"

namespace dsmcpic::partition {

namespace {

// ---------------------------------------------------------------------------
// Coarsening: heavy-edge matching + contraction.
// ---------------------------------------------------------------------------

struct CoarseLevel {
  Graph graph;
  std::vector<std::int32_t> fine_to_coarse;  // size = finer graph nv
};

CoarseLevel coarsen_once(const Graph& g, Rng& rng) {
  const std::int32_t nv = g.num_vertices();
  std::vector<std::int32_t> order(nv);
  std::iota(order.begin(), order.end(), 0);
  // Random visit order decorrelates matchings across levels.
  for (std::int32_t i = nv - 1; i > 0; --i)
    std::swap(order[i], order[rng.uniform_index(static_cast<std::uint64_t>(i) + 1)]);

  std::vector<std::int32_t> match(nv, -1);
  for (std::int32_t v : order) {
    if (match[v] != -1) continue;
    std::int32_t best = -1;
    std::int64_t best_w = -1;
    for (std::int64_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const std::int32_t u = g.adjncy[static_cast<std::size_t>(e)];
      if (match[u] != -1) continue;
      const std::int64_t w = g.edge_weight(e);
      if (w > best_w) {
        best_w = w;
        best = u;
      }
    }
    if (best >= 0) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;  // unmatched: maps to its own coarse vertex
    }
  }

  CoarseLevel lvl;
  lvl.fine_to_coarse.assign(nv, -1);
  std::int32_t nc = 0;
  for (std::int32_t v = 0; v < nv; ++v) {
    if (lvl.fine_to_coarse[v] != -1) continue;
    lvl.fine_to_coarse[v] = nc;
    if (match[v] != v) lvl.fine_to_coarse[match[v]] = nc;
    ++nc;
  }

  Graph& cg = lvl.graph;
  cg.xadj.assign(nc + 1, 0);
  cg.vwgt.assign(nc, 0);
  for (std::int32_t v = 0; v < nv; ++v)
    cg.vwgt[lvl.fine_to_coarse[v]] += g.vertex_weight(v);

  // Accumulate contracted edges per coarse vertex.
  std::vector<std::unordered_map<std::int32_t, std::int64_t>> acc(nc);
  for (std::int32_t v = 0; v < nv; ++v) {
    const std::int32_t cv = lvl.fine_to_coarse[v];
    for (std::int64_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const std::int32_t cu = lvl.fine_to_coarse[g.adjncy[static_cast<std::size_t>(e)]];
      if (cu == cv) continue;
      acc[cv][cu] += g.edge_weight(e);
    }
  }
  for (std::int32_t c = 0; c < nc; ++c)
    cg.xadj[c + 1] = cg.xadj[c] + static_cast<std::int64_t>(acc[c].size());
  cg.adjncy.resize(static_cast<std::size_t>(cg.xadj[nc]));
  cg.ewgt.resize(cg.adjncy.size());
  for (std::int32_t c = 0; c < nc; ++c) {
    std::int64_t pos = cg.xadj[c];
    // Sorted neighbors keep the construction deterministic.
    std::vector<std::pair<std::int32_t, std::int64_t>> nb(acc[c].begin(),
                                                          acc[c].end());
    std::sort(nb.begin(), nb.end());
    for (const auto& [u, w] : nb) {
      cg.adjncy[static_cast<std::size_t>(pos)] = u;
      cg.ewgt[static_cast<std::size_t>(pos)] = w;
      ++pos;
    }
  }
  return lvl;
}

// ---------------------------------------------------------------------------
// Bisection state + FM refinement.
// ---------------------------------------------------------------------------

std::int64_t cut_of_sides(const Graph& g, const std::vector<std::int8_t>& side) {
  std::int64_t cut = 0;
  for (std::int32_t v = 0; v < g.num_vertices(); ++v)
    for (std::int64_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e)
      if (side[v] != side[g.adjncy[static_cast<std::size_t>(e)]])
        cut += g.edge_weight(e);
  return cut / 2;
}

/// One FM pass with rollback. `target0` is the desired weight of side 0;
/// side 1's target is total - target0. Balance-aware: the pass first drives
/// the balance violation to zero, then minimizes cut among feasible states
/// (best prefix ranked by (violation, cut)). Returns the cut after the pass.
std::int64_t fm_pass(const Graph& g, std::vector<std::int8_t>& side,
                     std::int64_t target0, double tol) {
  const std::int32_t nv = g.num_vertices();
  const std::int64_t total = g.total_vertex_weight();
  const std::int64_t target1 = total - target0;
  std::int64_t w0 = 0;
  for (std::int32_t v = 0; v < nv; ++v)
    if (side[v] == 0) w0 += g.vertex_weight(v);

  auto max_w = [&](int s) {
    const std::int64_t t = s == 0 ? target0 : target1;
    return static_cast<std::int64_t>(static_cast<double>(t) * tol);
  };
  auto violation = [&](std::int64_t w0_now) {
    return std::max<std::int64_t>(
        {0, w0_now - max_w(0), (total - w0_now) - max_w(1)});
  };

  // gain[v] = external - internal edge weight.
  std::vector<std::int64_t> gain(nv, 0);
  for (std::int32_t v = 0; v < nv; ++v)
    for (std::int64_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const std::int32_t u = g.adjncy[static_cast<std::size_t>(e)];
      gain[v] += (side[u] != side[v]) ? g.edge_weight(e) : -g.edge_weight(e);
    }

  using Entry = std::pair<std::int64_t, std::int32_t>;  // (gain, vertex)
  std::priority_queue<Entry> heap;
  for (std::int32_t v = 0; v < nv; ++v) heap.emplace(gain[v], v);

  std::vector<std::int8_t> locked(nv, 0);
  std::vector<std::int32_t> moved;
  moved.reserve(nv);

  std::int64_t cut = cut_of_sides(g, side);
  std::int64_t best_cut = cut;
  std::int64_t best_viol = violation(w0);
  std::size_t best_prefix = 0;

  while (!heap.empty()) {
    const auto [gv, v] = heap.top();
    heap.pop();
    if (locked[v] || gv != gain[v]) continue;  // stale entry
    const int from = side[v];
    const int to = 1 - from;
    const std::int64_t wv = g.vertex_weight(v);
    const std::int64_t new_w0 = w0 + ((to == 0) ? wv : -wv);
    const std::int64_t dest_w = (to == 0) ? new_w0 : total - new_w0;
    const std::int64_t cur_viol = violation(w0);
    // A move is admissible when it keeps the destination in balance, or when
    // the overall violation shrinks (escaping an infeasible start).
    if (dest_w > max_w(to) && violation(new_w0) >= cur_viol) continue;

    // Apply the move.
    locked[v] = 1;
    side[v] = static_cast<std::int8_t>(to);
    w0 = new_w0;
    cut -= gain[v];
    moved.push_back(v);
    for (std::int64_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const std::int32_t u = g.adjncy[static_cast<std::size_t>(e)];
      if (locked[u]) continue;
      const std::int64_t w = g.edge_weight(e);
      gain[u] += (side[u] == from) ? 2 * w : -2 * w;
      heap.emplace(gain[u], u);
    }
    const std::int64_t viol = violation(w0);
    if (viol < best_viol || (viol == best_viol && cut < best_cut)) {
      best_viol = viol;
      best_cut = cut;
      best_prefix = moved.size();
    }
  }

  // Roll back moves past the best prefix.
  for (std::size_t i = moved.size(); i > best_prefix; --i)
    side[moved[i - 1]] = static_cast<std::int8_t>(1 - side[moved[i - 1]]);
  return best_cut;
}

/// Greedy graph growing: BFS from a random seed, absorbing vertices until
/// side 0 reaches its target weight.
void grow_initial(const Graph& g, std::vector<std::int8_t>& side,
                  std::int64_t target0, Rng& rng) {
  const std::int32_t nv = g.num_vertices();
  std::fill(side.begin(), side.end(), std::int8_t{1});
  std::vector<std::int8_t> seen(nv, 0);
  std::queue<std::int32_t> frontier;
  const auto seed_v = static_cast<std::int32_t>(rng.uniform_index(nv));
  frontier.push(seed_v);
  seen[seed_v] = 1;
  std::int64_t w0 = 0;
  while (w0 < target0) {
    std::int32_t v;
    if (frontier.empty()) {
      // Disconnected remainder: restart from any unseen vertex.
      v = -1;
      for (std::int32_t u = 0; u < nv; ++u)
        if (!seen[u]) {
          v = u;
          seen[u] = 1;
          break;
        }
      if (v < 0) break;
    } else {
      v = frontier.front();
      frontier.pop();
    }
    const std::int64_t wv = g.vertex_weight(v);
    // Heavy vertex that would overshoot worse than stopping short: leave it
    // on side 1 (but keep exploring, lighter vertices may still fit).
    if (w0 > 0 && (w0 + wv - target0) > (target0 - w0)) {
      for (std::int64_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
        const std::int32_t u = g.adjncy[static_cast<std::size_t>(e)];
        if (!seen[u]) {
          seen[u] = 1;
          frontier.push(u);
        }
      }
      continue;
    }
    side[v] = 0;
    w0 += wv;
    for (std::int64_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
      const std::int32_t u = g.adjncy[static_cast<std::size_t>(e)];
      if (!seen[u]) {
        seen[u] = 1;
        frontier.push(u);
      }
    }
  }
}

/// Multilevel bisection of `g` targeting `target0` weight on side 0.
std::vector<std::int8_t> multilevel_bisect(const Graph& g, std::int64_t target0,
                                           const PartitionOptions& opt,
                                           Rng& rng) {
  // Coarsening phase.
  std::vector<CoarseLevel> levels;
  const Graph* cur = &g;
  while (cur->num_vertices() > opt.coarsen_to) {
    CoarseLevel lvl = coarsen_once(*cur, rng);
    // Stop if matching stagnates (e.g. star graphs).
    if (lvl.graph.num_vertices() > cur->num_vertices() * 9 / 10) break;
    levels.push_back(std::move(lvl));
    cur = &levels.back().graph;
  }

  // Initial bisection on the coarsest graph, best of several tries.
  const Graph& coarsest = *cur;
  std::vector<std::int8_t> best_side(coarsest.num_vertices(), 1);
  std::int64_t best_cut = std::numeric_limits<std::int64_t>::max();
  for (int attempt = 0; attempt < opt.initial_tries; ++attempt) {
    std::vector<std::int8_t> side(coarsest.num_vertices(), 1);
    grow_initial(coarsest, side, target0, rng);
    for (int p = 0; p < opt.refine_passes; ++p) {
      const std::int64_t before = cut_of_sides(coarsest, side);
      const std::int64_t after =
          fm_pass(coarsest, side, target0, opt.imbalance_tol);
      if (after >= before) break;
    }
    const std::int64_t cut = cut_of_sides(coarsest, side);
    if (cut < best_cut) {
      best_cut = cut;
      best_side = side;
    }
  }

  // Uncoarsening + refinement.
  std::vector<std::int8_t> side = std::move(best_side);
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const Graph& finer = (std::next(it) == levels.rend())
                             ? g
                             : std::next(it)->graph;
    std::vector<std::int8_t> fine_side(finer.num_vertices());
    for (std::int32_t v = 0; v < finer.num_vertices(); ++v)
      fine_side[v] = side[it->fine_to_coarse[v]];
    for (int p = 0; p < opt.refine_passes; ++p) {
      const std::int64_t before = cut_of_sides(finer, fine_side);
      const std::int64_t after =
          fm_pass(finer, fine_side, target0, opt.imbalance_tol);
      if (after >= before) break;
    }
    side = std::move(fine_side);
  }
  return side;
}

/// Extracts the subgraph induced by `vertices` (ids into `g`).
Graph subgraph(const Graph& g, const std::vector<std::int32_t>& vertices,
               std::vector<std::int32_t>& local_to_global) {
  std::unordered_map<std::int32_t, std::int32_t> global_to_local;
  global_to_local.reserve(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i)
    global_to_local.emplace(vertices[i], static_cast<std::int32_t>(i));
  local_to_global = vertices;

  Graph sg;
  const auto nv = static_cast<std::int32_t>(vertices.size());
  sg.xadj.assign(nv + 1, 0);
  sg.vwgt.resize(nv);
  for (std::int32_t i = 0; i < nv; ++i) {
    sg.vwgt[i] = g.vertex_weight(vertices[i]);
    for (std::int64_t e = g.xadj[vertices[i]]; e < g.xadj[vertices[i] + 1]; ++e)
      if (global_to_local.count(g.adjncy[static_cast<std::size_t>(e)]))
        ++sg.xadj[i + 1];
  }
  for (std::int32_t i = 0; i < nv; ++i) sg.xadj[i + 1] += sg.xadj[i];
  sg.adjncy.resize(static_cast<std::size_t>(sg.xadj[nv]));
  sg.ewgt.resize(sg.adjncy.size());
  std::vector<std::int64_t> cursor(sg.xadj.begin(), sg.xadj.end() - 1);
  for (std::int32_t i = 0; i < nv; ++i) {
    for (std::int64_t e = g.xadj[vertices[i]]; e < g.xadj[vertices[i] + 1]; ++e) {
      auto it = global_to_local.find(g.adjncy[static_cast<std::size_t>(e)]);
      if (it == global_to_local.end()) continue;
      sg.adjncy[static_cast<std::size_t>(cursor[i])] = it->second;
      sg.ewgt[static_cast<std::size_t>(cursor[i])] = g.edge_weight(e);
      ++cursor[i];
    }
  }
  return sg;
}

void part_recursive(const Graph& g, const std::vector<std::int32_t>& vertices,
                    int nparts, int part_offset,
                    const PartitionOptions& opt, std::uint64_t path,
                    std::vector<std::int32_t>& out) {
  if (nparts == 1) {
    for (std::int32_t v : vertices) out[v] = part_offset;
    return;
  }
  std::vector<std::int32_t> l2g;
  Graph sg = subgraph(g, vertices, l2g);

  // Degenerate: fewer vertices than parts — spread by weight, heaviest first.
  if (sg.num_vertices() <= nparts) {
    std::vector<std::int32_t> order(sg.num_vertices());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
      return sg.vertex_weight(a) > sg.vertex_weight(b);
    });
    for (std::size_t i = 0; i < order.size(); ++i)
      out[l2g[order[i]]] = part_offset + static_cast<int>(i % nparts);
    return;
  }

  const int k0 = nparts / 2;
  const int k1 = nparts - k0;
  const std::int64_t total = sg.total_vertex_weight();
  const std::int64_t target0 = total * k0 / nparts;

  Rng rng(opt.seed, path);
  const std::vector<std::int8_t> side = multilevel_bisect(sg, target0, opt, rng);

  std::vector<std::int32_t> set0, set1;
  for (std::int32_t v = 0; v < sg.num_vertices(); ++v)
    (side[v] == 0 ? set0 : set1).push_back(l2g[v]);
  // A pathological bisection (empty side) would loop forever; split evenly.
  if (set0.empty() || set1.empty()) {
    set0.clear();
    set1.clear();
    for (std::size_t i = 0; i < l2g.size(); ++i)
      (i % 2 == 0 ? set0 : set1).push_back(l2g[i]);
  }
  part_recursive(g, set0, k0, part_offset, opt, path * 2 + 1, out);
  part_recursive(g, set1, k1, part_offset + k0, opt, path * 2 + 2, out);
}

}  // namespace

PartitionResult part_graph_kway(const Graph& g, int nparts,
                                const PartitionOptions& options) {
  DSMCPIC_CHECK_MSG(nparts >= 1, "nparts must be positive");
  const std::int32_t nv = g.num_vertices();
  PartitionResult result;
  result.part.assign(nv, 0);
  if (nparts == 1 || nv == 0) {
    result.cut = 0;
    result.imbalance = 1.0;
    return result;
  }
  std::vector<std::int32_t> all(nv);
  std::iota(all.begin(), all.end(), 0);
  part_recursive(g, all, nparts, 0, options, 1, result.part);
  if (options.kway_refine_passes > 0)
    kway_refine(g, result.part, nparts, options.imbalance_tol,
                options.kway_refine_passes);
  result.cut = edge_cut(g, result.part);
  result.imbalance = imbalance(g, result.part, nparts);
  return result;
}

std::int64_t kway_refine(const Graph& g, std::vector<std::int32_t>& part,
                         int nparts, double imbalance_tol, int passes) {
  DSMCPIC_CHECK(static_cast<std::int32_t>(part.size()) == g.num_vertices());
  const std::int32_t nv = g.num_vertices();
  std::vector<std::int64_t> weight(nparts, 0);
  for (std::int32_t v = 0; v < nv; ++v) weight[part[v]] += g.vertex_weight(v);
  const std::int64_t max_w = static_cast<std::int64_t>(
      static_cast<double>(g.total_vertex_weight()) / nparts * imbalance_tol);

  std::int64_t total_gain = 0;
  std::vector<std::int64_t> conn(nparts, 0);  // edge weight to each part
  std::vector<int> touched;
  for (int pass = 0; pass < passes; ++pass) {
    std::int64_t pass_gain = 0;
    for (std::int32_t v = 0; v < nv; ++v) {
      // Connectivity of v to each adjacent part.
      touched.clear();
      for (std::int64_t e = g.xadj[v]; e < g.xadj[v + 1]; ++e) {
        const std::int32_t u = g.adjncy[static_cast<std::size_t>(e)];
        if (conn[part[u]] == 0) touched.push_back(part[u]);
        conn[part[u]] += g.edge_weight(e);
      }
      const int from = part[v];
      const std::int64_t wv = g.vertex_weight(v);
      int best = from;
      std::int64_t best_gain = 0;
      for (const int p : touched) {
        if (p == from) continue;
        const std::int64_t gain = conn[p] - conn[from];
        // Move only if it strictly reduces cut and keeps the target in
        // balance (or if the source part is overweight and the move is
        // cut-neutral).
        const bool balance_ok = weight[p] + wv <= max_w;
        const bool relieves = weight[from] > max_w && weight[p] + wv < weight[from];
        if (((gain > best_gain && balance_ok) ||
             (gain >= best_gain && relieves)) &&
            (balance_ok || relieves))
          best = p, best_gain = gain;
      }
      if (best != from) {
        weight[from] -= wv;
        weight[best] += wv;
        part[v] = best;
        pass_gain += best_gain;
      }
      for (const int p : touched) conn[p] = 0;
    }
    total_gain += pass_gain;
    if (pass_gain == 0) break;
  }
  return total_gain;
}

}  // namespace dsmcpic::partition
