#include "partition/geometric.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "support/error.hpp"

namespace dsmcpic::partition {

namespace {

/// Spreads the low 21 bits of v so consecutive bits are 3 apart.
std::uint64_t spread_bits_3(std::uint64_t v) {
  v &= 0x1fffff;  // 21 bits
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

std::uint64_t quantize(double x, double lo, double hi) {
  if (hi <= lo) return 0;
  const double t = std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
  return static_cast<std::uint64_t>(t * 2097151.0);  // 2^21 - 1
}

void bounding_box(std::span<const Vec3> pts, Vec3& lo, Vec3& hi) {
  DSMCPIC_CHECK(!pts.empty());
  lo = hi = pts[0];
  for (const auto& p : pts) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
}

double compute_imbalance(std::span<const std::int32_t> part,
                         std::span<const double> weights, int nparts) {
  std::vector<double> w(nparts, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < part.size(); ++i) {
    w[part[i]] += weights[i];
    total += weights[i];
  }
  const double ideal = total / nparts;
  return ideal > 0.0 ? *std::max_element(w.begin(), w.end()) / ideal : 1.0;
}

/// Greedy weight-balanced slicing of an ordered cell sequence.
std::vector<std::int32_t> slice_by_weight(std::span<const std::int32_t> order,
                                          std::span<const double> weights,
                                          int nparts) {
  double total = 0.0;
  for (const auto i : order) total += weights[i];
  std::vector<std::int32_t> part(order.size(), 0);
  double acc = 0.0;
  int current = 0;
  for (const auto i : order) {
    // Advance to the next part when this one has reached its quota.
    const double quota = total * (current + 1) / nparts;
    if (acc >= quota && current + 1 < nparts) ++current;
    part[i] = current;
    acc += weights[i];
  }
  return part;
}

}  // namespace

std::uint64_t morton_code(const Vec3& p, const Vec3& lo, const Vec3& hi) {
  return spread_bits_3(quantize(p.x, lo.x, hi.x)) |
         (spread_bits_3(quantize(p.y, lo.y, hi.y)) << 1) |
         (spread_bits_3(quantize(p.z, lo.z, hi.z)) << 2);
}

GeometricResult morton_partition(std::span<const Vec3> centroids,
                                 std::span<const double> weights, int nparts) {
  DSMCPIC_CHECK(centroids.size() == weights.size());
  DSMCPIC_CHECK(nparts >= 1);
  DSMCPIC_CHECK(!centroids.empty());

  Vec3 lo, hi;
  bounding_box(centroids, lo, hi);
  std::vector<std::uint64_t> code(centroids.size());
  for (std::size_t i = 0; i < centroids.size(); ++i)
    code[i] = morton_code(centroids[i], lo, hi);

  std::vector<std::int32_t> order(centroids.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&code](std::int32_t a, std::int32_t b) {
    return code[a] != code[b] ? code[a] < code[b] : a < b;
  });

  GeometricResult r;
  r.part = slice_by_weight(order, weights, nparts);
  r.imbalance = compute_imbalance(r.part, weights, nparts);
  return r;
}

GeometricResult octree_partition(std::span<const Vec3> centroids,
                                 std::span<const double> weights, int nparts,
                                 const OctreeOptions& options) {
  DSMCPIC_CHECK(centroids.size() == weights.size());
  DSMCPIC_CHECK(nparts >= 1);
  DSMCPIC_CHECK(!centroids.empty());
  DSMCPIC_CHECK(options.resolution > 0.0);

  double total = 0.0;
  for (const double w : weights) total += w;
  const double leaf_target =
      total / (static_cast<double>(nparts) * options.resolution);

  Vec3 root_lo, root_hi;
  bounding_box(centroids, root_lo, root_hi);

  // Recursive octant refinement; leaves emit their cells in octant order,
  // which is exactly Morton order — the octree structure decides the
  // granularity, the greedy packer the assignment (as in CHAOS).
  std::vector<std::int32_t> order;
  order.reserve(centroids.size());

  struct Frame {
    std::vector<std::int32_t> cells;
    Vec3 lo, hi;
    int depth;
  };
  std::vector<Frame> stack;
  {
    Frame root;
    root.cells.resize(centroids.size());
    std::iota(root.cells.begin(), root.cells.end(), 0);
    root.lo = root_lo;
    root.hi = root_hi;
    root.depth = 0;
    stack.push_back(std::move(root));
  }
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    double w = 0.0;
    for (const auto c : f.cells) w += weights[c];
    if (w <= leaf_target || f.depth >= options.max_depth ||
        f.cells.size() <= 1) {
      // Leaf: emit cells (deterministic order by index).
      std::sort(f.cells.begin(), f.cells.end());
      order.insert(order.end(), f.cells.begin(), f.cells.end());
      continue;
    }
    const Vec3 mid = (f.lo + f.hi) * 0.5;
    std::array<Frame, 8> kids;
    for (int k = 0; k < 8; ++k) {
      kids[k].lo = {(k & 1) ? mid.x : f.lo.x, (k & 2) ? mid.y : f.lo.y,
                    (k & 4) ? mid.z : f.lo.z};
      kids[k].hi = {(k & 1) ? f.hi.x : mid.x, (k & 2) ? f.hi.y : mid.y,
                    (k & 4) ? f.hi.z : mid.z};
      kids[k].depth = f.depth + 1;
    }
    for (const auto c : f.cells) {
      const Vec3& p = centroids[c];
      const int k = (p.x >= mid.x ? 1 : 0) | (p.y >= mid.y ? 2 : 0) |
                    (p.z >= mid.z ? 4 : 0);
      kids[k].cells.push_back(c);
    }
    // Push in reverse so octant 0 is processed first (stack order).
    for (int k = 7; k >= 0; --k)
      if (!kids[k].cells.empty()) stack.push_back(std::move(kids[k]));
  }
  DSMCPIC_CHECK(order.size() == centroids.size());

  GeometricResult r;
  r.part = slice_by_weight(order, weights, nparts);
  r.imbalance = compute_imbalance(r.part, weights, nparts);
  return r;
}

}  // namespace dsmcpic::partition
