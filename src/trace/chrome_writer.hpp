#pragma once
// Chrome/Perfetto trace JSON emission (chrome://tracing "Trace Event
// Format"). Two layers:
//
//   * ChromeTraceWriter — a low-level streaming emitter for trace events
//     with proper JSON string escaping and shortest-round-trip number
//     formatting. Shared by the trace exporter below and by
//     core::PhaseTimeline::write_chrome_trace.
//   * write_chrome_trace(TraceRecorder) — the full exporter: one lane
//     (tid) per virtual rank, "X" spans for compute/comm/wait/sync
//     segments, "s"/"f" flow arrows for routed messages, "i" instants,
//     and "C" counter tracks from the metrics registry.
//
// Output is deterministic: identical recorder contents produce identical
// bytes, which the trace determinism test relies on.

#include <iosfwd>
#include <string>
#include <string_view>

namespace dsmcpic::trace {

class TraceRecorder;

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string escape_json(std::string_view s);

/// Shortest representation that round-trips the double (std::to_chars).
std::string format_double(double v);

class ChromeTraceWriter {
 public:
  enum class Style {
    kArray,   // bare [...] — what PhaseTimeline historically emitted
    kObject,  // {"traceEvents": [...]} — preferred by Perfetto
  };

  /// Starts the event stream on `os`; finish() (or destruction) closes it.
  ChromeTraceWriter(std::ostream& os, Style style);
  ~ChromeTraceWriter();

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  /// "X" complete event. `args_json` is a raw JSON object ("{...}") or
  /// empty for no args; names are escaped by the writer.
  void complete(std::string_view name, std::string_view cat, double ts_us,
                double dur_us, int pid, int tid,
                std::string_view args_json = {});
  /// "M" metadata event (process_name / thread_name / thread_sort_index).
  void metadata(std::string_view name, int pid, int tid,
                std::string_view args_json);
  /// "i" instant event; scope "g" = global, "t" = thread.
  void instant(std::string_view name, std::string_view cat, double ts_us,
               int pid, int tid, char scope);
  /// "s" / "f" flow events binding an arrow from src slice to dst slice.
  void flow_start(std::string_view name, std::string_view cat, double ts_us,
                  int pid, int tid, std::uint64_t id);
  void flow_end(std::string_view name, std::string_view cat, double ts_us,
                int pid, int tid, std::uint64_t id);
  /// "C" counter event with a single series named `series`.
  void counter(std::string_view name, double ts_us, int pid,
               std::string_view series, double value);

  /// Closes the JSON document. Idempotent.
  void finish();

 private:
  void begin_event();

  std::ostream& os_;
  Style style_;
  bool first_ = true;
  bool finished_ = false;
};

/// Full trace export; see file comment. Throws dsmcpic::Error when the
/// file cannot be opened.
void write_chrome_trace(const TraceRecorder& rec, std::ostream& os);
void write_chrome_trace(const TraceRecorder& rec, const std::string& path);

}  // namespace dsmcpic::trace
