#include "trace/metrics.hpp"

#include <fstream>
#include <ostream>

#include "support/error.hpp"
#include "trace/chrome_writer.hpp"

namespace dsmcpic::trace {

int MetricsRegistry::intern(const std::string& name) {
  auto [it, inserted] = ids_.try_emplace(name, static_cast<int>(names_.size()));
  if (inserted) names_.push_back(name);
  return it->second;
}

void MetricsRegistry::add(const std::string& name, std::int64_t step, int rank,
                          double value, double t) {
  samples_.push_back(CounterSample{intern(name), step, rank, value, t});
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "step,counter,rank,value,virtual_time\n";
  for (const CounterSample& s : samples_) {
    os << s.step << "," << names_[s.key] << "," << s.rank << ","
       << format_double(s.value) << "," << format_double(s.t) << "\n";
  }
}

void MetricsRegistry::write_csv(const std::string& path) const {
  std::ofstream os(path);
  DSMCPIC_CHECK_MSG(os.good(), "cannot open " << path);
  write_csv(os);
}

}  // namespace dsmcpic::trace
