#include "trace/recorder.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dsmcpic::trace {

const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kCompute: return "compute";
    case SpanKind::kComm: return "comm";
    case SpanKind::kWait: return "wait";
    case SpanKind::kSync: return "sync";
  }
  return "?";
}

TraceRecorder::TraceRecorder(int nranks) : nranks_(nranks) {
  DSMCPIC_CHECK_MSG(nranks >= 1, "recorder needs at least one rank");
}

namespace {
int intern_into(std::map<std::string, int>& ids, std::vector<std::string>& names,
                const std::string& name) {
  auto [it, inserted] = ids.try_emplace(name, static_cast<int>(names.size()));
  if (inserted) names.push_back(name);
  return it->second;
}
}  // namespace

int TraceRecorder::intern_phase(const std::string& name) {
  return intern_into(phase_ids_, phase_names_, name);
}

int TraceRecorder::intern_key(const std::string& name) {
  return intern_into(key_ids_, key_names_, name);
}

void TraceRecorder::add_span(Span s) {
  DSMCPIC_CHECK(s.rank >= 0 && s.rank < nranks_);
  DSMCPIC_CHECK(s.phase >= 0 &&
                s.phase < static_cast<int>(phase_names_.size()));
  end_time_ = std::max(end_time_, s.t1);
  spans_.push_back(std::move(s));
}

void TraceRecorder::add_message(MessageRec m) {
  DSMCPIC_CHECK(m.src >= 0 && m.src < nranks_ && m.dst >= 0 &&
                m.dst < nranks_);
  end_time_ = std::max({end_time_, m.send_end, m.recv_end});
  messages_.push_back(std::move(m));
}

void TraceRecorder::add_sync(SyncRec s) {
  DSMCPIC_CHECK(static_cast<int>(s.arrive.size()) == nranks_);
  DSMCPIC_CHECK(s.argmax_rank >= 0 && s.argmax_rank < nranks_);
  end_time_ = std::max(end_time_, s.t_end);
  syncs_.push_back(std::move(s));
}

void TraceRecorder::add_instant(int rank, std::string name, double t) {
  DSMCPIC_CHECK(rank >= -1 && rank < nranks_);
  end_time_ = std::max(end_time_, t);
  instants_.push_back(Instant{rank, t, std::move(name)});
}

}  // namespace dsmcpic::trace
