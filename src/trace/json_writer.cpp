#include "trace/json_writer.hpp"

#include <ostream>
#include <string>

#include "support/error.hpp"
#include "trace/chrome_writer.hpp"

namespace dsmcpic::trace {

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

JsonWriter::~JsonWriter() { finish(); }

void JsonWriter::newline_indent() {
  os_ << "\n";
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::pre_value() {
  if (stack_.empty()) return;  // top-level value
  Scope& top = stack_.back();
  if (key_pending_) {
    key_pending_ = false;
    return;  // "key": already emitted the separator
  }
  DSMCPIC_CHECK_MSG(top.array, "JSON object value requires a key() first");
  if (!top.first) os_ << ",";
  top.first = false;
  newline_indent();
}

void JsonWriter::begin_object() {
  pre_value();
  os_ << "{";
  stack_.push_back(Scope{/*array=*/false, /*first=*/true});
}

void JsonWriter::end_object() {
  DSMCPIC_CHECK_MSG(!stack_.empty() && !stack_.back().array,
                    "end_object outside an object");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  os_ << "}";
}

void JsonWriter::begin_array() {
  pre_value();
  os_ << "[";
  stack_.push_back(Scope{/*array=*/true, /*first=*/true});
}

void JsonWriter::end_array() {
  DSMCPIC_CHECK_MSG(!stack_.empty() && stack_.back().array,
                    "end_array outside an array");
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline_indent();
  os_ << "]";
}

void JsonWriter::key(std::string_view k) {
  DSMCPIC_CHECK_MSG(!stack_.empty() && !stack_.back().array,
                    "key() outside an object");
  DSMCPIC_CHECK_MSG(!key_pending_, "two keys in a row");
  Scope& top = stack_.back();
  if (!top.first) os_ << ",";
  top.first = false;
  newline_indent();
  os_ << "\"" << escape_json(k) << "\": ";
  key_pending_ = true;
}

void JsonWriter::value(std::string_view s) {
  pre_value();
  os_ << "\"" << escape_json(s) << "\"";
}

void JsonWriter::value(double v) {
  pre_value();
  os_ << format_double(v);
}

void JsonWriter::value(std::int64_t v) {
  pre_value();
  os_ << std::to_string(v);
}

void JsonWriter::value(std::uint64_t v) {
  pre_value();
  os_ << std::to_string(v);
}

void JsonWriter::value(bool v) {
  pre_value();
  os_ << (v ? "true" : "false");
}

void JsonWriter::finish() {
  if (finished_) return;
  finished_ = true;
  while (!stack_.empty()) {
    if (key_pending_) {  // dangling key: complete the document legally
      key_pending_ = false;
      os_ << "null";
    }
    if (stack_.back().array)
      end_array();
    else
      end_object();
  }
  os_ << "\n";
}

}  // namespace dsmcpic::trace
