#pragma once
// Generic streaming JSON document writer built on the same deterministic
// primitives as the Chrome trace exporter (escape_json for strings,
// format_double for shortest-round-trip numbers). Emits pretty-printed,
// key-ordered-as-written documents: identical inputs produce identical
// bytes, which the run-report shape checks rely on.
//
// Usage is push-style with explicit structure:
//
//   JsonWriter w(os);
//   w.begin_object();
//     w.kv("schema", "dsmcpic.run_report.v1");
//     w.key("kernels"); w.begin_array(); ... w.end_array();
//   w.end_object();   // or let the destructor close open scopes
//
// Misuse (value without a key inside an object, key inside an array) is
// caught by DSMCPIC_CHECK.

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace dsmcpic::trace {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os);
  /// Closes any scopes still open (so a throw mid-document still leaves
  /// parseable JSON behind).
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next value; must be inside an object.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);

  /// key + value in one call.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// Closes every open scope. Idempotent; called by the destructor.
  void finish();

 private:
  struct Scope {
    bool array = false;
    bool first = true;
  };

  void pre_value();  // separator + indentation bookkeeping
  void newline_indent();

  std::ostream& os_;
  std::vector<Scope> stack_;
  bool key_pending_ = false;
  bool finished_ = false;
};

}  // namespace dsmcpic::trace
