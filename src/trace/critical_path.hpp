#pragma once
// Offline critical-path analysis over a recorded trace (DESIGN.md §2e).
//
// The trace is a DAG: per-rank chains of busy segments (compute spans,
// routing rounds, collective costs), wait edges at synchronizing
// collectives (every straggler depends on the slowest rank), and message
// edges for routed point-to-point traffic. In the virtual machine the
// *binding* cross-rank dependencies are the sync alignments — a rank's
// clock only moves through its own charges and through alignment to the
// round maximum — so the analyzer walks backward from the rank that bounds
// end-to-end virtual time, following each wait edge to the rank that was
// waited for. The result is the chain of (rank, phase) segments that a
// perfect optimizer of everything *off* the chain could not shorten: the
// answer to "why did this configuration win".
//
// Wait time itself never lies on the chain (the gating rank does not
// wait); it is reported as per-rank / per-phase aggregates instead, which
// is the paper's per-rank wait-time view (Figs. 5, 9).

#include <iosfwd>
#include <map>
#include <utility>
#include <vector>

#include "trace/events.hpp"

namespace dsmcpic::trace {

class TraceRecorder;

/// One chain link, chronological. phase == -1 marks untracked time (clock
/// movement the recorder did not see; should be ~0).
struct PathSegment {
  int rank = -1;
  int phase = -1;
  SpanKind kind = SpanKind::kCompute;
  double t0 = 0.0, t1 = 0.0;

  double duration() const { return t1 - t0; }
};

struct CriticalPathResult {
  double end_time = 0.0;            // end-to-end virtual time
  std::vector<PathSegment> chain;   // chronological, adjacent-merged

  // Attribution of the chain, indexed by recorder phase id.
  std::vector<double> compute_by_phase;
  std::vector<double> comm_by_phase;  // routing + collective cost
  std::vector<double> path_by_rank;   // chain seconds spent on each rank
  std::map<std::pair<int, int>, double> compute_by_rank_phase;  // (rank,phase)
  double path_compute = 0.0;
  double path_comm = 0.0;
  double untracked = 0.0;

  // Aggregate wait statistics over ALL ranks (off-chain symptom view).
  std::vector<double> wait_by_rank;
  std::vector<double> wait_by_phase;
  double total_wait = 0.0;
};

class CriticalPathAnalyzer {
 public:
  explicit CriticalPathAnalyzer(const TraceRecorder& rec) : rec_(rec) {}

  CriticalPathResult analyze() const;

  /// Per-rank wait seconds from syncs whose aligned time falls in
  /// [t_begin, t_end) — e.g. to compare before/after a rebalance instant.
  std::vector<double> wait_in_window(double t_begin, double t_end) const;

  /// Human-readable report (phase attribution table, per-rank path and
  /// wait shares, top chain segments).
  void print(const CriticalPathResult& r, std::ostream& os) const;

 private:
  const TraceRecorder& rec_;
};

}  // namespace dsmcpic::trace
