#include "trace/chrome_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "trace/recorder.hpp"

namespace dsmcpic::trace {

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  DSMCPIC_CHECK(ec == std::errc{});
  return std::string(buf, ptr);
}

// ---- ChromeTraceWriter ------------------------------------------------------

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os, Style style)
    : os_(os), style_(style) {
  if (style_ == Style::kObject)
    os_ << "{\"traceEvents\": [";
  else
    os_ << "[";
}

ChromeTraceWriter::~ChromeTraceWriter() { finish(); }

void ChromeTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  os_ << "\n]";
  if (style_ == Style::kObject) os_ << "}";
  os_ << "\n";
}

void ChromeTraceWriter::begin_event() {
  DSMCPIC_CHECK_MSG(!finished_, "event after finish()");
  if (!first_) os_ << ",";
  first_ = false;
  os_ << "\n  ";
}

void ChromeTraceWriter::complete(std::string_view name, std::string_view cat,
                                 double ts_us, double dur_us, int pid, int tid,
                                 std::string_view args_json) {
  begin_event();
  os_ << "{\"name\": \"" << escape_json(name) << "\", \"cat\": \""
      << escape_json(cat) << "\", \"ph\": \"X\", \"ts\": " << format_double(ts_us)
      << ", \"dur\": " << format_double(dur_us) << ", \"pid\": " << pid
      << ", \"tid\": " << tid;
  if (!args_json.empty()) os_ << ", \"args\": " << args_json;
  os_ << "}";
}

void ChromeTraceWriter::metadata(std::string_view name, int pid, int tid,
                                 std::string_view args_json) {
  begin_event();
  os_ << "{\"name\": \"" << escape_json(name)
      << "\", \"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
      << ", \"args\": " << args_json << "}";
}

void ChromeTraceWriter::instant(std::string_view name, std::string_view cat,
                                double ts_us, int pid, int tid, char scope) {
  begin_event();
  os_ << "{\"name\": \"" << escape_json(name) << "\", \"cat\": \""
      << escape_json(cat) << "\", \"ph\": \"i\", \"ts\": "
      << format_double(ts_us) << ", \"pid\": " << pid << ", \"tid\": " << tid
      << ", \"s\": \"" << scope << "\"}";
}

void ChromeTraceWriter::flow_start(std::string_view name, std::string_view cat,
                                   double ts_us, int pid, int tid,
                                   std::uint64_t id) {
  begin_event();
  os_ << "{\"name\": \"" << escape_json(name) << "\", \"cat\": \""
      << escape_json(cat) << "\", \"ph\": \"s\", \"id\": " << id
      << ", \"ts\": " << format_double(ts_us) << ", \"pid\": " << pid
      << ", \"tid\": " << tid << "}";
}

void ChromeTraceWriter::flow_end(std::string_view name, std::string_view cat,
                                 double ts_us, int pid, int tid,
                                 std::uint64_t id) {
  begin_event();
  os_ << "{\"name\": \"" << escape_json(name) << "\", \"cat\": \""
      << escape_json(cat) << "\", \"ph\": \"f\", \"bp\": \"e\", \"id\": " << id
      << ", \"ts\": " << format_double(ts_us) << ", \"pid\": " << pid
      << ", \"tid\": " << tid << "}";
}

void ChromeTraceWriter::counter(std::string_view name, double ts_us, int pid,
                                std::string_view series, double value) {
  begin_event();
  os_ << "{\"name\": \"" << escape_json(name)
      << "\", \"ph\": \"C\", \"ts\": " << format_double(ts_us)
      << ", \"pid\": " << pid << ", \"args\": {\"" << escape_json(series)
      << "\": " << format_double(value) << "}}";
}

// ---- full exporter ----------------------------------------------------------

namespace {

constexpr double kUs = 1e6;  // virtual seconds -> trace microseconds

std::string span_args(const TraceRecorder& rec, const Span& s) {
  std::ostringstream os;
  os << "{\"seq\": " << s.seq;
  if (!s.work.empty()) {
    os << ", \"work\": {";
    bool first = true;
    for (const WorkItem& w : s.work) {
      if (!first) os << ", ";
      first = false;
      os << "\"" << escape_json(rec.key_name(w.key))
         << "\": " << format_double(w.units);
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace

void write_chrome_trace(const TraceRecorder& rec, std::ostream& os) {
  ChromeTraceWriter w(os, ChromeTraceWriter::Style::kObject);

  w.metadata("process_name", 0, 0, "{\"name\": \"virtual machine\"}");
  for (int r = 0; r < rec.nranks(); ++r) {
    std::ostringstream name;
    name << "{\"name\": \"rank " << r << "\"}";
    w.metadata("thread_name", 0, r, name.str());
    std::ostringstream sort;
    sort << "{\"sort_index\": " << r << "}";
    w.metadata("thread_sort_index", 0, r, sort.str());
  }

  for (const Span& s : rec.spans()) {
    w.complete(rec.phase_name(s.phase), span_kind_name(s.kind), s.t0 * kUs,
               (s.t1 - s.t0) * kUs, 0, s.rank, span_args(rec, s));
  }

  // Synchronizing collectives: a wait slice per straggling rank up to the
  // aligned time, then the collective's own cost on every rank.
  for (const SyncRec& s : rec.syncs()) {
    std::ostringstream args;
    args << "{\"seq\": " << s.seq << ", \"argmax_rank\": " << s.argmax_rank
         << "}";
    for (int r = 0; r < rec.nranks(); ++r) {
      if (s.arrive[r] < s.t_max)
        w.complete(rec.phase_name(s.phase), "wait", s.arrive[r] * kUs,
                   (s.t_max - s.arrive[r]) * kUs, 0, r, args.str());
      if (s.t_end > s.t_max)
        w.complete(rec.phase_name(s.phase), "sync", s.t_max * kUs,
                   (s.t_end - s.t_max) * kUs, 0, r, args.str());
    }
  }

  // Message flow arrows: transfer start on the sender's lane, delivery on
  // the receiver's.
  std::uint64_t flow_id = 0;
  for (const MessageRec& m : rec.messages()) {
    std::ostringstream name;
    name << rec.phase_name(m.phase) << " tag " << m.tag << " (" << m.bytes
         << " B)";
    w.flow_start(name.str(), "msg", m.send_begin * kUs, 0, m.src, flow_id);
    w.flow_end(name.str(), "msg", m.recv_end * kUs, 0, m.dst, flow_id);
    ++flow_id;
  }

  for (const Instant& i : rec.instants()) {
    w.instant(i.name, "event", i.t * kUs, 0, i.rank < 0 ? 0 : i.rank,
              i.rank < 0 ? 'g' : 't');
  }

  for (const CounterSample& c : rec.metrics().samples()) {
    std::string name = rec.metrics().name_of(c.key);
    if (c.rank >= 0) name += "/rank" + std::to_string(c.rank);
    w.counter(name, c.t * kUs, 0, "value", c.value);
  }

  w.finish();
}

void write_chrome_trace(const TraceRecorder& rec, const std::string& path) {
  std::ofstream os(path);
  DSMCPIC_CHECK_MSG(os.good(), "cannot open " << path);
  write_chrome_trace(rec, os);
}

}  // namespace dsmcpic::trace
