#pragma once
// Lightweight counter/metrics registry of the tracing subsystem: per-step
// scalar samples (particles owned, cells owned, bytes migrated, the load
// imbalance indicator, ...) keyed by an interned counter name and an
// optional rank (-1 = global). Samples carry both the DSMC step and the
// virtual time at which they were taken, so they can be plotted against
// either axis. Exported as CSV (write_csv) and as Chrome counter tracks
// (chrome_writer).

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace dsmcpic::trace {

struct CounterSample {
  int key = -1;             // interned counter name
  std::int64_t step = 0;    // DSMC step index
  int rank = -1;            // -1 = global
  double value = 0.0;
  double t = 0.0;           // virtual seconds when sampled
};

class MetricsRegistry {
 public:
  /// Returns the id for `name`, registering it on first use.
  int intern(const std::string& name);

  void add(const std::string& name, std::int64_t step, int rank, double value,
           double t);

  const std::vector<std::string>& names() const { return names_; }
  const std::vector<CounterSample>& samples() const { return samples_; }
  const std::string& name_of(int key) const { return names_.at(key); }

  /// step,counter,rank,value,virtual_time — one row per sample, in
  /// recording order.
  void write_csv(std::ostream& os) const;
  void write_csv(const std::string& path) const;

 private:
  std::map<std::string, int> ids_;
  std::vector<std::string> names_;
  std::vector<CounterSample> samples_;
};

}  // namespace dsmcpic::trace
