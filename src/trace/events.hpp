#pragma once
// Event vocabulary of the tracing subsystem (DESIGN.md §2e).
//
// Everything is stamped with *virtual* time — the deterministic per-rank
// clocks of par::Runtime — so a trace is an exact record of the simulated
// machine, not a noisy wall-clock profile. The runtime emits these records
// from the driver thread only; worker threads never touch the recorder,
// which is what makes traces bit-identical across ExecMode / kernel-thread
// settings.
//
// Phase and work-kind/counter names are interned by the TraceRecorder into
// small integer ids (`phase`, `key`) to keep per-event storage flat.

#include <cstdint>
#include <string>
#include <vector>

namespace dsmcpic::trace {

enum class SpanKind : std::uint8_t {
  kCompute,  // superstep body (rank-local work charges)
  kComm,     // point-to-point routing round (NIC serialization + transfers)
  kWait,     // idle until the slowest rank arrived at a synchronizing op
  kSync,     // the collective's own cost after alignment (tree/ring terms)
};

const char* span_kind_name(SpanKind k);

/// One work-counter contribution attached to a compute span.
struct WorkItem {
  int key = -1;       // interned work-kind name
  double units = 0.0; // units charged during the span (pre-scale)
};

/// A contiguous interval on one rank's virtual clock.
struct Span {
  int rank = -1;
  int phase = -1;  // interned phase name
  SpanKind kind = SpanKind::kCompute;
  double t0 = 0.0, t1 = 0.0;  // virtual seconds
  std::uint32_t seq = 0;      // originating superstep/collective sequence
  std::vector<WorkItem> work; // nonzero work counters (compute spans only)
};

/// One routed point-to-point message: the flow edge of the trace DAG.
/// send/recv intervals bracket the per-endpoint transfer charge applied
/// during the routing round (rendezvous: both endpoints pay).
struct MessageRec {
  int src = -1, dst = -1, tag = 0;
  std::uint64_t bytes = 0;    // raw payload bytes
  double scaled_bytes = 0.0;  // cost-model bytes (payload x cost-class scale)
  double send_begin = 0.0, send_end = 0.0;  // on src's clock
  double recv_begin = 0.0, recv_end = 0.0;  // on dst's clock
  int phase = -1;
  std::uint32_t seq = 0;
};

/// A synchronizing collective: all clocks align to `t_max` (the wait edge
/// of the trace DAG) and then advance together to `t_end` by the
/// collective's modelled cost. `argmax_rank` is the first rank whose clock
/// equalled the maximum — the rank the others waited for.
struct SyncRec {
  int phase = -1;
  std::uint32_t seq = 0;
  double t_max = 0.0;
  double t_end = 0.0;
  int argmax_rank = 0;
  std::vector<double> arrive;  // per-rank clock on entry
};

/// A point event (rebalance decision, step marker, ...). rank -1 = global.
struct Instant {
  int rank = -1;
  double t = 0.0;
  std::string name;
};

}  // namespace dsmcpic::trace
