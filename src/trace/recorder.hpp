#pragma once
// TraceRecorder — the in-memory sink for the tracing subsystem
// (DESIGN.md §2e). par::Runtime calls the add_* hooks from the driver
// thread (never from superstep worker threads), so recording needs no
// locks and a trace is bit-identical for every ExecMode / kernel-thread
// combination. Recording is pure observation: it never advances a clock,
// touches a message payload, or draws a random number, so a trace-enabled
// run is bit-identical to a trace-disabled one.
//
// Exporters (chrome_writer, metrics CSV) and the offline
// CriticalPathAnalyzer consume the recorder read-only after the run.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/events.hpp"
#include "trace/metrics.hpp"

namespace dsmcpic::trace {

class TraceRecorder {
 public:
  explicit TraceRecorder(int nranks);

  int nranks() const { return nranks_; }

  // ---- name interning -----------------------------------------------------
  int intern_phase(const std::string& name);
  int intern_key(const std::string& name);  // work-kind names
  const std::vector<std::string>& phase_names() const { return phase_names_; }
  const std::vector<std::string>& key_names() const { return key_names_; }
  const std::string& phase_name(int id) const { return phase_names_.at(id); }
  const std::string& key_name(int id) const { return key_names_.at(id); }

  /// Monotonic sequence shared by supersteps and collectives; ties trace
  /// records of one routing round / sync together.
  std::uint32_t next_seq() { return seq_++; }

  // ---- recording hooks (driver thread only) -------------------------------
  void add_span(Span s);
  void add_message(MessageRec m);
  void add_sync(SyncRec s);
  void add_instant(int rank, std::string name, double t);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // ---- read-only access ---------------------------------------------------
  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<MessageRec>& messages() const { return messages_; }
  const std::vector<SyncRec>& syncs() const { return syncs_; }
  const std::vector<Instant>& instants() const { return instants_; }

  /// Latest virtual time covered by any record (0 when empty).
  double end_time() const { return end_time_; }

 private:
  int nranks_;
  std::uint32_t seq_ = 0;

  std::map<std::string, int> phase_ids_;
  std::vector<std::string> phase_names_;
  std::map<std::string, int> key_ids_;
  std::vector<std::string> key_names_;

  std::vector<Span> spans_;
  std::vector<MessageRec> messages_;
  std::vector<SyncRec> syncs_;
  std::vector<Instant> instants_;
  MetricsRegistry metrics_;
  double end_time_ = 0.0;
};

}  // namespace dsmcpic::trace
