#include "trace/critical_path.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "support/error.hpp"
#include "trace/chrome_writer.hpp"
#include "trace/recorder.hpp"

namespace dsmcpic::trace {

namespace {

// Internal walk segment: busy spans plus per-sync derived wait/cost slices.
struct Seg {
  double t0 = 0.0, t1 = 0.0;
  int phase = -1;
  SpanKind kind = SpanKind::kCompute;
  int sync = -1;  // index into recorder syncs for kWait
  std::uint32_t seq = 0;
};

}  // namespace

CriticalPathResult CriticalPathAnalyzer::analyze() const {
  const int n = rec_.nranks();
  const std::size_t nphases = rec_.phase_names().size();
  CriticalPathResult res;
  res.compute_by_phase.assign(nphases, 0.0);
  res.comm_by_phase.assign(nphases, 0.0);
  res.path_by_rank.assign(n, 0.0);
  res.wait_by_rank.assign(n, 0.0);
  res.wait_by_phase.assign(nphases, 0.0);

  // ---- per-rank segment timelines ---------------------------------------
  std::vector<std::vector<Seg>> segs(n);
  for (const Span& s : rec_.spans())
    if (s.t1 > s.t0)
      segs[s.rank].push_back(Seg{s.t0, s.t1, s.phase, s.kind, -1, s.seq});
  const auto& syncs = rec_.syncs();
  for (std::size_t i = 0; i < syncs.size(); ++i) {
    const SyncRec& s = syncs[i];
    for (int r = 0; r < n; ++r) {
      const double wait = s.t_max - s.arrive[r];
      if (wait > 0.0) {
        segs[r].push_back(Seg{s.arrive[r], s.t_max, s.phase, SpanKind::kWait,
                              static_cast<int>(i), s.seq});
        res.wait_by_rank[r] += wait;
        res.wait_by_phase[s.phase] += wait;
        res.total_wait += wait;
      }
      if (s.t_end > s.t_max)
        segs[r].push_back(
            Seg{s.t_max, s.t_end, s.phase, SpanKind::kSync, -1, s.seq});
    }
  }
  for (auto& v : segs)
    std::sort(v.begin(), v.end(), [](const Seg& a, const Seg& b) {
      return a.t1 != b.t1 ? a.t1 < b.t1 : a.seq < b.seq;
    });

  // ---- start at the rank bounding end-to-end time -----------------------
  double end_time = 0.0;
  int cur_rank = -1;
  for (int r = 0; r < n; ++r) {
    if (segs[r].empty()) continue;
    const double t = segs[r].back().t1;
    if (t > end_time) {
      end_time = t;
      cur_rank = r;
    }
  }
  res.end_time = end_time;
  if (cur_rank < 0) return res;  // empty trace
  const double eps = 1e-9 * std::max(1.0, end_time);

  // ---- backward walk ----------------------------------------------------
  // Per-rank cursors move monotonically backward, so every segment is
  // visited at most once and the walk always terminates.
  std::vector<int> hi(n);
  for (int r = 0; r < n; ++r) hi[r] = static_cast<int>(segs[r].size()) - 1;

  std::vector<PathSegment> rev;
  double cur_t = end_time;
  while (cur_t > eps) {
    std::vector<Seg>& v = segs[cur_rank];
    int& h = hi[cur_rank];
    while (h >= 0 && v[h].t1 > cur_t + eps) --h;
    if (h < 0) {
      // Clock start reached with time left over: charges from before the
      // recorder was attached (e.g. constructor-time Init). Keep the
      // identity compute + comm + untracked == end_time honest.
      rev.push_back(PathSegment{cur_rank, -1, SpanKind::kWait, 0.0, cur_t});
      res.untracked += cur_t;
      break;
    }
    const Seg seg = v[h];
    if (seg.t1 < cur_t - eps) {
      // Gap the recorder did not cover (e.g. tracing attached mid-run).
      rev.push_back(PathSegment{cur_rank, -1, SpanKind::kWait, seg.t1, cur_t});
      res.untracked += cur_t - seg.t1;
      cur_t = seg.t1;
    }
    if (seg.kind == SpanKind::kWait) {
      // The chain leaves this rank: it was idle until `argmax_rank`
      // arrived, so the bounding work lives there.
      --h;
      const SyncRec& s = syncs[seg.sync];
      cur_rank = s.argmax_rank;
      cur_t = std::min(cur_t, s.t_max);
      continue;
    }
    rev.push_back(PathSegment{cur_rank, seg.phase, seg.kind, seg.t0,
                              std::min(seg.t1, cur_t)});
    cur_t = seg.t0;
    --h;
  }

  // ---- chronological chain with adjacent merge --------------------------
  std::reverse(rev.begin(), rev.end());
  for (const PathSegment& p : rev) {
    if (!res.chain.empty()) {
      PathSegment& b = res.chain.back();
      if (b.rank == p.rank && b.phase == p.phase && b.kind == p.kind &&
          std::abs(b.t1 - p.t0) <= eps) {
        b.t1 = p.t1;
        continue;
      }
    }
    res.chain.push_back(p);
  }

  for (const PathSegment& p : res.chain) {
    const double d = p.duration();
    if (p.phase < 0) continue;  // untracked
    res.path_by_rank[p.rank] += d;
    if (p.kind == SpanKind::kCompute) {
      res.compute_by_phase[p.phase] += d;
      res.path_compute += d;
      res.compute_by_rank_phase[{p.rank, p.phase}] += d;
    } else {
      res.comm_by_phase[p.phase] += d;
      res.path_comm += d;
    }
  }
  return res;
}

std::vector<double> CriticalPathAnalyzer::wait_in_window(double t_begin,
                                                         double t_end) const {
  std::vector<double> out(rec_.nranks(), 0.0);
  for (const SyncRec& s : rec_.syncs()) {
    if (s.t_max < t_begin || s.t_max >= t_end) continue;
    for (int r = 0; r < rec_.nranks(); ++r)
      out[r] += std::max(0.0, s.t_max - s.arrive[r]);
  }
  return out;
}

void CriticalPathAnalyzer::print(const CriticalPathResult& r,
                                 std::ostream& os) const {
  os << "Critical path: " << format_double(r.end_time)
     << " virtual s end-to-end, " << r.chain.size() << " chain segments ("
     << format_double(r.path_compute) << " s compute, "
     << format_double(r.path_comm) << " s comm";
  if (r.untracked > 0.0) os << ", " << format_double(r.untracked) << " s untracked";
  os << ")\n";

  os << "\n  phase attribution on the path (virtual s):\n";
  os << "    phase             compute       comm\n";
  for (std::size_t p = 0; p < rec_.phase_names().size(); ++p) {
    const double c = r.compute_by_phase[p], m = r.comm_by_phase[p];
    if (c <= 0.0 && m <= 0.0) continue;
    os << "    " << rec_.phase_names()[p];
    for (std::size_t pad = rec_.phase_names()[p].size(); pad < 16; ++pad)
      os << ' ';
    os << "  " << format_double(c) << "  " << format_double(m) << "\n";
  }

  os << "\n  path / wait time by rank (virtual s):\n";
  os << "    rank   on-path       wait\n";
  for (int rank = 0; rank < rec_.nranks(); ++rank) {
    if (r.path_by_rank[rank] <= 0.0 && r.wait_by_rank[rank] <= 0.0) continue;
    os << "    " << rank << "      " << format_double(r.path_by_rank[rank])
       << "  " << format_double(r.wait_by_rank[rank]) << "\n";
  }

  // The dominant (rank, phase) compute contribution — the straggler.
  const std::pair<const std::pair<int, int>, double>* top = nullptr;
  for (const auto& kv : r.compute_by_rank_phase)
    if (!top || kv.second > top->second) top = &kv;
  if (top) {
    os << "\n  dominant compute on the path: rank " << top->first.first
       << " in " << rec_.phase_names()[top->first.second] << " ("
       << format_double(top->second) << " s)\n";
  }
}

}  // namespace dsmcpic::trace
