#include "mesh/tetmesh.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <unordered_map>
#include <utility>

#include "support/error.hpp"

namespace dsmcpic::mesh {

const char* boundary_kind_name(BoundaryKind k) {
  switch (k) {
    case BoundaryKind::kNone: return "none";
    case BoundaryKind::kInlet: return "inlet";
    case BoundaryKind::kOutlet: return "outlet";
    case BoundaryKind::kWall: return "wall";
  }
  return "?";
}

double signed_volume(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d) {
  return triple(b - a, c - a, d - a) / 6.0;
}

TetMesh::TetMesh(std::vector<Vec3> nodes,
                 std::vector<std::array<std::int32_t, 4>> tets)
    : nodes_(std::move(nodes)), tets_(std::move(tets)) {
  compute_derived();
  build_adjacency();
}

void TetMesh::compute_derived() {
  const auto n = tets_.size();
  volumes_.resize(n);
  centroids_.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    auto& tt = tets_[t];
    double v = signed_volume(nodes_[tt[0]], nodes_[tt[1]], nodes_[tt[2]],
                             nodes_[tt[3]]);
    if (v < 0.0) {  // enforce positive orientation
      std::swap(tt[0], tt[1]);
      v = -v;
    }
    DSMCPIC_CHECK_MSG(v > 0.0, "degenerate tetrahedron " << t);
    volumes_[t] = v;
    centroids_[t] =
        (nodes_[tt[0]] + nodes_[tt[1]] + nodes_[tt[2]] + nodes_[tt[3]]) / 4.0;
  }
  build_geometry_caches();
}

void TetMesh::build_geometry_caches() {
  const auto n = tets_.size();
  face_planes_.resize(n);
  bary_.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    const auto ti = static_cast<std::int32_t>(t);
    for (int f = 0; f < 4; ++f) {
      // Same expressions as the recomputing path, so the cached plane data
      // is bitwise what ray_exit_face_recompute / face_normal_recompute
      // would derive on the fly.
      const auto fn = face_nodes(ti, f);
      const Vec3& p0 = nodes_[fn[0]];
      const Vec3 nrm = cross(nodes_[fn[1]] - p0, nodes_[fn[2]] - p0);
      face_planes_[t][f] = {nrm, p0, nrm.normalized()};
    }
    const auto& tt = tets_[t];
    const Vec3& a = nodes_[tt[0]];
    const Vec3 e1 = nodes_[tt[1]] - a;
    const Vec3 e2 = nodes_[tt[2]] - a;
    const Vec3 e3 = nodes_[tt[3]] - a;
    const double det = triple(e1, e2, e3);  // = 6 * volume > 0 after reorient
    bary_[t].anchor = a;
    bary_[t].rows = {cross(e2, e3) / det, cross(e3, e1) / det,
                     cross(e1, e2) / det};
  }
}

namespace {

struct FaceKey {
  std::int32_t a, b, c;  // sorted ascending
  bool operator==(const FaceKey& o) const {
    return a == o.a && b == o.b && c == o.c;
  }
};

struct FaceKeyHash {
  std::size_t operator()(const FaceKey& k) const {
    std::uint64_t h = static_cast<std::uint64_t>(k.a) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::uint64_t>(k.b) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    h ^= static_cast<std::uint64_t>(k.c) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

FaceKey make_key(std::int32_t x, std::int32_t y, std::int32_t z) {
  if (x > y) std::swap(x, y);
  if (y > z) std::swap(y, z);
  if (x > y) std::swap(x, y);
  return {x, y, z};
}

}  // namespace

void TetMesh::build_adjacency() {
  const auto n = tets_.size();
  neighbors_.assign(n, {-1, -1, -1, -1});
  face_kinds_.assign(n, {BoundaryKind::kNone, BoundaryKind::kNone,
                         BoundaryKind::kNone, BoundaryKind::kNone});
  std::unordered_map<FaceKey, std::pair<std::int32_t, int>, FaceKeyHash> open;
  open.reserve(n * 2);
  for (std::size_t t = 0; t < n; ++t) {
    const auto& tt = tets_[t];
    for (int f = 0; f < 4; ++f) {
      const FaceKey key =
          make_key(tt[(f + 1) & 3], tt[(f + 2) & 3], tt[(f + 3) & 3]);
      auto it = open.find(key);
      if (it == open.end()) {
        open.emplace(key, std::make_pair(static_cast<std::int32_t>(t), f));
      } else {
        const auto [ot, of] = it->second;
        DSMCPIC_CHECK_MSG(neighbors_[ot][of] == -1,
                          "non-manifold face shared by more than two tets");
        neighbors_[t][f] = ot;
        neighbors_[ot][of] = static_cast<std::int32_t>(t);
        open.erase(it);
      }
    }
  }
}

double TetMesh::total_volume() const {
  double v = 0.0;
  for (double x : volumes_) v += x;
  return v;
}

std::array<std::int32_t, 3> TetMesh::face_nodes(std::int32_t t, int f) const {
  const auto& tt = tets_[t];
  std::array<std::int32_t, 3> fn = {tt[(f + 1) & 3], tt[(f + 2) & 3],
                                    tt[(f + 3) & 3]};
  // Orient so the cross-product normal points away from the opposite vertex.
  const Vec3& p0 = nodes_[fn[0]];
  const Vec3 nrm = cross(nodes_[fn[1]] - p0, nodes_[fn[2]] - p0);
  if (dot(nrm, nodes_[tt[f]] - p0) > 0.0) std::swap(fn[1], fn[2]);
  return fn;
}

Vec3 TetMesh::face_normal(std::int32_t t, int f) const {
  if (geometry_cache_enabled_) return face_planes_[t][f].unit_normal;
  return face_normal_recompute(t, f);
}

Vec3 TetMesh::face_normal_recompute(std::int32_t t, int f) const {
  const auto fn = face_nodes(t, f);
  const Vec3& p0 = nodes_[fn[0]];
  return cross(nodes_[fn[1]] - p0, nodes_[fn[2]] - p0).normalized();
}

double TetMesh::face_area(std::int32_t t, int f) const {
  const auto fn = face_nodes(t, f);
  const Vec3& p0 = nodes_[fn[0]];
  return 0.5 * cross(nodes_[fn[1]] - p0, nodes_[fn[2]] - p0).norm();
}

Vec3 TetMesh::face_centroid(std::int32_t t, int f) const {
  const auto fn = face_nodes(t, f);
  return (nodes_[fn[0]] + nodes_[fn[1]] + nodes_[fn[2]]) / 3.0;
}

std::array<double, 4> TetMesh::barycentric(std::int32_t t, const Vec3& p) const {
  if (geometry_cache_enabled_) {
    const BaryCache& bc = bary_[t];
    const Vec3 r = p - bc.anchor;
    const double l1 = dot(bc.rows[0], r);
    const double l2 = dot(bc.rows[1], r);
    const double l3 = dot(bc.rows[2], r);
    return {1.0 - l1 - l2 - l3, l1, l2, l3};
  }
  return barycentric_recompute(t, p);
}

std::array<double, 4> TetMesh::barycentric_recompute(std::int32_t t,
                                                     const Vec3& p) const {
  const auto& tt = tets_[t];
  const Vec3& a = nodes_[tt[0]];
  const Vec3& b = nodes_[tt[1]];
  const Vec3& c = nodes_[tt[2]];
  const Vec3& d = nodes_[tt[3]];
  const double v = volumes_[t];
  return {signed_volume(p, b, c, d) / v, signed_volume(a, p, c, d) / v,
          signed_volume(a, b, p, d) / v, signed_volume(a, b, c, p) / v};
}

bool TetMesh::contains(std::int32_t t, const Vec3& p, double tol) const {
  const auto l = barycentric(t, p);
  return l[0] >= -tol && l[1] >= -tol && l[2] >= -tol && l[3] >= -tol;
}

std::int32_t TetMesh::locate(const Vec3& p, std::int32_t hint,
                             std::int64_t* steps_out) const {
  if (num_tets() == 0) return -1;
  std::int32_t t = (hint >= 0 && hint < num_tets()) ? hint : 0;
  const double tol = 1e-12;
  // Walk towards p; the step cap guards against cycles on degenerate input.
  const std::int64_t cap = 4 + 2 * static_cast<std::int64_t>(num_tets());
  for (std::int64_t step = 0; step < cap; ++step) {
    if (steps_out) ++*steps_out;
    const auto l = barycentric(t, p);
    int worst = 0;
    for (int i = 1; i < 4; ++i)
      if (l[i] < l[worst]) worst = i;
    if (l[worst] >= -tol) return t;
    const std::int32_t next = neighbors_[t][worst];
    if (next >= 0) {
      t = next;
      continue;
    }
    // Blocked by a boundary: try the other negative directions before
    // declaring the point outside.
    std::int32_t alt = -1;
    double alt_l = -tol;
    for (int i = 0; i < 4; ++i) {
      if (i == worst || l[i] >= -tol) continue;
      if (neighbors_[t][i] >= 0 && l[i] < alt_l) {
        alt = neighbors_[t][i];
        alt_l = l[i];
      }
    }
    if (alt >= 0) {
      t = alt;
      continue;
    }
    return -1;  // outside the domain through a boundary face
  }
  return locate_brute(p);
}

std::int32_t TetMesh::locate_brute(const Vec3& p) const {
  for (std::int32_t t = 0; t < num_tets(); ++t)
    if (contains(t, p)) return t;
  return -1;
}

int TetMesh::ray_exit_face(std::int32_t t, const Vec3& origin, const Vec3& dir,
                           double* t_exit) const {
  if (!geometry_cache_enabled_)
    return ray_exit_face_recompute(t, origin, dir, t_exit);
  const auto& planes = face_planes_[t];
  int best_face = -1;
  double best_t = std::numeric_limits<double>::infinity();
  for (int f = 0; f < 4; ++f) {
    const FacePlane& pl = planes[f];
    const double denom = dot(dir, pl.normal);
    if (denom <= 0.0) continue;  // moving away from (or parallel to) face
    const double tf = dot(pl.anchor - origin, pl.normal) / denom;
    if (tf >= -1e-14 && tf < best_t) {
      best_t = tf;
      best_face = f;
    }
  }
  if (t_exit) *t_exit = best_t;
  return best_face;
}

int TetMesh::ray_exit_face_recompute(std::int32_t t, const Vec3& origin,
                                     const Vec3& dir, double* t_exit) const {
  int best_face = -1;
  double best_t = std::numeric_limits<double>::infinity();
  for (int f = 0; f < 4; ++f) {
    const auto fn = face_nodes(t, f);
    const Vec3& p0 = nodes_[fn[0]];
    const Vec3 nrm = cross(nodes_[fn[1]] - p0, nodes_[fn[2]] - p0);
    const double denom = dot(dir, nrm);
    if (denom <= 0.0) continue;  // moving away from (or parallel to) face
    const double tf = dot(p0 - origin, nrm) / denom;
    if (tf >= -1e-14 && tf < best_t) {
      best_t = tf;
      best_face = f;
    }
  }
  if (t_exit) *t_exit = best_t;
  return best_face;
}

void TetMesh::classify_boundary(const BoundaryClassifier& classify) {
  for (auto& lst : boundary_lists_) lst.clear();
  for (std::int32_t t = 0; t < num_tets(); ++t) {
    for (int f = 0; f < 4; ++f) {
      if (neighbors_[t][f] != -1) continue;
      const BoundaryKind k = classify(face_centroid(t, f), face_normal(t, f));
      DSMCPIC_CHECK_MSG(k != BoundaryKind::kNone,
                        "classifier returned kNone for a boundary face");
      face_kinds_[t][f] = k;
      boundary_lists_[static_cast<int>(k)].push_back({t, f, k});
    }
  }
}

void TetMesh::assign_boundary_kinds(std::span<const std::uint8_t> kinds_flat) {
  DSMCPIC_CHECK(kinds_flat.size() == static_cast<std::size_t>(num_tets()) * 4);
  for (auto& lst : boundary_lists_) lst.clear();
  for (std::int32_t t = 0; t < num_tets(); ++t) {
    for (int f = 0; f < 4; ++f) {
      const auto k = static_cast<BoundaryKind>(kinds_flat[t * 4 + f]);
      DSMCPIC_CHECK_MSG(k <= BoundaryKind::kWall, "invalid boundary kind");
      if (neighbors_[t][f] != -1) {
        DSMCPIC_CHECK_MSG(k == BoundaryKind::kNone,
                          "boundary kind on an interior face");
        continue;
      }
      face_kinds_[t][f] = k;
      if (k != BoundaryKind::kNone)
        boundary_lists_[static_cast<int>(k)].push_back({t, f, k});
    }
  }
}

const std::vector<BoundaryFace>& TetMesh::boundary_faces(BoundaryKind k) const {
  return boundary_lists_[static_cast<int>(k)];
}

void TetMesh::dual_graph(std::vector<std::int64_t>& xadj,
                         std::vector<std::int32_t>& adjncy) const {
  xadj.assign(num_tets() + 1, 0);
  adjncy.clear();
  for (std::int32_t t = 0; t < num_tets(); ++t) {
    for (int f = 0; f < 4; ++f)
      if (neighbors_[t][f] >= 0) ++xadj[t + 1];
  }
  for (std::int32_t t = 0; t < num_tets(); ++t) xadj[t + 1] += xadj[t];
  adjncy.resize(static_cast<std::size_t>(xadj[num_tets()]));
  std::vector<std::int64_t> cursor(xadj.begin(), xadj.end() - 1);
  for (std::int32_t t = 0; t < num_tets(); ++t) {
    for (int f = 0; f < 4; ++f) {
      const std::int32_t nb = neighbors_[t][f];
      if (nb >= 0) adjncy[static_cast<std::size_t>(cursor[t]++)] = nb;
    }
  }
}

void TetMesh::write_vtk(const std::string& path,
                        std::span<const double> cell_scalar,
                        const std::string& scalar_name) const {
  std::ofstream os(path);
  DSMCPIC_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  os.precision(17);  // round-trippable doubles
  os << "# vtk DataFile Version 3.0\ndsmcpic mesh\nASCII\n"
     << "DATASET UNSTRUCTURED_GRID\n";
  os << "POINTS " << num_nodes() << " double\n";
  for (const auto& p : nodes_) os << p.x << " " << p.y << " " << p.z << "\n";
  os << "CELLS " << num_tets() << " " << num_tets() * 5 << "\n";
  for (const auto& t : tets_)
    os << "4 " << t[0] << " " << t[1] << " " << t[2] << " " << t[3] << "\n";
  os << "CELL_TYPES " << num_tets() << "\n";
  for (std::int32_t t = 0; t < num_tets(); ++t) os << "10\n";
  if (!cell_scalar.empty()) {
    DSMCPIC_CHECK(static_cast<std::int32_t>(cell_scalar.size()) == num_tets());
    os << "CELL_DATA " << num_tets() << "\nSCALARS " << scalar_name
       << " double 1\nLOOKUP_TABLE default\n";
    for (double v : cell_scalar) os << v << "\n";
  }
}

}  // namespace dsmcpic::mesh
