#pragma once
// Procedural tetrahedral mesh generator for the paper's 3D cylindrical
// nozzle (Sec. VI-C, Fig. 7). Replaces the SALOME-generated grids: a
// structured square lattice is mapped onto the disk cross-section
// (elliptical mapping, so the lateral wall is smooth), extruded along the
// axis, and each hexahedron is split into 6 tetrahedra with the Kuhn
// decomposition (face-conforming across the structured lattice).
//
// Boundary layout (axis = +z):
//   z = 0 and r <= inlet_radius  -> kInlet  (plasma source)
//   z = 0 and r  > inlet_radius  -> kWall
//   z = L                        -> kOutlet
//   lateral surface              -> kWall

#include <cstdint>

#include "mesh/tetmesh.hpp"

namespace dsmcpic::mesh {

struct NozzleSpec {
  double radius = 0.01;           // cylinder radius [m] (mm-range plume)
  double length = 0.05;           // cylinder length [m]
  double inlet_radius_frac = 0.4; // inlet disc radius as a fraction of radius
  int radial_divisions = 6;       // lattice resolution across the diameter
  int axial_divisions = 18;       // layers along the axis
  /// Number of inlet discs on the z = 0 face. 1 keeps the classic on-axis
  /// inlet above; >= 2 places `inlet_count` discs of radius inlet_radius()
  /// with centers 0.5 * radius off-axis, evenly spaced in angle starting on
  /// +x — a multi-nozzle bank whose plumes interact downstream.
  int inlet_count = 1;

  double inlet_radius() const { return radius * inlet_radius_frac; }
  /// Number of coarse tets this spec will produce.
  std::int64_t expected_tets() const {
    return 6LL * radial_divisions * radial_divisions * axial_divisions;
  }

  friend bool operator==(const NozzleSpec&, const NozzleSpec&) = default;
};

/// Generates the coarse DSMC grid for the nozzle (adjacency built, boundary
/// classified).
TetMesh make_cylinder_nozzle(const NozzleSpec& spec);

/// The boundary classifier used for the nozzle; exposed so the nested fine
/// grid can be classified with identical geometry rules.
BoundaryClassifier nozzle_classifier(const NozzleSpec& spec);

}  // namespace dsmcpic::mesh
