#include "mesh/io.hpp"

#include <array>
#include <fstream>
#include <sstream>

#include "support/error.hpp"
#include "support/serialize.hpp"

namespace dsmcpic::mesh {

namespace {
constexpr std::uint64_t kMagic = 0x445350435f4d5348ULL;  // "DSPC_MSH"
constexpr std::uint32_t kVersion = 1;
}  // namespace

void write_native(const TetMesh& mesh, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  DSMCPIC_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  io::write_pod(os, kMagic);
  io::write_pod(os, kVersion);
  io::write_vec(os, mesh.nodes());
  io::write_vec(os, mesh.tets());
  std::vector<std::uint8_t> kinds(static_cast<std::size_t>(mesh.num_tets()) * 4);
  for (std::int32_t t = 0; t < mesh.num_tets(); ++t)
    for (int f = 0; f < 4; ++f)
      kinds[t * 4 + f] = static_cast<std::uint8_t>(mesh.face_kind(t, f));
  io::write_vec(os, kinds);
}

TetMesh read_native(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DSMCPIC_CHECK_MSG(is.good(), "cannot open " << path);
  DSMCPIC_CHECK_MSG(io::read_pod<std::uint64_t>(is) == kMagic,
                    "not a dsmcpic mesh file: " << path);
  DSMCPIC_CHECK_MSG(io::read_pod<std::uint32_t>(is) == kVersion,
                    "unsupported mesh file version");
  auto nodes = io::read_vec<Vec3>(is);
  auto tets = io::read_vec<std::array<std::int32_t, 4>>(is);
  const auto kinds = io::read_vec<std::uint8_t>(is);
  TetMesh mesh(std::move(nodes), std::move(tets));
  mesh.assign_boundary_kinds(kinds);
  return mesh;
}

TetMesh read_vtk(const std::string& path) {
  std::ifstream is(path);
  DSMCPIC_CHECK_MSG(is.good(), "cannot open " << path);
  std::string token;
  std::vector<Vec3> nodes;
  std::vector<std::array<std::int32_t, 4>> tets;
  bool saw_points = false, saw_cells = false;
  while (is >> token) {
    if (token == "POINTS") {
      std::int64_t n = 0;
      std::string type;
      is >> n >> type;
      DSMCPIC_CHECK_MSG(n > 0, "VTK POINTS count must be positive");
      nodes.resize(static_cast<std::size_t>(n));
      for (auto& p : nodes) {
        DSMCPIC_CHECK_MSG(static_cast<bool>(is >> p.x >> p.y >> p.z),
                          "truncated VTK POINTS section");
      }
      saw_points = true;
    } else if (token == "CELLS") {
      std::int64_t n = 0, total = 0;
      is >> n >> total;
      DSMCPIC_CHECK_MSG(n > 0, "VTK CELLS count must be positive");
      tets.resize(static_cast<std::size_t>(n));
      for (auto& t : tets) {
        int nv = 0;
        DSMCPIC_CHECK_MSG(static_cast<bool>(is >> nv),
                          "truncated VTK CELLS section");
        DSMCPIC_CHECK_MSG(nv == 4, "only tetrahedral cells are supported");
        DSMCPIC_CHECK_MSG(
            static_cast<bool>(is >> t[0] >> t[1] >> t[2] >> t[3]),
            "truncated VTK CELLS section");
      }
      saw_cells = true;
    } else if (token == "CELL_TYPES") {
      std::int64_t n = 0;
      is >> n;
      for (std::int64_t i = 0; i < n; ++i) {
        int type = 0;
        DSMCPIC_CHECK_MSG(static_cast<bool>(is >> type),
                          "truncated VTK CELL_TYPES section");
        DSMCPIC_CHECK_MSG(type == 10, "only VTK_TETRA (10) cells supported");
      }
    }
  }
  DSMCPIC_CHECK_MSG(saw_points && saw_cells,
                    "VTK file missing POINTS or CELLS: " << path);
  return TetMesh(std::move(nodes), std::move(tets));
}

}  // namespace dsmcpic::mesh
