#include "mesh/quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace dsmcpic::mesh {

namespace {

/// Inradius: 3V / total face area.
double inradius(const TetMesh& m, std::int32_t t) {
  double area = 0.0;
  for (int f = 0; f < 4; ++f) area += m.face_area(t, f);
  return 3.0 * m.volume(t) / area;
}

/// Circumradius from the standard determinant-free formula:
/// R = |a|*|b|*|c| ... use the formula R = sqrt((p^2 q^2 r^2 ...)) — we use
/// the robust route via the circumcenter solve of the 3x3 linear system.
double circumradius(const TetMesh& m, std::int32_t t) {
  const auto& v = m.tet(t);
  const Vec3& p0 = m.node(v[0]);
  const Vec3 a = m.node(v[1]) - p0;
  const Vec3 b = m.node(v[2]) - p0;
  const Vec3 c = m.node(v[3]) - p0;
  // Solve 2 [a;b;c] x = [|a|^2; |b|^2; |c|^2] for the circumcenter offset x.
  const double det = 2.0 * triple(a, b, c);
  DSMCPIC_CHECK_MSG(det != 0.0, "degenerate tet in circumradius");
  const Vec3 x = (cross(b, c) * a.norm2() + cross(c, a) * b.norm2() +
                  cross(a, b) * c.norm2()) /
                 det;
  return x.norm();
}

/// Dihedral angle along the edge shared by faces with outward normals
/// n1, n2: angle = pi - angle(n1, n2).
void dihedral_angles(const TetMesh& m, std::int32_t t, double& min_deg,
                     double& max_deg) {
  Vec3 normals[4];
  for (int f = 0; f < 4; ++f) normals[f] = m.face_normal(t, f);
  min_deg = 180.0;
  max_deg = 0.0;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      const double c = std::clamp(dot(normals[i], normals[j]), -1.0, 1.0);
      const double angle = 180.0 - std::acos(c) * 180.0 / M_PI;
      min_deg = std::min(min_deg, angle);
      max_deg = std::max(max_deg, angle);
    }
  }
}

}  // namespace

TetQuality tet_quality(const TetMesh& mesh, std::int32_t t) {
  TetQuality q;
  q.radius_ratio = 3.0 * inradius(mesh, t) / circumradius(mesh, t);
  dihedral_angles(mesh, t, q.min_dihedral_deg, q.max_dihedral_deg);

  const auto& v = mesh.tet(t);
  double shortest = std::numeric_limits<double>::infinity(), longest = 0.0;
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) {
      const double len = (mesh.node(v[i]) - mesh.node(v[j])).norm();
      shortest = std::min(shortest, len);
      longest = std::max(longest, len);
    }
  q.edge_ratio = longest / shortest;
  return q;
}

QualityReport assess_quality(const TetMesh& mesh) {
  QualityReport r;
  r.num_tets = mesh.num_tets();
  if (r.num_tets == 0) return r;
  r.min_volume = std::numeric_limits<double>::infinity();
  double rr_sum = 0.0;
  for (std::int32_t t = 0; t < mesh.num_tets(); ++t) {
    const TetQuality q = tet_quality(mesh, t);
    r.min_radius_ratio = std::min(r.min_radius_ratio, q.radius_ratio);
    rr_sum += q.radius_ratio;
    r.min_dihedral_deg = std::min(r.min_dihedral_deg, q.min_dihedral_deg);
    r.max_edge_ratio = std::max(r.max_edge_ratio, q.edge_ratio);
    r.min_volume = std::min(r.min_volume, mesh.volume(t));
    r.max_volume = std::max(r.max_volume, mesh.volume(t));
    if (q.radius_ratio < 0.1) ++r.slivers;
  }
  r.mean_radius_ratio = rr_sum / r.num_tets;
  return r;
}

}  // namespace dsmcpic::mesh
