#include "mesh/nozzle.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace dsmcpic::mesh {

namespace {

/// Elliptical square-to-disk map: preserves the lattice structure while
/// producing a smooth circular boundary.
Vec3 disk_point(double u, double v, double radius, double z) {
  const double x = u * std::sqrt(1.0 - 0.5 * v * v);
  const double y = v * std::sqrt(1.0 - 0.5 * u * u);
  return {radius * x, radius * y, z};
}

}  // namespace

BoundaryClassifier nozzle_classifier(const NozzleSpec& spec) {
  const double ztol = spec.length * 1e-6;
  const double inlet_r = spec.inlet_radius();
  const double length = spec.length;
  if (spec.inlet_count <= 1) {
    return [ztol, inlet_r, length](const Vec3& centroid,
                                   const Vec3& /*normal*/) -> BoundaryKind {
      if (centroid.z < ztol) {
        const double r = std::hypot(centroid.x, centroid.y);
        return r <= inlet_r ? BoundaryKind::kInlet : BoundaryKind::kWall;
      }
      if (centroid.z > length - ztol) return BoundaryKind::kOutlet;
      return BoundaryKind::kWall;
    };
  }
  // Multi-nozzle bank: `inlet_count` discs centered 0.5 * radius off-axis,
  // evenly spaced in angle (first on +x). Faces outside every disc are wall.
  std::vector<std::pair<double, double>> centers;
  const double cr = 0.5 * spec.radius;
  for (int i = 0; i < spec.inlet_count; ++i) {
    const double a = 2.0 * M_PI * i / spec.inlet_count;
    centers.emplace_back(cr * std::cos(a), cr * std::sin(a));
  }
  return [ztol, inlet_r, length, centers](const Vec3& centroid,
                                          const Vec3& /*normal*/)
             -> BoundaryKind {
    if (centroid.z < ztol) {
      for (const auto& [cx, cy] : centers)
        if (std::hypot(centroid.x - cx, centroid.y - cy) <= inlet_r)
          return BoundaryKind::kInlet;
      return BoundaryKind::kWall;
    }
    if (centroid.z > length - ztol) return BoundaryKind::kOutlet;
    return BoundaryKind::kWall;
  };
}

TetMesh make_cylinder_nozzle(const NozzleSpec& spec) {
  const int n = spec.radial_divisions;
  const int nz = spec.axial_divisions;
  DSMCPIC_CHECK_MSG(n >= 2 && nz >= 1, "nozzle lattice too coarse");
  DSMCPIC_CHECK(spec.radius > 0.0 && spec.length > 0.0);
  DSMCPIC_CHECK(spec.inlet_radius_frac > 0.0 && spec.inlet_radius_frac <= 1.0);

  const int nn = n + 1;  // nodes per lattice side
  std::vector<Vec3> nodes;
  nodes.reserve(static_cast<std::size_t>(nn) * nn * (nz + 1));
  for (int k = 0; k <= nz; ++k) {
    const double z = spec.length * static_cast<double>(k) / nz;
    for (int j = 0; j <= n; ++j) {
      const double v = 2.0 * j / n - 1.0;
      for (int i = 0; i <= n; ++i) {
        const double u = 2.0 * i / n - 1.0;
        nodes.push_back(disk_point(u, v, spec.radius, z));
      }
    }
  }
  auto node_id = [nn](int i, int j, int k) {
    return static_cast<std::int32_t>((k * nn + j) * nn + i);
  };

  // Kuhn decomposition: 6 tets per hex, one per permutation of the axes,
  // every tet containing the main diagonal (0,0,0)-(1,1,1) of the hex. The
  // shared main diagonal orientation makes the decomposition conforming
  // across the whole structured lattice.
  static const int kPerms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                   {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  std::vector<std::array<std::int32_t, 4>> tets;
  tets.reserve(static_cast<std::size_t>(spec.expected_tets()));
  for (int k = 0; k < nz; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        for (const auto& perm : kPerms) {
          int d[3] = {0, 0, 0};  // path from hex corner (0,0,0) to (1,1,1)
          std::array<std::int32_t, 4> tet;
          tet[0] = node_id(i, j, k);
          for (int s = 0; s < 3; ++s) {
            d[perm[s]] = 1;
            tet[s + 1] = node_id(i + d[0], j + d[1], k + d[2]);
          }
          tets.push_back(tet);
        }
      }
    }
  }

  TetMesh mesh(std::move(nodes), std::move(tets));
  mesh.classify_boundary(nozzle_classifier(spec));
  return mesh;
}

}  // namespace dsmcpic::mesh
