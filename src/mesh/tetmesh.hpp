#pragma once
// Unstructured tetrahedral mesh: the geometric substrate for both the coarse
// DSMC grid and the nested fine PIC grid (paper Sec. IV-A, Fig. 2).
//
// Conventions:
//  * Tet `t` has node ids tets()[t] = {a,b,c,d} with positive signed volume.
//  * Local face `f` of a tet is the face *opposite* local vertex `f`
//    (i.e. face 0 = {b,c,d}, face 1 = {a,d,c}, ... with outward orientation).
//  * neighbor(t, f) is the adjacent tet across face f, or -1 on boundary.
//  * Boundary faces carry a BoundaryKind used by the DSMC mover (wall
//    reflection, outlet removal) and the Poisson solver (Dirichlet BCs).

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "support/vec3.hpp"

namespace dsmcpic::mesh {

enum class BoundaryKind : std::uint8_t {
  kNone = 0,  // interior face
  kInlet,     // particle injection surface; Dirichlet phi = phi_inlet
  kOutlet,    // particles leave; Dirichlet phi = 0
  kWall,      // particles reflect; homogeneous Neumann for phi
};

const char* boundary_kind_name(BoundaryKind k);

/// A boundary face handle: owning tet, local face index, kind.
struct BoundaryFace {
  std::int32_t tet = -1;
  std::int32_t face = -1;
  BoundaryKind kind = BoundaryKind::kNone;
};

/// Classifier callback: decides the kind of a boundary face from its
/// centroid and outward normal. Supplied by the geometry generator.
using BoundaryClassifier =
    std::function<BoundaryKind(const Vec3& centroid, const Vec3& outward_normal)>;

class TetMesh {
 public:
  /// Per-face plane cache: the outward cross-product normal (unnormalized,
  /// exactly as the recomputing path derives it from the face_nodes
  /// ordering), the position of face node 0 (the plane anchor), and the
  /// unit normal. Precomputed once at mesh build so ray_exit_face is four
  /// dot products instead of four cross products.
  struct FacePlane {
    Vec3 normal;       // cross(n1 - n0, n2 - n0), points out of the tet
    Vec3 anchor;       // position of face node 0
    Vec3 unit_normal;  // normal.normalized()
  };

  /// Per-tet barycentric solve cache: the inverse edge matrix stored as
  /// rows, so l[i+1] = dot(rows[i], p - anchor) and l[0] = 1 - l1 - l2 - l3.
  struct BaryCache {
    Vec3 anchor;                // position of tet node 0
    std::array<Vec3, 3> rows;   // rows of the 3x3 inverse of [e1 e2 e3]
  };

  TetMesh() = default;
  TetMesh(std::vector<Vec3> nodes, std::vector<std::array<std::int32_t, 4>> tets);

  std::int32_t num_nodes() const { return static_cast<std::int32_t>(nodes_.size()); }
  std::int32_t num_tets() const { return static_cast<std::int32_t>(tets_.size()); }

  const std::vector<Vec3>& nodes() const { return nodes_; }
  const std::vector<std::array<std::int32_t, 4>>& tets() const { return tets_; }
  const Vec3& node(std::int32_t n) const { return nodes_[n]; }
  const std::array<std::int32_t, 4>& tet(std::int32_t t) const { return tets_[t]; }

  double volume(std::int32_t t) const { return volumes_[t]; }
  const Vec3& centroid(std::int32_t t) const { return centroids_[t]; }
  std::span<const Vec3> centroids() const { return centroids_; }
  double total_volume() const;

  /// Adjacent tet across local face f of tet t; -1 if boundary.
  std::int32_t neighbor(std::int32_t t, int f) const { return neighbors_[t][f]; }

  /// Kind of local face f of tet t (kNone for interior faces).
  BoundaryKind face_kind(std::int32_t t, int f) const { return face_kinds_[t][f]; }

  /// The three node ids of local face f of tet t, ordered so that their
  /// cross-product normal points OUT of the tet.
  std::array<std::int32_t, 3> face_nodes(std::int32_t t, int f) const;

  /// Outward unit normal / area / centroid of local face f of tet t.
  Vec3 face_normal(std::int32_t t, int f) const;
  double face_area(std::int32_t t, int f) const;
  Vec3 face_centroid(std::int32_t t, int f) const;

  /// Barycentric coordinates of p with respect to tet t (sums to 1).
  std::array<double, 4> barycentric(std::int32_t t, const Vec3& p) const;

  /// True when p lies in tet t (barycentric coords >= -tol).
  bool contains(std::int32_t t, const Vec3& p, double tol = 1e-10) const;

  /// Point location by tet walking from `hint`; falls back to brute force.
  /// Returns -1 when p is outside the mesh. `steps_out` (optional)
  /// accumulates the number of tets visited, for work accounting.
  std::int32_t locate(const Vec3& p, std::int32_t hint = 0,
                      std::int64_t* steps_out = nullptr) const;

  /// Exhaustive point location (slow; used as fallback and in tests).
  std::int32_t locate_brute(const Vec3& p) const;

  /// Ray exit through tet t: first face crossed when travelling from
  /// `origin` along `dir`. Returns the local face index and sets `t_exit`
  /// (distance along dir, can exceed `dir` length). Returns -1 when no
  /// positive crossing exists (degenerate dir).
  int ray_exit_face(std::int32_t t, const Vec3& origin, const Vec3& dir,
                    double* t_exit) const;

  /// Toggles use of the precomputed geometry caches. When off, barycentric
  /// / face_normal / ray_exit_face fall back to the recomputing paths (the
  /// caches stay built). For the cache equivalence test only.
  void set_geometry_cache_enabled(bool on) { geometry_cache_enabled_ = on; }
  bool geometry_cache_enabled() const { return geometry_cache_enabled_; }

  /// Recomputing variants, deriving everything from raw node coordinates on
  /// every call. Kept as the reference implementations for the cache
  /// equivalence test. ray_exit_face and face_normal are bit-identical to
  /// the cached paths; barycentric differs in rounding (volume ratios vs a
  /// precomputed matrix-vector product).
  std::array<double, 4> barycentric_recompute(std::int32_t t, const Vec3& p) const;
  Vec3 face_normal_recompute(std::int32_t t, int f) const;
  int ray_exit_face_recompute(std::int32_t t, const Vec3& origin,
                              const Vec3& dir, double* t_exit) const;

  /// Builds face adjacency; must be called after construction (the
  /// constructor does it automatically).
  void build_adjacency();

  /// Classifies every boundary face with the given classifier and records
  /// the list of boundary faces per kind.
  void classify_boundary(const BoundaryClassifier& classify);

  /// Directly assigns boundary kinds from a flat array (4 entries per tet,
  /// kNone on interior faces) and rebuilds the per-kind face lists. Used by
  /// mesh deserialization.
  void assign_boundary_kinds(std::span<const std::uint8_t> kinds_flat);

  /// All boundary faces of one kind (after classify_boundary).
  const std::vector<BoundaryFace>& boundary_faces(BoundaryKind k) const;

  /// Dual graph of the mesh (tet = vertex, shared face = edge), in CSR form
  /// (xadj/adjncy as in METIS). Used by the partitioner.
  void dual_graph(std::vector<std::int64_t>& xadj,
                  std::vector<std::int32_t>& adjncy) const;

  /// Writes the mesh (+ optional per-cell scalar field) as legacy VTK, for
  /// visual inspection of example outputs.
  void write_vtk(const std::string& path,
                 std::span<const double> cell_scalar = {},
                 const std::string& scalar_name = "value") const;

 private:
  void compute_derived();
  void build_geometry_caches();

  std::vector<Vec3> nodes_;
  std::vector<std::array<std::int32_t, 4>> tets_;
  std::vector<std::array<std::int32_t, 4>> neighbors_;
  std::vector<std::array<BoundaryKind, 4>> face_kinds_;
  std::vector<double> volumes_;
  std::vector<Vec3> centroids_;
  std::vector<std::array<FacePlane, 4>> face_planes_;
  std::vector<BaryCache> bary_;
  bool geometry_cache_enabled_ = true;
  std::array<std::vector<BoundaryFace>, 4> boundary_lists_;  // by kind
};

/// Signed volume of the tetrahedron (a,b,c,d); positive when d lies on the
/// side of plane (a,b,c) given by the right-hand rule.
double signed_volume(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d);

}  // namespace dsmcpic::mesh
