#include "mesh/refine.hpp"

#include <unordered_map>

#include "support/error.hpp"

namespace dsmcpic::mesh {

namespace {

/// Packs a sorted node pair into a 64-bit key for midpoint deduplication.
std::uint64_t edge_key(std::int32_t a, std::int32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

RefinedMesh red_refine(const TetMesh& coarse, const BoundaryClassifier& classifier) {
  std::vector<Vec3> nodes = coarse.nodes();
  std::unordered_map<std::uint64_t, std::int32_t> midpoints;
  midpoints.reserve(static_cast<std::size_t>(coarse.num_tets()) * 3);

  auto midpoint = [&](std::int32_t a, std::int32_t b) -> std::int32_t {
    const std::uint64_t key = edge_key(a, b);
    auto it = midpoints.find(key);
    if (it != midpoints.end()) return it->second;
    const std::int32_t id = static_cast<std::int32_t>(nodes.size());
    nodes.push_back((nodes[a] + nodes[b]) * 0.5);
    midpoints.emplace(key, id);
    return id;
  };

  std::vector<std::array<std::int32_t, 4>> fine;
  fine.reserve(static_cast<std::size_t>(coarse.num_tets()) * 8);
  std::vector<std::int32_t> parent;
  parent.reserve(fine.capacity());

  for (std::int32_t t = 0; t < coarse.num_tets(); ++t) {
    const auto& v = coarse.tet(t);
    const std::int32_t m01 = midpoint(v[0], v[1]);
    const std::int32_t m02 = midpoint(v[0], v[2]);
    const std::int32_t m03 = midpoint(v[0], v[3]);
    const std::int32_t m12 = midpoint(v[1], v[2]);
    const std::int32_t m13 = midpoint(v[1], v[3]);
    const std::int32_t m23 = midpoint(v[2], v[3]);

    // Four corner tets, one per original vertex.
    fine.push_back({v[0], m01, m02, m03});
    fine.push_back({m01, v[1], m12, m13});
    fine.push_back({m02, m12, v[2], m23});
    fine.push_back({m03, m13, m23, v[3]});
    // Interior octahedron split along the m02–m13 diagonal into four tets.
    fine.push_back({m02, m13, m01, m03});
    fine.push_back({m02, m13, m03, m23});
    fine.push_back({m02, m13, m23, m12});
    fine.push_back({m02, m13, m12, m01});

    for (int c = 0; c < 8; ++c) parent.push_back(t);
  }

  RefinedMesh out{TetMesh(std::move(nodes), std::move(fine)), std::move(parent)};
  DSMCPIC_CHECK(out.mesh.num_tets() == coarse.num_tets() * 8);
  if (classifier) out.mesh.classify_boundary(classifier);
  return out;
}

}  // namespace dsmcpic::mesh
