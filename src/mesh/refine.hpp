#pragma once
// Nested red refinement: each coarse tetrahedron is split into 8 children by
// halving its edges (paper Fig. 2). The fine PIC grid is *entirely nested*
// in the coarse DSMC grid, so (a) only the coarse grid needs partitioning
// and (b) the fine cells of coarse cell c are exactly indices [8c, 8c+8).

#include <cstdint>
#include <vector>

#include "mesh/tetmesh.hpp"

namespace dsmcpic::mesh {

struct RefinedMesh {
  TetMesh mesh;                       // the fine grid
  std::vector<std::int32_t> parent;   // fine tet -> coarse tet

  /// First fine child of coarse tet c (children are contiguous).
  static std::int32_t first_child(std::int32_t coarse_tet) {
    return coarse_tet * 8;
  }
  static std::int32_t parent_of(std::int32_t fine_tet) { return fine_tet / 8; }
};

/// Performs one level of red refinement. If `classifier` is non-null the
/// fine boundary is classified with it (pass the same geometric classifier
/// as the coarse grid so inlet/outlet/wall stay consistent).
RefinedMesh red_refine(const TetMesh& coarse,
                       const BoundaryClassifier& classifier = nullptr);

}  // namespace dsmcpic::mesh
