#pragma once
// Mesh I/O: a compact native binary format (nodes + tets + boundary kinds)
// and a reader for legacy-ASCII VTK unstructured grids restricted to
// tetrahedra — enough to round-trip our own write_vtk output and to import
// externally generated tet meshes (the role SALOME plays in the paper).

#include <string>

#include "mesh/tetmesh.hpp"

namespace dsmcpic::mesh {

/// Writes nodes/tets/boundary classification to a binary file.
void write_native(const TetMesh& mesh, const std::string& path);

/// Reads a mesh written by write_native. Adjacency is rebuilt; the stored
/// boundary kinds are re-applied.
TetMesh read_native(const std::string& path);

/// Reads a legacy-ASCII VTK unstructured grid containing only tetrahedra
/// (cell type 10). The boundary is NOT classified — call classify_boundary
/// with a geometric classifier afterwards.
TetMesh read_vtk(const std::string& path);

}  // namespace dsmcpic::mesh
