#pragma once
// Mesh quality metrics for tetrahedral grids. DSMC statistics and FEM
// conditioning both degrade on sliver elements, so the generator's output
// is audited with the standard measures: radius ratio (3 * inradius /
// circumradius, 1 for the regular tet), minimum dihedral angle, and
// edge-length ratio.

#include <cstdint>
#include <vector>

#include "mesh/tetmesh.hpp"

namespace dsmcpic::mesh {

struct TetQuality {
  double radius_ratio = 0.0;       // 3 r_in / r_circ, in (0, 1]
  double min_dihedral_deg = 0.0;   // smallest dihedral angle [degrees]
  double max_dihedral_deg = 0.0;
  double edge_ratio = 1.0;         // longest edge / shortest edge, >= 1
};

/// Quality of a single tetrahedron.
TetQuality tet_quality(const TetMesh& mesh, std::int32_t t);

struct QualityReport {
  std::int32_t num_tets = 0;
  double min_radius_ratio = 1.0;
  double mean_radius_ratio = 0.0;
  double min_dihedral_deg = 180.0;
  double max_edge_ratio = 1.0;
  double min_volume = 0.0;
  double max_volume = 0.0;
  /// Tets with radius ratio below the sliver threshold (0.1).
  std::int32_t slivers = 0;
};

/// Sweeps the whole mesh.
QualityReport assess_quality(const TetMesh& mesh);

}  // namespace dsmcpic::mesh
