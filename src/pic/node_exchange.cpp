#include "pic/node_exchange.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace dsmcpic::pic {

NodeExchange::NodeExchange(const FineGrid& grid,
                           std::span<const std::int32_t> coarse_owner,
                           int nranks)
    : nranks_(nranks) {
  const mesh::TetMesh& fine = grid.fine();
  DSMCPIC_CHECK(static_cast<std::int32_t>(coarse_owner.size()) ==
                grid.coarse().num_tets());

  node_owner_.assign(static_cast<std::size_t>(fine.num_nodes()), -1);
  std::vector<std::vector<std::int32_t>> sets(nranks);
  for (std::int32_t fc = 0; fc < fine.num_tets(); ++fc) {
    const int r = coarse_owner[grid.parent_of(fc)];
    DSMCPIC_CHECK_MSG(r >= 0 && r < nranks, "bad owner for coarse cell");
    for (const std::int32_t n : fine.tet(fc)) {
      sets[r].push_back(n);
      // Owner = smallest touching rank.
      if (node_owner_[n] == -1 || r < node_owner_[n]) node_owner_[n] = r;
    }
  }
  rank_nodes_.resize(nranks);
  for (int r = 0; r < nranks; ++r) {
    auto& s = sets[r];
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    rank_nodes_[r] = std::move(s);
  }

  // Build matching ghost/owner plans (iterate ghosts in ascending global id
  // so both sides agree on ordering).
  ghost_plan_.resize(nranks);
  owner_plan_.resize(nranks);
  std::vector<std::map<int, Plan>> ghost_acc(nranks), owner_acc(nranks);
  for (int r = 0; r < nranks; ++r) {
    for (std::size_t i = 0; i < rank_nodes_[r].size(); ++i) {
      const std::int32_t g = rank_nodes_[r][i];
      const int o = node_owner_[g];
      if (o == r) continue;
      auto& gp = ghost_acc[r][o];
      gp.peer = o;
      gp.idx.push_back(static_cast<std::int32_t>(i));
      auto& op = owner_acc[o][r];
      op.peer = r;
      const std::int32_t li = local_index(o, g);
      DSMCPIC_CHECK_MSG(li >= 0, "owner rank missing its own shared node");
      op.idx.push_back(li);
    }
  }
  for (int r = 0; r < nranks; ++r) {
    for (auto& [peer, plan] : ghost_acc[r]) ghost_plan_[r].push_back(std::move(plan));
    for (auto& [peer, plan] : owner_acc[r]) owner_plan_[r].push_back(std::move(plan));
  }
}

std::int32_t NodeExchange::local_index(int r, std::int32_t g) const {
  const auto& s = rank_nodes_[r];
  const auto it = std::lower_bound(s.begin(), s.end(), g);
  if (it == s.end() || *it != g) return -1;
  return static_cast<std::int32_t>(it - s.begin());
}

std::vector<std::vector<double>> NodeExchange::make_values() const {
  std::vector<std::vector<double>> v(nranks_);
  for (int r = 0; r < nranks_; ++r) v[r].assign(rank_nodes_[r].size(), 0.0);
  return v;
}

double NodeExchange::sum_owned(
    const std::vector<std::vector<double>>& values) const {
  double total = 0.0;
  for (int r = 0; r < nranks_; ++r) {
    const auto& nodes = rank_nodes_[r];
    for (std::size_t i = 0; i < nodes.size(); ++i)
      if (node_owner_[nodes[i]] == r) total += values[r][i];
  }
  return total;
}

void NodeExchange::reduce_to_owners(par::Runtime& rt, const std::string& phase,
                                    std::vector<std::vector<double>>& values) const {
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    for (const auto& plan : ghost_plan_[r]) {
      auto buf = c.acquire_payload(plan.idx.size() * sizeof(double));
      auto* d = reinterpret_cast<double*>(buf.data());
      for (std::size_t i = 0; i < plan.idx.size(); ++i)
        d[i] = values[r][plan.idx[i]];
      c.charge(par::WorkKind::kPackByte, static_cast<double>(buf.size()));
      c.send_owned(plan.peer, 0, std::move(buf), par::CostClass::kGrid);
    }
  });
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    for (const auto& msg : c.inbox()) {
      const auto buf = msg.view<double>();
      const auto it = std::find_if(
          owner_plan_[r].begin(), owner_plan_[r].end(),
          [&msg](const Plan& p) { return p.peer == msg.src; });
      DSMCPIC_CHECK_MSG(it != owner_plan_[r].end(),
                        "unexpected node-reduce message from " << msg.src);
      DSMCPIC_CHECK(buf.size() == it->idx.size());
      for (std::size_t i = 0; i < buf.size(); ++i)
        values[r][it->idx[i]] += buf[i];
      c.charge(par::WorkKind::kVecFlop, static_cast<double>(buf.size()));
    }
  });
}

void NodeExchange::broadcast_from_owners(
    par::Runtime& rt, const std::string& phase,
    std::vector<std::vector<double>>& values) const {
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    for (const auto& plan : owner_plan_[r]) {
      auto buf = c.acquire_payload(plan.idx.size() * sizeof(double));
      auto* d = reinterpret_cast<double*>(buf.data());
      for (std::size_t i = 0; i < plan.idx.size(); ++i)
        d[i] = values[r][plan.idx[i]];
      c.charge(par::WorkKind::kPackByte, static_cast<double>(buf.size()));
      c.send_owned(plan.peer, 0, std::move(buf), par::CostClass::kGrid);
    }
  });
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    for (const auto& msg : c.inbox()) {
      const auto buf = msg.view<double>();
      const auto it = std::find_if(
          ghost_plan_[r].begin(), ghost_plan_[r].end(),
          [&msg](const Plan& p) { return p.peer == msg.src; });
      DSMCPIC_CHECK_MSG(it != ghost_plan_[r].end(),
                        "unexpected node-broadcast message from " << msg.src);
      DSMCPIC_CHECK(buf.size() == it->idx.size());
      for (std::size_t i = 0; i < buf.size(); ++i)
        values[r][it->idx[i]] = buf[i];
    }
  });
}

}  // namespace dsmcpic::pic
