#pragma once
// Fine-grid helper: wraps the nested PIC mesh (8 children per coarse DSMC
// cell, paper Fig. 2) with parent-aware point location and the linear-FEM
// basis gradients used for deposition, field evaluation and assembly.

#include <array>
#include <cstdint>

#include "mesh/refine.hpp"
#include "mesh/tetmesh.hpp"

namespace dsmcpic::pic {

class FineGrid {
 public:
  FineGrid(const mesh::TetMesh& coarse, const mesh::RefinedMesh& refined)
      : coarse_(&coarse), fine_(&refined.mesh) {}

  const mesh::TetMesh& coarse() const { return *coarse_; }
  const mesh::TetMesh& fine() const { return *fine_; }

  std::int32_t parent_of(std::int32_t fine_cell) const { return fine_cell / 8; }
  std::int32_t first_child(std::int32_t coarse_cell) const {
    return coarse_cell * 8;
  }

  /// Locates the fine cell containing p, given its coarse cell: tries the 8
  /// nested children, then falls back to a walk on the fine mesh. Returns -1
  /// only if p is genuinely outside.
  std::int32_t locate(std::int32_t coarse_cell, const Vec3& p) const;

  /// Gradients of the four linear basis functions on a fine tet (constant
  /// per tet): grad(lambda_i) such that lambda_i(node_j) = delta_ij.
  std::array<Vec3, 4> basis_gradients(std::int32_t fine_cell) const;

 private:
  const mesh::TetMesh* coarse_;
  const mesh::TetMesh* fine_;
};

}  // namespace dsmcpic::pic
