#pragma once
// Electric field evaluation: E = -grad(phi) is constant per fine tet under
// linear FEM (paper Eq. 3); evaluated on demand at particle locations.

#include <cstdint>
#include <span>

#include "pic/fine_grid.hpp"

namespace dsmcpic::pic {

/// E inside `fine_cell`, from nodal potentials stored compactly:
/// `phi_local` is indexed like `sorted_nodes` (ascending global fine-node
/// ids). All four cell nodes must be present in the set.
Vec3 efield_in_cell(const FineGrid& grid, std::int32_t fine_cell,
                    std::span<const std::int32_t> sorted_nodes,
                    std::span<const double> phi_local);

/// E from a full global potential vector (serial driver / tests).
Vec3 efield_in_cell_global(const FineGrid& grid, std::int32_t fine_cell,
                           std::span<const double> phi_global);

}  // namespace dsmcpic::pic
