#pragma once
// Electrostatic Poisson problem on the fine PIC grid (paper Sec. III-C):
//   -lap(phi) = rho / eps0
// discretized with linear finite elements on tetrahedra, producing the
// sparse symmetric positive definite stiffness system K phi = b of Eq. (5).
// (The paper calls K "diagonally dominant"; exact dominance requires a
// well-centered mesh — Kuhn tets give a few positive off-diagonals, but K
// stays SPD, which is all CG needs.) Dirichlet boundaries (inlet at
// phi_inlet, outlet grounded) are eliminated symmetrically; walls are
// natural (Neumann) boundaries.

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/csr.hpp"
#include "mesh/tetmesh.hpp"

namespace dsmcpic::pic {

struct PoissonBCs {
  double phi_inlet = 100.0;  // V
  double phi_outlet = 0.0;   // V
};

class PoissonSystem {
 public:
  /// `fine` must have its boundary classified (inlet/outlet/wall).
  PoissonSystem(const mesh::TetMesh& fine, PoissonBCs bcs);

  std::int32_t num_nodes() const { return num_nodes_; }

  /// Stiffness matrix with Dirichlet rows/columns eliminated (identity rows
  /// at constrained nodes); symmetric positive definite.
  const linalg::CsrMatrix& matrix() const { return k_; }

  /// Lumped nodal volume (1/4 of each adjacent tet).
  std::span<const double> lumped_volume() const { return lumped_volume_; }

  std::span<const std::uint8_t> is_dirichlet() const { return dirichlet_; }
  std::span<const double> dirichlet_value() const { return dirichlet_value_; }

  /// Builds the right-hand side from accumulated nodal charge [C·sim-scale]:
  /// free nodes get charge/eps0 plus the (precomputed) Dirichlet coupling;
  /// Dirichlet nodes get their boundary value.
  std::vector<double> rhs(std::span<const double> node_charge) const;

  /// Single-node RHS value (the distributed path builds per-rank RHS
  /// segments from owned nodes only).
  double rhs_at(std::int32_t node, double node_charge) const;

  /// Number of FEM elements assembled (for work accounting).
  std::int64_t elements_assembled() const { return elements_; }

 private:
  std::int32_t num_nodes_ = 0;
  std::int64_t elements_ = 0;
  linalg::CsrMatrix k_;
  std::vector<double> lumped_volume_;
  std::vector<std::uint8_t> dirichlet_;
  std::vector<double> dirichlet_value_;
  std::vector<double> bc_rhs_;  // -K_fd * phi_d contribution to free rows
};

}  // namespace dsmcpic::pic
