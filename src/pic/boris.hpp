#pragma once
// Boris particle pusher (paper Sec. III-C: "we use the Boris method to
// calculate the numerical value of the velocity"). Handles E-only pushes
// (B = 0, the paper's default) and the constant-B case via the standard
// half-acceleration / rotation / half-acceleration scheme.

#include "support/vec3.hpp"

namespace dsmcpic::pic {

/// Advances a velocity by dt under fields E, B for charge-to-mass ratio
/// q/m. Exact energy-conserving rotation for the magnetic part.
inline Vec3 boris_push(const Vec3& v, const Vec3& e, const Vec3& b,
                       double q_over_m, double dt) {
  const double h = 0.5 * q_over_m * dt;
  // Half electric acceleration.
  const Vec3 v_minus = v + e * h;
  // Magnetic rotation.
  const Vec3 t = b * h;
  const double t2 = t.norm2();
  if (t2 == 0.0) return v_minus + e * h;  // pure electrostatic push
  const Vec3 v_prime = v_minus + cross(v_minus, t);
  const Vec3 s = t * (2.0 / (1.0 + t2));
  const Vec3 v_plus = v_minus + cross(v_prime, s);
  // Second half electric acceleration.
  return v_plus + e * h;
}

}  // namespace dsmcpic::pic
