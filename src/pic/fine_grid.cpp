#include "pic/fine_grid.hpp"

#include "support/error.hpp"

namespace dsmcpic::pic {

std::int32_t FineGrid::locate(std::int32_t coarse_cell, const Vec3& p) const {
  DSMCPIC_CHECK(coarse_cell >= 0 && coarse_cell < coarse_->num_tets());
  const std::int32_t base = first_child(coarse_cell);
  // The 8 children tile the parent exactly; a point in the parent is in one
  // of them (ties on internal faces resolved by the first match).
  for (int k = 0; k < 8; ++k)
    if (fine_->contains(base + k, p, 1e-9)) return base + k;
  // Floating-point edge case near the parent boundary: walk on the fine mesh.
  return fine_->locate(p, base);
}

std::array<Vec3, 4> FineGrid::basis_gradients(std::int32_t fine_cell) const {
  const auto& t = fine_->tet(fine_cell);
  std::array<Vec3, 4> g;
  for (int i = 0; i < 4; ++i) {
    const Vec3& pi = fine_->node(t[i]);
    const Vec3& p1 = fine_->node(t[(i + 1) & 3]);
    const Vec3& p2 = fine_->node(t[(i + 2) & 3]);
    const Vec3& p3 = fine_->node(t[(i + 3) & 3]);
    // Normal of the opposite face, normalized so grad(lambda_i) . (pi - p1)
    // equals lambda_i(pi) - lambda_i(p1) = 1.
    const Vec3 raw = cross(p2 - p1, p3 - p1);
    const double s = dot(raw, pi - p1);
    DSMCPIC_CHECK_MSG(s != 0.0, "degenerate fine tet " << fine_cell);
    g[i] = raw / s;
  }
  return g;
}

}  // namespace dsmcpic::pic
