#include "pic/poisson.hpp"

#include "dsmc/species.hpp"
#include "pic/fine_grid.hpp"
#include "support/error.hpp"

namespace dsmcpic::pic {

PoissonSystem::PoissonSystem(const mesh::TetMesh& fine, PoissonBCs bcs) {
  num_nodes_ = fine.num_nodes();
  elements_ = fine.num_tets();
  lumped_volume_.assign(static_cast<std::size_t>(num_nodes_), 0.0);
  dirichlet_.assign(static_cast<std::size_t>(num_nodes_), 0);
  dirichlet_value_.assign(static_cast<std::size_t>(num_nodes_), 0.0);

  // Dirichlet nodes: every node on an inlet or outlet boundary face.
  auto mark = [&](mesh::BoundaryKind kind, double value) {
    for (const auto& bf : fine.boundary_faces(kind)) {
      for (const std::int32_t n : fine.face_nodes(bf.tet, bf.face)) {
        dirichlet_[n] = 1;
        dirichlet_value_[n] = value;
      }
    }
  };
  mark(mesh::BoundaryKind::kInlet, bcs.phi_inlet);
  mark(mesh::BoundaryKind::kOutlet, bcs.phi_outlet);
  bool any_dirichlet = false;
  for (const auto d : dirichlet_) any_dirichlet |= (d != 0);
  DSMCPIC_CHECK_MSG(any_dirichlet,
                    "Poisson system needs at least one Dirichlet node "
                    "(was the fine mesh boundary classified?)");

  // Element stiffness: Ke_ij = grad(lambda_i) . grad(lambda_j) * V_e.
  std::vector<linalg::Triplet> trips;
  trips.reserve(static_cast<std::size_t>(fine.num_tets()) * 16);
  for (std::int32_t t = 0; t < fine.num_tets(); ++t) {
    const auto& nd = fine.tet(t);
    const double vol = fine.volume(t);
    for (const std::int32_t n : nd)
      lumped_volume_[n] += vol * 0.25;

    // Basis gradients (same formula as FineGrid::basis_gradients; recomputed
    // here so PoissonSystem depends only on the mesh).
    std::array<Vec3, 4> g;
    for (int i = 0; i < 4; ++i) {
      const Vec3& pi = fine.node(nd[i]);
      const Vec3& p1 = fine.node(nd[(i + 1) & 3]);
      const Vec3& p2 = fine.node(nd[(i + 2) & 3]);
      const Vec3& p3 = fine.node(nd[(i + 3) & 3]);
      const Vec3 raw = cross(p2 - p1, p3 - p1);
      const double s = dot(raw, pi - p1);
      DSMCPIC_CHECK_MSG(s != 0.0, "degenerate tet " << t);
      g[i] = raw / s;
    }
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        trips.push_back({nd[i], nd[j], dot(g[i], g[j]) * vol});
  }
  const linalg::CsrMatrix full =
      linalg::CsrMatrix::from_triplets(num_nodes_, num_nodes_, trips);

  // Symmetric Dirichlet elimination:
  //   free row i:   keep K_ij for free j;  bc_rhs_i = -sum_d K_id * phi_d
  //   dirichlet d:  identity row, rhs = phi_d.
  bc_rhs_.assign(static_cast<std::size_t>(num_nodes_), 0.0);
  std::vector<linalg::Triplet> reduced;
  reduced.reserve(trips.size());
  const auto& rp = full.row_ptr();
  const auto& ci = full.col_idx();
  const auto& vals = full.values();
  for (std::int32_t i = 0; i < num_nodes_; ++i) {
    if (dirichlet_[i]) {
      reduced.push_back({i, i, 1.0});
      continue;
    }
    for (std::int64_t e = rp[i]; e < rp[i + 1]; ++e) {
      const std::int32_t j = ci[static_cast<std::size_t>(e)];
      const double v = vals[static_cast<std::size_t>(e)];
      if (dirichlet_[j])
        bc_rhs_[i] -= v * dirichlet_value_[j];
      else
        reduced.push_back({i, j, v});
    }
  }
  k_ = linalg::CsrMatrix::from_triplets(num_nodes_, num_nodes_, reduced);
}

std::vector<double> PoissonSystem::rhs(std::span<const double> node_charge) const {
  DSMCPIC_CHECK(static_cast<std::int32_t>(node_charge.size()) == num_nodes_);
  std::vector<double> b(static_cast<std::size_t>(num_nodes_));
  for (std::int32_t i = 0; i < num_nodes_; ++i) b[i] = rhs_at(i, node_charge[i]);
  return b;
}

double PoissonSystem::rhs_at(std::int32_t node, double node_charge) const {
  DSMCPIC_CHECK(node >= 0 && node < num_nodes_);
  if (dirichlet_[node]) return dirichlet_value_[node];
  // Weak form with lumped mass: b_i = (rho_i/eps0) V_i = charge_i/eps0.
  return node_charge / dsmc::constants::kEpsilon0 + bc_rhs_[node];
}

}  // namespace dsmcpic::pic
