#include "pic/field.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dsmcpic::pic {

Vec3 efield_in_cell(const FineGrid& grid, std::int32_t fine_cell,
                    std::span<const std::int32_t> sorted_nodes,
                    std::span<const double> phi_local) {
  const auto g = grid.basis_gradients(fine_cell);
  const auto& nd = grid.fine().tet(fine_cell);
  Vec3 e;
  for (int k = 0; k < 4; ++k) {
    const auto it =
        std::lower_bound(sorted_nodes.begin(), sorted_nodes.end(), nd[k]);
    DSMCPIC_CHECK_MSG(it != sorted_nodes.end() && *it == nd[k],
                      "phi missing for node " << nd[k]);
    const double phi = phi_local[static_cast<std::size_t>(
        it - sorted_nodes.begin())];
    e -= g[k] * phi;  // E = -grad(phi) = -sum phi_k grad(lambda_k)
  }
  return e;
}

Vec3 efield_in_cell_global(const FineGrid& grid, std::int32_t fine_cell,
                           std::span<const double> phi_global) {
  const auto g = grid.basis_gradients(fine_cell);
  const auto& nd = grid.fine().tet(fine_cell);
  Vec3 e;
  for (int k = 0; k < 4; ++k) e -= g[k] * phi_global[nd[k]];
  return e;
}

}  // namespace dsmcpic::pic
