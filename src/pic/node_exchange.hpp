#pragma once
// Shared-node communication for the PIC field quantities (paper Sec. IV-C:
// "for boundary nodes belonging to multiple parallel processes, their charge
// density should be the sum of the charge densities from all neighboring
// processes ... we first apply reduction summation").
//
// Each rank holds compact per-node vectors over the fine-grid nodes its
// local fine cells touch. Nodes shared across ranks have a unique owner
// (the smallest touching rank); reduce_to_owners ships ghost contributions
// to owners, broadcast_from_owners ships owner values back to ghosts.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "par/runtime.hpp"
#include "pic/fine_grid.hpp"

namespace dsmcpic::pic {

class NodeExchange {
 public:
  /// `coarse_owner` maps each coarse cell to its rank; fine cells inherit
  /// their parent's owner.
  NodeExchange(const FineGrid& grid, std::span<const std::int32_t> coarse_owner,
               int nranks);

  int nranks() const { return nranks_; }

  /// Global node -> owning rank (every node touched by at least one cell).
  const std::vector<std::int32_t>& node_owner() const { return node_owner_; }

  /// Sorted global node ids used by rank r's fine cells.
  const std::vector<std::int32_t>& rank_nodes(int r) const {
    return rank_nodes_[r];
  }

  /// Local index of global node g on rank r (-1 when absent). O(log n).
  std::int32_t local_index(int r, std::int32_t g) const;

  /// values[r] is indexed like rank_nodes(r). Sums every ghost entry into
  /// its owner's entry. Ghost entries are left untouched (stale) — call
  /// broadcast_from_owners to refresh them.
  void reduce_to_owners(par::Runtime& rt, const std::string& phase,
                        std::vector<std::vector<double>>& values) const;

  /// Copies each owned entry out to all ranks holding the node as a ghost.
  void broadcast_from_owners(par::Runtime& rt, const std::string& phase,
                             std::vector<std::vector<double>>& values) const;

  /// Convenience: fresh zeroed per-rank value vectors.
  std::vector<std::vector<double>> make_values() const;

  /// Sum of the OWNED entries of per-rank values (each global node counted
  /// exactly once, at its owner). After reduce_to_owners this is the global
  /// total of the reduced field — the number the health auditor balances
  /// against the particle charge. Pure read.
  double sum_owned(const std::vector<std::vector<double>>& values) const;

 private:
  struct Plan {
    int peer = -1;
    std::vector<std::int32_t> idx;  // local indices on *this* rank
  };

  int nranks_;
  std::vector<std::int32_t> node_owner_;
  std::vector<std::vector<std::int32_t>> rank_nodes_;
  // ghost_plan_[r]: per owner-peer, r's local indices of ghosts owned by peer.
  std::vector<std::vector<Plan>> ghost_plan_;
  // owner_plan_[o]: per ghost-peer, o's local indices in matching order.
  std::vector<std::vector<Plan>> owner_plan_;
};

}  // namespace dsmcpic::pic
