#include "pic/deposit.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dsmcpic::pic {

namespace {

std::int32_t local_of(std::span<const std::int32_t> sorted_nodes,
                      std::int32_t g) {
  const auto it = std::lower_bound(sorted_nodes.begin(), sorted_nodes.end(), g);
  DSMCPIC_CHECK_MSG(it != sorted_nodes.end() && *it == g,
                    "deposited node " << g << " missing from the rank node set");
  return static_cast<std::int32_t>(it - sorted_nodes.begin());
}

}  // namespace

DepositStats deposit_charge(const dsmc::ParticleStore& store,
                            const FineGrid& grid,
                            const dsmc::SpeciesTable& table,
                            std::span<const std::int32_t> sorted_nodes,
                            std::span<const std::uint8_t> removed,
                            std::span<double> node_charge) {
  DSMCPIC_CHECK(node_charge.size() == sorted_nodes.size());
  DepositStats stats;
  const auto positions = store.positions();
  const auto cells = store.cells();
  const auto species = store.species();
  const mesh::TetMesh& fine = grid.fine();

  for (std::size_t i = 0; i < store.size(); ++i) {
    if (!removed.empty() && removed[i]) continue;
    const dsmc::Species& sp = table[species[i]];
    if (!sp.charged()) continue;
    const std::int32_t fc = grid.locate(cells[i], positions[i]);
    if (fc < 0) {
      ++stats.lost;
      continue;
    }
    const auto w = fine.barycentric(fc, positions[i]);
    const double q = sp.charge * sp.fnum;
    const auto& nd = fine.tet(fc);
    for (int k = 0; k < 4; ++k)
      node_charge[local_of(sorted_nodes, nd[k])] += q * w[k];
    ++stats.deposited;
  }
  return stats;
}

}  // namespace dsmcpic::pic
