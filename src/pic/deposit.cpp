#include "pic/deposit.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace dsmcpic::pic {

namespace {

std::int32_t local_of(std::span<const std::int32_t> sorted_nodes,
                      std::int32_t g) {
  const auto it = std::lower_bound(sorted_nodes.begin(), sorted_nodes.end(), g);
  DSMCPIC_CHECK_MSG(it != sorted_nodes.end() && *it == g,
                    "deposited node " << g << " missing from the rank node set");
  return static_cast<std::int32_t>(it - sorted_nodes.begin());
}

}  // namespace

DepositStats deposit_charge(const dsmc::ParticleStore& store,
                            const FineGrid& grid,
                            const dsmc::SpeciesTable& table,
                            std::span<const std::int32_t> sorted_nodes,
                            std::span<const std::uint8_t> removed,
                            std::span<double> node_charge,
                            const support::KernelExec* exec,
                            DepositScratch* scratch) {
  DSMCPIC_CHECK(node_charge.size() == sorted_nodes.size());
  DepositStats stats;
  const auto positions = store.positions();
  const auto cells = store.cells();
  const auto species = store.species();
  const mesh::TetMesh& fine = grid.fine();
  const std::int64_t n = static_cast<std::int64_t>(store.size());

  if (!exec || exec->serial() || !scratch) {
    for (std::int64_t i = 0; i < n; ++i) {
      if (!removed.empty() && removed[i]) continue;
      const dsmc::Species& sp = table[species[i]];
      if (!sp.charged()) continue;
      const std::int32_t fc = grid.locate(cells[i], positions[i]);
      if (fc < 0) {
        ++stats.lost;
        continue;
      }
      const auto w = fine.barycentric(fc, positions[i]);
      const double q = sp.charge * sp.fnum;
      const auto& nd = fine.tet(fc);
      for (int k = 0; k < 4; ++k)
        node_charge[local_of(sorted_nodes, nd[k])] += q * w[k];
      ++stats.deposited;
    }
    return stats;
  }

  // Phase 1 (parallel): per-particle contributions into disjoint scratch
  // slots. Phase 2 (serial): scatter in particle order, so the accumulation
  // order — and every bit of node_charge — matches the single-pass loop.
  auto& entries = scratch->entries;
  if (entries.size() < static_cast<std::size_t>(n))
    entries.resize(static_cast<std::size_t>(n));
  exec->for_chunks(n, [&](int, std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      DepositScratch::Entry& e = entries[i];
      if (!removed.empty() && removed[i]) {
        e.status = 0;
        continue;
      }
      const dsmc::Species& sp = table[species[i]];
      if (!sp.charged()) {
        e.status = 0;
        continue;
      }
      const std::int32_t fc = grid.locate(cells[i], positions[i]);
      if (fc < 0) {
        e.status = 2;
        continue;
      }
      const auto w = fine.barycentric(fc, positions[i]);
      const double q = sp.charge * sp.fnum;
      const auto& nd = fine.tet(fc);
      for (int k = 0; k < 4; ++k) {
        e.node[k] = local_of(sorted_nodes, nd[k]);
        e.val[k] = q * w[k];
      }
      e.status = 1;
    }
  });
  for (std::int64_t i = 0; i < n; ++i) {
    const DepositScratch::Entry& e = entries[i];
    if (e.status == 0) continue;
    if (e.status == 2) {
      ++stats.lost;
      continue;
    }
    for (int k = 0; k < 4; ++k) node_charge[e.node[k]] += e.val[k];
    ++stats.deposited;
  }
  return stats;
}

}  // namespace dsmcpic::pic
