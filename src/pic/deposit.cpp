#include "pic/deposit.hpp"

#include <algorithm>
#include <array>

#include "support/error.hpp"

namespace dsmcpic::pic {

namespace {

// Fixed block count of the deterministic reduction. Chosen as a function of
// the candidate count ALONE (never the thread count), so the floating-point
// grouping is invariant across executors; 16 blocks keep any realistic
// kernel pool busy while the per-block node buffers stay cache-resident.
constexpr int kDepositBlocks = 16;
constexpr std::int64_t kDepositBlockCutoff = 4096;

std::int32_t local_of(std::span<const std::int32_t> sorted_nodes,
                      std::int32_t g) {
  const auto it = std::lower_bound(sorted_nodes.begin(), sorted_nodes.end(), g);
  DSMCPIC_CHECK_MSG(it != sorted_nodes.end() && *it == g,
                    "deposited node " << g << " missing from the rank node set");
  return static_cast<std::int32_t>(it - sorted_nodes.begin());
}

}  // namespace

DepositStats deposit_charge(const dsmc::ParticleStore& store,
                            const FineGrid& grid,
                            const dsmc::SpeciesTable& table,
                            std::span<const std::int32_t> sorted_nodes,
                            std::span<const std::uint8_t> removed,
                            std::span<double> node_charge,
                            const support::KernelExec* exec,
                            DepositScratch* scratch) {
  DSMCPIC_CHECK(node_charge.size() == sorted_nodes.size());
  DepositStats stats;
  const auto px = store.px();
  const auto py = store.py();
  const auto pz = store.pz();
  const auto cells = store.cells();
  const auto species = store.species();
  const mesh::TetMesh& fine = grid.fine();
  const std::int64_t n = static_cast<std::int64_t>(store.size());

  DepositScratch local;
  DepositScratch& scr = scratch ? *scratch : local;

  // Cell-major traversal order over the deposit candidates (charged, not
  // removed): counting-sort by coarse cell, then ascending particle id
  // within each cell. The id sort matters: store slots are layout history
  // (intra-rank cell changes keep their old slot), so slot order within a
  // cell differs between sorted and unsorted runs — ids do not. With it,
  // the traversal and every floating-point grouping derived from it below
  // are invariant across executors and sort-every settings.
  const std::int32_t num_cells = grid.coarse().num_tets();
  const auto ids = store.ids();
  const auto candidate = [&](std::int64_t i) {
    if (!removed.empty() && removed[i]) return false;
    return table[species[i]].charged();
  };
  scr.start.assign(static_cast<std::size_t>(num_cells) + 1, 0);
  for (std::int64_t i = 0; i < n; ++i) {
    if (!candidate(i)) continue;
    DSMCPIC_CHECK(cells[i] >= 0 && cells[i] < num_cells);
    ++scr.start[static_cast<std::size_t>(cells[i]) + 1];
  }
  for (std::size_t c = 1; c < scr.start.size(); ++c)
    scr.start[c] += scr.start[c - 1];
  const std::int64_t m = scr.start.back();
  if (m == 0) return stats;
  scr.cursor.assign(scr.start.begin(), scr.start.end() - 1);
  scr.order.resize(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < n; ++i)
    if (candidate(i))
      scr.order[static_cast<std::size_t>(scr.cursor[cells[i]]++)] =
          static_cast<std::int32_t>(i);
  for (std::int32_t c = 0; c < num_cells; ++c)
    std::stable_sort(scr.order.begin() + scr.start[c],
                     scr.order.begin() + scr.start[c + 1],
                     [&ids](std::int32_t a, std::int32_t b) {
                       return ids[a] < ids[b];
                     });

  const auto scatter_one = [&](std::int32_t i, std::span<double> acc,
                               DepositStats& out) {
    const Vec3 pos{px[i], py[i], pz[i]};
    const std::int32_t fc = grid.locate(cells[i], pos);
    if (fc < 0) {
      ++out.lost;
      return;
    }
    const auto w = fine.barycentric(fc, pos);
    const dsmc::Species& sp = table[species[i]];
    const double q = sp.charge * sp.fnum;
    const auto& nd = fine.tet(fc);
    for (int k = 0; k < 4; ++k)
      acc[static_cast<std::size_t>(local_of(sorted_nodes, nd[k]))] += q * w[k];
    ++out.deposited;
  };

  const int nblocks = (m >= kDepositBlockCutoff) ? kDepositBlocks : 1;
  if (nblocks == 1) {
    for (std::int64_t t = 0; t < m; ++t)
      scatter_one(scr.order[static_cast<std::size_t>(t)], node_charge, stats);
    return stats;
  }

  // Phase A: each block scatters its contiguous slice of the traversal into
  // a private node buffer. Block boundaries are an arithmetic split of the
  // candidate count; they need not align to cell boundaries because the
  // within-block accumulation order is position in `order`, not cell.
  const std::size_t nnodes = node_charge.size();
  scr.block_charge.resize(static_cast<std::size_t>(nblocks) * nnodes);
  std::array<DepositStats, kDepositBlocks> bstats{};
  const auto run_block = [&](int b) {
    const std::int64_t begin = m * b / nblocks;
    const std::int64_t end = m * (b + 1) / nblocks;
    const std::span<double> acc(
        scr.block_charge.data() + static_cast<std::size_t>(b) * nnodes, nnodes);
    std::fill(acc.begin(), acc.end(), 0.0);
    for (std::int64_t t = begin; t < end; ++t)
      scatter_one(scr.order[static_cast<std::size_t>(t)], acc, bstats[b]);
  };
  if (exec) {
    exec->for_tasks(nblocks, run_block);
  } else {
    for (int b = 0; b < nblocks; ++b) run_block(b);
  }

  // Phase B: reduce each node over the blocks in ascending order — a left
  // fold whose grouping is fixed by (m, nnodes) alone. Nodes are
  // independent, so the reduction itself may be chunked freely.
  const auto reduce_range = [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t j = begin; j < end; ++j) {
      double s = node_charge[static_cast<std::size_t>(j)];
      for (int b = 0; b < nblocks; ++b)
        s += scr.block_charge[static_cast<std::size_t>(b) * nnodes +
                              static_cast<std::size_t>(j)];
      node_charge[static_cast<std::size_t>(j)] = s;
    }
  };
  if (exec && !exec->serial()) {
    exec->for_chunks(static_cast<std::int64_t>(nnodes),
                     [&](int, std::int64_t b, std::int64_t e) {
                       reduce_range(b, e);
                     });
  } else {
    reduce_range(0, static_cast<std::int64_t>(nnodes));
  }

  for (int b = 0; b < nblocks; ++b) {
    stats.deposited += bstats[b].deposited;
    stats.lost += bstats[b].lost;
  }
  return stats;
}

}  // namespace dsmcpic::pic
