#pragma once
// Charge deposition: interpolates each charged particle's charge to the four
// nodes of its fine-grid cell with linear (barycentric) weights — the
// "interpolating the particle charge to the grid nodes" step of the paper's
// PIC cycle (Sec. III-C).
//
// Traversal is cell-major (coarse cell ascending, within-cell store order),
// built from the same counting-sort prefix CellIndex uses, so after the
// periodic cell sort (DESIGN.md §2g) the scatter streams the store
// linearly. The accumulation schedule is a FIXED number of contiguous
// blocks of that traversal, each scattering into its own node buffer,
// reduced per node in ascending block order — a deterministic tree
// reduction whose floating-point grouping depends only on the particle
// population, never on the executor, so node_charge is bit-identical for
// every kernel-thread count and exec mode.

#include <cstdint>
#include <span>
#include <vector>

#include "dsmc/particles.hpp"
#include "dsmc/species.hpp"
#include "pic/fine_grid.hpp"
#include "support/kernel_exec.hpp"

namespace dsmcpic::pic {

struct DepositStats {
  std::int64_t deposited = 0;  // charged particles scattered
  std::int64_t lost = 0;       // particles whose fine cell could not be found
};

/// Reusable per-rank scratch for the blocked deposit: the cell-major
/// traversal order (counting-sort prefix + permutation) and the per-block
/// node-accumulation buffers. Capacities persist across steps so the
/// deposit allocates nothing in steady state.
struct DepositScratch {
  std::vector<std::int64_t> start;    // per-cell prefix sums
  std::vector<std::int64_t> cursor;   // fill scratch
  std::vector<std::int32_t> order;    // cell-major particle traversal
  std::vector<double> block_charge;   // kDepositBlocks x nnodes accumulators
};

/// Scatters charge (q * fnum, in coulomb) of all charged particles into
/// `node_charge`, a compact per-rank vector indexed like `sorted_nodes`
/// (ascending global fine-node ids — see NodeExchange::rank_nodes).
/// Particles flagged in `removed` are skipped.
///
/// The blocked schedule is identical with or without `exec` (serial
/// executors run the same blocks inline, in order), so the result is
/// bit-identical across serial / kernel-thread configurations; `exec` only
/// decides whether blocks run concurrently. `scratch` (optional) carries
/// the traversal and block buffers across steps.
DepositStats deposit_charge(const dsmc::ParticleStore& store,
                            const FineGrid& grid,
                            const dsmc::SpeciesTable& table,
                            std::span<const std::int32_t> sorted_nodes,
                            std::span<const std::uint8_t> removed,
                            std::span<double> node_charge,
                            const support::KernelExec* exec = nullptr,
                            DepositScratch* scratch = nullptr);

}  // namespace dsmcpic::pic
