#pragma once
// Charge deposition: interpolates each charged particle's charge to the four
// nodes of its fine-grid cell with linear (barycentric) weights — the
// "interpolating the particle charge to the grid nodes" step of the paper's
// PIC cycle (Sec. III-C).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dsmc/particles.hpp"
#include "dsmc/species.hpp"
#include "pic/fine_grid.hpp"
#include "support/kernel_exec.hpp"

namespace dsmcpic::pic {

struct DepositStats {
  std::int64_t deposited = 0;  // charged particles scattered
  std::int64_t lost = 0;       // particles whose fine cell could not be found
};

/// Reusable per-rank scratch for the chunked deposit: one precomputed
/// contribution slot per particle. Capacity persists across steps.
struct DepositScratch {
  struct Entry {
    std::array<std::int32_t, 4> node;  // local (rank-compact) node indices
    std::array<double, 4> val;         // q * w[k] per node
    std::int8_t status;                // 0 skipped, 1 deposited, 2 lost
  };
  std::vector<Entry> entries;
};

/// Scatters charge (q * fnum, in coulomb) of all charged particles into
/// `node_charge`, a compact per-rank vector indexed like `sorted_nodes`
/// (ascending global fine-node ids — see NodeExchange::rank_nodes).
/// Particles flagged in `removed` are skipped.
///
/// With `exec`, runs in two phases: the per-particle contributions (locate,
/// barycentric weights, node lookup) are computed in parallel chunks into
/// `scratch`, then scattered serially in particle order — so the floating
/// point accumulation order, and hence every bit of `node_charge`, matches
/// the serial single-pass version.
DepositStats deposit_charge(const dsmc::ParticleStore& store,
                            const FineGrid& grid,
                            const dsmc::SpeciesTable& table,
                            std::span<const std::int32_t> sorted_nodes,
                            std::span<const std::uint8_t> removed,
                            std::span<double> node_charge,
                            const support::KernelExec* exec = nullptr,
                            DepositScratch* scratch = nullptr);

}  // namespace dsmcpic::pic
