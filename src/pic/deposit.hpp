#pragma once
// Charge deposition: interpolates each charged particle's charge to the four
// nodes of its fine-grid cell with linear (barycentric) weights — the
// "interpolating the particle charge to the grid nodes" step of the paper's
// PIC cycle (Sec. III-C).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "dsmc/particles.hpp"
#include "dsmc/species.hpp"
#include "pic/fine_grid.hpp"

namespace dsmcpic::pic {

struct DepositStats {
  std::int64_t deposited = 0;  // charged particles scattered
  std::int64_t lost = 0;       // particles whose fine cell could not be found
};

/// Scatters charge (q * fnum, in coulomb) of all charged particles into
/// `node_charge`, a compact per-rank vector indexed like `sorted_nodes`
/// (ascending global fine-node ids — see NodeExchange::rank_nodes).
/// Particles flagged in `removed` are skipped.
DepositStats deposit_charge(const dsmc::ParticleStore& store,
                            const FineGrid& grid,
                            const dsmc::SpeciesTable& table,
                            std::span<const std::int32_t> sorted_nodes,
                            std::span<const std::uint8_t> removed,
                            std::span<double> node_charge);

}  // namespace dsmcpic::pic
