#include "exchange/exchange.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"

namespace dsmcpic::exchange {

namespace {

using dsmc::ParticleRecord;
using dsmc::ParticleStore;

/// Extracts (and removes from the store) every live particle whose cell is
/// owned by another rank; drops particles flagged as removed. Returns the
/// number of pre-flagged (dead) particles dropped; the extracted records
/// are grouped per destination in `outgoing`.
///
/// Each destination batch is canonicalized by ascending particle id before
/// it ships. Without this a batch inherits the SOURCE store's iteration
/// order, which is memory-layout history (it differs between cell-sorted
/// and unsorted runs, DESIGN.md §2g) — so message payloads, and the
/// receiver's store layout, would depend on the sender's layout. Per-cell
/// traversal semantics are already layout-independent (CellIndex
/// canonicalizes by id), so this sort is about keeping the wire format and
/// the delivered append order deterministic functions of the particle SET.
/// Ids are unique per step (reindex reassigns them globally; spawned-ion
/// ids are 63-bit draws, collision odds ~N/2^63); the stable sort pins any
/// tie to source order.
std::int64_t extract_outgoing(ParticleStore& store,
                              std::vector<std::uint8_t>& removed,
                              std::span<const std::int32_t> cell_owner,
                              int my_rank,
                              std::map<int, std::vector<ParticleRecord>>& outgoing) {
  DSMCPIC_CHECK(removed.size() == store.size());
  const auto cells = store.cells();
  std::int64_t dropped = 0;
  for (std::size_t i = 0; i < store.size(); ++i) {
    if (removed[i]) {
      ++dropped;
      continue;
    }
    const int dest = cell_owner[cells[i]];
    if (dest == my_rank) continue;
    outgoing[dest].push_back(store.record(i));
    removed[i] = 1;  // reuse the flag to drop it in the compaction below
  }
  for (auto& [dest, recs] : outgoing)
    std::stable_sort(recs.begin(), recs.end(),
                     [](const ParticleRecord& a, const ParticleRecord& b) {
                       return a.id < b.id;
                     });
  store.remove_flagged(removed);
  removed.assign(store.size(), 0);
  return dropped;
}

void append_records(ParticleStore& store, std::span<const ParticleRecord> recs) {
  for (const auto& r : recs) store.add(r);
}

ExchangeStats exchange_centralized(par::Runtime& rt, const std::string& phase,
                                   std::vector<ParticleStore>& stores,
                                   std::vector<std::vector<std::uint8_t>>& removed,
                                   std::span<const std::int32_t> cell_owner,
                                   int root) {
  const int nranks = rt.active_ranks();
  ExchangeStats stats;
  // Root-side staging for classify: records pooled from everyone.
  std::vector<ParticleRecord> root_pool;
  // Per-rank drop counts: bodies may run on worker threads, so each rank
  // writes only its own slot and the driver reduces afterwards.
  std::vector<std::int64_t> dropped(nranks, 0);

  // Stage 1 — gather: every rank ships ALL its outgoing to the root in one
  // message (root's own outgoing goes straight to the pool).
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    std::map<int, std::vector<ParticleRecord>> outgoing;
    dropped[r] = extract_outgoing(stores[r], removed[r], cell_owner, r, outgoing);
    std::vector<ParticleRecord> all;
    for (auto& [dest, recs] : outgoing)
      all.insert(all.end(), recs.begin(), recs.end());
    c.charge(par::WorkKind::kScan, static_cast<double>(stores[r].size()));
    c.charge(par::WorkKind::kClassify, static_cast<double>(all.size()));
    if (r == root) {
      root_pool.insert(root_pool.end(), all.begin(), all.end());
    } else if (!all.empty()) {
      c.charge(par::WorkKind::kPackByte,
               static_cast<double>(all.size() * sizeof(ParticleRecord)));
      c.send_pod<ParticleRecord>(root, 0, all);
    }
  });

  // Stage 2 — classify at the root, then scatter per destination.
  rt.superstep(phase, [&](par::Comm& c) {
    if (c.rank() != root) return;
    for (const auto& msg : c.inbox()) {
      const auto recs = msg.view<ParticleRecord>();
      root_pool.insert(root_pool.end(), recs.begin(), recs.end());
    }
    // Classification by destination process (paper Fig. 3 "classify"):
    // the root makes three serialized passes over every record it relays —
    // unpack from the gather buffers, classify by destination, repack into
    // the scatter buffers. This root-side processing is what makes CC lose
    // to DC on Tianhe-2 at scale (paper Table II).
    c.charge(par::WorkKind::kClassify, 3.0 * static_cast<double>(root_pool.size()));
    std::map<int, std::vector<ParticleRecord>> by_dest;
    for (const auto& rec : root_pool)
      by_dest[cell_owner[rec.cell]].push_back(rec);
    stats.migrated = static_cast<std::int64_t>(root_pool.size());
    root_pool.clear();
    for (auto& [dest, recs] : by_dest) {
      if (dest == root) {
        append_records(stores[root], recs);
        continue;
      }
      c.charge(par::WorkKind::kPackByte,
               static_cast<double>(recs.size() * sizeof(ParticleRecord)));
      c.send_pod<ParticleRecord>(dest, 0, recs);
    }
  });

  // Stage 3 — deliver.
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    for (const auto& msg : c.inbox())
      append_records(stores[r], msg.view<ParticleRecord>());
    removed[r].assign(stores[r].size(), 0);
  });

  for (int r = 0; r < nranks; ++r)
    stats.kept += static_cast<std::int64_t>(stores[r].size());
  stats.kept -= stats.migrated;
  for (const std::int64_t d : dropped) stats.dropped += d;
  return stats;
}

ExchangeStats exchange_distributed(par::Runtime& rt, const std::string& phase,
                                   std::vector<ParticleStore>& stores,
                                   std::vector<std::vector<std::uint8_t>>& removed,
                                   std::span<const std::int32_t> cell_owner) {
  const int nranks = rt.active_ranks();
  ExchangeStats stats;
  // Per-rank migration/drop counts: bodies may run on worker threads, so
  // each rank writes only its own slot and the driver reduces afterwards.
  std::vector<std::int64_t> migrated(nranks, 0);
  std::vector<std::int64_t> dropped(nranks, 0);

  // The paper's implementation performs a synchronized two-round send/recv
  // across ALL ordered pairs (Sec. IV-B2), i.e. N(N-1) transactions even
  // when a pair has nothing to exchange. We ship real payloads only where
  // non-empty, charge the empty pairs' handshake latency explicitly, and
  // hint the full transaction count to the congestion model (the runtime
  // computes it from the active rank set, so the hint never drifts from the
  // population that actually exchanged).
  rt.hint_round_transactions_all_pairs();
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    std::map<int, std::vector<ParticleRecord>> outgoing;
    dropped[r] = extract_outgoing(stores[r], removed[r], cell_owner, r, outgoing);
    c.charge(par::WorkKind::kScan, static_cast<double>(stores[r].size()));
    for (int peer = 0; peer < nranks; ++peer) {
      if (peer == r) continue;
      const auto it = outgoing.find(peer);
      if (it == outgoing.end() || it->second.empty()) {
        // Empty ordered pair: still pays send+recv latency in both rounds.
        c.charge_comm_seconds(2.0 * c.alpha_to(peer));
        continue;
      }
      migrated[r] += static_cast<std::int64_t>(it->second.size());
      c.charge(par::WorkKind::kClassify, static_cast<double>(it->second.size()));
      c.charge(par::WorkKind::kPackByte,
               static_cast<double>(it->second.size() * sizeof(ParticleRecord)));
      c.send_pod<ParticleRecord>(peer, 0, it->second);
    }
  });

  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    for (const auto& msg : c.inbox())
      append_records(stores[r], msg.view<ParticleRecord>());
    removed[r].assign(stores[r].size(), 0);
  });

  for (const std::int64_t m : migrated) stats.migrated += m;
  for (const std::int64_t d : dropped) stats.dropped += d;
  for (int r = 0; r < nranks; ++r)
    stats.kept += static_cast<std::int64_t>(stores[r].size());
  stats.kept -= stats.migrated;
  return stats;
}

/// Hierarchical exchange: intra-node funnel to the node leader, all-to-all
/// between node leaders, intra-node fan-out. Three supersteps.
ExchangeStats exchange_hierarchical(par::Runtime& rt, const std::string& phase,
                                    std::vector<ParticleStore>& stores,
                                    std::vector<std::vector<std::uint8_t>>& removed,
                                    std::span<const std::int32_t> cell_owner) {
  const int nranks = rt.active_ranks();
  const int ppn = rt.topology().profile().cores_per_node;
  const int nodes = rt.active_nodes();
  auto leader_of = [ppn](int rank) { return (rank / ppn) * ppn; };

  ExchangeStats stats;
  std::vector<std::int64_t> migrated(nranks, 0);  // per rank; reduced below
  std::vector<std::int64_t> dropped(nranks, 0);

  // Stage 1 — funnel: every rank classifies and ships its whole outgoing
  // set to its node leader (leaders keep theirs locally).
  std::vector<std::vector<ParticleRecord>> leader_pool(nranks);
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    std::map<int, std::vector<ParticleRecord>> outgoing;
    dropped[r] = extract_outgoing(stores[r], removed[r], cell_owner, r, outgoing);
    c.charge(par::WorkKind::kScan, static_cast<double>(stores[r].size()));
    std::vector<ParticleRecord> all;
    for (auto& [dest, recs] : outgoing) {
      migrated[r] += static_cast<std::int64_t>(recs.size());
      all.insert(all.end(), recs.begin(), recs.end());
    }
    const int leader = leader_of(r);
    if (r == leader) {
      leader_pool[r].insert(leader_pool[r].end(), all.begin(), all.end());
    } else if (!all.empty()) {
      c.charge(par::WorkKind::kPackByte,
               static_cast<double>(all.size() * sizeof(ParticleRecord)));
      c.send_pod_vec(leader, 0, all);
    }
  });

  // Stage 2 — leaders exchange between nodes (all ordered leader pairs pay
  // the handshake, like DC but with N_nodes instead of N).
  rt.hint_round_transactions(static_cast<std::uint64_t>(nodes) *
                             std::max(0, nodes - 1));
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    if (r != leader_of(r)) return;
    for (const auto& msg : c.inbox()) {
      const auto recs = msg.view<ParticleRecord>();
      leader_pool[r].insert(leader_pool[r].end(), recs.begin(), recs.end());
    }
    c.charge(par::WorkKind::kClassify,
             static_cast<double>(leader_pool[r].size()));
    // Split the pool by destination node leader; keep same-node records.
    std::map<int, std::vector<ParticleRecord>> by_leader;
    for (const auto& rec : leader_pool[r])
      by_leader[leader_of(cell_owner[rec.cell])].push_back(rec);
    leader_pool[r].clear();
    for (int peer = 0; peer < nranks; peer += ppn) {
      if (peer == r) continue;
      const auto it = by_leader.find(peer);
      if (it == by_leader.end() || it->second.empty()) {
        c.charge_comm_seconds(2.0 * c.alpha_to(peer));
        continue;
      }
      c.charge(par::WorkKind::kPackByte,
               static_cast<double>(it->second.size() * sizeof(ParticleRecord)));
      c.send_pod_vec(peer, 0, it->second);
    }
    if (auto it = by_leader.find(r); it != by_leader.end())
      leader_pool[r] = std::move(it->second);
  });

  // Stage 3 — fan out within each node to the final owners.
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    if (r != leader_of(r)) return;
    for (const auto& msg : c.inbox()) {
      const auto recs = msg.view<ParticleRecord>();
      leader_pool[r].insert(leader_pool[r].end(), recs.begin(), recs.end());
    }
    c.charge(par::WorkKind::kClassify,
             static_cast<double>(leader_pool[r].size()));
    std::map<int, std::vector<ParticleRecord>> by_rank;
    for (const auto& rec : leader_pool[r])
      by_rank[cell_owner[rec.cell]].push_back(rec);
    leader_pool[r].clear();
    for (auto& [dest, recs] : by_rank) {
      if (dest == r) {
        append_records(stores[r], recs);
        continue;
      }
      c.charge(par::WorkKind::kPackByte,
               static_cast<double>(recs.size() * sizeof(ParticleRecord)));
      c.send_pod_vec(dest, 0, recs);
    }
  });

  // Stage 4 — deliver.
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    for (const auto& msg : c.inbox())
      append_records(stores[r], msg.view<ParticleRecord>());
    removed[r].assign(stores[r].size(), 0);
  });

  for (const std::int64_t m : migrated) stats.migrated += m;
  for (const std::int64_t d : dropped) stats.dropped += d;
  for (int r = 0; r < nranks; ++r)
    stats.kept += static_cast<std::int64_t>(stores[r].size());
  stats.kept -= stats.migrated;
  return stats;
}

/// Neighbor exchange: DC's two-round semantics, but each rank's handshake
/// loop walks only its partition-adjacency neighbor list — O(degree) host
/// work per rank instead of O(N). Particles whose destination is NOT a
/// neighbor (long migrations) still ship directly; they just skip the
/// handshake charge, which DC also folds into the payload cost for
/// non-empty pairs. The dense N(N-1) logical-transaction cost is preserved
/// through hint_round_transactions_all_pairs, so NC and DC see the same
/// congestion pressure; what changes is the host-side loop count.
ExchangeStats exchange_neighbor(par::Runtime& rt, const std::string& phase,
                                std::vector<ParticleStore>& stores,
                                std::vector<std::vector<std::uint8_t>>& removed,
                                std::span<const std::int32_t> cell_owner,
                                const std::vector<std::vector<int>>& neighbors) {
  const int nranks = rt.active_ranks();
  DSMCPIC_CHECK_MSG(static_cast<int>(neighbors.size()) >= nranks,
                    "neighbor lists cover " << neighbors.size()
                                            << " ranks, need " << nranks);
  ExchangeStats stats;
  std::vector<std::int64_t> migrated(nranks, 0);
  std::vector<std::int64_t> dropped(nranks, 0);

  rt.hint_round_transactions_all_pairs();
  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    std::map<int, std::vector<ParticleRecord>> outgoing;
    dropped[r] = extract_outgoing(stores[r], removed[r], cell_owner, r, outgoing);
    c.charge(par::WorkKind::kScan, static_cast<double>(stores[r].size()));
    // Handshake with adjacency neighbors that got no payload this round
    // (the synchronized pattern still probes them); non-neighbors are never
    // probed — that's the O(degree) win.
    for (const int peer : neighbors[r]) {
      if (peer == r || peer < 0 || peer >= nranks) continue;
      const auto it = outgoing.find(peer);
      if (it == outgoing.end() || it->second.empty())
        c.charge_comm_seconds(2.0 * c.alpha_to(peer));
    }
    for (auto& [dest, recs] : outgoing) {
      if (recs.empty()) continue;
      migrated[r] += static_cast<std::int64_t>(recs.size());
      c.charge(par::WorkKind::kClassify, static_cast<double>(recs.size()));
      c.charge(par::WorkKind::kPackByte,
               static_cast<double>(recs.size() * sizeof(ParticleRecord)));
      c.send_pod_vec(dest, 0, recs);
    }
  });

  rt.superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    for (const auto& msg : c.inbox())
      append_records(stores[r], msg.view<ParticleRecord>());
    removed[r].assign(stores[r].size(), 0);
  });

  for (const std::int64_t m : migrated) stats.migrated += m;
  for (const std::int64_t d : dropped) stats.dropped += d;
  for (int r = 0; r < nranks; ++r)
    stats.kept += static_cast<std::int64_t>(stores[r].size());
  stats.kept -= stats.migrated;
  return stats;
}

}  // namespace

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kCentralized: return "CC";
    case Strategy::kDistributed: return "DC";
    case Strategy::kHierarchical: return "HC";
    case Strategy::kNeighbor: return "NC";
  }
  return "?";
}

Strategy parse_strategy(const std::string& name) {
  if (name == "CC") return Strategy::kCentralized;
  if (name == "DC") return Strategy::kDistributed;
  if (name == "HC") return Strategy::kHierarchical;
  if (name == "NC") return Strategy::kNeighbor;
  DSMCPIC_CHECK_MSG(false, "unknown exchange strategy '" << name
                                                         << "' (CC|DC|HC|NC)");
  return Strategy::kDistributed;
}

ExchangeStats exchange_particles(
    par::Runtime& rt, const std::string& phase, Strategy strategy,
    std::vector<dsmc::ParticleStore>& stores,
    std::vector<std::vector<std::uint8_t>>& removed,
    std::span<const std::int32_t> cell_owner, int root,
    const std::vector<std::vector<int>>* neighbors) {
  DSMCPIC_CHECK(static_cast<int>(stores.size()) == rt.size());
  DSMCPIC_CHECK(removed.size() == stores.size());
  DSMCPIC_CHECK(root >= 0 && root < rt.active_ranks());
  switch (strategy) {
    case Strategy::kCentralized:
      return exchange_centralized(rt, phase, stores, removed, cell_owner, root);
    case Strategy::kHierarchical:
      return exchange_hierarchical(rt, phase, stores, removed, cell_owner);
    case Strategy::kNeighbor:
      // No adjacency from the caller -> dense fallback (never under-charge).
      if (neighbors)
        return exchange_neighbor(rt, phase, stores, removed, cell_owner,
                                 *neighbors);
      break;
    case Strategy::kDistributed:
      break;
  }
  return exchange_distributed(rt, phase, stores, removed, cell_owner);
}

}  // namespace dsmcpic::exchange
