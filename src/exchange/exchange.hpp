#pragma once
// Particle migration between arbitrary ranks — the paper's DSMC_Exchange /
// PIC_Exchange components with both communication strategies (Sec. IV-B):
//
//  * Centralized (CC): gather -> classify -> scatter through a root rank.
//    ~2N transactions, ~2M particle records over the wire, root serialized.
//  * Distributed (DC): every rank classifies locally and exchanges directly
//    with every other rank in a two-round ordered send/recv pattern.
//    ~N(N-1) transactions (empty pairs still pay the handshake latency),
//    ~M particle records over the wire.
//  * Hierarchical (HC, this library's extension): ranks funnel their
//    outgoing particles to their node's leader rank; leaders exchange
//    all-to-all between nodes (N_nodes*(N_nodes-1) transactions instead of
//    N*(N-1)) and fan in/out within their node. Keeps DC's distributed
//    volume (~2M within nodes + M between) while shrinking the transaction
//    count that throttles DC at scale.
//
//  * Neighbor (NC): like DC, but the per-rank handshake loop walks a
//    partition-adjacency neighbor list instead of every peer — O(degree)
//    per rank instead of O(N). Payloads still ship to ANY destination (a
//    fast particle can out-run the adjacency), and the round still charges
//    the dense N(N-1) logical-transaction cost to the congestion model via
//    Runtime::hint_round_transactions_all_pairs(), so the virtual-time
//    model stays honest; only the host-side loop is sparsified. This is
//    what makes O(10^3-10^4)-rank sweeps tractable.
//
// The ghost-cell method of neighbor-only CFD communication cannot express
// the first three: after a DSMC step a particle's destination cell may be
// owned by any rank (long migration distances), so those strategies address
// all-pairs. All strategies operate on the runtime's ACTIVE rank prefix
// (elastic ensembles park the tail; parked stores must be empty).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dsmc/particles.hpp"
#include "par/runtime.hpp"

namespace dsmcpic::exchange {

enum class Strategy { kCentralized, kDistributed, kHierarchical, kNeighbor };

const char* strategy_name(Strategy s);
/// Parses "CC" / "DC" / "HC" / "NC" (case-sensitive; throws on anything else).
Strategy parse_strategy(const std::string& name);

struct ExchangeStats {
  std::int64_t migrated = 0;  // particles that changed ranks
  std::int64_t kept = 0;      // particles that stayed
  std::int64_t dropped = 0;   // removed-flagged particles compacted away
};

/// Migrates every particle whose cell's owner differs from its current rank.
/// `stores[r]` is rank r's particle store; `cell_owner` maps coarse cells to
/// ranks. `removed[r]` (same length as stores[r]) marks particles that left
/// the domain during the preceding move — they are dropped during the same
/// compaction pass and never shipped. On return every store is compacted and
/// `removed[r]` is reset to match its new size. Costs are charged under
/// `phase` on `rt`. Root (centralized strategy only) defaults to rank 0, as
/// in the paper's Fig. 3.
///
/// `neighbors` (kNeighbor only): per-rank partition-adjacency lists sized
/// `rt.size()` — `neighbors[r]` holds the ranks owning cells adjacent to
/// rank r's cells. Null falls back to the dense distributed pattern, so a
/// caller without adjacency never silently under-charges handshakes.
ExchangeStats exchange_particles(
    par::Runtime& rt, const std::string& phase, Strategy strategy,
    std::vector<dsmc::ParticleStore>& stores,
    std::vector<std::vector<std::uint8_t>>& removed,
    std::span<const std::int32_t> cell_owner, int root = 0,
    const std::vector<std::vector<int>>* neighbors = nullptr);

}  // namespace dsmcpic::exchange
