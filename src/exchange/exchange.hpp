#pragma once
// Particle migration between arbitrary ranks — the paper's DSMC_Exchange /
// PIC_Exchange components with both communication strategies (Sec. IV-B):
//
//  * Centralized (CC): gather -> classify -> scatter through a root rank.
//    ~2N transactions, ~2M particle records over the wire, root serialized.
//  * Distributed (DC): every rank classifies locally and exchanges directly
//    with every other rank in a two-round ordered send/recv pattern.
//    ~N(N-1) transactions (empty pairs still pay the handshake latency),
//    ~M particle records over the wire.
//  * Hierarchical (HC, this library's extension): ranks funnel their
//    outgoing particles to their node's leader rank; leaders exchange
//    all-to-all between nodes (N_nodes*(N_nodes-1) transactions instead of
//    N*(N-1)) and fan in/out within their node. Keeps DC's distributed
//    volume (~2M within nodes + M between) while shrinking the transaction
//    count that throttles DC at scale.
//
// The ghost-cell method of neighbor-only CFD communication cannot express
// any of this: after a DSMC step a particle's destination cell may be owned
// by any rank (long migration distances), so all strategies address
// all-pairs.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dsmc/particles.hpp"
#include "par/runtime.hpp"

namespace dsmcpic::exchange {

enum class Strategy { kCentralized, kDistributed, kHierarchical };

const char* strategy_name(Strategy s);

struct ExchangeStats {
  std::int64_t migrated = 0;  // particles that changed ranks
  std::int64_t kept = 0;      // particles that stayed
  std::int64_t dropped = 0;   // removed-flagged particles compacted away
};

/// Migrates every particle whose cell's owner differs from its current rank.
/// `stores[r]` is rank r's particle store; `cell_owner` maps coarse cells to
/// ranks. `removed[r]` (same length as stores[r]) marks particles that left
/// the domain during the preceding move — they are dropped during the same
/// compaction pass and never shipped. On return every store is compacted and
/// `removed[r]` is reset to match its new size. Costs are charged under
/// `phase` on `rt`. Root (centralized strategy only) defaults to rank 0, as
/// in the paper's Fig. 3.
ExchangeStats exchange_particles(par::Runtime& rt, const std::string& phase,
                                 Strategy strategy,
                                 std::vector<dsmc::ParticleStore>& stores,
                                 std::vector<std::vector<std::uint8_t>>& removed,
                                 std::span<const std::int32_t> cell_owner,
                                 int root = 0);

}  // namespace dsmcpic::exchange
