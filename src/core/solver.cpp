#include "core/solver.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

#include "obs/health_auditor.hpp"
#include "obs/host_profiler.hpp"
#include "obs/telemetry.hpp"
#include "pic/boris.hpp"
#include "pic/deposit.hpp"
#include "pic/field.hpp"
#include "support/error.hpp"
#include "trace/recorder.hpp"

namespace dsmcpic::core {

double RunSummary::phase_max(const std::string& name) const {
  for (std::size_t i = 0; i < phase_names.size(); ++i)
    if (phase_names[i] == name) return phase_stats[i].busy_max;
  return 0.0;
}

double RunSummary::busy_sum_total() const {
  double s = 0.0;
  for (const par::PhaseStats& p : phase_stats) s += p.busy_sum;
  return s;
}

CoupledSolver::CoupledSolver(SolverConfig cfg, ParallelConfig par)
    : CoupledSolver(std::move(cfg), par, nullptr) {}

CoupledSolver::CoupledSolver(SolverConfig cfg, ParallelConfig par,
                             std::shared_ptr<const CaseGeometry> geom)
    : cfg_(cfg),
      pcfg_(par),
      species_(dsmc::SpeciesTable::hydrogen(cfg.fnum_h, cfg.fnum_hplus)),
      geom_(geom ? std::move(geom) : CaseGeometry::build(cfg_.nozzle)),
      coarse_(geom_->coarse),
      refined_(geom_->refined),
      sampler_(coarse_, species_) {
  DSMCPIC_CHECK_MSG(geom_->spec == cfg_.nozzle,
                    "shared CaseGeometry was built from a different NozzleSpec "
                    "than cfg.nozzle");
  init();
}

CoupledSolver::~CoupledSolver() = default;

void CoupledSolver::init() {
  const int nranks = pcfg_.nranks;
  DSMCPIC_CHECK_MSG(nranks >= 1, "need at least one rank");

  fine_ = std::make_unique<pic::FineGrid>(coarse_, refined_);

  // Elastic ensemble (§2i): the machine keeps `nranks` nominal ranks but the
  // solver decomposes onto — and the runtime dispatches — only the active
  // prefix. The fixed default (active == nranks) is the dense path.
  ensemble_ = balance::EnsemblePolicy(pcfg_.balance.ensemble, nranks);
  active_ = ensemble_.initial_active();

  // Dual graph of the coarse grid (the only grid that is decomposed).
  coarse_.dual_graph(dual_.xadj, dual_.adjncy);

  // First decomposition: unweighted, as in the paper (Sec. IV-A).
  if (active_ == 1) {
    owner_.assign(static_cast<std::size_t>(coarse_.num_tets()), 0);
  } else {
    partition::PartitionOptions opt = pcfg_.balance.partition_options;
    owner_ = partition::part_graph_kway(dual_, active_, opt).part;
  }

  rt_ = std::make_unique<par::Runtime>(
      nranks, par::Topology(pcfg_.profile, nranks, pcfg_.placement),
      pcfg_.particle_scale, pcfg_.grid_scale,
      par::ExecOptions{pcfg_.exec_mode, pcfg_.exec_threads});
  if (active_ < nranks) rt_->set_active_ranks(active_);

  psys_ = std::make_unique<pic::PoissonSystem>(refined_.mesh, cfg_.poisson_bcs);
  phi_global_.assign(static_cast<std::size_t>(psys_->num_nodes()), 0.0);

  stores_.resize(nranks);
  removed_.assign(nranks, {});

  kexec_ = std::make_unique<support::KernelExec>(pcfg_.kernel_threads);
  cell_index_.resize(nranks);
  collide_scratch_.resize(nranks);
  deposit_scratch_.resize(nranks);
  sort_scratch_.resize(nranks);

  inject_h_ = std::make_unique<dsmc::MaxwellianInjector>(
      coarse_, mesh::BoundaryKind::kInlet,
      dsmc::InjectionSpec{dsmc::kSpeciesH, cfg_.density_h,
                          cfg_.inlet_temperature, cfg_.drift_speed,
                          cfg_.inject_pulse_amplitude,
                          cfg_.inject_pulse_period},
      cfg_.seed);
  inject_hplus_ = std::make_unique<dsmc::MaxwellianInjector>(
      coarse_, mesh::BoundaryKind::kInlet,
      dsmc::InjectionSpec{dsmc::kSpeciesHPlus, cfg_.density_hplus,
                          cfg_.inlet_temperature, cfg_.drift_speed,
                          cfg_.inject_pulse_amplitude,
                          cfg_.inject_pulse_period},
      cfg_.seed ^ 0x517cc1b727220a95ULL);

  dsmc::MoverConfig mcfg = cfg_.mover;
  mcfg.seed = cfg_.seed ^ 0x2545f4914f6cdd1dULL;
  mover_ = std::make_unique<dsmc::Mover>(coarse_, species_, mcfg);

  chemistry_ = std::make_unique<dsmc::Chemistry>(species_, cfg_.chemistry);
  dsmc::CollisionConfig ccfg = cfg_.collisions;
  ccfg.seed = cfg_.seed ^ 0x94d049bb133111ebULL;
  collide_ =
      std::make_unique<dsmc::CollisionKernel>(coarse_, species_, ccfg,
                                              chemistry_.get());

  rebuild_parallel_structures(phases::kInit, /*charge_costs=*/true);

  // Initial electrostatic field (no charge yet: pure boundary solve).
  StepDiagnostics dummy;
  do_poisson_solve(dummy);

  // Baseline for the lii window.
  prev_total_ = rt_->busy_all();
  prev_pm_ = rt_->busy_totals(std::array<std::string, 2>{
      phases::kDsmcExchange, phases::kPicExchange});
  prev_poi_ =
      rt_->busy_totals(std::array<std::string, 1>{phases::kPoissonSolve});
  // Particle-proportional phases only: Inject is deliberately excluded —
  // its work is sharded evenly across ranks (round-robin), so including it
  // would flatten the measured shares and make heavily loaded cells look
  // cheaper than they are.
  prev_particle_ = rt_->busy_totals(
      std::array<std::string, 3>{phases::kDsmcMove, phases::kColliReact,
                                 phases::kPicMove});

  cost_model_ = balance::CostModel(pcfg_.balance.cost_model, pcfg_.nranks);
  // The paper's Threshold knob stays the single source of truth for the
  // baseline trigger (and the look-ahead's H = 0 fallback).
  balance::PolicyConfig pc = pcfg_.balance.policy;
  pc.threshold = pcfg_.balance.threshold;
  pc.nranks = pcfg_.nranks;
  policy_ = balance::RebalancePolicy(pc);
}

void CoupledSolver::rebuild_parallel_structures(const std::string& phase,
                                                bool charge_costs) {
  // my_cells_ keeps nominal size so per-rank observers stay stable; parked
  // ranks own nothing and their lists stay empty. Everything that scales
  // with participants (node exchange, Poisson layout) is built active-sized.
  const int nranks = pcfg_.nranks;
  const int active = active_;
  my_cells_.assign(nranks, {});
  for (std::int32_t c = 0; c < coarse_.num_tets(); ++c)
    my_cells_[owner_[c]].push_back(c);

  // Partition adjacency for the neighbor exchange (§2i): rank p neighbors
  // rank q iff some coarse cell of p shares a dual edge with a cell of q.
  neighbors_.assign(nranks, {});
  if (pcfg_.strategy == exchange::Strategy::kNeighbor) {
    for (std::int32_t c = 0; c < coarse_.num_tets(); ++c)
      for (const std::int32_t d : dual_.neighbors(c))
        if (owner_[c] != owner_[d]) neighbors_[owner_[c]].push_back(owner_[d]);
    for (auto& nb : neighbors_) {
      std::sort(nb.begin(), nb.end());
      nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
    }
  }

  nodex_ = std::make_unique<pic::NodeExchange>(*fine_, owner_, active);
  linalg::DistLayout layout =
      linalg::DistLayout::build(active, nodex_->node_owner(), psys_->matrix());
  dmat_ = linalg::DistMatrix::build(psys_->matrix(), std::move(layout));

  // Warm-start potential from the driver-side mirror.
  x_.assign(active, {});
  phi_local_.assign(active, {});
  for (int r = 0; r < active; ++r) {
    const auto& owned = dmat_.layout.owned[r];
    x_[r].resize(owned.size());
    for (std::size_t i = 0; i < owned.size(); ++i)
      x_[r][i] = phi_global_[owned[i]];
    const auto& nodes = nodex_->rank_nodes(r);
    phi_local_[r].resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i)
      phi_local_[r][i] = phi_global_[nodes[i]];
  }

  if (charge_costs) {
    rt_->superstep(phase, [&](par::Comm& c) {
      // Local FEM block extraction: 8 fine elements per owned coarse cell.
      c.charge(par::WorkKind::kAssemble,
               8.0 * static_cast<double>(my_cells_[c.rank()].size()));
    });
    // Redistributing the potential to the new owners.
    rt_->charge_bcast(phase, 0, 8.0 * static_cast<double>(phi_global_.size()));
  }
}

void CoupledSolver::do_inject(StepDiagnostics& diag) {
  // Per-rank accumulation: superstep bodies may run concurrently, so each
  // rank writes its own slot; the driver reduces afterwards.
  std::vector<std::int64_t> injected(pcfg_.nranks, 0);
  if (cfg_.inject_round_robin) {
    inject_h_->begin_step(species_, cfg_.dt_dsmc, step_);
    inject_hplus_->begin_step(species_, cfg_.dt_dsmc, step_);
  }
  rt_->superstep(phases::kInject, [&](par::Comm& c) {
    const int r = c.rank();
    std::int64_t n_h = 0, n_hp = 0;
    if (cfg_.inject_round_robin) {
      // Shard over the ACTIVE set: parked ranks never run a body, so
      // sharding over the nominal count would silently drop their share.
      n_h = inject_h_->inject_shard(stores_[r], species_, r, active_);
      n_hp = inject_hplus_->inject_shard(stores_[r], species_, r, active_);
    } else {
      n_h = inject_h_->inject(stores_[r], species_, cfg_.dt_dsmc, step_,
                              owner_, r);
      n_hp = inject_hplus_->inject(stores_[r], species_, cfg_.dt_dsmc, step_,
                                   owner_, r);
    }
    removed_[r].resize(stores_[r].size(), 0);
    c.charge(par::WorkKind::kInject, static_cast<double>(n_h + n_hp));
    injected[r] = n_h + n_hp;
  });
  for (const std::int64_t n : injected) diag.injected += n;
  if (auditor_) auditor_->on_injected(diag.injected);
}

std::int64_t CoupledSolver::flagged_count() const {
  std::int64_t n = 0;
  for (const auto& flags : removed_)
    for (const std::uint8_t f : flags) n += (f != 0);
  return n;
}

void CoupledSolver::do_dsmc_move(StepDiagnostics& diag) {
  std::vector<std::int64_t> exited(pcfg_.nranks, 0);
  rt_->superstep(phases::kDsmcMove, [&](par::Comm& c) {
    const int r = c.rank();
    const obs::HostProfiler::Scope prof(prof_, "move");
    const dsmc::MoveStats st = mover_->move_all(
        stores_[r], cfg_.dt_dsmc, step_, removed_[r],
        dsmc::MoveFilter::kNeutralOnly, kexec_.get());
    c.charge(par::WorkKind::kMove, static_cast<double>(st.moved));
    c.charge(par::WorkKind::kWalkStep, static_cast<double>(st.walk_steps));
    exited[r] = st.exited;
  });
  for (const std::int64_t n : exited) diag.exited_dsmc += n;

  if (auditor_) auditor_->on_flagged(flagged_count());
  const std::int64_t before = auditor_ ? total_particles() : 0;
  exchange::ExchangeStats ex;
  {
    const obs::HostProfiler::Scope prof(prof_, "exchange");
    ex = exchange::exchange_particles(*rt_, phases::kDsmcExchange,
                                      pcfg_.strategy, stores_, removed_,
                                      owner_, /*root=*/0, &neighbors_);
  }
  diag.migrated_dsmc = ex.migrated;
  if (auditor_)
    auditor_->check_exchange(phases::kDsmcExchange, before, ex.dropped,
                             total_particles());

  if (cfg_.fault == FaultInjection::kDropParticle) {
    fault_fired_ = true;
    for (int r = 0; r < pcfg_.nranks; ++r) {
      if (stores_[r].empty()) continue;
      stores_[r].remove_swap(stores_[r].size() - 1);
      removed_[r].resize(stores_[r].size());
      break;
    }
  }
}

void CoupledSolver::do_reindex() {
  std::vector<std::int64_t> counts(active_, 0);
  for (int r = 0; r < active_; ++r)
    counts[r] = static_cast<std::int64_t>(stores_[r].size());
  const std::vector<std::int64_t> offsets =
      rt_->exscan_sum(phases::kReindex, counts);
  rt_->superstep(phases::kReindex, [&](par::Comm& c) {
    const int r = c.rank();
    // Canonical cell-major renumbering: ids are assigned by ascending coarse
    // cell, ascending PREVIOUS id within each cell (CellIndex sorts its
    // per-cell lists by id). Previous ids are canonical by induction —
    // injector ids are (facet, sequence), spawned-ion ids come from
    // per-(cell, step) streams drawn in canonical collide order — so the
    // new ids, and every id-keyed RNG stream downstream (diffuse wall
    // reflection), do not depend on the store's memory layout, i.e. on
    // whether or when the periodic cell sort ran.
    dsmc::CellIndex& index = cell_index_[r];
    index.rebuild(stores_[r], coarse_.num_tets());
    auto ids = stores_[r].ids();
    std::int64_t next = offsets[r];
    for (std::int32_t cell = 0; cell < coarse_.num_tets(); ++cell)
      for (const std::int32_t p : index.particles_in(cell)) ids[p] = next++;
    DSMCPIC_CHECK(next == offsets[r] + counts[r]);
    c.charge(par::WorkKind::kReindex, static_cast<double>(ids.size()));
  });
}

void CoupledSolver::do_colli_react(StepDiagnostics& diag) {
  struct RankStats {
    std::int64_t collisions = 0, ionizations = 0, recombinations = 0;
  };
  std::vector<RankStats> per_rank(pcfg_.nranks);
  // Periodic cell sort (DESIGN.md §2g): reorder each store cell-major so the
  // collide/deposit traversals stream memory linearly. The sort only changes
  // memory layout — traversal semantics are owned by CellIndex, whose
  // per-cell lists are canonicalized by particle id — so every observable is
  // bit-identical for any sort_every. Layout work has no physical analogue,
  // so it charges no virtual time (wall-clock cost is visible via the "sort"
  // host-profiler scope and a trace instant).
  const bool sorted =
      cfg_.sort_every > 0 && step_ % cfg_.sort_every == 0;
  rt_->superstep(phases::kColliReact, [&](par::Comm& c) {
    const int r = c.rank();
    if (sorted) {
      const obs::HostProfiler::Scope prof(prof_, "sort");
      stores_[r].sort_by_cell(coarse_.num_tets(), sort_scratch_[r],
                              removed_[r]);
    }
    dsmc::CellIndex& index = cell_index_[r];
    index.rebuild(stores_[r], coarse_.num_tets());
    dsmc::CollisionStats cs;
    {
      const obs::HostProfiler::Scope prof(prof_, "collide");
      cs = collide_->collide_cells(stores_[r], index, my_cells_[r],
                                   cfg_.dt_dsmc, step_, kexec_.get(),
                                   &collide_scratch_[r]);
    }
    removed_[r].resize(stores_[r].size(), 0);  // chemistry appended ions
    dsmc::ChemistryStats rs;
    {
      const obs::HostProfiler::Scope prof(prof_, "react");
      rs = chemistry_->recombine(stores_[r], index, my_cells_[r], coarse_,
                                 cfg_.dt_dsmc, step_, removed_[r],
                                 kexec_.get());
    }
    c.charge(par::WorkKind::kCollide, static_cast<double>(cs.candidates));
    c.charge(par::WorkKind::kReact,
             static_cast<double>(cs.ionizations + rs.recombinations));
    per_rank[r] = {cs.collisions, cs.ionizations, rs.recombinations};
  });
  for (const RankStats& s : per_rank) {
    diag.collisions += s.collisions;
    diag.ionizations += s.ionizations;
    diag.recombinations += s.recombinations;
  }
  // Each ionization appended one H+ to a store; recombination flags are
  // consumed by the next exchange (counted there via flagged_count).
  if (auditor_) auditor_->on_spawned(diag.ionizations);
  if (sorted)
    if (trace::TraceRecorder* tr = rt_->tracer())
      tr->add_instant(-1, "sort @ step " + std::to_string(step_),
                      rt_->total_time());
}

void CoupledSolver::do_pic_substep(int substep, StepDiagnostics& diag) {
  const double dt = cfg_.dt_pic();
  const int pic_step = step_ * cfg_.pic_substeps + substep;
  std::vector<std::int64_t> exited(pcfg_.nranks, 0), lost(pcfg_.nranks, 0);
  rt_->superstep(phases::kPicMove, [&](par::Comm& c) {
    const int r = c.rank();
    const obs::HostProfiler::Scope prof(prof_, "move");
    auto& store = stores_[r];
    auto px = store.px(), py = store.py(), pz = store.pz();
    auto vx = store.vx(), vy = store.vy(), vz = store.vz();
    auto cells = store.cells();
    auto spec = store.species();
    auto ids = store.ids();
    // Particles are independent (gather/push/move touch only slot i), so
    // the range chunks across the kernel pool; per-chunk counters are
    // summed in chunk order.
    std::array<dsmc::MoveStats, 64> chunk_st{};
    std::array<std::int64_t, 64> chunk_pushed{};
    std::array<std::int64_t, 64> chunk_lost{};
    const std::int64_t n = static_cast<std::int64_t>(store.size());
    kexec_->for_chunks(n, [&](int ch, std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) {
        if (removed_[r][i]) continue;
        const dsmc::Species& sp = species_[spec[i]];
        if (!sp.charged()) continue;
        // Gather E from the previous timestep's field (paper Sec. III-B).
        Vec3 pos{px[i], py[i], pz[i]};
        const std::int32_t fc = fine_->locate(cells[i], pos);
        if (fc < 0) {
          removed_[r][i] = 1;
          ++chunk_lost[ch];
          continue;
        }
        const Vec3 e = pic::efield_in_cell(*fine_, fc, nodex_->rank_nodes(r),
                                           phi_local_[r]);
        Vec3 vel = pic::boris_push({vx[i], vy[i], vz[i]}, e,
                                   cfg_.magnetic_field, sp.charge / sp.mass,
                                   dt);
        ++chunk_pushed[ch];
        if (!mover_->move_one(pos, vel, cells[i], spec[i], ids[i], dt,
                              pic_step, chunk_st[ch]))
          removed_[r][i] = 1;
        px[i] = pos.x;
        py[i] = pos.y;
        pz[i] = pos.z;
        vx[i] = vel.x;
        vy[i] = vel.y;
        vz[i] = vel.z;
      }
    });
    dsmc::MoveStats st;
    std::int64_t pushed = 0;
    for (int ch = 0; ch < kexec_->num_chunks(n); ++ch) {
      st.moved += chunk_st[ch].moved;
      st.walk_steps += chunk_st[ch].walk_steps;
      st.wall_hits += chunk_st[ch].wall_hits;
      st.exited += chunk_st[ch].exited;
      pushed += chunk_pushed[ch];
      lost[r] += chunk_lost[ch];
    }
    c.charge(par::WorkKind::kFieldGather, static_cast<double>(pushed));
    c.charge(par::WorkKind::kBorisPush, static_cast<double>(pushed));
    c.charge(par::WorkKind::kMove, static_cast<double>(st.moved));
    c.charge(par::WorkKind::kWalkStep, static_cast<double>(st.walk_steps));
    exited[r] = st.exited;
  });
  for (int r = 0; r < pcfg_.nranks; ++r) {
    diag.exited_pic += exited[r];
    diag.pic_lost += lost[r];
  }

  if (auditor_) auditor_->on_flagged(flagged_count());
  const std::int64_t before = auditor_ ? total_particles() : 0;
  exchange::ExchangeStats ex;
  {
    const obs::HostProfiler::Scope prof(prof_, "exchange");
    ex = exchange::exchange_particles(*rt_, phases::kPicExchange,
                                      pcfg_.strategy, stores_, removed_,
                                      owner_, /*root=*/0, &neighbors_);
  }
  diag.migrated_pic += ex.migrated;
  if (auditor_)
    auditor_->check_exchange(phases::kPicExchange, before, ex.dropped,
                             total_particles());
  do_poisson_solve(diag);
}

void CoupledSolver::do_poisson_solve(StepDiagnostics& diag) {
  const std::string phase = phases::kPoissonSolve;
  auto node_charge = nodex_->make_values();

  rt_->superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    const obs::HostProfiler::Scope prof(prof_, "deposit");
    const pic::DepositStats st = pic::deposit_charge(
        stores_[r], *fine_, species_, nodex_->rank_nodes(r), removed_[r],
        node_charge[r], kexec_.get(), &deposit_scratch_[r]);
    c.charge(par::WorkKind::kDeposit, static_cast<double>(st.deposited));
  });
  if (cfg_.fault == FaultInjection::kSkewDeposit && !node_charge[0].empty()) {
    node_charge[0][0] += 1.0;  // one spurious coulomb on one node
    fault_fired_ = true;
  }
  nodex_->reduce_to_owners(*rt_, phase, node_charge);

  if (auditor_) {
    // Re-sum the charge the deposit should have scattered: every live
    // charged particle the fine locate can place, q * fnum each. Pure read;
    // particle order differs from the scatter order, hence the rel tol.
    double expected = 0.0;
    for (int r = 0; r < pcfg_.nranks; ++r) {
      const auto& store = stores_[r];
      const auto cells = store.cells();
      const auto spec = store.species();
      for (std::size_t i = 0; i < store.size(); ++i) {
        if (removed_[r][i]) continue;
        const dsmc::Species& sp = species_[spec[i]];
        if (!sp.charged()) continue;
        if (fine_->locate(cells[i], store.position(i)) < 0) continue;
        expected += sp.charge * sp.fnum;
      }
    }
    auditor_->check_charge(expected, nodex_->sum_owned(node_charge));
  }

  // Per-rank RHS over owned rows.
  linalg::DistVector b(active_);
  rt_->superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    const auto& owned = dmat_.layout.owned[r];
    b[r].resize(owned.size());
    for (std::size_t i = 0; i < owned.size(); ++i) {
      const std::int32_t li = nodex_->local_index(r, owned[i]);
      DSMCPIC_CHECK(li >= 0);
      b[r][i] = psys_->rhs_at(owned[i], node_charge[r][li]);
    }
    c.charge(par::WorkKind::kVecFlop, static_cast<double>(owned.size()));
  });

  // PETSc-style zero initial guess unless warm starts were requested.
  if (!cfg_.poisson.warm_start) {
    for (auto& xr : x_) std::fill(xr.begin(), xr.end(), 0.0);
  }
  linalg::SolveResult res;
  {
    const obs::HostProfiler::Scope prof(prof_, "field_solve");
    res = linalg::dist_cg(*rt_, phase, dmat_, b, x_, cfg_.poisson);
  }
  diag.poisson_iterations = res.iterations;
  if (auditor_)
    auditor_->check_poisson(res.iterations, res.residual, cfg_.poisson.rel_tol,
                            res.converged);

  // Refresh the driver mirror and the per-rank nodal potentials.
  for (int r = 0; r < active_; ++r) {
    const auto& owned = dmat_.layout.owned[r];
    for (std::size_t i = 0; i < owned.size(); ++i)
      phi_global_[owned[i]] = x_[r][i];
  }
  rt_->superstep(phase, [&](par::Comm& c) {
    const int r = c.rank();
    const auto& owned = dmat_.layout.owned[r];
    for (std::size_t i = 0; i < owned.size(); ++i) {
      const std::int32_t li = nodex_->local_index(r, owned[i]);
      phi_local_[r][li] = x_[r][i];
    }
  });
  nodex_->broadcast_from_owners(*rt_, phase, phi_local_);
}

void CoupledSolver::maybe_rebalance(StepDiagnostics& diag) {
  if (pcfg_.nranks <= 1) return;
  ++steps_since_rebalance_;

  // Eq. (6) inputs over the window since the previous step: per-rank total
  // busy time minus the particle-migration and Poisson components.
  const std::vector<double> cur_total = rt_->busy_all();
  const std::vector<double> cur_pm = rt_->busy_totals(std::array<std::string, 2>{
      phases::kDsmcExchange, phases::kPicExchange});
  const std::vector<double> cur_poi =
      rt_->busy_totals(std::array<std::string, 1>{phases::kPoissonSolve});
  const std::vector<double> cur_particle = rt_->busy_totals(
      std::array<std::string, 3>{phases::kDsmcMove, phases::kColliReact,
                                 phases::kPicMove});
  // lii/policy windows cover the ACTIVE prefix (parked ranks do no work);
  // wpart stays nominal-sized — the cost model's per-rank guards skip parked
  // ranks (their predicted load is zero).
  std::vector<double> wt(active_), wpm(active_), wpoi(active_), wcomp(active_);
  std::vector<double> wpart(pcfg_.nranks);
  for (int r = 0; r < active_; ++r) {
    wt[r] = cur_total[r] - prev_total_[r];
    wpm[r] = cur_pm[r] - prev_pm_[r];
    wpoi[r] = cur_poi[r] - prev_poi_[r];
    // The Eq.-6 signal per rank: pure compute, migration and Poisson out.
    wcomp[r] = wt[r] - wpm[r] - wpoi[r];
  }
  for (int r = 0; r < pcfg_.nranks; ++r)
    wpart[r] = cur_particle[r] - prev_particle_[r];
  prev_total_ = cur_total;
  prev_pm_ = cur_pm;
  prev_poi_ = cur_poi;
  prev_particle_ = cur_particle;

  const double lii = balance::load_imbalance_indicator(wt, wpm, wpoi);
  diag.lii = lii;
  lb_stats_.last_lii = lii;
  ++lb_stats_.checks;

  const balance::RebalanceConfig& lb = pcfg_.balance;
  const bool elastic = lb.ensemble.kind == balance::EnsembleKind::kElastic;
  if (!lb.enabled && !elastic) return;
  // Measuring lii requires an allgather of the per-rank timings.
  rt_->allgather(phases::kRebalance, wt);

  // Feed the per-step signals every step (EWMAs need the full history, not
  // just period boundaries). Both consume virtual time only.
  policy_.observe_step(wcomp);
  if (elastic) {
    double step_total = 0.0;
    for (const double w : wt) step_total += w;
    ensemble_.observe_step(wcomp, step_total);
  }
  if (cost_model_.config().kind != balance::CostModelKind::kStatic) {
    // Static per-rank wlm prediction: sum of Eq.-7 weights over each
    // rank's cells = N_r + R*C_r + W_cell * ncells_r. The measured window
    // is the work of the particles present at the *start* of this step, so
    // it is regressed against the PREVIOUS step's prediction — pairing it
    // with end-of-step counts would make fast-growing ranks look cheap and
    // under-provision exactly where the load is arriving.
    std::vector<double> predicted(pcfg_.nranks);
    for (int r = 0; r < pcfg_.nranks; ++r) {
      const auto n_h = stores_[r].count_species(dsmc::kSpeciesH);
      const auto n_hp = stores_[r].count_species(dsmc::kSpeciesHPlus);
      predicted[r] = static_cast<double>(n_h) +
                     lb.weight_ratio * static_cast<double>(n_hp) +
                     lb.cell_weight * static_cast<double>(my_cells_[r].size());
    }
    if (!prev_predicted_.empty())
      cost_model_.observe_step(wpart, prev_predicted_);
    prev_predicted_ = std::move(predicted);
  }

  if (steps_since_rebalance_ < lb.period) return;

  // The ensemble moves first at a period boundary: a resize already
  // repartitions onto the new active set, so a same-step rebalance would be
  // redundant churn. steps_since_rebalance_ resets inside on a resize.
  maybe_resize_ensemble(diag);
  if (steps_since_rebalance_ == 0) return;

  if (!lb.enabled) return;
  const balance::PolicyDecision decision = policy_.decide(step_, lii);
  if (!decision.rebalance) return;

  // Per-cell particle counts for the weighted load model.
  std::vector<std::int64_t> neutrals(coarse_.num_tets(), 0);
  std::vector<std::int64_t> charged(coarse_.num_tets(), 0);
  for (int r = 0; r < pcfg_.nranks; ++r) {
    const auto cells = stores_[r].cells();
    const auto spec = stores_[r].species();
    for (std::size_t i = 0; i < stores_[r].size(); ++i) {
      if (removed_[r][i]) continue;
      if (species_[spec[i]].charged())
        ++charged[cells[i]];
      else
        ++neutrals[cells[i]];
    }
  }

  // Timer/hybrid weights replace the rebalancer's internal Eq.-7 ones; an
  // empty span keeps the static path bit-identical.
  std::vector<double> weights;
  if (cost_model_.config().kind != balance::CostModelKind::kStatic)
    weights = cost_model_.cell_weights(owner_, neutrals, charged,
                                       lb.weight_ratio, lb.cell_weight);

  // Measured cost of the whole event (repartition + KM + migration +
  // rebuild) in virtual time: the busy_max span of the Rebalance phase.
  const double rb_busy_before = rt_->phase_stats(phases::kRebalance).busy_max;
  const bool estimate_learned = policy_.rebalances_observed() > 0;
  const double estimate_before = policy_.rebalance_cost_estimate();

  const obs::HostProfiler::Scope prof_rb(prof_, "rebalance");
  const std::vector<std::int32_t> new_owner = balance::redecompose(
      *rt_, phases::kRebalance, dual_, coarse_.centroids(), neutrals, charged,
      owner_, lb, lb_stats_, weights);

  // Work redistribution: migrate particles to their new owners.
  if (auditor_) auditor_->on_flagged(flagged_count());
  const std::int64_t before = auditor_ ? total_particles() : 0;
  exchange::ExchangeStats ex;
  {
    const obs::HostProfiler::Scope prof_ex(prof_, "exchange");
    ex = exchange::exchange_particles(*rt_, phases::kRebalance, pcfg_.strategy,
                                      stores_, removed_, new_owner);
  }
  if (auditor_)
    auditor_->check_exchange(phases::kRebalance, before, ex.dropped,
                             total_particles());
  owner_ = new_owner;
  rebuild_parallel_structures(phases::kRebalance, /*charge_costs=*/true);

  // The decomposition (and each rank's population) just changed: refresh
  // the cached prediction so the next measured window is paired with the
  // post-migration counts, not the stale pre-rebalance ones.
  if (!prev_predicted_.empty()) {
    for (int r = 0; r < pcfg_.nranks; ++r) {
      const auto n_h = stores_[r].count_species(dsmc::kSpeciesH);
      const auto n_hp = stores_[r].count_species(dsmc::kSpeciesHPlus);
      prev_predicted_[r] =
          static_cast<double>(n_h) + lb.weight_ratio * static_cast<double>(n_hp) +
          lb.cell_weight * static_cast<double>(my_cells_[r].size());
    }
  }

  const double rb_measured = std::max(
      0.0, rt_->phase_stats(phases::kRebalance).busy_max - rb_busy_before);
  policy_.observe_rebalance(rb_measured);
  if (cfg_.fault == FaultInjection::kSkewRebalanceCost) fault_fired_ = true;
  // Audit the cost feedback loop — but only once the policy has a learned
  // estimate to hold to account (the first event is by definition a guess).
  if (auditor_ && estimate_learned) {
    const double skew =
        cfg_.fault == FaultInjection::kSkewRebalanceCost ? 1000.0 : 1.0;
    auditor_->check_rebalance_cost(estimate_before * skew, rb_measured);
  }

  steps_since_rebalance_ = 0;
  diag.rebalanced = true;
}

void CoupledSolver::maybe_resize_ensemble(StepDiagnostics& diag) {
  if (pcfg_.balance.ensemble.kind != balance::EnsembleKind::kElastic) return;
  const int target = ensemble_.decide(step_, active_);
  if (target == active_) return;
  {
    const obs::HostProfiler::Scope prof(prof_, "rebalance");
    resize_active(target);
  }
  steps_since_rebalance_ = 0;
  diag.rebalanced = true;
  if (trace::TraceRecorder* tr = rt_->tracer())
    tr->add_instant(-1,
                    "ensemble resize -> " + std::to_string(active_) +
                        " @ step " + std::to_string(step_),
                    rt_->total_time());
}

void CoupledSolver::resize_active(int target) {
  DSMCPIC_CHECK(target >= 1 && target <= pcfg_.nranks);
  const balance::RebalanceConfig& lb = pcfg_.balance;

  // Per-cell particle counts for the weighted load model (Eq. 7).
  std::vector<std::int64_t> neutrals(coarse_.num_tets(), 0);
  std::vector<std::int64_t> charged(coarse_.num_tets(), 0);
  for (int r = 0; r < pcfg_.nranks; ++r) {
    const auto cells = stores_[r].cells();
    const auto spec = stores_[r].species();
    for (std::size_t i = 0; i < stores_[r].size(); ++i) {
      if (removed_[r][i]) continue;
      if (species_[spec[i]].charged())
        ++charged[cells[i]];
      else
        ++neutrals[cells[i]];
    }
  }

  // Grow activates the new ranks BEFORE migration so they can receive;
  // shrink migrates first (everyone still dispatched) so the soon-parked
  // ranks drain their particles, then leaves the dispatch set.
  const bool grow = target > active_;
  if (grow) {
    rt_->set_active_ranks(target);
    active_ = target;
  }

  const std::vector<std::int32_t> new_owner = balance::redecompose(
      *rt_, phases::kRebalance, dual_, coarse_.centroids(), neutrals, charged,
      owner_, lb, lb_stats_, /*cell_weights=*/{}, /*nparts=*/target);

  if (auditor_) auditor_->on_flagged(flagged_count());
  const std::int64_t before = auditor_ ? total_particles() : 0;
  exchange::ExchangeStats ex;
  {
    // Dense fallback even under Strategy::kNeighbor: a resize moves cells
    // wholesale, so the steady-state partition adjacency says nothing about
    // who talks to whom here.
    const obs::HostProfiler::Scope prof_ex(prof_, "exchange");
    ex = exchange::exchange_particles(*rt_, phases::kRebalance, pcfg_.strategy,
                                      stores_, removed_, new_owner);
  }
  if (auditor_)
    auditor_->check_exchange(phases::kRebalance, before, ex.dropped,
                             total_particles());
  owner_ = new_owner;
  if (!grow) {
    rt_->set_active_ranks(target);
    active_ = target;
  }
  rebuild_parallel_structures(phases::kRebalance, /*charge_costs=*/true);

  // Same pairing rule as the rebalance path: the next measured window must
  // regress against post-migration populations.
  if (!prev_predicted_.empty()) {
    for (int r = 0; r < pcfg_.nranks; ++r) {
      const auto n_h = stores_[r].count_species(dsmc::kSpeciesH);
      const auto n_hp = stores_[r].count_species(dsmc::kSpeciesHPlus);
      prev_predicted_[r] =
          static_cast<double>(n_h) +
          lb.weight_ratio * static_cast<double>(n_hp) +
          lb.cell_weight * static_cast<double>(my_cells_[r].size());
    }
  }
}

void CoupledSolver::record_trace_counters(const StepDiagnostics& diag) {
  trace::TraceRecorder* tr = rt_->tracer();
  if (!tr) return;
  trace::MetricsRegistry& m = tr->metrics();
  const std::int64_t step = diag.dsmc_step;
  for (int r = 0; r < pcfg_.nranks; ++r) {
    m.add("particles_owned", step, r,
          static_cast<double>(diag.particles_per_rank[r]), rt_->clock(r));
    m.add("cells_owned", step, r, static_cast<double>(my_cells_[r].size()),
          rt_->clock(r));
  }
  const double t = rt_->total_time();
  m.add("lii", step, -1, diag.lii, t);
  m.add("migrated_dsmc", step, -1, static_cast<double>(diag.migrated_dsmc), t);
  m.add("migrated_pic", step, -1, static_cast<double>(diag.migrated_pic), t);
  const double exch_bytes = rt_->phase_stats(phases::kDsmcExchange).bytes +
                            rt_->phase_stats(phases::kPicExchange).bytes +
                            rt_->phase_stats(phases::kRebalance).bytes;
  m.add("bytes_migrated", step, -1, exch_bytes - trace_prev_exch_bytes_, t);
  trace_prev_exch_bytes_ = exch_bytes;
  if (diag.rebalanced)
    tr->add_instant(-1, "rebalance @ step " + std::to_string(step), t);
}

void CoupledSolver::record_telemetry(const StepDiagnostics& diag) {
  if (!telemetry_) return;
  obs::TelemetrySample s;
  s.step = diag.dsmc_step;
  s.supersteps = rt_->supersteps();
  s.virtual_time = rt_->total_time();
  s.active_ranks = active_;

  s.particles = total_particles();
  s.total_h = diag.total_h;
  s.total_hplus = diag.total_hplus;
  s.injected = diag.injected;
  s.migrated_dsmc = diag.migrated_dsmc;
  s.migrated_pic = diag.migrated_pic;
  s.collisions = diag.collisions;
  s.ionizations = diag.ionizations;
  s.recombinations = diag.recombinations;
  s.exited_dsmc = diag.exited_dsmc;
  s.exited_pic = diag.exited_pic;
  s.pic_lost = diag.pic_lost;
  s.particles_per_rank = diag.particles_per_rank;
  s.lii = diag.lii;
  s.rebalanced = diag.rebalanced;
  s.poisson_iterations = diag.poisson_iterations;

  for (const std::string& name : rt_->phases()) {
    const par::PhaseStats ps = rt_->phase_stats(name);
    obs::TelemetryPhase p;
    p.name = name;
    p.busy_max = ps.busy_max;
    p.busy_min = ps.busy_min;
    p.busy_sum = ps.busy_sum;
    p.transactions = ps.transactions;
    p.bytes = ps.bytes;
    s.phases.push_back(std::move(p));
  }
  const double exch_bytes = rt_->phase_stats(phases::kDsmcExchange).bytes +
                            rt_->phase_stats(phases::kPicExchange).bytes +
                            rt_->phase_stats(phases::kRebalance).bytes;
  const std::uint64_t exch_msgs =
      rt_->phase_stats(phases::kDsmcExchange).transactions +
      rt_->phase_stats(phases::kPicExchange).transactions +
      rt_->phase_stats(phases::kRebalance).transactions;
  s.exchange_bytes_delta = exch_bytes - telem_prev_exch_bytes_;
  s.exchange_messages_delta = exch_msgs - telem_prev_exch_msgs_;
  telem_prev_exch_bytes_ = exch_bytes;
  telem_prev_exch_msgs_ = exch_msgs;
  const par::PoolStats pool = rt_->pool_stats();
  s.pool_acquires = pool.acquires;
  s.pool_misses = pool.misses;
  s.pool_recycles = pool.recycles;

  double scale_min = 0.0, scale_max = 0.0, scale_sum = 0.0;
  for (int r = 0; r < active_; ++r) {
    const double sc = cost_model_.rank_scale(r);
    if (r == 0 || sc < scale_min) scale_min = sc;
    if (r == 0 || sc > scale_max) scale_max = sc;
    scale_sum += sc;
  }
  s.cost_scale_min = scale_min;
  s.cost_scale_max = scale_max;
  s.cost_scale_mean = active_ > 0 ? scale_sum / active_ : 1.0;

  const std::vector<balance::PolicyDecision>& decisions = policy_.decisions();
  for (auto it = decisions.rbegin();
       it != decisions.rend() && it->step == diag.dsmc_step; ++it) {
    obs::TelemetryDecision d;
    d.step = it->step;
    d.lii = it->lii;
    d.imbalance_per_step = it->imbalance_per_step;
    d.projected_imbalance_cost = it->projected_imbalance_cost;
    d.rebalance_cost_estimate = it->rebalance_cost_estimate;
    d.rebalance = it->rebalance;
    s.decisions.push_back(d);
  }
  std::reverse(s.decisions.begin(), s.decisions.end());

  if (auditor_) {
    s.audit_checks = auditor_->report().checks();
    s.audit_violations = auditor_->report().violations();
  }

  telemetry_->on_step(s);
}

StepDiagnostics CoupledSolver::step() {
  try {
    StepDiagnostics diag = step_impl();
    // A fault-injection mode tripping is a postmortem trigger: the first
    // faulty step dumps the flight recorder (including its own sample), so
    // the forensics cover the exact boundary where the books went wrong.
    if (telemetry_ && fault_fired_ && !telemetry_->postmortem_written()) {
      const char* reason = "fault";
      switch (cfg_.fault) {
        case FaultInjection::kDropParticle: reason = "fault_drop_particle"; break;
        case FaultInjection::kSkewDeposit: reason = "fault_skew_deposit"; break;
        case FaultInjection::kSkewRebalanceCost:
          reason = "fault_skew_rebalance_cost";
          break;
        case FaultInjection::kNone: break;
      }
      telemetry_->dump_postmortem(reason);
    }
    return diag;
  } catch (...) {
    // HealthAuditor kAbort (or any error escaping the step) — dump the
    // completed supersteps before the exception unwinds the run.
    if (telemetry_) telemetry_->dump_postmortem("abort");
    throw;
  }
}

StepDiagnostics CoupledSolver::step_impl() {
  StepDiagnostics diag;
  diag.dsmc_step = step_;

  if (auditor_) auditor_->begin_step(step_, total_particles());
  do_inject(diag);
  do_dsmc_move(diag);
  do_reindex();
  do_colli_react(diag);
  for (int k = 0; k < cfg_.pic_substeps; ++k) do_pic_substep(k, diag);

  sampler_.begin_snapshot();
  for (const auto& store : stores_) sampler_.accumulate(store);
  maybe_rebalance(diag);

  diag.particles_per_rank = particles_per_rank();
  for (const auto& store : stores_) {
    diag.total_h += store.count_species(dsmc::kSpeciesH);
    diag.total_hplus += store.count_species(dsmc::kSpeciesHPlus);
  }
  record_trace_counters(diag);

  if (auditor_) {
    auditor_->check_ownership(owner_, active_, my_cells_);
    auditor_->end_step(
        total_particles(),
        static_cast<std::int64_t>(rt_->undelivered_messages()));
  }
  // After the auditor closed the step, so the sample carries this step's
  // full audit tallies; an abort above leaves this step out of the flight
  // recorder (only COMPLETED supersteps are recorded).
  record_telemetry(diag);

  ++step_;
  history_.push_back(diag);
  return diag;
}

void CoupledSolver::run(int n) {
  for (int i = 0; i < n; ++i) step();
}

std::vector<std::int64_t> CoupledSolver::particles_per_rank() const {
  std::vector<std::int64_t> out(pcfg_.nranks, 0);
  for (int r = 0; r < pcfg_.nranks; ++r)
    out[r] = static_cast<std::int64_t>(stores_[r].size());
  return out;
}

std::int64_t CoupledSolver::total_particles() const {
  std::int64_t n = 0;
  for (const auto& s : stores_) n += static_cast<std::int64_t>(s.size());
  return n;
}

RunSummary CoupledSolver::summary() const {
  RunSummary s;
  s.total_time = rt_->total_time();
  s.phase_names = rt_->phases();
  for (const auto& p : s.phase_names) s.phase_stats.push_back(rt_->phase_stats(p));
  s.rebalance = lb_stats_;
  s.decisions = policy_.decisions();
  s.ensemble_decisions = ensemble_.decisions();
  s.final_particles = total_particles();
  s.supersteps = rt_->supersteps();
  s.active_ranks = active_;
  return s;
}

}  // namespace dsmcpic::core
