#pragma once
// Auto-tuning of the load balancer's T (rebalance period) and Threshold
// (lii trigger). The paper selects these "during a pilot study on a
// different dataset using a sampling script" (Sec. VII-B) and cites
// auto-tuning [34]; this implements that pilot: short trial runs over a
// small parameter grid, picking the configuration with the lowest virtual
// execution time.

#include <string>
#include <vector>

#include "core/config.hpp"

namespace dsmcpic::core {

struct AutotuneOptions {
  std::vector<int> periods{5, 10, 20};
  std::vector<double> thresholds{1.5, 2.0, 3.0};
  /// DSMC steps per pilot run (short, as in the paper's sampling script).
  int pilot_steps = 20;
};

struct AutotuneTrial {
  int period = 0;
  double threshold = 0.0;
  double total_time = 0.0;  // virtual seconds of the pilot
  int rebalances = 0;
};

struct AutotuneResult {
  int best_period = 0;
  double best_threshold = 0.0;
  std::vector<AutotuneTrial> trials;  // sorted by total_time ascending
};

/// Runs the pilot grid on (a copy of) the given configuration and returns
/// the winning (T, Threshold) pair plus all trial timings. The caller
/// typically runs this on a smaller dataset (as the paper does) and applies
/// `best_*` to the production ParallelConfig.
AutotuneResult autotune_balance(const SolverConfig& cfg,
                                const ParallelConfig& par,
                                const AutotuneOptions& options = {});

}  // namespace dsmcpic::core
