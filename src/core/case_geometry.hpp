#pragma once
// Immutable per-case geometry, shareable across solver instances.
//
// Building a case's meshes is pure: the coarse nozzle grid, its nested red
// refinement, and the precomputed FacePlane/BaryCache tables inside both
// TetMeshes depend only on the NozzleSpec. The fleet service (src/fleet)
// runs many solvers of the same scenario concurrently in one process, so
// these tables are built once and handed to every instance as a
// shared_ptr<const CaseGeometry>; all solver-side accesses are const, so
// concurrent runs share them without synchronization.

#include <memory>

#include "mesh/nozzle.hpp"
#include "mesh/refine.hpp"
#include "mesh/tetmesh.hpp"

namespace dsmcpic::core {

struct CaseGeometry {
  mesh::NozzleSpec spec;
  mesh::TetMesh coarse;
  mesh::RefinedMesh refined;

  /// Builds the coarse grid + nested refinement for `spec` (what the
  /// CoupledSolver constructor does when no shared geometry is supplied).
  static std::shared_ptr<const CaseGeometry> build(const mesh::NozzleSpec& spec);
};

}  // namespace dsmcpic::core
