#pragma once
// Per-step phase timeline: records how much virtual time each workflow
// phase consumed in every DSMC step (max over ranks), and exports it as CSV
// or as a Chrome-tracing JSON (open chrome://tracing or Perfetto and drop
// the file in) for visual inspection of the solver's behaviour — e.g.
// watching the Rebalance spikes and the DSMC_Move imbalance shrink.

#include <map>
#include <string>
#include <vector>

namespace dsmcpic::core {

class CoupledSolver;

class PhaseTimeline {
 public:
  /// Attaches to a solver; call record_step() after every solver.step().
  explicit PhaseTimeline(const CoupledSolver& solver);

  /// Records the phase-time deltas since the previous record (or since
  /// attachment, for the first call).
  void record_step();

  std::size_t num_steps() const { return steps_.size(); }
  /// Phase time (virtual seconds, max over ranks) in a recorded step;
  /// 0 when the phase did not run.
  double at(std::size_t step, const std::string& phase) const;
  /// All phase names seen so far, in first-use order.
  const std::vector<std::string>& phases() const { return phase_names_; }

  /// step,phase1,phase2,... with one row per recorded step.
  void write_csv(const std::string& path) const;
  /// Chrome-tracing "X" (complete) events, one lane, phases back to back.
  void write_chrome_trace(const std::string& path) const;

 private:
  std::map<std::string, double> snapshot() const;

  const CoupledSolver* solver_;
  std::vector<std::string> phase_names_;
  std::map<std::string, double> prev_;
  std::vector<std::map<std::string, double>> steps_;
};

}  // namespace dsmcpic::core
