#pragma once
// The paper's six evaluation datasets (Table I), re-created at
// container-feasible scale. Mesh resolutions and particle targets preserve
// the *ratios* between datasets (Dataset 3 = Dataset 2 with 10x larger
// scaling factors / 10x fewer particles; Datasets 5/6 use a larger grid);
// absolute sizes are reduced so a full bench sweep runs in minutes on one
// core. The `particle_scale` knob shrinks/grows every dataset's particle
// target together (bench --particles flag).

#include <cstdint>
#include <string>

#include "core/config.hpp"

namespace dsmcpic::core {

struct Dataset {
  int id = 1;
  std::string name;
  SolverConfig config;
  std::int64_t target_h = 0;      // quasi-steady H simulation particles
  std::int64_t target_hplus = 0;  // quasi-steady H+ simulation particles
  /// Cost-model scales mapping this run back onto the paper's workload:
  /// paper particles per our particle / paper cells per our cell.
  double paper_particle_scale = 1.0;
  double paper_grid_scale = 1.0;
};

/// Builds dataset `id` in [1, 6]. `particle_scale` multiplies the particle
/// targets (1.0 = library defaults, ~1e5 peak H particles for Dataset 2).
Dataset make_dataset(int id, double particle_scale = 1.0);

}  // namespace dsmcpic::core
