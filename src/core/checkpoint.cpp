// Checkpoint / restart for the coupled solver. The state written here is
// everything that influences the remainder of a run: the per-rank particle
// stores, the grid ownership, the electric potential (warm-start state),
// every RNG stream position (injector remainders/sequences, collision
// carries/majorants), the sampler accumulators, the load balancer's window
// and statistics, and the virtual-time accounting. Restoring into a solver
// built with the identical configuration reproduces the uninterrupted run
// bit-for-bit (verified by the CheckpointRestart tests).

#include <cstring>
#include <fstream>

#include "core/solver.hpp"
#include "support/serialize.hpp"

namespace dsmcpic::core {

namespace {

constexpr std::uint64_t kMagic = 0x44534d435049434bULL;  // "DSMCPICK"
// v2: ParticleStore serializes per-component (SoA) position/velocity arrays
// instead of two Vec3 arrays.
// v3: adds the particle-phase busy window, cost-model scales and
// rebalance-policy state (DESIGN.md §2h).
// v4: adds the elastic-ensemble state — the solver's active rank count and
// the ensemble policy's EWMAs/decision log — and the runtime stream gained
// its active set and superstep counter (DESIGN.md §2i).
constexpr std::uint32_t kVersion = 4;

/// A cheap fingerprint of the configuration pieces that must match between
/// the saving and restoring solver.
std::uint64_t config_fingerprint(const SolverConfig& cfg,
                                 const ParallelConfig& par,
                                 std::int32_t num_cells) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  mix(static_cast<std::uint64_t>(num_cells));
  mix(static_cast<std::uint64_t>(par.nranks));
  mix(cfg.seed);
  mix(static_cast<std::uint64_t>(cfg.pic_substeps));
  std::uint64_t bits;
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::memcpy(&bits, &cfg.dt_dsmc, sizeof(bits));
  mix(bits);
  std::memcpy(&bits, &cfg.fnum_h, sizeof(bits));
  mix(bits);
  return h;
}

}  // namespace

void CoupledSolver::save_checkpoint(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  DSMCPIC_CHECK_MSG(os.good(), "cannot open checkpoint file " << path);

  io::write_pod(os, kMagic);
  io::write_pod(os, kVersion);
  io::write_pod(os, config_fingerprint(cfg_, pcfg_, coarse_.num_tets()));

  io::write_pod(os, step_);
  io::write_pod(os, steps_since_rebalance_);
  io::write_vec(os, owner_);

  io::write_pod<std::uint64_t>(os, stores_.size());
  for (const auto& store : stores_) store.save(os);

  io::write_vec(os, phi_global_);

  inject_h_->save(os);
  inject_hplus_->save(os);
  collide_->save(os);
  sampler_.save(os);

  io::write_vec(os, prev_total_);
  io::write_vec(os, prev_pm_);
  io::write_vec(os, prev_poi_);
  io::write_vec(os, prev_particle_);
  io::write_vec(os, prev_predicted_);
  io::write_pod(os, lb_stats_);
  cost_model_.save(os);
  policy_.save(os);
  io::write_pod<std::int32_t>(os, active_);
  ensemble_.save(os);

  rt_->save(os);
}

void CoupledSolver::restore_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DSMCPIC_CHECK_MSG(is.good(), "cannot open checkpoint file " << path);

  DSMCPIC_CHECK_MSG(io::read_pod<std::uint64_t>(is) == kMagic,
                    "not a dsmcpic checkpoint: " << path);
  DSMCPIC_CHECK_MSG(io::read_pod<std::uint32_t>(is) == kVersion,
                    "unsupported checkpoint version");
  DSMCPIC_CHECK_MSG(io::read_pod<std::uint64_t>(is) ==
                        config_fingerprint(cfg_, pcfg_, coarse_.num_tets()),
                    "checkpoint was written with a different configuration");

  step_ = io::read_pod<int>(is);
  steps_since_rebalance_ = io::read_pod<int>(is);
  owner_ = io::read_vec<std::int32_t>(is);
  DSMCPIC_CHECK(static_cast<std::int32_t>(owner_.size()) == coarse_.num_tets());

  const auto nstores = io::read_pod<std::uint64_t>(is);
  DSMCPIC_CHECK(nstores == stores_.size());
  for (auto& store : stores_) store.load(is);
  for (std::size_t r = 0; r < stores_.size(); ++r)
    removed_[r].assign(stores_[r].size(), 0);

  phi_global_ = io::read_vec<double>(is);
  DSMCPIC_CHECK(phi_global_.size() ==
                static_cast<std::size_t>(psys_->num_nodes()));

  inject_h_->load(is);
  inject_hplus_->load(is);
  collide_->load(is);
  sampler_.load(is);

  prev_total_ = io::read_vec<double>(is);
  prev_pm_ = io::read_vec<double>(is);
  prev_poi_ = io::read_vec<double>(is);
  prev_particle_ = io::read_vec<double>(is);
  prev_predicted_ = io::read_vec<double>(is);
  lb_stats_ = io::read_pod<balance::RebalanceStats>(is);
  cost_model_.load(is);
  policy_.load(is);
  const auto active = io::read_pod<std::int32_t>(is);
  DSMCPIC_CHECK_MSG(active >= 1 && active <= pcfg_.nranks,
                    "checkpoint active rank count " << active
                                                    << " out of range");
  active_ = active;
  ensemble_.load(is);

  rt_->load(is);
  DSMCPIC_CHECK(rt_->active_ranks() == active_);

  // Rebuild decomposition-dependent structures for the restored ownership
  // (no cost charging: the restored clocks already contain everything).
  rebuild_parallel_structures(phases::kInit, /*charge_costs=*/false);
  history_.clear();
}

}  // namespace dsmcpic::core
