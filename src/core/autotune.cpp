#include "core/autotune.hpp"

#include <algorithm>

#include "core/solver.hpp"
#include "support/error.hpp"

namespace dsmcpic::core {

AutotuneResult autotune_balance(const SolverConfig& cfg,
                                const ParallelConfig& par,
                                const AutotuneOptions& options) {
  DSMCPIC_CHECK(!options.periods.empty());
  DSMCPIC_CHECK(!options.thresholds.empty());
  DSMCPIC_CHECK(options.pilot_steps >= 1);

  AutotuneResult result;
  for (const int period : options.periods) {
    for (const double threshold : options.thresholds) {
      ParallelConfig trial_par = par;
      trial_par.balance.enabled = true;
      trial_par.balance.period = period;
      trial_par.balance.threshold = threshold;
      CoupledSolver solver(cfg, trial_par);
      solver.run(options.pilot_steps);
      AutotuneTrial trial;
      trial.period = period;
      trial.threshold = threshold;
      trial.total_time = solver.runtime().total_time();
      trial.rebalances = solver.rebalance_stats().rebalances;
      result.trials.push_back(trial);
    }
  }
  std::sort(result.trials.begin(), result.trials.end(),
            [](const AutotuneTrial& a, const AutotuneTrial& b) {
              return a.total_time < b.total_time;
            });
  result.best_period = result.trials.front().period;
  result.best_threshold = result.trials.front().threshold;
  return result;
}

}  // namespace dsmcpic::core
