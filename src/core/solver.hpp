#pragma once
// The coupled DSMC/PIC solver — the paper's Fig. 1 workflow on the virtual
// distributed machine:
//
//   Init -> per DSMC step:
//     Inject -> DSMC_Move -> DSMC_Exchange -> Reindex -> Colli_React
//       -> { PIC_Move -> PIC_Exchange -> Poisson_Solve } x pic_substeps
//       -> Rebalance (dynamic load balancer, Algorithm 1)
//
// Only the coarse grid is decomposed (the fine PIC grid is nested, Fig. 2);
// each rank simulates the particles living in its coarse cells and the
// Poisson rows of its owned fine-grid nodes. Setting nranks = 1 yields the
// serial reference implementation used by the validation experiment.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "balance/rebalancer.hpp"
#include "core/case_geometry.hpp"
#include "core/config.hpp"
#include "dsmc/collide.hpp"
#include "dsmc/injector.hpp"
#include "dsmc/mover.hpp"
#include "dsmc/sampling.hpp"
#include "linalg/dist.hpp"
#include "mesh/refine.hpp"
#include "par/runtime.hpp"
#include "pic/deposit.hpp"
#include "pic/fine_grid.hpp"
#include "pic/node_exchange.hpp"
#include "pic/poisson.hpp"
#include "support/kernel_exec.hpp"

namespace dsmcpic::obs {
class HealthAuditor;
class HostProfiler;
class TelemetryHub;
}

namespace dsmcpic::core {

/// Per-DSMC-step diagnostics (drives Fig. 5 / Fig. 9-style outputs).
struct StepDiagnostics {
  int dsmc_step = 0;
  std::vector<std::int64_t> particles_per_rank;
  std::int64_t total_h = 0;
  std::int64_t total_hplus = 0;
  std::int64_t injected = 0;
  std::int64_t migrated_dsmc = 0;
  std::int64_t migrated_pic = 0;
  std::int64_t collisions = 0;
  std::int64_t ionizations = 0;
  std::int64_t recombinations = 0;
  std::int64_t exited_dsmc = 0;  // neutrals removed through inlet/outlet
  std::int64_t exited_pic = 0;   // charged particles removed at boundaries
  std::int64_t pic_lost = 0;     // charged particles the fine locate lost
  int poisson_iterations = 0;  // last PIC substep
  double lii = 0.0;            // load imbalance indicator this step
  bool rebalanced = false;
};

/// End-of-run accounting used by the bench harness.
struct RunSummary {
  double total_time = 0.0;  // end-to-end virtual seconds
  std::vector<std::string> phase_names;
  std::vector<par::PhaseStats> phase_stats;  // parallel to phase_names
  balance::RebalanceStats rebalance;
  /// Every periodic when-to-rebalance decision the policy made.
  std::vector<balance::PolicyDecision> decisions;
  /// Every periodic ensemble resize decision (empty unless elastic).
  std::vector<balance::EnsembleDecision> ensemble_decisions;
  std::int64_t final_particles = 0;
  std::uint64_t supersteps = 0;  // runtime supersteps executed end-to-end
  int active_ranks = 0;          // active count at end of run

  /// Sum of per-rank busy seconds across every phase — the "node-seconds"
  /// the run consumed (what an elastic ensemble tries to shrink).
  double busy_sum_total() const;

  double phase_max(const std::string& name) const;
};

class CoupledSolver {
 public:
  CoupledSolver(SolverConfig cfg, ParallelConfig par);
  /// Shares pre-built immutable geometry (coarse grid + nested refinement,
  /// including the FacePlane/BaryCache tables) across solver instances —
  /// the fleet service builds each scenario's meshes once and hands the
  /// same CaseGeometry to every concurrent run. `geom` must have been built
  /// from the SAME NozzleSpec as cfg.nozzle (checked); nullptr builds
  /// privately, identical to the two-argument constructor.
  CoupledSolver(SolverConfig cfg, ParallelConfig par,
                std::shared_ptr<const CaseGeometry> geom);
  ~CoupledSolver();

  /// Runs `n` DSMC steps (each containing cfg.pic_substeps PIC steps).
  void run(int n);
  /// One DSMC step; diagnostics are also appended to history().
  StepDiagnostics step();

  // ---- inspection --------------------------------------------------------
  par::Runtime& runtime() { return *rt_; }
  const par::Runtime& runtime() const { return *rt_; }
  const SolverConfig& config() const { return cfg_; }
  const ParallelConfig& parallel_config() const { return pcfg_; }
  const mesh::TetMesh& coarse_grid() const { return coarse_; }
  const pic::FineGrid& fine_grid() const { return *fine_; }
  const dsmc::SpeciesTable& species() const { return species_; }
  const dsmc::CellSampler& sampler() const { return sampler_; }
  std::span<const std::int32_t> owner() const { return owner_; }
  int current_step() const { return step_; }
  const std::vector<StepDiagnostics>& history() const { return history_; }
  const balance::RebalanceStats& rebalance_stats() const { return lb_stats_; }
  /// Timer-augmented cost model state (DESIGN.md §2h).
  const balance::CostModel& cost_model() const { return cost_model_; }
  /// When-to-rebalance policy state and its recorded decisions.
  const balance::RebalancePolicy& policy() const { return policy_; }
  /// Elastic-ensemble policy state and its recorded decisions (§2i).
  const balance::EnsemblePolicy& ensemble() const { return ensemble_; }
  /// Ranks currently participating (== nranks unless the ensemble shrank).
  int active_ranks() const { return active_; }
  /// Per-rank partition-adjacency neighbor lists (built for Strategy::
  /// kNeighbor; empty otherwise).
  const std::vector<std::vector<int>>& neighbors() const { return neighbors_; }

  std::vector<std::int64_t> particles_per_rank() const;
  std::int64_t total_particles() const;
  /// Read-only view of the per-rank particle stores (inspection/tests).
  const std::vector<dsmc::ParticleStore>& stores() const { return stores_; }
  /// Global electric potential on fine-grid nodes (last solve).
  const std::vector<double>& potential() const { return phi_global_; }

  RunSummary summary() const;

  // ---- observability (DESIGN.md §2f) -------------------------------------
  /// Attaches a health auditor; nullptr detaches. Audit hooks run on the
  /// driver thread between supersteps, read accounting state only (plus one
  /// read-only particle re-sum for the charge balance) and never draw
  /// randomness, so attaching an auditor cannot perturb golden digests or
  /// trace bytes. The auditor must outlive the attachment.
  void set_auditor(obs::HealthAuditor* auditor) { auditor_ = auditor; }
  obs::HealthAuditor* auditor() const { return auditor_; }

  /// Attaches a host wall-clock profiler; nullptr detaches. Scopes open
  /// inside superstep bodies (move/collide/react/deposit) and around the
  /// driver-side stages (field_solve/exchange/rebalance); samples live only
  /// in the profiler, strictly outside deterministic state.
  void set_host_profiler(obs::HostProfiler* prof) { prof_ = prof; }
  obs::HostProfiler* host_profiler() const { return prof_; }

  /// Attaches a live telemetry hub; nullptr detaches. Sampled once per DSMC
  /// step on the driver thread from accounting state only (same contract as
  /// the auditor: read-only, no randomness), so attaching a hub cannot
  /// perturb golden digests, traces or reports. On a HealthAuditor abort
  /// (or any error escaping step()), a fault-injection trip, or a park the
  /// hub's flight recorder is dumped to its postmortem path. The hub must
  /// outlive the attachment.
  void set_telemetry(obs::TelemetryHub* hub) { telemetry_ = hub; }
  obs::TelemetryHub* telemetry() const { return telemetry_; }

  // ---- checkpoint / restart ----------------------------------------------
  /// Writes the complete simulation state (particles, potential, ownership,
  /// RNG stream positions, accounting clocks) to a binary file. Call
  /// between steps.
  void save_checkpoint(const std::string& path) const;
  /// Restores state saved by save_checkpoint into a solver constructed with
  /// the SAME SolverConfig/ParallelConfig (verified by fingerprint).
  /// Continuing the run reproduces the uninterrupted run exactly.
  void restore_checkpoint(const std::string& path);

 private:
  void init();
  /// (Re)builds rank-local cell lists, node exchange, and the distributed
  /// Poisson operator for the current owner_ map; charges setup work under
  /// `phase` when charge_costs is true.
  void rebuild_parallel_structures(const std::string& phase, bool charge_costs);

  /// Feeds the per-step counter registry of an attached trace recorder
  /// (particles/cells owned per rank, migration volume, lii) and marks
  /// rebalance decisions as instant events. No-op without a recorder;
  /// reads accounting state only, so it cannot perturb the run.
  void record_trace_counters(const StepDiagnostics& diag);

  /// Copies the step's deterministic accounting into a TelemetrySample and
  /// feeds the attached hub. No-op without a hub; reads accounting state
  /// only, so it cannot perturb the run.
  void record_telemetry(const StepDiagnostics& diag);
  /// step() body; step() wraps it to dump the flight recorder on abort.
  StepDiagnostics step_impl();

  /// Number of removal-flagged particles across all ranks — the drop count
  /// the next exchange must produce. Audit-only read.
  std::int64_t flagged_count() const;

  void do_inject(StepDiagnostics& diag);
  void do_dsmc_move(StepDiagnostics& diag);
  void do_reindex();
  void do_colli_react(StepDiagnostics& diag);
  void do_pic_substep(int substep, StepDiagnostics& diag);
  void do_poisson_solve(StepDiagnostics& diag);
  void maybe_rebalance(StepDiagnostics& diag);
  /// Elastic-ensemble resize check at rebalance-period boundaries (§2i).
  void maybe_resize_ensemble(StepDiagnostics& diag);
  /// Repartitions into `target` parts, migrates particles, and resizes the
  /// runtime's active rank set (grow activates before migration so new
  /// ranks can receive; shrink migrates first so parked ranks drain).
  void resize_active(int target);

  SolverConfig cfg_;
  ParallelConfig pcfg_;

  dsmc::SpeciesTable species_;
  /// Owns the meshes (possibly shared with other solver instances); the
  /// references below alias into it so every existing call site reads
  /// `coarse_` / `refined_` unchanged. Declared before them: member init
  /// order is declaration order.
  std::shared_ptr<const CaseGeometry> geom_;
  const mesh::TetMesh& coarse_;
  const mesh::RefinedMesh& refined_;
  std::unique_ptr<pic::FineGrid> fine_;
  partition::Graph dual_;

  std::unique_ptr<par::Runtime> rt_;
  int active_ = 0;                              // active rank prefix [0, n)
  std::vector<std::int32_t> owner_;             // coarse cell -> rank
  std::vector<std::vector<std::int32_t>> my_cells_;  // per rank (nominal size;
                                                     // parked lists empty)
  std::vector<std::vector<int>> neighbors_;     // partition adjacency (NC)

  std::vector<dsmc::ParticleStore> stores_;          // per rank
  std::vector<std::vector<std::uint8_t>> removed_;   // per rank flags

  // Intra-rank kernel executor (pcfg_.kernel_threads lanes; shared by all
  // rank bodies — batches serialize on its pool) and per-rank reusable
  // scratch so chunking allocates nothing in steady state.
  std::unique_ptr<support::KernelExec> kexec_;
  std::vector<dsmc::CellIndex> cell_index_;          // per rank, rebuilt
  std::vector<dsmc::CollideScratch> collide_scratch_;
  std::vector<pic::DepositScratch> deposit_scratch_;
  std::vector<dsmc::SortScratch> sort_scratch_;      // periodic cell sort

  std::unique_ptr<dsmc::MaxwellianInjector> inject_h_;
  std::unique_ptr<dsmc::MaxwellianInjector> inject_hplus_;
  std::unique_ptr<dsmc::Mover> mover_;
  std::unique_ptr<dsmc::Chemistry> chemistry_;
  std::unique_ptr<dsmc::CollisionKernel> collide_;

  std::unique_ptr<pic::PoissonSystem> psys_;
  std::unique_ptr<pic::NodeExchange> nodex_;
  linalg::DistMatrix dmat_;
  linalg::DistVector x_;                        // per-rank owned phi (warm)
  std::vector<std::vector<double>> phi_local_;  // per-rank, rank_nodes order
  std::vector<double> phi_global_;              // driver-side mirror

  dsmc::CellSampler sampler_;

  int step_ = 0;
  int steps_since_rebalance_ = 0;
  double trace_prev_exch_bytes_ = 0.0;  // per-step migration-bytes delta
  std::vector<double> prev_total_, prev_pm_, prev_poi_;  // lii window
  std::vector<double> prev_particle_;  // particle-phase window (cost model)
  std::vector<double> prev_predicted_;  // last step's static wlm per rank
  balance::RebalanceStats lb_stats_;
  balance::CostModel cost_model_;
  balance::RebalancePolicy policy_;
  balance::EnsemblePolicy ensemble_;
  std::vector<StepDiagnostics> history_;

  obs::HealthAuditor* auditor_ = nullptr;  // not owned
  obs::HostProfiler* prof_ = nullptr;      // not owned
  obs::TelemetryHub* telemetry_ = nullptr;  // not owned
  double telem_prev_exch_bytes_ = 0.0;  // telemetry's own migration deltas
  std::uint64_t telem_prev_exch_msgs_ = 0;
  bool fault_fired_ = false;  // a fault-injection site was reached
};

}  // namespace dsmcpic::core
