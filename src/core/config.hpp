#pragma once
// Configuration for the coupled DSMC/PIC solver (paper Secs. III, VI).

#include <cstdint>

#include "balance/rebalancer.hpp"
#include "dsmc/chemistry.hpp"
#include "dsmc/collide.hpp"
#include "dsmc/injector.hpp"
#include "dsmc/mover.hpp"
#include "exchange/exchange.hpp"
#include "linalg/krylov.hpp"
#include "mesh/nozzle.hpp"
#include "par/machine.hpp"
#include "par/runtime.hpp"
#include "pic/poisson.hpp"

namespace dsmcpic::core {

/// Test-only fault injection (tests/obs_test.cpp). The faults corrupt the
/// run *mid-step* — after an exchange, inside a deposit — exactly where the
/// health auditor's ledgers look, so end-to-end detection can be asserted:
///  * kDropParticle: silently discards one particle per step right after
///    DSMC_Exchange (a leak the particle-books invariant must flag);
///  * kSkewDeposit: adds a spurious charge to one node after deposition
///    (a scatter bug the charge-balance invariant must flag);
///  * kSkewRebalanceCost: inflates the policy's rebalance-cost estimate
///    1000x before the post-rebalance audit (a broken cost feedback loop
///    the rebalance-cost invariant must flag).
enum class FaultInjection { kNone, kDropParticle, kSkewDeposit, kSkewRebalanceCost };

/// Physics + numerics of one simulation case.
struct SolverConfig {
  mesh::NozzleSpec nozzle;

  // Inlet plasma source (paper Sec. VI-C / VII-A).
  double density_h = 7e18;       // H number density [1/m^3]
  double density_hplus = 3e8;    // H+ number density [1/m^3]
  double fnum_h = 1e12;          // scaling factor (real per sim particle)
  double fnum_hplus = 6000.0;
  double inlet_temperature = 300.0;  // K
  double drift_speed = 1e4;          // m/s (paper: 10000 m/s)

  // Timestepping: one DSMC step contains `pic_substeps` PIC steps (paper
  // runs 100 DSMC steps with 2 PIC steps each).
  double dt_dsmc = 2e-7;  // s
  int pic_substeps = 2;

  /// Distribute injection work round-robin over ranks (new particles reach
  /// their owners via DSMC_Exchange) — matches the paper's near-perfectly
  /// scaling Inject phase. When false, only inlet-cell owners inject.
  bool inject_round_robin = true;

  /// Time-varying injection (fleet scenario corpus): scales the inflow of
  /// BOTH species per DSMC step by 1 + amplitude * sin(2*pi*step / period),
  /// clamped at >= 0. Amplitude 0 or period 0 keeps the constant-inflow
  /// path bit-identical to before the knob existed. The modulation is a
  /// pure function of the step index, so it needs no checkpoint state.
  double inject_pulse_amplitude = 0.0;
  int inject_pulse_period = 0;

  dsmc::MoverConfig mover;          // wall model / temperature
  dsmc::CollisionConfig collisions;
  dsmc::ChemistryConfig chemistry;
  pic::PoissonBCs poisson_bcs;
  linalg::SolveOptions poisson;     // KSP substitute settings
  Vec3 magnetic_field{};            // constant B (paper: 0 or user constant)

  std::uint64_t seed = 42;

  /// Periodic cell sort (DESIGN.md §2g): every `sort_every` DSMC steps each
  /// rank's particle store is reordered cell-major (stable counting sort) so
  /// collide/deposit traversals stream memory linearly. 0 disables. Pure
  /// memory-layout work: results, digests and virtual clocks are
  /// bit-identical for ANY value, and like kernel_threads it is not part of
  /// the checkpoint fingerprint.
  int sort_every = 0;

  /// Deliberate corruption for auditor tests; kNone outside of tests.
  FaultInjection fault = FaultInjection::kNone;

  double dt_pic() const { return dt_dsmc / pic_substeps; }

  /// Retunes the two scaling factors so a quasi-steady run holds roughly
  /// `target_h` / `target_hplus` simulation particles (the knob the paper
  /// turns via Table I's scaling factors).
  void set_target_particles(std::int64_t target_h, std::int64_t target_hplus);
};

/// The virtual-machine / parallelization side of a run.
struct ParallelConfig {
  int nranks = 4;
  par::MachineProfile profile = par::MachineProfile::tianhe2();
  par::Placement placement = par::Placement::kInnerFrame;
  /// Cost-model scales mapping this scaled-down run onto paper-magnitude
  /// virtual seconds: particle-proportional work x particle_scale
  /// (paper particles / our particles), grid-proportional work x grid_scale
  /// (paper cells / our cells).
  double particle_scale = 1.0;
  double grid_scale = 1.0;
  exchange::Strategy strategy = exchange::Strategy::kDistributed;
  balance::RebalanceConfig balance;
  /// Superstep execution backend. kThreaded runs rank bodies on a worker
  /// pool; results (virtual clocks, diagnostics, physics) are bit-identical
  /// to kSequential — only wall-clock changes. Not part of the checkpoint
  /// fingerprint, so a threaded run may restore a sequential checkpoint and
  /// vice versa.
  par::ExecMode exec_mode = par::ExecMode::kSequential;
  /// Worker lanes for kThreaded; <= 0 means one per hardware thread.
  int exec_threads = 0;
  /// Intra-rank kernel lanes (the second level of the execution model,
  /// DESIGN.md §2d): move/collide/react/deposit chunk their particle or
  /// cell ranges across a dedicated pool. Orthogonal to exec_mode; results
  /// and virtual clocks are bit-identical to serial for any value. <= 1
  /// means serial kernels. Not part of the checkpoint fingerprint.
  int kernel_threads = 1;
};

/// Phase labels (paper Fig. 1). Used as runtime phase keys everywhere so
/// breakdown tables match the paper's rows.
namespace phases {
inline constexpr const char* kInit = "Init";
inline constexpr const char* kInject = "Inject";
inline constexpr const char* kDsmcMove = "DSMC_Move";
inline constexpr const char* kDsmcExchange = "DSMC_Exchange";
inline constexpr const char* kReindex = "Reindex";
inline constexpr const char* kColliReact = "Colli_React";
inline constexpr const char* kPicMove = "PIC_Move";
inline constexpr const char* kPicExchange = "PIC_Exchange";
inline constexpr const char* kPoissonSolve = "Poisson_Solve";
inline constexpr const char* kRebalance = "Rebalance";
}  // namespace phases

}  // namespace dsmcpic::core
