#include "core/case_geometry.hpp"

namespace dsmcpic::core {

std::shared_ptr<const CaseGeometry> CaseGeometry::build(
    const mesh::NozzleSpec& spec) {
  auto g = std::make_shared<CaseGeometry>();
  g->spec = spec;
  g->coarse = mesh::make_cylinder_nozzle(spec);
  g->refined = mesh::red_refine(g->coarse, mesh::nozzle_classifier(spec));
  return g;
}

}  // namespace dsmcpic::core
