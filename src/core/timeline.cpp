#include "core/timeline.hpp"

#include <algorithm>
#include <fstream>

#include "core/solver.hpp"
#include "support/error.hpp"
#include "trace/chrome_writer.hpp"

namespace dsmcpic::core {

PhaseTimeline::PhaseTimeline(const CoupledSolver& solver) : solver_(&solver) {
  prev_ = snapshot();
}

std::map<std::string, double> PhaseTimeline::snapshot() const {
  std::map<std::string, double> out;
  const par::Runtime& rt = solver_->runtime();
  for (const auto& name : rt.phases())
    out[name] = rt.phase_stats(name).busy_max;
  return out;
}

void PhaseTimeline::record_step() {
  const auto cur = snapshot();
  std::map<std::string, double> delta;
  for (const auto& [name, value] : cur) {
    const auto it = prev_.find(name);
    const double d = value - (it == prev_.end() ? 0.0 : it->second);
    if (d > 0.0) delta[name] = d;
    if (std::find(phase_names_.begin(), phase_names_.end(), name) ==
        phase_names_.end())
      phase_names_.push_back(name);
  }
  steps_.push_back(std::move(delta));
  prev_ = cur;
}

double PhaseTimeline::at(std::size_t step, const std::string& phase) const {
  DSMCPIC_CHECK(step < steps_.size());
  const auto it = steps_[step].find(phase);
  return it == steps_[step].end() ? 0.0 : it->second;
}

void PhaseTimeline::write_csv(const std::string& path) const {
  std::ofstream os(path);
  DSMCPIC_CHECK_MSG(os.good(), "cannot open " << path);
  os << "step";
  for (const auto& p : phase_names_) os << "," << p;
  os << "\n";
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    os << s;
    for (const auto& p : phase_names_) os << "," << at(s, p);
    os << "\n";
  }
}

void PhaseTimeline::write_chrome_trace(const std::string& path) const {
  std::ofstream os(path);
  DSMCPIC_CHECK_MSG(os.good(), "cannot open " << path);
  // One lane, phases back to back — the shared emitter handles escaping of
  // arbitrary phase names. For the per-rank multi-lane view, attach a
  // trace::TraceRecorder to the runtime instead (docs/observability.md).
  trace::ChromeTraceWriter w(os, trace::ChromeTraceWriter::Style::kArray);
  double cursor_us = 0.0;
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    for (const auto& p : phase_names_) {
      const double dur_us = at(s, p) * 1e6;
      if (dur_us <= 0.0) continue;
      w.complete(p, "phase", cursor_us, dur_us, 0, 0,
                 "{\"dsmc_step\": " + std::to_string(s) + "}");
      cursor_us += dur_us;
    }
  }
  w.finish();
}

}  // namespace dsmcpic::core
