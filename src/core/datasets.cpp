#include "core/datasets.hpp"

#include <cmath>

#include "dsmc/maxwell.hpp"
#include "support/error.hpp"

namespace dsmcpic::core {

void SolverConfig::set_target_particles(std::int64_t target_h,
                                        std::int64_t target_hplus) {
  DSMCPIC_CHECK(target_h > 0 && target_hplus > 0);
  // Quasi-steady population ~ injection-per-step * residence steps.
  // Neutrals thermalize on the diffuse walls and linger ~4.5x the ballistic
  // transit time (measured on this nozzle); ions are swept out by the inlet
  // sheath field in roughly one transit.
  // Cap the effective residence so the population reaches the target within
  // a typical 60-100 step run even when wall thermalization makes the true
  // residence much longer (slow-fill regimes).
  const double transit_steps = nozzle.length / (drift_speed * dt_dsmc);
  const double residence_h = std::clamp(4.5 * transit_steps, 1.0, 40.0);
  const double residence_hplus = std::clamp(1.0 * transit_steps, 1.0, 25.0);
  const double inlet_area = nozzle.inlet_count * M_PI *
                            nozzle.inlet_radius() * nozzle.inlet_radius();

  auto fnum_for = [&](double density, double mass, std::int64_t target,
                      double residence) {
    const double flux =
        density *
        dsmc::maxwellian_flux_factor(drift_speed, inlet_temperature, mass);
    const double per_step = static_cast<double>(target) / residence;
    return flux * inlet_area * dt_dsmc / per_step;
  };
  fnum_h = fnum_for(density_h, dsmc::constants::kHydrogenMass, target_h,
                    residence_h);
  fnum_hplus = fnum_for(density_hplus, dsmc::constants::kHydrogenMass,
                        target_hplus, residence_hplus);
}

Dataset make_dataset(int id, double particle_scale) {
  DSMCPIC_CHECK_MSG(id >= 1 && id <= 6, "dataset id must be 1..6");
  DSMCPIC_CHECK(particle_scale > 0.0);

  Dataset d;
  d.id = id;
  d.name = "Dataset " + std::to_string(id);

  SolverConfig& c = d.config;
  c.nozzle.radius = 0.01;
  c.nozzle.length = 0.05;
  c.nozzle.inlet_radius_frac = 0.4;
  c.drift_speed = 1e4;
  c.inlet_temperature = 300.0;
  c.mover.wall_temperature = 300.0;
  c.poisson.rel_tol = 1e-6;
  c.poisson.max_iterations = 400;
  // Moderate inlet potential: strong enough to accelerate ions out of the
  // nozzle (the physics of the plume sheath) but weak enough that the H+
  // population persists for several DSMC steps and loads the PIC side.
  c.poisson_bcs.phi_inlet = 2.0;
  c.poisson_bcs.phi_outlet = 0.0;
  // Effective ionization threshold chosen so the channel fires at plume
  // collision energies (see DESIGN.md: substitutes for the un-modelled hot
  // arc source; 13.6 eV would silence the chemistry at 10 km/s drift).
  c.chemistry.ionization_threshold = 0.15 * dsmc::constants::kElementaryCharge;
  c.chemistry.ionization_probability = 0.02;
  c.chemistry.recombination_rate = 2.6e-19;

  // Per-dataset grid resolution (paper Table I: 55,576 / 583,386 /
  // 2,242,948 fine PIC cells) and particle targets. Ratios between the
  // datasets are preserved; absolute sizes are container-scaled.
  std::int64_t target_h = 0, target_hplus = 0;
  double paper_particles_h = 0.0;
  double paper_fine_cells = 0.0;  // Table I "#PIC Cells"
  switch (id) {
    case 1:
      c.nozzle.radial_divisions = 5;
      c.nozzle.axial_divisions = 12;  // 1,800 coarse / 14,400 fine cells
      c.density_h = 7e18;
      c.density_hplus = 3e8;
      c.dt_dsmc = 2e-7;  // paper's Dataset 1 timestep
      c.pic_substeps = 2;
      target_h = static_cast<std::int64_t>(2.0e4 * particle_scale);
      target_hplus = static_cast<std::int64_t>(4.0e3 * particle_scale);
      paper_particles_h = 1e7;  // validation-scale run
      paper_fine_cells = 55576;
      break;
    case 2:
    case 3:
    case 4: {
      c.nozzle.radial_divisions = 6;
      c.nozzle.axial_divisions = 18;  // 3,888 coarse / 31,104 fine cells
      c.density_h = 9.94e19;
      c.density_hplus = 4.77e7;
      // The drifting beam advances ~0.22 mm/step and wall-thermalized
      // particles crawl even slower, so the inlet-side cloud keeps growing
      // for the whole run — the paper's Fig. 5 regime (~90% of particles
      // still on the inlet-side rank after 200 PIC steps).
      c.dt_dsmc = 2.2e-8;
      c.pic_substeps = 2;
      // Paper: D2 = 1e9 H + 1e8 H+; D3 = 10x larger scaling factor (1e8 /
      // 1e7 particles); D4 = 2x larger scaling factor (5e8 / 5e7).
      const double shrink = (id == 2) ? 1.0 : (id == 3 ? 0.1 : 0.5);
      target_h = static_cast<std::int64_t>(1.0e5 * shrink * particle_scale);
      target_hplus = static_cast<std::int64_t>(1.0e4 * shrink * particle_scale);
      paper_particles_h = 1e9 * shrink;
      paper_fine_cells = 583386;
      break;
    }
    case 5:
    case 6: {
      c.nozzle.radial_divisions = 8;
      c.nozzle.axial_divisions = 24;  // 9,216 coarse / 73,728 fine cells
      c.density_h = 1.4e20;
      c.density_hplus = 6.0e7;
      c.dt_dsmc = 2.0e-8;  // same slow-fill regime as Dataset 2
      c.pic_substeps = 2;
      const double shrink = (id == 5) ? 1.0 : 0.5;
      target_h = static_cast<std::int64_t>(1.0e5 * shrink * particle_scale);
      target_hplus = static_cast<std::int64_t>(1.0e4 * shrink * particle_scale);
      paper_particles_h = 1e9 * shrink;
      paper_fine_cells = 2242948;
      break;
    }
    default:
      break;
  }
  c.set_target_particles(target_h, target_hplus);
  d.target_h = target_h;
  d.target_hplus = target_hplus;
  d.paper_particle_scale = paper_particles_h / static_cast<double>(target_h);
  d.paper_grid_scale =
      paper_fine_cells / static_cast<double>(c.nozzle.expected_tets() * 8);
  return d;
}

}  // namespace dsmcpic::core
