#pragma once
// Minimal command-line flag parser used by the examples and bench binaries.
//
// Supports `--name value`, `--name=value` and boolean `--name`. Unknown
// flags — including mistyped single-dash tokens like `-steps` — raise an
// error listing the registered options, so every binary is self-documenting
// via --help. Negative numbers are still accepted as positionals.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dsmcpic {

class Cli {
 public:
  explicit Cli(std::string description) : description_(std::move(description)) {}

  /// Registers a flag with a default value. The returned pointer stays valid
  /// for the lifetime of the Cli object; read it after parse().
  const std::string* add_string(const std::string& name, std::string def,
                                std::string help);
  const std::int64_t* add_int(const std::string& name, std::int64_t def,
                              std::string help);
  const double* add_double(const std::string& name, double def, std::string help);
  const bool* add_flag(const std::string& name, bool def, std::string help);

  /// Parses argv. Returns false if --help was requested (help text printed).
  /// Throws dsmcpic::Error on malformed or unknown flags.
  bool parse(int argc, const char* const* argv);

  /// Help text for all registered options.
  std::string help_text() const;

  /// Positional (non-flag) arguments encountered during parse().
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  struct Option {
    std::string help;
    std::string default_repr;
    bool is_bool = false;
    std::function<void(const std::string&)> set;
  };

  void add_option(const std::string& name, Option opt);

  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
  // Deques of stable storage for returned pointers.
  std::vector<std::unique_ptr<std::string>> strings_;
  std::vector<std::unique_ptr<std::int64_t>> ints_;
  std::vector<std::unique_ptr<double>> doubles_;
  std::vector<std::unique_ptr<bool>> bools_;
};

}  // namespace dsmcpic
