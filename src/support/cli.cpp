#include "support/cli.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <memory>
#include <sstream>

#include "support/error.hpp"

namespace dsmcpic {

namespace {

std::int64_t parse_int(const std::string& name, const std::string& value) {
  std::int64_t out = 0;
  auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  DSMCPIC_CHECK_MSG(ec == std::errc{} && ptr == value.data() + value.size(),
                    "flag --" << name << ": not an integer: '" << value << "'");
  return out;
}

double parse_double(const std::string& name, const std::string& value) {
  try {
    std::size_t pos = 0;
    double out = std::stod(value, &pos);
    DSMCPIC_CHECK_MSG(pos == value.size(), "flag --" << name
                                                     << ": trailing characters in '"
                                                     << value << "'");
    return out;
  } catch (const std::logic_error&) {
    DSMCPIC_CHECK_MSG(false,
                      "flag --" << name << ": not a number: '" << value << "'");
  }
  return 0.0;  // unreachable
}

bool parse_bool(const std::string& name, const std::string& value) {
  if (value == "true" || value == "1" || value == "on" || value == "yes")
    return true;
  if (value == "false" || value == "0" || value == "off" || value == "no")
    return false;
  DSMCPIC_CHECK_MSG(false, "flag --" << name << ": not a boolean: '" << value
                                     << "'");
  return false;  // unreachable
}

}  // namespace

void Cli::add_option(const std::string& name, Option opt) {
  DSMCPIC_CHECK_MSG(!options_.count(name), "duplicate flag --" << name);
  options_.emplace(name, std::move(opt));
}

const std::string* Cli::add_string(const std::string& name, std::string def,
                                   std::string help) {
  strings_.push_back(std::make_unique<std::string>(std::move(def)));
  std::string* slot = strings_.back().get();
  Option opt;
  opt.help = std::move(help);
  opt.default_repr = *slot;
  opt.set = [slot](const std::string& v) { *slot = v; };
  add_option(name, std::move(opt));
  return slot;
}

const std::int64_t* Cli::add_int(const std::string& name, std::int64_t def,
                                 std::string help) {
  ints_.push_back(std::make_unique<std::int64_t>(def));
  std::int64_t* slot = ints_.back().get();
  Option opt;
  opt.help = std::move(help);
  opt.default_repr = std::to_string(def);
  opt.set = [slot, name](const std::string& v) { *slot = parse_int(name, v); };
  add_option(name, std::move(opt));
  return slot;
}

const double* Cli::add_double(const std::string& name, double def,
                              std::string help) {
  doubles_.push_back(std::make_unique<double>(def));
  double* slot = doubles_.back().get();
  Option opt;
  opt.help = std::move(help);
  std::ostringstream os;
  os << def;
  opt.default_repr = os.str();
  opt.set = [slot, name](const std::string& v) { *slot = parse_double(name, v); };
  add_option(name, std::move(opt));
  return slot;
}

const bool* Cli::add_flag(const std::string& name, bool def, std::string help) {
  bools_.push_back(std::make_unique<bool>(def));
  bool* slot = bools_.back().get();
  Option opt;
  opt.help = std::move(help);
  opt.default_repr = def ? "true" : "false";
  opt.is_bool = true;
  opt.set = [slot, name](const std::string& v) {
    *slot = v.empty() ? true : parse_bool(name, v);
  };
  add_option(name, std::move(opt));
  return slot;
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      // "-x" style tokens are almost always mistyped flags; treating them
      // as positionals made them silently ignored. Negative numbers stay
      // positional.
      DSMCPIC_CHECK_MSG(
          arg.size() < 2 || arg[0] != '-' ||
              (std::isdigit(static_cast<unsigned char>(arg[1])) ||
               arg[1] == '.'),
          "unknown flag " << arg << " (flags are spelled --name)\n"
                          << help_text());
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    DSMCPIC_CHECK_MSG(it != options_.end(),
                      "unknown flag --" << name << "\n" << help_text());
    Option& opt = it->second;
    if (!has_value && !opt.is_bool) {
      DSMCPIC_CHECK_MSG(i + 1 < argc, "flag --" << name << " expects a value");
      value = argv[++i];
      has_value = true;
    }
    opt.set(has_value ? value : std::string{});
  }
  return true;
}

std::string Cli::help_text() const {
  std::ostringstream os;
  os << description_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.is_bool) os << " <value>";
    os << "  (default: " << opt.default_repr << ")\n      " << opt.help << "\n";
  }
  return os.str();
}

}  // namespace dsmcpic
