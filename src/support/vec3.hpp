#pragma once
// Small fixed-size 3D vector used throughout mesh geometry and particle
// kinematics. Kept header-only and trivially copyable so particle arrays
// can be memcpy-serialized during migration.

#include <cmath>
#include <iosfwd>
#include <ostream>

namespace dsmcpic {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double xx, double yy, double zz) : x(xx), y(yy), z(zz) {}

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) { return *this *= (1.0 / s); }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm2() const { return dot(*this); }
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : Vec3{};
  }

  friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
  }
};

constexpr double dot(const Vec3& a, const Vec3& b) { return a.dot(b); }
constexpr Vec3 cross(const Vec3& a, const Vec3& b) { return a.cross(b); }

/// Scalar triple product a · (b × c); 6× the signed volume of the
/// tetrahedron spanned by the three edge vectors.
constexpr double triple(const Vec3& a, const Vec3& b, const Vec3& c) {
  return a.dot(b.cross(c));
}

}  // namespace dsmcpic
