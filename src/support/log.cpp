#include "support/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace dsmcpic {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void apply_env_once() {
  std::call_once(g_env_once, [] {
    if (const char* env = std::getenv("DSMCPIC_LOG"))
      g_level.store(parse_log_level(env, g_level.load(std::memory_order_relaxed)),
                    std::memory_order_relaxed);
  });
}

/// "2026-08-05T12:34:56.789Z" — UTC with millisecond resolution.
std::string iso8601_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const auto ms =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}
}  // namespace

LogLevel parse_log_level(const std::string& name, LogLevel fallback) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return fallback;
}

LogLevel log_level() {
  apply_env_once();
  return g_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) {
  apply_env_once();  // so a later env read cannot overwrite the override
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const char* component, const std::string& msg) {
  // One formatted write per line so concurrent emitters (superstep worker
  // threads) never interleave fragments.
  std::ostringstream line;
  line << iso8601_now() << " " << level_name(level) << "\t[" << component
       << "] " << msg << "\n";
  std::cerr << line.str();
}
}  // namespace detail

}  // namespace dsmcpic
