#pragma once
// Tiny leveled logger. Quiet by default so ctest output stays readable;
// bench binaries can raise the level with --verbose and any process can
// set the DSMCPIC_LOG environment variable (debug|info|warn|error|off)
// before the first message is emitted.
//
// Each line carries an ISO-8601 UTC wall-clock timestamp plus a component
// tag, e.g.
//
//   2026-08-05T12:34:56.789Z WARN  [audit] step 3: particle books ...
//
// Timestamps are wall-clock (stderr only) — nothing in the deterministic
// state ever reads them.

#include <iostream>
#include <sstream>
#include <string>

namespace dsmcpic {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded. The first call
/// (of either function) applies DSMCPIC_LOG from the environment once;
/// set_log_level overrides it.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-sensitive);
/// returns fallback on anything else.
LogLevel parse_log_level(const std::string& name, LogLevel fallback);

namespace detail {
void log_emit(LogLevel level, const char* component, const std::string& msg);
}

/// `component` tags the subsystem emitting the line ("audit", "bench", ...).
#define DSMCPIC_LOG_C(level, component, msg_expr)                        \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::dsmcpic::log_level())) { \
      std::ostringstream os_;                                            \
      os_ << msg_expr;                                                   \
      ::dsmcpic::detail::log_emit(level, component, os_.str());          \
    }                                                                    \
  } while (0)

#define DSMCPIC_LOG(level, msg_expr) DSMCPIC_LOG_C(level, "dsmcpic", msg_expr)

#define LOG_DEBUG(msg) DSMCPIC_LOG(::dsmcpic::LogLevel::kDebug, msg)
#define LOG_INFO(msg) DSMCPIC_LOG(::dsmcpic::LogLevel::kInfo, msg)
#define LOG_WARN(msg) DSMCPIC_LOG(::dsmcpic::LogLevel::kWarn, msg)
#define LOG_ERROR(msg) DSMCPIC_LOG(::dsmcpic::LogLevel::kError, msg)

#define LOG_DEBUG_C(component, msg) \
  DSMCPIC_LOG_C(::dsmcpic::LogLevel::kDebug, component, msg)
#define LOG_INFO_C(component, msg) \
  DSMCPIC_LOG_C(::dsmcpic::LogLevel::kInfo, component, msg)
#define LOG_WARN_C(component, msg) \
  DSMCPIC_LOG_C(::dsmcpic::LogLevel::kWarn, component, msg)
#define LOG_ERROR_C(component, msg) \
  DSMCPIC_LOG_C(::dsmcpic::LogLevel::kError, component, msg)

}  // namespace dsmcpic
