#pragma once
// Tiny leveled logger. Quiet by default so ctest output stays readable;
// bench binaries can raise the level with --verbose.

#include <iostream>
#include <sstream>
#include <string>

namespace dsmcpic {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

#define DSMCPIC_LOG(level, msg_expr)                                     \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::dsmcpic::log_level())) { \
      std::ostringstream os_;                                            \
      os_ << msg_expr;                                                   \
      ::dsmcpic::detail::log_emit(level, os_.str());                     \
    }                                                                    \
  } while (0)

#define LOG_DEBUG(msg) DSMCPIC_LOG(::dsmcpic::LogLevel::kDebug, msg)
#define LOG_INFO(msg) DSMCPIC_LOG(::dsmcpic::LogLevel::kInfo, msg)
#define LOG_WARN(msg) DSMCPIC_LOG(::dsmcpic::LogLevel::kWarn, msg)
#define LOG_ERROR(msg) DSMCPIC_LOG(::dsmcpic::LogLevel::kError, msg)

}  // namespace dsmcpic
