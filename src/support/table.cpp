#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>

namespace dsmcpic {

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << (fraction >= 0 ? "+" : "") << std::fixed << std::setprecision(precision)
     << fraction * 100.0 << "%";
  return os.str();
}

std::string Table::str() const {
  std::vector<std::size_t> widths;
  auto account = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  account(header_);
  for (const auto& r : rows_) account(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&os, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << "  ";
      os << std::setw(static_cast<int>(widths[i])) << std::left << cells[i];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
      total += widths[i] + (i ? 2 : 0);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << str(); }

void Table::print() const { std::cout << str() << std::flush; }

}  // namespace dsmcpic
