#pragma once
// Minimal binary (de)serialization helpers for checkpointing: PODs and
// vectors of PODs on iostreams, with length prefixes and failure checks.

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "support/error.hpp"

namespace dsmcpic::io {

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
  DSMCPIC_CHECK_MSG(os.good(), "checkpoint write failed");
}

template <typename T>
T read_pod(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  DSMCPIC_CHECK_MSG(is.good(), "checkpoint read failed (truncated?)");
  return value;
}

template <typename T>
void write_vec(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_pod<std::uint64_t>(os, v.size());
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
    DSMCPIC_CHECK_MSG(os.good(), "checkpoint write failed");
  }
}

template <typename T>
std::vector<T> read_vec(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto n = read_pod<std::uint64_t>(is);
  std::vector<T> v(n);
  if (n) {
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    DSMCPIC_CHECK_MSG(is.good(), "checkpoint read failed (truncated?)");
  }
  return v;
}

inline void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
  DSMCPIC_CHECK_MSG(os.good(), "checkpoint write failed");
}

inline std::string read_string(std::istream& is) {
  const auto n = read_pod<std::uint64_t>(is);
  std::string s(n, '\0');
  if (n) {
    is.read(s.data(), static_cast<std::streamsize>(n));
    DSMCPIC_CHECK_MSG(is.good(), "checkpoint read failed (truncated?)");
  }
  return s;
}

}  // namespace dsmcpic::io
