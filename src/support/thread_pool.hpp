#pragma once
// Fixed-size worker pool for the runtime's threaded execution backend and
// the intra-rank kernel executor.
//
// The pool exists for exactly one call shape: parallel_for(n, fn) runs
// fn(0..n-1) across the workers plus the calling thread and returns when
// every index has finished. Indices are claimed dynamically from a shared
// atomic counter, so the *schedule* is nondeterministic — callers must
// ensure fn(i) and fn(j) touch disjoint state (the BSP runtime guarantees
// this by giving every rank its own clock slot, busy slot, and staging
// buffer; see DESIGN.md §2c). The first exception thrown by any index is
// captured and rethrown on the calling thread after the batch drains.
//
// Dispatch rules for the two-level execution model (DESIGN.md §2d):
//  * Concurrent external callers are legal: batches are serialized on an
//    internal mutex, so several superstep rank bodies may share one kernel
//    pool — their batches simply run one after another.
//  * Nested calls (parallel_for from inside an fn running on this pool)
//    degrade to inline serial execution instead of deadlocking on the
//    batch mutex.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsmcpic::support {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining lane).
  /// `threads <= 0` means one lane per hardware thread.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n) and blocks until all complete.
  /// Callable from multiple threads (batches serialize); a nested call from
  /// inside fn on the same pool runs its indices inline on that thread.
  void parallel_for(int n, const std::function<void(int)>& fn);

 private:
  void worker_loop();
  void drain(const std::function<void(int)>& fn, int n);
  void record_error();

  std::vector<std::thread> workers_;

  std::mutex batch_mu_;  // serializes whole batches from external callers
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* task_ = nullptr;  // valid while batch runs
  int ntasks_ = 0;
  int next_ = 0;           // next unclaimed index (guarded by mu_)
  int active_ = 0;         // workers still inside the current batch
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;  // first exception of the current batch
};

}  // namespace dsmcpic::support
