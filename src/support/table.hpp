#pragma once
// Aligned plain-text table printer. The bench binaries use it to emit the
// same row/column layout as the paper's tables and figure series.

#include <iosfwd>
#include <string>
#include <vector>

namespace dsmcpic {

class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row; resets nothing else.
  Table& header(std::vector<std::string> cells);

  /// Appends a data row. Rows may have fewer cells than the header.
  Table& row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);
  /// Scientific notation, e.g. 9.94e+10.
  static std::string sci(double v, int precision = 2);
  /// Percentage with sign, e.g. "+37.3%".
  static std::string pct(double fraction, int precision = 1);

  /// Renders the table with column alignment.
  std::string str() const;
  void print(std::ostream& os) const;
  void print() const;  // to stdout

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsmcpic
