#include "support/thread_pool.hpp"

#include <algorithm>

namespace dsmcpic::support {

namespace {
// Pool this thread is currently draining tasks for, if any. Lets a nested
// parallel_for on the same pool fall back to inline execution instead of
// deadlocking on batch_mu_.
thread_local const ThreadPool* g_draining_pool = nullptr;

struct DrainScope {
  const ThreadPool* prev;
  explicit DrainScope(const ThreadPool* p) : prev(g_draining_pool) {
    g_draining_pool = p;
  }
  ~DrainScope() { g_draining_pool = prev; }
};
}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 0; t < threads - 1; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::record_error() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!error_) error_ = std::current_exception();
}

void ThreadPool::drain(const std::function<void(int)>& fn, int n) {
  DrainScope scope(this);
  for (;;) {
    int i;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_ >= n) return;
      i = next_++;
    }
    try {
      fn(i);
    } catch (...) {
      record_error();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn;
    int n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = task_;
      n = ntasks_;
    }
    drain(*fn, n);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1 || g_draining_pool == this) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> batch(batch_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &fn;
    ntasks_ = n;
    next_ = 0;
    active_ = static_cast<int>(workers_.size());
    error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();
  drain(fn, n);
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return active_ == 0; });
    task_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace dsmcpic::support
