#pragma once
// Intra-rank kernel executor: chunks an index range [0, n) across a small
// dedicated ThreadPool (the `--kernel-threads` knob, DESIGN.md §2d).
//
// This is the second level of the two-level execution model. The first
// level (par::Runtime's ExecMode) parallelizes across virtual ranks; this
// level parallelizes *inside* one rank's kernel call — over particles in
// move/deposit, over owned cells in collide/react. The two compose: rank
// bodies running concurrently on the runtime pool may all call into one
// shared KernelExec, whose batches then serialize on the kernel pool
// (see ThreadPool's dispatch rules).
//
// Determinism contract: callers must arrange that results are invariant
// under the chunk count (per-chunk accumulators reduced in chunk order,
// RNG streams keyed by particle/cell id, appends buffered per chunk and
// merged in chunk order). Chunk boundaries are pure arithmetic on (n,
// num_chunks) — no allocation, no scheduling dependence — so for_chunks
// adds no per-call state.

#include <cstdint>
#include <functional>
#include <memory>

#include "support/thread_pool.hpp"

namespace dsmcpic::support {

class KernelExec {
 public:
  /// threads <= 1 means serial (no pool is created; for_chunks runs one
  /// chunk inline). threads > 1 spawns a dedicated pool of that many lanes.
  explicit KernelExec(int threads = 1);

  int threads() const { return threads_; }
  bool serial() const { return threads_ <= 1; }

  /// Number of chunks a range of n items is split into. 1 when serial or
  /// when the range is tiny; otherwise a few chunks per lane (capped) so
  /// dynamic index claiming can even out per-chunk cost imbalance.
  int num_chunks(std::int64_t n) const;

  /// Runs fn(chunk, begin, end) for each chunk covering [0, n). Chunks are
  /// half-open, contiguous, ascending, and their union is exactly [0, n).
  /// Serial executors run the single chunk inline on the calling thread.
  void for_chunks(std::int64_t n,
                  const std::function<void(int, std::int64_t, std::int64_t)>&
                      fn) const;

  /// Runs fn(task) for each task in [0, ntasks) — the fixed-task-count
  /// companion to for_chunks for callers that plan their own partition
  /// (cost-balanced collide chunks, the deposit's fixed reduction blocks).
  /// The task count is the caller's: it must NOT depend on the thread
  /// count when the caller's determinism contract requires a schedule
  /// that is invariant across kernel-thread settings. Serial executors
  /// run every task inline, in ascending order, on the calling thread.
  void for_tasks(int ntasks, const std::function<void(int)>& fn) const;

  /// Chunk boundary arithmetic, exposed so tests can assert coverage.
  static std::int64_t chunk_begin(std::int64_t n, int num_chunks, int chunk) {
    return n * chunk / num_chunks;
  }

 private:
  int threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // null when serial
};

}  // namespace dsmcpic::support
