#pragma once
// Small descriptive-statistics helpers used by validation benches
// (mean relative error, relative standard deviation) and tests.

#include <cmath>
#include <cstddef>
#include <span>

#include "support/error.hpp"

namespace dsmcpic {

inline double sum(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

inline double mean(std::span<const double> v) {
  DSMCPIC_CHECK(!v.empty());
  return sum(v) / static_cast<double>(v.size());
}

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
inline double stddev(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

/// Relative standard deviation (coefficient of variation); the paper reports
/// RSD < 5% across repeated runs.
inline double relative_stddev(std::span<const double> v) {
  const double m = mean(v);
  DSMCPIC_CHECK(m != 0.0);
  return stddev(v) / std::abs(m);
}

/// Mean of |a_i - b_i| / max(|b_i|, floor); the paper's "mean relative
/// error" of number density along the axis uses the serial run as reference.
inline double mean_relative_error(std::span<const double> a,
                                  std::span<const double> b,
                                  double floor = 1e-300) {
  DSMCPIC_CHECK(a.size() == b.size() && !a.empty());
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ref = std::abs(b[i]);
    if (ref < floor) continue;  // paper: error diverges where density ~ 0
    acc += std::abs(a[i] - b[i]) / ref;
    ++counted;
  }
  return counted ? acc / static_cast<double>(counted) : 0.0;
}

inline double max_of(std::span<const double> v) {
  DSMCPIC_CHECK(!v.empty());
  double m = v[0];
  for (double x : v) m = std::max(m, x);
  return m;
}

inline double min_of(std::span<const double> v) {
  DSMCPIC_CHECK(!v.empty());
  double m = v[0];
  for (double x : v) m = std::min(m, x);
  return m;
}

}  // namespace dsmcpic
