#pragma once
// Error handling primitives shared by every dsmcpic module.
//
// DSMCPIC_CHECK is used for conditions that indicate a programming error or
// a violated invariant; it throws dsmcpic::Error with file/line context so
// tests can assert on failures instead of aborting the process.

#include <sstream>
#include <stdexcept>
#include <string>

namespace dsmcpic {

/// Exception type thrown by all dsmcpic invariant checks.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace dsmcpic

/// Throws dsmcpic::Error when `cond` is false. Usable in constant evaluation
/// contexts is not required; this is a runtime invariant check.
#define DSMCPIC_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::dsmcpic::detail::throw_check_failure(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Same as DSMCPIC_CHECK but with a streamed message, e.g.
///   DSMCPIC_CHECK_MSG(i < n, "index " << i << " out of range " << n);
#define DSMCPIC_CHECK_MSG(cond, msg_expr)                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream os_;                                               \
      os_ << msg_expr;                                                      \
      ::dsmcpic::detail::throw_check_failure(#cond, __FILE__, __LINE__,     \
                                             os_.str());                    \
    }                                                                       \
  } while (0)
