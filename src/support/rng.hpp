#pragma once
// Deterministic, stream-splittable random number generation.
//
// The coupled solver needs reproducible physics independent of the number of
// virtual ranks: the same particle must see the same random sequence whether
// it lives on rank 0 of 4 or rank 900 of 1536. We therefore use counter-free
// xoshiro256** generators seeded through splitmix64, and give every logical
// consumer (cell, injector, species) its own stream derived from a base seed
// plus a stable stream id.

#include <cstdint>
#include <cmath>

namespace dsmcpic {

/// splitmix64: used to expand a user seed into xoshiro state and to derive
/// independent stream seeds from (seed, stream_id) pairs.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  /// Seeds the generator. `stream` selects an independent substream so that
  /// per-cell / per-rank generators do not overlap.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0) {
    reseed(seed, stream);
  }

  void reseed(std::uint64_t seed, std::uint64_t stream = 0) {
    std::uint64_t sm = seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x1ULL);
    for (auto& s : s_) s = splitmix64(sm);
    has_gauss_ = false;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in (0, 1]; safe as argument to log().
  double uniform_pos() {
    return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // bias is < 2^-64 * n which is negligible for simulation sampling.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double normal() {
    if (has_gauss_) {
      has_gauss_ = false;
      return gauss_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    gauss_ = v * f;
    has_gauss_ = true;
    return u * f;
  }

  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Exponential with unit rate.
  double exponential() { return -std::log(uniform_pos()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double gauss_ = 0.0;
  bool has_gauss_ = false;
};

/// Derives a stable substream seed for (base_seed, id) — used to give each
/// grid cell / injector its own generator independent of decomposition.
inline std::uint64_t derive_stream_seed(std::uint64_t base_seed,
                                        std::uint64_t id) {
  std::uint64_t s = base_seed + 0x632be59bd9b4e019ULL * (id + 1);
  return splitmix64(s);
}

}  // namespace dsmcpic
