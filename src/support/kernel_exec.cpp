#include "support/kernel_exec.hpp"

#include <algorithm>

namespace dsmcpic::support {

namespace {
// A few chunks per lane lets the pool's dynamic index claiming absorb
// per-chunk cost imbalance; the cap bounds caller-side per-chunk scratch
// (stack arrays of MoveStats etc.) at a fixed small size.
constexpr int kChunksPerLane = 4;
constexpr int kMaxChunks = 64;
}  // namespace

KernelExec::KernelExec(int threads) : threads_(std::max(threads, 1)) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

int KernelExec::num_chunks(std::int64_t n) const {
  if (serial() || n <= 1) return 1;
  const std::int64_t want =
      std::min<std::int64_t>(static_cast<std::int64_t>(threads_) * kChunksPerLane, kMaxChunks);
  return static_cast<int>(std::min(n, want));
}

void KernelExec::for_tasks(int ntasks, const std::function<void(int)>& fn) const {
  if (ntasks <= 0) return;
  if (serial() || ntasks == 1) {
    for (int t = 0; t < ntasks; ++t) fn(t);
    return;
  }
  pool_->parallel_for(ntasks, fn);
}

void KernelExec::for_chunks(
    std::int64_t n,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn) const {
  if (n <= 0) return;
  const int nc = num_chunks(n);
  if (nc == 1) {
    fn(0, 0, n);
    return;
  }
  pool_->parallel_for(nc, [&](int c) {
    fn(c, chunk_begin(n, nc, c), chunk_begin(n, nc, c + 1));
  });
}

}  // namespace dsmcpic::support
