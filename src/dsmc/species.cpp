#include "dsmc/species.hpp"

namespace dsmcpic::dsmc {

SpeciesTable SpeciesTable::hydrogen(double fnum_h, double fnum_hplus) {
  SpeciesTable t;
  Species h;
  h.name = "H";
  h.mass = constants::kHydrogenMass;
  h.charge = 0.0;
  h.diameter = 2.92e-10;  // VHS diameter for atomic hydrogen
  h.omega = 0.75;
  h.t_ref = 273.0;
  h.fnum = fnum_h;
  const std::int32_t id_h = t.add(h);
  DSMCPIC_CHECK(id_h == kSpeciesH);

  Species hp;
  hp.name = "H+";
  hp.mass = constants::kHydrogenMass;  // electron mass difference negligible
  hp.charge = constants::kElementaryCharge;
  hp.diameter = 2.92e-10;
  hp.omega = 0.75;
  hp.t_ref = 273.0;
  hp.fnum = fnum_hplus;
  const std::int32_t id_hp = t.add(hp);
  DSMCPIC_CHECK(id_hp == kSpeciesHPlus);
  return t;
}

std::int32_t SpeciesTable::add(Species s) {
  list_.push_back(std::move(s));
  return static_cast<std::int32_t>(list_.size() - 1);
}

}  // namespace dsmcpic::dsmc
