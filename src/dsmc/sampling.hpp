#pragma once
// Flow-field sampling: per-cell number density / velocity / temperature
// moments, and the central-axis density profile used by the paper's
// validation experiment (Fig. 8/9).

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "dsmc/particles.hpp"
#include "dsmc/species.hpp"
#include "mesh/tetmesh.hpp"

namespace dsmcpic::dsmc {

/// Accumulates per-cell, per-species moments across timesteps.
class CellSampler {
 public:
  CellSampler(const mesh::TetMesh& grid, const SpeciesTable& table);

  /// Accumulates one snapshot of a single store (serial use).
  void sample(const ParticleStore& store);

  /// Multi-store snapshot: one time sample spread over per-rank stores.
  /// begin_snapshot() advances the sample counter once; accumulate() adds a
  /// store's particles without advancing it.
  void begin_snapshot() { ++samples_; }
  void accumulate(const ParticleStore& store);

  void reset();
  std::int64_t num_samples() const { return samples_; }

  /// Time-averaged number density [1/m^3] of a species per cell.
  std::vector<double> number_density(std::int32_t species) const;

  /// Time-averaged mean velocity per cell (zero where no particles seen).
  std::vector<Vec3> mean_velocity(std::int32_t species) const;

  /// Time-averaged translational temperature [K] per cell.
  std::vector<double> temperature(std::int32_t species) const;

  /// Merges another sampler's accumulators (for combining rank-local
  /// samplers); both must be built over the same grid/species.
  void merge(const CellSampler& other);

  /// Binary checkpoint of the accumulators.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  const mesh::TetMesh* grid_;
  const SpeciesTable* table_;
  std::int64_t samples_ = 0;
  // [species][cell]
  std::vector<std::vector<double>> count_;
  std::vector<std::vector<Vec3>> vel_sum_;
  std::vector<std::vector<double>> vel2_sum_;
};

/// Samples a per-cell field along the cylinder axis (0,0,z), z in
/// [0, length]: returns `npoints` values; points outside the mesh get 0.
std::vector<double> axis_profile(const mesh::TetMesh& grid,
                                 std::span<const double> cell_field,
                                 double length, int npoints);

/// Axisymmetric (r, z) map of a per-cell field: volume-weighted average of
/// the field over the cells whose centroids fall in each (r, z) bin —
/// the quantity behind the paper's Fig. 8 number-density contours.
/// Returns row-major [iz * nr + ir]; empty bins get 0.
std::vector<double> rz_map(const mesh::TetMesh& grid,
                           std::span<const double> cell_field, double radius,
                           double length, int nr, int nz);

}  // namespace dsmcpic::dsmc
