#include "dsmc/chemistry.hpp"

#include <array>
#include <cmath>

namespace dsmcpic::dsmc {

bool Chemistry::try_ionization(Rng& rng, const ParticleStore& store,
                               std::size_t i, std::size_t j, double e_rel,
                               ChemistryStats& stats,
                               std::vector<ParticleRecord>& spawned) {
  if (!cfg_.enabled) return false;
  const auto species = store.species();
  if (species[i] != kSpeciesH || species[j] != kSpeciesH) return false;
  if (e_rel <= cfg_.ionization_threshold) return false;
  if (rng.uniform() >= cfg_.ionization_probability) return false;

  // Spawn one H+ super-particle at collider i's location. Its velocity is
  // collider i's velocity with an isotropic thermal-scale perturbation (the
  // freed electron carries away the threshold energy; we do not track it).
  // The record is buffered rather than appended, so cell chunks running
  // concurrently never grow the store mid-sweep.
  ParticleRecord ion;
  ion.position = store.position(i);
  ion.velocity = store.velocity(i);
  ion.species = kSpeciesHPlus;
  ion.cell = store.cells()[i];
  // Random id: ids only need uniqueness until the next Reindex renumbering.
  ion.id = static_cast<std::int64_t>(rng.next_u64() >> 1);
  spawned.push_back(ion);
  ++stats.ionizations;
  return true;
}

bool Chemistry::try_charge_exchange(Rng& rng, ParticleStore& store,
                                    std::size_t i, std::size_t j,
                                    ChemistryStats& stats) {
  if (!cfg_.enabled) return false;
  auto species = store.species();
  // Order the pair as (ion, neutral).
  std::size_t ion = i, neutral = j;
  if (species[ion] != kSpeciesHPlus) std::swap(ion, neutral);
  if (species[ion] != kSpeciesHPlus || species[neutral] != kSpeciesH)
    return false;
  if (rng.uniform() >= cfg_.cex_probability) return false;

  // Electron hop: the ion super-particle now represents the (slow) ions
  // created from the neutral population, so it adopts the neutral's
  // velocity. The neutral super-particle is left unchanged — the fast
  // neutrals created are a negligible fraction of its (much larger) weight.
  store.set_velocity(ion, store.velocity(neutral));
  ++stats.charge_exchanges;
  return true;
}

ChemistryStats Chemistry::recombine(ParticleStore& store, const CellIndex& index,
                                    std::span<const std::int32_t> my_cells,
                                    const mesh::TetMesh& grid, double dt,
                                    int step, std::span<std::uint8_t> removed,
                                    const support::KernelExec* exec) {
  ChemistryStats stats;
  if (!cfg_.enabled) return stats;
  const Species& ion = (*table_)[kSpeciesHPlus];
  const Species& neutral = (*table_)[kSpeciesH];
  const double weight_ratio = ion.fnum / neutral.fnum;  // << 1 typically

  auto species = store.species();
  const auto recombine_range = [&](std::int64_t begin, std::int64_t end,
                                   ChemistryStats& out) {
    for (std::int64_t ci = begin; ci < end; ++ci) {
      const std::int32_t cell = my_cells[ci];
      const auto parts = index.particles_in(cell);
      // Electron density from quasi-neutrality: n_e = n_ion.
      std::int64_t n_ion_sim = 0;
      for (std::int32_t p : parts)
        if (species[p] == kSpeciesHPlus && !removed[p]) ++n_ion_sim;
      if (n_ion_sim == 0) continue;
      const double n_e =
          static_cast<double>(n_ion_sim) * ion.fnum / grid.volume(cell);
      const double p_rec = 1.0 - std::exp(-cfg_.recombination_rate * n_e * dt);
      if (p_rec <= 0.0) continue;

      Rng rng(derive_stream_seed(cfg_.seed, static_cast<std::uint64_t>(cell)),
              static_cast<std::uint64_t>(step));
      for (std::int32_t p : parts) {
        if (species[p] != kSpeciesHPlus || removed[p]) continue;
        if (rng.uniform() >= p_rec) continue;
        ++out.recombinations;
        if (rng.uniform() < weight_ratio) {
          species[p] = kSpeciesH;  // weight lottery won: becomes a neutral
        } else {
          removed[p] = 1;  // absorbed into the (much heavier) H population
        }
      }
    }
  };
  const std::int64_t n = static_cast<std::int64_t>(my_cells.size());
  if (!exec || exec->serial()) {
    recombine_range(0, n, stats);
    return stats;
  }
  std::array<ChemistryStats, 64> chunk_stats{};
  exec->for_chunks(n, [&](int c, std::int64_t begin, std::int64_t end) {
    recombine_range(begin, end, chunk_stats[c]);
  });
  for (int c = 0; c < exec->num_chunks(n); ++c) {
    stats.ionizations += chunk_stats[c].ionizations;
    stats.recombinations += chunk_stats[c].recombinations;
    stats.charge_exchanges += chunk_stats[c].charge_exchanges;
  }
  return stats;
}

}  // namespace dsmcpic::dsmc
