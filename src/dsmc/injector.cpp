#include "dsmc/injector.hpp"

#include "support/serialize.hpp"

#include <cmath>

#include "dsmc/maxwell.hpp"

namespace dsmcpic::dsmc {

double InjectionSpec::inflow_modulation(int step) const {
  if (pulse_amplitude == 0.0 || pulse_period <= 0) return 1.0;
  const double s =
      1.0 + pulse_amplitude * std::sin(2.0 * M_PI * step / pulse_period);
  return s > 0.0 ? s : 0.0;
}

MaxwellianInjector::MaxwellianInjector(const mesh::TetMesh& grid,
                                       mesh::BoundaryKind kind,
                                       InjectionSpec spec, std::uint64_t seed)
    : grid_(&grid), spec_(spec), seed_(seed), faces_(grid.boundary_faces(kind)) {
  DSMCPIC_CHECK_MSG(!faces_.empty(), "no boundary faces of requested kind");
  area_.reserve(faces_.size());
  inward_.reserve(faces_.size());
  for (const auto& bf : faces_) {
    area_.push_back(grid.face_area(bf.tet, bf.face));
    inward_.push_back(-grid.face_normal(bf.tet, bf.face));  // into the domain
  }
  remainder_.assign(faces_.size(), 0.0);
  seq_.assign(faces_.size(), 0);
}

double MaxwellianInjector::expected_per_step(const SpeciesTable& table,
                                             double dt) const {
  const Species& sp = table[spec_.species];
  const double flux = spec_.number_density *
                      maxwellian_flux_factor(spec_.drift_speed,
                                             spec_.temperature, sp.mass);
  double total_area = 0.0;
  for (double a : area_) total_area += a;
  return flux * total_area * dt / sp.fnum;
}

std::int64_t MaxwellianInjector::inject(ParticleStore& store,
                                        const SpeciesTable& table, double dt,
                                        int step,
                                        std::span<const std::int32_t> cell_owner,
                                        int my_rank) {
  return inject_filtered(store, table, dt, step, [&](std::size_t f) {
    return cell_owner[faces_[f].tet] == my_rank;
  });
}

void MaxwellianInjector::begin_step(const SpeciesTable& table, double dt,
                                    int step) {
  const Species& sp = table[spec_.species];
  double flux_per_area =
      spec_.number_density *
      maxwellian_flux_factor(spec_.drift_speed, spec_.temperature, sp.mass) /
      sp.fnum;
  const double mod = spec_.inflow_modulation(step);
  if (mod != 1.0) flux_per_area *= mod;
  step_count_.resize(faces_.size());
  step_seq_base_.resize(faces_.size());
  for (std::size_t f = 0; f < faces_.size(); ++f) {
    const double expected = flux_per_area * area_[f] * dt + remainder_[f];
    const auto count =
        std::max<std::int64_t>(0, static_cast<std::int64_t>(std::floor(expected)));
    remainder_[f] = expected - static_cast<double>(count);
    step_count_[f] = count;
    step_seq_base_[f] = seq_[f];
    seq_[f] += count;
  }
  prepared_step_ = step;
}

std::int64_t MaxwellianInjector::inject_shard(ParticleStore& store,
                                              const SpeciesTable& table,
                                              int shard, int nshards) {
  DSMCPIC_CHECK_MSG(prepared_step_ >= 0, "begin_step() not called");
  DSMCPIC_CHECK(shard >= 0 && shard < nshards);
  const Species& sp = table[spec_.species];
  const double sigma =
      std::sqrt(constants::kBoltzmann * spec_.temperature / sp.mass);

  std::int64_t injected = 0;
  for (std::size_t f = 0; f < faces_.size(); ++f) {
    const std::int64_t count = step_count_[f];
    // Rotate the shard assignment per face so the 1-2 leftover particles of
    // each face land on different ranks (otherwise low rank ids collect one
    // particle from every face and become the Inject stragglers at high
    // rank counts).
    const int rot = static_cast<int>(
        (static_cast<std::uint64_t>(shard) + f * 7919u) %
        static_cast<std::uint64_t>(nshards));
    const std::int64_t lo = rot * count / nshards;
    const std::int64_t hi = (rot + 1) * count / nshards;
    if (lo >= hi) continue;

    const auto& bf = faces_[f];
    const auto fn = grid_->face_nodes(bf.tet, bf.face);
    const Vec3& a = grid_->node(fn[0]);
    const Vec3& b = grid_->node(fn[1]);
    const Vec3& c = grid_->node(fn[2]);
    const Vec3& n_in = inward_[f];
    Vec3 t1, t2;
    tangent_frame(n_in, t1, t2);
    const std::uint64_t face_seed = derive_stream_seed(seed_, f);

    for (std::int64_t k = lo; k < hi; ++k) {
      // Per-particle substream: identical regardless of the shard count.
      Rng rng(face_seed,
              (static_cast<std::uint64_t>(prepared_step_) << 32) ^
                  static_cast<std::uint64_t>(k));
      const double r1 = std::sqrt(rng.uniform());
      const double r2 = rng.uniform();
      const Vec3 pos = a * (1.0 - r1) + b * (r1 * (1.0 - r2)) + c * (r1 * r2);
      const double vn = sample_inflow_normal_speed(
          rng, spec_.drift_speed, spec_.temperature, sp.mass);
      ParticleRecord p;
      p.position = pos + n_in * 1e-12;
      p.velocity =
          n_in * vn + t1 * rng.normal(0.0, sigma) + t2 * rng.normal(0.0, sigma);
      p.species = spec_.species;
      p.cell = bf.tet;
      p.id = (static_cast<std::int64_t>(f + 1) << 32) | (step_seq_base_[f] + k);
      store.add(p);
      ++injected;
    }
  }
  return injected;
}

template <typename FaceFilter>
std::int64_t MaxwellianInjector::inject_filtered(ParticleStore& store,
                                                 const SpeciesTable& table,
                                                 double dt, int step,
                                                 const FaceFilter& mine) {
  const Species& sp = table[spec_.species];
  double flux_per_area =
      spec_.number_density *
      maxwellian_flux_factor(spec_.drift_speed, spec_.temperature, sp.mass) /
      sp.fnum;
  const double mod = spec_.inflow_modulation(step);
  if (mod != 1.0) flux_per_area *= mod;

  std::int64_t injected = 0;
  for (std::size_t f = 0; f < faces_.size(); ++f) {
    const auto& bf = faces_[f];
    if (!mine(f)) continue;

    const double expected = flux_per_area * area_[f] * dt + remainder_[f];
    const auto count = static_cast<std::int64_t>(std::floor(expected));
    remainder_[f] = expected - static_cast<double>(count);
    if (count <= 0) continue;

    // Per-(face, step) stream: deterministic regardless of decomposition.
    Rng rng(derive_stream_seed(seed_, f), static_cast<std::uint64_t>(step));
    const auto fn = grid_->face_nodes(bf.tet, bf.face);
    const Vec3& a = grid_->node(fn[0]);
    const Vec3& b = grid_->node(fn[1]);
    const Vec3& c = grid_->node(fn[2]);
    const Vec3& n_in = inward_[f];
    Vec3 t1, t2;
    tangent_frame(n_in, t1, t2);
    const double sigma =
        std::sqrt(constants::kBoltzmann * spec_.temperature / sp.mass);

    for (std::int64_t k = 0; k < count; ++k) {
      // Uniform point on the triangle.
      const double r1 = std::sqrt(rng.uniform());
      const double r2 = rng.uniform();
      const Vec3 pos = a * (1.0 - r1) + b * (r1 * (1.0 - r2)) + c * (r1 * r2);

      const double vn = sample_inflow_normal_speed(
          rng, spec_.drift_speed, spec_.temperature, sp.mass);
      const Vec3 vel =
          n_in * vn + t1 * rng.normal(0.0, sigma) + t2 * rng.normal(0.0, sigma);

      ParticleRecord p;
      // Nudge off the face so the mover starts strictly inside the tet.
      p.position = pos + n_in * 1e-12;
      p.velocity = vel;
      p.species = spec_.species;
      p.cell = bf.tet;
      p.id = (static_cast<std::int64_t>(f + 1) << 32) | seq_[f]++;
      store.add(p);
      ++injected;
    }
  }
  return injected;
}

void MaxwellianInjector::save(std::ostream& os) const {
  io::write_vec(os, remainder_);
  io::write_vec(os, seq_);
}

void MaxwellianInjector::load(std::istream& is) {
  remainder_ = io::read_vec<double>(is);
  seq_ = io::read_vec<std::int64_t>(is);
  DSMCPIC_CHECK_MSG(remainder_.size() == faces_.size() &&
                        seq_.size() == faces_.size(),
                    "checkpoint inlet-face count mismatch");
  prepared_step_ = -1;
}

}  // namespace dsmcpic::dsmc
