#pragma once
// Maxwellian velocity sampling for injection and diffuse wall reflection.

#include <cmath>

#include "dsmc/species.hpp"
#include "support/rng.hpp"
#include "support/vec3.hpp"

namespace dsmcpic::dsmc {

/// Most probable thermal speed sqrt(2 k T / m).
inline double thermal_speed(double temperature, double mass) {
  return std::sqrt(2.0 * constants::kBoltzmann * temperature / mass);
}

/// Samples an isotropic Maxwellian velocity at temperature T.
inline Vec3 sample_maxwellian(Rng& rng, double temperature, double mass) {
  const double sigma = std::sqrt(constants::kBoltzmann * temperature / mass);
  return {rng.normal(0.0, sigma), rng.normal(0.0, sigma),
          rng.normal(0.0, sigma)};
}

/// Mean flux of a drifting Maxwellian through a surface (number per area per
/// time, per unit density): F/n = vth/(2√π) [exp(-s²) + √π s (1 + erf(s))]
/// with speed ratio s = drift/vth. Used to compute injection counts.
inline double maxwellian_flux_factor(double drift, double temperature,
                                     double mass) {
  const double vth = thermal_speed(temperature, mass);
  const double s = drift / vth;
  return vth / (2.0 * std::sqrt(M_PI)) *
         (std::exp(-s * s) + std::sqrt(M_PI) * s * (1.0 + std::erf(s)));
}

/// Samples the inward normal velocity component of particles crossing a
/// surface from a drifting Maxwellian (flux-weighted distribution), by
/// acceptance-rejection (Bird 1994, App. C). Returns a positive speed along
/// the inward normal.
inline double sample_inflow_normal_speed(Rng& rng, double drift,
                                         double temperature, double mass) {
  const double vth = thermal_speed(temperature, mass);
  const double s = drift / vth;
  // Envelope: shifted Maxwellian times v, accepted against the flux kernel.
  // Peak of v*exp(-(v-s)^2) at v* = (s + sqrt(s^2+2))/2 (normalized units).
  const double vstar = 0.5 * (s + std::sqrt(s * s + 2.0));
  const double peak = vstar * std::exp(-(vstar - s) * (vstar - s));
  for (;;) {
    // Propose uniformly over (0, s+4] in normalized units (beyond s+4 the
    // kernel is negligible).
    const double v = rng.uniform_pos() * (s + 4.0);
    const double f = v * std::exp(-(v - s) * (v - s));
    if (rng.uniform() * peak <= f) return v * vth;
  }
}

/// Builds an orthonormal frame (t1, t2) perpendicular to unit vector n.
inline void tangent_frame(const Vec3& n, Vec3& t1, Vec3& t2) {
  const Vec3 a = std::abs(n.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  t1 = cross(n, a).normalized();
  t2 = cross(n, t1);
}

/// Diffuse reflection: full thermal accommodation at wall temperature; the
/// outgoing normal component is flux-weighted (v·exp(-v²) kernel).
inline Vec3 sample_diffuse_reflection(Rng& rng, const Vec3& inward_normal,
                                      double wall_temperature, double mass) {
  const double sigma =
      std::sqrt(constants::kBoltzmann * wall_temperature / mass);
  const double vth = thermal_speed(wall_temperature, mass);
  // Normal component from the zero-drift flux distribution: v = vth√(-ln U).
  const double vn = vth * std::sqrt(-std::log(rng.uniform_pos()));
  Vec3 t1, t2;
  tangent_frame(inward_normal, t1, t2);
  return inward_normal * vn + t1 * rng.normal(0.0, sigma) +
         t2 * rng.normal(0.0, sigma);
}

}  // namespace dsmcpic::dsmc
