#include "dsmc/sampling.hpp"

#include "support/serialize.hpp"

#include <cmath>

namespace dsmcpic::dsmc {

CellSampler::CellSampler(const mesh::TetMesh& grid, const SpeciesTable& table)
    : grid_(&grid), table_(&table) {
  const auto ns = static_cast<std::size_t>(table.size());
  const auto nc = static_cast<std::size_t>(grid.num_tets());
  count_.assign(ns, std::vector<double>(nc, 0.0));
  vel_sum_.assign(ns, std::vector<Vec3>(nc));
  vel2_sum_.assign(ns, std::vector<double>(nc, 0.0));
}

void CellSampler::sample(const ParticleStore& store) {
  begin_snapshot();
  accumulate(store);
}

void CellSampler::accumulate(const ParticleStore& store) {
  const auto cells = store.cells();
  const auto species = store.species();
  const auto vx = store.vx(), vy = store.vy(), vz = store.vz();
  for (std::size_t i = 0; i < store.size(); ++i) {
    const auto s = static_cast<std::size_t>(species[i]);
    const auto c = static_cast<std::size_t>(cells[i]);
    const Vec3 v{vx[i], vy[i], vz[i]};
    count_[s][c] += 1.0;
    vel_sum_[s][c] += v;
    vel2_sum_[s][c] += v.norm2();
  }
}

void CellSampler::reset() {
  samples_ = 0;
  for (auto& v : count_) std::fill(v.begin(), v.end(), 0.0);
  for (auto& v : vel_sum_) std::fill(v.begin(), v.end(), Vec3{});
  for (auto& v : vel2_sum_) std::fill(v.begin(), v.end(), 0.0);
}

std::vector<double> CellSampler::number_density(std::int32_t species) const {
  const auto s = static_cast<std::size_t>(species);
  const double fnum = (*table_)[species].fnum;
  std::vector<double> out(count_[s].size(), 0.0);
  if (samples_ == 0) return out;
  for (std::size_t c = 0; c < out.size(); ++c)
    out[c] = count_[s][c] * fnum /
             (grid_->volume(static_cast<std::int32_t>(c)) *
              static_cast<double>(samples_));
  return out;
}

std::vector<Vec3> CellSampler::mean_velocity(std::int32_t species) const {
  const auto s = static_cast<std::size_t>(species);
  std::vector<Vec3> out(count_[s].size());
  for (std::size_t c = 0; c < out.size(); ++c)
    if (count_[s][c] > 0.0) out[c] = vel_sum_[s][c] / count_[s][c];
  return out;
}

std::vector<double> CellSampler::temperature(std::int32_t species) const {
  const auto s = static_cast<std::size_t>(species);
  const double mass = (*table_)[species].mass;
  std::vector<double> out(count_[s].size(), 0.0);
  for (std::size_t c = 0; c < out.size(); ++c) {
    const double n = count_[s][c];
    if (n < 2.0) continue;
    const Vec3 vbar = vel_sum_[s][c] / n;
    const double v2bar = vel2_sum_[s][c] / n;
    const double var = std::max(0.0, v2bar - vbar.norm2());
    // 3/2 kB T = 1/2 m <c^2>  (peculiar speed variance over 3 dof)
    out[c] = mass * var / (3.0 * constants::kBoltzmann);
  }
  return out;
}

void CellSampler::merge(const CellSampler& other) {
  DSMCPIC_CHECK(count_.size() == other.count_.size());
  samples_ = std::max(samples_, other.samples_);
  for (std::size_t s = 0; s < count_.size(); ++s) {
    DSMCPIC_CHECK(count_[s].size() == other.count_[s].size());
    for (std::size_t c = 0; c < count_[s].size(); ++c) {
      count_[s][c] += other.count_[s][c];
      vel_sum_[s][c] += other.vel_sum_[s][c];
      vel2_sum_[s][c] += other.vel2_sum_[s][c];
    }
  }
}

void CellSampler::save(std::ostream& os) const {
  io::write_pod(os, samples_);
  io::write_pod<std::uint64_t>(os, count_.size());
  for (std::size_t s = 0; s < count_.size(); ++s) {
    io::write_vec(os, count_[s]);
    io::write_vec(os, vel_sum_[s]);
    io::write_vec(os, vel2_sum_[s]);
  }
}

void CellSampler::load(std::istream& is) {
  samples_ = io::read_pod<std::int64_t>(is);
  const auto ns = io::read_pod<std::uint64_t>(is);
  DSMCPIC_CHECK_MSG(ns == count_.size(),
                    "checkpoint species count mismatch");
  for (std::size_t s = 0; s < count_.size(); ++s) {
    count_[s] = io::read_vec<double>(is);
    vel_sum_[s] = io::read_vec<Vec3>(is);
    vel2_sum_[s] = io::read_vec<double>(is);
    DSMCPIC_CHECK(count_[s].size() ==
                  static_cast<std::size_t>(grid_->num_tets()));
  }
}

std::vector<double> axis_profile(const mesh::TetMesh& grid,
                                 std::span<const double> cell_field,
                                 double length, int npoints) {
  DSMCPIC_CHECK(npoints >= 2);
  DSMCPIC_CHECK(static_cast<std::int32_t>(cell_field.size()) ==
                grid.num_tets());
  std::vector<double> out(npoints, 0.0);
  std::int32_t hint = 0;
  for (int k = 0; k < npoints; ++k) {
    // Keep strictly inside the domain (avoid the exact end planes).
    const double z =
        length * (static_cast<double>(k) + 0.5) / static_cast<double>(npoints);
    const std::int32_t cell = grid.locate({0.0, 0.0, z}, hint);
    if (cell >= 0) {
      out[k] = cell_field[cell];
      hint = cell;
    }
  }
  return out;
}

std::vector<double> rz_map(const mesh::TetMesh& grid,
                           std::span<const double> cell_field, double radius,
                           double length, int nr, int nz) {
  DSMCPIC_CHECK(nr >= 1 && nz >= 1);
  DSMCPIC_CHECK(static_cast<std::int32_t>(cell_field.size()) ==
                grid.num_tets());
  std::vector<double> value(static_cast<std::size_t>(nr) * nz, 0.0);
  std::vector<double> weight(value.size(), 0.0);
  for (std::int32_t t = 0; t < grid.num_tets(); ++t) {
    const Vec3& c = grid.centroid(t);
    const double r = std::hypot(c.x, c.y);
    const int ir = std::min(nr - 1, static_cast<int>(r / radius * nr));
    const int iz = std::min(nz - 1, static_cast<int>(c.z / length * nz));
    if (ir < 0 || iz < 0) continue;
    const std::size_t bin = static_cast<std::size_t>(iz) * nr + ir;
    value[bin] += cell_field[t] * grid.volume(t);
    weight[bin] += grid.volume(t);
  }
  for (std::size_t i = 0; i < value.size(); ++i)
    if (weight[i] > 0.0) value[i] /= weight[i];
  return value;
}

}  // namespace dsmcpic::dsmc
