#pragma once
// Chemical reactions for the hydrogen plume (the paper's Colli_React
// component, Sec. III-B / VI-C: "the dissociation of H and the
// recombination of H+").
//
// Super-particle weight handling: H and H+ have very different scaling
// factors (paper Table I: e.g. 1e12 vs 6000 real particles per simulation
// particle). A whole H super-particle can therefore not convert into H+
// super-particles one-for-one. Reactions are instead *statistically
// weight-conserving*:
//   * ionization   — a qualifying H–H collision spawns ONE new H+ simulation
//     particle (fnum_H+ real ions); the H super-particle survives, its
//     fractional mass loss (fnum_H+/fnum_H) being negligible.
//   * recombination — an H+ simulation particle is removed; with probability
//     fnum_H+/fnum_H it is resurrected as an H simulation particle, so the
//     expected real-atom creation matches the real-ion destruction.

#include <cstdint>
#include <span>
#include <vector>

#include "dsmc/particles.hpp"
#include "dsmc/species.hpp"
#include "mesh/tetmesh.hpp"
#include "support/kernel_exec.hpp"
#include "support/rng.hpp"

namespace dsmcpic::dsmc {

struct ChemistryConfig {
  bool enabled = true;
  /// Relative collision energy above which an H–H collision can ionize [J].
  /// Physically 13.6 eV; experiments use a reduced effective threshold to
  /// exercise the channel at plume speeds (documented in DESIGN.md).
  double ionization_threshold = constants::kIonizationEnergyH;
  /// Ionization probability for qualifying collisions.
  double ionization_probability = 0.5;
  /// Recombination rate coefficient k [m^3/s] for H+ + e- -> H, with the
  /// electron density taken as the local ion density (quasi-neutrality).
  double recombination_rate = 2.6e-19;
  /// Charge-exchange probability for an accepted H+/H collision:
  /// H+ + H -> H + H+ (the CEX channel of ion-thruster plume modelling the
  /// paper cites via SUGAR). The identities swap; for equal masses this is
  /// equivalent to swapping the velocities.
  double cex_probability = 0.5;
  std::uint64_t seed = 0xc43cULL;
};

struct ChemistryStats {
  std::int64_t ionizations = 0;
  std::int64_t recombinations = 0;
  std::int64_t charge_exchanges = 0;
};

class Chemistry {
 public:
  Chemistry(const SpeciesTable& table, ChemistryConfig cfg)
      : table_(&table), cfg_(cfg) {}

  const ChemistryConfig& config() const { return cfg_; }

  /// Called from the NTC accept path for an H–H pair with relative collision
  /// energy `e_rel`. May record a new H+ particle in `spawned` (same cell,
  /// velocity of collider i); the caller appends the buffer to the store
  /// after the cell sweep, so concurrent cell chunks never mutate the store
  /// layout. Returns true when an ionization occurred (the elastic scatter
  /// still proceeds for the pair).
  bool try_ionization(Rng& rng, const ParticleStore& store, std::size_t i,
                      std::size_t j, double e_rel, ChemistryStats& stats,
                      std::vector<ParticleRecord>& spawned);

  /// Called from the NTC accept path for an H+/H pair: with probability
  /// cex_probability the electron hops, swapping the particles' species
  /// (momentum-preserving; replaces the elastic scatter when it fires).
  /// Returns true when the exchange occurred.
  bool try_charge_exchange(Rng& rng, ParticleStore& store, std::size_t i,
                           std::size_t j, ChemistryStats& stats);

  /// Cell-based recombination sweep over the caller's cells: every H+ in a
  /// cell recombines with probability 1 - exp(-k * n_e * dt). Flags removed
  /// ions in `removed`; converts survivors-of-the-weight-lottery to H in
  /// place. Returns stats. With `exec`, the cell list is chunked (cells are
  /// disjoint, RNG keyed (seed, cell, step), int stats summed in chunk
  /// order), so any chunk count gives the serial result.
  ChemistryStats recombine(ParticleStore& store, const CellIndex& index,
                           std::span<const std::int32_t> my_cells,
                           const mesh::TetMesh& grid, double dt, int step,
                           std::span<std::uint8_t> removed,
                           const support::KernelExec* exec = nullptr);

 private:
  const SpeciesTable* table_;
  ChemistryConfig cfg_;
};

}  // namespace dsmcpic::dsmc
