#include "dsmc/particles.hpp"

#include "support/serialize.hpp"

namespace dsmcpic::dsmc {

void ParticleStore::reserve(std::size_t n) {
  position_.reserve(n);
  velocity_.reserve(n);
  id_.reserve(n);
  species_.reserve(n);
  cell_.reserve(n);
}

void ParticleStore::clear() {
  position_.clear();
  velocity_.clear();
  id_.clear();
  species_.clear();
  cell_.clear();
}

std::size_t ParticleStore::add(const ParticleRecord& p) {
  position_.push_back(p.position);
  velocity_.push_back(p.velocity);
  id_.push_back(p.id);
  species_.push_back(p.species);
  cell_.push_back(p.cell);
  return position_.size() - 1;
}

ParticleRecord ParticleStore::record(std::size_t i) const {
  DSMCPIC_CHECK(i < size());
  return {position_[i], velocity_[i], id_[i], species_[i], cell_[i]};
}

void ParticleStore::set_record(std::size_t i, const ParticleRecord& p) {
  DSMCPIC_CHECK(i < size());
  position_[i] = p.position;
  velocity_[i] = p.velocity;
  id_[i] = p.id;
  species_[i] = p.species;
  cell_[i] = p.cell;
}

void ParticleStore::remove_swap(std::size_t i) {
  DSMCPIC_CHECK(i < size());
  const std::size_t last = size() - 1;
  if (i != last) {
    position_[i] = position_[last];
    velocity_[i] = velocity_[last];
    id_[i] = id_[last];
    species_[i] = species_[last];
    cell_[i] = cell_[last];
  }
  position_.pop_back();
  velocity_.pop_back();
  id_.pop_back();
  species_.pop_back();
  cell_.pop_back();
}

std::size_t ParticleStore::remove_flagged(std::span<const std::uint8_t> flags) {
  DSMCPIC_CHECK(flags.size() == size());
  std::size_t out = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    if (flags[i]) continue;
    if (out != i) {
      position_[out] = position_[i];
      velocity_[out] = velocity_[i];
      id_[out] = id_[i];
      species_[out] = species_[i];
      cell_[out] = cell_[i];
    }
    ++out;
  }
  const std::size_t removed = size() - out;
  position_.resize(out);
  velocity_.resize(out);
  id_.resize(out);
  species_.resize(out);
  cell_.resize(out);
  return removed;
}

std::int64_t ParticleStore::count_species(std::int32_t species_id) const {
  std::int64_t n = 0;
  for (std::int32_t s : species_)
    if (s == species_id) ++n;
  return n;
}

void ParticleStore::save(std::ostream& os) const {
  io::write_vec(os, position_);
  io::write_vec(os, velocity_);
  io::write_vec(os, id_);
  io::write_vec(os, species_);
  io::write_vec(os, cell_);
}

void ParticleStore::load(std::istream& is) {
  position_ = io::read_vec<Vec3>(is);
  velocity_ = io::read_vec<Vec3>(is);
  id_ = io::read_vec<std::int64_t>(is);
  species_ = io::read_vec<std::int32_t>(is);
  cell_ = io::read_vec<std::int32_t>(is);
  DSMCPIC_CHECK(velocity_.size() == position_.size());
  DSMCPIC_CHECK(id_.size() == position_.size());
  DSMCPIC_CHECK(species_.size() == position_.size());
  DSMCPIC_CHECK(cell_.size() == position_.size());
}

CellIndex::CellIndex(const ParticleStore& store, std::int32_t num_cells) {
  rebuild(store, num_cells);
}

void CellIndex::rebuild(const ParticleStore& store, std::int32_t num_cells) {
  start_.assign(static_cast<std::size_t>(num_cells) + 1, 0);
  const auto cells = store.cells();
  for (std::int32_t c : cells) {
    DSMCPIC_CHECK_MSG(c >= 0 && c < num_cells, "particle in invalid cell " << c);
    ++start_[static_cast<std::size_t>(c) + 1];
  }
  for (std::int32_t c = 0; c < num_cells; ++c) start_[c + 1] += start_[c];
  items_.resize(store.size());
  cursor_.assign(start_.begin(), start_.end() - 1);
  for (std::size_t i = 0; i < store.size(); ++i)
    items_[static_cast<std::size_t>(cursor_[cells[i]]++)] =
        static_cast<std::int32_t>(i);
}

}  // namespace dsmcpic::dsmc
