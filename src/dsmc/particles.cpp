#include "dsmc/particles.hpp"

#include <algorithm>

#include "support/serialize.hpp"

namespace dsmcpic::dsmc {

void ParticleStore::reserve(std::size_t n) {
  px_.reserve(n);
  py_.reserve(n);
  pz_.reserve(n);
  vx_.reserve(n);
  vy_.reserve(n);
  vz_.reserve(n);
  id_.reserve(n);
  species_.reserve(n);
  cell_.reserve(n);
}

void ParticleStore::clear() {
  px_.clear();
  py_.clear();
  pz_.clear();
  vx_.clear();
  vy_.clear();
  vz_.clear();
  id_.clear();
  species_.clear();
  cell_.clear();
}

std::size_t ParticleStore::add(const ParticleRecord& p) {
  px_.push_back(p.position.x);
  py_.push_back(p.position.y);
  pz_.push_back(p.position.z);
  vx_.push_back(p.velocity.x);
  vy_.push_back(p.velocity.y);
  vz_.push_back(p.velocity.z);
  id_.push_back(p.id);
  species_.push_back(p.species);
  cell_.push_back(p.cell);
  return px_.size() - 1;
}

ParticleRecord ParticleStore::record(std::size_t i) const {
  DSMCPIC_CHECK(i < size());
  return {position(i), velocity(i), id_[i], species_[i], cell_[i]};
}

void ParticleStore::set_record(std::size_t i, const ParticleRecord& p) {
  DSMCPIC_CHECK(i < size());
  set_position(i, p.position);
  set_velocity(i, p.velocity);
  id_[i] = p.id;
  species_[i] = p.species;
  cell_[i] = p.cell;
}

void ParticleStore::remove_swap(std::size_t i) {
  DSMCPIC_CHECK(i < size());
  const std::size_t last = size() - 1;
  if (i != last) {
    px_[i] = px_[last];
    py_[i] = py_[last];
    pz_[i] = pz_[last];
    vx_[i] = vx_[last];
    vy_[i] = vy_[last];
    vz_[i] = vz_[last];
    id_[i] = id_[last];
    species_[i] = species_[last];
    cell_[i] = cell_[last];
  }
  px_.pop_back();
  py_.pop_back();
  pz_.pop_back();
  vx_.pop_back();
  vy_.pop_back();
  vz_.pop_back();
  id_.pop_back();
  species_.pop_back();
  cell_.pop_back();
}

std::size_t ParticleStore::remove_flagged(std::span<const std::uint8_t> flags) {
  DSMCPIC_CHECK(flags.size() == size());
  std::size_t out = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    if (flags[i]) continue;
    if (out != i) {
      px_[out] = px_[i];
      py_[out] = py_[i];
      pz_[out] = pz_[i];
      vx_[out] = vx_[i];
      vy_[out] = vy_[i];
      vz_[out] = vz_[i];
      id_[out] = id_[i];
      species_[out] = species_[i];
      cell_[out] = cell_[i];
    }
    ++out;
  }
  const std::size_t removed = size() - out;
  px_.resize(out);
  py_.resize(out);
  pz_.resize(out);
  vx_.resize(out);
  vy_.resize(out);
  vz_.resize(out);
  id_.resize(out);
  species_.resize(out);
  cell_.resize(out);
  return removed;
}

void ParticleStore::apply_gather(std::span<const std::int32_t> gather,
                                 SortScratch& scratch,
                                 std::span<std::uint8_t> flags) {
  const std::size_t n = size();
  DSMCPIC_CHECK(gather.size() == n);
  DSMCPIC_CHECK(flags.empty() || flags.size() == n);
  for (const std::int32_t g : gather)
    DSMCPIC_CHECK_MSG(g >= 0 && static_cast<std::size_t>(g) < n,
                      "gather index " << g << " out of range");
  // Ping-pong: gather into the scratch buffer, then swap it in; the old
  // storage becomes the scratch for the next component, so steady-state
  // sorts allocate nothing.
  const auto permute = [&gather, n](auto& vec, auto& tmp) {
    tmp.resize(n);
    for (std::size_t k = 0; k < n; ++k)
      tmp[k] = vec[static_cast<std::size_t>(gather[k])];
    vec.swap(tmp);
  };
  permute(px_, scratch.dbl);
  permute(py_, scratch.dbl);
  permute(pz_, scratch.dbl);
  permute(vx_, scratch.dbl);
  permute(vy_, scratch.dbl);
  permute(vz_, scratch.dbl);
  permute(id_, scratch.i64);
  permute(species_, scratch.i32);
  permute(cell_, scratch.i32);
  if (!flags.empty()) {
    scratch.u8.resize(n);
    for (std::size_t k = 0; k < n; ++k)
      scratch.u8[k] = flags[static_cast<std::size_t>(gather[k])];
    for (std::size_t k = 0; k < n; ++k) flags[k] = scratch.u8[k];
  }
}

void ParticleStore::sort_by_cell(std::int32_t num_cells, SortScratch& scratch,
                                 std::span<std::uint8_t> flags) {
  const std::size_t n = size();
  if (n == 0) return;
  // Counting sort by cell, stable within each cell. This is a pure memory-
  // layout operation: traversal semantics are owned by CellIndex, whose
  // per-cell lists are canonicalized by particle id regardless of how the
  // store is arranged.
  scratch.start.assign(static_cast<std::size_t>(num_cells) + 1, 0);
  for (const std::int32_t c : cell_) {
    DSMCPIC_CHECK_MSG(c >= 0 && c < num_cells,
                      "particle in invalid cell " << c);
    ++scratch.start[static_cast<std::size_t>(c) + 1];
  }
  for (std::int32_t c = 0; c < num_cells; ++c)
    scratch.start[static_cast<std::size_t>(c) + 1] +=
        scratch.start[static_cast<std::size_t>(c)];
  scratch.cursor.assign(scratch.start.begin(), scratch.start.end() - 1);
  scratch.gather.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    scratch.gather[static_cast<std::size_t>(scratch.cursor[cell_[i]]++)] =
        static_cast<std::int32_t>(i);
  apply_gather(scratch.gather, scratch, flags);
}

std::int64_t ParticleStore::count_species(std::int32_t species_id) const {
  std::int64_t n = 0;
  for (std::int32_t s : species_)
    if (s == species_id) ++n;
  return n;
}

void ParticleStore::save(std::ostream& os) const {
  io::write_vec(os, px_);
  io::write_vec(os, py_);
  io::write_vec(os, pz_);
  io::write_vec(os, vx_);
  io::write_vec(os, vy_);
  io::write_vec(os, vz_);
  io::write_vec(os, id_);
  io::write_vec(os, species_);
  io::write_vec(os, cell_);
}

void ParticleStore::load(std::istream& is) {
  px_ = io::read_vec<double>(is);
  py_ = io::read_vec<double>(is);
  pz_ = io::read_vec<double>(is);
  vx_ = io::read_vec<double>(is);
  vy_ = io::read_vec<double>(is);
  vz_ = io::read_vec<double>(is);
  id_ = io::read_vec<std::int64_t>(is);
  species_ = io::read_vec<std::int32_t>(is);
  cell_ = io::read_vec<std::int32_t>(is);
  const std::size_t n = px_.size();
  DSMCPIC_CHECK(py_.size() == n && pz_.size() == n);
  DSMCPIC_CHECK(vx_.size() == n && vy_.size() == n && vz_.size() == n);
  DSMCPIC_CHECK(id_.size() == n);
  DSMCPIC_CHECK(species_.size() == n);
  DSMCPIC_CHECK(cell_.size() == n);
}

CellIndex::CellIndex(const ParticleStore& store, std::int32_t num_cells) {
  rebuild(store, num_cells);
}

void CellIndex::rebuild(const ParticleStore& store, std::int32_t num_cells) {
  start_.assign(static_cast<std::size_t>(num_cells) + 1, 0);
  const auto cells = store.cells();
  for (std::int32_t c : cells) {
    DSMCPIC_CHECK_MSG(c >= 0 && c < num_cells, "particle in invalid cell " << c);
    ++start_[static_cast<std::size_t>(c) + 1];
  }
  for (std::int32_t c = 0; c < num_cells; ++c) start_[c + 1] += start_[c];
  items_.resize(store.size());
  cursor_.assign(start_.begin(), start_.end() - 1);
  for (std::size_t i = 0; i < store.size(); ++i)
    items_[static_cast<std::size_t>(cursor_[cells[i]]++)] =
        static_cast<std::int32_t>(i);
  // Canonicalize each cell's list to ascending particle id. Store slots are
  // NOT a reliable within-cell order: a particle whose cell changes without
  // leaving the rank keeps its old slot, so slot order inside the new cell
  // depends on the store's memory layout history (e.g. whether a periodic
  // cell sort ran, DESIGN.md §2g). Ids are layout-independent, so every
  // per-cell consumer — NTC pair selection, chemistry, reindex — sees the
  // same sequence no matter how the store is arranged. The stable tie-break
  // (ids are unique per step; spawn-id collisions are ~2^-63) keeps the
  // result deterministic regardless.
  const auto ids = store.ids();
  for (std::int32_t c = 0; c < num_cells; ++c)
    std::stable_sort(items_.begin() + start_[c], items_.begin() + start_[c + 1],
                     [&ids](std::int32_t a, std::int32_t b) {
                       return ids[a] < ids[b];
                     });
}

}  // namespace dsmcpic::dsmc
