#pragma once
// Binary collisions with Bird's No-Time-Counter (NTC) pair selection and the
// Variable Hard Sphere (VHS) cross-section model (paper Sec. III-B,
// Colli_React; Bird 1994). Reactions are delegated to the Chemistry hook on
// the accept path.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "dsmc/chemistry.hpp"
#include "dsmc/particles.hpp"
#include "dsmc/species.hpp"
#include "mesh/tetmesh.hpp"
#include "support/kernel_exec.hpp"
#include "support/rng.hpp"

namespace dsmcpic::dsmc {

struct CollisionConfig {
  std::uint64_t seed = 0xb5297a4dULL;
  /// Initial per-cell majorant (sigma * c_r)_max [m^3/s]; adapts upward.
  double initial_sigma_cr_max = 1e-15;
};

struct CollisionStats {
  std::int64_t candidates = 0;  // NTC candidate pairs examined
  std::int64_t collisions = 0;  // accepted (elastic or reactive)
  std::int64_t ionizations = 0;
  std::int64_t charge_exchanges = 0;  // CEX events (H+/H identity swaps)
};

/// VHS total cross section for a colliding pair with relative speed c_r.
double vhs_cross_section(const Species& a, const Species& b, double c_r);

/// Reusable per-rank scratch for collide_cells: one spawned-ion buffer per
/// chunk (merged into the store in chunk = cell order after the sweep),
/// plus the per-cell candidate weights and chunk boundaries of the
/// cost-balanced chunk plan. Capacities persist across steps so chunking
/// allocates nothing in steady state.
struct CollideScratch {
  std::vector<std::vector<ParticleRecord>> spawned;
  std::vector<double> weight;        // expected NTC candidates per cell
  std::vector<std::int64_t> bounds;  // chunk boundaries into my_cells
};

class CollisionKernel {
 public:
  CollisionKernel(const mesh::TetMesh& grid, const SpeciesTable& table,
                  CollisionConfig cfg, Chemistry* chemistry = nullptr);

  /// Performs NTC collisions (and reactions) in each cell of `my_cells`.
  /// `index` must be freshly built for `store`. New particles appended by
  /// chemistry are NOT collision partners this step (standard practice).
  /// With `exec`, the cell list is split into contiguous chunks sized by
  /// the measured per-cell expected candidate counts (so one dense cell
  /// block cannot serialize the sweep), and dispatch falls back to a
  /// single inline chunk when the balanced plan cannot cover the thread
  /// pool — small chunk counts lose to pool dispatch overhead outright.
  /// Every per-cell quantity (majorant, carry, RNG stream) is keyed by
  /// cell, so the result is bit-identical to serial for ANY chunk plan.
  /// `scratch` (optional) carries the spawn/plan buffers across steps.
  CollisionStats collide_cells(ParticleStore& store, const CellIndex& index,
                               std::span<const std::int32_t> my_cells,
                               double dt, int step,
                               const support::KernelExec* exec = nullptr,
                               CollideScratch* scratch = nullptr);

  /// Cached-constant VHS sigma for species pair (si, sj): bit-identical to
  /// vhs_cross_section but with the pair-averaged reference values, reduced
  /// mass and Gamma(5/2 - omega) precomputed per pair at construction.
  double vhs_sigma(std::int32_t si, std::int32_t sj, double c_r) const {
    const VhsPair& p = vhs_pairs_[static_cast<std::size_t>(si) * num_species_ +
                                  static_cast<std::size_t>(sj)];
    const double c2 = std::max(c_r * c_r, 1e-30);
    const double ratio = p.two_kb_tref / (p.m_r * c2);
    return p.pi_d2 * std::pow(ratio, p.omega_mhalf) / p.gamma;
  }

  /// Per-cell adaptive majorants (exposed so rebalancing can migrate them
  /// conceptually; they are global per-cell state, not per-rank).
  std::span<const double> sigma_cr_max() const { return sigma_cr_max_; }

  /// Binary checkpoint of the adaptive per-cell state.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  /// Cost-balanced chunk plan: fills scr.bounds with a contiguous partition
  /// of my_cells whose chunks carry roughly equal expected NTC candidate
  /// counts (0.5 n(n-1) fnum_mean majorant dt / V + carry per cell — the
  /// same expression the sweep evaluates, read-only). Returns the chunk
  /// count; 1 means "run serial" (the balanced plan could not produce at
  /// least one chunk per thread, so pool dispatch would only add overhead).
  /// Chunk boundaries never affect results — cells are independent — so
  /// the plan may depend on the thread count freely.
  int plan_chunks(const ParticleStore& store, const CellIndex& index,
                  std::span<const std::int32_t> my_cells, double dt,
                  int threads, CollideScratch& scr) const;

  /// Per-species-pair VHS constants, precomputed so the hot loop avoids
  /// std::tgamma and the pair-parameter averaging per candidate.
  struct VhsPair {
    double pi_d2;        // M_PI * d * d (pair-averaged d)
    double omega_mhalf;  // omega - 0.5
    double two_kb_tref;  // 2 kB * t_ref
    double m_r;          // reduced mass
    double gamma;        // tgamma(2.5 - omega)
  };

  const mesh::TetMesh* grid_;
  const SpeciesTable* table_;
  CollisionConfig cfg_;
  Chemistry* chemistry_;
  std::size_t num_species_ = 0;
  std::vector<VhsPair> vhs_pairs_;  // num_species^2, row-major
  std::vector<double> sigma_cr_max_;  // per cell, persists across steps
  std::vector<double> candidate_carry_;  // fractional NTC candidates per cell
};

}  // namespace dsmcpic::dsmc
