#pragma once
// Binary collisions with Bird's No-Time-Counter (NTC) pair selection and the
// Variable Hard Sphere (VHS) cross-section model (paper Sec. III-B,
// Colli_React; Bird 1994). Reactions are delegated to the Chemistry hook on
// the accept path.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "dsmc/chemistry.hpp"
#include "dsmc/particles.hpp"
#include "dsmc/species.hpp"
#include "mesh/tetmesh.hpp"
#include "support/kernel_exec.hpp"
#include "support/rng.hpp"

namespace dsmcpic::dsmc {

struct CollisionConfig {
  std::uint64_t seed = 0xb5297a4dULL;
  /// Initial per-cell majorant (sigma * c_r)_max [m^3/s]; adapts upward.
  double initial_sigma_cr_max = 1e-15;
};

struct CollisionStats {
  std::int64_t candidates = 0;  // NTC candidate pairs examined
  std::int64_t collisions = 0;  // accepted (elastic or reactive)
  std::int64_t ionizations = 0;
  std::int64_t charge_exchanges = 0;  // CEX events (H+/H identity swaps)
};

/// VHS total cross section for a colliding pair with relative speed c_r.
double vhs_cross_section(const Species& a, const Species& b, double c_r);

/// Reusable per-rank scratch for collide_cells: one spawned-ion buffer per
/// chunk, merged into the store in chunk (= cell) order after the sweep.
/// Capacities persist across steps so chunking allocates nothing in steady
/// state.
struct CollideScratch {
  std::vector<std::vector<ParticleRecord>> spawned;
};

class CollisionKernel {
 public:
  CollisionKernel(const mesh::TetMesh& grid, const SpeciesTable& table,
                  CollisionConfig cfg, Chemistry* chemistry = nullptr);

  /// Performs NTC collisions (and reactions) in each cell of `my_cells`.
  /// `index` must be freshly built for `store`. New particles appended by
  /// chemistry are NOT collision partners this step (standard practice).
  /// With `exec`, the cell list is chunked across its kernel pool; every
  /// per-cell quantity (majorant, carry, RNG stream) is keyed by cell, so
  /// the result is identical to serial for any chunk count. `scratch`
  /// (optional) carries the spawn buffers across steps.
  CollisionStats collide_cells(ParticleStore& store, const CellIndex& index,
                               std::span<const std::int32_t> my_cells,
                               double dt, int step,
                               const support::KernelExec* exec = nullptr,
                               CollideScratch* scratch = nullptr);

  /// Cached-constant VHS sigma for species pair (si, sj): bit-identical to
  /// vhs_cross_section but with the pair-averaged reference values, reduced
  /// mass and Gamma(5/2 - omega) precomputed per pair at construction.
  double vhs_sigma(std::int32_t si, std::int32_t sj, double c_r) const {
    const VhsPair& p = vhs_pairs_[static_cast<std::size_t>(si) * num_species_ +
                                  static_cast<std::size_t>(sj)];
    const double c2 = std::max(c_r * c_r, 1e-30);
    const double ratio = p.two_kb_tref / (p.m_r * c2);
    return p.pi_d2 * std::pow(ratio, p.omega_mhalf) / p.gamma;
  }

  /// Per-cell adaptive majorants (exposed so rebalancing can migrate them
  /// conceptually; they are global per-cell state, not per-rank).
  std::span<const double> sigma_cr_max() const { return sigma_cr_max_; }

  /// Binary checkpoint of the adaptive per-cell state.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  /// Per-species-pair VHS constants, precomputed so the hot loop avoids
  /// std::tgamma and the pair-parameter averaging per candidate.
  struct VhsPair {
    double pi_d2;        // M_PI * d * d (pair-averaged d)
    double omega_mhalf;  // omega - 0.5
    double two_kb_tref;  // 2 kB * t_ref
    double m_r;          // reduced mass
    double gamma;        // tgamma(2.5 - omega)
  };

  const mesh::TetMesh* grid_;
  const SpeciesTable* table_;
  CollisionConfig cfg_;
  Chemistry* chemistry_;
  std::size_t num_species_ = 0;
  std::vector<VhsPair> vhs_pairs_;  // num_species^2, row-major
  std::vector<double> sigma_cr_max_;  // per cell, persists across steps
  std::vector<double> candidate_carry_;  // fractional NTC candidates per cell
};

}  // namespace dsmcpic::dsmc
