#pragma once
// Binary collisions with Bird's No-Time-Counter (NTC) pair selection and the
// Variable Hard Sphere (VHS) cross-section model (paper Sec. III-B,
// Colli_React; Bird 1994). Reactions are delegated to the Chemistry hook on
// the accept path.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "dsmc/chemistry.hpp"
#include "dsmc/particles.hpp"
#include "dsmc/species.hpp"
#include "mesh/tetmesh.hpp"
#include "support/rng.hpp"

namespace dsmcpic::dsmc {

struct CollisionConfig {
  std::uint64_t seed = 0xb5297a4dULL;
  /// Initial per-cell majorant (sigma * c_r)_max [m^3/s]; adapts upward.
  double initial_sigma_cr_max = 1e-15;
};

struct CollisionStats {
  std::int64_t candidates = 0;  // NTC candidate pairs examined
  std::int64_t collisions = 0;  // accepted (elastic or reactive)
  std::int64_t ionizations = 0;
  std::int64_t charge_exchanges = 0;  // CEX events (H+/H identity swaps)
};

/// VHS total cross section for a colliding pair with relative speed c_r.
double vhs_cross_section(const Species& a, const Species& b, double c_r);

class CollisionKernel {
 public:
  CollisionKernel(const mesh::TetMesh& grid, const SpeciesTable& table,
                  CollisionConfig cfg, Chemistry* chemistry = nullptr);

  /// Performs NTC collisions (and reactions) in each cell of `my_cells`.
  /// `index` must be freshly built for `store`. New particles appended by
  /// chemistry are NOT collision partners this step (standard practice).
  CollisionStats collide_cells(ParticleStore& store, const CellIndex& index,
                               std::span<const std::int32_t> my_cells,
                               double dt, int step);

  /// Per-cell adaptive majorants (exposed so rebalancing can migrate them
  /// conceptually; they are global per-cell state, not per-rank).
  std::span<const double> sigma_cr_max() const { return sigma_cr_max_; }

  /// Binary checkpoint of the adaptive per-cell state.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  const mesh::TetMesh* grid_;
  const SpeciesTable* table_;
  CollisionConfig cfg_;
  Chemistry* chemistry_;
  std::vector<double> sigma_cr_max_;  // per cell, persists across steps
  std::vector<double> candidate_carry_;  // fractional NTC candidates per cell
};

}  // namespace dsmcpic::dsmc
