#pragma once
// Inlet injection (the paper's Inject component): particles enter through
// the inlet faces with a drifting-Maxwellian flux, velocity perpendicular
// to the inlet (Sec. III-B).

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "dsmc/particles.hpp"
#include "dsmc/species.hpp"
#include "mesh/tetmesh.hpp"
#include "support/rng.hpp"

namespace dsmcpic::dsmc {

struct InjectionSpec {
  std::int32_t species = kSpeciesH;
  double number_density = 1e18;  // real particles per m^3 at the inlet
  double temperature = 300.0;    // K
  double drift_speed = 1e4;      // m/s along the inward inlet normal

  /// Time-varying inflow: the injected flux is scaled per DSMC step by
  /// 1 + pulse_amplitude * sin(2*pi*step / pulse_period), clamped at >= 0.
  /// Amplitude 0 or period 0 disables the pulse, and the disabled path
  /// skips the scaling multiply entirely so constant-inflow runs stay
  /// bit-identical to builds that predate the knob.
  double pulse_amplitude = 0.0;
  int pulse_period = 0;

  /// The per-step flux scale described above (1.0 when disabled).
  double inflow_modulation(int step) const;
};

/// Stateful per-face injector: carries fractional injection remainders and
/// per-face id counters across steps, so the injected stream is
/// deterministic and independent of the grid decomposition. One injector
/// serves one InjectionSpec (the solver owns one per injected species).
class MaxwellianInjector {
 public:
  /// Injects through all boundary faces of `kind` on `grid`.
  MaxwellianInjector(const mesh::TetMesh& grid, mesh::BoundaryKind kind,
                     InjectionSpec spec, std::uint64_t seed);

  /// Injects this step's particles whose face-owning cells belong to
  /// `my_rank`, appending to `store`. Returns the number injected.
  /// `step` must advance by 1 per DSMC step (it seeds the per-face streams).
  std::int64_t inject(ParticleStore& store, const SpeciesTable& table,
                      double dt, int step,
                      std::span<const std::int32_t> cell_owner, int my_rank);

  /// Sharded injection: the step's particle stream is split evenly across
  /// ranks at *particle* granularity — rank r generates shard r of every
  /// face's count, regardless of who owns the face's cell; the particles
  /// reach their owners through the next exchange. This is what makes the
  /// paper's Inject phase scale almost perfectly (Table IV: 1622s at 24
  /// ranks -> 31s at 1536) even though the inlet cells sit on few ranks.
  /// Each particle draws from its own (face, step, k) substream, so the
  /// generated set is identical for every rank count (used by validation).
  ///
  /// Call begin_step exactly once per step (it advances the fractional
  /// remainders and id sequence bases), then inject_shard per rank. Do not
  /// mix with the owner-based inject() on the same instance.
  void begin_step(const SpeciesTable& table, double dt, int step);
  std::int64_t inject_shard(ParticleStore& store, const SpeciesTable& table,
                            int shard, int nshards);

  /// Expected number of simulation particles per step over the whole inlet
  /// (for sizing and tests).
  double expected_per_step(const SpeciesTable& table, double dt) const;

  const InjectionSpec& spec() const { return spec_; }
  std::size_t num_faces() const { return faces_.size(); }

  /// Binary checkpoint of the stream state (remainders, id sequences).
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  template <typename FaceFilter>
  std::int64_t inject_filtered(ParticleStore& store, const SpeciesTable& table,
                               double dt, int step, const FaceFilter& mine);

  const mesh::TetMesh* grid_;
  InjectionSpec spec_;
  std::uint64_t seed_;
  std::vector<mesh::BoundaryFace> faces_;
  std::vector<double> area_;       // per face
  std::vector<Vec3> inward_;       // inward unit normal per face
  std::vector<double> remainder_;  // fractional carry per face
  std::vector<std::int64_t> seq_;  // per-face id sequence counter

  // Sharded-mode state prepared by begin_step.
  int prepared_step_ = -1;
  std::vector<std::int64_t> step_count_;     // per face
  std::vector<std::int64_t> step_seq_base_;  // per face
};

}  // namespace dsmcpic::dsmc
