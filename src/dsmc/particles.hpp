#pragma once
// Particle storage. Per-scalar structure-of-arrays for the hot loops: the
// Vec3 position/velocity fields are split into six component vectors
// (px/py/pz, vx/vy/vz) so move, Boris push, VHS candidate selection and
// deposit stream flat double arrays the compiler can vectorize
// (DESIGN.md §2g). A trivially copyable ParticleRecord remains the wire
// format used when particles migrate between ranks (DSMC_Exchange /
// PIC_Exchange payloads) — the SoA split never changes what goes over the
// wire.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "support/error.hpp"
#include "support/vec3.hpp"

namespace dsmcpic::dsmc {

/// Wire/record format for one particle; memcpy-serializable.
struct ParticleRecord {
  Vec3 position;
  Vec3 velocity;
  std::int64_t id = 0;
  std::int32_t species = 0;
  std::int32_t cell = -1;  // coarse-grid cell index
};
static_assert(std::is_trivially_copyable_v<ParticleRecord>);

/// Reusable scratch for ParticleStore::sort_by_cell / apply_gather: the
/// counting-sort prefix, the gather permutation, and one ping-pong buffer
/// per element type. Capacities persist across steps so the periodic cell
/// sort allocates nothing in steady state.
struct SortScratch {
  std::vector<std::int64_t> start;    // per-cell prefix sums (num_cells + 1)
  std::vector<std::int64_t> cursor;   // fill cursor per cell
  std::vector<std::int32_t> gather;   // new slot k reads old slot gather[k]
  std::vector<double> dbl;            // component ping-pong
  std::vector<std::int64_t> i64;
  std::vector<std::int32_t> i32;
  std::vector<std::uint8_t> u8;
};

class ParticleStore {
 public:
  std::size_t size() const { return px_.size(); }
  bool empty() const { return px_.empty(); }
  void reserve(std::size_t n);
  void clear();

  std::size_t add(const ParticleRecord& p);

  // Hot-loop accessors: per-scalar component arrays.
  std::span<double> px() { return px_; }
  std::span<const double> px() const { return px_; }
  std::span<double> py() { return py_; }
  std::span<const double> py() const { return py_; }
  std::span<double> pz() { return pz_; }
  std::span<const double> pz() const { return pz_; }
  std::span<double> vx() { return vx_; }
  std::span<const double> vx() const { return vx_; }
  std::span<double> vy() { return vy_; }
  std::span<const double> vy() const { return vy_; }
  std::span<double> vz() { return vz_; }
  std::span<const double> vz() const { return vz_; }
  std::span<std::int64_t> ids() { return id_; }
  std::span<const std::int64_t> ids() const { return id_; }
  std::span<std::int32_t> species() { return species_; }
  std::span<const std::int32_t> species() const { return species_; }
  std::span<std::int32_t> cells() { return cell_; }
  std::span<const std::int32_t> cells() const { return cell_; }

  // Vec3 convenience accessors (gather/scatter across the component arrays;
  // use the component spans directly in vectorized loops).
  Vec3 position(std::size_t i) const { return {px_[i], py_[i], pz_[i]}; }
  Vec3 velocity(std::size_t i) const { return {vx_[i], vy_[i], vz_[i]}; }
  void set_position(std::size_t i, const Vec3& p) {
    px_[i] = p.x;
    py_[i] = p.y;
    pz_[i] = p.z;
  }
  void set_velocity(std::size_t i, const Vec3& v) {
    vx_[i] = v.x;
    vy_[i] = v.y;
    vz_[i] = v.z;
  }

  ParticleRecord record(std::size_t i) const;
  void set_record(std::size_t i, const ParticleRecord& p);

  /// Removes particle i by swapping with the last element (O(1)); the caller
  /// must iterate accordingly (i is reused for the swapped-in particle).
  /// Not order-preserving; fine wherever traversal goes through CellIndex
  /// (which canonicalizes per-cell order by id) or order is irrelevant.
  void remove_swap(std::size_t i);

  /// Removes every particle whose flag is non-zero; preserves relative order
  /// of the survivors (stable compaction, used by Reindex). Returns the
  /// number removed.
  std::size_t remove_flagged(std::span<const std::uint8_t> flags);

  /// Reorders the store so new slot k holds old slot gather[k], for any
  /// permutation `gather` of [0, size()). `flags` (optional, same length)
  /// is permuted alongside so per-particle sidecar state stays aligned.
  void apply_gather(std::span<const std::int32_t> gather, SortScratch& scratch,
                    std::span<std::uint8_t> flags = {});

  /// Stable counting sort of the store by owning coarse cell: afterwards
  /// particles of one cell occupy a contiguous ascending range and the
  /// relative order of particles WITHIN each cell is unchanged. This is a
  /// pure memory-layout operation — per-cell traversal ORDER is owned by
  /// CellIndex, which canonicalizes by particle id — so running it (at any
  /// interval) changes no observable result (DESIGN.md §2g).
  void sort_by_cell(std::int32_t num_cells, SortScratch& scratch,
                    std::span<std::uint8_t> flags = {});

  /// Number of particles of one species.
  std::int64_t count_species(std::int32_t species_id) const;

  /// Binary checkpoint of the whole store (component-vector layout).
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::vector<double> px_, py_, pz_;
  std::vector<double> vx_, vy_, vz_;
  std::vector<std::int64_t> id_;
  std::vector<std::int32_t> species_;
  std::vector<std::int32_t> cell_;
};

/// Cell -> particle-index lists (rebuilt per step where needed: collisions,
/// deposition, exchange classification). Each cell's list is sorted by
/// ascending particle id — the canonical per-cell traversal order, chosen
/// because store slots are layout history (intra-rank cell changes keep
/// their slot) while ids are layout-independent (DESIGN.md §2g). After
/// ParticleStore::sort_by_cell on a freshly reindexed store the items are
/// the identity permutation and particles_in() spans are contiguous.
class CellIndex {
 public:
  CellIndex() = default;
  CellIndex(const ParticleStore& store, std::int32_t num_cells);

  /// Rebuilds the index in place. Reuses the start/items/cursor storage
  /// from previous rebuilds, so steady-state steps allocate nothing.
  void rebuild(const ParticleStore& store, std::int32_t num_cells);

  std::span<const std::int32_t> particles_in(std::int32_t cell) const {
    return {items_.data() + start_[cell],
            static_cast<std::size_t>(start_[cell + 1] - start_[cell])};
  }
  std::int32_t num_cells() const {
    return static_cast<std::int32_t>(start_.size() - 1);
  }

 private:
  std::vector<std::int64_t> start_;
  std::vector<std::int32_t> items_;
  std::vector<std::int64_t> cursor_;  // fill scratch, reused across rebuilds
};

}  // namespace dsmcpic::dsmc
