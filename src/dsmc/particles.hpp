#pragma once
// Particle storage. Structure-of-arrays for the hot loops (move, deposit)
// plus a trivially copyable ParticleRecord used when particles migrate
// between ranks (DSMC_Exchange / PIC_Exchange payloads).

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "support/error.hpp"
#include "support/vec3.hpp"

namespace dsmcpic::dsmc {

/// Wire/record format for one particle; memcpy-serializable.
struct ParticleRecord {
  Vec3 position;
  Vec3 velocity;
  std::int64_t id = 0;
  std::int32_t species = 0;
  std::int32_t cell = -1;  // coarse-grid cell index
};
static_assert(std::is_trivially_copyable_v<ParticleRecord>);

class ParticleStore {
 public:
  std::size_t size() const { return position_.size(); }
  bool empty() const { return position_.empty(); }
  void reserve(std::size_t n);
  void clear();

  std::size_t add(const ParticleRecord& p);

  // Hot-loop accessors (SoA).
  std::span<Vec3> positions() { return position_; }
  std::span<const Vec3> positions() const { return position_; }
  std::span<Vec3> velocities() { return velocity_; }
  std::span<const Vec3> velocities() const { return velocity_; }
  std::span<std::int64_t> ids() { return id_; }
  std::span<const std::int64_t> ids() const { return id_; }
  std::span<std::int32_t> species() { return species_; }
  std::span<const std::int32_t> species() const { return species_; }
  std::span<std::int32_t> cells() { return cell_; }
  std::span<const std::int32_t> cells() const { return cell_; }

  ParticleRecord record(std::size_t i) const;
  void set_record(std::size_t i, const ParticleRecord& p);

  /// Removes particle i by swapping with the last element (O(1)); the caller
  /// must iterate accordingly (i is reused for the swapped-in particle).
  void remove_swap(std::size_t i);

  /// Removes every particle whose flag is non-zero; preserves relative order
  /// of the survivors (stable compaction, used by Reindex). Returns the
  /// number removed.
  std::size_t remove_flagged(std::span<const std::uint8_t> flags);

  /// Number of particles of one species.
  std::int64_t count_species(std::int32_t species_id) const;

  /// Binary checkpoint of the whole store.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::vector<Vec3> position_;
  std::vector<Vec3> velocity_;
  std::vector<std::int64_t> id_;
  std::vector<std::int32_t> species_;
  std::vector<std::int32_t> cell_;
};

/// Cell -> particle-index lists (rebuilt per step where needed: collisions,
/// deposition, exchange classification).
class CellIndex {
 public:
  CellIndex() = default;
  CellIndex(const ParticleStore& store, std::int32_t num_cells);

  /// Rebuilds the index in place. Reuses the start/items/cursor storage
  /// from previous rebuilds, so steady-state steps allocate nothing.
  void rebuild(const ParticleStore& store, std::int32_t num_cells);

  std::span<const std::int32_t> particles_in(std::int32_t cell) const {
    return {items_.data() + start_[cell],
            static_cast<std::size_t>(start_[cell + 1] - start_[cell])};
  }
  std::int32_t num_cells() const {
    return static_cast<std::int32_t>(start_.size() - 1);
  }

 private:
  std::vector<std::int64_t> start_;
  std::vector<std::int32_t> items_;
  std::vector<std::int64_t> cursor_;  // fill scratch, reused across rebuilds
};

}  // namespace dsmcpic::dsmc
