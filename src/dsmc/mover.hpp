#pragma once
// Free-flight particle movement with tetrahedron traversal (DSMC_Move /
// PIC_Move). Particles fly straight through the unstructured grid, crossing
// cells by ray-face intersection; boundary faces either reflect them (wall)
// or remove them from the domain (inlet backflow / outlet, handled later by
// Reindex). Migration distances can span many cells — the final cell may be
// owned by a *different rank*, which is what DSMC_Exchange/PIC_Exchange then
// resolve (paper Sec. IV-B).

#include <cstdint>
#include <span>

#include "dsmc/particles.hpp"
#include "dsmc/species.hpp"
#include "mesh/tetmesh.hpp"
#include "support/kernel_exec.hpp"

namespace dsmcpic::dsmc {

enum class WallModel { kDiffuse, kSpecular };

enum class MoveFilter { kAll, kNeutralOnly, kChargedOnly };

struct MoverConfig {
  double wall_temperature = 300.0;  // K (paper: 300 K walls)
  WallModel wall_model = WallModel::kDiffuse;
  std::uint64_t seed = 0x9d2c5680ULL;
};

struct MoveStats {
  std::int64_t moved = 0;       // particles advanced
  std::int64_t walk_steps = 0;  // cell faces crossed (work metric)
  std::int64_t wall_hits = 0;
  std::int64_t exited = 0;      // removed through inlet/outlet
};

class Mover {
 public:
  Mover(const mesh::TetMesh& grid, const SpeciesTable& table, MoverConfig cfg);

  /// Advances every particle passing `filter` by dt. Sets removed[i] = 1 for
  /// particles that left the domain. `removed` must be store.size() long.
  /// With a non-null `exec`, the particle range is chunked across its kernel
  /// pool; particles are independent (per-particle RNG streams keyed
  /// (seed, id, step)) and the integer per-chunk stats are summed in chunk
  /// order, so the result is identical for any chunk count.
  MoveStats move_all(ParticleStore& store, double dt, int step,
                     std::span<std::uint8_t> removed,
                     MoveFilter filter = MoveFilter::kAll,
                     const support::KernelExec* exec = nullptr) const;

  /// Advances a single particle; returns false if it left the domain.
  bool move_one(Vec3& pos, Vec3& vel, std::int32_t& cell, std::int32_t species,
                std::int64_t id, double dt, int step, MoveStats& stats) const;

 private:
  const mesh::TetMesh* grid_;
  const SpeciesTable* table_;
  MoverConfig cfg_;
};

}  // namespace dsmcpic::dsmc
