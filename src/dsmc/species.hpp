#pragma once
// Species table and physical constants for the hydrogen plasma plume
// (paper Sec. VI-C: H atoms and H+ ions in a pulsed-vacuum-arc plume).

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace dsmcpic::dsmc {

namespace constants {
inline constexpr double kBoltzmann = 1.380649e-23;      // J/K
inline constexpr double kElementaryCharge = 1.602176634e-19;  // C
inline constexpr double kEpsilon0 = 8.8541878128e-12;   // F/m
inline constexpr double kAmu = 1.66053906660e-27;       // kg
inline constexpr double kHydrogenMass = 1.00784 * kAmu; // kg
inline constexpr double kIonizationEnergyH = 13.6 * kElementaryCharge;  // J
}  // namespace constants

/// One particle species with its VHS (variable hard sphere) collision
/// parameters and the simulation scaling factor Fnum (the paper's Table I
/// "scaling factor": real particles represented per simulation particle).
struct Species {
  std::string name;
  double mass = constants::kHydrogenMass;  // kg
  double charge = 0.0;                     // C
  double diameter = 2.92e-10;              // VHS reference diameter [m]
  double omega = 0.75;                     // VHS viscosity-temperature exponent
  double t_ref = 273.0;                    // VHS reference temperature [K]
  double fnum = 1.0;                       // real particles per sim particle

  bool charged() const { return charge != 0.0; }
};

/// Species ids used throughout the solver.
enum SpeciesId : std::int32_t { kSpeciesH = 0, kSpeciesHPlus = 1 };

class SpeciesTable {
 public:
  /// Builds the standard H / H+ pair with the given scaling factors.
  static SpeciesTable hydrogen(double fnum_h, double fnum_hplus);

  std::int32_t add(Species s);
  std::int32_t size() const { return static_cast<std::int32_t>(list_.size()); }
  const Species& operator[](std::int32_t id) const {
    DSMCPIC_CHECK(id >= 0 && id < size());
    return list_[id];
  }
  const std::vector<Species>& all() const { return list_; }

  /// Reduced mass of a colliding pair.
  double reduced_mass(std::int32_t a, std::int32_t b) const {
    const double ma = (*this)[a].mass, mb = (*this)[b].mass;
    return ma * mb / (ma + mb);
  }

 private:
  std::vector<Species> list_;
};

}  // namespace dsmcpic::dsmc
