#include "dsmc/mover.hpp"

#include <array>
#include <cmath>

#include "dsmc/maxwell.hpp"
#include "support/rng.hpp"

namespace dsmcpic::dsmc {

Mover::Mover(const mesh::TetMesh& grid, const SpeciesTable& table,
             MoverConfig cfg)
    : grid_(&grid), table_(&table), cfg_(cfg) {}

bool Mover::move_one(Vec3& pos, Vec3& vel, std::int32_t& cell,
                     std::int32_t species, std::int64_t id, double dt, int step,
                     MoveStats& stats) const {
  double remaining = dt;
  ++stats.moved;
  // A particle crossing more cells than this is numerically stuck.
  const int max_crossings = 64 + 4 * 1024;
  for (int guard = 0; guard < max_crossings && remaining > 0.0; ++guard) {
    if (vel.norm2() == 0.0) break;
    double t_exit = 0.0;
    const int face = grid_->ray_exit_face(cell, pos, vel, &t_exit);
    if (face < 0) {
      // Degenerate geometry; re-locate and stop this step's motion.
      const std::int32_t found = grid_->locate(pos, cell);
      if (found >= 0) cell = found;
      break;
    }
    if (t_exit >= remaining) {
      pos += vel * remaining;
      remaining = 0.0;
      break;
    }
    // Cross the face.
    pos += vel * t_exit;
    remaining -= t_exit;
    ++stats.walk_steps;
    const std::int32_t nb = grid_->neighbor(cell, face);
    if (nb >= 0) {
      cell = nb;
      // Tiny nudge so the next ray test does not re-hit the same plane.
      const double eps = remaining * 1e-12;
      pos += vel * eps;
      remaining -= eps;
      continue;
    }
    // Boundary face.
    const mesh::BoundaryKind kind = grid_->face_kind(cell, face);
    if (kind == mesh::BoundaryKind::kWall) {
      ++stats.wall_hits;
      const Vec3 n_in = -grid_->face_normal(cell, face);  // into the domain
      if (cfg_.wall_model == WallModel::kSpecular) {
        // v' = v - 2 (v·n) n; n's sign cancels, n_in works directly.
        vel -= n_in * (2.0 * dot(vel, n_in));
      } else {
        // Diffuse: per-particle stream keyed by (seed, id, step) so the
        // reflection sequence does not depend on the decomposition.
        Rng rng(derive_stream_seed(cfg_.seed, static_cast<std::uint64_t>(id)),
                static_cast<std::uint64_t>(step));
        vel = sample_diffuse_reflection(rng, n_in, cfg_.wall_temperature,
                                        (*table_)[species].mass);
      }
      // Nudge back inside along the new direction.
      pos += n_in * 1e-14;
      continue;
    }
    // Inlet (backflow) or outlet: the particle leaves the domain.
    ++stats.exited;
    return false;
  }
  return true;
}

MoveStats Mover::move_all(ParticleStore& store, double dt, int step,
                          std::span<std::uint8_t> removed, MoveFilter filter,
                          const support::KernelExec* exec) const {
  DSMCPIC_CHECK(removed.size() == store.size());
  auto px = store.px(), py = store.py(), pz = store.pz();
  auto vx = store.vx(), vy = store.vy(), vz = store.vz();
  auto cells = store.cells();
  auto species = store.species();
  auto ids = store.ids();
  const auto move_range = [&](std::int64_t begin, std::int64_t end,
                              MoveStats& stats) {
    for (std::int64_t i = begin; i < end; ++i) {
      if (removed[i]) continue;
      const bool charged = (*table_)[species[i]].charged();
      if (filter == MoveFilter::kNeutralOnly && charged) continue;
      if (filter == MoveFilter::kChargedOnly && !charged) continue;
      Vec3 pos{px[i], py[i], pz[i]};
      Vec3 vel{vx[i], vy[i], vz[i]};
      if (!move_one(pos, vel, cells[i], species[i], ids[i], dt, step, stats))
        removed[i] = 1;
      px[i] = pos.x;
      py[i] = pos.y;
      pz[i] = pos.z;
      vx[i] = vel.x;
      vy[i] = vel.y;
      vz[i] = vel.z;
    }
  };
  const std::int64_t n = static_cast<std::int64_t>(store.size());
  if (!exec || exec->serial()) {
    MoveStats stats;
    move_range(0, n, stats);
    return stats;
  }
  // Each chunk writes disjoint particle slots and its own stats slot; the
  // integer stats are summed in chunk order afterwards.
  std::array<MoveStats, 64> chunk_stats{};
  exec->for_chunks(n, [&](int c, std::int64_t begin, std::int64_t end) {
    move_range(begin, end, chunk_stats[c]);
  });
  MoveStats stats;
  for (int c = 0; c < exec->num_chunks(n); ++c) {
    stats.moved += chunk_stats[c].moved;
    stats.walk_steps += chunk_stats[c].walk_steps;
    stats.wall_hits += chunk_stats[c].wall_hits;
    stats.exited += chunk_stats[c].exited;
  }
  return stats;
}

}  // namespace dsmcpic::dsmc
