#include "dsmc/collide.hpp"

#include "support/serialize.hpp"

#include <cmath>

namespace dsmcpic::dsmc {

double vhs_cross_section(const Species& a, const Species& b, double c_r) {
  // Bird's VHS: sigma = pi d_ref^2 * [2 kB T_ref / (m_r c_r^2)]^(omega-1/2)
  //                      / Gamma(5/2 - omega)
  // with pair-averaged reference diameter, omega and T_ref.
  const double d = 0.5 * (a.diameter + b.diameter);
  const double omega = 0.5 * (a.omega + b.omega);
  const double t_ref = 0.5 * (a.t_ref + b.t_ref);
  const double m_r = a.mass * b.mass / (a.mass + b.mass);
  const double c2 = std::max(c_r * c_r, 1e-30);
  const double ratio = 2.0 * constants::kBoltzmann * t_ref / (m_r * c2);
  return M_PI * d * d * std::pow(ratio, omega - 0.5) /
         std::tgamma(2.5 - omega);
}

CollisionKernel::CollisionKernel(const mesh::TetMesh& grid,
                                 const SpeciesTable& table, CollisionConfig cfg,
                                 Chemistry* chemistry)
    : grid_(&grid),
      table_(&table),
      cfg_(cfg),
      chemistry_(chemistry),
      sigma_cr_max_(static_cast<std::size_t>(grid.num_tets()),
                    cfg.initial_sigma_cr_max),
      candidate_carry_(static_cast<std::size_t>(grid.num_tets()), 0.0) {}

CollisionStats CollisionKernel::collide_cells(
    ParticleStore& store, const CellIndex& index,
    std::span<const std::int32_t> my_cells, double dt, int step) {
  CollisionStats stats;
  ChemistryStats chem_stats;

  for (std::int32_t cell : my_cells) {
    const auto parts = index.particles_in(cell);
    const auto np = static_cast<std::int64_t>(parts.size());
    if (np < 2) continue;

    // Mean scaling factor of the particles in the cell (mixed-species NTC
    // simplification; see DESIGN.md).
    double fnum_sum = 0.0;
    for (std::int32_t p : parts)
      fnum_sum += (*table_)[store.species()[p]].fnum;
    const double fnum_mean = fnum_sum / static_cast<double>(np);

    const double volume = grid_->volume(cell);
    double& majorant = sigma_cr_max_[cell];

    const double expected =
        0.5 * static_cast<double>(np) * static_cast<double>(np - 1) *
            fnum_mean * majorant * dt / volume +
        candidate_carry_[cell];
    const auto n_cand = static_cast<std::int64_t>(expected);
    candidate_carry_[cell] = expected - static_cast<double>(n_cand);
    if (n_cand <= 0) continue;

    // Per-(cell, step) stream: collision sequence is independent of which
    // rank owns the cell.
    Rng rng(derive_stream_seed(cfg_.seed, static_cast<std::uint64_t>(cell)),
            static_cast<std::uint64_t>(step));

    for (std::int64_t k = 0; k < n_cand; ++k) {
      ++stats.candidates;
      const auto pi = parts[rng.uniform_index(static_cast<std::uint64_t>(np))];
      auto pj = parts[rng.uniform_index(static_cast<std::uint64_t>(np))];
      if (pi == pj) continue;

      const auto si = store.species()[pi];
      const auto sj = store.species()[pj];
      const Vec3 vi = store.velocities()[pi];
      const Vec3 vj = store.velocities()[pj];
      const Vec3 rel = vi - vj;
      const double c_r = rel.norm();
      if (c_r <= 0.0) continue;

      const double sigma_cr =
          vhs_cross_section((*table_)[si], (*table_)[sj], c_r) * c_r;
      if (sigma_cr > majorant) majorant = sigma_cr;  // adapt the majorant
      if (rng.uniform() * majorant > sigma_cr) continue;  // rejected

      ++stats.collisions;
      const double ma = (*table_)[si].mass;
      const double mb = (*table_)[sj].mass;
      const double m_r = ma * mb / (ma + mb);
      const double e_rel = 0.5 * m_r * c_r * c_r;

      if (chemistry_ &&
          chemistry_->try_ionization(rng, store, pi, pj, e_rel, chem_stats)) {
        ++stats.ionizations;
        // Elastic scatter still applies to the colliding pair below.
      }
      if (chemistry_ && si != sj &&
          chemistry_->try_charge_exchange(rng, store, pi, pj, chem_stats)) {
        ++stats.charge_exchanges;
        continue;  // CEX replaces the elastic scatter for this pair
      }

      // Isotropic VHS scatter in the centre-of-mass frame.
      const Vec3 v_cm = (vi * ma + vj * mb) / (ma + mb);
      const double cos_t = 2.0 * rng.uniform() - 1.0;
      const double sin_t = std::sqrt(std::max(0.0, 1.0 - cos_t * cos_t));
      const double phi = 2.0 * M_PI * rng.uniform();
      const Vec3 dir{sin_t * std::cos(phi), sin_t * std::sin(phi), cos_t};
      store.velocities()[pi] = v_cm + dir * (c_r * mb / (ma + mb));
      store.velocities()[pj] = v_cm - dir * (c_r * ma / (ma + mb));
    }
  }
  stats.ionizations = chem_stats.ionizations;
  return stats;
}

void CollisionKernel::save(std::ostream& os) const {
  io::write_vec(os, sigma_cr_max_);
  io::write_vec(os, candidate_carry_);
}

void CollisionKernel::load(std::istream& is) {
  sigma_cr_max_ = io::read_vec<double>(is);
  candidate_carry_ = io::read_vec<double>(is);
  DSMCPIC_CHECK_MSG(
      sigma_cr_max_.size() == static_cast<std::size_t>(grid_->num_tets()) &&
          candidate_carry_.size() == sigma_cr_max_.size(),
      "checkpoint cell count mismatch");
}

}  // namespace dsmcpic::dsmc
