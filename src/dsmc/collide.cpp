#include "dsmc/collide.hpp"

#include "support/serialize.hpp"

#include <array>
#include <cmath>

namespace dsmcpic::dsmc {

double vhs_cross_section(const Species& a, const Species& b, double c_r) {
  // Bird's VHS: sigma = pi d_ref^2 * [2 kB T_ref / (m_r c_r^2)]^(omega-1/2)
  //                      / Gamma(5/2 - omega)
  // with pair-averaged reference diameter, omega and T_ref.
  const double d = 0.5 * (a.diameter + b.diameter);
  const double omega = 0.5 * (a.omega + b.omega);
  const double t_ref = 0.5 * (a.t_ref + b.t_ref);
  const double m_r = a.mass * b.mass / (a.mass + b.mass);
  const double c2 = std::max(c_r * c_r, 1e-30);
  const double ratio = 2.0 * constants::kBoltzmann * t_ref / (m_r * c2);
  return M_PI * d * d * std::pow(ratio, omega - 0.5) /
         std::tgamma(2.5 - omega);
}

CollisionKernel::CollisionKernel(const mesh::TetMesh& grid,
                                 const SpeciesTable& table, CollisionConfig cfg,
                                 Chemistry* chemistry)
    : grid_(&grid),
      table_(&table),
      cfg_(cfg),
      chemistry_(chemistry),
      num_species_(static_cast<std::size_t>(table.size())),
      sigma_cr_max_(static_cast<std::size_t>(grid.num_tets()),
                    cfg.initial_sigma_cr_max),
      candidate_carry_(static_cast<std::size_t>(grid.num_tets()), 0.0) {
  // Precompute the pair-averaged VHS constants. The expressions mirror
  // vhs_cross_section exactly (same grouping, divide by gamma rather than
  // multiply by its inverse) so the cached path is bit-identical.
  vhs_pairs_.resize(num_species_ * num_species_);
  for (std::int32_t a = 0; a < table.size(); ++a) {
    for (std::int32_t b = 0; b < table.size(); ++b) {
      const Species& sa = table[a];
      const Species& sb = table[b];
      const double d = 0.5 * (sa.diameter + sb.diameter);
      const double omega = 0.5 * (sa.omega + sb.omega);
      const double t_ref = 0.5 * (sa.t_ref + sb.t_ref);
      VhsPair& p = vhs_pairs_[static_cast<std::size_t>(a) * num_species_ +
                              static_cast<std::size_t>(b)];
      p.pi_d2 = M_PI * d * d;
      p.omega_mhalf = omega - 0.5;
      p.two_kb_tref = 2.0 * constants::kBoltzmann * t_ref;
      p.m_r = sa.mass * sb.mass / (sa.mass + sb.mass);
      p.gamma = std::tgamma(2.5 - omega);
    }
  }
}

namespace {
// Chunk-plan sizing: a few chunks per lane absorbs residual imbalance the
// weight model misses; the cap bounds the fixed per-chunk stat arrays.
constexpr int kCollideChunksPerLane = 4;
constexpr int kMaxCollideChunks = 64;
}  // namespace

int CollisionKernel::plan_chunks(const ParticleStore& store,
                                 const CellIndex& index,
                                 std::span<const std::int32_t> my_cells,
                                 double dt, int threads,
                                 CollideScratch& scr) const {
  const std::int64_t ncells = static_cast<std::int64_t>(my_cells.size());
  if (ncells < threads || threads < 2) return 1;
  const int want = std::min(kMaxCollideChunks, threads * kCollideChunksPerLane);

  // Measured per-cell cost: the sweep's own expected-candidate expression,
  // evaluated read-only (the carry is NOT consumed here).
  scr.weight.resize(static_cast<std::size_t>(ncells));
  const auto species = store.species();
  double total = 0.0;
  for (std::int64_t ci = 0; ci < ncells; ++ci) {
    const std::int32_t cell = my_cells[ci];
    const auto parts = index.particles_in(cell);
    const auto np = static_cast<std::int64_t>(parts.size());
    double w = 0.0;
    if (np >= 2) {
      double fnum_sum = 0.0;
      for (std::int32_t p : parts) fnum_sum += (*table_)[species[p]].fnum;
      const double fnum_mean = fnum_sum / static_cast<double>(np);
      w = 0.5 * static_cast<double>(np) * static_cast<double>(np - 1) *
              fnum_mean * sigma_cr_max_[cell] * dt / grid_->volume(cell) +
          candidate_carry_[cell];
      w = std::max(w, 0.0);
    }
    scr.weight[static_cast<std::size_t>(ci)] = w;
    total += w;
  }
  if (!(total > 0.0)) return 1;

  // Greedy prefix split at the weight targets; a chunk always takes at
  // least one cell, so bounds are strictly increasing (no empty chunks).
  scr.bounds.clear();
  scr.bounds.push_back(0);
  double acc = 0.0;
  int k = 1;
  for (std::int64_t ci = 0; ci < ncells && k < want; ++ci) {
    acc += scr.weight[static_cast<std::size_t>(ci)];
    if (acc >= total * static_cast<double>(k) / static_cast<double>(want) &&
        ci + 1 < ncells) {
      scr.bounds.push_back(ci + 1);
      ++k;
    }
  }
  scr.bounds.push_back(ncells);
  const int nc = static_cast<int>(scr.bounds.size()) - 1;
  // Serial fallback: a plan that cannot give every lane its own chunk
  // loses to dispatch overhead (the kt2 regression this replaces).
  return nc < threads ? 1 : nc;
}

CollisionStats CollisionKernel::collide_cells(
    ParticleStore& store, const CellIndex& index,
    std::span<const std::int32_t> my_cells, double dt, int step,
    const support::KernelExec* exec, CollideScratch* scratch) {
  const std::int64_t ncells = static_cast<std::int64_t>(my_cells.size());
  CollideScratch local;
  CollideScratch& scr = scratch ? *scratch : local;
  const int nc = (exec && !exec->serial())
                     ? plan_chunks(store, index, my_cells, dt,
                                   exec->threads(), scr)
                     : 1;
  if (scr.spawned.size() < static_cast<std::size_t>(nc))
    scr.spawned.resize(static_cast<std::size_t>(nc));
  for (auto& buf : scr.spawned) buf.clear();

  const auto species = store.species();
  auto vx = store.vx(), vy = store.vy(), vz = store.vz();
  const auto collide_range = [&](std::int64_t begin, std::int64_t end,
                                 CollisionStats& stats,
                                 ChemistryStats& chem_stats,
                                 std::vector<ParticleRecord>& spawned) {
    for (std::int64_t ci = begin; ci < end; ++ci) {
      const std::int32_t cell = my_cells[ci];
      const auto parts = index.particles_in(cell);
      const auto np = static_cast<std::int64_t>(parts.size());
      if (np < 2) continue;

      // Mean scaling factor of the particles in the cell (mixed-species NTC
      // simplification; see DESIGN.md).
      double fnum_sum = 0.0;
      for (std::int32_t p : parts) fnum_sum += (*table_)[species[p]].fnum;
      const double fnum_mean = fnum_sum / static_cast<double>(np);

      const double volume = grid_->volume(cell);
      double& majorant = sigma_cr_max_[cell];

      const double expected =
          0.5 * static_cast<double>(np) * static_cast<double>(np - 1) *
              fnum_mean * majorant * dt / volume +
          candidate_carry_[cell];
      const auto n_cand = static_cast<std::int64_t>(expected);
      candidate_carry_[cell] = expected - static_cast<double>(n_cand);
      if (n_cand <= 0) continue;

      // Per-(cell, step) stream: collision sequence is independent of which
      // rank owns the cell.
      Rng rng(derive_stream_seed(cfg_.seed, static_cast<std::uint64_t>(cell)),
              static_cast<std::uint64_t>(step));

      for (std::int64_t k = 0; k < n_cand; ++k) {
        ++stats.candidates;
        const auto pi =
            parts[rng.uniform_index(static_cast<std::uint64_t>(np))];
        auto pj = parts[rng.uniform_index(static_cast<std::uint64_t>(np))];
        if (pi == pj) continue;

        const auto si = species[pi];
        const auto sj = species[pj];
        const Vec3 vi{vx[pi], vy[pi], vz[pi]};
        const Vec3 vj{vx[pj], vy[pj], vz[pj]};
        const Vec3 rel = vi - vj;
        const double c_r = rel.norm();
        if (c_r <= 0.0) continue;

        const double sigma_cr = vhs_sigma(si, sj, c_r) * c_r;
        if (sigma_cr > majorant) majorant = sigma_cr;  // adapt the majorant
        if (rng.uniform() * majorant > sigma_cr) continue;  // rejected

        ++stats.collisions;
        const double ma = (*table_)[si].mass;
        const double mb = (*table_)[sj].mass;
        const double m_r = ma * mb / (ma + mb);
        const double e_rel = 0.5 * m_r * c_r * c_r;

        if (chemistry_ && chemistry_->try_ionization(rng, store, pi, pj, e_rel,
                                                     chem_stats, spawned)) {
          ++stats.ionizations;
          // Elastic scatter still applies to the colliding pair below.
        }
        if (chemistry_ && si != sj &&
            chemistry_->try_charge_exchange(rng, store, pi, pj, chem_stats)) {
          ++stats.charge_exchanges;
          continue;  // CEX replaces the elastic scatter for this pair
        }

        // Isotropic VHS scatter in the centre-of-mass frame.
        const Vec3 v_cm = (vi * ma + vj * mb) / (ma + mb);
        const double cos_t = 2.0 * rng.uniform() - 1.0;
        const double sin_t = std::sqrt(std::max(0.0, 1.0 - cos_t * cos_t));
        const double phi = 2.0 * M_PI * rng.uniform();
        const Vec3 dir{sin_t * std::cos(phi), sin_t * std::sin(phi), cos_t};
        const Vec3 vpi = v_cm + dir * (c_r * mb / (ma + mb));
        const Vec3 vpj = v_cm - dir * (c_r * ma / (ma + mb));
        vx[pi] = vpi.x;
        vy[pi] = vpi.y;
        vz[pi] = vpi.z;
        vx[pj] = vpj.x;
        vy[pj] = vpj.y;
        vz[pj] = vpj.z;
      }
    }
  };

  CollisionStats stats;
  ChemistryStats chem_stats;
  if (nc == 1) {
    collide_range(0, ncells, stats, chem_stats, scr.spawned[0]);
  } else {
    // Cells are disjoint between chunks (majorant, carry, RNG stream and
    // partner velocities are all per-cell); per-chunk stats and spawn
    // buffers are merged in chunk order below, which equals cell order —
    // exactly the serial sequence, for ANY chunk boundaries the plan picks.
    std::array<CollisionStats, kMaxCollideChunks> cstats{};
    std::array<ChemistryStats, kMaxCollideChunks> cchem{};
    exec->for_tasks(nc, [&](int c) {
      collide_range(scr.bounds[c], scr.bounds[c + 1], cstats[c], cchem[c],
                    scr.spawned[c]);
    });
    for (int c = 0; c < nc; ++c) {
      stats.candidates += cstats[c].candidates;
      stats.collisions += cstats[c].collisions;
      stats.ionizations += cstats[c].ionizations;
      stats.charge_exchanges += cstats[c].charge_exchanges;
      chem_stats.ionizations += cchem[c].ionizations;
      chem_stats.recombinations += cchem[c].recombinations;
      chem_stats.charge_exchanges += cchem[c].charge_exchanges;
    }
  }
  // Append spawned ions after the sweep, in chunk (= cell) order: the store
  // ends up identical to the serial interleaved-append version because the
  // records were captured at event time and serial appends also happen in
  // cell order.
  for (int c = 0; c < nc; ++c)
    for (const ParticleRecord& ion : scr.spawned[c]) store.add(ion);
  stats.ionizations = chem_stats.ionizations;
  return stats;
}

void CollisionKernel::save(std::ostream& os) const {
  io::write_vec(os, sigma_cr_max_);
  io::write_vec(os, candidate_carry_);
}

void CollisionKernel::load(std::istream& is) {
  sigma_cr_max_ = io::read_vec<double>(is);
  candidate_carry_ = io::read_vec<double>(is);
  DSMCPIC_CHECK_MSG(
      sigma_cr_max_.size() == static_cast<std::size_t>(grid_->num_tets()) &&
          candidate_carry_.size() == sigma_cr_max_.size(),
      "checkpoint cell count mismatch");
}

}  // namespace dsmcpic::dsmc
